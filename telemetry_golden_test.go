package taopt

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"taopt/internal/export"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current run")

// telemetryRun executes the pinned chaos configuration: a seeded 20%-fault
// run with telemetry on, failure times compressed into the short lease so the
// death/hang/orphan/re-dedication branches all appear in the decision log.
func telemetryRun(t *testing.T) *RunResult {
	t.Helper()
	fc := DefaultFaultConfig(0.20)
	fc.MinLife = 1 * Minute
	fc.MaxLife = 5 * Minute
	res, err := Run(RunConfig{
		App:       LoadApp("Filters For Selfie"),
		Tool:      "monkey",
		Setting:   TaOPTDuration,
		Duration:  8 * Minute,
		Seed:      15,
		Faults:    &fc,
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDecisionLogGolden pins the full decision log of a seeded chaos run:
// every consequential coordinator branch, in order, with its sim-clock
// timestamp. Any change to the coordinator's decision sequence — reordered
// guards, a new RNG draw, a timestamp source change — shows up as a diff.
// Regenerate with: go test -run DecisionLogGolden -update
func TestDecisionLogGolden(t *testing.T) {
	res := telemetryRun(t)
	var buf bytes.Buffer
	if err := res.Telemetry.DecisionLog().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "decisions_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		line := 0
		for line < len(gl) && line < len(wl) && bytes.Equal(gl[line], wl[line]) {
			line++
		}
		g, w := "<EOF>", "<EOF>"
		if line < len(gl) {
			g = string(gl[line])
		}
		if line < len(wl) {
			w = string(wl[line])
		}
		t.Fatalf("decision log diverges from golden at line %d:\n  got:  %s\n  want: %s\n(%d vs %d lines; regenerate with -update if the change is intended)",
			line+1, g, w, len(gl), len(wl))
	}
}

// TestDecisionLogReproducible: two runs of the pinned configuration must emit
// byte-identical decision logs — the guarantee the CI stability step relies
// on, checked here without golden-file indirection.
func TestDecisionLogReproducible(t *testing.T) {
	var a, b bytes.Buffer
	if err := telemetryRun(t).Telemetry.DecisionLog().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := telemetryRun(t).Telemetry.DecisionLog().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs of the same seed emitted different decision logs")
	}
}

// TestChromeTraceValid writes the Chrome trace of a telemetry run and checks
// the JSON against the trace-event format: the envelope keys, required event
// fields, and the phase set the exporter emits (M metadata, X complete spans,
// i instants).
func TestChromeTraceValid(t *testing.T) {
	res := telemetryRun(t)
	tr := export.ChromeTrace(res)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}

	var envelope struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Ts   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if envelope.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", envelope.DisplayTimeUnit)
	}
	if len(envelope.TraceEvents) != tr.Len() {
		t.Fatalf("envelope carries %d events, writer reported %d", len(envelope.TraceEvents), tr.Len())
	}
	phases := map[string]int{}
	for i, ev := range envelope.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil || ev.Ts == nil {
			t.Fatalf("event %d missing a required field: %+v", i, ev)
		}
		switch ev.Ph {
		case "M", "X", "i":
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ev.Ph)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			t.Fatalf("complete event %d has missing or negative dur", i)
		}
		phases[ev.Ph]++
	}
	// A chaos run must produce all three shapes: track names, lease/subspace
	// spans, and decision instants.
	for _, ph := range []string{"M", "X", "i"} {
		if phases[ph] == 0 {
			t.Fatalf("trace has no %q events (got %v)", ph, phases)
		}
	}
}

// TestTelemetryOffCostsNothing: with RunConfig.Telemetry unset the run must
// carry no telemetry at all — nil result field, no telemetry block in the
// export — and enabling it must not perturb the run's measurements (the nil
// sink and the live sink see the identical simulation).
func TestTelemetryOffCostsNothing(t *testing.T) {
	base := RunConfig{
		App:      LoadApp("Filters For Selfie"),
		Tool:     "monkey",
		Setting:  TaOPTDuration,
		Duration: 8 * Minute,
		Seed:     7,
	}
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry != nil {
		t.Fatal("telemetry-disabled run still carries a telemetry bundle")
	}
	var buf bytes.Buffer
	if err := export.FromResult(off).Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, present := doc["telemetry"]; present {
		t.Fatal("telemetry-disabled export contains a telemetry block")
	}

	on := base
	on.Telemetry = true
	res, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.DecisionLog().Len() == 0 {
		t.Fatal("telemetry-enabled run collected no decisions")
	}
	if res.Union.Count() != off.Union.Count() || res.UniqueCrashes != off.UniqueCrashes ||
		res.MachineUsed != off.MachineUsed || len(res.Subspaces) != len(off.Subspaces) {
		t.Fatalf("enabling telemetry changed the run: coverage %d vs %d, crashes %d vs %d, machine %v vs %v, subspaces %d vs %d",
			res.Union.Count(), off.Union.Count(), res.UniqueCrashes, off.UniqueCrashes,
			res.MachineUsed, off.MachineUsed, len(res.Subspaces), len(off.Subspaces))
	}
}
