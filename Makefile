# Developer entry points. Everything here is plain go tool invocations —
# the module has zero dependencies, so every target works fully offline.

GO ?= go

.PHONY: build test race lint lint-json lint-allows vet bench bench-go fuzz scenario-hashes corpus-golden service-e2e check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# taoptvet is the in-repo go/analysis-style suite enforcing the
# determinism and layering contracts (DESIGN.md §10). It is built from
# internal/lint with no dependency outside the standard library, so there
# is no tool version to pin: the go.mod toolchain pins the build.
lint:
	$(GO) run ./cmd/taoptvet ./...

# lint-json emits the findings as a machine-readable array — what the CI
# step uploads as an artifact when the lint gate fails.
lint-json:
	$(GO) run ./cmd/taoptvet -json ./...

# lint-allows audits every //lint:allow suppression with its mandatory
# justification; TestRepoIsLintClean pins the count.
lint-allows:
	$(GO) run ./cmd/taoptvet -allows ./...

vet:
	$(GO) vet ./...

# bench runs the performance harness (cmd/bench): the fleet campaign grid
# and the long-trace Observe microbenchmark (incremental SpaceTracker vs
# the legacy FindSpace rescan), writing the BENCH_fleet.json artifact.
bench:
	$(GO) run ./cmd/bench -out BENCH_fleet.json

# bench-go runs every go-test benchmark once — the CI smoke that keeps
# benchmark code compiling and executing.
bench-go:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# fuzz gives each go-native fuzz target a short coverage-guided run on
# top of its checked-in seed corpus.
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzFindSpace -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzSpaceTracker -fuzztime 10s
	$(GO) test ./internal/scenario -run '^$$' -fuzz FuzzScenarioDecode -fuzztime 10s
	$(GO) test ./internal/export -run '^$$' -fuzz FuzzTraceBinCodec -fuzztime 10s
	$(GO) test ./internal/service -run '^$$' -fuzz FuzzServiceSubmit -fuzztime 10s

# corpus-golden regenerates the corpus-analytics golden (the rendered
# tracetool-corpus output over the pinned 24-run seed grid); run it after a
# deliberate change to the binary codec or the corpus renderer.
corpus-golden:
	$(GO) test ./internal/corpus -run TestCorpusGolden -update

# service-e2e boots taoptd on a temp data dir and proves the cache contract
# over real HTTP: served export == offline taopt export byte-for-byte, a
# renamed resubmit is a cache hit, and the hit survives a service restart.
service-e2e:
	./scripts/service-e2e.sh

# scenario-hashes regenerates the canonical-hash manifest the CI
# scenario-stability step diffs against; run it after deliberately editing
# a document under testdata/scenarios/.
scenario-hashes:
	for f in testdata/scenarios/*.json; do $(GO) run ./cmd/appgen -hash "$$f"; done > testdata/scenarios/HASHES

check: build vet lint test
