# Developer entry points. Everything here is plain go tool invocations —
# the module has zero dependencies, so every target works fully offline.

GO ?= go

.PHONY: build test race lint vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# taoptvet is the in-repo go/analysis-style suite enforcing the
# determinism and layering contracts (DESIGN.md §10). It is built from
# internal/lint with no dependency outside the standard library, so there
# is no tool version to pin: the go.mod toolchain pins the build.
lint:
	$(GO) run ./cmd/taoptvet ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

check: build vet lint test
