package taopt

// Benchmark harness: one benchmark per table and figure of the paper (see
// DESIGN.md's per-experiment index), plus ablation benches for the design
// choices DESIGN.md calls out and micro-benchmarks for the hot algorithms.
//
// The per-experiment benches run scaled-down campaigns (two small apps,
// minutes-long budgets) so `go test -bench=.` finishes in reasonable time;
// the full-scale regeneration lives in cmd/experiments. Each bench reports
// its experiment's headline statistic via b.ReportMetric, so the bench
// output doubles as a quick-look reproduction check.

import (
	"fmt"
	"math"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/core"
	"taopt/internal/graph"
	"taopt/internal/harness"
	"taopt/internal/metrics"
	"taopt/internal/sim"
	"taopt/internal/ui"
)

// benchApps are small enough for minutes-scale campaigns.
var benchApps = []string{"Filters For Selfie", "Marvel Comics"}

const benchMinutes = 12

func mustCell(tb testing.TB, c *harness.Campaign, app, tool string, s harness.Setting) *harness.CellSummary {
	tb.Helper()
	cell, err := c.Cell(app, tool, s)
	if err != nil {
		tb.Fatal(err)
	}
	return cell
}

func benchCampaign(seed int64) *harness.Campaign {
	return harness.NewCampaign(harness.CampaignConfig{
		Apps:     benchApps,
		Tools:    []string{"monkey", "ape", "wctester"},
		Duration: benchMinutes * Minute,
		Seed:     seed,
	})
}

// BenchmarkFig3IntrinsicRandomness regenerates Figure 3's data: the AJS of
// covered methods across uncoordinated instances at the end of the run.
func BenchmarkFig3IntrinsicRandomness(b *testing.B) {
	var finalAJS float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var sum float64
		var n int
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				cell := mustCell(b, c, app, tool, harness.BaselineParallel)
				if len(cell.Timeline) > 0 {
					sum += cell.Timeline[len(cell.Timeline)-1].AJS
					n++
				}
			}
		}
		finalAJS = sum / float64(n)
	}
	b.ReportMetric(finalAJS, "final-AJS")
}

// BenchmarkTable1SubspaceOverlap regenerates Table 1: the fraction of
// offline-identified UI subspaces explored by more than one instance.
func BenchmarkTable1SubspaceOverlap(b *testing.B) {
	var sharedFrac float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		total, shared := 0, 0
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				cell := mustCell(b, c, app, tool, harness.BaselineParallel)
				for k, v := range cell.OverlapHist {
					total += v
					if k >= 1 {
						shared += v
					}
				}
			}
		}
		if total > 0 {
			sharedFrac = float64(shared) / float64(total)
		}
	}
	b.ReportMetric(100*sharedFrac, "%-subspaces-shared")
}

// BenchmarkTable2ActivityPartition regenerates Table 2: WCTester's coverage
// change under activity-granularity parallelization.
func BenchmarkTable2ActivityPartition(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var base, par float64
		for _, app := range c.Apps() {
			base += float64(mustCell(b, c, app, "wctester", harness.BaselineParallel).Union)
			par += float64(mustCell(b, c, app, "wctester", harness.ActivityPartition).Union)
		}
		delta = 100 * (par - base) / base
	}
	b.ReportMetric(delta, "%-coverage-change")
}

// BenchmarkFig5DurationSaved regenerates Figure 5: testing duration saved by
// TaOPT's duration-constrained mode.
func BenchmarkFig5DurationSaved(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var vals []float64
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				base := mustCell(b, c, app, tool, harness.BaselineParallel)
				opt := mustCell(b, c, app, tool, harness.TaOPTDuration)
				vals = append(vals, 100*metrics.DurationSaved(opt.Timeline, base.Union, benchMinutes*Minute))
			}
		}
		saved = metrics.Summarize(vals).Mean
	}
	b.ReportMetric(saved, "%-duration-saved")
}

// BenchmarkFig6ResourceSaved regenerates Figure 6: machine time saved by
// TaOPT's resource-constrained mode.
func BenchmarkFig6ResourceSaved(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		budget := sim.Duration(harness.DefaultInstances) * benchMinutes * Minute
		var vals []float64
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				base := mustCell(b, c, app, tool, harness.BaselineParallel)
				opt := mustCell(b, c, app, tool, harness.TaOPTResource)
				vals = append(vals, 100*metrics.ResourceSaved(opt.Timeline, base.Union, budget))
			}
		}
		saved = metrics.Summarize(vals).Mean
	}
	b.ReportMetric(saved, "%-machine-time-saved")
}

// BenchmarkTable4Coverage regenerates Table 4: cumulative coverage change
// under TaOPT's duration-constrained mode.
func BenchmarkTable4Coverage(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var base, opt float64
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				base += float64(mustCell(b, c, app, tool, harness.BaselineParallel).Union)
				opt += float64(mustCell(b, c, app, tool, harness.TaOPTDuration).Union)
			}
		}
		delta = 100 * (opt - base) / base
	}
	b.ReportMetric(delta, "%-coverage-change")
}

// BenchmarkTable5Crashes regenerates Table 5: unique crashes under TaOPT vs
// baseline (ratio ×100).
func BenchmarkTable5Crashes(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var base, opt float64
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				base += float64(mustCell(b, c, app, tool, harness.BaselineParallel).UniqueCrashes)
				opt += float64(mustCell(b, c, app, tool, harness.TaOPTDuration).UniqueCrashes)
			}
		}
		ratio = opt / math.Max(base, 1)
	}
	b.ReportMetric(ratio, "crash-ratio")
}

// BenchmarkTable6UIOverlap regenerates Table 6: reduction in the average
// number of occurrences of distinct UIs.
func BenchmarkTable6UIOverlap(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var base, opt float64
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				base += mustCell(b, c, app, tool, harness.BaselineParallel).UIOccAverage
				opt += mustCell(b, c, app, tool, harness.TaOPTDuration).UIOccAverage
			}
		}
		reduction = 100 * (base - opt) / base
	}
	b.ReportMetric(reduction, "%-overlap-reduction")
}

// BenchmarkSingleLongRun regenerates the RQ4 aside: one instance using the
// whole machine budget vs the parallel baseline.
func BenchmarkSingleLongRun(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var single, base float64
		for _, app := range c.Apps() {
			single += float64(mustCell(b, c, app, "monkey", harness.SingleLong).Union)
			base += float64(mustCell(b, c, app, "monkey", harness.BaselineParallel).Union)
		}
		ratio = single / base
	}
	b.ReportMetric(ratio, "single/parallel-coverage")
}

// BenchmarkBehaviorPreservation regenerates the RQ5 aside: Jaccard between
// TaOPT's and the baseline's covered-method sets.
func BenchmarkBehaviorPreservation(b *testing.B) {
	var j float64
	for i := 0; i < b.N; i++ {
		c := benchCampaign(int64(i + 1))
		var sum float64
		var n int
		for _, app := range c.Apps() {
			for _, tool := range c.Tools() {
				base := mustCell(b, c, app, tool, harness.BaselineParallel)
				opt := mustCell(b, c, app, tool, harness.TaOPTDuration)
				jj, _ := metrics.BehaviorPreservation(base.UnionSet, opt.UnionSet)
				sum += jj
				n++
			}
		}
		j = sum / float64(n)
	}
	b.ReportMetric(j, "jaccard")
}

// BenchmarkTheorem1Sampling validates Theorem 1's O(n² log n) bound: it
// samples a random walk on two n-cliques joined by a weak edge and reports
// the ratio between the weakest internal edge frequency and the cross-edge
// frequency (>1 means correct separation).
func BenchmarkTheorem1Sampling(b *testing.B) {
	const n = 10
	const alpha = 25.0
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := sim.NewRNG(int64(i + 1))
		steps := int(float64(n*n) * math.Log(float64(n)) * 30)
		counts := make(map[[2]int]int)
		from := make(map[int]int)
		cur := 0
		for s := 0; s < steps; s++ {
			var next int
			if (cur == 0 || cur == n) && rng.Float64() < 1/(alpha*float64(n)) {
				next = n - cur // bridge
			} else {
				c := cur / n
				for {
					next = c*n + rng.Intn(n)
					if next != cur {
						break
					}
				}
			}
			counts[[2]int{cur, next}]++
			from[cur]++
			cur = next
		}
		cross := float64(counts[[2]int{0, n}]+counts[[2]int{n, 0}]) /
			math.Max(float64(from[0]+from[n]), 1)
		minInternal := math.Inf(1)
		for e, c := range counts {
			if e[0]/n != e[1]/n {
				continue
			}
			if f := float64(c) / float64(from[e[0]]); f < minInternal {
				minInternal = f
			}
		}
		if cross == 0 {
			ratio = math.Inf(1)
		} else {
			ratio = minInternal / cross
		}
	}
	if !math.IsInf(ratio, 1) {
		b.ReportMetric(ratio, "min-internal/cross-freq")
	}
}

// --- Ablations (design choices called out in DESIGN.md) -------------------

func ablationRun(b *testing.B, seed int64, mutate func(*core.Config)) float64 {
	b.Helper()
	app := apps.MustLoad(benchApps[1])
	cfg := core.DefaultConfig(core.DurationConstrained)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := harness.Run(harness.RunConfig{
		App:        app,
		Tool:       "monkey",
		Setting:    harness.TaOPTDuration,
		Duration:   benchMinutes * Minute,
		Seed:       seed,
		CoreConfig: &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return float64(res.Union.Count())
}

// BenchmarkAblationDropOrphans measures the cost of leaving a de-allocated
// owner's subspace permanently blocked (dead zones) instead of re-dedicating
// it.
func BenchmarkAblationDropOrphans(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, int64(i+1), nil)
		drop := ablationRun(b, int64(i+1), func(c *core.Config) { c.DropOrphans = true })
		delta = 100 * (drop - base) / base
	}
	b.ReportMetric(delta, "%-coverage-change")
}

// BenchmarkAblationPaperStagnation measures the paper's 1-minute stagnation
// window against the calibrated default (see DESIGN.md's calibration notes).
func BenchmarkAblationPaperStagnation(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, int64(i+1), nil)
		paper := ablationRun(b, int64(i+1), func(c *core.Config) { c.Stagnation = core.PaperStagnation })
		delta = 100 * (paper - base) / base
	}
	b.ReportMetric(delta, "%-coverage-change")
}

// BenchmarkAblationNoWarmup measures accepting candidates without the
// warm-up guard (early impure windows).
func BenchmarkAblationNoWarmup(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, int64(i+1), nil)
		no := ablationRun(b, int64(i+1), func(c *core.Config) { c.WarmUp = 1 })
		delta = 100 * (no - base) / base
	}
	b.ReportMetric(delta, "%-coverage-change")
}

// BenchmarkFleetExperimentGrid measures a small campaign grid through the
// fleet worker pool — the machinery behind cmd/experiments' -workers flag.
// Every width computes identical cells (the seed of a cell derives from its
// key alone); the wall-clock ratio between the sub-benchmarks shows what
// parallel prefetching buys on this machine. Each cell is one single-threaded
// simulation, so the speedup ceiling is min(workers, cells, CPUs).
func BenchmarkFleetExperimentGrid(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := harness.NewCampaign(harness.CampaignConfig{
					Apps:     benchApps,
					Tools:    []string{"monkey", "ape"},
					Duration: benchMinutes * Minute,
					Seed:     int64(i + 1),
					Workers:  workers,
				})
				if err := c.Prefetch(nil, harness.BaselineParallel, harness.TaOPTDuration); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks on the hot algorithms -------------------------------

// BenchmarkFindSpace measures Algorithm 1's incremental sweep on a
// realistic-size window (450 visits, ~40 distinct screens).
func BenchmarkFindSpace(b *testing.B) {
	visits := make([]core.ScreenVisit, 450)
	for i := range visits {
		tok := i % 20
		if i > 225 {
			tok = 20 + i%20
		}
		visits[i] = core.ScreenVisit{Sig: ui.Signature(tok + 1), At: sim.Duration(i) * Second}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.FindSpace(visits, 60*Second, core.MatchExact{}); !ok {
			b.Fatal("no result")
		}
	}
}

// BenchmarkTreeSimilarity measures the abstract-hierarchy comparator used by
// CountIn.
func BenchmarkTreeSimilarity(b *testing.B) {
	app := apps.MustLoad(benchApps[0])
	s1 := app.Render(0, 0)
	s2 := app.Render(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ui.ScreenSimilarity(s1, s2)
	}
}

// BenchmarkScreenAbstraction measures signature computation.
func BenchmarkScreenAbstraction(b *testing.B) {
	app := apps.MustLoad(benchApps[0])
	s := app.Render(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Abstract()
	}
}

// BenchmarkOfflinePartition measures the preliminary study's conservative
// min-conductance partitioner on a trace-sized graph.
func BenchmarkOfflinePartition(b *testing.B) {
	builder := graph.NewBuilder()
	rng := sim.NewRNG(1)
	// 8 regions of 20 screens with rare cross edges.
	for r := 0; r < 8; r++ {
		for i := 0; i < 2000; i++ {
			a := r*20 + rng.Intn(20)
			c := r*20 + rng.Intn(20)
			builder.Add(ui.Signature(a+1), ui.Signature(c+1))
		}
		builder.Add(ui.Signature(r*20+1), ui.Signature(((r+1)%8)*20+1))
	}
	g := builder.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.OfflinePartition(g, graph.DefaultPartitionOptions())
	}
}

// BenchmarkObserveLongTrace measures the analyzer's per-event cost on a long
// single-instance trace with the window spanning the whole stream — the
// regression guard for the incremental SpaceTracker rewrite. One op is one
// Observe call, amortising the periodic analyses; "legacy" is the
// FindSpace-rescan reference path, "tracked" the incremental one. cmd/bench
// reports the same scenario (plus alloc figures and the speedup ratio) into
// BENCH_fleet.json.
func BenchmarkObserveLongTrace(b *testing.B) {
	const visits = 10000
	events, book, err := harness.ObserveStream("Marvel Comics", visits)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"legacy", true}, {"tracked", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i += visits {
				a := harness.NewObserveAnalyzer(book, visits, mode.legacy)
				for _, ev := range events {
					a.Observe(ev)
				}
			}
			if b.N < visits {
				// b.N ops were requested but a full stream always runs; scale
				// the reported per-op figure accordingly.
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64((b.N+visits-1)/visits*visits), "ns/event")
			}
		})
	}
}
