// Quickstart: run TaOPT's duration-constrained mode against the
// uncoordinated baseline on one evaluation app and print what changed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"taopt"
)

func main() {
	app := taopt.LoadApp("AccuWeather")
	fmt.Printf("App under test: %s (%d methods, %d screens, %d crash sites)\n\n",
		app.Name, app.MethodCount(), len(app.Screens), len(app.CrashSites))

	// Five uncoordinated Monkey instances for one hour each — the paper's
	// baseline parallelization. Runs on virtual time, so this returns in
	// seconds.
	baseline, err := taopt.Run(taopt.RunConfig{
		App:     app,
		Tool:    "monkey",
		Setting: taopt.Baseline,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same tool and budgets, coordinated by TaOPT: the trace analyzer
	// identifies loosely coupled UI subspaces online and the coordinator
	// dedicates each one to a single instance.
	optimized, err := taopt.Run(taopt.RunConfig{
		App:     app,
		Tool:    "monkey",
		Setting: taopt.TaOPTDuration,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "baseline", "TaOPT")
	row := func(label string, b, o interface{}) { fmt.Printf("%-28s %12v %12v\n", label, b, o) }
	row("methods covered", baseline.Union.Count(), optimized.Union.Count())
	row("unique crashes", baseline.UniqueCrashes, optimized.UniqueCrashes)
	row("distinct UI screens", len(baseline.UIOccurrences), len(optimized.UIOccurrences))
	fmt.Printf("%-28s %12.1f %12.1f\n", "avg occurrences per screen",
		baseline.UIOccurrenceAverage(), optimized.UIOccurrenceAverage())
	row("machine time", baseline.MachineUsed, optimized.MachineUsed)
	row("instance allocations", len(baseline.Instances), len(optimized.Instances))

	fmt.Printf("\nTaOPT identified %d loosely coupled UI subspaces:\n", len(optimized.Subspaces))
	for _, sub := range optimized.Subspaces {
		fmt.Printf("  subspace %d: %d screens, dedicated to instance %d (found at %v)\n",
			sub.ID, len(sub.Members), sub.Owner, sub.FoundAt)
	}
}
