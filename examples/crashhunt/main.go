// Crashhunt compares crash detection across parallelization settings on the
// crash-heaviest evaluation apps (the paper's RQ5, Table 5) and reports every
// distinct crash signature with where it was first seen — the analysis a
// tester runs to triage a parallel campaign's findings.
//
// Crash counts are small integers and noisy per seed; see EXPERIMENTS.md's
// "Fidelity gaps" for why this substrate does not reproduce the paper's
// 1.2–2.1× crash improvements (coverage and overlap results do transfer).
//
//	go run ./examples/crashhunt
package main

import (
	"fmt"
	"log"
	"sort"

	"taopt"
)

func main() {
	apps := []string{"Google Translate", "AbsWorkout", "Merriam-Webster"}
	tools := []string{"monkey", "ape"}

	fmt.Println("Unique crashes by setting (1h × 5 instances per run):")
	fmt.Printf("%-20s %-10s %10s %10s %10s\n", "app", "tool", "baseline", "TaOPT(D)", "TaOPT(R)")

	type key struct{ setting taopt.Setting }
	totals := map[taopt.Setting]int{}
	firstSeen := map[string]string{} // crash signature -> where it was first found

	for _, appName := range apps {
		app := taopt.LoadApp(appName)
		for _, tool := range tools {
			counts := map[taopt.Setting]int{}
			for _, setting := range []taopt.Setting{taopt.Baseline, taopt.TaOPTDuration, taopt.TaOPTResource} {
				res, err := taopt.Run(taopt.RunConfig{
					App:     app,
					Tool:    tool,
					Setting: setting,
					Seed:    11,
				})
				if err != nil {
					log.Fatal(err)
				}
				counts[setting] = res.UniqueCrashes
				totals[setting] += res.UniqueCrashes
				for _, inst := range res.Instances {
					for _, rep := range inst.Crashes.Reports() {
						sig := string(rep.Signature)
						if _, ok := firstSeen[sig]; !ok {
							firstSeen[sig] = fmt.Sprintf("%s/%s/%s (instance %d at %v)",
								appName, tool, setting, rep.Instance, rep.At)
						}
					}
				}
			}
			fmt.Printf("%-20s %-10s %10d %10d %10d\n", appName, tool,
				counts[taopt.Baseline], counts[taopt.TaOPTDuration], counts[taopt.TaOPTResource])
		}
	}

	fmt.Printf("\ntotals: baseline=%d, taopt-duration=%d, taopt-resource=%d\n",
		totals[taopt.Baseline], totals[taopt.TaOPTDuration], totals[taopt.TaOPTResource])

	fmt.Printf("\n%d distinct crash signatures observed; first sightings:\n", len(firstSeen))
	sigs := make([]string, 0, len(firstSeen))
	for sig := range firstSeen {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		fmt.Printf("  %s ← %s\n", sig, firstSeen[sig])
	}
}
