// Resourcemode demonstrates TaOPT's resource-constrained mode (Section 5.3):
// testing starts on a single device and the coordinator allocates more only
// as new UI subspaces are identified, within a fixed machine-time budget —
// the setting for teams paying per device-minute (the paper cites AWS Device
// Farm's $0.17/device-minute).
//
//	go run ./examples/resourcemode
package main

import (
	"fmt"
	"log"

	"taopt"
)

const dollarsPerDeviceMinute = 0.17 // AWS Device Farm, per the paper

func main() {
	app := taopt.LoadApp("UC Browser")

	baseline, err := taopt.Run(taopt.RunConfig{
		App:     app,
		Tool:    "ape",
		Setting: taopt.Baseline,
		Seed:    5,
	})
	if err != nil {
		log.Fatal(err)
	}

	budget := 5 * taopt.Hour // the same 5 machine-hours the baseline burns
	optimized, err := taopt.Run(taopt.RunConfig{
		App:           app,
		Tool:          "ape",
		Setting:       taopt.TaOPTResource,
		MachineBudget: budget,
		Seed:          5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Ape on %s, %v machine-time budget\n\n", app.Name, budget)
	fmt.Printf("%-34s %14s %14s\n", "", "baseline 5×1h", "TaOPT resource")
	fmt.Printf("%-34s %14d %14d\n", "methods covered", baseline.Union.Count(), optimized.Union.Count())
	fmt.Printf("%-34s %14v %14v\n", "wall-clock used", baseline.WallUsed, optimized.WallUsed)
	fmt.Printf("%-34s %14v %14v\n", "machine time used", baseline.MachineUsed.Round(taopt.Second), optimized.MachineUsed.Round(taopt.Second))
	fmt.Printf("%-34s %14d %14d\n", "instance allocations", len(baseline.Instances), len(optimized.Instances))

	// The RQ4 economics: machine time needed to match the baseline's final
	// coverage.
	target := baseline.Union.Count()
	if at, ok := optimized.Timeline.MachineToReach(target); ok {
		saved := budget - at
		fmt.Printf("\nTaOPT matched the baseline's %d methods after %v of machine time,\n", target, at.Round(taopt.Second))
		fmt.Printf("leaving %v unused — $%.2f of device time at AWS Device Farm rates.\n",
			saved.Round(taopt.Second), saved.Minutes()*dollarsPerDeviceMinute)
	} else {
		fmt.Printf("\nTaOPT reached %d of the baseline's %d methods within the budget.\n",
			optimized.Union.Count(), target)
	}

	fmt.Println("\nInstance ramp-up (allocation times):")
	for _, inst := range optimized.Instances {
		fmt.Printf("  instance %-3d %v -> %v  (%d methods)\n",
			inst.ID, inst.Allocated.Round(taopt.Second), inst.Released.Round(taopt.Second), inst.Methods.Count())
		if inst.ID > 8 {
			fmt.Printf("  ... and %d more\n", len(optimized.Instances)-9)
			break
		}
	}
}
