// Protocol demonstrates the paper's Section 7 discussion: TaOPT's core —
// detecting loosely coupled subspaces online and dedicating them to parallel
// explorers — generalizes to any event-driven system whose state space is
// globally sparse and locally dense.
//
// Here the "app" is a file-transfer protocol implementation: states are
// protocol states (grouped into handshake, authentication, transfer and
// recovery phases), "UI actions" are protocol messages, and the "testing
// tool" is a random message fuzzer. Phases interconnect densely inside and
// sparsely across — the same GS-LD shape as mobile-app functionalities — so
// TaOPT partitions them across fuzzer instances without knowing anything
// about protocols.
//
//	go run ./examples/protocol
package main

import (
	"fmt"
	"log"

	"taopt"
)

// buildProtocol models the protocol's reachable state machine with the same
// primitives as a mobile AUT: one screen per protocol state, one widget per
// message valid in that state. The generator's functionality blocks become
// protocol phases.
func buildProtocol() *taopt.App {
	spec := taopt.NewAppSpec("FTProtocol", 20260705)
	spec.Category = "Protocol"
	spec.Subspaces = 4 // handshake, auth, transfer, recovery
	spec.ScreensMin, spec.ScreensMax = 24, 32
	spec.WidgetsMin, spec.WidgetsMax = 4, 7 // messages valid per state
	spec.ActivitiesMin, spec.ActivitiesMax = 1, 2
	// "Methods" become implementation branches exercised by handling a
	// message in a state.
	spec.VisitMethodsMin, spec.VisitMethodsMax = 10, 30
	spec.WidgetMethodsMin, spec.WidgetMethodsMax = 3, 8
	spec.ExtraMethods = 500
	spec.CrashSites = 8 // protocol-violation bugs
	return taopt.GenerateApp(spec)
}

func main() {
	protocol := buildProtocol()
	fmt.Printf("System under test: %s — %d protocol states in %d phases, %d implementation branches\n\n",
		protocol.Name, len(protocol.Screens), protocol.Subspaces, protocol.MethodCount())

	run := func(setting taopt.Setting) *taopt.RunResult {
		res, err := taopt.Run(taopt.RunConfig{
			App:      protocol,
			Tool:     "monkey", // a random fuzzer over valid messages
			Setting:  setting,
			Duration: 45 * taopt.Minute,
			Seed:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	baseline := run(taopt.Baseline)
	optimized := run(taopt.TaOPTDuration)

	fmt.Printf("%-30s %12s %12s\n", "5 parallel fuzzers, 45 min", "baseline", "TaOPT")
	fmt.Printf("%-30s %12d %12d\n", "branches covered", baseline.Union.Count(), optimized.Union.Count())
	fmt.Printf("%-30s %12d %12d\n", "protocol bugs found", baseline.UniqueCrashes, optimized.UniqueCrashes)
	fmt.Printf("%-30s %12.1f %12.1f\n", "avg visits per state",
		baseline.UIOccurrenceAverage(), optimized.UIOccurrenceAverage())

	fmt.Printf("\nTaOPT partitioned the protocol into %d regions without knowing it is a protocol:\n",
		len(optimized.Subspaces))
	for _, sub := range optimized.Subspaces {
		fmt.Printf("  region %d: %d states, dedicated to fuzzer %d at %v\n",
			sub.ID, len(sub.Members), sub.Owner, sub.FoundAt)
	}
	fmt.Println("\nThe coordinator only ever saw state fingerprints and transition traces —")
	fmt.Println("the same contract Toller provides for mobile UIs (paper, Section 7).")
}
