// Shopping walks through the paper's motivating example (Figure 2): an
// online-shopping app whose UI space splits into a Shopping functionality
// and an Account Settings functionality, loosely coupled through the
// MainTabs hub. It shows (1) the ground-truth structure, (2) why
// activity-granularity partitioning fails on it, and (3) TaOPT identifying
// and separating the two subspaces online.
//
//	go run ./examples/shopping
package main

import (
	"fmt"
	"log"

	"taopt"
)

func main() {
	app := taopt.MotivatingExample()

	fmt.Println("Figure 2's online shopping app:")
	for _, s := range app.Screens {
		zone := map[int]string{0: "hub", 1: "shopping", 2: "account"}[s.Subspace]
		fmt.Printf("  %-16s activity=%-28s zone=%s\n", s.Title, trimPkg(s.Activity), zone)
	}
	fmt.Println()
	fmt.Println("Note the traps for activity-granularity partitioning: WishList runs in")
	fmt.Println("MainTabsActivity (the hub's activity) and AccountSetting reuses")
	fmt.Println("SettingActivity — functionalities and activities do not line up.")
	fmt.Println()

	run := func(setting taopt.Setting) *taopt.RunResult {
		cfg := taopt.RunConfig{
			App:      app,
			Tool:     "wctester",
			Setting:  setting,
			Duration: 30 * taopt.Minute,
			Seed:     7,
		}
		if setting == taopt.TaOPTDuration {
			// The coordinator's breadth guard rejects candidates claiming
			// more than half the known screens — correct for apps with many
			// functionalities, but this demo app has exactly two, so each
			// genuinely IS about half the space. Relax the guard for the
			// walk-through.
			cc := taopt.DefaultCoordinatorConfig(taopt.DurationConstrained)
			cc.MaxSpaceFraction = 0.75
			cfg.CoreConfig = &cc
		}
		res, err := taopt.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	baseline := run(taopt.Baseline)
	activity := run(taopt.ActivityPartition)
	optimized := run(taopt.TaOPTDuration)

	fmt.Printf("%-24s %10s %10s %10s\n", "WCTester, 5×30min", "baseline", "activity", "TaOPT")
	fmt.Printf("%-24s %10d %10d %10d\n", "methods covered",
		baseline.Union.Count(), activity.Union.Count(), optimized.Union.Count())
	fmt.Printf("%-24s %10.1f %10.1f %10.1f\n", "avg UI occurrences",
		baseline.UIOccurrenceAverage(), activity.UIOccurrenceAverage(), optimized.UIOccurrenceAverage())
	fmt.Printf("%-24s %10d %10d %10d\n", "unique crashes",
		baseline.UniqueCrashes, activity.UniqueCrashes, optimized.UniqueCrashes)

	fmt.Printf("\nTaOPT's identified subspaces (the paper's ★ is the Search tab entrypoint):\n")
	for _, sub := range optimized.Subspaces {
		fmt.Printf("  subspace %d: entry=%v, %d screens, owner=instance %d\n",
			sub.ID, sub.Entry, len(sub.Members), sub.Owner)
	}
	if len(optimized.Subspaces) == 0 {
		fmt.Println("  (none identified: with only 18 screens, every instance re-visits both")
		fmt.Println("  functionalities within a single analysis window, so no split is ever")
		fmt.Println("  loosely coupled *in time* — exactly the paper's point that coupling is a")
		fmt.Println("  property of the tool's transition probabilities, not of the static app")
		fmt.Println("  structure. Run examples/quickstart for identification at realistic scale.)")
	}
}

func trimPkg(activity string) string {
	for i := len(activity) - 1; i >= 0; i-- {
		if activity[i] == '.' {
			return activity[i+1:]
		}
	}
	return activity
}
