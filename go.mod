module taopt

go 1.22
