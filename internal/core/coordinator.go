package core

import (
	"errors"
	"sort"

	"taopt/internal/bus"
	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// Mode selects the coordinator's parallelization mode (Section 5.3).
type Mode int

// Coordinator modes.
const (
	// DurationConstrained maintains exactly d_max concurrent instances for
	// the whole testing period, immediately replacing de-allocated ones.
	DurationConstrained Mode = iota
	// ResourceConstrained starts with a single instance and allocates more
	// only as new UI subspaces are identified, within a machine-time budget.
	ResourceConstrained
)

func (m Mode) String() string {
	switch m {
	case DurationConstrained:
		return "duration-constrained"
	case ResourceConstrained:
		return "resource-constrained"
	default:
		return "unknown-mode"
	}
}

// Default thresholds from Section 5.2/5.3.
const (
	// LMinLong is l_min^long = 5 minutes (resource-constrained mode);
	// subspaces found with it are confidently accepted at once.
	LMinLong = 5 * sim.Duration(60e9)
	// LMinShort is l_min^short = 1 minute (duration-constrained mode);
	// subspaces found with it need confirmation by a second instance.
	LMinShort = 1 * sim.Duration(60e9)
	// PaperStagnation is the paper's de-allocation threshold: an instance
	// discovering no new UI screens for one minute is released. That
	// constant presupposes real industrial apps, whose content-driven UIs
	// produce novel abstract screens at a far higher rate than this
	// repository's finite synthetic screen graphs.
	PaperStagnation = 1 * sim.Duration(60e9)
	// StagnationWindow is the calibrated default for the synthetic apps:
	// scaled so that "no new screens for the window" implies genuine
	// exhaustion of an instance's reachable territory, as it does at one
	// minute on real apps (see DESIGN.md, calibration notes).
	StagnationWindow = 10 * sim.Duration(60e9)
	// HeartbeatWindow is the default hang-detection threshold: an allocated
	// instance producing no trace events at all for this long is declared
	// hung and released. Healthy instances emit events every few seconds
	// (one per tool action), so two minutes of total silence is over an
	// order of magnitude beyond any legitimate action latency — far tighter
	// than stagnation, which tolerates events that merely revisit old
	// screens.
	HeartbeatWindow = 2 * sim.Duration(60e9)
	// AllocRetryBase and AllocRetryCap bound the exponential backoff (in
	// virtual time) applied when the farm is temporarily out of capacity.
	AllocRetryBase = 10 * sim.Duration(1e9)
	AllocRetryCap  = 5 * sim.Duration(60e9)
)

// Config parameterises a Coordinator.
type Config struct {
	Mode Mode
	// LMin overrides the mode's default l_min when non-zero.
	LMin sim.Duration
	// Stagnation overrides StagnationWindow when non-zero.
	Stagnation sim.Duration
	// Analyzer carries the trace-analysis knobs; LMin above wins over
	// Analyzer.LMin.
	Analyzer AnalyzerConfig
	// MinSubspaceSize rejects candidates with fewer distinct member screens.
	MinSubspaceSize int
	// WarmUp rejects candidates reported before an instance has explored
	// this long: the first transient of a trace makes everything look novel,
	// so windows from it span unrelated functionalities.
	WarmUp sim.Duration
	// MaxSpaceFraction rejects candidates claiming more than this share of
	// all screens observed so far — a subspace is a part of the UI space,
	// never most of it.
	MaxSpaceFraction float64
	// ConfirmShort is how many distinct instances must report a matching
	// candidate under LMinShort before acceptance (paper: 2).
	ConfirmShort int
	// DropOrphans leaves a de-allocated owner's subspace blocked for
	// everyone instead of re-dedicating it to the next allocated instance.
	// Off by default: stagnation can fire before true exhaustion, and a
	// permanently orphaned subspace is a dead zone nobody can finish (the
	// ablation benches flip this).
	DropOrphans bool
	// Heartbeat overrides HeartbeatWindow when non-zero; negative disables
	// hang detection entirely.
	Heartbeat sim.Duration
	// AllocRetry and AllocRetryMax override the allocation backoff bounds
	// when non-zero.
	AllocRetry    sim.Duration
	AllocRetryMax sim.Duration
	// Obs, when non-nil, receives a typed decision-log event at every
	// consequential coordinator branch (candidate verdicts, subspace
	// lifecycle, health verdicts, allocation backoff). Nil — the default —
	// costs nothing: telemetry never runs on the per-event hot path.
	Obs *obs.Log
}

// DefaultConfig returns the paper's configuration for the given mode.
func DefaultConfig(mode Mode) Config {
	lmin := LMinShort
	if mode == ResourceConstrained {
		lmin = LMinLong
	}
	return Config{
		Mode:             mode,
		LMin:             lmin,
		Stagnation:       StagnationWindow,
		Analyzer:         DefaultAnalyzerConfig(lmin),
		MinSubspaceSize:  3,
		WarmUp:           3 * sim.Duration(60e9),
		MaxSpaceFraction: 0.5,
		ConfirmShort:     2,
	}
}

// Env is the coordinator's handle on the testing cloud's allocation
// primitives. The harness implements it; the coordinator never touches
// devices, tools or the app directly, and everything finer-grained than a
// lease — entrypoint blocks, lifecycle commands — travels as bus commands
// through the Sender given to NewCoordinator.
type Env interface {
	// Now returns the current virtual time.
	Now() sim.Duration
	// MaxInstances is the concurrency cap d_max.
	MaxInstances() int
	// ActiveInstances lists the IDs of running instances.
	ActiveInstances() []int
	// Allocate boots a new testing instance, returning its ID. An error
	// wrapping bus.ErrFarmBusy means no device is available right now
	// and the attempt may be retried; any other error is permanent (the
	// run is winding down) and stops further allocation.
	Allocate() (id int, err error)
	// Deallocate releases a running instance. Errors (unknown ID, double
	// release) are surfaced for accounting, never fatal.
	Deallocate(id int) error
}

// edgeObs records one observed way into a screen.
type edgeObs struct {
	from   ui.Signature
	widget ui.WidgetPath
}

// Coordinator is the test coordinator of Figure 1(b): it consumes analyzer
// candidates, accepts subspaces per the mode's rules, dedicates each
// subspace to one instance, blocks its entrypoints everywhere else, and
// manages allocation/de-allocation.
type Coordinator struct {
	cfg      Config
	env      Env
	port     bus.Sender
	analyzer *Analyzer
	// obs is the decision log (nil when telemetry is off; emits are nil-safe).
	obs *obs.Log

	// incoming[to] lists observed edges into screen `to`.
	incoming map[ui.Signature][]edgeObs
	// launchScreens are screens reached by app launches; they are never
	// blocked (blocking the home screen would wedge every instance).
	launchScreens map[ui.Signature]bool

	accepted []*Subspace
	owned    map[ui.Signature]int // member screen -> subspace ID

	// pending holds each instance's latest unconfirmed short-mode candidate.
	pending map[int]Candidate
	// orphans are accepted subspaces whose owner was de-allocated, queued
	// for re-dedication to the next allocated instance (oldest first).
	orphans []int

	// Stagnation tracking.
	seen    map[int]map[ui.Signature]bool
	lastNew map[int]sim.Duration
	// firstSeen is when each instance started exploring (for warm-up), and
	// globalSeen is every screen any instance has observed.
	firstSeen  map[int]sim.Duration
	globalSeen map[ui.Signature]bool

	// Health monitoring. lastEvent is trace-event recency per instance (the
	// heartbeat); tracked holds the instances this coordinator allocated and
	// has not yet retired — an ID in tracked but absent from the env's
	// active list died underneath us. tracked is set only in allocate() and
	// cleared only in retire(): trailing events from a just-released
	// instance must not resurrect it.
	lastEvent map[int]sim.Duration
	tracked   map[int]bool

	// Allocation retry state: deferred wants and capped exponential backoff
	// in virtual time. allocDisabled latches on a permanent (non-busy)
	// allocation error — the run is winding down.
	pendingAllocs int
	allocBackoff  sim.Duration
	nextAllocAt   sim.Duration
	allocDisabled bool

	// stats
	deallocations int
	allocations   int
	stats         Stats
}

// Stats counts coordinator decisions, for reports and debugging.
type Stats struct {
	Candidates    int // candidates received from the analyzer
	WarmingUp     int // rejected: instance still in its warm-up period
	TooBroad      int // rejected: claimed most of the known UI space
	TrimmedAway   int // rejected: too small after owned/launch trimming
	EntryTaken    int // rejected: entry already owned or unblockable
	Merged        int // folded into an enclosing subspace
	Extended      int // owner reports extending an accepted subspace
	Unconfirmed   int // stored as pending, waiting for a second reporter
	Accepted      int // accepted as new subspaces
	Allocations   int
	Deallocations int

	// Failure handling (all zero on a fault-free run).
	Deaths         int // instances that vanished from the farm without our release
	Hangs          int // instances released for missing the heartbeat window
	AllocDeferred  int // allocation attempts deferred on a busy farm
	ReleaseErrors  int // de-allocations the farm rejected (unknown/double)
	Orphaned       int // subspaces orphaned by their owner's departure
	Rededicated    int // orphans re-assigned to a replacement instance
	DroppedOrphans int // orphans left permanently blocked (DropOrphans)
	CmdRetries     int // block commands retransmitted after a retryable failure
	CmdDropped     int // block commands abandoned after exhausting retransmits
}

// NewCoordinator wires a coordinator to its environment and the transport
// it emits block commands on. Call Start before feeding events.
func NewCoordinator(cfg Config, env Env, port bus.Sender, book *trace.Book) *Coordinator {
	if cfg.LMin == 0 {
		cfg.LMin = LMinShort
		if cfg.Mode == ResourceConstrained {
			cfg.LMin = LMinLong
		}
	}
	if cfg.Stagnation == 0 {
		cfg.Stagnation = StagnationWindow
	}
	if cfg.MinSubspaceSize == 0 {
		cfg.MinSubspaceSize = 3
	}
	if cfg.WarmUp == 0 {
		cfg.WarmUp = 3 * sim.Duration(60e9)
	}
	if cfg.MaxSpaceFraction == 0 {
		cfg.MaxSpaceFraction = 0.5
	}
	if cfg.ConfirmShort == 0 {
		cfg.ConfirmShort = 2
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = HeartbeatWindow
	}
	if cfg.AllocRetry == 0 {
		cfg.AllocRetry = AllocRetryBase
	}
	if cfg.AllocRetryMax == 0 {
		cfg.AllocRetryMax = AllocRetryCap
	}
	cfg.Analyzer.LMin = cfg.LMin
	cfg.Analyzer.Obs = cfg.Obs
	cfg.Analyzer.Clock = env.Now
	return &Coordinator{
		cfg:           cfg,
		env:           env,
		port:          port,
		analyzer:      NewAnalyzer(cfg.Analyzer, book),
		obs:           cfg.Obs,
		incoming:      make(map[ui.Signature][]edgeObs),
		launchScreens: make(map[ui.Signature]bool),
		owned:         make(map[ui.Signature]int),
		pending:       make(map[int]Candidate),
		seen:          make(map[int]map[ui.Signature]bool),
		lastNew:       make(map[int]sim.Duration),
		firstSeen:     make(map[int]sim.Duration),
		globalSeen:    make(map[ui.Signature]bool),
		lastEvent:     make(map[int]sim.Duration),
		tracked:       make(map[int]bool),
	}
}

// Start allocates the initial instances: d_max at once in the
// duration-constrained mode, a single one in the resource-constrained mode
// (Figure 4, step 0).
func (c *Coordinator) Start() {
	want := 1
	if c.cfg.Mode == DurationConstrained {
		want = c.env.MaxInstances()
	}
	for i := 0; i < want; i++ {
		c.allocate()
	}
}

// Subspaces returns the accepted subspaces in acceptance order.
func (c *Coordinator) Subspaces() []*Subspace { return c.accepted }

// OrphanCount returns the number of subspaces currently waiting for (or,
// under DropOrphans, permanently denied) a replacement owner.
func (c *Coordinator) OrphanCount() int { return len(c.orphans) }

// Allocations and Deallocations expose lifecycle counts for reports.
func (c *Coordinator) Allocations() int   { return c.allocations }
func (c *Coordinator) Deallocations() int { return c.deallocations }

// DecisionStats returns counts of the coordinator's decisions so far.
func (c *Coordinator) DecisionStats() Stats {
	st := c.stats
	st.Allocations = c.allocations
	st.Deallocations = c.deallocations
	return st
}

// OnTransition consumes one Toller event. The harness subscribes the
// coordinator to every driver.
func (c *Coordinator) OnTransition(ev trace.Event) {
	now := c.env.Now()

	// Learn the UI transition graph's incoming edges (for entrypoint
	// blocking) from genuine tool actions.
	switch {
	case ev.Action.Kind == trace.ActionLaunch:
		c.launchScreens[ev.To] = true
	case ev.Action.Kind == trace.ActionTap && !ev.Enforced:
		c.learnEdge(ev)
	}

	// Heartbeat: any trace event proves the instance is alive.
	if c.tracked[ev.Instance] {
		c.lastEvent[ev.Instance] = now
	}

	// Stagnation bookkeeping: has this instance discovered a new screen?
	inst := ev.Instance
	s, ok := c.seen[inst]
	if !ok {
		s = make(map[ui.Signature]bool)
		c.seen[inst] = s
		c.lastNew[inst] = now
		c.firstSeen[inst] = now
	}
	c.globalSeen[ev.To] = true
	if !s[ev.To] {
		s[ev.To] = true
		c.lastNew[inst] = now
	}

	// Feed the analyzer.
	if cand, found := c.analyzer.Observe(ev); found {
		c.onCandidate(cand)
	}

	// De-allocate stagnant instances (Section 5.3, last paragraph).
	c.reapStagnant(now)
}

// learnEdge records how screens are reached, and retro-blocks newly learned
// edges into already-accepted subspaces on non-owner instances.
func (c *Coordinator) learnEdge(ev trace.Event) {
	eo := edgeObs{from: ev.From, widget: ev.Action.Widget}
	for _, e := range c.incoming[ev.To] {
		if e == eo {
			eo.widget = "" // sentinel: already known
			break
		}
	}
	if eo.widget == "" {
		return
	}
	c.incoming[ev.To] = append(c.incoming[ev.To], eo)

	// If this edge leads into a subspace someone owns, block it for every
	// non-owner immediately.
	if subID, owned := c.owned[ev.To]; owned {
		sub := c.accepted[subID]
		if sub.Members[ev.From] {
			return // internal edge
		}
		for _, id := range c.env.ActiveInstances() {
			if id != sub.Owner {
				c.blockWidget(id, ev.From, ev.Action.Widget)
			}
		}
	}
}

// reject logs one candidate-rejection verdict in the decision log.
func (c *Coordinator) reject(now sim.Duration, cand Candidate, reason string) {
	c.obs.Emit(obs.Decision{
		AtNS: obs.At(now), Kind: obs.KindReject, Instance: cand.Instance, Sub: -1,
		Entry: obs.Sig(cand.Entry), Reason: reason,
	})
}

// onCandidate applies the acceptance rules of Section 5.2: l_min^long
// candidates are accepted at once; l_min^short candidates need matching
// reports from ConfirmShort distinct instances.
func (c *Coordinator) onCandidate(cand Candidate) {
	c.stats.Candidates++
	now := c.env.Now()
	c.obs.Emit(obs.Decision{
		AtNS: obs.At(now), Kind: obs.KindCandidate, Instance: cand.Instance, Sub: -1,
		Entry: obs.Sig(cand.Entry), Members: len(cand.Members),
		Score: cand.Score, Overlap: cand.Overlap, Purity: cand.Purity,
	})
	if now-c.firstSeen[cand.Instance] < c.cfg.WarmUp {
		c.stats.WarmingUp++
		c.reject(now, cand, "warm-up")
		return
	}
	if float64(len(cand.Members)) > c.cfg.MaxSpaceFraction*float64(len(c.globalSeen)) {
		c.stats.TooBroad++
		c.reject(now, cand, "too-broad")
		return
	}
	// Trim screens that can never be blocked or are already owned, keeping
	// count of which accepted subspace the owned ones belong to.
	members := make([]ui.Signature, 0, len(cand.Members))
	overlapBySub := make(map[int]int)
	for _, m := range cand.Members {
		if c.launchScreens[m] {
			continue
		}
		if subID, taken := c.owned[m]; taken {
			overlapBySub[subID]++
			continue
		}
		members = append(members, m)
	}

	// A candidate majority-owned by one subspace is a re-observation of that
	// subspace, typically by its own owner going deeper: extend it rather
	// than accept the leftover as a separate subspace with a different owner
	// — fragmenting a functionality across owners makes them steer each
	// other out of their own territory.
	bestSub, bestOverlap := -1, 0
	subIDs := make([]int, 0, len(overlapBySub))
	for subID := range overlapBySub {
		subIDs = append(subIDs, subID)
	}
	sort.Ints(subIDs)
	for _, subID := range subIDs {
		if n := overlapBySub[subID]; n > bestOverlap {
			bestSub, bestOverlap = subID, n
		}
	}
	if bestSub >= 0 && bestOverlap >= len(members) && bestOverlap >= c.cfg.MinSubspaceSize {
		if len(members) > 0 && cand.Instance == c.accepted[bestSub].Owner {
			c.stats.Extended++
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(now), Kind: obs.KindExtend, Instance: cand.Instance, Sub: bestSub,
				Entry: obs.Sig(c.accepted[bestSub].Entry), Members: len(members),
			})
			c.merge(c.accepted[bestSub], members)
			c.analyzer.ResetInstance(cand.Instance)
		} else {
			c.reject(now, cand, "reobservation")
		}
		return
	}

	if len(members) < c.cfg.MinSubspaceSize {
		c.stats.TrimmedAway++
		c.reject(now, cand, "trimmed-away")
		return
	}
	if _, taken := c.owned[cand.Entry]; taken || c.launchScreens[cand.Entry] {
		c.stats.EntryTaken++
		c.reject(now, cand, "entry-taken")
		return
	}

	// A candidate whose every observed entrance comes from inside one
	// already-accepted subspace is not a new functionality: it is a deeper
	// region of that subspace, reachable only by its owner. Accepting it
	// standalone (with whatever instance happened to report it) would carve
	// a zone nobody can reach — the owner would be steered out of it and
	// everyone else is blocked from the path leading there. Merge it
	// instead, without confirmation: only the enclosing owner can ever see
	// it twice.
	if encl, ok := c.enclosingSubspace(cand.Entry, members); ok {
		// Merge only reports by the enclosing owner itself: the owner is the
		// one instance that legitimately explores past the subspace's
		// boundary, so its deeper findings extend the subspace. Anyone
		// else's report from inside someone's territory is a leak (a rare
		// cross edge) — folding it in would snowball unrelated screens.
		if cand.Instance == encl.Owner {
			c.stats.Merged++
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(now), Kind: obs.KindMerge, Instance: cand.Instance, Sub: encl.ID,
				Entry: obs.Sig(cand.Entry), Members: len(members),
			})
			c.merge(encl, members)
			c.analyzer.ResetInstance(cand.Instance)
		} else {
			c.reject(now, cand, "foreign-enclosed")
		}
		return
	}

	if c.cfg.LMin < LMinLong {
		confirmed, merged := c.confirm(cand, members)
		if !confirmed {
			c.stats.Unconfirmed++
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(now), Kind: obs.KindPending, Instance: cand.Instance, Sub: -1,
				Entry: obs.Sig(cand.Entry), Members: len(members),
			})
			return
		}
		members = merged
	}

	c.accept(cand, members)
}

// pendingTTL bounds how long an unconfirmed candidate stays comparable.
const pendingTTL = 5 * sim.Duration(60e9)

// confirm implements the short-l_min acceptance rule: a candidate is accepted
// only when a second instance has recently reported a matching subspace.
// "Matching" is member-set overlap — two instances exploring the same
// functionality settle on different screens, so entry equality would almost
// never fire.
func (c *Coordinator) confirm(cand Candidate, members []ui.Signature) (bool, []ui.Signature) {
	now := c.env.Now()
	memberSet := make(map[ui.Signature]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	// Deterministic iteration: acceptance decisions must not depend on map
	// iteration order.
	insts := make([]int, 0, len(c.pending))
	for inst := range c.pending {
		insts = append(insts, inst)
	}
	sort.Ints(insts)
	for _, inst := range insts {
		p := c.pending[inst]
		if inst != cand.Instance && now-p.At > pendingTTL {
			delete(c.pending, inst)
			continue
		}
		inter := 0
		for _, m := range p.Members {
			if memberSet[m] {
				inter++
			}
		}
		smaller := len(p.Members)
		if len(members) < smaller {
			smaller = len(members)
		}
		if smaller == 0 || float64(inter)/float64(smaller) < 0.5 {
			continue
		}
		// Matching reports confirm in two ways: a second instance reported
		// the same subspace (the paper's l_min^short rule), or the same
		// instance has kept reporting it for l_min^long — five minutes of
		// sustained exploration is exactly the evidence the long rule
		// accepts at once. The second way matters once coordination works:
		// instances end up in different functionalities, so cross-instance
		// confirmation dries up for late-discovered subspaces.
		if inst == cand.Instance && now-p.At < LMinLong {
			continue
		}
		// The accepted member set is the consensus — the intersection of
		// the two reports: screens appearing in only one report are as
		// likely leftovers of earlier roaming as genuine members.
		delete(c.pending, inst)
		delete(c.pending, cand.Instance)
		var consensus []ui.Signature
		for _, m := range p.Members {
			if memberSet[m] {
				consensus = append(consensus, m)
			}
		}
		if len(consensus) < c.cfg.MinSubspaceSize {
			return false, nil
		}
		reason := "second-instance"
		if inst == cand.Instance {
			reason = "sustained"
		}
		c.obs.Emit(obs.Decision{
			AtNS: obs.At(now), Kind: obs.KindConfirmed, Instance: cand.Instance, Sub: -1,
			Entry: obs.Sig(cand.Entry), Members: len(consensus), Reason: reason,
		})
		return true, consensus
	}

	// Store or refresh this instance's pending report. A report that still
	// matches the instance's previous one keeps the original timestamp, so
	// sustained exploration of one subspace accumulates toward the
	// l_min^long acceptance above.
	if prev, ok := c.pending[cand.Instance]; ok {
		inter := 0
		for _, m := range prev.Members {
			if memberSet[m] {
				inter++
			}
		}
		smaller := len(prev.Members)
		if len(members) < smaller {
			smaller = len(members)
		}
		if smaller > 0 && float64(inter)/float64(smaller) >= 0.5 {
			c.pending[cand.Instance] = Candidate{
				Instance: cand.Instance,
				Entry:    prev.Entry,
				Members:  members,
				Score:    cand.Score,
				At:       prev.At,
			}
			return false, nil
		}
	}
	c.pending[cand.Instance] = Candidate{
		Instance: cand.Instance,
		Entry:    cand.Entry,
		Members:  members,
		Score:    cand.Score,
		At:       now,
	}
	return false, nil
}

// enclosingSubspace reports the accepted subspace that fully encloses the
// candidate's entrances: every observed non-launch edge into the entry (and
// there is at least one) originates from that subspace's members.
func (c *Coordinator) enclosingSubspace(entry ui.Signature, members []ui.Signature) (*Subspace, bool) {
	memberSet := make(map[ui.Signature]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	enclosing := -1
	found := false
	for _, e := range c.incoming[entry] {
		if memberSet[e.from] {
			continue // internal edges say nothing about enclosure
		}
		if c.launchScreens[e.from] {
			return nil, false // reachable straight from the hub: top-level
		}
		subID, owned := c.owned[e.from]
		if !owned {
			return nil, false // reachable from unowned territory: standalone
		}
		if enclosing >= 0 && subID != enclosing {
			return nil, false // straddles two subspaces: standalone
		}
		enclosing = subID
		found = true
	}
	if !found || enclosing < 0 {
		return nil, false
	}
	return c.accepted[enclosing], true
}

// merge folds the absorbable subset of members into an existing subspace and
// blocks the additions on every non-owner instance.
func (c *Coordinator) merge(sub *Subspace, members []ui.Signature) {
	absorbed := c.absorbable(sub, members)
	if len(absorbed) == 0 {
		return
	}
	for _, m := range absorbed {
		sub.Members[m] = true
		c.owned[m] = sub.ID
	}
	for _, id := range c.env.ActiveInstances() {
		if id != sub.Owner {
			c.blockSubspace(id, sub)
		}
	}
}

// absorbable returns the subset of candidate screens that are genuine
// extensions of sub. A candidate screen qualifies when (a) none of its
// observed incoming edges originate outside the subspace-plus-candidate
// region (an outside edge means the screen is reachable without passing
// through the subspace, so blocking it as part of the subspace would be
// wrong), and (b) it is connected to the subspace: reachable from a member
// through qualifying candidate screens. Launch screens always count as
// outside. Candidate-internal cycles are fine — flows loop — which is why
// the connectivity check grows as a closure from the subspace boundary.
func (c *Coordinator) absorbable(sub *Subspace, members []ui.Signature) []ui.Signature {
	candidate := make(map[ui.Signature]bool, len(members))
	for _, m := range members {
		if _, taken := c.owned[m]; !taken && !c.launchScreens[m] {
			candidate[m] = true
		}
	}

	// (a) sealed: no edges from genuinely external screens.
	sealed := make(map[ui.Signature]bool, len(candidate))
	for m := range candidate {
		ok := true
		for _, e := range c.incoming[m] {
			if e.from == m || sub.Members[e.from] || candidate[e.from] {
				continue
			}
			ok = false
			break
		}
		if ok {
			sealed[m] = true
		}
	}

	// (b) connected: closure from the subspace boundary over sealed screens.
	acc := make(map[ui.Signature]bool)
	for changed := true; changed; {
		changed = false
		for m := range sealed {
			if acc[m] {
				continue
			}
			for _, e := range c.incoming[m] {
				if sub.Members[e.from] || acc[e.from] {
					acc[m] = true
					changed = true
					break
				}
			}
		}
	}

	out := make([]ui.Signature, 0, len(acc))
	for _, m := range members {
		if acc[m] {
			out = append(out, m)
		}
	}
	return out
}

// accept dedicates the subspace to the discovering instance and blocks its
// entrypoints on every other instance (Figure 4, step 5).
func (c *Coordinator) accept(cand Candidate, members []ui.Signature) {
	c.stats.Accepted++
	sub := &Subspace{
		ID:      len(c.accepted),
		Entry:   cand.Entry,
		Members: make(map[ui.Signature]bool, len(members)),
		Owner:   cand.Instance,
		FoundAt: c.env.Now(),
	}
	for _, m := range members {
		sub.Members[m] = true
		c.owned[m] = sub.ID
	}
	sub.InitialMembers = len(sub.Members)
	c.accepted = append(c.accepted, sub)
	c.obs.Emit(obs.Decision{
		AtNS: obs.At(sub.FoundAt), Kind: obs.KindAccept, Instance: sub.Owner, Sub: sub.ID,
		Entry: obs.Sig(sub.Entry), Members: sub.InitialMembers, Score: cand.Score,
	})

	for _, id := range c.env.ActiveInstances() {
		if id != sub.Owner {
			c.blockSubspace(id, sub)
		}
	}
	// The owner's current segment is now a dedicated subspace; start its
	// next identification fresh.
	c.analyzer.ResetInstance(sub.Owner)

	// Resource-constrained mode: a newly identified subspace justifies a
	// new instance if a device is free (Figure 4, step 6). The new instance
	// is blocked from every accepted subspace, so it explores the rest.
	if c.cfg.Mode == ResourceConstrained {
		c.allocate()
	}
}

// blockWidget and blockMember emit one entrypoint-block command each on the
// transport. Permanent reply errors are ignored: blocking a just-departed
// instance is a no-op at the executor, exactly as installing blocks on a
// throwaway set was. Retryable failures — the transport reported loss —
// are retransmitted by sendBlock.
func (c *Coordinator) blockWidget(id int, from ui.Signature, w ui.WidgetPath) {
	c.sendBlock(bus.Command{Kind: bus.BlockWidget, Instance: id, Screen: from, Widget: w})
}

func (c *Coordinator) blockMember(id int, m ui.Signature) {
	c.sendBlock(bus.Command{Kind: bus.BlockMember, Instance: id, Screen: m})
}

// cmdRetryLimit bounds the retransmits of one lost block command. Block
// commands are idempotent at the executor (installing the same block twice
// is a no-op), so retransmission is always safe; the bound keeps a severed
// transport from looping forever.
const cmdRetryLimit = 3

// sendBlock fires one block command, retransmitting on retryable failures
// (the transport reported loss or timeout, not a permanent refusal). A
// command that exhausts the budget is abandoned and decision-logged: the
// entrypoint stays unblocked until the analyzer re-learns the edge, which
// degrades efficiency, never correctness.
func (c *Coordinator) sendBlock(cmd bus.Command) {
	rep := c.port.Send(cmd)
	for attempt := 0; rep.Err != nil && bus.Retryable(rep.Err); attempt++ {
		if attempt == cmdRetryLimit {
			c.stats.CmdDropped++
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(c.env.Now()), Kind: obs.KindCmdDrop, Instance: cmd.Instance, Sub: -1,
				Entry: obs.Sig(cmd.Screen), Reason: cmd.Kind.String(),
			})
			return
		}
		c.stats.CmdRetries++
		c.obs.Emit(obs.Decision{
			AtNS: obs.At(c.env.Now()), Kind: obs.KindCmdRetry, Instance: cmd.Instance, Sub: -1,
			Entry: obs.Sig(cmd.Screen), Reason: cmd.Kind.String(),
		})
		rep = c.port.Send(cmd)
	}
}

// blockSubspace installs sub's blocks on one instance: every observed edge
// from outside into the subspace is disabled, and members are marked so the
// driver steers the tool out if it slips in through an unobserved edge.
// Members are visited in sorted signature order — the command sequence on
// the transport is part of the run's reproducible record (wire logs are
// diffed byte-for-byte), so it must not inherit map iteration order.
func (c *Coordinator) blockSubspace(id int, sub *Subspace) {
	members := make([]ui.Signature, 0, len(sub.Members))
	for m := range sub.Members {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, m := range members {
		c.blockMember(id, m)
		for _, e := range c.incoming[m] {
			if !sub.Members[e.from] {
				c.blockWidget(id, e.from, e.widget)
			}
		}
	}
}

// allocate boots a new instance. If any accepted subspace was orphaned by
// its owner's de-allocation, the oldest orphan is re-dedicated to the new
// instance (a subspace must always have a living owner, or it becomes a
// permanently blocked dead zone); every other accepted subspace is blocked.
//
// On a busy farm (bus.ErrFarmBusy) the want is deferred and retried by
// Tick with capped exponential backoff; any other allocation error is
// permanent (the run is winding down) and disables allocation for good.
func (c *Coordinator) allocate() (int, bool) {
	if c.allocDisabled {
		return 0, false
	}
	id, err := c.env.Allocate()
	if err != nil {
		if bus.Retryable(err) {
			reason := "farm-busy"
			if errors.Is(err, bus.ErrTimeout) {
				reason = "command-timeout"
			}
			c.deferAllocation(reason)
		} else {
			c.allocDisabled = true
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(c.env.Now()), Kind: obs.KindAllocDisable, Instance: -1, Sub: -1,
				Reason: err.Error(),
			})
		}
		return 0, false
	}
	c.allocations++
	c.allocBackoff = 0
	c.nextAllocAt = 0
	now := c.env.Now()
	c.obs.Emit(obs.Decision{
		AtNS: obs.At(now), Kind: obs.KindAllocate, Instance: id, Sub: -1,
	})
	c.lastNew[id] = now
	c.lastEvent[id] = now
	c.tracked[id] = true
	if !c.cfg.DropOrphans && len(c.orphans) > 0 {
		adopted := c.orphans[0]
		c.accepted[adopted].Owner = id
		c.orphans = c.orphans[1:]
		c.stats.Rededicated++
		c.obs.Emit(obs.Decision{
			AtNS: obs.At(now), Kind: obs.KindRededicate, Instance: id, Sub: adopted,
			Entry: obs.Sig(c.accepted[adopted].Entry),
		})
	}
	for _, sub := range c.accepted {
		if sub.Owner != id {
			c.blockSubspace(id, sub)
		}
	}
	return id, true
}

// deferAllocation queues one want for the next Tick and extends the backoff:
// base on the first consecutive failure, doubling up to the cap afterwards.
// reason records why the attempt failed retryably ("farm-busy" or
// "command-timeout").
func (c *Coordinator) deferAllocation(reason string) {
	if c.pendingAllocs < c.env.MaxInstances() {
		c.pendingAllocs++
	}
	c.stats.AllocDeferred++
	if c.allocBackoff == 0 {
		c.allocBackoff = c.cfg.AllocRetry
	} else {
		c.allocBackoff *= 2
		if c.allocBackoff > c.cfg.AllocRetryMax {
			c.allocBackoff = c.cfg.AllocRetryMax
		}
	}
	c.nextAllocAt = c.env.Now() + c.allocBackoff
	c.obs.Emit(obs.Decision{
		AtNS: obs.At(c.env.Now()), Kind: obs.KindAllocDefer, Instance: -1, Sub: -1,
		BackoffNS: int64(c.allocBackoff), Reason: reason,
	})
}

// retire removes one instance from coordination: its lease is released when
// deallocate is set (dead instances are already gone from the farm), its
// analyzer window is discarded, and its subspaces are orphaned. Release
// errors are counted, never fatal — a stale lease must not take down the
// run.
func (c *Coordinator) retire(id int, deallocate bool) {
	now := c.env.Now()
	if deallocate {
		if err := c.env.Deallocate(id); err != nil {
			c.stats.ReleaseErrors++
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(now), Kind: obs.KindReleaseError, Instance: id, Sub: -1,
				Reason: err.Error(),
			})
		}
		c.deallocations++
	}
	c.analyzer.ResetInstance(id)
	delete(c.seen, id)
	delete(c.lastNew, id)
	delete(c.firstSeen, id)
	delete(c.lastEvent, id)
	delete(c.tracked, id)
	for _, sub := range c.accepted {
		if sub.Owner == id {
			c.orphans = append(c.orphans, sub.ID)
			reason := "queued"
			if c.cfg.DropOrphans {
				c.stats.DroppedOrphans++
				reason = "dropped"
			} else {
				c.stats.Orphaned++
			}
			c.obs.Emit(obs.Decision{
				AtNS: obs.At(now), Kind: obs.KindOrphan, Instance: id, Sub: sub.ID,
				Entry: obs.Sig(sub.Entry), Reason: reason,
			})
		}
	}
}

// replaceLost applies the mode's response to a lost instance:
// duration-constrained immediately allocates a replacement;
// resource-constrained allocates only when the departed owner left orphaned
// subspaces behind (identified work needing a living owner) and otherwise
// defers to the next subspace acceptance.
func (c *Coordinator) replaceLost() {
	switch {
	case c.cfg.Mode == DurationConstrained:
		c.allocate()
	case len(c.orphans) > 0:
		c.allocate()
	}
}

// reapStagnant de-allocates instances that have not discovered a new UI
// screen within the stagnation window, then applies the mode's response via
// replaceLost.
func (c *Coordinator) reapStagnant(now sim.Duration) {
	active := c.env.ActiveInstances()
	sort.Ints(active)
	for _, id := range active {
		last, ok := c.lastNew[id]
		if !ok {
			c.lastNew[id] = now
			continue
		}
		if now-last <= c.cfg.Stagnation {
			continue
		}
		c.obs.Emit(obs.Decision{
			AtNS: obs.At(now), Kind: obs.KindStagnant, Instance: id, Sub: -1,
			IdleNS: int64(now - last),
		})
		c.retire(id, true)
		c.replaceLost()
	}
	// Liveness guard (resource-constrained mode): the paper defers new
	// allocations until a new subspace is identified, but with zero active
	// instances nothing can ever be identified again. A practical deployment
	// relaunches one instance; we do the same (documented in DESIGN.md).
	if len(c.env.ActiveInstances()) == 0 {
		c.allocate()
	}
}

// Tick drives the health monitor and the allocation-retry loop. The harness
// calls it periodically (at its sampling cadence) so dead and hung
// instances are noticed even while no trace events arrive — precisely the
// situation a hang creates.
func (c *Coordinator) Tick(now sim.Duration) {
	c.checkHealth(now)
	c.ensureCapacity(now)
}

// checkHealth detects failed instances. Death: an instance this coordinator
// allocated is gone from the farm without our Deallocate — the emulator
// process died; its lease was already charged up to the failure. Hang: an
// instance is still allocated (and billed) but has produced no trace event
// for the heartbeat window; it is released and replaced. Both orphan the
// instance's subspaces through the usual queue.
func (c *Coordinator) checkHealth(now sim.Duration) {
	active := make(map[int]bool)
	for _, id := range c.env.ActiveInstances() {
		active[id] = true
	}

	tracked := make([]int, 0, len(c.tracked))
	for id := range c.tracked {
		tracked = append(tracked, id)
	}
	sort.Ints(tracked)
	for _, id := range tracked {
		if active[id] {
			continue
		}
		c.stats.Deaths++
		c.obs.Emit(obs.Decision{
			AtNS: obs.At(now), Kind: obs.KindDead, Instance: id, Sub: -1,
		})
		c.retire(id, false)
		c.replaceLost()
	}

	if c.cfg.Heartbeat <= 0 {
		return
	}
	ids := make([]int, 0, len(active))
	for id := range active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !c.tracked[id] {
			continue
		}
		last, ok := c.lastEvent[id]
		if !ok || now-last <= c.cfg.Heartbeat {
			continue
		}
		c.stats.Hangs++
		c.obs.Emit(obs.Decision{
			AtNS: obs.At(now), Kind: obs.KindHung, Instance: id, Sub: -1,
			IdleNS: int64(now - last),
		})
		c.retire(id, true)
		c.replaceLost()
	}
}

// ensureCapacity retries deferred allocations once the backoff expires, and
// tops the fleet back up to d_max in duration-constrained mode. Running
// degraded with fewer than d_max instances is the designed outcome while
// the farm stays busy — the coordinator keeps testing with whatever it has
// and never aborts.
func (c *Coordinator) ensureCapacity(now sim.Duration) {
	if c.allocDisabled {
		return
	}
	if c.cfg.Mode == DurationConstrained {
		if deficit := c.env.MaxInstances() - len(c.env.ActiveInstances()); deficit > c.pendingAllocs {
			c.pendingAllocs = deficit
		}
	}
	if len(c.env.ActiveInstances()) == 0 && c.pendingAllocs == 0 {
		c.pendingAllocs = 1
	}
	if c.pendingAllocs == 0 || now < c.nextAllocAt {
		return
	}
	want := c.pendingAllocs
	c.pendingAllocs = 0
	for i := 0; i < want; i++ {
		if _, ok := c.allocate(); !ok {
			// allocate re-queued this want (busy) or latched allocDisabled
			// (permanent); either way re-queue the untried remainder.
			c.pendingAllocs += want - i - 1
			break
		}
	}
}
