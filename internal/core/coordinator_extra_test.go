package core

import (
	"fmt"
	"testing"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

func TestConfirmPendingTTLExpiry(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(30)
	cfg := shortCfg()
	c := NewCoordinator(cfg, env, env, book)
	c.Start()

	// Instance 0 reports region 10; then nothing matching for > TTL;
	// instance 1's later matching report must NOT confirm against the
	// stale pending entry.
	drive(c, env, 0, sigs, roamThenSettle(10, 100), 1)
	if len(c.Subspaces()) != 0 {
		t.Skip("accepted immediately; TTL path not reachable on this walk")
	}
	// Advance time far beyond the TTL with unrelated instance-2 traffic.
	drive(c, env, 2, sigs, roamThenSettle(20, 400), 1)

	before := len(c.Subspaces())
	drive(c, env, 1, sigs, roamThenSettle(10, 100), 1)
	// Any acceptance now must have come from fresh double-reporting or
	// l_long persistence, not from the expired pending entry. We can't
	// distinguish directly, but the pending map must not contain stale
	// entries afterwards.
	_ = before
	for inst, p := range c.pending {
		if env.Now()-p.At > pendingTTL+LMinLong {
			t.Fatalf("stale pending entry for instance %d (age %v)", inst, env.Now()-p.At)
		}
	}
}

// driveBoth interleaves the same walk on two instances so neither stagnates
// while the coordinator is still confirming the subspace.
func driveBoth(c *Coordinator, env *fakeEnv, a, b int, sigs []ui.Signature, walk []int) {
	for _, inst := range []int{a, b} {
		c.OnTransition(trace.Event{
			Instance: inst, At: env.now,
			Action: trace.Action{Kind: trace.ActionLaunch}, To: sigs[walk[0]],
		})
	}
	for i := 1; i < len(walk); i++ {
		env.now += sim.Duration(1e9)
		for _, inst := range []int{a, b} {
			c.OnTransition(trace.Event{
				Instance: inst, At: env.now,
				Action: trace.Action{Kind: trace.ActionTap, Widget: ui.WidgetPath(fmt.Sprintf("w@%d", walk[i]))},
				From:   sigs[walk[i-1]], To: sigs[walk[i]], Activity: fmt.Sprintf("Act%d", walk[i]),
			})
		}
	}
}

func TestDropOrphansKeepsSubspaceBlocked(t *testing.T) {
	env := newFakeEnv(3)
	book, sigs := testBook(30)
	cfg := shortCfg()
	cfg.DropOrphans = true
	cfg.Stagnation = 150 * sim.Duration(1e9)
	c := NewCoordinator(cfg, env, env, book)
	c.Start()

	driveBoth(c, env, 0, 1, sigs, roamThenSettle(10, 120))
	if len(c.Subspaces()) == 0 {
		t.Fatal("setup: no subspace")
	}
	owner := c.Subspaces()[0].Owner

	// Stagnate the owner until it is reaped.
	for i := 0; i < 200; i++ {
		env.now += 2 * sim.Duration(1e9)
		c.OnTransition(trace.Event{
			Instance: owner, At: env.now,
			Action: trace.Action{Kind: trace.ActionTap, Widget: "w"},
			From:   sigs[10], To: sigs[10], Activity: "Act10",
		})
	}
	reaped := false
	for _, id := range env.deallocs {
		if id == owner {
			reaped = true
		}
	}
	if !reaped {
		t.Fatal("owner never reaped")
	}
	// With DropOrphans, the replacement instance must have the subspace
	// blocked (it did NOT inherit ownership).
	newest := env.active[len(env.active)-1]
	if newest == owner {
		t.Fatal("owner still active")
	}
	if !env.Blocks(newest).IsMember(sigs[11]) {
		t.Fatal("dropped orphan subspace not blocked on the replacement")
	}
}

func TestRededicationTransfersOwnership(t *testing.T) {
	env := newFakeEnv(3)
	book, sigs := testBook(30)
	cfg := shortCfg()
	cfg.Stagnation = 150 * sim.Duration(1e9)
	c := NewCoordinator(cfg, env, env, book)
	c.Start()

	driveBoth(c, env, 0, 1, sigs, roamThenSettle(10, 120))
	if len(c.Subspaces()) == 0 {
		t.Fatal("setup: no subspace")
	}
	sub := c.Subspaces()[0]
	owner := sub.Owner

	for i := 0; i < 200; i++ {
		env.now += 2 * sim.Duration(1e9)
		c.OnTransition(trace.Event{
			Instance: owner, At: env.now,
			Action: trace.Action{Kind: trace.ActionTap, Widget: "w"},
			From:   sigs[10], To: sigs[10], Activity: "Act10",
		})
	}
	if sub.Owner == owner {
		t.Fatal("ownership not transferred after the owner's de-allocation")
	}
	// The new owner must not be blocked from the subspace (its block set
	// is fresh, and allocate() skipped blocking the inherited subspace).
	if env.Blocks(sub.Owner).IsMember(sigs[11]) {
		t.Fatal("new owner blocked from its inherited subspace")
	}
}

func TestCoordinatorAllocateFailsGracefully(t *testing.T) {
	env := newFakeEnv(1)
	env.allocFail = true
	book, _ := testBook(1)
	c := NewCoordinator(DefaultConfig(DurationConstrained), env, env, book)
	c.Start() // must not panic with zero allocatable devices
	if len(env.active) != 0 {
		t.Fatal("allocated despite failure")
	}
}

func TestModeString(t *testing.T) {
	if DurationConstrained.String() != "duration-constrained" ||
		ResourceConstrained.String() != "resource-constrained" ||
		Mode(9).String() != "unknown-mode" {
		t.Fatal("Mode.String wrong")
	}
}
