package core

import (
	"testing"
	"testing/quick"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

const second = sim.Duration(1e9)

// mkTrace builds a visit sequence from screen tokens, one second apart.
func mkTrace(tokens []int) []ScreenVisit {
	out := make([]ScreenVisit, len(tokens))
	for i, tok := range tokens {
		out[i] = ScreenVisit{Sig: ui.Signature(tok + 1), At: sim.Duration(i) * second}
	}
	return out
}

// switchTrace: `before` steps cycling screens 0..4, then `after` steps
// cycling screens 100..104 — a clean jump into a fresh subspace.
func switchTrace(before, after int) []ScreenVisit {
	var tokens []int
	for i := 0; i < before; i++ {
		tokens = append(tokens, i%5)
	}
	for i := 0; i < after; i++ {
		tokens = append(tokens, 100+i%5)
	}
	return mkTrace(tokens)
}

func TestFindSpaceIdentifiesCleanSwitch(t *testing.T) {
	visits := switchTrace(120, 240)
	res, ok := FindSpace(visits, 60*second, MatchExact{})
	if !ok {
		t.Fatal("FindSpace found nothing on a clean switch")
	}
	if res.POut < 115 || res.POut > 125 {
		t.Fatalf("p_out = %d, want ≈120", res.POut)
	}
	if res.Entry != visits[res.POut].Sig {
		t.Fatal("entry must be the screen at p_out")
	}
	if len(res.Members) != 5 {
		t.Fatalf("members = %d, want the 5 new screens", len(res.Members))
	}
	for _, m := range res.Members {
		if m < ui.Signature(101) {
			t.Fatalf("member %v from the old region", m)
		}
	}
	if res.Score > 0.3 {
		t.Fatalf("clean switch score = %v, want low", res.Score)
	}
}

func TestFindSpaceHomogeneousTraceIsOneSubspace(t *testing.T) {
	// A trace that cycles the same screens from the start IS one settled
	// subspace by Algorithm 1's lights: the best split is right after the
	// first screen and the members are exactly the cycled screens. Guarding
	// against accepting "everything the instance knows" as a subspace is
	// the coordinator's job (warm-up, MaxSpaceFraction, confirmation), not
	// FindSpace's.
	visits := switchTrace(300, 0)
	res, ok := FindSpace(visits, 60*second, MatchExact{})
	if !ok {
		t.Fatal("no result")
	}
	if len(res.Members) > 5 {
		t.Fatalf("members = %d, want at most the 5 cycled screens", len(res.Members))
	}
	for _, m := range res.Members {
		if m > ui.Signature(5) {
			t.Fatalf("unexpected member %v", m)
		}
	}
}

func TestFindSpaceRespectsLMin(t *testing.T) {
	// The new region has only been explored for 30 steps = 30s < l_min.
	visits := switchTrace(200, 30)
	res, ok := FindSpace(visits, 60*second, MatchExact{})
	if ok {
		// p_max forces the split at least l_min before the end: the "new
		// subspace" window then mixes both regions, so any result must not
		// look confident.
		if res.Score < 0.3 && res.POut >= 195 {
			t.Fatalf("split inside the l_min guard: p_out=%d score=%v", res.POut, res.Score)
		}
	}
}

func TestFindSpaceShortTraces(t *testing.T) {
	if _, ok := FindSpace(nil, 60*second, MatchExact{}); ok {
		t.Fatal("empty trace")
	}
	if _, ok := FindSpace(mkTrace([]int{1, 2}), 60*second, MatchExact{}); ok {
		t.Fatal("two-event trace")
	}
	// All events within l_min of the end: p_max < 1.
	visits := mkTrace([]int{1, 2, 3, 4, 5})
	if _, ok := FindSpace(visits, 3600*second, MatchExact{}); ok {
		t.Fatal("trace shorter than l_min must not split")
	}
}

func TestFindSpaceRevisitedRegionScoresWorse(t *testing.T) {
	// Region A, then B, then back to A: splitting at B's entry leaves A
	// screens in the suffix (revisits), so the score must be worse than a
	// clean switch's.
	var tokens []int
	for i := 0; i < 100; i++ {
		tokens = append(tokens, i%5)
	}
	for i := 0; i < 100; i++ {
		tokens = append(tokens, 100+i%5)
	}
	for i := 0; i < 100; i++ {
		tokens = append(tokens, i%5)
	}
	resMixed, okMixed := FindSpace(mkTrace(tokens), 60*second, MatchExact{})
	resClean, okClean := FindSpace(switchTrace(100, 200), 60*second, MatchExact{})
	if !okClean {
		t.Fatal("clean switch not found")
	}
	if okMixed && resMixed.Score <= resClean.Score {
		t.Fatalf("returning to the old region must not score better: mixed %v vs clean %v",
			resMixed.Score, resClean.Score)
	}
}

// fuzzMatcher counts similar tokens (within distance 1) as matching,
// exercising the CountIn similarity path.
type fuzzMatcher struct{}

func (fuzzMatcher) Match(a, b ui.Signature) bool {
	d := int64(a) - int64(b)
	if d < 0 {
		d = -d
	}
	return d <= 1
}

func TestFindSpaceWithSimilarityMatcher(t *testing.T) {
	visits := switchTrace(120, 240)
	res, ok := FindSpace(visits, 60*second, fuzzMatcher{})
	if !ok {
		t.Fatal("no result under fuzzy matching")
	}
	if res.POut < 110 || res.POut > 130 {
		t.Fatalf("p_out = %d, want ≈120", res.POut)
	}
}

// TestFindSpaceIncrementalMatchesNaive is the property test for the O(N·D)
// sweep: it must produce exactly the naive Algorithm 1 scores.
func TestFindSpaceIncrementalMatchesNaive(t *testing.T) {
	naive := func(visits []ScreenVisit, lMin sim.Duration, m Matcher) (int, float64, bool) {
		n := len(visits)
		if n < 3 {
			return 0, 0, false
		}
		end := visits[n-1].At
		pMax := -1
		for p := n - 1; p >= 0; p-- {
			if visits[p].At <= end-lMin {
				pMax = p
				break
			}
		}
		if pMax < 1 {
			return 0, 0, false
		}
		sample := map[ui.Signature]bool{}
		for i := pMax + 1; i < n; i++ {
			sample[visits[i].Sig] = true
		}
		if len(sample) == 0 {
			return 0, 0, false
		}
		scoreMin, pOut := 1.0, -1
		for p := 1; p <= pMax; p++ {
			prefix := map[ui.Signature]bool{}
			for i := 0; i < p; i++ {
				prefix[visits[i].Sig] = true
			}
			suffixDistinct := map[ui.Signature]bool{}
			for i := p; i < n; i++ {
				suffixDistinct[visits[i].Sig] = true
			}
			overlap := 0
			for s := range prefix {
				for i := p; i < n; i++ {
					if m.Match(s, visits[i].Sig) {
						overlap++
					}
				}
			}
			score := float64(overlap)/float64(n-p) +
				2*sigmoid(float64(len(suffixDistinct))/float64(len(sample))-1) - 1
			if score < scoreMin {
				scoreMin, pOut = score, p
			}
		}
		if pOut < 0 {
			return 0, 0, false
		}
		return pOut, scoreMin, true
	}

	check := func(seedTokens []uint8) bool {
		if len(seedTokens) < 5 {
			return true
		}
		if len(seedTokens) > 60 {
			seedTokens = seedTokens[:60]
		}
		tokens := make([]int, len(seedTokens))
		for i, b := range seedTokens {
			tokens[i] = int(b % 12)
		}
		visits := mkTrace(tokens)
		lMin := 5 * second
		for _, m := range []Matcher{Matcher(MatchExact{}), Matcher(fuzzMatcher{})} {
			gotP, gotScore, gotOK := 0, 0.0, false
			if res, ok := FindSpace(visits, lMin, m); ok {
				gotP, gotScore, gotOK = res.POut, res.Score, true
			}
			wantP, wantScore, wantOK := naive(visits, lMin, m)
			if gotOK != wantOK || gotP != wantP {
				return false
			}
			if gotOK && abs(gotScore-wantScore) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
