package core

import (
	"taopt/internal/ui"
)

// internTable interns abstract-screen signatures into small dense integers
// and memoises the configured Matcher's verdict for every pair it is ever
// asked about. On the analysis hot path, abstract-state comparison then
// degenerates to an integer index into a flat matrix — the Matcher itself
// (tree similarity over canonical exemplars) runs at most once per unordered
// signature pair for the lifetime of the table.
//
// The table requires the Matcher to be deterministic and symmetric (Match(a,
// b) == Match(b, a) for all a, b): verdicts are cached forever and mirrored
// across the diagonal, exactly as FindSpace's per-call cache does. Every
// matcher in this repository (Analyzer's tree similarity, MatchExact, the
// test matchers) satisfies both.
//
// One table is shared by all of an Analyzer's per-instance SpaceTrackers, so
// a pair compared on one instance's trace is never re-compared on another's.
type internTable struct {
	m    Matcher
	ids  map[ui.Signature]int32
	sigs []ui.Signature

	// match is a stride×stride matrix in row-major order:
	// 0 unknown, 1 match, -1 no match. The diagonal is filled with 1 at
	// intern time, so hot loops may read a row directly without an a==b
	// special case.
	match  []int8
	stride int
}

// newInternTable returns an empty table judging pairs with m.
func newInternTable(m Matcher) *internTable {
	return &internTable{m: m, ids: make(map[ui.Signature]int32)}
}

// len returns the number of interned signatures.
func (t *internTable) len() int { return len(t.sigs) }

// sig returns the signature for an interned id.
func (t *internTable) sig(id int32) ui.Signature { return t.sigs[id] }

// intern returns sig's dense id, assigning the next one on first sight.
func (t *internTable) intern(sig ui.Signature) int32 {
	if id, ok := t.ids[sig]; ok {
		return id
	}
	id := int32(len(t.sigs))
	t.ids[sig] = id
	t.sigs = append(t.sigs, sig)
	if int(id) >= t.stride {
		t.grow()
	}
	t.match[int(id)*t.stride+int(id)] = 1
	return id
}

// grow re-lays the match matrix out with a doubled stride, preserving every
// cached verdict. Amortised over interning, growth is O(1) per signature.
func (t *internTable) grow() {
	newStride := t.stride * 2
	if newStride < 16 {
		newStride = 16
	}
	for newStride <= len(t.sigs) {
		newStride *= 2
	}
	next := make([]int8, newStride*newStride)
	for a := 0; a < t.stride; a++ {
		copy(next[a*newStride:a*newStride+t.stride], t.match[a*t.stride:(a+1)*t.stride])
	}
	t.match, t.stride = next, newStride
}

// matches reports whether the interned screens a and b count as "the same"
// under the table's Matcher, consulting it only on the first query for the
// pair. Identical ids match without consulting anything, mirroring
// FindSpace's per-call cache.
func (t *internTable) matches(a, b int32) bool {
	if a == b {
		return true
	}
	i := int(a)*t.stride + int(b)
	v := t.match[i]
	if v == 0 {
		if t.m.Match(t.sigs[a], t.sigs[b]) {
			v = 1
		} else {
			v = -1
		}
		t.match[i] = v
		t.match[int(b)*t.stride+int(a)] = v
	}
	return v == 1
}
