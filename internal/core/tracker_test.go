package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// trackerFromVisits pushes a whole visit slice through a fresh tracker.
func trackerFromVisits(visits []ScreenVisit, lMin sim.Duration, m Matcher) *SpaceTracker {
	tr := NewSpaceTracker(lMin, m)
	for _, v := range visits {
		tr.Push(v)
	}
	return tr
}

// TestSpaceTrackerMatchesFindSpaceExactly is the core equivalence property:
// over random windows and both matcher shapes, Analyze must reproduce
// FindSpace bit for bit — same ok, same split, same float bits in every
// score component, same member order.
func TestSpaceTrackerMatchesFindSpaceExactly(t *testing.T) {
	check := func(seedTokens []uint8) bool {
		if len(seedTokens) > 80 {
			seedTokens = seedTokens[:80]
		}
		tokens := make([]int, len(seedTokens))
		for i, b := range seedTokens {
			tokens[i] = int(b % 12)
		}
		visits := mkTrace(tokens)
		for _, m := range []Matcher{Matcher(MatchExact{}), Matcher(fuzzMatcher{})} {
			want, wantOK := FindSpace(visits, 5*second, m)
			tr := trackerFromVisits(visits, 5*second, m)
			got, gotOK := tr.Analyze()
			if gotOK != wantOK {
				return false
			}
			if gotOK && !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceTrackerMatchesFindSpaceUnderDrops replays a long trace with the
// Analyzer's window-cap drop rule on both representations and compares the
// analysis after every push — the tracker's aliased drops and maintained
// counts must stay equivalent to a freshly sliced window.
func TestSpaceTrackerMatchesFindSpaceUnderDrops(t *testing.T) {
	const cap = 40
	var tokens []int
	for i := 0; i < 300; i++ {
		// Phase changes every 60 steps so candidates actually appear.
		tokens = append(tokens, (i/60)*100+i%5)
	}
	visits := mkTrace(tokens)

	for _, m := range []Matcher{Matcher(MatchExact{}), Matcher(fuzzMatcher{})} {
		tr := NewSpaceTracker(5*second, m)
		var window []ScreenVisit
		for i, v := range visits {
			tr.Push(v)
			tr.DropTo(cap)
			window = append(window, v)
			if len(window) > cap {
				window = append(window[:0:0], window[len(window)-cap:]...)
			}
			if tr.Len() != len(window) {
				t.Fatalf("step %d: Len = %d, window = %d", i, tr.Len(), len(window))
			}
			want, wantOK := FindSpace(window, 5*second, m)
			got, gotOK := tr.Analyze()
			if gotOK != wantOK {
				t.Fatalf("step %d: ok = %v, want %v", i, gotOK, wantOK)
			}
			if gotOK && !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: result diverged\n got %+v\nwant %+v", i, got, want)
			}
		}
	}
}

// TestSpaceTrackerResetStartsFresh checks Reset drops the window but keeps
// the tracker usable (and its memoised verdicts correct) for the next
// identification.
func TestSpaceTrackerResetStartsFresh(t *testing.T) {
	tr := NewSpaceTracker(5*second, fuzzMatcher{})
	for _, v := range switchTrace(40, 80) {
		tr.Push(v)
	}
	if _, ok := tr.Analyze(); !ok {
		t.Fatal("no result before reset")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	if _, ok := tr.Analyze(); ok {
		t.Fatal("empty tracker analysed to a result")
	}
	// Replay a different trace on the same tracker: still equal to reference.
	visits := switchTrace(30, 60)
	for _, v := range visits {
		tr.Push(v)
	}
	want, wantOK := FindSpace(visits, 5*second, fuzzMatcher{})
	got, gotOK := tr.Analyze()
	if gotOK != wantOK || !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reset divergence:\n got %+v (%v)\nwant %+v (%v)", got, gotOK, want, wantOK)
	}
}

func TestSpaceTrackerShortWindows(t *testing.T) {
	tr := NewSpaceTracker(5*second, MatchExact{})
	if _, ok := tr.Analyze(); ok {
		t.Fatal("empty window")
	}
	tr.Push(ScreenVisit{Sig: 1, At: 0})
	if _, ok := tr.Analyze(); ok {
		t.Fatal("singleton window")
	}
	tr.Push(ScreenVisit{Sig: 2, At: second})
	if _, ok := tr.Analyze(); ok {
		t.Fatal("two-visit window")
	}
	// Everything within l_min of the end: p_max < 1, like FindSpace.
	tr = NewSpaceTracker(3600*second, MatchExact{})
	for _, v := range mkTrace([]int{1, 2, 3, 4, 5}) {
		tr.Push(v)
	}
	if _, ok := tr.Analyze(); ok {
		t.Fatal("window shorter than l_min must not split")
	}
}

// countingMatcher records how many times the underlying Matcher actually ran.
type countingMatcher struct {
	calls *int
}

func (c countingMatcher) Match(a, b ui.Signature) bool {
	*c.calls++
	return fuzzMatcher{}.Match(a, b)
}

// TestInternTableMemoisesAcrossGrowth drives the table through several
// matrix growths and checks (a) verdicts survive re-layout, (b) the Matcher
// runs at most once per unordered pair, (c) the diagonal never consults it.
func TestInternTableMemoisesAcrossGrowth(t *testing.T) {
	calls := 0
	it := newInternTable(countingMatcher{calls: &calls})
	const n = 70 // forces stride growth 16 → 128
	ids := make([]int32, n)
	for i := 0; i < n; i++ {
		ids[i] = it.intern(ui.Signature(i + 1))
	}
	if it.len() != n {
		t.Fatalf("len = %d", it.len())
	}
	if got := it.intern(ui.Signature(1)); got != ids[0] {
		t.Fatalf("re-intern changed id: %d vs %d", got, ids[0])
	}

	query := func() {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := fuzzMatcher{}.Match(ui.Signature(a+1), ui.Signature(b+1))
				if got := it.matches(ids[a], ids[b]); got != want {
					t.Fatalf("matches(%d,%d) = %v, want %v", a, b, got, want)
				}
			}
		}
	}
	query()
	after := calls
	if maxCalls := n * (n - 1) / 2; after > maxCalls {
		t.Fatalf("matcher ran %d times, memoised max is %d", after, maxCalls)
	}
	query() // fully cached second sweep
	if calls != after {
		t.Fatalf("second sweep consulted the matcher %d more times", calls-after)
	}

	// Growth after caching: verdicts must survive the matrix re-layout.
	for i := 0; i < 80; i++ {
		it.intern(ui.Signature(1000 + i))
	}
	query()
	if calls != after {
		t.Fatalf("growth lost %d cached verdicts", calls-after)
	}
}

// TestAnalyzerLegacyAndTrackedCandidatesIdentical streams one synthetic
// event sequence through a legacy-mode and a tracker-mode Analyzer and
// requires the emitted candidate sequences to be deep-equal. (The
// catalog-wide version over real apps/tools/seeds lives in
// internal/harness.)
func TestAnalyzerLegacyAndTrackedCandidatesIdentical(t *testing.T) {
	book := trace.NewBook()
	var sigs []ui.Signature
	for i := 0; i < 12; i++ {
		sigs = append(sigs, book.Observe(structScreen("A", 3+i)))
	}
	mk := func(legacy bool) *Analyzer {
		cfg := DefaultAnalyzerConfig(LMinShort)
		cfg.AnalyzeEvery = 7
		cfg.WindowCap = 60
		cfg.Legacy = legacy
		return NewAnalyzer(cfg, book)
	}
	aLegacy, aTracked := mk(true), mk(false)

	var gotLegacy, gotTracked []Candidate
	at := sim.Duration(0)
	for i := 0; i < 500; i++ {
		at += sim.Duration(1e9)
		// Three instances interleaved, phase change every 70 steps per
		// instance, an occasional enforced event that both must skip.
		ev := trace.Event{
			Instance: i % 3,
			At:       at,
			Action:   trace.Action{Kind: trace.ActionTap},
			To:       sigs[((i/210)*4+i%7)%len(sigs)],
			Enforced: i%41 == 0,
		}
		if c, ok := aLegacy.Observe(ev); ok {
			gotLegacy = append(gotLegacy, c)
		}
		if c, ok := aTracked.Observe(ev); ok {
			gotTracked = append(gotTracked, c)
		}
		if i == 333 { // reset mid-stream, as the coordinator does on acceptance
			aLegacy.ResetInstance(0)
			aTracked.ResetInstance(0)
		}
	}
	if len(gotLegacy) == 0 {
		t.Fatal("synthetic stream produced no candidates; test is vacuous")
	}
	if !reflect.DeepEqual(gotLegacy, gotTracked) {
		t.Fatalf("candidate sequences diverged:\nlegacy  %+v\ntracked %+v", gotLegacy, gotTracked)
	}
}

// TestAnalyzerTraceLenBothModes gives TraceLen direct coverage on the legacy
// window and the tracker window, including the cap and the enforced-skip.
func TestAnalyzerTraceLenBothModes(t *testing.T) {
	book := trace.NewBook()
	sig := book.Observe(structScreen("A", 4))
	for _, legacy := range []bool{true, false} {
		cfg := DefaultAnalyzerConfig(LMinShort)
		cfg.WindowCap = 30
		cfg.Legacy = legacy
		a := NewAnalyzer(cfg, book)
		if got := a.TraceLen(7); got != 0 {
			t.Fatalf("legacy=%v: TraceLen of unknown instance = %d", legacy, got)
		}
		for i := 0; i < 20; i++ {
			a.Observe(trace.Event{Instance: 7, At: sim.Duration(i) * second, To: sig})
			a.Observe(trace.Event{Instance: 7, At: sim.Duration(i) * second, To: sig, Enforced: true})
		}
		if got := a.TraceLen(7); got != 20 {
			t.Fatalf("legacy=%v: TraceLen = %d, want 20", legacy, got)
		}
		for i := 20; i < 100; i++ {
			a.Observe(trace.Event{Instance: 7, At: sim.Duration(i) * second, To: sig})
		}
		if got := a.TraceLen(7); got != 30 {
			t.Fatalf("legacy=%v: TraceLen = %d, want cap 30", legacy, got)
		}
	}
}

// TestAnalyzerResetInstanceReleasesState pins the no-leak property: after a
// churn of instances is observed and reset, the analyzer holds state for
// exactly the live ones — retired ids must not pin their windows, trackers
// or cadence counters.
func TestAnalyzerResetInstanceReleasesState(t *testing.T) {
	book := trace.NewBook()
	sig := book.Observe(structScreen("A", 4))
	for _, legacy := range []bool{true, false} {
		cfg := DefaultAnalyzerConfig(LMinShort)
		cfg.Legacy = legacy
		a := NewAnalyzer(cfg, book)
		for id := 0; id < 50; id++ {
			for i := 0; i < 10; i++ {
				a.Observe(trace.Event{Instance: id, At: sim.Duration(i) * second, To: sig})
			}
			if id != 42 {
				a.ResetInstance(id)
			}
		}
		if got := a.instanceStates(); got != 1 {
			t.Fatalf("legacy=%v: %d instance states retained, want 1", legacy, got)
		}
		if got := a.TraceLen(42); got != 10 {
			t.Fatalf("legacy=%v: survivor TraceLen = %d", legacy, got)
		}
		if got := a.TraceLen(0); got != 0 {
			t.Fatalf("legacy=%v: reset instance still has a window of %d", legacy, got)
		}
		a.ResetInstance(42)
		a.ResetInstance(42) // double reset is fine
		if got := a.instanceStates(); got != 0 {
			t.Fatalf("legacy=%v: %d states after full reset", legacy, got)
		}
	}
}
