package core

import (
	"errors"
	"fmt"
	"testing"

	"taopt/internal/bus"
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/toller"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// fakeEnv is an in-memory testing cloud for coordinator tests.
type fakeEnv struct {
	now      sim.Duration
	max      int
	active   []int
	nextID   int
	blocks   map[int]*toller.BlockSet
	deallocs []int
	// allocFail makes Allocate fail permanently; busy makes it fail with the
	// retryable device.ErrFarmBusy. attempts records when each Allocate call
	// happened, for backoff-timing tests.
	allocFail bool
	busy      bool
	attempts  []sim.Duration
}

func newFakeEnv(max int) *fakeEnv {
	return &fakeEnv{max: max, blocks: make(map[int]*toller.BlockSet)}
}

func (e *fakeEnv) Now() sim.Duration { return e.now }
func (e *fakeEnv) MaxInstances() int { return e.max }
func (e *fakeEnv) ActiveInstances() []int {
	return append([]int(nil), e.active...)
}
func (e *fakeEnv) Allocate() (int, error) {
	e.attempts = append(e.attempts, e.now)
	if e.allocFail {
		return 0, errors.New("farm unreachable")
	}
	if e.busy || len(e.active) >= e.max {
		return 0, fmt.Errorf("fake: %w", device.ErrFarmBusy)
	}
	id := e.nextID
	e.nextID++
	e.active = append(e.active, id)
	e.blocks[id] = toller.NewBlockSet()
	return id, nil
}
func (e *fakeEnv) Deallocate(id int) error {
	for i, a := range e.active {
		if a == id {
			e.active = append(e.active[:i], e.active[i+1:]...)
			e.deallocs = append(e.deallocs, id)
			return nil
		}
	}
	return fmt.Errorf("fake: %w: %d", device.ErrUnknownInstance, id)
}

// kill simulates an instance death: it vanishes from the active list
// without a Deallocate, exactly as a crashed emulator disappears from the
// farm.
func (e *fakeEnv) kill(id int) {
	for i, a := range e.active {
		if a == id {
			e.active = append(e.active[:i], e.active[i+1:]...)
			return
		}
	}
}
func (e *fakeEnv) Blocks(id int) *toller.BlockSet {
	if b, ok := e.blocks[id]; ok {
		return b
	}
	b := toller.NewBlockSet()
	e.blocks[id] = b
	return b
}

// Send lets the fakeEnv double as the coordinator's bus.Sender: block
// commands are applied to the per-instance block sets directly.
func (e *fakeEnv) Send(cmd bus.Command) bus.Reply {
	switch cmd.Kind {
	case bus.BlockWidget:
		e.Blocks(cmd.Instance).BlockWidget(cmd.Screen, cmd.Widget)
	case bus.BlockMember:
		e.Blocks(cmd.Instance).BlockMember(cmd.Screen)
	}
	return bus.Reply{Instance: cmd.Instance}
}

// testBook registers synthetic screens so the analyzer's similarity matcher
// has exemplars. Screens are made structurally distinct per token.
func testBook(tokens int) (*trace.Book, []ui.Signature) {
	book := trace.NewBook()
	sigs := make([]ui.Signature, tokens)
	for i := 0; i < tokens; i++ {
		var children []*ui.Node
		for j := 0; j <= i%7+1; j++ {
			children = append(children, &ui.Node{
				Class:      "android.widget.Button",
				ResourceID: fmt.Sprintf("w_%d_%d", i, j),
				Enabled:    true, Clickable: true,
			})
		}
		s := &ui.Screen{
			Activity: fmt.Sprintf("Act%d", i),
			Root: &ui.Node{Class: "FrameLayout", ResourceID: fmt.Sprintf("root%d", i),
				Enabled: true, Children: children},
		}
		sigs[i] = book.Observe(s)
	}
	return book, sigs
}

// drive feeds a coordinator a synthetic event stream for one instance:
// a launch on screen tokens[0], then taps along tokens.
func drive(c *Coordinator, e *fakeEnv, inst int, sigs []ui.Signature, tokens []int, stepSec int) {
	c.OnTransition(trace.Event{
		Instance: inst, At: e.now,
		Action: trace.Action{Kind: trace.ActionLaunch}, To: sigs[tokens[0]],
	})
	driveMore(c, e, inst, sigs, tokens, stepSec)
}

// driveMore continues an instance's walk without a launch event.
func driveMore(c *Coordinator, e *fakeEnv, inst int, sigs []ui.Signature, tokens []int, stepSec int) {
	for i := 1; i < len(tokens); i++ {
		e.now += sim.Duration(stepSec) * sim.Duration(1e9)
		c.OnTransition(trace.Event{
			Instance: inst, At: e.now,
			Action: trace.Action{Kind: trace.ActionTap, Widget: ui.WidgetPath(fmt.Sprintf("w@%d", tokens[i]))},
			From:   sigs[tokens[i-1]], To: sigs[tokens[i]], Activity: fmt.Sprintf("Act%d", tokens[i]),
		})
	}
}

func shortCfg() Config {
	cfg := DefaultConfig(DurationConstrained)
	cfg.WarmUp = 30 * sim.Duration(1e9)
	cfg.Stagnation = 3600 * sim.Duration(1e9) // keep instances alive in tests
	cfg.Analyzer.AnalyzeEvery = 10
	return cfg
}

func TestCoordinatorStartAllocates(t *testing.T) {
	env := newFakeEnv(5)
	book, _ := testBook(1)
	c := NewCoordinator(DefaultConfig(DurationConstrained), env, env, book)
	c.Start()
	if len(env.active) != 5 {
		t.Fatalf("duration mode started %d instances, want 5", len(env.active))
	}

	env2 := newFakeEnv(5)
	c2 := NewCoordinator(DefaultConfig(ResourceConstrained), env2, env2, book)
	c2.Start()
	if len(env2.active) != 1 {
		t.Fatalf("resource mode started %d instances, want 1", len(env2.active))
	}
}

// regionWalk builds a token walk cycling over region [base, base+5).
func regionWalk(base, steps int) []int {
	var tokens []int
	for i := 0; i < steps; i++ {
		tokens = append(tokens, base+i%5)
	}
	return tokens
}

// roamThenSettle prefixes a walk with a quick roam over screens 0..8 (so the
// coordinator's "subspaces must be a minority of known screens" guard has a
// realistic denominator) before settling in the region.
func roamThenSettle(base, steps int) []int {
	walk := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 0}
	return append(walk, regionWalk(base, steps)...)
}

func TestCoordinatorAcceptsConfirmedSubspace(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(30)
	cfg := shortCfg()
	c := NewCoordinator(cfg, env, env, book)
	c.Start()

	// Instances 0 and 1 both settle in region 10..14 after a quick roam.
	walk := roamThenSettle(10, 120)
	drive(c, env, 0, sigs, walk, 1)
	drive(c, env, 1, sigs, walk, 1)

	if len(c.Subspaces()) == 0 {
		st := c.DecisionStats()
		t.Fatalf("no subspace accepted after two matching reports: %+v", st)
	}
	sub := c.Subspaces()[0]
	if !sub.Members[sigs[10]] {
		t.Fatal("subspace missing a region screen")
	}
	if sub.Members[sigs[0]] {
		t.Fatal("subspace absorbed the launch screen")
	}

	// The subspace is blocked on every instance except the owner.
	for _, id := range env.active {
		blocked := env.Blocks(id).MemberCount() > 0
		if id == sub.Owner && blocked {
			t.Fatal("owner blocked from its own subspace")
		}
		if id != sub.Owner && !blocked {
			t.Fatalf("instance %d not blocked from the accepted subspace", id)
		}
	}
}

func TestCoordinatorSingleInstanceNeedsLLong(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(30)
	cfg := shortCfg()
	c := NewCoordinator(cfg, env, env, book)
	c.Start()

	// One instance settles for just over a minute: not accepted (needs a
	// second reporter or l_long persistence).
	walk := roamThenSettle(10, 80)
	drive(c, env, 0, sigs, walk, 1)
	if len(c.Subspaces()) != 0 {
		t.Fatal("accepted a single unconfirmed report before l_long")
	}

	// Keep going past l_long = 5 minutes: now accepted.
	driveMore(c, env, 0, sigs, regionWalk(10, 300), 1)
	if len(c.Subspaces()) == 0 {
		t.Fatalf("sustained single-instance report not accepted: %+v", c.DecisionStats())
	}
}

func TestCoordinatorLaunchScreenNeverBlocked(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(30)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()
	// Region walks that pass through the hub (token 0) repeatedly.
	var walk []int
	for i := 0; i < 150; i++ {
		if i%20 == 0 {
			walk = append(walk, 0)
		}
		walk = append(walk, 10+i%5)
	}
	drive(c, env, 0, sigs, walk, 1)
	drive(c, env, 1, sigs, walk, 1)
	for _, sub := range c.Subspaces() {
		if sub.Members[sigs[0]] {
			t.Fatal("launch screen became a subspace member")
		}
	}
	for id := range env.blocks {
		if env.Blocks(id).IsMember(sigs[0]) {
			t.Fatal("launch screen blocked")
		}
	}
}

func TestCoordinatorStagnationReapsAndReplaces(t *testing.T) {
	env := newFakeEnv(2)
	book, sigs := testBook(10)
	cfg := shortCfg()
	cfg.Stagnation = 60 * sim.Duration(1e9)
	c := NewCoordinator(cfg, env, env, book)
	c.Start()
	if len(env.active) != 2 {
		t.Fatal("start")
	}

	// Instance 0 keeps seeing the same screen for > stagnation window.
	for i := 0; i < 100; i++ {
		env.now += 2 * sim.Duration(1e9)
		c.OnTransition(trace.Event{
			Instance: 0, At: env.now,
			Action: trace.Action{Kind: trace.ActionTap, Widget: "w"},
			From:   sigs[1], To: sigs[1], Activity: "Act1",
		})
	}
	if len(env.deallocs) == 0 {
		t.Fatal("stagnant instance not de-allocated")
	}
	// Duration mode replaces immediately: capacity stays full.
	if len(env.active) != 2 {
		t.Fatalf("active = %d, want 2 (immediate replacement)", len(env.active))
	}
}

func TestCoordinatorBlocksLearnedEdges(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(30)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()

	walk := roamThenSettle(10, 120)
	drive(c, env, 0, sigs, walk, 1)
	drive(c, env, 1, sigs, walk, 1)
	if len(c.Subspaces()) == 0 {
		t.Fatal("setup: no subspace")
	}
	sub := c.Subspaces()[0]

	// A non-owner observes a NEW edge into the subspace: the coordinator
	// must block that widget on non-owners immediately.
	var nonOwner int
	for _, id := range env.active {
		if id != sub.Owner {
			nonOwner = id
			break
		}
	}
	env.now += sim.Duration(1e9)
	c.OnTransition(trace.Event{
		Instance: nonOwner, At: env.now,
		Action: trace.Action{Kind: trace.ActionTap, Widget: "brand-new-edge"},
		From:   sigs[20], To: sigs[10], Activity: "Act10",
	})
	blocked := env.Blocks(nonOwner).BlockedWidgets(sigs[20])
	if !blocked["brand-new-edge"] {
		t.Fatal("newly learned edge into an owned subspace not blocked")
	}
	if env.Blocks(sub.Owner).BlockedWidgets(sigs[20])["brand-new-edge"] {
		t.Fatal("edge blocked on the owner")
	}
}

func TestCoordinatorOwnerExtension(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(40)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()

	// Expand the coordinator's known-screen denominator first so later
	// candidates are judged against a realistic universe.
	drive(c, env, 3, sigs, roamThenSettle(30, 15), 1)

	walk := roamThenSettle(10, 120)
	drive(c, env, 0, sigs, walk, 1)
	drive(c, env, 1, sigs, walk, 1)
	if len(c.Subspaces()) == 0 {
		t.Fatal("setup: no subspace")
	}
	sub := c.Subspaces()[0]
	before := len(sub.Members)

	// The owner pushes deeper: from region screens into 20..24, connected
	// only from inside the subspace. The coordinator should extend the
	// subspace rather than create a second one.
	var deeper []int
	for i := 0; i < 150; i++ {
		if i%6 == 0 {
			deeper = append(deeper, 10+i%5)
		}
		deeper = append(deeper, 20+i%5)
	}
	driveMore(c, env, sub.Owner, sigs, append([]int{10}, deeper...), 1)
	if len(sub.Members) <= before {
		t.Fatalf("subspace not extended: %d -> %d members (stats %+v)",
			before, len(sub.Members), c.DecisionStats())
	}
}

func TestCoordinatorResourceModeAllocatesOnAcceptance(t *testing.T) {
	env := newFakeEnv(5)
	book, sigs := testBook(30)
	cfg := DefaultConfig(ResourceConstrained)
	cfg.WarmUp = 30 * sim.Duration(1e9)
	cfg.Stagnation = 3600 * sim.Duration(1e9)
	cfg.Analyzer.AnalyzeEvery = 10
	c := NewCoordinator(cfg, env, env, book)
	c.Start()
	if len(env.active) != 1 {
		t.Fatal("resource mode must start with one instance")
	}

	// Long settled exploration: l_long acceptance fires, and a new instance
	// is allocated for the rest of the space.
	walk := roamThenSettle(10, 400)
	drive(c, env, 0, sigs, walk, 1)
	if len(c.Subspaces()) == 0 {
		t.Fatalf("l_long acceptance did not fire: %+v", c.DecisionStats())
	}
	if len(env.active) < 2 {
		t.Fatal("acceptance must allocate a new instance in resource mode")
	}
	// The new instance is blocked from the accepted subspace.
	newest := env.active[len(env.active)-1]
	if env.Blocks(newest).MemberCount() == 0 {
		t.Fatal("new instance not blocked from accepted subspaces")
	}
}

func TestCoordinatorDeterministicAcceptance(t *testing.T) {
	run := func() int {
		env := newFakeEnv(5)
		book, sigs := testBook(30)
		c := NewCoordinator(shortCfg(), env, env, book)
		c.Start()
		walk := roamThenSettle(10, 120)
		drive(c, env, 0, sigs, walk, 1)
		drive(c, env, 1, sigs, walk, 1)
		drive(c, env, 2, sigs, roamThenSettle(20, 120), 1)
		return len(c.Subspaces())
	}
	if run() != run() {
		t.Fatal("coordinator decisions are nondeterministic")
	}
}
