// Package core implements TaOPT's contribution: the on-the-fly trace analyzer
// that identifies loosely coupled UI subspaces (Algorithm 1, "FindSpace") and
// the test coordinator that dedicates subspaces to testing instances in the
// duration-constrained and resource-constrained modes (Section 5).
//
// Tool-agnosticism is structural: this package depends only on the Toller
// contract (trace events, block sets) and the ui abstraction. It never
// imports the testing tools or the app model.
package core

import (
	"math"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

// ScreenVisit is one point of a UI transition trace: the abstract screen the
// instance arrived at, and when.
type ScreenVisit struct {
	Sig ui.Signature
	At  sim.Duration
}

// Matcher decides whether two abstract screens count as "the same" for
// CountIn's purposes. The analyzer implements it with a cached tree
// similarity over canonical exemplar hierarchies; tests can plug exact
// equality.
type Matcher interface {
	Match(a, b ui.Signature) bool
}

// MatchExact is the trivial matcher: signature equality.
type MatchExact struct{}

// Match implements Matcher.
func (MatchExact) Match(a, b ui.Signature) bool { return a == b }

// FindSpaceResult is the output of one FindSpace invocation.
type FindSpaceResult struct {
	// POut is the index of the identified subspace's entrypoint in the
	// input trace.
	POut int
	// Entry is the abstract screen at POut — the subspace's entrypoint.
	Entry ui.Signature
	// Members are the distinct abstract screens of S[POut:N].
	Members []ui.Signature
	// Score is the minimised partition score (Algorithm 1, line 11).
	Score float64
	// OverlapScore and PurityScore are the score's components at the chosen
	// split (score = overlap + 2·purity − 1); the telemetry layer logs them
	// so threshold calibration can see *why* a window scored as it did.
	OverlapScore float64
	PurityScore  float64
}

// FindSpace is Algorithm 1: given a UI transition trace S with timestamps T
// (as visits) and the exploration threshold lMin, it returns the entrypoint
// index p_out of a loosely coupled UI subspace, or ok=false if none
// qualifies.
//
// For each candidate split p, the score combines
//
//	overlap_score = (Σ_{s∈Set(S[0:p])} CountIn(s, S[p:N])) / (N−p)
//	purity_score  = Sigmoid(|Set(S[p:N])| / sample_size − 1)
//	score         = overlap_score + 2·purity_score − 1
//
// where sample_size = |Set(S[p_max+1:N])| and p_max is the latest index at
// least lMin before the end of the trace. CountIn counts appearances under
// the matcher's tree similarity. The implementation is an incremental sweep:
// O(N·D) matcher queries for D distinct screens instead of the naive O(N²·D).
func FindSpace(visits []ScreenVisit, lMin sim.Duration, m Matcher) (FindSpaceResult, bool) {
	n := len(visits)
	if n < 3 {
		return FindSpaceResult{}, false
	}
	end := visits[n-1].At

	// p_max ← max{p : T[p] ≤ T[N−1] − lMin}.
	pMax := -1
	for p := n - 1; p >= 0; p-- {
		if visits[p].At <= end-lMin {
			pMax = p
			break
		}
	}
	if pMax < 1 {
		return FindSpaceResult{}, false
	}

	// Dense ids for distinct signatures.
	denseOf := make(map[ui.Signature]int)
	var sigs []ui.Signature
	seq := make([]int, n)
	for i, v := range visits {
		d, ok := denseOf[v.Sig]
		if !ok {
			d = len(sigs)
			denseOf[v.Sig] = d
			sigs = append(sigs, v.Sig)
		}
		seq[i] = d
	}
	D := len(sigs)

	// Cached pairwise matches, computed on demand.
	matchCache := make([]int8, D*D) // 0 unknown, 1 yes, -1 no
	match := func(a, b int) bool {
		if a == b {
			return true
		}
		c := matchCache[a*D+b]
		if c == 0 {
			if m.Match(sigs[a], sigs[b]) {
				c = 1
			} else {
				c = -1
			}
			matchCache[a*D+b], matchCache[b*D+a] = c, c
		}
		return c == 1
	}

	// sample_size ← |Set(S[p_max+1:N])|.
	sampleSeen := make([]bool, D)
	sampleSize := 0
	for i := pMax + 1; i < n; i++ {
		if !sampleSeen[seq[i]] {
			sampleSeen[seq[i]] = true
			sampleSize++
		}
	}
	if sampleSize == 0 {
		return FindSpaceResult{}, false
	}

	// State for the split p=1: prefix = {S[0]}, suffix = S[1:N].
	suffCnt := make([]int, D)
	distinctSuff := 0
	for i := 1; i < n; i++ {
		if suffCnt[seq[i]] == 0 {
			distinctSuff++
		}
		suffCnt[seq[i]]++
	}
	inPD := make([]bool, D)      // prefix distinct membership
	matchSumPD := make([]int, D) // matchSumPD[d] = |{s∈PD : match(s,d)}|
	var overlap float64          // Σ_{s∈PD} Σ_d suffCnt[d]·match(s,d)
	addToPD := func(x int) {
		if inPD[x] {
			return
		}
		inPD[x] = true
		for d := 0; d < D; d++ {
			if match(x, d) {
				matchSumPD[d]++
				if suffCnt[d] > 0 {
					overlap += float64(suffCnt[d])
				}
			}
		}
	}
	addToPD(seq[0])

	scoreMin := 1.0
	pOut := -1
	var overlapMin, purityMin float64
	for p := 1; p <= pMax; p++ {
		overlapScore := overlap / float64(n-p)
		purityScore := sigmoid(float64(distinctSuff)/float64(sampleSize) - 1)
		score := overlapScore + 2*purityScore - 1
		if score < scoreMin {
			scoreMin, pOut = score, p
			overlapMin, purityMin = overlapScore, purityScore
		}

		// Advance the split: index p leaves the suffix and joins the prefix.
		if p == pMax {
			break
		}
		x := seq[p]
		suffCnt[x]--
		if suffCnt[x] == 0 {
			distinctSuff--
		}
		overlap -= float64(matchSumPD[x])
		addToPD(x)
	}
	if pOut < 0 {
		return FindSpaceResult{}, false
	}

	// Materialise the subspace: distinct screens of S[pOut:N].
	memberSeen := make([]bool, D)
	var members []ui.Signature
	for i := pOut; i < n; i++ {
		if !memberSeen[seq[i]] {
			memberSeen[seq[i]] = true
			members = append(members, sigs[seq[i]])
		}
	}
	return FindSpaceResult{
		POut:         pOut,
		Entry:        visits[pOut].Sig,
		Members:      members,
		Score:        scoreMin,
		OverlapScore: overlapMin,
		PurityScore:  purityMin,
	}, true
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
