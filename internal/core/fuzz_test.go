package core

import (
	"reflect"
	"strings"
	"testing"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

// Seed corpus scenarios, mirrored in testdata/fuzz: a clean region switch
// and a dwell-heavy trace with repeated timestamps.
var (
	seedSwitch = "\x03" + strings.Repeat("A\x01", 30) + strings.Repeat("Z\x01", 30)
	seedDwell  = "\x15" + strings.Repeat("A\x00B\x00C\x04", 15)
)

// decodeFuzzTrace turns a fuzzer byte string into an analysis scenario: the
// first byte picks l_min and the matcher, the rest encodes (screen, dwell)
// pairs. Dwell may be zero — repeated timestamps, singleton and empty traces
// are all reachable, which is the point.
func decodeFuzzTrace(data []byte) ([]ScreenVisit, sim.Duration, Matcher) {
	var lMin sim.Duration = second
	var m Matcher = MatchExact{}
	if len(data) > 0 {
		lMin = sim.Duration(1+int(data[0]%10)) * second
		if data[0]&0x10 != 0 {
			m = fuzzMatcher{}
		}
		data = data[1:]
	}
	var visits []ScreenVisit
	var at sim.Duration
	for i := 0; i+1 < len(data); i += 2 {
		at += sim.Duration(data[i+1]%5) * second
		visits = append(visits, ScreenVisit{Sig: sigOf(int(data[i] % 12)), At: at})
	}
	return visits, lMin, m
}

// sigOf mirrors mkTrace's token→signature mapping.
func sigOf(tok int) ui.Signature { return ui.Signature(tok + 1) }

// FuzzFindSpace checks Algorithm 1's structural invariants over arbitrary
// visit sequences, and holds the incremental tracker equal to the reference
// on every input the fuzzer invents.
func FuzzFindSpace(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\x05A"))
	f.Add([]byte(seedSwitch))
	f.Add([]byte(seedDwell))
	f.Fuzz(func(t *testing.T, data []byte) {
		visits, lMin, m := decodeFuzzTrace(data)
		res, ok := FindSpace(visits, lMin, m)
		if !ok {
			// Still hold the tracker equal on the no-result path.
			if _, gotOK := trackerFromVisits(visits, lMin, m).Analyze(); gotOK {
				t.Fatal("tracker found a result where FindSpace found none")
			}
			return
		}
		n := len(visits)
		if res.POut < 1 || res.POut >= n {
			t.Fatalf("p_out = %d out of range (n=%d)", res.POut, n)
		}
		if res.Entry != visits[res.POut].Sig {
			t.Fatalf("entry %v is not the screen at p_out", res.Entry)
		}
		if len(res.Members) == 0 || res.Members[0] != res.Entry {
			t.Fatalf("members must start with the entry screen: %v", res.Members)
		}
		seen := map[uint64]bool{}
		for _, mem := range res.Members {
			if seen[uint64(mem)] {
				t.Fatalf("duplicate member %v", mem)
			}
			seen[uint64(mem)] = true
			found := false
			for i := res.POut; i < n && !found; i++ {
				found = visits[i].Sig == mem
			}
			if !found {
				t.Fatalf("member %v not in the suffix", mem)
			}
		}
		if res.Score >= 1 {
			t.Fatalf("accepted score %v ≥ initial minimum", res.Score)
		}
		if want := res.OverlapScore + 2*res.PurityScore - 1; res.Score != want {
			t.Fatalf("score %v inconsistent with components (%v)", res.Score, want)
		}
		if res.OverlapScore < 0 || res.PurityScore <= 0 || res.PurityScore >= 1 {
			t.Fatalf("component out of range: overlap %v purity %v",
				res.OverlapScore, res.PurityScore)
		}

		got, gotOK := trackerFromVisits(visits, lMin, m).Analyze()
		if !gotOK || !reflect.DeepEqual(got, res) {
			t.Fatalf("tracker diverged:\n got %+v (%v)\nwant %+v", got, gotOK, res)
		}
	})
}

// FuzzSpaceTracker drives the stateful surface the one-shot fuzz above
// cannot reach: incremental pushes with window-cap drops and mid-stream
// resets, comparing the tracker to FindSpace over the mirrored window after
// every step.
func FuzzSpaceTracker(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\x05A"))
	f.Add([]byte(seedSwitch))
	f.Add([]byte(seedDwell))
	f.Fuzz(func(t *testing.T, data []byte) {
		visits, lMin, m := decodeFuzzTrace(data)
		cap := 3
		if len(data) > 0 {
			cap += int(data[0] % 50)
		}
		tr := NewSpaceTracker(lMin, m)
		var window []ScreenVisit
		for i, v := range visits {
			// A marker pair resets both representations, as the coordinator
			// does when it accepts a subspace.
			if v.Sig == sigOf(11) && i%7 == 0 {
				tr.Reset()
				window = window[:0]
			}
			tr.Push(v)
			tr.DropTo(cap)
			window = append(window, v)
			if len(window) > cap {
				window = append(window[:0:0], window[len(window)-cap:]...)
			}
			if tr.Len() != len(window) {
				t.Fatalf("step %d: Len %d vs window %d", i, tr.Len(), len(window))
			}
			want, wantOK := FindSpace(window, lMin, m)
			got, gotOK := tr.Analyze()
			if gotOK != wantOK {
				t.Fatalf("step %d: ok %v, want %v", i, gotOK, wantOK)
			}
			if gotOK && !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: diverged\n got %+v\nwant %+v", i, got, want)
			}
		}
	})
}
