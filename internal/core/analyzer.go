package core

import (
	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// Subspace is an accepted loosely coupled UI subspace.
type Subspace struct {
	ID int
	// Entry is the entrypoint screen p_out.
	Entry ui.Signature
	// Members are the abstract screens of the subspace.
	Members map[ui.Signature]bool
	// InitialMembers is len(Members) at acceptance, before any merges.
	InitialMembers int
	// Owner is the testing instance the subspace is dedicated to.
	Owner int
	// FoundAt is the virtual time of acceptance.
	FoundAt sim.Duration
}

// Candidate is a subspace reported by FindSpace on one instance's trace,
// before the coordinator's acceptance rules run.
type Candidate struct {
	Instance int
	Entry    ui.Signature
	Members  []ui.Signature
	Score    float64
	// Overlap and Purity are the score's components at the chosen split
	// (telemetry: the decision log records them with every candidate).
	Overlap float64
	Purity  float64
	At      sim.Duration
}

// AnalyzerConfig tunes the trace analyzer.
type AnalyzerConfig struct {
	// LMin is Algorithm 1's exploration threshold (l_min^long or l_min^short
	// depending on the coordinator mode).
	LMin sim.Duration
	// AnalyzeEvery bounds cost: FindSpace runs every this many transitions
	// per instance.
	AnalyzeEvery int
	// WindowCap bounds the analysed trace suffix length.
	WindowCap int
	// SimilarityThreshold is CountIn's tree-similarity match threshold.
	SimilarityThreshold float64
	// ScoreMax is the acceptance threshold on Algorithm 1's partition score.
	// The algorithm's own bound (score < 1) admits "roaming" windows whose
	// suffix mixes functionalities but still beats the initialised minimum;
	// a genuinely settled window — no overlap with the prefix, suffix as
	// pure as its last-l_min sample — scores well below 0.5.
	ScoreMax float64
	// Legacy, when true, analyses by rescanning the visit window with the
	// reference FindSpace on every run instead of using the incremental
	// per-instance SpaceTracker. The two paths are byte-identical (the
	// differential suite holds them equal); legacy exists as the oracle and
	// for benchmarking the rewrite.
	Legacy bool
	// Obs, when non-nil, receives one decision-log event per FindSpace run
	// that produced a scored split (telemetry; nil costs nothing).
	Obs *obs.Log
	// Clock, when non-nil, stamps those decision-log events (the coordinator
	// wires the sim clock in). Trace events carry their transition's
	// *completion* time, which runs ahead of the scheduler; stamping
	// decisions with the clock keeps the whole decision log monotone.
	Clock func() sim.Duration
}

// DefaultAnalyzerConfig returns the thresholds used throughout the
// evaluation.
func DefaultAnalyzerConfig(lMin sim.Duration) AnalyzerConfig {
	return AnalyzerConfig{
		LMin:                lMin,
		AnalyzeEvery:        25,
		WindowCap:           450,
		SimilarityThreshold: 0.85,
		ScoreMax:            0.5,
	}
}

// Analyzer consumes UI transition events from all instances (via the Toller
// drivers) and emits subspace candidates. It is the "on-the-fly trace
// analyzer" box of Figure 1(b).
type Analyzer struct {
	cfg  AnalyzerConfig
	book *trace.Book

	perInstance map[int]*instanceTrace
	simCache    map[[2]ui.Signature]bool
	// intern is shared by every instance's SpaceTracker: signatures are
	// interned once and Matcher verdicts memoised once, fleet-trace-wide.
	intern *internTable
}

// instanceTrace is the whole of an instance's analysis state. Keeping every
// per-instance piece in the one map entry means ResetInstance cannot forget
// one of them: deleting the entry drops the visit window, the tracker and
// the report cadence together.
type instanceTrace struct {
	visits      []ScreenVisit // legacy (FindSpace-rescan) mode only
	tracker     *SpaceTracker // incremental mode only
	sinceReport int
}

// NewAnalyzer returns an analyzer reading exemplar hierarchies from book.
func NewAnalyzer(cfg AnalyzerConfig, book *trace.Book) *Analyzer {
	if cfg.AnalyzeEvery <= 0 {
		cfg.AnalyzeEvery = 25
	}
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 450
	}
	if cfg.SimilarityThreshold == 0 {
		cfg.SimilarityThreshold = 0.85
	}
	if cfg.ScoreMax == 0 {
		cfg.ScoreMax = 0.5
	}
	a := &Analyzer{
		cfg:         cfg,
		book:        book,
		perInstance: make(map[int]*instanceTrace),
		simCache:    make(map[[2]ui.Signature]bool),
	}
	a.intern = newInternTable(a)
	return a
}

// Match implements Matcher with the cached tree similarity of canonical
// exemplar hierarchies (CountIn's comparator).
func (a *Analyzer) Match(x, y ui.Signature) bool {
	if x == y {
		return true
	}
	key := [2]ui.Signature{x, y}
	if y < x {
		key = [2]ui.Signature{y, x}
	}
	if v, ok := a.simCache[key]; ok {
		return v
	}
	sx, sy := a.book.Lookup(x), a.book.Lookup(y)
	v := ui.ScreenSimilarity(sx, sy) >= a.cfg.SimilarityThreshold
	a.simCache[key] = v
	return v
}

// Observe folds one transition event into the instance's trace and, every
// AnalyzeEvery events, runs FindSpace. It returns a candidate and true when
// the analysis identifies a loosely coupled subspace.
//
// Enforced (TaOPT-injected) transitions are excluded: the analyzer must see
// the tool's behaviour, not the coordinator's.
func (a *Analyzer) Observe(ev trace.Event) (Candidate, bool) {
	if ev.Enforced {
		return Candidate{}, false
	}
	it, ok := a.perInstance[ev.Instance]
	if !ok {
		it = &instanceTrace{}
		if !a.cfg.Legacy {
			it.tracker = newSpaceTrackerShared(a.intern, a.cfg.LMin)
		}
		a.perInstance[ev.Instance] = it
	}
	if a.cfg.Legacy {
		it.visits = append(it.visits, ScreenVisit{Sig: ev.To, At: ev.At})
		if len(it.visits) > a.cfg.WindowCap {
			// Keep the suffix; FindSpace only needs the recent window.
			drop := len(it.visits) - a.cfg.WindowCap
			it.visits = append(it.visits[:0:0], it.visits[drop:]...)
		}
	} else {
		it.tracker.Push(ScreenVisit{Sig: ev.To, At: ev.At})
		it.tracker.DropTo(a.cfg.WindowCap)
	}
	it.sinceReport++
	if it.sinceReport < a.cfg.AnalyzeEvery {
		return Candidate{}, false
	}
	it.sinceReport = 0

	var res FindSpaceResult
	if a.cfg.Legacy {
		res, ok = FindSpace(it.visits, a.cfg.LMin, a)
	} else {
		res, ok = it.tracker.Analyze()
	}
	if !ok {
		return Candidate{}, false
	}
	at := ev.At
	if a.cfg.Clock != nil {
		at = a.cfg.Clock()
	}
	if res.Score > a.cfg.ScoreMax {
		a.cfg.Obs.Emit(obs.Decision{
			AtNS: obs.At(at), Kind: obs.KindAnalyzed, Instance: ev.Instance, Sub: -1,
			Entry: obs.Sig(res.Entry), Members: len(res.Members),
			Score: res.Score, Overlap: res.OverlapScore, Purity: res.PurityScore,
			Reason: "score-above-max",
		})
		return Candidate{}, false
	}
	a.cfg.Obs.Emit(obs.Decision{
		AtNS: obs.At(at), Kind: obs.KindAnalyzed, Instance: ev.Instance, Sub: -1,
		Entry: obs.Sig(res.Entry), Members: len(res.Members),
		Score: res.Score, Overlap: res.OverlapScore, Purity: res.PurityScore,
		Reason: "pass",
	})
	return Candidate{
		Instance: ev.Instance,
		Entry:    res.Entry,
		Members:  res.Members,
		Score:    res.Score,
		Overlap:  res.OverlapScore,
		Purity:   res.PurityScore,
		At:       ev.At,
	}, true
}

// ResetInstance clears an instance's analysis window. The coordinator calls
// it when the instance's current exploration segment was just accepted as a
// subspace (so the next identification starts fresh) and when an instance is
// de-allocated. The map entry itself is dropped — retired instance ids must
// not pin their window, tracker or cadence counter for the campaign's
// remaining lifetime.
func (a *Analyzer) ResetInstance(id int) {
	delete(a.perInstance, id)
}

// TraceLen returns the analysed window length for an instance (testing aid).
func (a *Analyzer) TraceLen(id int) int {
	it, ok := a.perInstance[id]
	if !ok {
		return 0
	}
	if it.tracker != nil {
		return it.tracker.Len()
	}
	return len(it.visits)
}

// instanceStates returns how many instances currently hold analysis state
// (testing aid: the reset-instance tests assert retirement leaks nothing).
func (a *Analyzer) instanceStates() int { return len(a.perInstance) }
