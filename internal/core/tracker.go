package core

import (
	"taopt/internal/sim"
	"taopt/internal/ui"
)

// SpaceTracker is the incremental form of Algorithm 1 for the Observe hot
// path. Where FindSpace re-derives everything from the visit slice on every
// invocation — dense ids, pairwise match verdicts, suffix counts — the
// tracker is a stateful per-instance structure that maintains the rolling
// statistics across events: the interned visit sequence, per-screen window
// counts and the distinct-screen total are updated in O(1) amortised per
// pushed visit, and the signature-interning table (shared between all of an
// Analyzer's trackers) memoises Matcher verdicts so the analysis sweep runs
// on integers with zero allocations and zero Matcher calls in the steady
// state.
//
// Analyze is byte-for-byte equivalent to FindSpace over the tracker's
// current window: identical split index, score components and member order,
// with float arithmetic arranged expression-for-expression like the
// reference implementation (all intermediate overlap sums are integers below
// 2^53, so the int64 accumulator converts exactly to FindSpace's float64
// one). FindSpace stays in the tree as the reference oracle; the
// differential and fuzz suites hold the two paths equal.
type SpaceTracker struct {
	it   *internTable
	lMin sim.Duration

	// Window state, maintained incrementally by Push/DropTo/Reset.
	seq      []int32
	times    []sim.Duration
	cnt      []int32 // cnt[id] = occurrences of id in the current window
	distinct int     // number of ids with cnt > 0

	// Scratch reused across Analyze calls so the steady state allocates
	// nothing. Entries are only valid for ids listed in winIDs (or stamped
	// with the current epoch); everything else is stale by design.
	suffCnt  []int32
	matchSum []int32
	inPD     []bool
	winIDs   []int32
	seen     []uint64
	epoch    uint64
	pur      []float64
}

// NewSpaceTracker returns a tracker with its own interning table judging
// pairs with m. m must be deterministic and symmetric (see internTable).
func NewSpaceTracker(lMin sim.Duration, m Matcher) *SpaceTracker {
	return newSpaceTrackerShared(newInternTable(m), lMin)
}

// newSpaceTrackerShared returns a tracker sharing an existing interning
// table; the Analyzer uses one table across all instances so a signature
// pair judged on one instance's trace is never re-judged on another's.
func newSpaceTrackerShared(it *internTable, lMin sim.Duration) *SpaceTracker {
	return &SpaceTracker{it: it, lMin: lMin}
}

// Len returns the current window length.
func (t *SpaceTracker) Len() int { return len(t.seq) }

// Push appends one visit to the window: interning, the window counts and the
// distinct total are all O(1) amortised.
//
//lint:hotpath
func (t *SpaceTracker) Push(v ScreenVisit) {
	id := t.it.intern(v.Sig)
	if int(id) >= len(t.cnt) {
		t.growCounts()
	}
	t.seq = append(t.seq, id)
	t.times = append(t.times, v.At)
	if t.cnt[id] == 0 {
		t.distinct++
	}
	t.cnt[id]++
}

// DropTo trims the window to at most max visits by dropping the oldest, the
// same suffix-keeping semantics as the Analyzer's WindowCap. Unlike the
// legacy path it never copies the surviving window: the slices alias forward
// and compaction happens for free on the next append that outgrows the
// backing array.
func (t *SpaceTracker) DropTo(max int) {
	if max <= 0 || len(t.seq) <= max {
		return
	}
	drop := len(t.seq) - max
	for i := 0; i < drop; i++ {
		x := t.seq[i]
		t.cnt[x]--
		if t.cnt[x] == 0 {
			t.distinct--
		}
	}
	t.seq = t.seq[drop:]
	t.times = t.times[drop:]
}

// Reset empties the window (the instance's next identification starts
// fresh) while keeping the interning table and its memoised verdicts.
func (t *SpaceTracker) Reset() {
	for _, x := range t.seq {
		t.cnt[x] = 0
	}
	t.distinct = 0
	t.seq = t.seq[:0]
	t.times = t.times[:0]
}

// growCounts extends the per-id arrays to the interning table's size.
func (t *SpaceTracker) growCounts() {
	n := t.it.len()
	if cap(t.cnt) >= n {
		t.cnt = t.cnt[:n]
		return
	}
	next := make([]int32, n, 2*n)
	copy(next, t.cnt)
	t.cnt = next
}

// ensureScratch sizes the per-id scratch arrays to the interning table.
func (t *SpaceTracker) ensureScratch() {
	n := t.it.len()
	if len(t.suffCnt) >= n {
		return
	}
	grow := 2 * n
	t.suffCnt = append(make([]int32, 0, grow), make([]int32, n)...)
	t.matchSum = append(make([]int32, 0, grow), make([]int32, n)...)
	t.inPD = append(make([]bool, 0, grow), make([]bool, n)...)
	t.seen = append(make([]uint64, 0, grow), make([]uint64, n)...)
}

// Analyze runs Algorithm 1 over the current window and returns exactly what
// FindSpace(window, lMin, m) would: same candidate boundary, same score
// bits, same member order. See FindSpace for the algorithm; this version
// differs only in what it reuses — pre-interned ids instead of a per-call
// dense-id map, the shared match matrix instead of a per-call cache, the
// maintained window counts instead of an O(N) recount, and a memoised
// sigmoid table (the purity term takes at most one value per distinct-count,
// computed from the identical expression) instead of one exp call per split.
//
//lint:hotpath
func (t *SpaceTracker) Analyze() (FindSpaceResult, bool) {
	n := len(t.seq)
	if n < 3 {
		return FindSpaceResult{}, false
	}
	end := t.times[n-1]

	// p_max ← max{p : T[p] ≤ T[N−1] − lMin}.
	pMax := -1
	for p := n - 1; p >= 0; p-- {
		if t.times[p] <= end-t.lMin {
			pMax = p
			break
		}
	}
	if pMax < 1 {
		return FindSpaceResult{}, false
	}

	t.ensureScratch()
	seq := t.seq

	// Distinct ids of the current window: the only entries of the per-id
	// scratch the sweep will touch.
	winIDs := t.winIDs[:0]
	for d, c := range t.cnt {
		if c > 0 {
			winIDs = append(winIDs, int32(d))
		}
	}
	t.winIDs = winIDs

	// sample_size ← |Set(S[p_max+1:N])|.
	t.epoch++
	epoch := t.epoch
	sampleSize := 0
	for i := pMax + 1; i < n; i++ {
		if t.seen[seq[i]] != epoch {
			t.seen[seq[i]] = epoch
			sampleSize++
		}
	}
	if sampleSize == 0 {
		return FindSpaceResult{}, false
	}

	// Suffix state for the split p=1, from the maintained window counts.
	suffCnt := t.suffCnt
	for _, d := range winIDs {
		suffCnt[d] = t.cnt[d]
	}
	x0 := seq[0]
	suffCnt[x0]--
	distinctSuff := t.distinct
	if suffCnt[x0] == 0 {
		distinctSuff--
	}

	// The purity term depends on the split only through distinctSuff, which
	// only ever decreases from its p=1 value: tabulate sigmoid once per
	// possible count, with the same expression FindSpace evaluates per split.
	if cap(t.pur) < distinctSuff+1 {
		t.pur = make([]float64, distinctSuff+1, 2*(distinctSuff+1))
	}
	pur := t.pur[:distinctSuff+1]
	for ds := 0; ds <= distinctSuff; ds++ {
		pur[ds] = sigmoid(float64(ds)/float64(sampleSize) - 1)
	}

	// Prefix state: distinct membership, per-id match sums, total overlap.
	matchSum := t.matchSum
	inPD := t.inPD
	for _, d := range winIDs {
		matchSum[d] = 0
		inPD[d] = false
	}
	var overlap int64 // exact: every FindSpace float increment is an integer
	it := t.it
	// addToPD admits x to the prefix's distinct set and returns the overlap
	// gained: one unit per suffix occurrence of every window screen matching
	// x. Verdicts are read straight off x's memoised match-matrix row (the
	// diagonal is pre-filled, so d == x needs no special case); the Matcher
	// itself runs only on a pair's first-ever comparison. Returning the delta
	// instead of capturing overlap keeps the sweep's accumulator in a
	// register.
	addToPD := func(x int32) int64 {
		if inPD[x] {
			return 0
		}
		inPD[x] = true
		row := it.match[int(x)*it.stride:]
		var delta int64
		for _, d := range winIDs {
			v := row[d]
			if v == 0 {
				if it.matches(x, d) {
					v = 1
				} else {
					v = -1
				}
			}
			if v == 1 {
				matchSum[d]++
				delta += int64(suffCnt[d])
			}
		}
		return delta
	}
	overlap += addToPD(x0)

	scoreMin := 1.0
	pOut := -1
	var overlapMin, purityMin float64
	for p := 1; p <= pMax; p++ {
		overlapScore := float64(overlap) / float64(n-p)
		purityScore := pur[distinctSuff]
		score := overlapScore + 2*purityScore - 1
		if score < scoreMin {
			scoreMin, pOut = score, p
			overlapMin, purityMin = overlapScore, purityScore
		}

		// Advance the split: index p leaves the suffix and joins the prefix.
		if p == pMax {
			break
		}
		x := seq[p]
		suffCnt[x]--
		if suffCnt[x] == 0 {
			distinctSuff--
		}
		overlap -= int64(matchSum[x])
		overlap += addToPD(x)
	}
	if pOut < 0 {
		return FindSpaceResult{}, false
	}

	// Materialise the subspace: distinct screens of S[pOut:N] in first-seen
	// order. The slice is freshly allocated — candidates outlive the tracker
	// (the coordinator stores them as pending reports).
	t.epoch++
	epoch = t.epoch
	members := make([]ui.Signature, 0, n-pOut)
	for i := pOut; i < n; i++ {
		d := seq[i]
		if t.seen[d] != epoch {
			t.seen[d] = epoch
			members = append(members, t.it.sig(d))
		}
	}
	return FindSpaceResult{
		POut:         pOut,
		Entry:        t.it.sig(seq[pOut]),
		Members:      members,
		Score:        scoreMin,
		OverlapScore: overlapMin,
		PurityScore:  purityMin,
	}, true
}
