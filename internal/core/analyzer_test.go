package core

import (
	"fmt"
	"testing"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// structScreen builds a screen with `widgets` clickable children; structural
// similarity between two such screens grows with shared child counts.
func structScreen(activity string, widgets int) *ui.Screen {
	var children []*ui.Node
	for j := 0; j < widgets; j++ {
		children = append(children, &ui.Node{
			Class:      "android.widget.Button",
			ResourceID: fmt.Sprintf("w%d", j),
			Enabled:    true, Clickable: true,
		})
	}
	return &ui.Screen{
		Activity: activity,
		Root: &ui.Node{Class: "FrameLayout", ResourceID: "root",
			Enabled: true, Children: children},
	}
}

func TestAnalyzerMatchUsesTreeSimilarity(t *testing.T) {
	book := trace.NewBook()
	// Same activity, nearly identical structure: 12 vs 13 widgets.
	s12 := book.Observe(structScreen("A", 12))
	s13 := book.Observe(structScreen("A", 13))
	// Same activity, very different structure.
	s3 := book.Observe(structScreen("A", 3))
	// Different activity.
	other := book.Observe(structScreen("B", 12))

	a := NewAnalyzer(DefaultAnalyzerConfig(LMinShort), book)
	if !a.Match(s12, s12) {
		t.Fatal("identity must match")
	}
	if !a.Match(s12, s13) {
		t.Fatal("near-identical structures must match (list row added)")
	}
	if a.Match(s12, s3) {
		t.Fatal("very different structures must not match")
	}
	if a.Match(s12, other) {
		t.Fatal("different activities must not match")
	}
	// The cache returns consistent results.
	if !a.Match(s13, s12) {
		t.Fatal("cached symmetric lookup differs")
	}
}

func TestAnalyzerObserveCadence(t *testing.T) {
	book := trace.NewBook()
	sig := book.Observe(structScreen("A", 4))
	cfg := DefaultAnalyzerConfig(LMinShort)
	cfg.AnalyzeEvery = 10
	a := NewAnalyzer(cfg, book)

	reports := 0
	for i := 0; i < 95; i++ {
		ev := trace.Event{
			Instance: 1,
			At:       sim.Duration(i) * sim.Duration(1e9),
			Action:   trace.Action{Kind: trace.ActionTap},
			To:       sig,
		}
		if _, found := a.Observe(ev); found {
			reports++
		}
	}
	// FindSpace ran every 10 events; whether it reports depends on the
	// trace, but the analyzer must never report more often than the cadence.
	if reports > 9 {
		t.Fatalf("reports = %d with AnalyzeEvery=10 over 95 events", reports)
	}
	if got := a.TraceLen(1); got != 95 {
		t.Fatalf("TraceLen = %d", got)
	}
}

func TestAnalyzerSkipsEnforcedEvents(t *testing.T) {
	book := trace.NewBook()
	sig := book.Observe(structScreen("A", 4))
	a := NewAnalyzer(DefaultAnalyzerConfig(LMinShort), book)
	for i := 0; i < 50; i++ {
		a.Observe(trace.Event{Instance: 1, At: sim.Duration(i), To: sig, Enforced: true})
	}
	if got := a.TraceLen(1); got != 0 {
		t.Fatalf("enforced events entered the analysis window: %d", got)
	}
}

func TestAnalyzerWindowCap(t *testing.T) {
	book := trace.NewBook()
	sig := book.Observe(structScreen("A", 4))
	cfg := DefaultAnalyzerConfig(LMinShort)
	cfg.WindowCap = 50
	a := NewAnalyzer(cfg, book)
	for i := 0; i < 500; i++ {
		a.Observe(trace.Event{Instance: 1, At: sim.Duration(i) * sim.Duration(1e9), To: sig})
	}
	if got := a.TraceLen(1); got > 50 {
		t.Fatalf("window grew to %d, cap 50", got)
	}
}

func TestAnalyzerResetInstance(t *testing.T) {
	book := trace.NewBook()
	sig := book.Observe(structScreen("A", 4))
	a := NewAnalyzer(DefaultAnalyzerConfig(LMinShort), book)
	a.Observe(trace.Event{Instance: 1, At: 0, To: sig})
	a.ResetInstance(1)
	if a.TraceLen(1) != 0 {
		t.Fatal("ResetInstance did not clear the window")
	}
}

func TestAnalyzerFindsSubspaceEndToEnd(t *testing.T) {
	book := trace.NewBook()
	// Region A: 5 screens with 4..8 widgets; region B: 5 with 14..18 — the
	// two regions are structurally distinct, so CountIn separates them.
	var regionA, regionB []ui.Signature
	for i := 0; i < 5; i++ {
		regionA = append(regionA, book.Observe(structScreen(fmt.Sprintf("A%d", i), 4+i)))
		regionB = append(regionB, book.Observe(structScreen(fmt.Sprintf("B%d", i), 14+i)))
	}
	cfg := DefaultAnalyzerConfig(LMinShort)
	cfg.AnalyzeEvery = 10
	a := NewAnalyzer(cfg, book)

	at := sim.Duration(0)
	emit := func(sig ui.Signature) (Candidate, bool) {
		at += sim.Duration(1e9)
		return a.Observe(trace.Event{Instance: 1, At: at, Action: trace.Action{Kind: trace.ActionTap}, To: sig})
	}

	// 120 steps in region A, then 240 in region B.
	var got Candidate
	found := false
	for i := 0; i < 120; i++ {
		emit(regionA[i%5])
	}
	for i := 0; i < 240; i++ {
		if cand, ok := emit(regionB[i%5]); ok {
			got, found = cand, true
		}
	}
	if !found {
		t.Fatal("analyzer never reported the region switch")
	}
	members := make(map[ui.Signature]bool)
	for _, m := range got.Members {
		members[m] = true
	}
	for _, sig := range regionB {
		if !members[sig] {
			t.Fatalf("candidate missing region-B screen %v", sig)
		}
	}
	for _, sig := range regionA {
		if members[sig] {
			t.Fatalf("candidate absorbed region-A screen %v", sig)
		}
	}
}
