package core

import (
	"testing"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// acceptFor installs a subspace owned by the given instance directly, so
// health tests exercise retirement and re-dedication without replaying the
// whole identification pipeline.
func acceptFor(c *Coordinator, owner int, sigs []ui.Signature, tokens ...int) *Subspace {
	members := make([]ui.Signature, len(tokens))
	for i, tk := range tokens {
		members[i] = sigs[tk]
	}
	c.accept(Candidate{Instance: owner, Entry: sigs[tokens[0]], Members: members, At: c.env.Now()}, members)
	return c.accepted[len(c.accepted)-1]
}

// An owner dying (vanishing from the farm without a release) must be
// detected by the health monitor, its subspace orphaned and re-dedicated to
// the replacement instance.
func TestDeathOrphanRededication(t *testing.T) {
	env := newFakeEnv(3)
	book, sigs := testBook(30)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()
	if len(env.active) != 3 {
		t.Fatal("setup: start")
	}
	sub := acceptFor(c, 0, sigs, 10, 11, 12)
	if sub.Owner != 0 {
		t.Fatal("setup: owner")
	}

	env.kill(0)
	env.now += 30 * second
	c.Tick(env.now)

	st := c.DecisionStats()
	if st.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", st.Deaths)
	}
	if len(env.deallocs) != 0 {
		t.Fatalf("dead instance must not be deallocated again, got %v", env.deallocs)
	}
	if len(env.active) != 3 {
		t.Fatalf("active = %d, want 3 (duration mode replaces)", len(env.active))
	}
	newest := env.active[len(env.active)-1]
	if sub.Owner != newest {
		t.Fatalf("subspace owner = %d, want replacement %d", sub.Owner, newest)
	}
	if c.OrphanCount() != 0 {
		t.Fatalf("orphans = %d, want 0", c.OrphanCount())
	}
	if st.Orphaned != 1 || st.Rededicated == 0 {
		t.Fatalf("orphan stats %+v", st)
	}
	if env.Blocks(newest).IsMember(sigs[11]) {
		t.Fatal("new owner blocked from its inherited subspace")
	}
	// A second tick must not double-count the same death.
	c.Tick(env.now + 30*second)
	if got := c.DecisionStats().Deaths; got != 1 {
		t.Fatalf("deaths after second tick = %d, want 1", got)
	}
}

// With DropOrphans, a dead owner's subspace stays blocked for everyone: the
// replacement does not inherit it.
func TestDeathDropOrphansKeepsBlocked(t *testing.T) {
	env := newFakeEnv(3)
	book, sigs := testBook(30)
	cfg := shortCfg()
	cfg.DropOrphans = true
	c := NewCoordinator(cfg, env, env, book)
	c.Start()
	sub := acceptFor(c, 0, sigs, 10, 11, 12)

	env.kill(0)
	env.now += 30 * second
	c.Tick(env.now)

	if sub.Owner != 0 {
		t.Fatalf("dropped orphan was re-dedicated to %d", sub.Owner)
	}
	if got := c.DecisionStats().DroppedOrphans; got != 1 {
		t.Fatalf("dropped orphans = %d, want 1", got)
	}
	newest := env.active[len(env.active)-1]
	if !env.Blocks(newest).IsMember(sigs[11]) {
		t.Fatal("dropped orphan subspace not blocked on the replacement")
	}
}

// When several owners die while the farm is busy, replacements inherit the
// orphans oldest-first once capacity returns.
func TestOldestOrphanRededicatedFirst(t *testing.T) {
	env := newFakeEnv(3)
	book, sigs := testBook(40)
	cfg := shortCfg()
	// Disable hang detection: this env feeds no events, and a surviving
	// instance being declared hung would shuffle the IDs under test.
	cfg.Heartbeat = -1
	c := NewCoordinator(cfg, env, env, book)
	c.Start()
	subA := acceptFor(c, 0, sigs, 10, 11, 12)
	subB := acceptFor(c, 1, sigs, 20, 21, 22)

	env.kill(0)
	env.kill(1)
	env.busy = true
	env.now += 30 * second
	c.Tick(env.now)

	if got := c.DecisionStats().Deaths; got != 2 {
		t.Fatalf("deaths = %d, want 2", got)
	}
	if len(env.active) != 1 {
		t.Fatalf("active = %d, want 1 (farm busy, running degraded)", len(env.active))
	}
	if c.OrphanCount() != 2 {
		t.Fatalf("orphans = %d, want 2", c.OrphanCount())
	}

	// Capacity returns; after the backoff both wants are retried.
	env.busy = false
	env.now += 10 * 60 * second
	c.Tick(env.now)

	if len(env.active) != 3 {
		t.Fatalf("active = %d, want 3 after recovery", len(env.active))
	}
	if c.OrphanCount() != 0 {
		t.Fatalf("orphans = %d, want 0 after recovery", c.OrphanCount())
	}
	// Instance 0 died before instance 1 was processed, so subA is the older
	// orphan and goes to the first replacement.
	first, secondNew := env.active[len(env.active)-2], env.active[len(env.active)-1]
	if subA.Owner != first || subB.Owner != secondNew {
		t.Fatalf("owners A=%d B=%d, want A=%d (older orphan first) B=%d",
			subA.Owner, subB.Owner, first, secondNew)
	}
}

// An instance that stops producing trace events while staying allocated is
// hung: the health monitor releases it after the heartbeat window and
// replaces it.
func TestHangDetection(t *testing.T) {
	env := newFakeEnv(2)
	book, sigs := testBook(10)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()

	// Instance 1 keeps producing events; instance 0 goes silent. Ten
	// 15-second steps pass the 2-minute heartbeat window for instance 0 but
	// keep its replacement (allocated on detection) within its own window.
	for i := 0; i < 10; i++ {
		env.now += 15 * second
		c.OnTransition(trace.Event{
			Instance: 1, At: env.now,
			Action: trace.Action{Kind: trace.ActionTap, Widget: "w"},
			From:   sigs[1], To: sigs[2], Activity: "Act2",
		})
		c.Tick(env.now)
	}

	st := c.DecisionStats()
	if st.Hangs != 1 {
		t.Fatalf("hangs = %d, want 1: %+v", st.Hangs, st)
	}
	if len(env.deallocs) != 1 || env.deallocs[0] != 0 {
		t.Fatalf("deallocs = %v, want [0] (hung instances are released)", env.deallocs)
	}
	if len(env.active) != 2 {
		t.Fatalf("active = %d, want 2 (replacement)", len(env.active))
	}
	// The live instance must not be reaped.
	for _, id := range env.deallocs {
		if id == 1 {
			t.Fatal("live instance reaped by the heartbeat monitor")
		}
	}
}

// Negative Heartbeat disables hang detection.
func TestHeartbeatDisabled(t *testing.T) {
	env := newFakeEnv(2)
	book, _ := testBook(10)
	cfg := shortCfg()
	cfg.Heartbeat = -1
	c := NewCoordinator(cfg, env, env, book)
	c.Start()
	env.now += 60 * 60 * second
	c.Tick(env.now)
	if len(env.deallocs) != 0 {
		t.Fatalf("deallocs = %v with hang detection disabled", env.deallocs)
	}
}

// Backoff timing under a persistently busy farm: retries happen at
// base, then doubling gaps, capped at AllocRetryMax.
func TestAllocBackoffTiming(t *testing.T) {
	cases := []struct {
		name         string
		retry, max   sim.Duration
		wantAttempts []sim.Duration
	}{
		{
			name:  "base10-cap80",
			retry: 10 * second,
			max:   80 * second,
			// Start attempt at t=0 queues the want with backoff 10; tick
			// retries then double: 10, +20, +40, +80, +80 (capped).
			wantAttempts: []sim.Duration{0, 10 * second, 30 * second, 70 * second, 150 * second, 230 * second},
		},
		{
			name:         "base5-cap20",
			retry:        5 * second,
			max:          20 * second,
			wantAttempts: []sim.Duration{0, 5 * second, 15 * second, 35 * second, 55 * second, 75 * second},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newFakeEnv(1)
			env.busy = true
			book, _ := testBook(1)
			cfg := shortCfg()
			cfg.AllocRetry = tc.retry
			cfg.AllocRetryMax = tc.max
			c := NewCoordinator(cfg, env, env, book)
			c.Start()

			horizon := tc.wantAttempts[len(tc.wantAttempts)-1]
			for env.now < horizon {
				env.now += second
				c.Tick(env.now)
			}
			if len(env.attempts) < len(tc.wantAttempts) {
				t.Fatalf("attempts = %v, want %v", env.attempts, tc.wantAttempts)
			}
			for i, want := range tc.wantAttempts {
				if env.attempts[i] != want {
					t.Fatalf("attempt %d at %v, want %v (all: %v)", i, env.attempts[i], want, env.attempts)
				}
			}
			if got := c.DecisionStats().AllocDeferred; got != len(tc.wantAttempts) {
				t.Fatalf("deferred = %d, want %d", got, len(tc.wantAttempts))
			}

			// Capacity returns: the next due retry succeeds and the backoff
			// resets.
			env.busy = false
			env.now += tc.max + second
			c.Tick(env.now)
			if len(env.active) != 1 {
				t.Fatalf("active = %d after recovery, want 1", len(env.active))
			}
			if c.allocBackoff != 0 || c.nextAllocAt != 0 {
				t.Fatalf("backoff not cleared after success: %v next %v", c.allocBackoff, c.nextAllocAt)
			}
		})
	}
}

// A permanent allocation error (not ErrFarmBusy) latches allocation off: no
// retry storm against a farm that is gone.
func TestPermanentAllocErrorDisables(t *testing.T) {
	env := newFakeEnv(2)
	env.allocFail = true
	book, _ := testBook(1)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()
	attempts := len(env.attempts)
	if attempts == 0 {
		t.Fatal("start never attempted allocation")
	}
	for i := 0; i < 100; i++ {
		env.now += 30 * second
		c.Tick(env.now)
	}
	if len(env.attempts) != attempts {
		t.Fatalf("ticks kept retrying a permanent error: %d -> %d attempts",
			attempts, len(env.attempts))
	}
}

// Deallocating an instance the farm no longer knows is an accounting error,
// surfaced in the stats and otherwise harmless.
func TestReleaseErrorSurfaced(t *testing.T) {
	env := newFakeEnv(2)
	book, sigs := testBook(10)
	c := NewCoordinator(shortCfg(), env, env, book)
	c.Start()

	// Instance 0 goes silent AND vanishes right before the hang check would
	// release it: the death branch wins and no bad release happens.
	env.now += 5 * 60 * second
	env.kill(0)
	c.Tick(env.now)
	if got := c.DecisionStats().ReleaseErrors; got != 0 {
		t.Fatalf("release errors = %d, want 0 (death beats hang)", got)
	}

	// Force the error path directly: retire an ID the env never allocated.
	c.tracked[99] = true
	c.lastEvent[99] = 0
	c.retire(99, true)
	if got := c.DecisionStats().ReleaseErrors; got != 1 {
		t.Fatalf("release errors = %d, want 1", got)
	}
	_ = sigs
}
