package export

import (
	"bytes"
	"strings"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/sim"
)

func sampleResult(t *testing.T) *harness.RunResult {
	t.Helper()
	app, err := apps.Load("Filters For Selfie")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(harness.RunConfig{
		App:      app,
		Tool:     "monkey",
		Setting:  harness.TaOPTDuration,
		Duration: 6 * sim.Duration(60e9),
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTrip(t *testing.T) {
	res := sampleResult(t)
	run := FromResult(res)

	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if back.App != res.Config.App.Name || back.Tool != "monkey" || back.Setting != "taopt-duration" {
		t.Fatalf("identity fields lost: %+v", back)
	}
	if back.Coverage != res.Union.Count() || back.UniqueCrashes != res.UniqueCrashes {
		t.Fatal("headline metrics lost")
	}
	if len(back.Instances) != len(res.Instances) {
		t.Fatalf("instances = %d, want %d", len(back.Instances), len(res.Instances))
	}
	for i, inst := range back.Instances {
		if len(inst.Events) != res.Instances[i].Trace.Len() {
			t.Fatalf("instance %d: %d events, want %d", i, len(inst.Events), res.Instances[i].Trace.Len())
		}
	}
	if len(back.Screens) != res.Book.Len() {
		t.Fatal("screen registry lost")
	}
	if len(back.Timeline) != len(res.Timeline) {
		t.Fatal("timeline lost")
	}
}

func TestTraceLogsReconstruction(t *testing.T) {
	res := sampleResult(t)
	run := FromResult(res)
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logs := back.TraceLogs()
	if len(logs) != len(res.Instances) {
		t.Fatal("log count mismatch")
	}
	orig := res.Instances[0].Trace.Events()
	got := logs[0].Events()
	if len(got) != len(orig) {
		t.Fatal("event count mismatch")
	}
	for i := range orig {
		if got[i].To != orig[i].To || got[i].From != orig[i].From ||
			got[i].At != orig[i].At || got[i].Action.Kind != orig[i].Action.Kind ||
			got[i].Enforced != orig[i].Enforced {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Read(strings.NewReader(`{garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSubspacesSerialised(t *testing.T) {
	res := sampleResult(t)
	if len(res.Subspaces) == 0 {
		t.Skip("no subspaces identified at this scale")
	}
	run := FromResult(res)
	if len(run.Subspaces) != len(res.Subspaces) {
		t.Fatal("subspace count mismatch")
	}
	for i, sub := range run.Subspaces {
		if len(sub.Members) != len(res.Subspaces[i].Members) {
			t.Fatal("member count mismatch")
		}
		for j := 1; j < len(sub.Members); j++ {
			if sub.Members[j-1] > sub.Members[j] {
				t.Fatal("members not sorted (unstable serialisation)")
			}
		}
	}
}

func TestChaosRunExportsFaults(t *testing.T) {
	app, err := apps.Load("Filters For Selfie")
	if err != nil {
		t.Fatal(err)
	}
	fc := faults.DefaultConfig(0.5)
	fc.MinLife = 1 * sim.Duration(60e9)
	fc.MaxLife = 4 * sim.Duration(60e9)
	res, err := harness.Run(harness.RunConfig{
		App:      app,
		Tool:     "monkey",
		Setting:  harness.TaOPTDuration,
		Duration: 8 * sim.Duration(60e9),
		Seed:     4,
		Faults:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FromResult(res).Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Transport == nil {
		t.Fatal("chaos run exported without a transport summary")
	}
	if got := back.Transport.Deaths + back.Transport.Hangs; got != res.Transport.Deaths+res.Transport.Hangs {
		t.Fatalf("fault counts lost in round trip: %+v vs %+v", *back.Transport, res.Transport)
	}
	if back.Transport.FailedInstances != res.FailedInstances {
		t.Fatalf("failed-instance count %d, want %d", back.Transport.FailedInstances, res.FailedInstances)
	}
	failed := 0
	for _, inst := range back.Instances {
		if inst.Failed {
			failed++
		}
	}
	if failed != res.FailedInstances {
		t.Fatalf("%d instances marked failed in export, want %d", failed, res.FailedInstances)
	}

	// A fault-free run must not grow a faults section.
	buf.Reset()
	if err := FromResult(sampleResult(t)).Write(&buf); err != nil {
		t.Fatal(err)
	}
	clean, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Transport != nil {
		t.Fatal("fault-free run exported a transport summary")
	}
}
