// Replay: re-derive a run's export from its recorded wire log.
//
// The wire log is the full bidirectional message record of a run (see
// internal/bus/wire): ground trace events, post-fault deliveries, every
// Command/Reply exchange, and the boundary effects (leases, screen
// definitions, ticks, samples, per-lease summaries, run totals). Those
// frames are sufficient to re-drive the coordinator — and only the
// coordinator — without the farm, the testing tools or the fault plan:
// tool decisions are replayed from the recorded events, never re-run.
//
// Replay is strict. The coordinator's sends are matched frame-for-frame
// against the recorded exchanges; any divergence (a command the log does
// not carry next, a count that does not reconcile with the recorded run
// totals) is an error, not a best-effort continuation. A wire log either
// reproduces its run byte-for-byte or it fails loudly.
package export

import (
	"fmt"
	"io"
	"sort"

	"taopt/internal/bus"
	"taopt/internal/bus/wire"
	"taopt/internal/core"
	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

// ReplayWireLog re-drives the run recorded in rd and returns its export —
// byte-identical to the live run's — plus the re-derived coordinator
// decision log (empty for baseline settings). The telemetry block is never
// emitted: the metrics registry samples live harness state the log does not
// carry, so a telemetry-enabled run replays to its telemetry-free export.
func ReplayWireLog(rd io.Reader) (*Run, *obs.Log, error) {
	log, err := wire.ReadLog(rd)
	if err != nil {
		return nil, nil, err
	}
	if log.Header.CoreOverride {
		return nil, nil, fmt.Errorf("export: replay: run used a caller-supplied core.Config, which wire logs do not serialise")
	}
	e := &wireReplay{
		hdr:       log.Header,
		frames:    log.Frames,
		book:      trace.NewBook(),
		events:    make(map[int][]trace.Event),
		summaries: make(map[int]wire.Summary),
		decisions: &obs.Log{},
	}
	switch e.hdr.Setting {
	case "taopt-duration":
		e.buildCoordinator(core.DurationConstrained)
	case "taopt-resource":
		e.buildCoordinator(core.ResourceConstrained)
	}
	if e.coord != nil {
		e.coord.Start()
	}
	e.drive()
	if e.err != nil {
		return nil, nil, e.err
	}
	if err := e.reconcile(); err != nil {
		return nil, nil, err
	}
	return e.export(), e.decisions, nil
}

// wireReplay re-drives one recorded run. It implements core.Env and
// bus.Sender against the frame cursor: where the live coordinator talked to
// the harness and the transport, the replayed one talks to the log.
type wireReplay struct {
	hdr    wire.Header
	frames []wire.Frame
	pos    int
	now    sim.Duration

	// active mirrors the farm's active-allocation set. Instance IDs are
	// allocated monotonically and device.Farm.Active sorts by ID, so a
	// sorted ID slice reproduces ActiveInstances exactly.
	active []int

	book      *trace.Book
	coord     *core.Coordinator
	decisions *obs.Log

	leaseOrder []int
	events     map[int][]trace.Event
	summaries  map[int]wire.Summary
	samples    []wire.Sample
	end        *wire.RunEnd
	grounds    int
	delivered  int

	err error
}

// senderFunc adapts the engine's frame-matching send to bus.Sender.
type senderFunc func(bus.Command) bus.Reply

func (f senderFunc) Send(cmd bus.Command) bus.Reply { return f(cmd) }

func (e *wireReplay) buildCoordinator(mode core.Mode) {
	cfg := core.DefaultConfig(mode)
	cfg.Obs = e.decisions
	e.coord = core.NewCoordinator(cfg, e, senderFunc(e.send), e.book)
}

func (e *wireReplay) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("export: replay: frame %d: %s", e.pos, fmt.Sprintf(format, args...))
	}
}

func (e *wireReplay) next() (wire.Frame, bool) {
	if e.err != nil || e.pos >= len(e.frames) {
		return wire.Frame{}, false
	}
	f := e.frames[e.pos]
	e.pos++
	e.now = f.At
	return f, true
}

// --- core.Env ------------------------------------------------------------

func (e *wireReplay) Now() sim.Duration { return e.now }

func (e *wireReplay) MaxInstances() int { return e.hdr.MaxDevices }

func (e *wireReplay) ActiveInstances() []int {
	return append([]int(nil), e.active...)
}

func (e *wireReplay) Allocate() (int, error) {
	rep := e.send(bus.Command{Kind: bus.Allocate})
	return rep.Instance, rep.Err
}

func (e *wireReplay) Deallocate(id int) error {
	return e.send(bus.Command{Kind: bus.Deallocate, Instance: id}).Err
}

// --- frame consumption ---------------------------------------------------

// send matches one coordinator-originated command against the next recorded
// exchange and returns the recorded reply. The live run's decision sequence
// is deterministic, so the replayed coordinator must ask for exactly what
// the log carries next — anything else is divergence.
func (e *wireReplay) send(cmd bus.Command) bus.Reply {
	f, ok := e.next()
	if !ok {
		e.fail("coordinator sent %s but the log has no frames left", cmd.Kind)
		return bus.Reply{Err: fmt.Errorf("export: replay diverged")}
	}
	if f.Kind != wire.FrameCommand {
		e.fail("coordinator sent %s but the log carries a %v frame", cmd.Kind, f.Kind)
		return bus.Reply{Err: fmt.Errorf("export: replay diverged")}
	}
	if f.Cmd != cmd {
		e.fail("coordinator sent %+v but the log recorded %+v", cmd, f.Cmd)
		return bus.Reply{Err: fmt.Errorf("export: replay diverged")}
	}
	return e.consumeExchange(cmd)
}

// consumeExchange reads the effect frames of one in-flight command (screen
// definitions, instance leases) up to its reply, then applies the exchange
// to the mirrored farm state.
func (e *wireReplay) consumeExchange(cmd bus.Command) bus.Reply {
	for {
		f, ok := e.next()
		if !ok {
			e.fail("exchange for %s has no reply", cmd.Kind)
			return bus.Reply{Err: fmt.Errorf("export: replay diverged")}
		}
		//lint:allow exhaustive "only screen, lease and reply frames are legal inside an exchange; the default fails the replay as divergence"
		switch f.Kind {
		case wire.FrameScreen:
			e.observe(f)
		case wire.FrameLease:
			e.lease(f)
		case wire.FrameReply:
			e.apply(cmd, f.Reply)
			return f.Reply
		default:
			e.fail("unexpected %v frame inside a %s exchange", f.Kind, cmd.Kind)
			return bus.Reply{Err: fmt.Errorf("export: replay diverged")}
		}
	}
}

// apply mirrors an exchange's effect on the farm's active set.
func (e *wireReplay) apply(cmd bus.Command, rep bus.Reply) {
	switch cmd.Kind {
	case bus.Allocate:
		if rep.Err == nil {
			e.addActive(rep.Instance)
		}
	case bus.Deallocate:
		if rep.Err == nil {
			e.removeActive(cmd.Instance)
		}
	case bus.BlockWidget, bus.BlockMember, bus.Kill, bus.Hang:
		// Blocks steer tools and fates arrive as FrameFate injections;
		// neither changes the mirrored active set here.
	}
}

func (e *wireReplay) addActive(id int) {
	i := sort.SearchInts(e.active, id)
	if i < len(e.active) && e.active[i] == id {
		return
	}
	e.active = append(e.active, 0)
	copy(e.active[i+1:], e.active[i:])
	e.active[i] = id
}

func (e *wireReplay) removeActive(id int) {
	i := sort.SearchInts(e.active, id)
	if i < len(e.active) && e.active[i] == id {
		e.active = append(e.active[:i], e.active[i+1:]...)
	}
}

func (e *wireReplay) observe(f wire.Frame) {
	sig := e.book.Observe(f.Screen)
	if sig != f.Sig {
		e.fail("screen definition hashes to %v, recorded as %v (codec or abstraction drift)", sig, f.Sig)
	}
}

func (e *wireReplay) lease(f wire.Frame) {
	e.leaseOrder = append(e.leaseOrder, f.Instance)
	e.events[f.Instance] = append(e.events[f.Instance], f.Event)
}

// drive consumes the top-level frame stream: ground events accumulate into
// the per-instance logs, deliveries feed the coordinator, runner-originated
// exchanges and fate injections update the mirrored farm state.
func (e *wireReplay) drive() {
	for e.err == nil && e.pos < len(e.frames) {
		f, _ := e.next()
		switch f.Kind {
		case wire.FrameScreen:
			e.observe(f)
		case wire.FrameEvent:
			e.grounds++
			e.events[f.Event.Instance] = append(e.events[f.Event.Instance], f.Event)
		case wire.FrameDelivered:
			e.delivered++
			if e.coord != nil {
				e.coord.OnTransition(f.Event)
			}
		case wire.FrameCommand:
			// A runner-originated exchange: a baseline strategy's allocation,
			// an end-of-run deallocation, or a guard-rejected request.
			e.consumeExchange(f.Cmd)
		case wire.FrameFate:
			// An injected Kill removes the instance from the farm; a Hang
			// leaves it allocated (and billed) in place.
			if f.Cmd.Kind == bus.Kill {
				e.removeActive(f.Cmd.Instance)
			}
		case wire.FrameLease:
			e.lease(f)
		case wire.FrameTick:
			if e.coord != nil {
				e.coord.Tick(f.At)
			}
		case wire.FrameSample:
			e.samples = append(e.samples, f.Sample)
		case wire.FrameInstance:
			e.summaries[f.Summary.ID] = f.Summary
		case wire.FrameRunEnd:
			e.end = &f.End
		case wire.FrameHeader, wire.FrameReply:
			// The header is consumed before drive starts and replies are
			// consumed inside their exchange; either at top level means the
			// log and this replayer have diverged.
			e.fail("%v frame outside its exchange (replay diverged)", f.Kind)
		default:
			e.fail("unhandled frame kind %v", f.Kind)
		}
	}
}

// reconcile cross-checks the re-driven state against the recorded run
// totals: the frame counts must reconcile with the transport accounting and
// the replayed coordinator must land in the recorded end state.
func (e *wireReplay) reconcile() error {
	if e.end == nil {
		return fmt.Errorf("export: replay: log carries no run-end frame (truncated recording)")
	}
	// Every ground frame is a publish the transport counted — except delayed
	// events the run ended before re-delivering, which the recorder saw at
	// emission but the accounting never credits. Allow exactly that slack.
	if lost := e.grounds - e.end.Stats.Published; lost < 0 || lost > e.end.Stats.Delayed {
		return fmt.Errorf("export: replay: %d ground event frames but the run published %d (delayed %d)",
			e.grounds, e.end.Stats.Published, e.end.Stats.Delayed)
	}
	if e.delivered != e.end.Stats.Delivered {
		return fmt.Errorf("export: replay: %d delivery frames but the run delivered %d", e.delivered, e.end.Stats.Delivered)
	}
	if e.coord != nil && e.coord.OrphanCount() != e.end.OrphansPending {
		return fmt.Errorf("export: replay: coordinator ends with %d pending orphans, run recorded %d", e.coord.OrphanCount(), e.end.OrphansPending)
	}
	for _, id := range e.leaseOrder {
		if _, ok := e.summaries[id]; !ok {
			return fmt.Errorf("export: replay: instance %d has a lease but no end-of-run summary", id)
		}
	}
	return nil
}

// export assembles the run document exactly as FromResult does from a live
// result, field for field, so the replayed bytes match the live bytes.
func (e *wireReplay) export() *Run {
	end := e.end
	out := &Run{
		Version:       FormatVersion,
		App:           e.hdr.App,
		Tool:          e.hdr.Tool,
		Setting:       e.hdr.Setting,
		Seed:          e.hdr.Seed,
		ScenarioHash:  e.hdr.ScenarioHash,
		WallUsedNS:    end.WallNS,
		MachineUsedNS: end.MachineNS,
		Coverage:      end.Coverage,
		UniqueCrashes: end.UniqueCrashes,
	}
	if e.hdr.FaultsEnabled {
		st := end.Stats
		out.Transport = &Transport{
			Events:          st.Published,
			Delivered:       st.Delivered,
			Commands:        st.Commands,
			CommandFailures: st.CommandFailures,
			Dropped:         st.Dropped,
			Delayed:         st.Delayed,
			Deaths:          st.Deaths,
			Hangs:           st.Hangs,
			AllocFailures:   st.AllocFailures,
			LostCommands:    st.LostCommands,
			FailedInstances: end.FailedInstances,
			OrphansPending:  end.OrphansPending,
			CommandMix: &CommandMix{
				Allocate:    st.KindCount(bus.Allocate),
				Deallocate:  st.KindCount(bus.Deallocate),
				BlockWidget: st.KindCount(bus.BlockWidget),
				BlockMember: st.KindCount(bus.BlockMember),
				Kill:        st.KindCount(bus.Kill),
				Hang:        st.KindCount(bus.Hang),
			},
		}
	}
	for _, id := range e.leaseOrder {
		sum := e.summaries[id]
		ei := Instance{
			ID:          id,
			AllocatedNS: sum.AllocatedNS,
			ReleasedNS:  sum.ReleasedNS,
			Coverage:    sum.Coverage,
			Failed:      sum.Failed,
		}
		for _, cr := range sum.Crashes {
			ei.Crashes = append(ei.Crashes, Crash{Signature: cr.Signature, AtNS: cr.AtNS, Frames: cr.Frames})
		}
		for _, ev := range e.events[id] {
			ei.Events = append(ei.Events, Event{
				AtNS:     int64(ev.At),
				Kind:     ev.Action.Kind.String(),
				Widget:   string(ev.Action.Widget),
				From:     uint64(ev.From),
				To:       uint64(ev.To),
				Activity: ev.Activity,
				Crashed:  ev.Crashed,
				Enforced: ev.Enforced,
			})
		}
		out.Instances = append(out.Instances, ei)
	}
	if e.coord != nil {
		for _, sub := range e.coord.Subspaces() {
			es := Subspace{ID: sub.ID, Entry: uint64(sub.Entry), Owner: sub.Owner, FoundNS: int64(sub.FoundAt)}
			for m := range sub.Members {
				es.Members = append(es.Members, uint64(m))
			}
			sortUint64(es.Members)
			out.Subspaces = append(out.Subspaces, es)
		}
	}
	for _, s := range e.samples {
		out.Timeline = append(out.Timeline, Point{
			WallNS:    s.WallNS,
			MachineNS: s.MachineNS,
			Covered:   s.Covered,
			Crashes:   s.Crashes,
			AJS:       s.AJS,
		})
	}
	for _, sig := range e.book.Signatures() {
		s := e.book.Lookup(sig)
		out.Screens = append(out.Screens, Screen{
			Signature: uint64(sig),
			Activity:  s.Activity,
			Nodes:     s.Root.Size(),
		})
	}
	return out
}

// Statically assert the engine satisfies the coordinator's environment seam.
var _ core.Env = (*wireReplay)(nil)
