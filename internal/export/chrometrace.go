package export

import (
	"fmt"

	"taopt/internal/harness"
	"taopt/internal/obs"
	"taopt/internal/sim"
)

// ChromeTrace assembles a Perfetto-loadable trace-event view of one run:
// testing instances become tracks carrying their lease spans, accepted
// subspaces become ownership spans on their (final) owner's track, and —
// when the run collected telemetry — every decision-log entry becomes an
// instant event on the deciding instance's track. The assembly order is
// fixed (instances in allocation order, subspaces in acceptance order,
// decisions in emission order), so the serialised trace is deterministic.
func ChromeTrace(res *harness.RunResult) *obs.ChromeTrace {
	tr := &obs.ChromeTrace{}
	const pid = 1
	// Track 0 hosts coordinator-level decisions not tied to an instance
	// (allocation backoff, alloc-disable).
	tr.ThreadName(pid, 0, "coordinator")
	for _, inst := range res.Instances {
		tr.ThreadName(pid, inst.ID, fmt.Sprintf("instance %d", inst.ID))
		name := "lease"
		if inst.Failed {
			name = "lease (failed)"
		}
		tr.Complete(name, "lease", pid, inst.ID, inst.Allocated, inst.Released-inst.Allocated)
	}
	for _, sub := range res.Subspaces {
		tr.Complete(fmt.Sprintf("subspace %d", sub.ID), "subspace", pid, sub.Owner,
			sub.FoundAt, res.WallUsed-sub.FoundAt)
	}
	if res.Telemetry != nil {
		for _, d := range res.Telemetry.DecisionLog().Decisions() {
			tid := d.Instance
			if tid < 0 {
				tid = 0
			}
			args := map[string]any{}
			if d.Sub >= 0 {
				args["sub"] = d.Sub
			}
			if d.Reason != "" {
				args["reason"] = d.Reason
			}
			tr.Instant(d.Kind, "decision", pid, tid, sim.Duration(d.AtNS), args)
		}
	}
	return tr
}
