package export

import (
	"fmt"
	"io"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/trace/bin"
	"taopt/internal/ui"
)

// WriteBin serialises the run in the compact binary trace format
// (internal/trace/bin) — the storage twin of the JSON view. The record order
// is canonical: header, events grouped per instance, timeline samples,
// decisions, instance summaries, subspaces, screens, transport, metrics,
// end. ReadBin(WriteBin(r)) == r, and re-encoding that is a byte fixed
// point. (A live harness stream interleaves events across instances instead
// of grouping them; ReadBin regroups, so both forms decode to the same Run.)
func (r *Run) WriteBin(w io.Writer) error {
	bw := bin.NewWriter(w, bin.Header{
		App:           r.App,
		Tool:          r.Tool,
		Setting:       r.Setting,
		Seed:          r.Seed,
		ScenarioHash:  r.ScenarioHash,
		ExportVersion: r.Version,
		Telemetry:     r.Telemetry != nil,
		Faults:        r.Transport != nil,
	})
	for _, inst := range r.Instances {
		for _, ev := range inst.Events {
			bw.Event(toTraceEvent(inst.ID, ev))
		}
	}
	for _, p := range r.Timeline {
		bw.Sample(bin.Sample{
			WallNS: p.WallNS, MachineNS: p.MachineNS,
			Covered: p.Covered, Crashes: p.Crashes, AJS: p.AJS,
		})
	}
	if r.Telemetry != nil {
		for _, d := range r.Telemetry.Decisions {
			bw.Decision(d)
		}
	}
	for _, inst := range r.Instances {
		sum := bin.InstanceSummary{
			ID:          inst.ID,
			AllocatedNS: inst.AllocatedNS,
			ReleasedNS:  inst.ReleasedNS,
			Failed:      inst.Failed,
			Coverage:    inst.Coverage,
		}
		for _, cr := range inst.Crashes {
			sum.Crashes = append(sum.Crashes, bin.Crash{
				Signature: cr.Signature, AtNS: cr.AtNS, Frames: cr.Frames,
			})
		}
		bw.Instance(sum)
	}
	for _, sub := range r.Subspaces {
		bw.Subspace(bin.Subspace{
			ID: sub.ID, Entry: sub.Entry, Members: sub.Members,
			Owner: sub.Owner, FoundNS: sub.FoundNS,
		})
	}
	for _, s := range r.Screens {
		bw.Screen(bin.Screen{Sig: s.Signature, Activity: s.Activity, Nodes: s.Nodes})
	}
	if t := r.Transport; t != nil {
		bt := bin.Transport{
			Events: t.Events, Delivered: t.Delivered, Commands: t.Commands,
			CommandFailures: t.CommandFailures, Dropped: t.Dropped,
			Delayed: t.Delayed, Deaths: t.Deaths, Hangs: t.Hangs,
			AllocFailures: t.AllocFailures, LostCommands: t.LostCommands,
			FailedInstances: t.FailedInstances, OrphansPending: t.OrphansPending,
		}
		if m := t.CommandMix; m != nil {
			bt.HasMix = true
			bt.Mix = [6]int{m.Allocate, m.Deallocate, m.BlockWidget, m.BlockMember, m.Kill, m.Hang}
		}
		bw.Transport(bt)
	}
	if r.Telemetry != nil {
		for _, m := range r.Telemetry.Metrics {
			bw.Metric(m)
		}
	}
	bw.End(bin.End{
		WallNS:    r.WallUsedNS,
		MachineNS: r.MachineUsedNS,
		Coverage:  r.Coverage, UniqueCrashes: r.UniqueCrashes,
	})
	return bw.Close()
}

// toTraceEvent converts the JSON event shape back to the trace type the
// binary codec encodes.
func toTraceEvent(inst int, ev Event) trace.Event {
	return trace.Event{
		Instance: inst,
		At:       sim.Duration(ev.AtNS),
		Action:   trace.Action{Kind: parseKind(ev.Kind), Widget: ui.WidgetPath(ev.Widget)},
		From:     ui.Signature(ev.From),
		To:       ui.Signature(ev.To),
		Activity: ev.Activity,
		Crashed:  ev.Crashed,
		Enforced: ev.Enforced,
	}
}

// ReadBin streams a binary trace back into the Run form — the debug view of
// the stream. The rebuilt Run is byte-identical (as JSON) to the export the
// writing run would have produced directly: slice and pointer fields are
// materialised only when their records (or header flags) appeared, so the
// nil-versus-empty distinctions of the JSON schema survive the round trip.
func ReadBin(rd io.Reader) (*Run, error) {
	br, err := bin.NewReader(rd)
	if err != nil {
		return nil, err
	}
	hdr := br.Header()
	if hdr.ExportVersion < minReadVersion || hdr.ExportVersion > FormatVersion {
		return nil, fmt.Errorf("export: unsupported format version %d in binary trace (want %d..%d)", hdr.ExportVersion, minReadVersion, FormatVersion)
	}
	out := &Run{
		Version:      hdr.ExportVersion,
		App:          hdr.App,
		Tool:         hdr.Tool,
		Setting:      hdr.Setting,
		Seed:         hdr.Seed,
		ScenarioHash: hdr.ScenarioHash,
	}
	var tel *Telemetry
	if hdr.Telemetry {
		tel = &Telemetry{}
		out.Telemetry = tel
	}
	events := make(map[int][]Event)
	sawEnd := false
	for {
		rec, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if sawEnd {
			return nil, fmt.Errorf("%w: %v record after end", bin.ErrCorrupt, rec.Kind)
		}
		switch rec.Kind {
		case bin.KindEvent:
			ev := rec.Event
			events[ev.Instance] = append(events[ev.Instance], Event{
				AtNS:     int64(ev.At),
				Kind:     ev.Action.Kind.String(),
				Widget:   string(ev.Action.Widget),
				From:     uint64(ev.From),
				To:       uint64(ev.To),
				Activity: ev.Activity,
				Crashed:  ev.Crashed,
				Enforced: ev.Enforced,
			})
		case bin.KindSample:
			s := rec.Sample
			out.Timeline = append(out.Timeline, Point{
				WallNS: s.WallNS, MachineNS: s.MachineNS,
				Covered: s.Covered, Crashes: s.Crashes, AJS: s.AJS,
			})
		case bin.KindDecision:
			if tel == nil {
				return nil, fmt.Errorf("%w: decision record without telemetry header flag", bin.ErrCorrupt)
			}
			tel.Decisions = append(tel.Decisions, rec.Decision)
		case bin.KindInstance:
			s := rec.Summary
			inst := Instance{
				ID:          s.ID,
				AllocatedNS: s.AllocatedNS,
				ReleasedNS:  s.ReleasedNS,
				Coverage:    s.Coverage,
				Failed:      s.Failed,
				Events:      events[s.ID],
			}
			for _, cr := range s.Crashes {
				inst.Crashes = append(inst.Crashes, Crash{
					Signature: cr.Signature, AtNS: cr.AtNS, Frames: cr.Frames,
				})
			}
			out.Instances = append(out.Instances, inst)
		case bin.KindSubspace:
			s := rec.Subspace
			out.Subspaces = append(out.Subspaces, Subspace{
				ID: s.ID, Entry: s.Entry, Members: s.Members,
				Owner: s.Owner, FoundNS: s.FoundNS,
			})
		case bin.KindScreen:
			s := rec.Screen
			out.Screens = append(out.Screens, Screen{
				Signature: s.Sig, Activity: s.Activity, Nodes: s.Nodes,
			})
		case bin.KindTransport:
			t := rec.Transport
			et := &Transport{
				Events: t.Events, Delivered: t.Delivered, Commands: t.Commands,
				CommandFailures: t.CommandFailures, Dropped: t.Dropped,
				Delayed: t.Delayed, Deaths: t.Deaths, Hangs: t.Hangs,
				AllocFailures: t.AllocFailures, LostCommands: t.LostCommands,
				FailedInstances: t.FailedInstances, OrphansPending: t.OrphansPending,
			}
			if t.HasMix {
				et.CommandMix = &CommandMix{
					Allocate: t.Mix[0], Deallocate: t.Mix[1],
					BlockWidget: t.Mix[2], BlockMember: t.Mix[3],
					Kill: t.Mix[4], Hang: t.Mix[5],
				}
			}
			out.Transport = et
		case bin.KindMetric:
			if tel == nil {
				return nil, fmt.Errorf("%w: metric record without telemetry header flag", bin.ErrCorrupt)
			}
			tel.Metrics = append(tel.Metrics, rec.Metric)
		case bin.KindEnd:
			e := rec.End
			out.WallUsedNS = e.WallNS
			out.MachineUsedNS = e.MachineNS
			out.Coverage = e.Coverage
			out.UniqueCrashes = e.UniqueCrashes
			sawEnd = true
		case bin.KindHeader, bin.KindStrDef, bin.KindSigDef:
			// The Reader consumes header and interning records internally;
			// one surfacing from Next means the stream (or Reader) is broken.
			return nil, fmt.Errorf("%w: %v record surfaced mid-stream", bin.ErrCorrupt, rec.Kind)
		default:
			return nil, fmt.Errorf("%w: unexpected %v record", bin.ErrCorrupt, rec.Kind)
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("%w: stream ends without end record", bin.ErrCorrupt)
	}
	return out, nil
}
