// Package export serialises run results — UI transition traces, coverage,
// crashes, identified subspaces — to a stable JSON format, mirroring the
// paper's practice of logging every experiment for offline inspection
// (Section 8: "we output relevant logs and the used metrics for each
// experiment"). cmd/tracetool consumes these files for offline analysis.
package export

import (
	"encoding/json"
	"fmt"
	"io"

	"taopt/internal/bus"
	"taopt/internal/harness"
	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// FormatVersion identifies the serialisation schema. Version 2 replaced the
// fault summary with the transport block (trace delivery accounting plus
// injected faults); version 3 added the optional telemetry block (decision
// log + metrics) and the transport's per-kind command mix; version 4 added
// the optional scenario_hash field — the canonical content hash of the
// scenario document (internal/scenario) that defined the run's app; version
// 5 marks the binary-trace era (internal/trace/bin): the JSON schema is
// unchanged from v4, but v5 files are the debug view of runs that can also
// stream the binary form, and WriteBin/ReadBin round-trip them losslessly.
// All additions are optional fields, so Read still accepts version-2 files.
const FormatVersion = 5

// minReadVersion is the oldest schema Read accepts.
const minReadVersion = 2

// Run is the serialised form of one campaign run.
type Run struct {
	Version int    `json:"version"`
	App     string `json:"app"`
	Tool    string `json:"tool"`
	Setting string `json:"setting"`
	Seed    int64  `json:"seed"`
	// ScenarioHash names the exact scenario document that defined the run's
	// app (format v4); empty for apps built in code.
	ScenarioHash string `json:"scenario_hash,omitempty"`

	WallUsedNS    int64 `json:"wall_used_ns"`
	MachineUsedNS int64 `json:"machine_used_ns"`
	Coverage      int   `json:"coverage"`
	UniqueCrashes int   `json:"unique_crashes"`

	// Transport summarises the coordination transport's delivery accounting
	// and injected device-farm failures (emitted on chaos runs only).
	Transport *Transport `json:"transport,omitempty"`
	// Telemetry carries the observability layer's decision log and metrics
	// snapshot (emitted only when the run collected telemetry).
	Telemetry *Telemetry `json:"telemetry,omitempty"`

	Instances []Instance `json:"instances"`
	Subspaces []Subspace `json:"subspaces,omitempty"`
	Timeline  []Point    `json:"timeline"`
	Screens   []Screen   `json:"screens"`
}

// Instance is one testing-instance allocation.
type Instance struct {
	ID          int   `json:"id"`
	AllocatedNS int64 `json:"allocated_ns"`
	ReleasedNS  int64 `json:"released_ns"`
	Coverage    int   `json:"coverage"`
	// Failed marks a lease terminated by an injected fault rather than a
	// deliberate release.
	Failed  bool    `json:"failed,omitempty"`
	Crashes []Crash `json:"crashes,omitempty"`
	Events  []Event `json:"events"`
}

// Event is one UI transition.
type Event struct {
	AtNS     int64  `json:"at_ns"`
	Kind     string `json:"kind"`
	Widget   string `json:"widget,omitempty"`
	From     uint64 `json:"from,omitempty"`
	To       uint64 `json:"to"`
	Activity string `json:"activity"`
	Crashed  bool   `json:"crashed,omitempty"`
	Enforced bool   `json:"enforced,omitempty"`
}

// Transport summarises a chaos run's coordination transport: trace events
// published and delivered, commands carried, and the faults the decorated
// transport injected. Absent on fault-free runs.
type Transport struct {
	Events    int `json:"events"`
	Delivered int `json:"delivered"`
	Commands  int `json:"commands"`
	// CommandFailures counts command attempts whose reply carried an error
	// (injected outages and losses, timeouts, guard rejections).
	CommandFailures int `json:"command_failures,omitempty"`
	Dropped         int `json:"dropped"`
	Delayed         int `json:"delayed"`
	Deaths          int `json:"deaths"`
	Hangs           int `json:"hangs"`
	AllocFailures   int `json:"alloc_failures"`
	LostCommands    int `json:"lost_commands,omitempty"`
	FailedInstances int `json:"failed_instances"`
	OrphansPending  int `json:"orphans_pending"`
	// CommandMix breaks Commands down per kind (format v3).
	CommandMix *CommandMix `json:"command_mix,omitempty"`
}

// CommandMix is the transport's per-kind command breakdown. The injected
// Kill/Hang fates travel as commands too, so their counts appear here while
// the Deaths/Hangs fields above count the plan's draws.
type CommandMix struct {
	Allocate    int `json:"allocate"`
	Deallocate  int `json:"deallocate"`
	BlockWidget int `json:"block_widget"`
	BlockMember int `json:"block_member"`
	Kill        int `json:"kill"`
	Hang        int `json:"hang"`
}

// Telemetry is the serialised observability block: the coordinator's
// decision log in emission order and the metrics registry's snapshot.
type Telemetry struct {
	Decisions []obs.Decision `json:"decisions"`
	Metrics   []obs.Metric   `json:"metrics,omitempty"`
}

// Crash is one observed crash.
type Crash struct {
	Signature string   `json:"signature"`
	AtNS      int64    `json:"at_ns"`
	Frames    []string `json:"frames"`
}

// Subspace is one accepted loosely coupled UI subspace.
type Subspace struct {
	ID      int      `json:"id"`
	Entry   uint64   `json:"entry"`
	Members []uint64 `json:"members"`
	Owner   int      `json:"owner"`
	FoundNS int64    `json:"found_ns"`
}

// Point is one timeline sample.
type Point struct {
	WallNS    int64   `json:"wall_ns"`
	MachineNS int64   `json:"machine_ns"`
	Covered   int     `json:"covered"`
	Crashes   int     `json:"crashes"`
	AJS       float64 `json:"ajs,omitempty"`
}

// Screen is one distinct abstract screen observed during the run.
type Screen struct {
	Signature uint64 `json:"signature"`
	Activity  string `json:"activity"`
	Nodes     int    `json:"nodes"`
}

// FromResult converts a harness result to its serialised form.
func FromResult(res *harness.RunResult) *Run {
	out := &Run{
		Version:       FormatVersion,
		App:           res.Config.App.Name,
		Tool:          res.Config.Tool,
		Setting:       res.Config.Setting.String(),
		Seed:          res.Config.Seed,
		ScenarioHash:  res.Config.ScenarioHash,
		WallUsedNS:    int64(res.WallUsed),
		MachineUsedNS: int64(res.MachineUsed),
		Coverage:      res.Union.Count(),
		UniqueCrashes: res.UniqueCrashes,
	}
	if st := res.Transport; res.Config.Faults != nil && res.Config.Faults.Enabled() {
		out.Transport = &Transport{
			Events:          st.Published,
			Delivered:       st.Delivered,
			Commands:        st.Commands,
			CommandFailures: st.CommandFailures,
			Dropped:         st.Dropped,
			Delayed:         st.Delayed,
			Deaths:          st.Deaths,
			Hangs:           st.Hangs,
			AllocFailures:   st.AllocFailures,
			LostCommands:    st.LostCommands,
			FailedInstances: res.FailedInstances,
			OrphansPending:  res.OrphansPending,
			CommandMix: &CommandMix{
				Allocate:    st.KindCount(bus.Allocate),
				Deallocate:  st.KindCount(bus.Deallocate),
				BlockWidget: st.KindCount(bus.BlockWidget),
				BlockMember: st.KindCount(bus.BlockMember),
				Kill:        st.KindCount(bus.Kill),
				Hang:        st.KindCount(bus.Hang),
			},
		}
	}
	if tel := res.Telemetry; tel != nil {
		out.Telemetry = &Telemetry{
			Decisions: tel.DecisionLog().Decisions(),
			Metrics:   tel.Registry().Snapshot(),
		}
	}
	for _, inst := range res.Instances {
		ei := Instance{
			ID:          inst.ID,
			AllocatedNS: int64(inst.Allocated),
			ReleasedNS:  int64(inst.Released),
			Coverage:    inst.Methods.Count(),
			Failed:      inst.Failed,
		}
		for _, rep := range inst.Crashes.Reports() {
			ei.Crashes = append(ei.Crashes, Crash{
				Signature: string(rep.Signature),
				AtNS:      int64(rep.At),
				Frames:    rep.Frames,
			})
		}
		for _, ev := range inst.Trace.Events() {
			ei.Events = append(ei.Events, Event{
				AtNS:     int64(ev.At),
				Kind:     ev.Action.Kind.String(),
				Widget:   string(ev.Action.Widget),
				From:     uint64(ev.From),
				To:       uint64(ev.To),
				Activity: ev.Activity,
				Crashed:  ev.Crashed,
				Enforced: ev.Enforced,
			})
		}
		out.Instances = append(out.Instances, ei)
	}
	for _, sub := range res.Subspaces {
		es := Subspace{ID: sub.ID, Entry: uint64(sub.Entry), Owner: sub.Owner, FoundNS: int64(sub.FoundAt)}
		for m := range sub.Members {
			es.Members = append(es.Members, uint64(m))
		}
		sortUint64(es.Members)
		out.Subspaces = append(out.Subspaces, es)
	}
	for _, p := range res.Timeline {
		out.Timeline = append(out.Timeline, Point{
			WallNS:    int64(p.Wall),
			MachineNS: int64(p.Machine),
			Covered:   p.Covered,
			Crashes:   p.Crashes,
			AJS:       p.AJS,
		})
	}
	if res.Book != nil {
		for _, sig := range res.Book.Signatures() {
			s := res.Book.Lookup(sig)
			out.Screens = append(out.Screens, Screen{
				Signature: uint64(sig),
				Activity:  s.Activity,
				Nodes:     s.Root.Size(),
			})
		}
	}
	return out
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// Write serialises the run as indented JSON.
func (r *Run) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// Read deserialises a run and validates the schema version.
func Read(rd io.Reader) (*Run, error) {
	var run Run
	if err := json.NewDecoder(rd).Decode(&run); err != nil {
		return nil, fmt.Errorf("export: decoding run: %w", err)
	}
	if run.Version < minReadVersion || run.Version > FormatVersion {
		return nil, fmt.Errorf("export: unsupported format version %d (want %d..%d)", run.Version, minReadVersion, FormatVersion)
	}
	return &run, nil
}

// TraceLogs reconstructs per-instance transition logs for offline analysis.
func (r *Run) TraceLogs() []*trace.Log {
	out := make([]*trace.Log, 0, len(r.Instances))
	for _, inst := range r.Instances {
		var l trace.Log
		for _, ev := range inst.Events {
			l.Append(trace.Event{
				Instance: inst.ID,
				At:       sim.Duration(ev.AtNS),
				Action:   trace.Action{Kind: parseKind(ev.Kind), Widget: ui.WidgetPath(ev.Widget)},
				From:     ui.Signature(ev.From),
				To:       ui.Signature(ev.To),
				Activity: ev.Activity,
				Crashed:  ev.Crashed,
				Enforced: ev.Enforced,
			})
		}
		out = append(out, &l)
	}
	return out
}

func parseKind(s string) trace.ActionKind {
	switch s {
	case "launch":
		return trace.ActionLaunch
	case "back":
		return trace.ActionBack
	default:
		return trace.ActionTap
	}
}
