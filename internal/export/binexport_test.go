package export

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/sim"
	"taopt/internal/trace/bin"
)

var updateBinGolden = flag.Bool("update", false, "rewrite the binary-trace golden digests")

// TestBinExportVersionMatches pins the bin package's mirror of the export
// schema version. If this fails, a format bump touched one side only.
func TestBinExportVersionMatches(t *testing.T) {
	if bin.ExportVersion != FormatVersion {
		t.Fatalf("bin.ExportVersion = %d, export.FormatVersion = %d; bump them together", bin.ExportVersion, FormatVersion)
	}
}

// binCells are the pinned configurations the lossless round-trip and the
// golden digests cover: the fault-free sample, the chaos/telemetry golden
// cell, and a telemetry-only run.
func binCells() map[string]harness.RunConfig {
	app := apps.MustLoad("Filters For Selfie")
	fc := faults.DefaultConfig(0.2)
	fc.MinLife = 1 * sim.Duration(60e9)
	fc.MaxLife = 5 * sim.Duration(60e9)
	return map[string]harness.RunConfig{
		"golden": {
			App: app, Tool: "monkey", Setting: harness.TaOPTDuration,
			Duration: 6 * sim.Duration(60e9), Seed: 4,
		},
		"chaos": {
			App: app, Tool: "monkey", Setting: harness.TaOPTDuration,
			Duration: 8 * sim.Duration(60e9), Seed: 15,
			Faults: &fc, Telemetry: true,
		},
		"telemetry": {
			App: app, Tool: "ape", Setting: harness.TaOPTResource,
			Duration: 5 * sim.Duration(60e9), Seed: 7, Telemetry: true,
		},
	}
}

// runWithBinTrace executes cfg with a binary trace attached and returns the
// live stream bytes plus the direct export.
func runWithBinTrace(t *testing.T, cfg harness.RunConfig) ([]byte, *Run) {
	t.Helper()
	var stream bytes.Buffer
	cfg.BinTrace = &stream
	res, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return stream.Bytes(), FromResult(res)
}

func jsonBytes(t *testing.T, r *Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func binBytes(t *testing.T, r *Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteBin(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinRoundTripLossless is the tentpole contract: the export rebuilt from
// the live binary stream is byte-identical (as JSON v5) to the direct
// export, and the canonical binary form is an encode/decode fixed point.
func TestBinRoundTripLossless(t *testing.T) {
	for name, cfg := range binCells() {
		t.Run(name, func(t *testing.T) {
			stream, direct := runWithBinTrace(t, cfg)

			fromStream, err := ReadBin(bytes.NewReader(stream))
			if err != nil {
				t.Fatalf("ReadBin(live stream): %v", err)
			}
			directJSON := jsonBytes(t, direct)
			streamJSON := jsonBytes(t, fromStream)
			if !bytes.Equal(directJSON, streamJSON) {
				t.Fatalf("live binary stream decodes to a different export (%d vs %d JSON bytes)", len(streamJSON), len(directJSON))
			}

			// bin -> Run -> bin fixed point on the canonical form.
			b1 := binBytes(t, direct)
			back, err := ReadBin(bytes.NewReader(b1))
			if err != nil {
				t.Fatalf("ReadBin(canonical): %v", err)
			}
			b2 := binBytes(t, back)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("canonical binary form is not a fixed point (%d vs %d bytes)", len(b1), len(b2))
			}
			// The live stream re-encodes to the same canonical bytes.
			if b3 := binBytes(t, fromStream); !bytes.Equal(b1, b3) {
				t.Fatalf("live stream re-encodes to different canonical bytes (%d vs %d)", len(b3), len(b1))
			}

			t.Logf("%s: JSON %d bytes, binary %d bytes (%.1fx smaller)", name, len(directJSON), len(b1), float64(len(directJSON))/float64(len(b1)))
		})
	}
}

// TestBinGoldenDigests pins the canonical binary bytes of the golden cells.
// Any codec change — record layout, interning, chunking, delta scheme —
// must consciously refresh these with -update (and bump bin.Version if the
// layout changed incompatibly).
func TestBinGoldenDigests(t *testing.T) {
	cells := binCells()
	var lines []byte
	for _, name := range []string{"golden", "chaos", "telemetry"} {
		_, direct := runWithBinTrace(t, cells[name])
		sum := sha256.Sum256(binBytes(t, direct))
		lines = append(lines, fmt.Sprintf("%s %s\n", name, hex.EncodeToString(sum[:]))...)
	}
	path := filepath.Join("testdata", "bintrace_golden.txt")
	if *updateBinGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, lines, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(lines, want) {
		t.Fatalf("binary-trace digests changed:\n got:\n%s want:\n%s(run with -update after a deliberate codec change)", lines, want)
	}
}

// TestBinRoundTripCatalog sweeps the full app catalog at a small budget:
// every app's live stream must decode to the byte-identical JSON export.
func TestBinRoundTripCatalog(t *testing.T) {
	names := apps.Names()
	if len(names) < 18 {
		t.Fatalf("catalog has %d apps, want >= 18", len(names))
	}
	minutes := sim.Duration(3 * 60e9)
	for i, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg := harness.RunConfig{
				App: apps.MustLoad(name), Tool: "monkey",
				Setting: harness.TaOPTDuration, Duration: minutes,
				Instances: 3, Seed: int64(100 + i),
				Telemetry: i%3 == 0,
			}
			stream, direct := runWithBinTrace(t, cfg)
			fromStream, err := ReadBin(bytes.NewReader(stream))
			if err != nil {
				t.Fatalf("ReadBin: %v", err)
			}
			if !bytes.Equal(jsonBytes(t, direct), jsonBytes(t, fromStream)) {
				t.Fatal("live binary stream decodes to a different export")
			}
		})
	}
}

// FuzzTraceBinCodec fuzzes ReadBin over arbitrary bytes: it must never
// panic, and whenever a stream decodes cleanly, encode∘decode must be a
// fixed point from the first re-encode on.
func FuzzTraceBinCodec(f *testing.F) {
	cells := binCells()
	for _, name := range []string{"golden", "chaos"} {
		cfg := cells[name]
		var stream bytes.Buffer
		cfg.BinTrace = &stream
		if _, err := harness.Run(cfg); err != nil {
			f.Fatal(err)
		}
		f.Add(stream.Bytes())
		if len(stream.Bytes()) > 256 {
			f.Add(stream.Bytes()[:256]) // truncated prefix
		}
	}
	f.Add([]byte(bin.Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := ReadBin(bytes.NewReader(data))
		if err != nil {
			return // corrupt input rejected: fine, as long as no panic
		}
		var b1 bytes.Buffer
		if err := run.WriteBin(&b1); err != nil {
			t.Fatalf("re-encoding a cleanly decoded stream: %v", err)
		}
		back, err := ReadBin(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own re-encode: %v", err)
		}
		var b2 bytes.Buffer
		if err := back.WriteBin(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("encode∘decode is not a fixed point")
		}
	})
}
