package fleet

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestFleetMapOrdersResults(t *testing.T) {
	got := Map(4, 100, func(i int) (int, error) { return i * i, nil })
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, r := range got {
		if r.Err != nil || r.Value != i*i {
			t.Fatalf("result %d = (%d, %v), want (%d, nil)", i, r.Value, r.Err, i*i)
		}
	}
}

func TestFleetMapRunsEveryJobOnce(t *testing.T) {
	var calls atomic.Int64
	// seen is a slice indexed by job — not a map — so the verification
	// range below visits it in deterministic index order (taoptvet's
	// maporder analyzer only suspects map ranges).
	seen := make([]atomic.Int64, 50)
	Map(8, 50, func(i int) (struct{}, error) {
		calls.Add(1)
		seen[i].Add(1)
		return struct{}{}, nil
	})
	if calls.Load() != 50 {
		t.Fatalf("calls = %d, want 50", calls.Load())
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, seen[i].Load())
		}
	}
}

func TestFleetMapKeepsErrorsAndValuesApart(t *testing.T) {
	boom := errors.New("boom")
	got := Map(3, 10, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, boom
		}
		return i, nil
	})
	for i, r := range got {
		if i%2 == 1 && !errors.Is(r.Err, boom) {
			t.Fatalf("job %d err = %v, want boom", i, r.Err)
		}
		if i%2 == 0 && (r.Err != nil || r.Value != i) {
			t.Fatalf("job %d = (%d, %v), want (%d, nil)", i, r.Value, r.Err, i)
		}
	}
}

func TestFleetMapRecoversPanics(t *testing.T) {
	got := Map(2, 4, func(i int) (int, error) {
		if i == 2 {
			panic("kaboom")
		}
		return i, nil
	})
	if got[2].Err == nil {
		t.Fatal("panicking job returned no error")
	}
	for _, i := range []int{0, 1, 3} {
		if got[i].Err != nil {
			t.Fatalf("healthy job %d got err %v", i, got[i].Err)
		}
	}
}

func TestFleetMapDegenerateSizes(t *testing.T) {
	if got := Map(4, 0, func(int) (int, error) { return 0, nil }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	// workers <= 0 resolves to GOMAXPROCS; workers > n is clamped.
	got := Map(0, 3, func(i int) (int, error) { return i, nil })
	for i, r := range got {
		if r.Value != i {
			t.Fatalf("result %d = %d", i, r.Value)
		}
	}
	got = Map(64, 2, func(i int) (int, error) { return i + 1, nil })
	if got[0].Value != 1 || got[1].Value != 2 {
		t.Fatalf("clamped pool results wrong: %v", got)
	}
}
