// Package fleet runs independent jobs on a bounded pool of worker
// goroutines. The harness uses it to compute campaign cells in parallel:
// each cell is a self-contained discrete-event simulation with its own
// scheduler, RNG and farm, so cells never share mutable state and the only
// coordination needed is handing out indices and collecting results.
//
// Determinism: Map returns results in input order regardless of completion
// order, so a caller that merges them sequentially observes exactly the
// serial outcome — parallelism changes wall-clock time, never results.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Result pairs one job's value with its error.
type Result[T any] struct {
	Value T
	Err   error
}

// PoolStats reports how one Map invocation's jobs spread across the pool.
// JobsPerWorker is indexed by worker slot; a serial run has one slot.
type PoolStats struct {
	Workers       int
	JobsPerWorker []int
}

// Jobs returns the total job count across workers.
func (p PoolStats) Jobs() int {
	n := 0
	for _, j := range p.JobsPerWorker {
		n += j
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results indexed by input position. workers <= 0 means
// GOMAXPROCS; the pool never exceeds n. A panicking job is recovered into
// its Result's Err so one bad cell cannot take down a whole campaign.
func Map[T any](workers, n int, fn func(int) (T, error)) []Result[T] {
	results, _ := MapTracked(workers, n, fn)
	return results
}

// MapTracked is Map plus pool accounting: how many jobs each worker slot
// completed. Job-to-worker assignment is racy by design (workers grab the
// next index as they free up), so JobsPerWorker varies run to run — the
// results never do.
func MapTracked[T any](workers, n int, fn func(int) (T, error)) ([]Result[T], PoolStats) {
	if n <= 0 {
		return nil, PoolStats{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]Result[T], n)
	stats := PoolStats{Workers: workers, JobsPerWorker: make([]int, workers)}
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i] = call(i, fn)
		}
		stats.JobsPerWorker[0] = n
		return results, stats
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = call(i, fn)
				stats.JobsPerWorker[slot]++
			}
		}(w)
	}
	wg.Wait()
	return results, stats
}

// call invokes one job, converting a panic into an error.
func call[T any](i int, fn func(int) (T, error)) (res Result[T]) {
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("fleet: job %d panicked: %v", i, p)
		}
	}()
	res.Value, res.Err = fn(i)
	return res
}
