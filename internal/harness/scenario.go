package harness

import (
	"fmt"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/scenario"
	"taopt/internal/tools"
)

// ScenarioApp is an app defined inline by a campaign scenario document: the
// fully resolved spec plus the canonical hash of the defining document.
type ScenarioApp struct {
	Spec app.Spec
	Hash string
}

// loadApp resolves one campaign app name: an inline scenario app if the
// campaign carries one under that name (generated fresh per cell, like
// catalog loads), the catalog otherwise. It returns the generated app and
// the scenario hash stamped into the cell's export.
func (c *Campaign) loadApp(name string) (*app.App, string, error) {
	if sa, ok := c.cfg.ScenarioApps[name]; ok {
		return app.Generate(sa.Spec), sa.Hash, nil
	}
	aut, err := apps.Load(name)
	if err != nil {
		return nil, "", err
	}
	return aut, apps.Hash(name), nil
}

// FromScenario lowers a compiled campaign scenario onto a CampaignConfig.
// Absent scenario fields stay zero so the usual campaign defaults (or the
// caller's flag overrides) apply; inline apps join the app axis under their
// own names. The scenario's fault grid is not lowered here — it drives
// report.ChaosGrid — but a single fault plan is.
func FromScenario(sc *scenario.Campaign) (CampaignConfig, error) {
	cfg := CampaignConfig{
		Apps:        append([]string(nil), sc.Apps...),
		Tools:       append([]string(nil), sc.Tools...),
		Instances:   sc.Instances,
		Duration:    sc.Duration,
		SampleEvery: sc.SampleEvery,
		Workers:     sc.Workers,
		Seed:        sc.Seed,
	}
	if len(sc.InlineApps) > 0 {
		cfg.ScenarioApps = make(map[string]ScenarioApp, len(sc.InlineApps))
		for _, a := range sc.InlineApps {
			name := a.Spec.Name
			if _, dup := cfg.ScenarioApps[name]; dup {
				return CampaignConfig{}, fmt.Errorf("harness: scenario %q defines app %q twice", sc.Name, name)
			}
			cfg.ScenarioApps[name] = ScenarioApp{Spec: a.Spec, Hash: a.Hash}
			cfg.Apps = append(cfg.Apps, name)
		}
	}
	if sc.Faults != nil {
		f := *sc.Faults
		cfg.Faults = &f
	}
	return cfg, nil
}

// FromRunScenario lowers a compiled run scenario onto a RunConfig: the
// campaign service's submit path. The app resolves like a campaign cell —
// generated from the inline spec, or loaded from the catalog — and the
// export's scenario_hash names the app document either way, so a service run
// is indistinguishable from the equivalent `taopt -scenario` invocation.
// Absent scenario fields stay zero for the usual Run defaults; the tool and
// setting are validated here so a bad submit fails before it is queued.
func FromRunScenario(rs *scenario.RunSpec) (RunConfig, error) {
	cfg := RunConfig{
		Tool:          rs.Tool,
		Instances:     rs.Instances,
		Duration:      rs.Duration,
		MachineBudget: rs.MachineBudget,
		SampleEvery:   rs.SampleEvery,
		Seed:          rs.Seed,
		Telemetry:     rs.Telemetry,
	}
	if rs.App != nil {
		cfg.App = app.Generate(rs.App.Spec)
		cfg.ScenarioHash = rs.App.Hash
	} else {
		aut, err := apps.Load(rs.AppName)
		if err != nil {
			return RunConfig{}, err
		}
		cfg.App = aut
		cfg.ScenarioHash = apps.Hash(rs.AppName)
	}
	if _, err := tools.New(rs.Tool, 0); err != nil {
		return RunConfig{}, err
	}
	setting, err := ParseSetting(rs.Setting)
	if err != nil {
		return RunConfig{}, err
	}
	cfg.Setting = setting
	if rs.Faults != nil {
		f := *rs.Faults
		cfg.Faults = &f
	}
	return cfg, nil
}

// ScenarioSettings parses a campaign scenario's setting names into harness
// settings (the two vocabularies are pinned against each other by test).
func ScenarioSettings(sc *scenario.Campaign) ([]Setting, error) {
	out := make([]Setting, 0, len(sc.Settings))
	for _, name := range sc.Settings {
		s, err := ParseSetting(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
