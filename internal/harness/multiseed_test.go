package harness

import (
	"strings"
	"testing"

	"taopt/internal/sim"
)

func TestMultiSeedAggregate(t *testing.T) {
	ms := NewMultiSeed(CampaignConfig{
		Apps:     []string{"Filters For Selfie"},
		Tools:    []string{"monkey"},
		Duration: 6 * sim.Duration(60e9),
		Seed:     5,
	}, 2)
	if ms.Seeds() != 2 {
		t.Fatalf("Seeds = %d", ms.Seeds())
	}
	d, err := ms.Aggregate("monkey", TaOPTDuration)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tool != "monkey" || d.Setting != TaOPTDuration {
		t.Fatalf("identity: %+v", d)
	}
	if d.BaselineCoverage <= 0 {
		t.Fatal("baseline coverage not aggregated")
	}
	if d.CoveragePct < -100 || d.CoveragePct > 100 {
		t.Fatalf("implausible coverage delta %v", d.CoveragePct)
	}
	// Re-aggregation hits the campaign caches: results must be identical.
	d2, err := ms.Aggregate("monkey", TaOPTDuration)
	if err != nil {
		t.Fatal(err)
	}
	if d != d2 {
		t.Fatal("re-aggregation differs (cache miss?)")
	}
}

func TestMultiSeedRender(t *testing.T) {
	ms := NewMultiSeed(CampaignConfig{
		Apps:     []string{"Filters For Selfie"},
		Tools:    []string{"monkey"},
		Duration: 6 * sim.Duration(60e9),
		Seed:     5,
	}, 1)
	var sb strings.Builder
	if err := ms.Render(&sb, []Setting{TaOPTDuration}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Multi-seed aggregates", "monkey", "taopt-duration", "coverageΔ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMultiSeedUnknownTool(t *testing.T) {
	ms := NewMultiSeed(CampaignConfig{
		Apps:     []string{"Filters For Selfie"},
		Duration: 6 * sim.Duration(60e9),
	}, 1)
	if _, err := ms.Aggregate("nope", TaOPTDuration); err == nil {
		t.Fatal("unknown tool must error")
	}
}

func TestMultiSeedClampsSeeds(t *testing.T) {
	ms := NewMultiSeed(CampaignConfig{Apps: []string{"Filters For Selfie"}}, 0)
	if ms.Seeds() != 1 {
		t.Fatalf("Seeds = %d, want clamp to 1", ms.Seeds())
	}
}
