package harness

import (
	"fmt"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/core"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// ObserveStream builds the long-trace Observe benchmark's input: n
// single-instance tool events over a real app's rendered screens, cycling
// through screen regions with a phase switch every few hundred events so the
// analysis actually finds boundaries. The stream is deterministic — the
// benchmark harness and the regression tests share it.
func ObserveStream(appName string, n int) ([]trace.Event, *trace.Book, error) {
	aut, err := apps.Load(appName)
	if err != nil {
		return nil, nil, err
	}
	book := trace.NewBook()
	var sigs []ui.Signature
	seen := make(map[ui.Signature]bool)
	for i := range aut.Screens {
		sig := book.Observe(aut.Render(app.ScreenID(i), 0))
		if !seen[sig] {
			seen[sig] = true
			sigs = append(sigs, sig)
		}
	}
	if len(sigs) == 0 {
		return nil, nil, fmt.Errorf("harness: app %q rendered no screens", appName)
	}
	const regionSize, phaseLen = 6, 600
	regions := (len(sigs) + regionSize - 1) / regionSize
	events := make([]trace.Event, n)
	for i := range events {
		region := (i / phaseLen) % regions
		idx := (region*regionSize + i%regionSize) % len(sigs)
		events[i] = trace.Event{
			Instance: 0,
			At:       sim.Duration(i+1) * sim.Duration(1e9),
			Action:   trace.Action{Kind: trace.ActionTap},
			To:       sigs[idx],
		}
	}
	return events, book, nil
}

// NewObserveAnalyzer returns an analyzer configured for the long-trace
// Observe benchmark: a window spanning the whole trace (so analysis cost at
// the end of the stream is the full-trace cost), the default analysis
// cadence, and no score gate (candidate materialisation is part of the
// measured path). legacy selects the FindSpace-rescan reference path.
func NewObserveAnalyzer(book *trace.Book, visits int, legacy bool) *core.Analyzer {
	cfg := core.DefaultAnalyzerConfig(60 * sim.Duration(1e9))
	cfg.WindowCap = visits + 1
	cfg.ScoreMax = 2
	cfg.Legacy = legacy
	return core.NewAnalyzer(cfg, book)
}
