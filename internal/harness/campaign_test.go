package harness

import (
	"bytes"
	"testing"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/sim"
)

func tinyConfig() CampaignConfig {
	return CampaignConfig{
		Apps:     []string{"Filters For Selfie"},
		Tools:    []string{"monkey"},
		Duration: 6 * sim.Duration(60e9),
		Seed:     2,
	}
}

func mustCellT(t *testing.T, c *Campaign, app, tool string, s Setting) *CellSummary {
	t.Helper()
	cell, err := c.Cell(app, tool, s)
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

func TestCampaignCellCaching(t *testing.T) {
	c := NewCampaign(tinyConfig())
	a, err := c.Cell("Filters For Selfie", "monkey", BaselineParallel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Cell("Filters For Selfie", "monkey", BaselineParallel)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Cell call must return the cached summary")
	}
	if a.Union == 0 || len(a.Timeline) == 0 {
		t.Fatal("summary not populated")
	}
}

func TestCampaignBaselineCellsCarryTable1Data(t *testing.T) {
	c := NewCampaign(tinyConfig())
	base := mustCellT(t, c, "Filters For Selfie", "monkey", BaselineParallel)
	if base.OfflineSubspaces == 0 {
		t.Fatal("baseline cell missing the offline subspace partition")
	}
	total := 0
	for _, v := range base.OverlapHist {
		total += v
	}
	if total != base.OfflineSubspaces {
		t.Fatalf("histogram sums to %d, want %d subspaces", total, base.OfflineSubspaces)
	}
	opt := mustCellT(t, c, "Filters For Selfie", "monkey", TaOPTDuration)
	if opt.OverlapHist != nil {
		t.Fatal("non-baseline cells must not compute Table 1 data")
	}
}

func TestCampaignUnknownApp(t *testing.T) {
	c := NewCampaign(tinyConfig())
	if _, err := c.Cell("NopeApp", "monkey", BaselineParallel); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestCampaignDeterministicAcrossInstances(t *testing.T) {
	r1 := mustCellT(t, NewCampaign(tinyConfig()), "Filters For Selfie", "monkey", TaOPTDuration)
	r2 := mustCellT(t, NewCampaign(tinyConfig()), "Filters For Selfie", "monkey", TaOPTDuration)
	if r1.Union != r2.Union || r1.UniqueCrashes != r2.UniqueCrashes || r1.DistinctUIs != r2.DistinctUIs {
		t.Fatalf("campaign cells not reproducible: %+v vs %+v", r1, r2)
	}
}

func TestCampaignSeedChangesResults(t *testing.T) {
	cfg1 := tinyConfig()
	cfg2 := tinyConfig()
	cfg2.Seed = 99
	a := mustCellT(t, NewCampaign(cfg1), "Filters For Selfie", "monkey", BaselineParallel)
	b := mustCellT(t, NewCampaign(cfg2), "Filters For Selfie", "monkey", BaselineParallel)
	if a.Union == b.Union && a.DistinctUIs == b.DistinctUIs && a.UIOccAverage == b.UIOccAverage {
		t.Fatal("different campaign seeds produced identical cells")
	}
}

func TestFleetCampaignParallelMatchesSerial(t *testing.T) {
	build := func(workers int) (*Campaign, *bytes.Buffer) {
		cfg := tinyConfig()
		cfg.Apps = []string{"Filters For Selfie", "Marvel Comics"}
		cfg.Workers = workers
		var progress bytes.Buffer
		cfg.Progress = &progress
		return NewCampaign(cfg), &progress
	}
	settings := []Setting{BaselineParallel, TaOPTDuration}

	serial, serialLog := build(1)
	if err := serial.Prefetch(nil, settings...); err != nil {
		t.Fatal(err)
	}
	par, parLog := build(4)
	if err := par.Prefetch(nil, settings...); err != nil {
		t.Fatal(err)
	}

	if serialLog.String() != parLog.String() {
		t.Fatalf("progress streams differ:\nserial:\n%s\nparallel:\n%s", serialLog, parLog)
	}
	for _, appName := range serial.Apps() {
		for _, setting := range settings {
			a := mustCellT(t, serial, appName, "monkey", setting)
			b := mustCellT(t, par, appName, "monkey", setting)
			if a.Union != b.Union || a.UniqueCrashes != b.UniqueCrashes ||
				a.DistinctUIs != b.DistinctUIs || a.UIOccAverage != b.UIOccAverage ||
				a.WallUsed != b.WallUsed || a.MachineUsed != b.MachineUsed ||
				a.Subspaces != b.Subspaces || len(a.Timeline) != len(b.Timeline) {
				t.Fatalf("cell %s differs between serial and parallel campaigns:\n%+v\nvs\n%+v",
					a.Key, a, b)
			}
		}
	}
}

// TestFleetStatsCellsComputedWorkerInvariance pins the accounting half of
// the fleet determinism guarantee: how many cells a Prefetch simulates is a
// property of the grid, never of the pool width — only JobsPerWorker (racy
// by design) may differ between worker counts.
func TestFleetStatsCellsComputedWorkerInvariance(t *testing.T) {
	settings := []Setting{BaselineParallel, TaOPTDuration}
	wantCells := 2 * len(settings) // two apps × two settings

	var baseline FleetStats
	for i, workers := range []int{1, 2, 4} {
		cfg := tinyConfig()
		cfg.Apps = []string{"Filters For Selfie", "Marvel Comics"}
		cfg.Workers = workers
		c := NewCampaign(cfg)
		if err := c.Prefetch(nil, settings...); err != nil {
			t.Fatal(err)
		}
		st := c.FleetStats()
		if st.CellsComputed != wantCells {
			t.Fatalf("workers=%d: CellsComputed = %d, want %d", workers, st.CellsComputed, wantCells)
		}
		if st.CacheHits != 0 {
			t.Fatalf("workers=%d: fresh prefetch recorded %d cache hits", workers, st.CacheHits)
		}
		// Re-reading a prefetched cell must hit the cache, not recompute.
		mustCellT(t, c, "Marvel Comics", "monkey", TaOPTDuration)
		st = c.FleetStats()
		if st.CellsComputed != wantCells || st.CacheHits != 1 {
			t.Fatalf("workers=%d after cached read: CellsComputed = %d, CacheHits = %d, want %d and 1",
				workers, st.CellsComputed, st.CacheHits, wantCells)
		}
		if i == 0 {
			baseline = st
			continue
		}
		if st.CellsComputed != baseline.CellsComputed || st.CacheHits != baseline.CacheHits {
			t.Fatalf("workers=%d stats {cells=%d hits=%d} diverge from serial {cells=%d hits=%d}",
				workers, st.CellsComputed, st.CacheHits, baseline.CellsComputed, baseline.CacheHits)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *RunResult {
		res, err := Run(RunConfig{
			App:      mustLoad(t, "Marvel Comics"),
			Tool:     "wctester",
			Setting:  TaOPTDuration,
			Duration: 8 * sim.Duration(60e9),
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Union.Count() != b.Union.Count() {
		t.Fatalf("coverage differs: %d vs %d", a.Union.Count(), b.Union.Count())
	}
	if len(a.Instances) != len(b.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(a.Instances), len(b.Instances))
	}
	for i := range a.Instances {
		if a.Instances[i].Trace.Len() != b.Instances[i].Trace.Len() {
			t.Fatalf("instance %d trace lengths differ", i)
		}
	}
	if len(a.Subspaces) != len(b.Subspaces) {
		t.Fatal("subspace counts differ")
	}
}

func TestMachineTimeMatchesInstanceSum(t *testing.T) {
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Filters For Selfie"),
		Tool:     "monkey",
		Setting:  BaselineParallel,
		Duration: 6 * sim.Duration(60e9),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum sim.Duration
	for _, inst := range res.Instances {
		sum += inst.Released - inst.Allocated
	}
	if sum != res.MachineUsed {
		t.Fatalf("machine time %v != per-instance sum %v", res.MachineUsed, sum)
	}
}

func mustLoad(t *testing.T, name string) *app.App {
	t.Helper()
	a, err := apps.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
