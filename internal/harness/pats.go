package harness

import (
	"sort"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// pats implements the PATS master–slave framework of Wen et al. [67], the
// second related-work baseline the paper discusses (Section 9): a master
// instance performs the initial exploration and dispatches newly discovered
// UI states to slave instances as tasks; each slave is then confined to the
// neighbourhood of its assigned states.
//
// The paper's critique — which this implementation reproduces faithfully —
// is that the strategy "is highly susceptible to overlapping explorations,
// mainly due to many UI transitions being bidirectional in real-world apps":
// slaves dispatched to single screens drift back toward the popular regions
// through Back edges and shared navigation, so the partition does not hold.
type pats struct {
	r *runner

	master int
	slaves []int

	// frontier holds screens discovered by the master but not yet
	// dispatched; assigned maps each slave to its task screens.
	frontier []ui.Signature
	seen     map[ui.Signature]bool
	assigned map[int][]ui.Signature

	// dispatchEvery controls how often (in master transitions) the master
	// hands out tasks.
	sinceDispatch int
}

const patsDispatchEvery = 40

func newPATS(r *runner) *pats {
	return &pats{
		r:        r,
		master:   -1,
		seen:     make(map[ui.Signature]bool),
		assigned: make(map[int][]ui.Signature),
	}
}

func (s *pats) start() {
	if id, err := s.r.Allocate(); err == nil {
		s.master = id
	}
	// Slaves boot immediately (PATS keeps the pool warm) but idle near the
	// app root until they receive tasks.
	for i := 1; i < s.r.cfg.Instances; i++ {
		if id, err := s.r.Allocate(); err == nil {
			s.slaves = append(s.slaves, id)
		}
	}
}

func (s *pats) tick(sim.Duration) {}

func (s *pats) onEvent(ev trace.Event) {
	if ev.Instance != s.master || ev.Enforced {
		return
	}
	if !s.seen[ev.To] {
		s.seen[ev.To] = true
		s.frontier = append(s.frontier, ev.To)
	}
	s.sinceDispatch++
	if s.sinceDispatch >= patsDispatchEvery {
		s.sinceDispatch = 0
		s.dispatch()
	}
}

// dispatch assigns the accumulated frontier round-robin to slaves. A slave's
// confinement is approximated with the same Toller primitive TaOPT uses in
// reverse: every screen NOT in its task set (and not the app root) is marked
// blocked, so the driver steers the slave back toward its assignment. This
// is the state-dispatch semantics of PATS on the infrastructure available.
func (s *pats) dispatch() {
	if len(s.frontier) == 0 || len(s.slaves) == 0 {
		return
	}
	for i, sig := range s.frontier {
		slave := s.slaves[i%len(s.slaves)]
		s.assigned[slave] = append(s.assigned[slave], sig)
	}
	s.frontier = s.frontier[:0]

	// Rebuild each slave's block set: everything the master has seen except
	// the slave's own tasks is off limits.
	ids := append([]int(nil), s.slaves...)
	sort.Ints(ids)
	for _, slave := range ids {
		tasks := make(map[ui.Signature]bool, len(s.assigned[slave]))
		for _, sig := range s.assigned[slave] {
			tasks[sig] = true
		}
		blocks := s.r.blocks(slave)
		for sig := range s.seen {
			if !tasks[sig] {
				blocks.BlockMember(sig)
			}
		}
	}
}

var _ strategy = (*pats)(nil)
