package harness

import (
	"testing"

	"taopt/internal/app"
	"taopt/internal/sim"
)

func smallApp() *app.App {
	s := app.DefaultSpec("SmokeApp", 42)
	s.Subspaces = 5
	s.ScreensMin, s.ScreensMax = 6, 9
	s.VisitMethodsMin, s.VisitMethodsMax = 30, 80
	s.WidgetMethodsMin, s.WidgetMethodsMax = 4, 10
	s.ExtraMethods = 500
	return app.Generate(s)
}

const minute = sim.Duration(60e9)

func TestBaselineParallelSmoke(t *testing.T) {
	res, err := Run(RunConfig{
		App:      smallApp(),
		Tool:     "monkey",
		Setting:  BaselineParallel,
		Duration: 10 * minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(res.Instances); got != 5 {
		t.Fatalf("instances = %d, want 5", got)
	}
	if res.Union.Count() == 0 {
		t.Fatal("no methods covered")
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	last := 0
	for i, p := range res.Timeline {
		if p.Covered < last {
			t.Fatalf("timeline not monotone at %d: %d < %d", i, p.Covered, last)
		}
		last = p.Covered
	}
	if res.WallUsed != 10*minute {
		t.Fatalf("wall used = %v, want 10m", res.WallUsed)
	}
	t.Logf("baseline: union=%d methods, crashes=%d, machine=%v, screens=%d",
		res.Union.Count(), res.UniqueCrashes, res.MachineUsed, res.Book.Len())
}

func TestTaOPTDurationSmoke(t *testing.T) {
	res, err := Run(RunConfig{
		App:      smallApp(),
		Tool:     "monkey",
		Setting:  TaOPTDuration,
		Duration: 20 * minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Union.Count() == 0 {
		t.Fatal("no methods covered")
	}
	t.Logf("taopt-duration: union=%d, crashes=%d, subspaces=%d, instances=%d, machine=%v",
		res.Union.Count(), res.UniqueCrashes, len(res.Subspaces), len(res.Instances), res.MachineUsed)
}

func TestTaOPTResourceSmoke(t *testing.T) {
	res, err := Run(RunConfig{
		App:           smallApp(),
		Tool:          "ape",
		Setting:       TaOPTResource,
		Duration:      10 * minute,
		MachineBudget: 50 * minute,
		Seed:          2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The run stops at the first step after the budget trips, so it may
	// overshoot by at most one action's latency per active instance.
	if res.MachineUsed > 50*minute+sim.Duration(10e9) {
		t.Fatalf("machine used %v exceeds budget", res.MachineUsed)
	}
	t.Logf("taopt-resource: union=%d, subspaces=%d, instances=%d, machine=%v wall=%v",
		res.Union.Count(), len(res.Subspaces), len(res.Instances), res.MachineUsed, res.WallUsed)
}

func TestActivityPartitionSmoke(t *testing.T) {
	res, err := Run(RunConfig{
		App:      smallApp(),
		Tool:     "wctester",
		Setting:  ActivityPartition,
		Duration: 10 * minute,
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("activity-partition: union=%d", res.Union.Count())
}
