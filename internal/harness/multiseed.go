package harness

import (
	"fmt"
	"io"

	"taopt/internal/metrics"
	"taopt/internal/sim"
)

// MultiSeed runs the same campaign grid under several derived seeds and
// aggregates per-(tool, setting) deltas against the uncoordinated baseline.
// Per-cell results are noisy (±10–20%); averaging across seeds is how the
// calibration in DESIGN.md §5 was validated, and how a downstream user
// should compare configurations.
type MultiSeed struct {
	campaigns []*Campaign
}

// NewMultiSeed builds seeds campaigns derived from cfg.Seed. Each campaign
// caches its own cells, so repeated aggregations are free.
func NewMultiSeed(cfg CampaignConfig, seeds int) *MultiSeed {
	if seeds < 1 {
		seeds = 1
	}
	ms := &MultiSeed{}
	for i := 0; i < seeds; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000003
		ms.campaigns = append(ms.campaigns, NewCampaign(c))
	}
	return ms
}

// Seeds returns the number of seeded campaigns.
func (ms *MultiSeed) Seeds() int { return len(ms.campaigns) }

// Delta summarises one (tool, setting) aggregate against the baseline.
type Delta struct {
	Tool    string
	Setting Setting
	// CoveragePct, CrashesPct and OverlapPct are percentage changes of the
	// summed metric vs the summed baseline (negative overlap = reduction).
	CoveragePct float64
	CrashesPct  float64
	OverlapPct  float64
	// BaselineCoverage is the per-app average baseline coverage, for scale.
	BaselineCoverage float64
	// DurationSavedPct and ResourceSavedPct are the mean RQ3/RQ4 savings.
	DurationSavedPct float64
	ResourceSavedPct float64
}

// Aggregate computes the deltas for setting across all seeds and apps.
func (ms *MultiSeed) Aggregate(tool string, setting Setting) (Delta, error) {
	d := Delta{Tool: tool, Setting: setting}
	var baseCov, cov, baseCr, cr, baseOv, ov float64
	var durSaved, resSaved []float64
	cells := 0
	for _, c := range ms.campaigns {
		lp := c.Config().Duration
		budget := lp * sim.Duration(c.Config().Instances)
		for _, app := range c.Apps() {
			b, err := c.Cell(app, tool, BaselineParallel)
			if err != nil {
				return d, err
			}
			t, err := c.Cell(app, tool, setting)
			if err != nil {
				return d, err
			}
			baseCov += float64(b.Union)
			cov += float64(t.Union)
			baseCr += float64(b.UniqueCrashes)
			cr += float64(t.UniqueCrashes)
			baseOv += b.UIOccAverage
			ov += t.UIOccAverage
			durSaved = append(durSaved, 100*metrics.DurationSaved(t.Timeline, b.Union, lp))
			resSaved = append(resSaved, 100*metrics.ResourceSaved(t.Timeline, b.Union, budget))
			cells++
		}
	}
	if cells == 0 || baseCov == 0 {
		return d, fmt.Errorf("harness: no cells aggregated for %s/%s", tool, setting)
	}
	d.CoveragePct = 100 * (cov - baseCov) / baseCov
	if baseCr > 0 {
		d.CrashesPct = 100 * (cr - baseCr) / baseCr
	}
	if baseOv > 0 {
		d.OverlapPct = 100 * (ov - baseOv) / baseOv
	}
	d.BaselineCoverage = baseCov / float64(cells)
	d.DurationSavedPct = metrics.Summarize(durSaved).Mean
	d.ResourceSavedPct = metrics.Summarize(resSaved).Mean
	return d, nil
}

// Render prints the aggregate table for the given settings.
func (ms *MultiSeed) Render(w io.Writer, settings []Setting) error {
	for _, c := range ms.campaigns {
		if err := c.Prefetch(nil, append([]Setting{BaselineParallel}, settings...)...); err != nil {
			return err
		}
	}
	cfg := ms.campaigns[0].Config()
	fmt.Fprintf(w, "\nMulti-seed aggregates: %d seeds × %d apps\n", ms.Seeds(), len(cfg.Apps))
	fmt.Fprintf(w, "%-10s%-18s%12s%12s%12s%12s%12s\n",
		"tool", "setting", "coverageΔ", "crashesΔ", "overlapΔ", "dur.saved", "res.saved")
	for _, tool := range cfg.Tools {
		for _, setting := range settings {
			d, err := ms.Aggregate(tool, setting)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s%-18s%+11.1f%%%+11.1f%%%+11.1f%%%11.1f%%%11.1f%%\n",
				tool, setting.String(), d.CoveragePct, d.CrashesPct, d.OverlapPct,
				d.DurationSavedPct, d.ResourceSavedPct)
		}
	}
	return nil
}
