// Package harness executes testing campaigns: it wires an app, a testing
// tool, a device farm and a parallelization strategy onto the discrete-event
// scheduler and produces the measurements every table and figure of the
// paper is computed from.
package harness

import (
	"fmt"
	"io"
	"sort"

	"taopt/internal/app"
	"taopt/internal/bus"
	"taopt/internal/bus/wire"
	"taopt/internal/core"
	"taopt/internal/coverage"
	"taopt/internal/crash"
	"taopt/internal/device"
	"taopt/internal/faults"
	"taopt/internal/metrics"
	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/toller"
	"taopt/internal/tools"
	"taopt/internal/trace"
	"taopt/internal/trace/bin"
	"taopt/internal/ui"
)

// Setting selects the parallelization setting of a run (Section 6.1 plus the
// preliminary-study baselines).
type Setting int

// Run settings.
const (
	// BaselineParallel runs d_max uncoordinated instances for l_p each,
	// differing only in random seeds (the paper's baseline).
	BaselineParallel Setting = iota
	// TaOPTDuration is TaOPT's duration-constrained mode.
	TaOPTDuration
	// TaOPTResource is TaOPT's resource-constrained mode.
	TaOPTResource
	// ActivityPartition is the ParaAim-style activity-granularity baseline
	// of RQ2.
	ActivityPartition
	// SingleLong runs one instance for the whole machine-time budget
	// (the RQ4 non-parallel comparison).
	SingleLong
	// PATSMasterSlave is the PATS-style master–slave baseline of Wen et
	// al. [67] (Section 9's other related-work comparison).
	PATSMasterSlave
)

// ParseSetting resolves a setting name as printed by Setting.String —
// the vocabulary scenario campaign files and the -setting flag share.
func ParseSetting(name string) (Setting, error) {
	for s := BaselineParallel; s <= PATSMasterSlave; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown setting %q (want baseline, taopt-duration, taopt-resource, activity-partition, single-long, or pats)", name)
}

func (s Setting) String() string {
	switch s {
	case BaselineParallel:
		return "baseline"
	case TaOPTDuration:
		return "taopt-duration"
	case TaOPTResource:
		return "taopt-resource"
	case ActivityPartition:
		return "activity-partition"
	case SingleLong:
		return "single-long"
	case PATSMasterSlave:
		return "pats"
	default:
		return "unknown-setting"
	}
}

// Transport selects the coordination-transport implementation of a run.
// The selection must be invisible in the results: the transport conformance
// suite asserts byte-identical exports across all transports.
type Transport int

// Transports.
const (
	// TransportInline is the synchronous in-process transport (bus.Inline).
	TransportInline Transport = iota
	// TransportWire is the message-framed transport: every event and
	// command crosses an in-process duplex pipe as length-prefixed binary
	// frames (internal/bus/wire).
	TransportWire
)

func (t Transport) String() string {
	switch t {
	case TransportInline:
		return "inline"
	case TransportWire:
		return "wire"
	default:
		return "unknown-transport"
	}
}

// Defaults matching the paper's setup (Section 6.1).
const (
	DefaultInstances   = 5
	DefaultDuration    = sim.Duration(3600e9) // l_p = 1 hour
	DefaultSampleEvery = sim.Duration(10e9)   // 10 s
)

// RunConfig describes one campaign run.
type RunConfig struct {
	App     *app.App
	Tool    string
	Setting Setting
	// Instances is d_max (default 5).
	Instances int
	// Duration is l_p, the wall-clock budget per run (default 1h).
	Duration sim.Duration
	// MachineBudget is the machine-time budget for TaOPTResource and the
	// wall budget for SingleLong (default Instances × Duration).
	MachineBudget sim.Duration
	// Seed drives every random decision of the run.
	Seed int64
	// ScenarioHash is the canonical content hash of the scenario document
	// that defined the run's app (internal/scenario). It is carried verbatim
	// into the export and wire-log headers so every result file names the
	// exact scenario that produced it; empty for apps built in code.
	ScenarioHash string
	// SampleEvery is the timeline sampling period (default 10s).
	SampleEvery sim.Duration
	// CoreConfig optionally overrides TaOPT's coordinator configuration
	// (ablations); nil uses the mode's defaults.
	CoreConfig *core.Config
	// Faults, when non-nil and enabled, injects device-farm failures
	// (instance death/hang, allocation outages, trace drop/delay) from a
	// deterministic plan derived from the run seed. Nil runs fault-free.
	Faults *faults.Config
	// Telemetry enables the observability layer: the coordinator's decision
	// log and the run's metrics registry (see internal/obs). Off by default;
	// a disabled run carries a nil sink and pays nothing on the hot path.
	Telemetry bool
	// Transport selects the coordination transport (default TransportInline).
	Transport Transport
	// WireLog, when non-nil, records the run's full bidirectional message
	// log in the internal/bus/wire format: every ground event, delivery,
	// command exchange and boundary effect, from which export.ReplayWireLog
	// re-derives the run byte-for-byte. Works over either transport.
	WireLog io.Writer
	// BinTrace, when non-nil, streams the run in the compact binary
	// trace+telemetry format (internal/trace/bin): events, samples and
	// decisions leave the process in fixed-size chunks as they happen, and
	// the bounded end-of-run summaries close the stream. export.ReadBin
	// rebuilds the JSON export from it losslessly.
	BinTrace io.Writer
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Instances == 0 {
		c.Instances = DefaultInstances
	}
	if c.Duration == 0 {
		c.Duration = DefaultDuration
	}
	if c.MachineBudget == 0 {
		c.MachineBudget = sim.Duration(c.Instances) * c.Duration
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	return c
}

// InstanceResult is the outcome of one testing-instance allocation.
type InstanceResult struct {
	ID        int
	Methods   *coverage.Set
	Crashes   *crash.Log
	Trace     *trace.Log
	Allocated sim.Duration
	Released  sim.Duration
	// Failed marks a lease terminated by an injected fault (death or hang)
	// rather than a deliberate release.
	Failed bool
}

// RunResult is the outcome of one campaign run.
type RunResult struct {
	Config    RunConfig
	Instances []InstanceResult
	Timeline  metrics.Timeline
	// Union is the cumulative covered-method set across instances.
	Union *coverage.Set
	// UniqueCrashes counts distinct crash signatures across instances.
	UniqueCrashes int
	// WallUsed and MachineUsed are the consumed budgets.
	WallUsed    sim.Duration
	MachineUsed sim.Duration
	// UIOccurrences counts tool-caused observations per distinct abstract
	// screen across all instances (Table 6's raw data).
	UIOccurrences map[ui.Signature]int
	// Subspaces are TaOPT's accepted subspaces (nil for baselines).
	Subspaces []*core.Subspace
	// CoordinatorStats holds TaOPT's decision counters (nil for baselines).
	CoordinatorStats *core.Stats
	// Book is the campaign's screen registry.
	Book *trace.Book
	// FailedInstances counts leases terminated by injected faults.
	FailedInstances int
	// Transport is the run's coordination-transport accounting: trace events
	// published and delivered, commands carried, and (on chaos runs) the
	// faults the decorated transport injected.
	Transport bus.Stats
	// OrphansPending is how many accepted subspaces still awaited a
	// replacement owner when the run ended (TaOPT settings only; always 0
	// unless DropOrphans or the run ends mid-outage).
	OrphansPending int
	// Telemetry holds the run's decision log and metrics registry when
	// RunConfig.Telemetry was set; nil otherwise.
	Telemetry *obs.Telemetry
	// Wire holds the wire transport's frame-level traffic counters
	// (TransportWire runs only; nil for Inline). Deliberately not part of
	// the export, which must stay byte-identical across transports.
	Wire *wire.Stats
	// Events is the number of scheduler events the run fired — the
	// deterministic work measure behind the bench harness's
	// virtual-events-per-second figure.
	Events uint64
}

// InstanceSets returns the per-instance covered-method sets.
func (r *RunResult) InstanceSets() []*coverage.Set {
	out := make([]*coverage.Set, len(r.Instances))
	for i := range r.Instances {
		out[i] = r.Instances[i].Methods
	}
	return out
}

// Traces returns the per-instance transition logs.
func (r *RunResult) Traces() []*trace.Log {
	out := make([]*trace.Log, len(r.Instances))
	for i := range r.Instances {
		out[i] = r.Instances[i].Trace
	}
	return out
}

// UIOccurrenceAverage is Table 6's per-run statistic.
func (r *RunResult) UIOccurrenceAverage() float64 {
	return metrics.UIOccurrenceAverage(r.UIOccurrences)
}

// Run executes one campaign run to completion on virtual time.
func Run(cfg RunConfig) (*RunResult, error) {
	cfg = cfg.withDefaults()
	if cfg.App == nil {
		return nil, fmt.Errorf("harness: RunConfig.App is nil")
	}
	if _, err := tools.New(cfg.Tool, 0); err != nil {
		return nil, err
	}
	r := newRunner(cfg)
	r.run()
	res := r.result()
	// A truncated or failed wire log / wire protocol must fail the run
	// loudly: a silently incomplete log would replay wrongly later.
	if r.rec != nil {
		if err := r.rec.Err(); err != nil {
			return nil, err
		}
	}
	if r.wireT != nil {
		if err := r.wireT.Err(); err != nil {
			return nil, fmt.Errorf("harness: wire transport: %w", err)
		}
	}
	// Likewise a truncated binary trace: it would read as a corrupt stream.
	if r.bin != nil {
		if err := r.bin.Close(); err != nil {
			return nil, fmt.Errorf("harness: binary trace: %w", err)
		}
	}
	return res, nil
}

// actor drives one testing instance: tool chooses, driver performs, repeat.
type actor struct {
	id      int
	al      *device.Allocation
	driver  *toller.Driver
	tool    tools.Tool
	stopped bool
	// hung marks an instance wedged by an injected fault: it stops
	// producing events but its lease stays allocated (and billed) until a
	// health monitor — or the end of the run — releases it.
	hung bool
	// failed marks an instance killed by an injected death.
	failed bool
}

type runner struct {
	cfg   RunConfig
	sched *sim.Scheduler
	farm  *device.Farm
	book  *trace.Book
	rng   *sim.RNG
	// port is the coordination transport: drivers publish trace events into
	// it, the strategy subscribes, and every lifecycle/block command travels
	// through it. On chaos runs it is decorated with the fault plan
	// (bus.WithFaults); the runner itself has no fault-injection branches.
	port bus.Transport

	strategy strategy
	coord    *core.Coordinator // non-nil for TaOPT settings

	actors map[int]*actor
	order  []int // allocation order of actor ids

	wallDeadline  sim.Duration // 0 = none
	machineBudget sim.Duration // 0 = none
	ended         bool

	occurrences map[ui.Signature]int
	timeline    metrics.Timeline
	// tel is the run's telemetry (nil when RunConfig.Telemetry is off; every
	// producer below guards on it, so a disabled run takes no telemetry
	// branches beyond one nil check).
	tel *obs.Telemetry
	// wireT is the framed transport when TransportWire is selected (nil for
	// Inline); rec is the wire-log recorder when RunConfig.WireLog is set.
	wireT *wire.Transport
	rec   *wire.Recorder
	// bin is the streaming binary trace writer when RunConfig.BinTrace is
	// set (nil otherwise). It taps the driver-side ground truth, exactly
	// like the measurements: injected transport faults never reach it.
	bin *bin.Writer
}

func newRunner(cfg RunConfig) *runner {
	r := &runner{
		cfg:         cfg,
		sched:       sim.NewScheduler(),
		book:        trace.NewBook(),
		rng:         sim.NewRNG(cfg.Seed),
		actors:      make(map[int]*actor),
		occurrences: make(map[ui.Signature]int),
	}
	if cfg.Telemetry {
		r.tel = obs.NewTelemetry()
	}
	if cfg.BinTrace != nil {
		r.bin = bin.NewWriter(cfg.BinTrace, bin.Header{
			App:          cfg.App.Name,
			Tool:         cfg.Tool,
			Setting:      cfg.Setting.String(),
			Seed:         cfg.Seed,
			ScenarioHash: cfg.ScenarioHash,
			Telemetry:    cfg.Telemetry,
			Faults:       cfg.Faults != nil && cfg.Faults.Enabled(),
		})
		if r.tel != nil {
			// Stream decisions out as the coordinator emits them instead of
			// buffering them to run end.
			r.tel.DecisionLog().Tee(r.bin.Decision)
		}
	}

	maxDevices := cfg.Instances
	autoLogin := true
	switch cfg.Setting {
	case BaselineParallel, ActivityPartition, PATSMasterSlave:
		r.wallDeadline = cfg.Duration
	case TaOPTDuration:
		r.wallDeadline = cfg.Duration
	case TaOPTResource:
		r.machineBudget = cfg.MachineBudget
		// Safety cap so a degenerate run cannot spin forever: with at least
		// one instance active, wall time can never exceed the machine
		// budget, and idle gaps only ever shorten the run.
		r.wallDeadline = 2 * cfg.MachineBudget
	case SingleLong:
		maxDevices = 1
		r.wallDeadline = cfg.MachineBudget
	}
	r.farm = device.NewFarm(cfg.App, r.rng.Fork(1000003), maxDevices, autoLogin)
	// The transport stack, innermost first: the base transport (Inline or
	// framed wire), the fault decorator on chaos runs (a nil plan leaves it
	// undecorated), and — when a wire log is requested — the recorder's two
	// taps: Inner below the faults (what was delivered) and Outer above them
	// (ground events and command exchanges as the endpoints spoke them).
	// The runner binds itself as the executor endpoint before the strategy
	// is built, so TaOPT's coordinator can emit commands from its first
	// event.
	var base bus.Transport
	if cfg.Transport == TransportWire {
		r.wireT = wire.New(r.sched.Now)
		base = r.wireT
	} else {
		base = bus.NewInline()
	}
	if cfg.WireLog != nil {
		r.rec = wire.NewRecorder(cfg.WireLog, r.sched.Now, r.book, wire.Header{
			App:             cfg.App.Name,
			Tool:            cfg.Tool,
			Setting:         cfg.Setting.String(),
			Seed:            cfg.Seed,
			Instances:       cfg.Instances,
			MaxDevices:      maxDevices,
			DurationNS:      int64(cfg.Duration),
			MachineBudgetNS: int64(cfg.MachineBudget),
			SampleEveryNS:   int64(cfg.SampleEvery),
			CoreOverride:    cfg.CoreConfig != nil,
			Telemetry:       cfg.Telemetry,
			FaultsEnabled:   cfg.Faults != nil && cfg.Faults.Enabled(),
			ScenarioHash:    cfg.ScenarioHash,
		})
		base = r.rec.Inner(base)
	}
	r.port = bus.WithFaults(base, faults.PlanFor(cfg.Faults, r.rng.Fork(7000003)), r.sched)
	if r.rec != nil {
		r.port = r.rec.Outer(r.port)
	}
	r.port.Bind(r)
	r.strategy = newStrategy(r)
	r.port.Subscribe(func(ev trace.Event) {
		if !r.ended {
			r.strategy.onEvent(ev)
		}
	})
	if r.tel != nil {
		// Count deliveries on the coordinator side of the transport: the gap
		// to the per-instance emitted counters is the injected trace loss.
		reg := r.tel.Registry()
		r.port.Subscribe(func(ev trace.Event) {
			reg.Inc(obs.InstanceCounter("bus.delivered", ev.Instance), 1)
		})
	}
	return r
}

// --- core.Env implementation -------------------------------------------

// Now implements core.Env.
func (r *runner) Now() sim.Duration { return r.sched.Now() }

// MaxInstances implements core.Env.
func (r *runner) MaxInstances() int { return r.farm.MaxDevices() }

// ActiveInstances implements core.Env.
func (r *runner) ActiveInstances() []int {
	als := r.farm.Active()
	out := make([]int, len(als))
	for i, al := range als {
		out[i] = al.Emu.ID
	}
	return out
}

// Allocate implements core.Env: the request travels as a bus command to the
// executor below (possibly through the fault decorator's outage model). A
// wound-down run returns a permanent error; a busy (or outage-stricken) farm
// returns an error wrapping device.ErrFarmBusy, which the coordinator
// retries with backoff. The lifecycle guards stay on this client side so
// every caller — coordinator and baseline strategies alike — sees them
// before the transport is consulted.
func (r *runner) Allocate() (int, error) {
	if r.ended {
		return 0, r.localReject(fmt.Errorf("harness: run ended"))
	}
	if r.wallDeadline != 0 && r.sched.Now() >= r.wallDeadline {
		return 0, r.localReject(fmt.Errorf("harness: wall deadline reached"))
	}
	rep := r.port.Send(bus.Command{Kind: bus.Allocate})
	return rep.Instance, rep.Err
}

// localReject records an allocation the lifecycle guards refused on the
// client side, without consulting the transport. The wire log still carries
// the exchange, so replay resolves the same request with the same error.
func (r *runner) localReject(err error) error {
	if r.rec != nil {
		r.rec.Local(bus.Command{Kind: bus.Allocate}, bus.Reply{Err: err})
	}
	return err
}

// Deallocate implements core.Env: the release travels as a bus command.
// Unknown IDs and double releases are errors the coordinator records.
func (r *runner) Deallocate(id int) error {
	return r.port.Send(bus.Command{Kind: bus.Deallocate, Instance: id}).Err
}

// --- bus.Executor implementation -----------------------------------------

// Exec implements bus.Executor: the runner is the transport's executor
// endpoint, performing commands against the farm and the Toller drivers.
func (r *runner) Exec(cmd bus.Command) bus.Reply {
	switch cmd.Kind {
	case bus.Allocate:
		return r.execAllocate()
	case bus.Deallocate:
		return bus.Reply{Instance: cmd.Instance, Err: r.execDeallocate(cmd.Instance)}
	case bus.BlockWidget:
		r.blocks(cmd.Instance).BlockWidget(cmd.Screen, cmd.Widget)
		return bus.Reply{Instance: cmd.Instance}
	case bus.BlockMember:
		r.blocks(cmd.Instance).BlockMember(cmd.Screen)
		return bus.Reply{Instance: cmd.Instance}
	case bus.Kill:
		r.killInstance(cmd.Instance)
		return bus.Reply{Instance: cmd.Instance}
	case bus.Hang:
		r.hangInstance(cmd.Instance)
		return bus.Reply{Instance: cmd.Instance}
	default:
		return bus.Reply{Err: fmt.Errorf("harness: unknown command %s", cmd.Kind)}
	}
}

// execAllocate boots an instance, attaches the Toller driver and the tool,
// and schedules its first step.
func (r *runner) execAllocate() bus.Reply {
	if r.ended {
		return bus.Reply{Err: fmt.Errorf("harness: run ended")}
	}
	now := r.sched.Now()
	al, err := r.farm.Allocate(now)
	if err != nil {
		return bus.Reply{Err: err}
	}
	id := al.Emu.ID
	driver := toller.NewDriver(al.Emu, r.book, now)
	a := &actor{
		id:     id,
		al:     al,
		driver: driver,
		tool:   tools.MustNew(r.cfg.Tool, r.rng.Fork(int64(id)).Int63()),
	}
	driver.Subscribe(toller.ListenerFunc(r.recordEvent))
	driver.Subscribe(toller.ListenerFunc(r.port.Publish))
	r.actors[id] = a
	r.order = append(r.order, id)
	if r.rec != nil {
		// The launch event was emitted before any listener subscribed, so it
		// never crosses the transport; the lease frame carries it.
		r.rec.Lease(id, driver.Trace().Events()[0])
	}
	if r.bin != nil {
		// Same gap for the binary stream: record the launch event directly.
		r.bin.Event(driver.Trace().Events()[0])
	}
	r.scheduleStep(a, 0)
	return bus.Reply{Instance: id}
}

// execDeallocate releases a running instance; hung instances end as failed
// leases.
func (r *runner) execDeallocate(id int) error {
	a, ok := r.actors[id]
	if !ok {
		return fmt.Errorf("harness: %w: %d", device.ErrUnknownInstance, id)
	}
	if a.stopped {
		return fmt.Errorf("harness: %w: %d", device.ErrDoubleRelease, id)
	}
	a.stopped = true
	now := r.sched.Now()
	if a.hung {
		_, err := r.farm.Fail(id, now)
		return err
	}
	_, err := r.farm.Release(id, now)
	return err
}

// killInstance executes a Kill command (an injected death): the emulator
// process is gone mid-run, the lease is charged machine time up to this
// moment, and the instance silently stops stepping — the coordinator finds
// out through its health monitor, exactly as a real farm's client would.
func (r *runner) killInstance(id int) {
	if r.ended {
		return
	}
	a, ok := r.actors[id]
	if !ok || a.stopped {
		return
	}
	a.stopped = true
	a.failed = true
	r.farm.Fail(id, r.sched.Now())
}

// hangInstance executes a Hang command (an injected hang): the instance
// stops producing trace events but stays allocated and billed until
// released.
func (r *runner) hangInstance(id int) {
	if r.ended {
		return
	}
	a, ok := r.actors[id]
	if !ok || a.stopped || a.hung {
		return
	}
	a.hung = true
}

// blocks returns one instance's block set for command execution.
func (r *runner) blocks(id int) *toller.BlockSet {
	a, ok := r.actors[id]
	if !ok {
		// The coordinator may race a just-deallocated instance; hand it a
		// throwaway set rather than crash the run.
		return toller.NewBlockSet()
	}
	return a.driver.Blocks()
}

// --- run loop ------------------------------------------------------------

// recordEvent keeps the experiment's ground-truth measurements. It taps the
// driver directly, before the transport: injected trace loss and delay
// degrade coordination (the strategy subscribes through the bus), never the
// measurements.
func (r *runner) recordEvent(ev trace.Event) {
	if r.bin != nil {
		r.bin.Event(ev)
	}
	if r.tel != nil {
		r.tel.Registry().Inc(obs.InstanceCounter("trace.emitted", ev.Instance), 1)
	}
	if ev.Enforced {
		return
	}
	r.occurrences[ev.To]++
}

func (r *runner) scheduleStep(a *actor, after sim.Duration) {
	r.sched.After(after, sim.EventFunc(func(*sim.Scheduler) { r.step(a) }))
}

func (r *runner) step(a *actor) {
	if a.stopped || a.hung || r.ended {
		return
	}
	now := r.sched.Now()
	if r.wallDeadline != 0 && now >= r.wallDeadline {
		r.Deallocate(a.id)
		return
	}
	if r.machineBudget != 0 && r.farm.MachineTime(now) >= r.machineBudget {
		r.endRun()
		return
	}
	v := a.driver.View()
	act := a.tool.Choose(v)
	res := a.driver.Perform(act, now)
	if a.stopped || r.ended {
		// The strategy de-allocated this instance (stagnation) or ended the
		// run while handling the transition events.
		return
	}
	r.scheduleStep(a, res.Latency)
}

func (r *runner) endRun() {
	if r.ended {
		return
	}
	r.ended = true
	now := r.sched.Now()
	for _, a := range r.actors {
		a.stopped = true
	}
	r.failHungLeases(now)
	r.farm.ReleaseAll(now)
	r.sched.Halt()
}

// failHungLeases charges still-hung instances as failed before the final
// sweep, so end-of-run accounting distinguishes them from clean releases.
func (r *runner) failHungLeases(now sim.Duration) {
	for _, a := range r.actors {
		if a.hung && !a.al.Done() {
			r.farm.Fail(a.id, now)
		}
	}
}

func (r *runner) sample() {
	now := r.sched.Now()
	als := r.farm.All()
	if len(als) == 0 {
		return
	}
	sets := make([]*coverage.Set, len(als))
	logs := make([]*crash.Log, len(als))
	for i, al := range als {
		sets[i] = al.Emu.Coverage
		logs[i] = al.Emu.Crashes
	}
	p := metrics.Point{
		Wall:    now,
		Machine: r.farm.MachineTime(now),
		Covered: coverage.UnionOf(sets).Count(),
		Crashes: crash.UniqueUnion(logs),
	}
	if len(sets) > 1 {
		p.AJS = metrics.AJS(sets)
	}
	r.timeline = append(r.timeline, p)
	if r.rec != nil {
		r.rec.Sample(wire.Sample{
			WallNS: int64(p.Wall), MachineNS: int64(p.Machine),
			Covered: p.Covered, Crashes: p.Crashes, AJS: p.AJS,
		})
	}
	if r.bin != nil {
		r.bin.Sample(bin.Sample{
			WallNS: int64(p.Wall), MachineNS: int64(p.Machine),
			Covered: p.Covered, Crashes: p.Crashes, AJS: p.AJS,
		})
	}
	if r.tel != nil {
		reg := r.tel.Registry()
		reg.Append("run.coverage", now, float64(p.Covered))
		reg.Append("run.crashes", now, float64(p.Crashes))
		active := len(r.farm.Active())
		reg.Append("fleet.active", now, float64(active))
		reg.Append("fleet.utilization", now, float64(active)/float64(r.farm.MaxDevices()))
		var widgets, members int
		for _, id := range r.order {
			if a := r.actors[id]; !a.stopped {
				widgets += a.driver.Blocks().WidgetBlockCount()
				members += a.driver.Blocks().MemberCount()
			}
		}
		reg.Append("blocks.widgets", now, float64(widgets))
		reg.Append("blocks.members", now, float64(members))
	}
}

func (r *runner) run() {
	r.strategy.start()
	// Periodic sampling until the run winds down. The same cadence drives
	// the strategy's tick (TaOPT's health monitor and allocation retries):
	// dead and hung instances produce no events, so event-driven hooks alone
	// would never notice them.
	var tick func(*sim.Scheduler)
	tick = func(*sim.Scheduler) {
		if r.ended {
			return
		}
		r.sample()
		now := r.sched.Now()
		if r.wallDeadline != 0 && now >= r.wallDeadline {
			return
		}
		if r.rec != nil {
			r.rec.TickMark()
		}
		r.strategy.tick(now)
		if r.ended {
			return
		}
		r.sched.After(r.cfg.SampleEvery, sim.EventFunc(tick))
	}
	r.sched.After(r.cfg.SampleEvery, sim.EventFunc(tick))

	r.sched.Run(r.wallDeadline)
	if !r.ended {
		r.ended = true
		now := r.sched.Now()
		r.failHungLeases(now)
		r.farm.ReleaseAll(now)
	}
	r.sample()
}

func (r *runner) result() *RunResult {
	res := &RunResult{
		Config:        r.cfg,
		Timeline:      r.timeline,
		WallUsed:      r.sched.Now(),
		MachineUsed:   r.farm.MachineTime(r.sched.Now()),
		UIOccurrences: r.occurrences,
		Book:          r.book,
		Events:        r.sched.Processed(),
	}
	for _, id := range r.order {
		a := r.actors[id]
		res.Instances = append(res.Instances, InstanceResult{
			ID:        id,
			Methods:   a.al.Emu.Coverage,
			Crashes:   a.al.Emu.Crashes,
			Trace:     a.driver.Trace(),
			Allocated: a.al.Since,
			Released:  a.al.Until,
			Failed:    a.al.Failed,
		})
	}
	res.FailedInstances = r.farm.FailedCount()
	res.Transport = r.port.Stats()
	if len(res.Instances) > 0 {
		res.Union = coverage.UnionOf(res.InstanceSets())
		logs := make([]*crash.Log, len(res.Instances))
		for i := range res.Instances {
			logs[i] = res.Instances[i].Crashes
		}
		res.UniqueCrashes = crash.UniqueUnion(logs)
	} else {
		res.Union = coverage.NewSet(r.cfg.App.MethodCount())
	}
	if r.coord != nil {
		res.Subspaces = r.coord.Subspaces()
		st := r.coord.DecisionStats()
		res.CoordinatorStats = &st
		res.OrphansPending = r.coord.OrphanCount()
	}
	if r.tel != nil {
		// Fold the transport's delivery accounting in as one more producer,
		// and close the books on the run-level aggregates.
		reg := r.tel.Registry()
		ts := res.Transport
		reg.Inc("bus.published", int64(ts.Published))
		reg.Inc("bus.delivered", int64(ts.Delivered))
		reg.Inc("bus.dropped", int64(ts.Dropped))
		reg.Inc("bus.delayed", int64(ts.Delayed))
		reg.Inc("bus.commands", int64(ts.Commands))
		for k := 0; k < bus.NumCommandKinds; k++ {
			reg.Inc("bus.commands."+bus.CommandKind(k).String(), int64(ts.ByKind[k]))
		}
		reg.SetGauge("run.wall_ns", float64(res.WallUsed))
		reg.SetGauge("run.machine_ns", float64(res.MachineUsed))
		reg.SetGauge("farm.failed_leases", float64(res.FailedInstances))
		for _, ir := range res.Instances {
			mins := float64(ir.Released-ir.Allocated) / 60e9
			reg.Observe("lease.duration_min", mins, 5, 15, 30, 60, 120)
		}
		res.Telemetry = r.tel
	}
	if r.wireT != nil {
		ws := r.wireT.Wire()
		res.Wire = &ws
	}
	if r.rec != nil {
		// Close the wire log: per-lease summaries and the run totals, the
		// frames replay rebuilds the export's non-protocol sections from.
		for _, ir := range res.Instances {
			sum := wire.Summary{
				ID:          ir.ID,
				AllocatedNS: int64(ir.Allocated),
				ReleasedNS:  int64(ir.Released),
				Failed:      ir.Failed,
				Coverage:    ir.Methods.Count(),
			}
			for _, rep := range ir.Crashes.Reports() {
				sum.Crashes = append(sum.Crashes, wire.CrashInfo{
					Signature: string(rep.Signature),
					AtNS:      int64(rep.At),
					Frames:    rep.Frames,
				})
			}
			r.rec.Instance(sum)
		}
		r.rec.End(wire.RunEnd{
			WallNS:          int64(res.WallUsed),
			MachineNS:       int64(res.MachineUsed),
			Coverage:        res.Union.Count(),
			UniqueCrashes:   res.UniqueCrashes,
			FailedInstances: res.FailedInstances,
			OrphansPending:  res.OrphansPending,
			Stats:           res.Transport,
		})
	}
	r.binTail(res)
	return res
}

// binTail closes the binary trace stream with the bounded end-of-run
// summaries, mirroring export.FromResult's sections exactly so ReadBin
// rebuilds the identical JSON view.
func (r *runner) binTail(res *RunResult) {
	if r.bin == nil {
		return
	}
	for _, ir := range res.Instances {
		sum := bin.InstanceSummary{
			ID:          ir.ID,
			AllocatedNS: int64(ir.Allocated),
			ReleasedNS:  int64(ir.Released),
			Failed:      ir.Failed,
			Coverage:    ir.Methods.Count(),
		}
		for _, rep := range ir.Crashes.Reports() {
			sum.Crashes = append(sum.Crashes, bin.Crash{
				Signature: string(rep.Signature),
				AtNS:      int64(rep.At),
				Frames:    rep.Frames,
			})
		}
		r.bin.Instance(sum)
	}
	for _, sub := range res.Subspaces {
		bs := bin.Subspace{
			ID: sub.ID, Entry: uint64(sub.Entry),
			Owner: sub.Owner, FoundNS: int64(sub.FoundAt),
		}
		for m := range sub.Members {
			bs.Members = append(bs.Members, uint64(m))
		}
		sort.Slice(bs.Members, func(i, j int) bool { return bs.Members[i] < bs.Members[j] })
		r.bin.Subspace(bs)
	}
	if res.Book != nil {
		for _, sig := range res.Book.Signatures() {
			s := res.Book.Lookup(sig)
			r.bin.Screen(bin.Screen{
				Sig: uint64(sig), Activity: s.Activity, Nodes: s.Root.Size(),
			})
		}
	}
	if st := res.Transport; r.cfg.Faults != nil && r.cfg.Faults.Enabled() {
		r.bin.Transport(bin.Transport{
			Events:          st.Published,
			Delivered:       st.Delivered,
			Commands:        st.Commands,
			CommandFailures: st.CommandFailures,
			Dropped:         st.Dropped,
			Delayed:         st.Delayed,
			Deaths:          st.Deaths,
			Hangs:           st.Hangs,
			AllocFailures:   st.AllocFailures,
			LostCommands:    st.LostCommands,
			FailedInstances: res.FailedInstances,
			OrphansPending:  res.OrphansPending,
			HasMix: true,
			Mix: [6]int{
				st.KindCount(bus.Allocate), st.KindCount(bus.Deallocate),
				st.KindCount(bus.BlockWidget), st.KindCount(bus.BlockMember),
				st.KindCount(bus.Kill), st.KindCount(bus.Hang),
			},
		})
	}
	if r.tel != nil {
		for _, m := range r.tel.Registry().Snapshot() {
			r.bin.Metric(m)
		}
	}
	r.bin.End(bin.End{
		WallNS:        int64(res.WallUsed),
		MachineNS:     int64(res.MachineUsed),
		Coverage:      res.Union.Count(),
		UniqueCrashes: res.UniqueCrashes,
	})
}
