package harness

import (
	"sort"

	"taopt/internal/core"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

// strategy is a parallelization strategy driving a run: it allocates
// instances and may react to transition events and the harness's periodic
// tick. TaOPT's coordinator is one implementation; the preliminary-study
// baselines are the others.
type strategy interface {
	start()
	onEvent(ev trace.Event)
	// tick runs at the harness's sampling cadence; it is the only hook that
	// fires while no trace events arrive, which is when failed instances
	// need noticing. Baselines ignore it — they have no coordinator, so a
	// dead instance simply stays dead, exactly as in an uncoordinated farm.
	tick(now sim.Duration)
}

func newStrategy(r *runner) strategy {
	switch r.cfg.Setting {
	case BaselineParallel:
		return &uncoordinated{r: r, n: r.cfg.Instances}
	case SingleLong:
		return &uncoordinated{r: r, n: 1}
	case ActivityPartition:
		return &activityPartition{r: r}
	case PATSMasterSlave:
		return newPATS(r)
	case TaOPTDuration:
		return newTaOPT(r, core.DurationConstrained)
	case TaOPTResource:
		return newTaOPT(r, core.ResourceConstrained)
	default:
		panic("harness: unknown setting")
	}
}

// uncoordinated launches n instances and never intervenes: parallelization
// by intrinsic randomness only (RQ1's baseline, and the 5-hour single run
// with n = 1).
type uncoordinated struct {
	r *runner
	n int
}

func (s *uncoordinated) start() {
	for i := 0; i < s.n; i++ {
		s.r.Allocate()
	}
}

func (s *uncoordinated) onEvent(trace.Event) {}

func (s *uncoordinated) tick(sim.Duration) {}

// activityPartition is the ParaAim-style baseline of RQ2: the app's Activity
// set (as a static analysis would extract it) is split round-robin across
// instances, and each instance is confined to its share. The launcher
// activity stays allowed everywhere — an instance that cannot even hold the
// home screen could not run at all.
type activityPartition struct {
	r *runner
}

func (s *activityPartition) start() {
	r := s.r
	acts := append([]string(nil), r.cfg.App.Activities()...)
	sort.Strings(acts)
	launcher := r.cfg.App.Screen(r.cfg.App.Main).Activity

	shares := make([][]string, r.cfg.Instances)
	slot := 0
	for _, a := range acts {
		if a == launcher {
			continue
		}
		shares[slot%r.cfg.Instances] = append(shares[slot%r.cfg.Instances], a)
		slot++
	}
	for i := 0; i < r.cfg.Instances; i++ {
		id, err := r.Allocate()
		if err != nil {
			break
		}
		allowed := append([]string{launcher}, shares[i]...)
		if r.cfg.App.LoginRequired {
			allowed = append(allowed, r.cfg.App.Screen(r.cfg.App.Login).Activity)
		}
		r.blocks(id).RestrictActivities(allowed)
	}
}

func (s *activityPartition) onEvent(trace.Event) {}

func (s *activityPartition) tick(sim.Duration) {}

// taopt adapts core.Coordinator to the strategy interface.
type taopt struct {
	coord *core.Coordinator
}

func newTaOPT(r *runner, mode core.Mode) *taopt {
	cfg := core.DefaultConfig(mode)
	if r.cfg.CoreConfig != nil {
		cfg = *r.cfg.CoreConfig
		cfg.Mode = mode
	}
	// Nil when telemetry is off: the coordinator's decision-log emits are
	// nil-safe no-ops.
	cfg.Obs = r.tel.DecisionLog()
	coord := core.NewCoordinator(cfg, r, r.port, r.book)
	r.coord = coord
	return &taopt{coord: coord}
}

func (s *taopt) start() { s.coord.Start() }

func (s *taopt) onEvent(ev trace.Event) { s.coord.OnTransition(ev) }

func (s *taopt) tick(now sim.Duration) { s.coord.Tick(now) }
