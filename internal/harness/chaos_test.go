package harness

import (
	"testing"

	"taopt/internal/faults"
	"taopt/internal/obs"
	"taopt/internal/sim"
)

const chaosMinute = sim.Duration(60e9)

// chaosRun executes one run with the given fault config, failing the test on
// a setup error. Panics inside the run fail the test by crashing it — that is
// the point: a chaos campaign must complete without one.
func chaosRun(t *testing.T, setting Setting, fc *faults.Config, seed int64) *RunResult {
	t.Helper()
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Filters For Selfie"),
		Tool:     "monkey",
		Setting:  setting,
		Duration: 8 * chaosMinute,
		Seed:     seed,
		Faults:   fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosAllSettingsSurvive runs every parallelization setting under a 20%
// fault mix: the run must complete without panicking and still produce a
// coherent result.
func TestChaosAllSettingsSurvive(t *testing.T) {
	fc := faults.DefaultConfig(0.20)
	// Compress failure times into the short test lease so faults actually
	// fire within the 8-minute run.
	fc.MinLife = 1 * chaosMinute
	fc.MaxLife = 5 * chaosMinute
	for _, setting := range []Setting{
		BaselineParallel, TaOPTDuration, TaOPTResource,
		ActivityPartition, SingleLong, PATSMasterSlave,
	} {
		t.Run(setting.String(), func(t *testing.T) {
			res := chaosRun(t, setting, &fc, 11)
			if res.Union == nil || res.Union.Count() == 0 {
				t.Fatal("chaos run produced no coverage at all")
			}
			if res.Transport.Injected() == 0 {
				t.Fatal("chaos run reported no injected faults")
			}
			var sum sim.Duration
			for _, inst := range res.Instances {
				if inst.Released < inst.Allocated {
					t.Fatalf("instance %d released before allocated", inst.ID)
				}
				sum += inst.Released - inst.Allocated
			}
			if sum != res.MachineUsed {
				t.Fatalf("machine time %v != per-instance lease sum %v (failed leases must stay charged)",
					res.MachineUsed, sum)
			}
		})
	}
}

// TestChaosDeterminism: the same seed must reproduce a chaos run byte for
// byte — same coverage, same crash count, same faults, same traces.
func TestChaosDeterminism(t *testing.T) {
	fc := faults.DefaultConfig(0.20)
	fc.MinLife = 1 * chaosMinute
	fc.MaxLife = 5 * chaosMinute
	a := chaosRun(t, TaOPTDuration, &fc, 7)
	b := chaosRun(t, TaOPTDuration, &fc, 7)
	if a.Union.Count() != b.Union.Count() {
		t.Fatalf("coverage differs: %d vs %d", a.Union.Count(), b.Union.Count())
	}
	if a.UniqueCrashes != b.UniqueCrashes {
		t.Fatalf("crashes differ: %d vs %d", a.UniqueCrashes, b.UniqueCrashes)
	}
	if a.FailedInstances != b.FailedInstances {
		t.Fatalf("failed-instance counts differ: %d vs %d", a.FailedInstances, b.FailedInstances)
	}
	if a.Transport != b.Transport {
		t.Fatalf("transport stats differ: %+v vs %+v", a.Transport, b.Transport)
	}
	if len(a.Instances) != len(b.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(a.Instances), len(b.Instances))
	}
	for i := range a.Instances {
		if a.Instances[i].Trace.Len() != b.Instances[i].Trace.Len() {
			t.Fatalf("instance %d trace lengths differ", i)
		}
		if a.Instances[i].Failed != b.Instances[i].Failed {
			t.Fatalf("instance %d failure flags differ", i)
		}
	}
}

// TestChaosCoverageTolerance: with the coordinator replacing dead instances,
// a 20% chaos run must retain at least half the fault-free coverage.
func TestChaosCoverageTolerance(t *testing.T) {
	fc := faults.DefaultConfig(0.20)
	fc.MinLife = 1 * chaosMinute
	fc.MaxLife = 5 * chaosMinute
	clean := chaosRun(t, TaOPTDuration, nil, 3)
	chaos := chaosRun(t, TaOPTDuration, &fc, 3)
	if chaos.Union.Count() < clean.Union.Count()/2 {
		t.Fatalf("chaos coverage %d collapsed below half of fault-free %d",
			chaos.Union.Count(), clean.Union.Count())
	}
	if chaos.OrphansPending != 0 {
		t.Fatalf("%d accepted subspaces never got a replacement owner", chaos.OrphansPending)
	}
}

// TestChaosDeathChargesPartialLease: with every instance fated to die exactly
// two minutes in, each lease must be charged exactly those two minutes and
// marked failed.
func TestChaosDeathChargesPartialLease(t *testing.T) {
	fc := faults.Config{
		FailureRate:  1.0,
		HangFraction: 0,
		MinLife:      2 * chaosMinute,
		MaxLife:      2 * chaosMinute,
	}
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Filters For Selfie"),
		Tool:     "monkey",
		Setting:  BaselineParallel,
		Duration: 10 * chaosMinute,
		Seed:     5,
		Faults:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedInstances != DefaultInstances {
		t.Fatalf("FailedInstances = %d, want %d", res.FailedInstances, DefaultInstances)
	}
	for _, inst := range res.Instances {
		if !inst.Failed {
			t.Fatalf("instance %d not marked failed", inst.ID)
		}
		if got := inst.Released - inst.Allocated; got != 2*chaosMinute {
			t.Fatalf("instance %d lease = %v, want exactly 2m", inst.ID, got)
		}
	}
	if want := sim.Duration(DefaultInstances) * 2 * chaosMinute; res.MachineUsed != want {
		t.Fatalf("MachineUsed = %v, want %v", res.MachineUsed, want)
	}
	if res.Transport.Deaths != DefaultInstances || res.Transport.Hangs != 0 {
		t.Fatalf("transport stats %+v, want %d deaths and no hangs", res.Transport, DefaultInstances)
	}
}

// TestChaosHungLeaseBilledUntilReaped: a hung instance produces no events but
// stays allocated; the coordinator's heartbeat monitor must fail its lease —
// charged up to the reap, not the hang — and boot a replacement.
func TestChaosHungLeaseBilledUntilReaped(t *testing.T) {
	fc := faults.Config{
		FailureRate:  1.0,
		HangFraction: 1.0,
		MinLife:      1 * chaosMinute,
		MaxLife:      1 * chaosMinute,
	}
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Filters For Selfie"),
		Tool:     "monkey",
		Setting:  TaOPTDuration,
		Duration: 10 * chaosMinute,
		Seed:     9,
		Faults:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedInstances == 0 {
		t.Fatal("no hung lease was ever failed")
	}
	if res.CoordinatorStats.Hangs == 0 {
		t.Fatal("heartbeat monitor detected no hangs")
	}
	// Hang at 1m, heartbeat window 2m: a reaped lease outlives its hang.
	// (Instances that hang right at the wall deadline are charged exactly
	// their hang time — skip those boundary leases.)
	outlived := false
	for _, inst := range res.Instances {
		if inst.Failed && inst.Released-inst.Allocated > 1*chaosMinute {
			outlived = true
			break
		}
	}
	if !outlived {
		t.Fatal("no hung lease was billed past its hang — reaping never charged the wedge time")
	}
}

// TestChaosCampaignThreadsFaults: CampaignConfig.Faults must reach every cell
// and surface in the summaries.
func TestChaosCampaignThreadsFaults(t *testing.T) {
	fc := faults.DefaultConfig(0.20)
	fc.MinLife = 1 * chaosMinute
	fc.MaxLife = 5 * chaosMinute
	cfg := tinyConfig()
	cfg.Faults = &fc
	cell := mustCellT(t, NewCampaign(cfg), "Filters For Selfie", "monkey", TaOPTDuration)
	if cell.FaultsInjected == 0 {
		t.Fatal("chaos campaign cell reports no injected faults")
	}
	again := mustCellT(t, NewCampaign(cfg), "Filters For Selfie", "monkey", TaOPTDuration)
	if cell.Union != again.Union || cell.FaultsInjected != again.FaultsInjected ||
		cell.FailedInstances != again.FailedInstances {
		t.Fatalf("chaos campaign cells not reproducible: %+v vs %+v", cell, again)
	}
}

// TestChaosWireOutageBackoff forces the hostile end of the robustness
// envelope through the framed transport: allocation outages plus command
// loss. The run must complete (no hang, no panic), resolve deferred
// allocations via the coordinator's capped backoff, retry lost block
// commands, and leave the whole story in the decision log.
func TestChaosWireOutageBackoff(t *testing.T) {
	fc := faults.DefaultConfig(0.20)
	fc.MinLife = 1 * chaosMinute
	fc.MaxLife = 5 * chaosMinute
	fc.AllocFailRate = 0.45
	fc.AllocOutage = chaosMinute / 2
	fc.CmdLossRate = 0.4
	res, err := Run(RunConfig{
		App:       mustLoad(t, "Filters For Selfie"),
		Tool:      "monkey",
		Setting:   TaOPTDuration,
		Duration:  12 * chaosMinute,
		Seed:      11,
		Faults:    &fc,
		Telemetry: true,
		Transport: TransportWire,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wire == nil || res.Wire.FramesUp == 0 {
		t.Fatalf("run did not go over the wire: %+v", res.Wire)
	}
	if res.Transport.AllocFailures == 0 {
		t.Fatalf("outage mix drew no allocation failures: %+v", res.Transport)
	}
	if res.Transport.LostCommands == 0 {
		t.Fatalf("loss mix swallowed no commands: %+v", res.Transport)
	}

	byKind := res.Telemetry.DecisionLog().CountByKind()
	if byKind[obs.KindAllocDefer] == 0 {
		t.Fatal("no alloc-defer decisions despite a forced outage")
	}
	if byKind[obs.KindCmdRetry] == 0 {
		t.Fatal("no cmd-retry decisions despite forced command loss")
	}
	// Backoff resolves: some deferred want later became a real allocation.
	// Every instance past the initial d_max came out of the retry path, so a
	// completed run with outages and full coverage of d_max proves it.
	var lastDefer, lastAlloc int64 = -1, -1
	for _, d := range res.Telemetry.DecisionLog().Decisions() {
		switch d.Kind {
		case obs.KindAllocDefer:
			if lastDefer == -1 {
				lastDefer = d.AtNS
			}
		case obs.KindAllocate:
			lastAlloc = d.AtNS
		}
	}
	if lastDefer == -1 || lastAlloc <= lastDefer {
		t.Fatalf("no allocation after the first deferral (first defer at %d, last alloc at %d): backoff never resolved",
			lastDefer, lastAlloc)
	}
	// Deferral reasons distinguish farm-busy from command timeouts.
	reasons := res.Telemetry.DecisionLog().CountByReason(obs.KindAllocDefer)
	if reasons["farm-busy"] == 0 {
		t.Fatalf("alloc-defer reasons = %v, want farm-busy entries", reasons)
	}
}
