package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"taopt/internal/apps"
	"taopt/internal/core"
	"taopt/internal/coverage"
	"taopt/internal/faults"
	"taopt/internal/graph"
	"taopt/internal/harness/fleet"
	"taopt/internal/metrics"
	"taopt/internal/sim"
)

// CellKey identifies one run of the evaluation grid.
type CellKey struct {
	App     string
	Tool    string
	Setting Setting
}

func (k CellKey) String() string {
	return fmt.Sprintf("%s/%s/%s", k.App, k.Tool, k.Setting)
}

// CellSummary is the digest of one run that the experiment renderers work
// from. Heavy per-event data (traces, screen books) is reduced here so a full
// 18-app × 3-tool grid fits comfortably in memory.
type CellSummary struct {
	Key CellKey

	// Hash is the canonical scenario hash of the cell's app document (the
	// same value export v5 stamps as scenario_hash), surfaced so progress
	// output correlates with service cache keys and exported results.
	Hash string

	// Coverage.
	Union        int
	UnionSet     *coverage.Set
	InstanceSets []*coverage.Set
	Timeline     metrics.Timeline

	// Crashes.
	UniqueCrashes int

	// UI overlap (Table 6).
	DistinctUIs  int
	UIOccAverage float64

	// Budgets.
	WallUsed    sim.Duration
	MachineUsed sim.Duration
	// Events is the run's fired-scheduler-event count (the benchmark
	// harness's virtual-work measure).
	Events uint64

	// TaOPT-only.
	Subspaces int

	// Fault injection (zero on fault-free campaigns).
	FailedInstances int
	FaultsInjected  int
	OrphansPending  int

	// Preliminary-study fields, filled for BaselineParallel cells only:
	// the offline UI-subspace partition of the combined traces and, per
	// identified subspace, how many of the instances explored it (Table 1).
	OfflineSubspaces int
	OverlapHist      []int
}

// CampaignConfig parameterises a whole evaluation campaign.
type CampaignConfig struct {
	// Apps are catalog names; empty means all 18.
	Apps []string
	// Tools are testing-tool names; empty means all three.
	Tools []string
	// Instances is d_max (default 5).
	Instances int
	// Duration is l_p (default 1h). Scale it down for quick runs.
	Duration sim.Duration
	// SampleEvery is the timeline sampling period for every run (default
	// 10s, see DefaultSampleEvery).
	SampleEvery sim.Duration
	// Seed is the campaign seed; each cell derives its own.
	Seed int64
	// ScenarioApps maps app names to inline definitions from a campaign
	// scenario document. A name present here resolves to its scenario spec
	// instead of the catalog; cells generate the app from the spec on
	// demand, exactly like catalog loads.
	ScenarioApps map[string]ScenarioApp
	// Faults, when non-nil and enabled, injects device-farm failures into
	// every run of the campaign (chaos campaigns); each cell derives its
	// own deterministic fault plan from its cell seed.
	Faults *faults.Config
	// CoreConfig optionally overrides TaOPT's coordinator configuration for
	// every run of the campaign (ablations and the legacy-analyzer
	// differential); nil uses the mode's defaults.
	CoreConfig *core.Config
	// Transport selects the coordination transport for every run of the
	// campaign (default TransportInline). Conformance: the choice must not
	// change any summary the renderers read.
	Transport Transport
	// Workers bounds the goroutine pool Prefetch computes missing cells on.
	// 0 or 1 runs serially; results are identical either way — each cell's
	// seed derives from its key alone, and Prefetch merges in deterministic
	// key order.
	Workers int
	// BinTraceDir, when non-empty, streams every computed cell's run into
	// that directory as a binary trace file (internal/trace/bin), named
	// <app>_<tool>_<setting>_seed<seed>.taoptb with spaces dashed — the
	// corpus that cmd/tracetool's analytics stream over. Each cell writes
	// its own file, so fleet workers never contend.
	BinTraceDir string
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Apps) == 0 {
		c.Apps = apps.Names()
	}
	if len(c.Tools) == 0 {
		c.Tools = []string{"monkey", "ape", "wctester"}
	}
	if c.Instances == 0 {
		c.Instances = DefaultInstances
	}
	if c.Duration == 0 {
		c.Duration = DefaultDuration
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Campaign executes and caches evaluation runs. Each (app, tool, setting)
// cell runs at most once; all experiment renderers share the cache, so
// regenerating every table and figure costs one pass over the grid.
type Campaign struct {
	cfg   CampaignConfig
	cells map[CellKey]*CellSummary
	stats FleetStats
}

// FleetStats is the campaign's cache-and-pool accounting: how many cells
// were actually simulated, how many lookups the cache absorbed, and how the
// Prefetch batches spread across the worker pool (per-slot job counts from
// the most recent batch; assignment is racy by design, results never are).
type FleetStats struct {
	CellsComputed int
	CacheHits     int
	Workers       int
	JobsPerWorker []int
}

// NewCampaign returns an empty campaign with the given configuration.
func NewCampaign(cfg CampaignConfig) *Campaign {
	return &Campaign{cfg: cfg.withDefaults(), cells: make(map[CellKey]*CellSummary)}
}

// Config returns the campaign's effective configuration.
func (c *Campaign) Config() CampaignConfig { return c.cfg }

// Apps returns the campaign's app list (sorted).
func (c *Campaign) Apps() []string {
	out := append([]string(nil), c.cfg.Apps...)
	sort.Strings(out)
	return out
}

// Tools returns the campaign's tool list.
func (c *Campaign) Tools() []string { return append([]string(nil), c.cfg.Tools...) }

// cellSeed derives a deterministic seed per cell so adding cells never
// perturbs existing ones.
func (c *Campaign) cellSeed(key CellKey) int64 {
	h := int64(1469598103934665603)
	for _, s := range []string{key.App, key.Tool, key.Setting.String()} {
		for i := 0; i < len(s); i++ {
			h ^= int64(s[i])
			h *= 1099511628211
		}
	}
	return h ^ c.cfg.Seed
}

// Cell runs (or returns the cached summary of) one grid cell.
func (c *Campaign) Cell(appName, tool string, setting Setting) (*CellSummary, error) {
	key := CellKey{App: appName, Tool: tool, Setting: setting}
	if s, ok := c.cells[key]; ok {
		c.stats.CacheHits++
		return s, nil
	}
	s, err := c.computeCell(key)
	if err != nil {
		return nil, err
	}
	c.stats.CellsComputed++
	c.cells[key] = s
	c.logProgress(s)
	return s, nil
}

// FleetStats returns the campaign's cache and worker-pool accounting so far.
func (c *Campaign) FleetStats() FleetStats {
	st := c.stats
	st.JobsPerWorker = append([]int(nil), c.stats.JobsPerWorker...)
	return st
}

// computeCell executes one cell without touching the cache or the progress
// writer, so fleet workers can run it concurrently: a cell is one
// self-contained simulation whose seed derives from its key alone.
func (c *Campaign) computeCell(key CellKey) (*CellSummary, error) {
	aut, hash, err := c.loadApp(key.App)
	if err != nil {
		return nil, err
	}
	cfg := RunConfig{
		App:          aut,
		Tool:         key.Tool,
		Setting:      key.Setting,
		Instances:    c.cfg.Instances,
		Duration:     c.cfg.Duration,
		SampleEvery:  c.cfg.SampleEvery,
		Seed:         c.cellSeed(key),
		ScenarioHash: hash,
		CoreConfig:   c.cfg.CoreConfig,
		Faults:       c.cfg.Faults,
		Transport:    c.cfg.Transport,
	}
	var binFile *os.File
	if c.cfg.BinTraceDir != "" {
		binFile, err = os.Create(filepath.Join(c.cfg.BinTraceDir, CellTraceName(key, cfg.Seed)))
		if err != nil {
			return nil, fmt.Errorf("harness: creating binary trace: %w", err)
		}
		cfg.BinTrace = binFile
	}
	res, err := Run(cfg)
	if binFile != nil {
		if cerr := binFile.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("harness: closing binary trace: %w", cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	s := summarize(key, res, c.cfg.Instances)
	s.Hash = hash
	return s, nil
}

// CellTraceName is the deterministic binary-trace filename of one cell run:
// app, tool, setting and seed joined with underscores (spaces dashed), with
// the .taoptb extension. Campaign output directories stay diffable because
// the name is a pure function of the cell.
func CellTraceName(key CellKey, seed int64) string {
	clean := func(s string) string { return strings.ReplaceAll(s, " ", "-") }
	return fmt.Sprintf("%s_%s_%s_seed%d.taoptb", clean(key.App), clean(key.Tool), key.Setting, seed)
}

func (c *Campaign) logProgress(s *CellSummary) {
	if c.cfg.Progress != nil {
		fmt.Fprintf(c.cfg.Progress, "ran %-60s coverage=%-7d crashes=%-3d ui-overlap=%.1f hash=%.12s\n",
			s.Key.String(), s.Union, s.UniqueCrashes, s.UIOccAverage, s.Hash)
	}
}

// Prefetch computes the missing cells of the (apps × tools × settings)
// sub-grid on the campaign's worker pool and merges them into the cache. A
// nil tools slice means the campaign's full tool list. Merging and progress
// logging happen on the calling goroutine in deterministic key order
// (sorted apps, then tools and settings as given), so a parallel campaign's
// cache, summaries and progress stream are byte-identical to a serial one;
// the first cell error is returned after the whole batch settles.
func (c *Campaign) Prefetch(tools []string, settings ...Setting) error {
	if tools == nil {
		tools = c.cfg.Tools
	}
	var keys []CellKey
	for _, appName := range c.Apps() {
		for _, tool := range tools {
			for _, setting := range settings {
				key := CellKey{App: appName, Tool: tool, Setting: setting}
				if _, ok := c.cells[key]; !ok {
					keys = append(keys, key)
				}
			}
		}
	}
	workers := c.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	results, pool := fleet.MapTracked(workers, len(keys), func(i int) (*CellSummary, error) {
		return c.computeCell(keys[i])
	})
	if pool.Workers > 0 {
		c.stats.Workers = pool.Workers
		c.stats.JobsPerWorker = pool.JobsPerWorker
	}
	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		c.stats.CellsComputed++
		c.cells[r.Value.Key] = r.Value
		c.logProgress(r.Value)
	}
	return firstErr
}

// summarize reduces a RunResult to the digest the renderers need, computing
// the preliminary-study offline partition for baseline cells while the
// traces are still available.
func summarize(key CellKey, res *RunResult, instances int) *CellSummary {
	s := &CellSummary{
		Key:           key,
		Union:         res.Union.Count(),
		UnionSet:      res.Union,
		InstanceSets:  res.InstanceSets(),
		Timeline:      res.Timeline,
		UniqueCrashes: res.UniqueCrashes,
		DistinctUIs:   len(res.UIOccurrences),
		UIOccAverage:  res.UIOccurrenceAverage(),
		WallUsed:      res.WallUsed,
		MachineUsed:   res.MachineUsed,
		Events:        res.Events,
		Subspaces:     len(res.Subspaces),
	}
	s.FailedInstances = res.FailedInstances
	s.OrphansPending = res.OrphansPending
	s.FaultsInjected = res.Transport.Injected()
	if key.Setting == BaselineParallel {
		s.OfflineSubspaces, s.OverlapHist = subspaceOverlap(res, instances)
	}
	return s
}

// subspaceOverlap applies the offline UI-subspace partition to the combined
// baseline traces and counts, per subspace, how many instances explored it
// (Section 3.1's "Measuring overlaps of UI subspace exploration"). An
// instance counts as exploring a subspace if it visited at least two of its
// screens (or all of a smaller one) — touching a single screen of a region
// is passing by, not exploring.
func subspaceOverlap(res *RunResult, instances int) (int, []int) {
	b := graph.NewBuilder()
	for _, inst := range res.Instances {
		b.AddTrace(inst.Trace)
	}
	g := b.Graph()
	part := graph.OfflinePartition(g, graph.DefaultPartitionOptions())

	n := len(res.Instances)
	if n > instances {
		n = instances
	}
	visited := make([]map[int]bool, n) // instance -> vertex set
	for i := 0; i < n; i++ {
		visited[i] = make(map[int]bool)
		for _, ev := range res.Instances[i].Trace.Events() {
			if ev.Enforced {
				continue
			}
			if v, ok := g.VertexOf(ev.To); ok {
				visited[i][v] = true
			}
		}
	}

	explored := make([]map[int]bool, len(part.Groups))
	for gi, grp := range part.Groups {
		need := 2
		if len(grp) < need {
			need = len(grp)
		}
		per := make(map[int]bool)
		for i := 0; i < n; i++ {
			count := 0
			for _, v := range grp {
				if visited[i][v] {
					count++
					if count >= need {
						break
					}
				}
			}
			if count >= need {
				per[i] = true
			}
		}
		explored[gi] = per
	}
	return len(part.Groups), metrics.OverlapHistogram(explored, instances)
}
