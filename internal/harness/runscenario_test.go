package harness

import (
	"bytes"
	"strings"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/scenario"
	"taopt/internal/sim"
)

func mustCompileRunT(t *testing.T, src string) *scenario.RunSpec {
	t.Helper()
	rs, err := scenario.CompileRun([]byte(src))
	if err != nil {
		t.Fatalf("CompileRun: %v", err)
	}
	return rs
}

func TestFromRunScenarioCatalog(t *testing.T) {
	rs := mustCompileRunT(t, `{"kind": "run", "name": "cell", "run": {
		"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
		"instances": 4, "durationMin": 8, "budgetMin": 32, "sampleEverySec": 5,
		"seed": 15, "telemetry": true, "faults": {"failureRate": 0.2}}}`)
	cfg, err := FromRunScenario(rs)
	if err != nil {
		t.Fatalf("FromRunScenario: %v", err)
	}
	if cfg.App == nil || cfg.App.Name != "Filters For Selfie" {
		t.Fatalf("app not resolved: %+v", cfg.App)
	}
	if cfg.ScenarioHash != apps.Hash("Filters For Selfie") {
		t.Fatalf("ScenarioHash = %s, want the catalog document hash", cfg.ScenarioHash)
	}
	if cfg.Tool != "monkey" || cfg.Setting != TaOPTDuration {
		t.Fatalf("tool/setting wrong: %+v", cfg)
	}
	if cfg.Instances != 4 || cfg.Duration != sim.Duration(480e9) || cfg.MachineBudget != sim.Duration(32*60e9) ||
		cfg.SampleEvery != sim.Duration(5e9) || cfg.Seed != 15 || !cfg.Telemetry {
		t.Fatalf("knobs wrong: %+v", cfg)
	}
	if cfg.Faults == nil || cfg.Faults.FailureRate != 0.2 {
		t.Fatalf("faults = %+v", cfg.Faults)
	}
}

func TestFromRunScenarioInline(t *testing.T) {
	rs := mustCompileRunT(t, `{"kind": "run", "name": "inline", "run": {
		"inlineApp": {"name": "Tiny", "app": {"subspaces": 4}},
		"tool": "monkey", "setting": "baseline"}}`)
	cfg, err := FromRunScenario(rs)
	if err != nil {
		t.Fatalf("FromRunScenario: %v", err)
	}
	if cfg.App == nil || cfg.App.Name != "Tiny" {
		t.Fatalf("inline app not generated: %+v", cfg.App)
	}
	if cfg.ScenarioHash != rs.App.Hash {
		t.Fatalf("ScenarioHash = %s, want the inline document hash %s", cfg.ScenarioHash, rs.App.Hash)
	}
	// Lowered defaults stay zero; Run applies the usual defaults.
	if cfg.Instances != 0 || cfg.Duration != 0 {
		t.Fatalf("omitted fields must stay zero: %+v", cfg)
	}
}

func TestFromRunScenarioRejectsUnknowns(t *testing.T) {
	rs := mustCompileRunT(t, `{"kind": "run", "name": "x", "run": {
		"app": "NopeApp", "tool": "monkey", "setting": "baseline"}}`)
	if _, err := FromRunScenario(rs); err == nil {
		t.Fatal("unknown catalog app accepted")
	}
	rs = mustCompileRunT(t, `{"kind": "run", "name": "x", "run": {
		"app": "Zedge", "tool": "hypermonkey", "setting": "baseline"}}`)
	if _, err := FromRunScenario(rs); err == nil {
		t.Fatal("unknown tool accepted")
	}
}

// A lowered run scenario must be indistinguishable from the equivalent
// hand-built RunConfig — the property the service's cache-equivalence oracle
// (served export == offline taopt export) stands on.
func TestFromRunScenarioMatchesDirectConfig(t *testing.T) {
	rs := mustCompileRunT(t, `{"kind": "run", "name": "eq", "run": {
		"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
		"durationMin": 6, "seed": 7}}`)
	cfg, err := FromRunScenario(rs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := RunConfig{
		App:          apps.MustLoad("Filters For Selfie"),
		Tool:         "monkey",
		Setting:      TaOPTDuration,
		Duration:     6 * sim.Duration(60e9),
		Seed:         7,
		ScenarioHash: apps.Hash("Filters For Selfie"),
	}
	b, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	if a.Union.Count() != b.Union.Count() || a.UniqueCrashes != b.UniqueCrashes || a.Events != b.Events {
		t.Fatalf("lowered run diverges from direct config: %d/%d/%d vs %d/%d/%d",
			a.Union.Count(), a.UniqueCrashes, a.Events, b.Union.Count(), b.UniqueCrashes, b.Events)
	}
}

func TestCellSummaryCarriesScenarioHash(t *testing.T) {
	cfg := tinyConfig()
	var progress bytes.Buffer
	cfg.Progress = &progress
	c := NewCampaign(cfg)
	cell := mustCellT(t, c, "Filters For Selfie", "monkey", BaselineParallel)
	want := apps.Hash("Filters For Selfie")
	if cell.Hash != want {
		t.Fatalf("cell hash = %q, want catalog hash %q", cell.Hash, want)
	}
	line := progress.String()
	if !strings.Contains(line, "hash="+want[:12]) {
		t.Fatalf("progress line missing the scenario hash prefix: %q", line)
	}
}
