package harness

import (
	"testing"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// TestCoordinationInvariants runs a full TaOPT campaign and checks the
// system-level guarantees end to end on the recorded traces:
//
//  1. dedication: after a subspace is accepted, no non-owner instance's
//     tool-caused transition ever *stays* inside it (enforcement steering is
//     allowed to pass through, and so is the landing transition that the
//     steering then corrects);
//  2. blocks are observable: enforced transitions appear only on instances
//     that hold blocks;
//  3. accounting: every instance's trace fits inside its allocation window.
func TestCoordinationInvariants(t *testing.T) {
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Marvel Comics"),
		Tool:     "monkey",
		Setting:  TaOPTDuration,
		Duration: 25 * sim.Duration(60e9),
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Skip("no subspaces identified on this seed; invariants vacuous")
	}

	// Build membership with acceptance times.
	type owned struct {
		owner int
		at    sim.Duration
	}
	membership := make(map[ui.Signature]owned)
	for _, sub := range res.Subspaces {
		for m := range sub.Members {
			membership[m] = owned{owner: sub.Owner, at: sub.FoundAt}
		}
	}

	// Ownership transfers (orphan re-dedication) and subspace growth
	// (merges adopt the original acceptance time) make exact per-event
	// ownership unrecoverable from the final state, so the dedication
	// guarantee is checked comparatively: measure "foreign dwell" — events
	// where an instance sits on a screen of a subspace it does not own —
	// identically on this run and on an uncoordinated baseline of the same
	// app and seed. Coordination must cut it by a large factor.
	foreignDwell := func(instances []InstanceResult, ownerOf func(id int) bool) func() (int, int) {
		return func() (int, int) {
			dwell, total := 0, 0
			for _, inst := range instances {
				for _, ev := range inst.Trace.Events() {
					if ev.Enforced {
						continue
					}
					total++
					o, isMember := membership[ev.To]
					if !isMember || ev.At < o.at {
						continue
					}
					if inst.ID != o.owner || !ownerOf(inst.ID) {
						if inst.ID != o.owner {
							dwell++
						}
					}
				}
			}
			return dwell, total
		}
	}
	optDwell, optTotal := foreignDwell(res.Instances, func(int) bool { return true })()

	base, err := Run(RunConfig{
		App:      mustLoad(t, "Marvel Comics"),
		Tool:     "monkey",
		Setting:  BaselineParallel,
		Duration: 25 * sim.Duration(60e9),
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseDwell, baseTotal := foreignDwell(base.Instances, func(int) bool { return true })()

	optRate := float64(optDwell) / float64(optTotal)
	baseRate := float64(baseDwell) / float64(baseTotal)
	if !(optRate < baseRate/2) {
		t.Fatalf("coordination did not suppress foreign dwell: taopt %.1f%% vs baseline %.1f%%",
			100*optRate, 100*baseRate)
	}

	for _, inst := range res.Instances {
		evs := inst.Trace.Events()
		if len(evs) == 0 {
			continue
		}
		if evs[0].At < inst.Allocated {
			t.Fatalf("instance %d has events before allocation", inst.ID)
		}
		// De-allocation is stamped at the in-flight action's start while the
		// action's trace event is stamped at its completion, so the last
		// event may trail the release by up to one action (plus steering).
		slack := 30 * sim.Duration(1e9)
		if last := evs[len(evs)-1].At; inst.Released != 0 && last > inst.Released+slack {
			t.Fatalf("instance %d has events at %v after release %v", inst.ID, last, inst.Released)
		}
		// Traces start with a launch.
		if evs[0].Action.Kind != trace.ActionLaunch {
			t.Fatalf("instance %d trace does not start with a launch", inst.ID)
		}
	}
}

// TestBaselineHasNoEnforcement checks the control: uncoordinated runs never
// contain TaOPT-injected transitions.
func TestBaselineHasNoEnforcement(t *testing.T) {
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Filters For Selfie"),
		Tool:     "ape",
		Setting:  BaselineParallel,
		Duration: 10 * sim.Duration(60e9),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range res.Instances {
		for _, ev := range inst.Trace.Events() {
			if ev.Enforced {
				t.Fatal("baseline run contains enforced transitions")
			}
		}
	}
	if len(res.Subspaces) != 0 {
		t.Fatal("baseline run reports subspaces")
	}
}

// TestPATSConfinesSlaves checks the PATS baseline's mechanics: slaves receive
// blocks (the master does not) and the master keeps exploring freely.
func TestPATSConfinesSlaves(t *testing.T) {
	res, err := Run(RunConfig{
		App:      mustLoad(t, "Filters For Selfie"),
		Tool:     "monkey",
		Setting:  PATSMasterSlave,
		Duration: 15 * sim.Duration(60e9),
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != DefaultInstances {
		t.Fatalf("instances = %d", len(res.Instances))
	}
	// The master (instance 0) must never see enforcement; slaves should.
	masterEnforced, slaveEnforced := 0, 0
	for _, inst := range res.Instances {
		for _, ev := range inst.Trace.Events() {
			if !ev.Enforced {
				continue
			}
			if inst.ID == 0 {
				masterEnforced++
			} else {
				slaveEnforced++
			}
		}
	}
	if masterEnforced > 0 {
		t.Fatalf("master saw %d enforced transitions", masterEnforced)
	}
	if slaveEnforced == 0 {
		t.Fatal("no slave was ever confined; dispatch is not working")
	}
}
