package harness

import (
	"reflect"
	"testing"

	"taopt/internal/app"
	"taopt/internal/apps"
	"taopt/internal/core"
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/toller"
	"taopt/internal/tools"
	"taopt/internal/trace"
)

// walkTrace drives one tool-controlled instance for steps transitions on a
// fresh device, without the scheduler: the cheapest way to manufacture a
// realistic per-app trace for offline analysis.
func walkTrace(t *testing.T, aut *app.App, toolName string, seed int64, steps int) (*trace.Log, *trace.Book) {
	t.Helper()
	book := trace.NewBook()
	rng := sim.NewRNG(seed)
	farm := device.NewFarm(aut, rng.Fork(1), 1, true)
	al, err := farm.Allocate(0)
	if err != nil {
		t.Fatal(err)
	}
	driver := toller.NewDriver(al.Emu, book, 0)
	tool := tools.MustNew(toolName, rng.Fork(2).Int63())
	now := sim.Duration(0)
	for i := 0; i < steps; i++ {
		act := tool.Choose(driver.View())
		res := driver.Perform(act, now)
		now += res.Latency
	}
	return driver.Trace(), book
}

// candidateSeq replays a captured trace through an Analyzer and collects the
// emitted candidates, resetting the instance after each one as the
// coordinator does on acceptance.
func candidateSeq(log *trace.Log, book *trace.Book, legacy bool) []core.Candidate {
	cfg := core.DefaultAnalyzerConfig(30 * sim.Duration(1e9))
	cfg.AnalyzeEvery = 5
	cfg.WindowCap = 80
	cfg.ScoreMax = 0.9
	cfg.Legacy = legacy
	a := core.NewAnalyzer(cfg, book)
	var out []core.Candidate
	log.Replay(func(ev trace.Event) {
		if c, ok := a.Observe(ev); ok {
			out = append(out, c)
			a.ResetInstance(ev.Instance)
		}
	})
	return out
}

// TestTrackerLegacyCandidateEquivalenceCatalog is the equivalence oracle the
// incremental rewrite is gated on: for every app in the catalog × every tool
// × 20 seeds, the SpaceTracker path must produce byte-identical Candidate
// sequences to the legacy FindSpace path — same candidates, same order, same
// float bits in every score.
func TestTrackerLegacyCandidateEquivalenceCatalog(t *testing.T) {
	const seeds = 20
	toolNames := []string{"monkey", "ape", "wctester"}
	totalCandidates := 0
	for _, appName := range apps.Names() {
		aut, err := apps.Load(appName)
		if err != nil {
			t.Fatal(err)
		}
		for _, toolName := range toolNames {
			for seed := int64(0); seed < seeds; seed++ {
				log, book := walkTrace(t, aut, toolName, seed, 140)
				legacy := candidateSeq(log, book, true)
				tracked := candidateSeq(log, book, false)
				if !reflect.DeepEqual(legacy, tracked) {
					t.Fatalf("%s/%s seed %d: candidate sequences diverged\nlegacy  %+v\ntracked %+v",
						appName, toolName, seed, legacy, tracked)
				}
				totalCandidates += len(legacy)
			}
		}
	}
	// The oracle is only convincing if the traces actually produce
	// candidates; an always-empty comparison would pass vacuously.
	if totalCandidates < 100 {
		t.Fatalf("only %d candidates across the whole catalog; oracle is too weak", totalCandidates)
	}
}

// legacyCoreConfig returns a coordinator override that differs from the
// defaults only in using the legacy analyzer path.
func legacyCoreConfig() *core.Config {
	return &core.Config{Analyzer: core.AnalyzerConfig{Legacy: true}}
}

// TestCampaignLegacyAnalyzerIdenticalCells runs full TaOPT campaigns —
// coordinator, enforcement, telemetry cadence and all — on both analyzer
// paths and requires identical cell summaries: the end-to-end form of the
// equivalence argument.
func TestCampaignLegacyAnalyzerIdenticalCells(t *testing.T) {
	settings := []Setting{TaOPTDuration, TaOPTResource}
	build := func(coreCfg *core.Config) *Campaign {
		cfg := tinyConfig()
		cfg.Apps = []string{"Filters For Selfie", "Marvel Comics"}
		cfg.CoreConfig = coreCfg
		return NewCampaign(cfg)
	}
	tracked := build(nil)
	legacy := build(legacyCoreConfig())
	for _, c := range []*Campaign{tracked, legacy} {
		if err := c.Prefetch(nil, settings...); err != nil {
			t.Fatal(err)
		}
	}
	for _, appName := range tracked.Apps() {
		for _, setting := range settings {
			a := mustCellT(t, tracked, appName, "monkey", setting)
			b := mustCellT(t, legacy, appName, "monkey", setting)
			if a.Union != b.Union || a.UniqueCrashes != b.UniqueCrashes ||
				a.DistinctUIs != b.DistinctUIs || a.UIOccAverage != b.UIOccAverage ||
				a.WallUsed != b.WallUsed || a.MachineUsed != b.MachineUsed ||
				a.Subspaces != b.Subspaces || a.Events != b.Events ||
				!reflect.DeepEqual(a.Timeline, b.Timeline) {
				t.Fatalf("cell %s differs between tracker and legacy analyzer:\n%+v\nvs\n%+v",
					a.Key, a, b)
			}
			if a.Events == 0 {
				t.Fatalf("cell %s recorded no scheduler events", a.Key)
			}
		}
	}
}

// TestCampaignSeedPermutationInvariance is the metamorphic check on the
// multi-seed aggregation: executing the same seed set in a different order
// (fresh campaigns each time) must yield identical per-seed summaries and
// identical aggregate stats — no state may bleed between runs.
func TestCampaignSeedPermutationInvariance(t *testing.T) {
	seedSets := [][]int64{{3, 5, 9, 11}, {11, 9, 5, 3}, {9, 3, 11, 5}}
	type agg struct {
		union, crashes, distinct, subspaces int
		events                              uint64
		wall                                sim.Duration
	}
	perSeed := make([]map[int64]*CellSummary, len(seedSets))
	var aggs []agg
	for i, seedSet := range seedSets {
		perSeed[i] = make(map[int64]*CellSummary)
		var a agg
		for _, seed := range seedSet {
			cfg := tinyConfig()
			cfg.Seed = seed
			c := NewCampaign(cfg)
			s := mustCellT(t, c, "Filters For Selfie", "monkey", TaOPTDuration)
			perSeed[i][seed] = s
			a.union += s.Union
			a.crashes += s.UniqueCrashes
			a.distinct += s.DistinctUIs
			a.subspaces += s.Subspaces
			a.events += s.Events
			a.wall += s.WallUsed
		}
		aggs = append(aggs, a)
	}
	for i := 1; i < len(seedSets); i++ {
		if aggs[i] != aggs[0] {
			t.Fatalf("aggregate stats depend on seed order:\n%+v\nvs\n%+v", aggs[i], aggs[0])
		}
		for seed, want := range perSeed[0] {
			got := perSeed[i][seed]
			if got.Union != want.Union || got.Events != want.Events ||
				got.Subspaces != want.Subspaces || got.WallUsed != want.WallUsed {
				t.Fatalf("seed %d summary depends on execution order:\n%+v\nvs\n%+v", seed, got, want)
			}
		}
	}
}

// TestFleetWorkerInvarianceBothAnalyzerPaths extends the worker-count
// invariance (see TestFleetStatsCellsComputedWorkerInvariance) to the
// tracker path: on either analyzer path, any pool width must compute the
// same number of cells with identical content — and the two paths must
// agree with each other.
func TestFleetWorkerInvarianceBothAnalyzerPaths(t *testing.T) {
	settings := []Setting{TaOPTDuration}
	apps := []string{"Filters For Selfie", "Marvel Comics"}
	type variant struct {
		legacy  bool
		workers int
	}
	variants := []variant{{false, 1}, {false, 4}, {true, 1}, {true, 4}}
	var ref *Campaign
	for _, v := range variants {
		cfg := tinyConfig()
		cfg.Apps = apps
		cfg.Workers = v.workers
		if v.legacy {
			cfg.CoreConfig = legacyCoreConfig()
		}
		c := NewCampaign(cfg)
		if err := c.Prefetch(nil, settings...); err != nil {
			t.Fatal(err)
		}
		if st := c.FleetStats(); st.CellsComputed != len(apps) {
			t.Fatalf("legacy=%v workers=%d: CellsComputed = %d, want %d",
				v.legacy, v.workers, st.CellsComputed, len(apps))
		}
		if ref == nil {
			ref = c
			continue
		}
		for _, appName := range c.Apps() {
			a := mustCellT(t, ref, appName, "monkey", TaOPTDuration)
			b := mustCellT(t, c, appName, "monkey", TaOPTDuration)
			if a.Union != b.Union || a.Subspaces != b.Subspaces ||
				a.Events != b.Events || a.WallUsed != b.WallUsed ||
				a.UIOccAverage != b.UIOccAverage {
				t.Fatalf("legacy=%v workers=%d: cell %s diverges from reference:\n%+v\nvs\n%+v",
					v.legacy, v.workers, a.Key, b, a)
			}
		}
	}
}
