package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"taopt/internal/coverage"
	"taopt/internal/sim"
	"taopt/internal/ui"
)

func set(n int, ids ...int) *coverage.Set {
	s := coverage.NewSet(n)
	s.AddAll(ids)
	return s
}

func TestJaccard(t *testing.T) {
	a := set(100, 1, 2, 3, 4)
	b := set(100, 3, 4, 5, 6)
	if got := Jaccard(a, b); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(set(10), set(10)); got != 1 {
		t.Fatalf("empty-empty Jaccard = %v, want 1", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Fatal("self Jaccard must be 1")
	}
}

func TestJaccardProperties(t *testing.T) {
	if err := quick.Check(func(as, bs []uint8) bool {
		a, b := coverage.NewSet(256), coverage.NewSet(256)
		for _, v := range as {
			a.Add(int(v))
		}
		for _, v := range bs {
			b.Add(int(v))
		}
		j := Jaccard(a, b)
		return j >= 0 && j <= 1 && math.Abs(j-Jaccard(b, a)) < 1e-15
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAJS(t *testing.T) {
	sets := []*coverage.Set{
		set(100, 1, 2),
		set(100, 1, 2),
		set(100, 3, 4),
	}
	// Pairs: (0,1)=1, (0,2)=0, (1,2)=0 -> AJS = 1/3.
	if got := AJS(sets); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("AJS = %v, want 1/3", got)
	}
	if AJS(sets[:1]) != 0 {
		t.Fatal("AJS of one set must be 0")
	}
}

func tl(points ...Point) Timeline { return Timeline(points) }

func TestTimelineReach(t *testing.T) {
	timeline := tl(
		Point{Wall: 10, Machine: 50, Covered: 100},
		Point{Wall: 20, Machine: 100, Covered: 200},
		Point{Wall: 30, Machine: 150, Covered: 300},
	)
	if at, ok := timeline.WallToReach(200); !ok || at != 20 {
		t.Fatalf("WallToReach = %v %v", at, ok)
	}
	if at, ok := timeline.MachineToReach(250); !ok || at != 150 {
		t.Fatalf("MachineToReach = %v %v", at, ok)
	}
	if _, ok := timeline.WallToReach(999); ok {
		t.Fatal("unreachable target reported reached")
	}
	if timeline.FinalCoverage() != 300 {
		t.Fatal("FinalCoverage")
	}
	if tl().FinalCoverage() != 0 {
		t.Fatal("empty timeline FinalCoverage")
	}
}

func TestDurationSaved(t *testing.T) {
	timeline := tl(
		Point{Wall: 15 * sim.Duration(60e9), Covered: 500},
		Point{Wall: 60 * sim.Duration(60e9), Covered: 900},
	)
	lp := 60 * sim.Duration(60e9)
	if got := DurationSaved(timeline, 500, lp); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("DurationSaved = %v, want 0.75", got)
	}
	if got := DurationSaved(timeline, 10000, lp); got != 0 {
		t.Fatal("unreached target must save 0")
	}
	if got := DurationSaved(timeline, 500, 0); got != 0 {
		t.Fatal("zero budget must save 0")
	}
}

func TestResourceSaved(t *testing.T) {
	timeline := tl(
		Point{Machine: 2 * sim.Duration(3600e9), Covered: 500},
		Point{Machine: 5 * sim.Duration(3600e9), Covered: 900},
	)
	budget := 5 * sim.Duration(3600e9)
	if got := ResourceSaved(timeline, 500, budget); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("ResourceSaved = %v, want 0.6", got)
	}
}

func TestUIOccurrenceAverage(t *testing.T) {
	counts := map[ui.Signature]int{1: 10, 2: 20, 3: 30}
	if got := UIOccurrenceAverage(counts); got != 20 {
		t.Fatalf("UIOccurrenceAverage = %v, want 20", got)
	}
	if UIOccurrenceAverage(nil) != 0 {
		t.Fatal("empty map")
	}
}

func TestOverlapHistogram(t *testing.T) {
	explored := []map[int]bool{
		{0: true},
		{0: true, 1: true, 2: true},
		{0: true, 1: true, 2: true, 3: true, 4: true},
		{},
	}
	hist := OverlapHistogram(explored, 5)
	want := []int{1, 0, 1, 0, 1}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
}

func TestBehaviorPreservation(t *testing.T) {
	base := set(100, 1, 2, 3, 4)
	coord := set(100, 3, 4, 5, 6, 7)
	j, missed := BehaviorPreservation(base, coord)
	if math.Abs(j-2.0/7.0) > 1e-12 {
		t.Fatalf("jaccard = %v", j)
	}
	if math.Abs(missed-0.5) > 1e-12 {
		t.Fatalf("missed = %v, want 0.5", missed)
	}
	if _, m := BehaviorPreservation(set(100), coord); m != 0 {
		t.Fatal("empty baseline: missed must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.P25 != 1.75 || s.P75 != 3.25 {
		t.Fatalf("quartiles = %v %v", s.P25, s.P75)
	}
	if s.SampleStdDeviation < 1.29 || s.SampleStdDeviation > 1.30 {
		t.Fatalf("stddev = %v", s.SampleStdDeviation)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty Summarize")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.SampleStdDeviation != 0 {
		t.Fatalf("single-value Summarize = %+v", one)
	}
}
