// Package metrics implements the paper's evaluation metrics: Jaccard
// similarity and Average Jaccard Similarity over covered-method sets (Eq. 1),
// UI-occurrence overlap (Table 6), subspace overlap frequency (Table 1),
// coverage timelines, and the duration/resource savings calculations of
// RQ3/RQ4.
package metrics

import (
	"math"
	"sort"

	"taopt/internal/coverage"
	"taopt/internal/sim"
	"taopt/internal/ui"
)

// Jaccard returns |A∩B| / |A∪B| for two covered-method sets; the similarity
// of two empty sets is defined as 1 (identical behaviour).
func Jaccard(a, b *coverage.Set) float64 {
	union := a.UnionCount(b)
	if union == 0 {
		return 1
	}
	return float64(a.IntersectCount(b)) / float64(union)
}

// AJS computes the Average Jaccard Similarity across all unordered pairs of
// testing instances' covered-method sets (Eq. 1). It returns 0 for fewer
// than two sets.
func AJS(sets []*coverage.Set) float64 {
	n := len(sets)
	if n < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += Jaccard(sets[i], sets[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// Point is one sample of a run's progress.
type Point struct {
	Wall    sim.Duration // wall-clock time since run start
	Machine sim.Duration // cumulative machine time across instances
	Covered int          // cumulative distinct methods across instances
	Crashes int          // cumulative unique crashes
	// AJS is the Average Jaccard Similarity across the per-instance
	// covered-method sets at this sample (Figure 3's series).
	AJS float64
}

// Timeline is a monotone sequence of samples.
type Timeline []Point

// FinalCoverage returns the last sample's coverage (0 for an empty timeline).
func (t Timeline) FinalCoverage() int {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].Covered
}

// WallToReach returns the earliest wall-clock time at which coverage reached
// target, and whether it ever did.
func (t Timeline) WallToReach(target int) (sim.Duration, bool) {
	for _, p := range t {
		if p.Covered >= target {
			return p.Wall, true
		}
	}
	return 0, false
}

// MachineToReach returns the earliest machine time at which coverage reached
// target, and whether it ever did.
func (t Timeline) MachineToReach(target int) (sim.Duration, bool) {
	for _, p := range t {
		if p.Covered >= target {
			return p.Machine, true
		}
	}
	return 0, false
}

// DurationSaved implements RQ3's metric: the fraction of the testing
// duration budget lp that a TaOPT run leaves unused at the moment it reaches
// the baseline's full-duration coverage. Returns 0 if the target is never
// reached (no saving).
func DurationSaved(t Timeline, baselineFinal int, lp sim.Duration) float64 {
	at, ok := t.WallToReach(baselineFinal)
	if !ok || lp == 0 {
		return 0
	}
	saved := float64(lp-at) / float64(lp)
	if saved < 0 {
		return 0
	}
	return saved
}

// ResourceSaved implements RQ4's metric: the fraction of the machine-time
// budget left unused when the run reaches the baseline's full-budget
// coverage. Returns 0 if the target is never reached.
func ResourceSaved(t Timeline, baselineFinal int, budget sim.Duration) float64 {
	at, ok := t.MachineToReach(baselineFinal)
	if !ok || budget == 0 {
		return 0
	}
	saved := float64(budget-at) / float64(budget)
	if saved < 0 {
		return 0
	}
	return saved
}

// UIOccurrenceAverage computes Table 6's metric: the average number of
// occurrences of each distinct abstract UI screen observed during testing
// across all instances.
func UIOccurrenceAverage(counts map[ui.Signature]int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / float64(len(counts))
}

// OverlapHistogram computes Table 1's rows: given, per subspace, the set of
// instances that explored it, it returns hist[k-1] = number of subspaces
// explored by exactly k of n instances.
func OverlapHistogram(explored []map[int]bool, n int) []int {
	hist := make([]int, n)
	for _, set := range explored {
		k := len(set)
		if k == 0 {
			continue
		}
		if k > n {
			k = n
		}
		hist[k-1]++
	}
	return hist
}

// BehaviorPreservation reports how a coordinated run relates to a baseline
// run over covered methods: the Jaccard similarity of the union sets and the
// fraction of baseline-covered methods the coordinated run misses (RQ5's
// behaviour-preservation analysis).
func BehaviorPreservation(baseline, coordinated *coverage.Set) (jaccard, missedFraction float64) {
	jaccard = Jaccard(baseline, coordinated)
	if baseline.Count() == 0 {
		return jaccard, 0
	}
	missed := baseline.DifferenceCount(coordinated)
	return jaccard, float64(missed) / float64(baseline.Count())
}

// Stats summarises a sample of float64 values.
type Stats struct {
	N                  int
	Mean, Min, Max     float64
	P25, Median, P75   float64
	SampleStdDeviation float64
}

// Summarize computes summary statistics (used for the Figure 5/6 box plots).
func Summarize(values []float64) Stats {
	s := Stats{N: len(values)}
	if s.N == 0 {
		return s
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	s.Min, s.Max = v[0], v[len(v)-1]
	var sum float64
	for _, x := range v {
		sum += x
	}
	s.Mean = sum / float64(len(v))
	quantile := func(q float64) float64 {
		if len(v) == 1 {
			return v[0]
		}
		pos := q * float64(len(v)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(v) {
			return v[len(v)-1]
		}
		return v[lo]*(1-frac) + v[lo+1]*frac
	}
	s.P25, s.Median, s.P75 = quantile(0.25), quantile(0.5), quantile(0.75)
	if len(v) > 1 {
		var ss float64
		for _, x := range v {
			d := x - s.Mean
			ss += d * d
		}
		s.SampleStdDeviation = sqrt(ss / float64(len(v)-1))
	}
	return s
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
