package app

import (
	"strings"
	"testing"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec("DetApp", 99)
	a, b := Generate(spec), Generate(spec)
	if a.MethodCount() != b.MethodCount() || len(a.Screens) != len(b.Screens) {
		t.Fatal("same spec must generate identical apps")
	}
	for i := range a.Screens {
		sa, sb := a.Screens[i], b.Screens[i]
		if sa.Activity != sb.Activity || len(sa.Widgets) != len(sb.Widgets) {
			t.Fatalf("screen %d differs", i)
		}
		if a.Render(ScreenID(i), 0).Abstract() != b.Render(ScreenID(i), 0).Abstract() {
			t.Fatalf("screen %d renders differently", i)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	a := Generate(DefaultSpec("V", 1))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedStructure(t *testing.T) {
	spec := DefaultSpec("S", 7)
	spec.Subspaces = 6
	a := Generate(spec)
	if a.Subspaces != 7 {
		t.Fatalf("Subspaces = %d, want 7 (6 + hub)", a.Subspaces)
	}
	// Every non-hub functionality exists and has at least ScreensMin screens.
	counts := make(map[int]int)
	for _, s := range a.Screens {
		counts[s.Subspace]++
	}
	for k := 1; k <= 6; k++ {
		if counts[k] < spec.ScreensMin {
			t.Fatalf("functionality %d has %d screens, want >= %d", k, counts[k], spec.ScreensMin)
		}
	}
	// The hub links to every functionality's entry.
	main := a.Screens[a.Main]
	targets := make(map[int]bool)
	for _, w := range main.Widgets {
		if w.Target >= 0 {
			targets[a.Screens[w.Target].Subspace] = true
		}
	}
	for k := 1; k <= 6; k++ {
		if !targets[k] {
			t.Fatalf("hub has no tab into functionality %d", k)
		}
	}
}

func TestGeneratedMethodsDisjoint(t *testing.T) {
	a := Generate(DefaultSpec("M", 3))
	seen := make(map[MethodID]bool)
	check := func(ms []MethodID) {
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("method %d assigned twice", m)
			}
			seen[m] = true
		}
	}
	for _, s := range a.Screens {
		check(s.VisitMethods)
		for _, w := range s.Widgets {
			check(w.Methods)
		}
	}
	if len(seen) >= a.MethodCount() {
		t.Fatal("no unreachable tail methods")
	}
}

func TestReachableMethods(t *testing.T) {
	a := Generate(DefaultSpec("R", 4))
	reachable := a.ReachableMethods()
	if len(reachable) == 0 || len(reachable) >= a.MethodCount() {
		t.Fatalf("reachable = %d of %d", len(reachable), a.MethodCount())
	}
}

func TestRenderAbstractionStableAcrossVisits(t *testing.T) {
	a := Generate(DefaultSpec("T", 5))
	for i := range a.Screens {
		if a.Render(ScreenID(i), 0).Abstract() != a.Render(ScreenID(i), 17).Abstract() {
			t.Fatalf("screen %d signature varies with visit count", i)
		}
	}
}

func TestRenderDistinctScreensDistinctSignatures(t *testing.T) {
	a := Generate(DefaultSpec("D", 6))
	seen := make(map[ui.Signature]int)
	for i := range a.Screens {
		sig := a.Render(ScreenID(i), 0).Abstract()
		if prev, ok := seen[sig]; ok {
			t.Fatalf("screens %d and %d share a signature", prev, i)
		}
		seen[sig] = i
	}
}

func TestRenderClickableOrderMatchesWidgets(t *testing.T) {
	a := Generate(DefaultSpec("C", 8))
	s := a.Screens[a.Main]
	rendered := a.Render(a.Main, 0)
	paths := ui.Clickables(rendered.Root)
	if len(paths) != len(s.Widgets) {
		t.Fatalf("clickables = %d, widgets = %d", len(paths), len(s.Widgets))
	}
	for i, p := range paths {
		n := rendered.Root
		for _, idx := range p {
			n = n.Children[idx]
		}
		if n.ResourceID != s.Widgets[i].ResourceID {
			t.Fatalf("clickable %d is %q, want widget %q", i, n.ResourceID, s.Widgets[i].ResourceID)
		}
	}
}

func TestPerformNavigation(t *testing.T) {
	a := Generate(DefaultSpec("P", 9))
	rng := sim.NewRNG(1)
	main := a.Screens[a.Main]
	for w := range main.Widgets {
		out := a.Perform(a.Main, w, rng)
		if out.Crash >= 0 {
			continue
		}
		if out.Next != main.Widgets[w].Target {
			t.Fatalf("widget %d: Next = %d, want %d", w, out.Next, main.Widgets[w].Target)
		}
		if len(out.Covered) != len(main.Widgets[w].Methods) {
			t.Fatalf("widget %d covered %d methods, want all %d (CoveragePerFire unset)",
				w, len(out.Covered), len(main.Widgets[w].Methods))
		}
	}
}

func TestPerformCrashTriggers(t *testing.T) {
	a := Generate(DefaultSpec("K", 10))
	// Find a crash widget and force it until it fires.
	var sid ScreenID
	widx := -1
	for i, s := range a.Screens {
		for w := range s.Widgets {
			if s.Widgets[w].CrashSite >= 0 {
				sid, widx = ScreenID(i), w
				break
			}
		}
		if widx >= 0 {
			break
		}
	}
	if widx < 0 {
		t.Fatal("generator planted no crash widgets")
	}
	rng := sim.NewRNG(2)
	fired := false
	for i := 0; i < 10000; i++ {
		if out := a.Perform(sid, widx, rng); out.Crash >= 0 {
			fired = true
			if len(a.CrashSites[out.Crash].Frames) == 0 {
				t.Fatal("fired crash site has no frames")
			}
			break
		}
	}
	if !fired {
		t.Fatal("crash site never fired in 10000 attempts")
	}
}

func TestCoveragePerFireSubsets(t *testing.T) {
	a := Generate(DefaultSpec("F", 11))
	a.CoveragePerFire = 0.3
	rng := sim.NewRNG(3)
	main := a.Screens[a.Main]
	w := 0
	total := len(main.Widgets[w].Methods)
	if total == 0 {
		t.Skip("first widget has no methods")
	}
	partial := false
	for i := 0; i < 50; i++ {
		out := a.Perform(a.Main, w, rng)
		if len(out.Covered) < total {
			partial = true
		}
		if len(out.Covered) > total {
			t.Fatal("covered more methods than the widget has")
		}
	}
	if !partial {
		t.Fatal("CoveragePerFire=0.3 never produced a partial cover")
	}
}

func TestLoginRequired(t *testing.T) {
	spec := DefaultSpec("L", 12)
	spec.LoginRequired = true
	a := Generate(spec)
	if !a.LoginRequired || a.Login < 0 {
		t.Fatal("login screen missing")
	}
	for _, w := range a.Screens[a.Login].Widgets {
		if w.Target >= 0 {
			t.Fatal("login screen must not navigate without the auto-login script")
		}
	}
}

func TestActivities(t *testing.T) {
	a := Generate(DefaultSpec("A", 13))
	acts := a.Activities()
	if len(acts) < 3 {
		t.Fatalf("only %d activities", len(acts))
	}
	seen := make(map[string]bool)
	for _, act := range acts {
		if seen[act] {
			t.Fatalf("duplicate activity %q", act)
		}
		seen[act] = true
		if !strings.Contains(act, "Activity") {
			t.Fatalf("odd activity name %q", act)
		}
	}
}

func TestSharedActivitiesExist(t *testing.T) {
	// With SharedActivityProb = 1 every functionality reuses a shared or hub
	// activity — the property that breaks activity-granularity partitioning.
	spec := DefaultSpec("Sh", 14)
	spec.SharedActivityProb = 0.99
	a := Generate(spec)
	subsOf := make(map[string]map[int]bool)
	for _, s := range a.Screens {
		if subsOf[s.Activity] == nil {
			subsOf[s.Activity] = make(map[int]bool)
		}
		subsOf[s.Activity][s.Subspace] = true
	}
	shared := 0
	for _, subs := range subsOf {
		if len(subs) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no activity spans multiple functionalities")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := Generate(DefaultSpec("Bad", 15))
	a.Screens[1].Widgets[0].Target = ScreenID(len(a.Screens) + 5)
	if err := a.Validate(); err == nil {
		t.Fatal("Validate missed an out-of-range target")
	}
}

func TestMotivatingExample(t *testing.T) {
	a := MotivatingExample()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Screens) != 18 {
		t.Fatalf("screens = %d, want 18", len(a.Screens))
	}
	// Figure 2's structural claims: the Setting activity appears in two
	// screens, and a MainTabs-activity screen sits inside the shopping
	// functionality.
	settingScreens := 0
	mainTabsScreens := 0
	for _, s := range a.Screens {
		if strings.HasSuffix(s.Activity, ".SettingActivity") {
			settingScreens++
		}
		if strings.HasSuffix(s.Activity, ".MainTabsActivity") {
			mainTabsScreens++
		}
	}
	if settingScreens < 2 {
		t.Fatalf("SettingActivity screens = %d, want >= 2", settingScreens)
	}
	if mainTabsScreens != 2 {
		t.Fatalf("MainTabsActivity screens = %d, want 2 (hub + WishList)", mainTabsScreens)
	}
	if len(a.CrashSites) != 1 {
		t.Fatalf("crash sites = %d, want 1", len(a.CrashSites))
	}
	// The two functionalities are loosely coupled: no direct edge between
	// shopping (1) and account (2) screens.
	for _, s := range a.Screens {
		for _, w := range s.Widgets {
			if w.Target < 0 {
				continue
			}
			from, to := s.Subspace, a.Screens[w.Target].Subspace
			if from != 0 && to != 0 && from != to {
				t.Fatalf("direct edge between functionalities %d -> %d", from, to)
			}
		}
	}
}
