// Package app models synthetic Apps Under Test (AUTs).
//
// The paper evaluates TaOPT on 18 industrial Android apps. Those binaries —
// and the emulators to run them — are not available here, so this package
// provides the substitution documented in DESIGN.md: synthetic apps whose UI
// spaces are stochastic directed graphs with the Globally-Sparse /
// Locally-Dense structure that Section 3.2 observes in real apps. Each app
// is a set of screens grouped into loosely coupled functionalities
// ("subspaces"), rendered on demand as Android-style UI hierarchies, with
// methods attached to screens and widgets (the coverage ground truth) and
// crashes planted on rare interaction sites.
package app

import (
	"fmt"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

// MethodID indexes into an app's method universe.
type MethodID int32

// ScreenID indexes into an app's screen list.
type ScreenID int

// Special widget targets.
const (
	// TargetNone marks a widget that does not navigate (it only covers
	// methods — e.g. a toggle or a like button).
	TargetNone ScreenID = -1
	// TargetBack marks a widget that behaves like the hardware Back key.
	TargetBack ScreenID = -2
)

// Widget is an interactive element of a screen.
type Widget struct {
	Class      string
	ResourceID string
	Label      string
	// Target is the screen this widget navigates to, or TargetNone/TargetBack.
	Target ScreenID
	// Methods covered when the widget fires.
	Methods []MethodID
	// CrashSite is an index into App.CrashSites, or -1.
	CrashSite int
	// CrashProb is the probability that firing the widget triggers the
	// crash site instead of navigating.
	CrashProb float64
	// Volatile marks widgets whose rendered text changes between visits
	// (e.g. product names); the abstraction must be insensitive to this.
	Volatile bool
}

// ScreenState is one node of the app's UI transition graph.
type ScreenState struct {
	ID       ScreenID
	Activity string
	// Subspace is the ground-truth functionality index (0 = hub). It exists
	// for evaluation only; nothing in internal/core may read it.
	Subspace int
	Title    string
	Widgets  []Widget
	// VisitMethods are covered every time the screen is shown.
	VisitMethods []MethodID
	// Decorations adds non-clickable structure rows to the rendered
	// hierarchy, to give the tree similarity something realistic to chew on.
	Decorations int
}

// CrashSite is a planted fault. Firing it produces a crash whose uniqueness
// is determined by the code locations in Frames (Section 6.1, crash
// collection).
type CrashSite struct {
	ID     int
	Frames []string // innermost first, e.g. "com.zedge.net.Fetcher.parse(Fetcher.java:88)"
}

// App is a complete synthetic AUT.
type App struct {
	Name    string
	Version string
	// Screens; Screens[i].ID == ScreenID(i).
	Screens []*ScreenState
	// Main is the screen shown after launch (and after auto-login).
	Main ScreenID
	// Login, if LoginRequired, is the screen shown on launch before the
	// auto-login script runs. Its widgets never reach Main.
	Login         ScreenID
	LoginRequired bool
	// MethodNames is the universe of method identifiers; len(MethodNames)
	// is the app's method count. MethodID indexes this slice.
	MethodNames []string
	CrashSites  []CrashSite
	// Subspaces is the ground-truth number of functionalities including the
	// hub (evaluation only).
	Subspaces int
	// CoveragePerFire, when in (0, 1), makes each widget firing execute only
	// that fraction of its handler methods (in expectation) — an ablation
	// knob for saturation speed. 0 or 1 means full coverage per fire.
	CoveragePerFire float64
	// ResumeProb, when positive, is the chance that navigating into a
	// functionality restores its saved task state (deep-screen resume)
	// instead of landing on the target screen — an ablation knob for depth
	// accumulation dynamics.
	ResumeProb float64
}

// Validate checks the structural invariants the rest of the system relies on.
func (a *App) Validate() error {
	if len(a.Screens) == 0 {
		return fmt.Errorf("app %s: no screens", a.Name)
	}
	if a.Main < 0 || int(a.Main) >= len(a.Screens) {
		return fmt.Errorf("app %s: main screen %d out of range", a.Name, a.Main)
	}
	if a.LoginRequired && (a.Login < 0 || int(a.Login) >= len(a.Screens)) {
		return fmt.Errorf("app %s: login screen %d out of range", a.Name, a.Login)
	}
	for i, s := range a.Screens {
		if s.ID != ScreenID(i) {
			return fmt.Errorf("app %s: screen %d has ID %d", a.Name, i, s.ID)
		}
		for j, w := range s.Widgets {
			if w.Target >= 0 && int(w.Target) >= len(a.Screens) {
				return fmt.Errorf("app %s: screen %d widget %d targets %d (out of range)", a.Name, i, j, w.Target)
			}
			if w.CrashSite >= len(a.CrashSites) {
				return fmt.Errorf("app %s: screen %d widget %d names crash site %d (have %d)", a.Name, i, j, w.CrashSite, len(a.CrashSites))
			}
			for _, m := range w.Methods {
				if int(m) >= len(a.MethodNames) || m < 0 {
					return fmt.Errorf("app %s: widget method %d out of range", a.Name, m)
				}
			}
		}
		for _, m := range s.VisitMethods {
			if int(m) >= len(a.MethodNames) || m < 0 {
				return fmt.Errorf("app %s: screen method %d out of range", a.Name, m)
			}
		}
	}
	return nil
}

// MethodCount returns the size of the app's method universe.
func (a *App) MethodCount() int { return len(a.MethodNames) }

// Screen returns the state for id. It panics on an invalid id: screen IDs
// only ever originate from the app itself.
func (a *App) Screen(id ScreenID) *ScreenState {
	return a.Screens[id]
}

// ReachableMethods returns the set of methods attached to screens and widgets
// reachable from Main by forward navigation — an upper bound on what any UI
// tool can cover. Used by tests and by the appgen inspection tool.
func (a *App) ReachableMethods() map[MethodID]bool {
	seen := make(map[ScreenID]bool)
	out := make(map[MethodID]bool)
	stack := []ScreenID{a.Main}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		s := a.Screens[id]
		for _, m := range s.VisitMethods {
			out[m] = true
		}
		for _, w := range s.Widgets {
			for _, m := range w.Methods {
				out[m] = true
			}
			if w.Target >= 0 && !seen[w.Target] {
				stack = append(stack, w.Target)
			}
		}
	}
	return out
}

// Activities returns the app's distinct Activity names in first-declared
// order — what a static-analysis-based partitioner (ParaAim [10]) would
// extract from the manifest.
func (a *App) Activities() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range a.Screens {
		if !seen[s.Activity] {
			seen[s.Activity] = true
			out = append(out, s.Activity)
		}
	}
	return out
}

// Render produces the concrete UI hierarchy of screen id for its visit'th
// visit. Rendering is deterministic given (id, visit): volatile widget text
// incorporates the visit counter, everything else is fixed. The clickable
// elements appear in pre-order in exactly widget order, so the i'th clickable
// of the hierarchy is Widgets[i].
func (a *App) Render(id ScreenID, visit int) *ui.Screen {
	s := a.Screens[id]
	root := &ui.Node{Class: "android.widget.FrameLayout", ResourceID: "android:id/content", Enabled: true}
	toolbar := &ui.Node{Class: "androidx.appcompat.widget.Toolbar", ResourceID: "toolbar", Enabled: true}
	toolbar.Children = append(toolbar.Children, &ui.Node{
		Class: "android.widget.TextView", ResourceID: "toolbar_title", Text: s.Title, Enabled: true,
	})
	container := &ui.Node{Class: "android.widget.LinearLayout", ResourceID: "container", Enabled: true}
	for _, w := range s.Widgets {
		text := w.Label
		if w.Volatile {
			text = fmt.Sprintf("%s · %d", w.Label, visit)
		}
		container.Children = append(container.Children, &ui.Node{
			Class:      w.Class,
			ResourceID: w.ResourceID,
			Text:       text,
			Enabled:    true,
			Clickable:  true,
		})
	}
	for d := 0; d < s.Decorations; d++ {
		row := &ui.Node{Class: "android.widget.LinearLayout", ResourceID: fmt.Sprintf("row_%d", d), Enabled: true}
		text := fmt.Sprintf("%s item %d", s.Title, d)
		if d%2 == 1 {
			text = fmt.Sprintf("%s item %d (seen %d)", s.Title, d, visit)
		}
		row.Children = append(row.Children, &ui.Node{
			Class: "android.widget.TextView", ResourceID: fmt.Sprintf("row_text_%d", d), Text: text, Enabled: true,
		})
		container.Children = append(container.Children, row)
	}
	root.Children = []*ui.Node{toolbar, container}
	return &ui.Screen{Activity: s.Activity, Root: root}
}

// Outcome describes the effect of firing a widget.
type Outcome struct {
	// Next is the resulting screen, TargetNone to stay, or TargetBack to pop.
	Next ScreenID
	// Covered are the methods executed by the interaction.
	Covered []MethodID
	// Crash, if non-negative, identifies the crash site that fired; the app
	// process dies and restarts.
	Crash int
}

// Perform fires widget w of screen id. rng decides probabilistic crash
// triggering and — when the app's CoveragePerFire is below 1 — which of the
// handler's methods execute this time. It panics on out-of-range indexes;
// these come from the device layer which derives them from the rendered
// hierarchy.
func (a *App) Perform(id ScreenID, w int, rng *sim.RNG) Outcome {
	s := a.Screens[id]
	wd := &s.Widgets[w]
	covered := wd.Methods
	if a.CoveragePerFire > 0 && a.CoveragePerFire < 1 {
		covered = make([]MethodID, 0, len(wd.Methods))
		for _, m := range wd.Methods {
			if rng.Bool(a.CoveragePerFire) {
				covered = append(covered, m)
			}
		}
	}
	if wd.CrashSite >= 0 && rng.Bool(wd.CrashProb) {
		return Outcome{Next: TargetNone, Covered: covered, Crash: wd.CrashSite}
	}
	return Outcome{Next: wd.Target, Covered: covered, Crash: -1}
}
