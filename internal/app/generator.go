package app

import (
	"fmt"
	"strings"

	"taopt/internal/sim"
)

// Spec parameterises the synthetic app generator. The defaults produced by
// DefaultSpec generate mid-sized apps; internal/apps calibrates one Spec per
// evaluation app to match the relative sizes of Table 3/Table 4.
type Spec struct {
	Name     string
	Version  string
	Category string
	// Downloads is the Table 3 "#Inst" column (informational).
	Downloads string
	// Seed drives all structural randomness; the same Spec always generates
	// the identical app.
	Seed int64

	// Subspaces is the number of loosely coupled functionalities, excluding
	// the hub.
	Subspaces int
	// ScreensMin/Max bound the number of screens per functionality.
	ScreensMin, ScreensMax int
	// WidgetsMin/Max bound the number of interactive widgets per screen.
	WidgetsMin, WidgetsMax int
	// ActivitiesMin/Max bound how many Android activities implement one
	// functionality. Functionalities spanning several activities — and
	// activities shared across functionalities — are what break
	// activity-granularity parallelization (Section 2, Section 3.3).
	ActivitiesMin, ActivitiesMax int
	// SharedActivityProb is the chance that a functionality reuses a
	// globally shared activity (e.g. a Settings screen) for one of its
	// screens.
	SharedActivityProb float64
	// CrossProb is the probability that an internal widget targets a screen
	// of a different functionality directly (not through the hub). This is
	// the "global sparsity" knob: cross edges are rare but nonzero.
	CrossProb float64
	// ExitProb is the probability that a non-entry screen carries an
	// explicit widget back to the hub (Back navigation exists regardless).
	ExitProb float64
	// LayerWidth shapes each functionality as a layered flow of this width:
	// screens mostly link forward one layer, sideways, or back. Depth is what
	// makes coverage hard to saturate — a random walk needs many actions to
	// reach the deep layers, exactly like multi-step flows (search → detail
	// → cart → checkout) in real apps.
	LayerWidth int

	// VisitMethodsMin/Max bound methods covered on each screen render.
	VisitMethodsMin, VisitMethodsMax int
	// WidgetMethodsMin/Max bound methods covered per interaction.
	WidgetMethodsMin, WidgetMethodsMax int
	// ExtraMethods are methods in the binary never reachable from the UI
	// (dead code, server-driven paths); they keep coverage below 100%.
	ExtraMethods int

	// CrashSites is the number of planted faults.
	CrashSites int
	// CrashProbMin/Max bound each site's trigger probability.
	CrashProbMin, CrashProbMax float64

	// LoginRequired gates the main functionality behind a login screen; the
	// harness runs an auto-login script once per instance, as in the paper.
	LoginRequired bool
	// VolatileTextProb is the chance a widget renders changing text.
	VolatileTextProb float64
	// DecorationsMax bounds non-clickable structure rows per screen.
	DecorationsMax int
}

// DefaultSpec returns a reasonable mid-size app spec with the given name and
// seed. Callers override fields before Generate.
func DefaultSpec(name string, seed int64) Spec {
	return Spec{
		Name:               name,
		Version:            "1.0.0",
		Category:           "Tools",
		Downloads:          "10m+",
		Seed:               seed,
		Subspaces:          8,
		ScreensMin:         8,
		ScreensMax:         14,
		WidgetsMin:         5,
		WidgetsMax:         9,
		ActivitiesMin:      2,
		ActivitiesMax:      4,
		SharedActivityProb: 0.5,
		CrossProb:          0.005,
		ExitProb:           0.02,
		LayerWidth:         3,
		VisitMethodsMin:    60,
		VisitMethodsMax:    180,
		WidgetMethodsMin:   6,
		WidgetMethodsMax:   24,
		ExtraMethods:       2500,
		CrashSites:         6,
		CrashProbMin:       0.12,
		CrashProbMax:       0.30,
		VolatileTextProb:   0.3,
		DecorationsMax:     5,
	}
}

func (s Spec) withDefaults() Spec {
	d := DefaultSpec(s.Name, s.Seed)
	if s.Subspaces == 0 {
		s.Subspaces = d.Subspaces
	}
	if s.ScreensMin == 0 {
		s.ScreensMin = d.ScreensMin
	}
	if s.ScreensMax == 0 {
		s.ScreensMax = d.ScreensMax
	}
	if s.WidgetsMin == 0 {
		s.WidgetsMin = d.WidgetsMin
	}
	if s.WidgetsMax == 0 {
		s.WidgetsMax = d.WidgetsMax
	}
	if s.ActivitiesMin == 0 {
		s.ActivitiesMin = d.ActivitiesMin
	}
	if s.ActivitiesMax == 0 {
		s.ActivitiesMax = d.ActivitiesMax
	}
	if s.SharedActivityProb == 0 {
		s.SharedActivityProb = d.SharedActivityProb
	}
	if s.CrossProb == 0 {
		s.CrossProb = d.CrossProb
	}
	if s.ExitProb == 0 {
		s.ExitProb = d.ExitProb
	}
	if s.LayerWidth == 0 {
		s.LayerWidth = d.LayerWidth
	}
	if s.VisitMethodsMin == 0 {
		s.VisitMethodsMin = d.VisitMethodsMin
	}
	if s.VisitMethodsMax == 0 {
		s.VisitMethodsMax = d.VisitMethodsMax
	}
	if s.WidgetMethodsMin == 0 {
		s.WidgetMethodsMin = d.WidgetMethodsMin
	}
	if s.WidgetMethodsMax == 0 {
		s.WidgetMethodsMax = d.WidgetMethodsMax
	}
	if s.ExtraMethods == 0 {
		s.ExtraMethods = d.ExtraMethods
	}
	if s.CrashSites == 0 {
		s.CrashSites = d.CrashSites
	}
	if s.CrashProbMin == 0 {
		s.CrashProbMin = d.CrashProbMin
	}
	if s.CrashProbMax == 0 {
		s.CrashProbMax = d.CrashProbMax
	}
	if s.VolatileTextProb == 0 {
		s.VolatileTextProb = d.VolatileTextProb
	}
	if s.DecorationsMax == 0 {
		s.DecorationsMax = d.DecorationsMax
	}
	if s.Version == "" {
		s.Version = d.Version
	}
	if s.Category == "" {
		s.Category = d.Category
	}
	if s.Downloads == "" {
		s.Downloads = d.Downloads
	}
	return s
}

// Names for generated functionalities, cycled if a spec asks for more.
var subspaceNames = []string{
	"Browse", "Search", "Detail", "Account", "Settings", "Social",
	"Media", "History", "Checkout", "Library", "Discover", "Messages",
	"Offers", "Reviews", "Downloads", "Profile", "Help", "Premium",
}

var widgetClasses = []string{
	"android.widget.Button",
	"android.widget.ImageButton",
	"android.widget.TextView",
	"androidx.cardview.widget.CardView",
	"android.widget.ImageView",
}

// builder carries generation state.
type builder struct {
	spec    Spec
	rng     *sim.RNG
	app     *App
	pkg     string
	nextRes int
}

// Generate builds the app described by spec. The result is deterministic in
// spec (including Seed) and always passes Validate.
func Generate(spec Spec) *App {
	spec = spec.withDefaults()
	b := &builder{
		spec: spec,
		rng:  sim.NewRNG(spec.Seed),
		pkg:  "com." + sanitize(spec.Name),
	}
	b.app = &App{
		Name:      spec.Name,
		Version:   spec.Version,
		Subspaces: spec.Subspaces + 1, // + hub
	}
	b.build()
	if err := b.app.Validate(); err != nil {
		// Generation bugs are programmer errors, not runtime conditions.
		panic(fmt.Sprintf("app: generator produced invalid app: %v", err))
	}
	return b.app
}

func sanitize(name string) string {
	var out strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			out.WriteRune(r)
		}
	}
	if out.Len() == 0 {
		return "app"
	}
	return out.String()
}

func (b *builder) build() {
	a, spec, rng := b.app, b.spec, b.rng

	// Plan functionality sizes and activities.
	sizes := make([]int, spec.Subspaces)
	for i := range sizes {
		sizes[i] = spec.ScreensMin + rng.Intn(spec.ScreensMax-spec.ScreensMin+1)
	}
	sharedActivity := b.pkg + ".SharedSettingsActivity"
	hubActivity := b.pkg + ".MainTabsActivity"

	// Allocate screens: hub first, then one block per functionality.
	type planned struct {
		subspace int
		activity string
		title    string
	}
	var plan []planned
	plan = append(plan, planned{0, hubActivity, "MainTabs"})
	if rng.Bool(0.6) {
		plan = append(plan, planned{0, hubActivity, "GlobalSearch"})
	}
	entry := make([]int, spec.Subspaces+1) // entry[k] = screen index of subspace k's entry (entry[0] unused)
	blocks := make([][]int, spec.Subspaces+1)
	for i := range plan {
		blocks[0] = append(blocks[0], i)
	}
	for k := 1; k <= spec.Subspaces; k++ {
		name := subspaceNames[(k-1)%len(subspaceNames)]
		if k-1 >= len(subspaceNames) {
			name = fmt.Sprintf("%s%d", name, (k-1)/len(subspaceNames)+1)
		}
		nAct := spec.ActivitiesMin + rng.Intn(spec.ActivitiesMax-spec.ActivitiesMin+1)
		acts := make([]string, nAct)
		for j := range acts {
			acts[j] = fmt.Sprintf("%s.%s%sActivity", b.pkg, name, activitySuffix(j))
		}
		// Shared activities defeat activity partitioning: occasionally one
		// of this functionality's activities is the global shared one, or
		// even the hub's.
		if rng.Bool(spec.SharedActivityProb) {
			if rng.Bool(0.5) {
				acts[nAct-1] = sharedActivity
			} else {
				acts[nAct-1] = hubActivity
			}
		}
		entry[k] = len(plan)
		for s := 0; s < sizes[k-1]; s++ {
			// Entry screens live on the functionality's first activity;
			// deeper screens spread across the rest.
			act := acts[0]
			if s > 0 {
				act = acts[rng.Intn(len(acts))]
			}
			title := fmt.Sprintf("%s %s", name, screenTitle(s))
			blocks[k] = append(blocks[k], len(plan))
			plan = append(plan, planned{k, act, title})
		}
	}

	// Optional login screen at the end.
	loginIdx := -1
	if spec.LoginRequired {
		loginIdx = len(plan)
		plan = append(plan, planned{0, b.pkg + ".LoginActivity", "Login"})
	}

	a.Screens = make([]*ScreenState, len(plan))
	for i, p := range plan {
		a.Screens[i] = &ScreenState{
			ID:          ScreenID(i),
			Activity:    p.activity,
			Subspace:    p.subspace,
			Title:       p.title,
			Decorations: rng.Intn(spec.DecorationsMax + 1),
		}
	}
	a.Main = 0
	if loginIdx >= 0 {
		a.Login = ScreenID(loginIdx)
		a.LoginRequired = true
	} else {
		a.Login = -1
	}

	// Method universe. Screen visit methods first, then widget methods are
	// appended as widgets are wired, then the unreachable tail.
	//
	// The hub's visit methods model app startup/framework code that every
	// instance covers immediately — the root cause of the high baseline
	// Jaccard overlap in Section 3.2. Within a functionality, deeper screens
	// carry more methods: multi-step flows implement the bulk of a feature's
	// code, so coverage depends on sustained exploration, not on touching
	// the entry screen.
	for bi, idx := range blocks[0] {
		sc := a.Screens[idx]
		n := spec.VisitMethodsMin + rng.Intn(spec.VisitMethodsMax-spec.VisitMethodsMin+1)
		if bi == 0 {
			n = n*3 + spec.VisitMethodsMax
		}
		sc.VisitMethods = b.newMethods(sc.Activity, "onShow", n)
	}
	for k := 1; k <= spec.Subspaces; k++ {
		for pos, idx := range blocks[k] {
			sc := a.Screens[idx]
			n := spec.VisitMethodsMin + rng.Intn(spec.VisitMethodsMax-spec.VisitMethodsMin+1)
			depth := float64(pos) / float64(len(blocks[k]))
			n = int(float64(n) * (1 + 1.5*depth))
			sc.VisitMethods = b.newMethods(sc.Activity, "onShow", n)
		}
	}
	if spec.LoginRequired {
		sc := a.Screens[loginIdx]
		sc.VisitMethods = b.newMethods(sc.Activity, "onShow", spec.VisitMethodsMin)
	}

	// Crash sites are planted after wiring (see plantCrashes).
	a.CrashSites = make([]CrashSite, spec.CrashSites)

	// Wire widgets.
	b.wireHub(blocks, entry)
	for k := 1; k <= spec.Subspaces; k++ {
		b.wireSubspace(k, blocks, entry)
	}
	if loginIdx >= 0 {
		b.wireLogin(ScreenID(loginIdx))
	}
	b.plantCrashes(blocks)

	// Unreachable tail.
	for i := 0; i < spec.ExtraMethods; i++ {
		b.app.MethodNames = append(b.app.MethodNames, fmt.Sprintf("%s.internal.Background.m%d", b.pkg, i))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func activitySuffix(j int) string {
	suffixes := []string{"", "Detail", "List", "Edit", "Page"}
	return suffixes[j%len(suffixes)]
}

func screenTitle(s int) string {
	titles := []string{"Home", "List", "Detail", "Options", "Compose", "Results", "Filter", "Preview", "More", "Archive"}
	if s < len(titles) {
		return titles[s]
	}
	return fmt.Sprintf("Page %d", s)
}

// newMethods appends n fresh methods named after their owning activity and
// returns their IDs.
func (b *builder) newMethods(activity, kind string, n int) []MethodID {
	ids := make([]MethodID, n)
	base := len(b.app.MethodNames)
	short := activity[strings.LastIndexByte(activity, '.')+1:]
	for i := 0; i < n; i++ {
		b.app.MethodNames = append(b.app.MethodNames,
			fmt.Sprintf("%s.%s.%s_%d", b.pkg, short, kind, base+i))
		ids[i] = MethodID(base + i)
	}
	return ids
}

func (b *builder) newWidget(screen *ScreenState, label string, target ScreenID) {
	rng, spec := b.rng, b.spec
	n := spec.WidgetMethodsMin + rng.Intn(spec.WidgetMethodsMax-spec.WidgetMethodsMin+1)
	b.nextRes++
	screen.Widgets = append(screen.Widgets, Widget{
		Class:      widgetClasses[rng.Intn(len(widgetClasses))],
		ResourceID: fmt.Sprintf("w_%d", b.nextRes),
		Label:      label,
		Target:     target,
		Methods:    b.newMethods(screen.Activity, "onClick", n),
		CrashSite:  -1,
		Volatile:   rng.Bool(spec.VolatileTextProb),
	})
}

// wireHub gives the main screen one tab per functionality plus filler.
func (b *builder) wireHub(blocks [][]int, entry []int) {
	a, rng := b.app, b.rng
	main := a.Screens[0]
	for k := 1; k < len(entry); k++ {
		b.newWidget(main, fmt.Sprintf("Tab %s", a.Screens[entry[k]].Title), ScreenID(entry[k]))
	}
	// A couple of non-navigating widgets (refresh, promo banner).
	for i := 0; i < 2; i++ {
		b.newWidget(main, fmt.Sprintf("Banner %d", i), TargetNone)
	}
	// Other hub screens link back to main and to a random functionality.
	for _, idx := range blocks[0][1:] {
		s := a.Screens[idx]
		b.newWidget(s, "Home", 0)
		k := 1 + rng.Intn(len(entry)-1)
		b.newWidget(s, "Open", ScreenID(entry[k]))
		b.newWidget(s, "Dismiss", TargetBack)
	}
}

// wireSubspace connects the screens of functionality k as a layered flow:
// locally dense (every screen reaches neighbours in its own and adjacent
// layers) yet deep (reaching the last layer needs a sustained multi-step
// walk). Cross edges to other functionalities are rare (global sparsity).
func (b *builder) wireSubspace(k int, blocks [][]int, entry []int) {
	a, spec, rng := b.app, b.spec, b.rng
	screens := blocks[k]
	width := spec.LayerWidth
	layers := (len(screens) + width - 1) / width
	layerOf := func(pos int) int { return pos / width }
	pickInLayer := func(l int) int {
		lo := l * width
		hi := lo + width
		if hi > len(screens) {
			hi = len(screens)
		}
		if lo >= hi {
			lo, hi = len(screens)-1, len(screens)
		}
		return screens[lo+rng.Intn(hi-lo)]
	}

	for pos, idx := range screens {
		s := a.Screens[idx]
		l := layerOf(pos)
		nw := spec.WidgetsMin + rng.Intn(spec.WidgetsMax-spec.WidgetsMin+1)
		for w := 0; w < nw; w++ {
			switch {
			case pos == 0 && w == 0:
				// The entry screen always offers a way home: this is the
				// edge TaOPT ends up blocking on other instances.
				b.newWidget(s, "Back to Home", 0)
			case rng.Bool(spec.CrossProb) && len(entry) > 2:
				// Rare direct jump into another functionality.
				other := k
				for other == k {
					other = 1 + rng.Intn(len(entry)-1)
				}
				tscreens := blocks[other]
				b.newWidget(s, "See also", ScreenID(tscreens[rng.Intn(len(tscreens))]))
			case pos != 0 && w == 0 && rng.Bool(spec.ExitProb):
				b.newWidget(s, "Home", 0)
			case w <= 1 && l+1 < layers:
				// Forward edge into the next layer: the flow's spine.
				t := pickInLayer(l + 1)
				b.newWidget(s, fmt.Sprintf("Open %s", a.Screens[t].Title), ScreenID(t))
			case w == 2 && l > 0 && rng.Bool(0.6):
				// Back toward shallower layers, like list ↔ detail loops.
				t := pickInLayer(rng.Intn(l))
				b.newWidget(s, fmt.Sprintf("Back to %s", a.Screens[t].Title), ScreenID(t))
			case rng.Bool(0.22):
				// Non-navigating interaction (toggle, like, play).
				b.newWidget(s, "Toggle", TargetNone)
			case rng.Bool(0.12):
				b.newWidget(s, "Close", TargetBack)
			default:
				// Sideways within the layer (tabs, sibling items).
				t := pickInLayer(l)
				b.newWidget(s, fmt.Sprintf("Open %s", a.Screens[t].Title), ScreenID(t))
			}
		}
	}
}

// wireLogin builds a login wall. Without the auto-login script a random tool
// cannot pass it: the form widgets never navigate to Main.
func (b *builder) wireLogin(id ScreenID) {
	s := b.app.Screens[id]
	b.newWidget(s, "Username", TargetNone)
	b.newWidget(s, "Password", TargetNone)
	b.newWidget(s, "Sign In", TargetNone) // fails: no credentials
	b.newWidget(s, "Forgot password", TargetNone)
}

// plantCrashes attaches crash sites to widgets across the functionalities.
// Two kinds, matching where each parallelization setting's strength lies:
//
//   - one third are shallow, rare-trigger sites (early screens, ~2–4% per
//     fire): the heavy repetition an uncoordinated run pours into popular
//     screens is what finds these;
//   - two thirds sit in the deep flow tail (past ~55% of the functionality's
//     depth) with ordinary trigger rates (CrashProbMin/Max): casual
//     exploration never gets there at all — measured baseline visit mass in
//     the last three depth deciles is ≈0 — so finding them requires the
//     sustained single-functionality exploration that dedicated subspaces
//     produce.
func (b *builder) plantCrashes(blocks [][]int) {
	a, spec, rng := b.app, b.spec, b.rng
	for c := 0; c < spec.CrashSites; c++ {
		k := 1 + rng.Intn(len(blocks)-1)
		screens := blocks[k]
		var pos int
		var prob float64
		if c%4 == 0 {
			// A minority of shallow, rare-trigger sites: heavy repetition on
			// popular screens finds these, whoever does the repeating.
			pos = 1 + rng.Intn(max(1, len(screens)/6))
			prob = 0.05 + rng.Float64()*0.05
		} else {
			// The rest live past the casual-exploration horizon. Measured
			// baseline visit mass beyond ~65% of a functionality's depth is
			// essentially zero (the random walk resets to the entry screen
			// on every re-entry), while a dedicated instance pushes its
			// whole budget into one flow and dwells there — so these sites
			// trigger readily (0.6–0.9 per fire) once anyone arrives at all.
			lo := len(screens) * 65 / 100
			hi := len(screens) * 92 / 100
			if hi <= lo {
				hi = lo + 1
			}
			pos = lo + rng.Intn(hi-lo)
			prob = 0.6 + rng.Float64()*0.3
		}
		if pos >= len(screens) {
			pos = len(screens) - 1
		}
		idx := screens[pos]
		s := a.Screens[idx]
		if len(s.Widgets) == 0 {
			continue
		}
		w := &s.Widgets[rng.Intn(len(s.Widgets))]
		if w.CrashSite >= 0 {
			continue // already a crash site; keep the count approximate
		}
		w.CrashSite = c
		w.CrashProb = prob
		var frames []string
		depth := 3 + rng.Intn(3)
		for f := 0; f < depth; f++ {
			var m string
			if f < len(w.Methods) {
				m = a.MethodNames[w.Methods[f]]
			} else {
				m = fmt.Sprintf("%s.runtime.Dispatch.call_%d", b.pkg, f)
			}
			frames = append(frames, fmt.Sprintf("%s(%s.java:%d)", m, s.Activity[strings.LastIndexByte(s.Activity, '.')+1:], 40+rng.Intn(400)))
		}
		a.CrashSites[c] = CrashSite{ID: c, Frames: frames}
	}
	// Fill any skipped sites with distinct synthetic frames so CrashSites
	// stays dense and Validate holds.
	for c := range a.CrashSites {
		if len(a.CrashSites[c].Frames) == 0 {
			a.CrashSites[c] = CrashSite{ID: c, Frames: []string{
				fmt.Sprintf("%s.runtime.Watchdog.timeout_%d(Watchdog.java:%d)", b.pkg, c, 10+c),
			}}
		}
	}
}
