package app

import "hash/fnv"

// SeedFor derives the stable per-app generation seed used by the catalog and
// by scenario files that omit an explicit seed: FNV-64a of the app name,
// halved into the non-negative int64 range. Keeping the derivation here lets
// the catalog and the scenario compiler agree without importing each other.
func SeedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() >> 1)
}
