package app

import "fmt"

// MotivatingExample builds the online-shopping app of Figure 2 by hand: a
// Shopping functionality (SearchTabs, SelectList, GoodsDetail, ShopBag,
// WishList) and an Account Settings functionality (UserServiceList, Setting,
// Profile), joined only through the MainTabs hub. The two functionalities are
// loosely coupled; several of them reuse the same activities (MainTabs and
// Setting appear on both sides of the figure), which is exactly why
// activity-granularity partitioning fails on this app.
func MotivatingExample() *App {
	const pkg = "com.example.shop"
	a := &App{
		Name:      "ShopDemo",
		Version:   "2.1.0",
		Subspaces: 3, // hub + shopping + account
		Login:     -1,
	}

	next := 0
	method := func(owner, kind string, n int) []MethodID {
		ids := make([]MethodID, n)
		for i := range ids {
			a.MethodNames = append(a.MethodNames, fmt.Sprintf("%s.%s.%s_%d", pkg, owner, kind, next))
			ids[i] = MethodID(next)
			next++
		}
		return ids
	}

	// Screen order matters: IDs are positional. The first ten screens are
	// Figure 2's; the rest flesh the two functionalities out to realistic
	// depth (real shopping flows continue past the detail page).
	const (
		mainTabs ScreenID = iota
		searchTabs
		selectList
		goodsDetail
		shopBag
		wishList
		userServiceList
		setting
		profile
		accountSetting
		goodsGallery
		reviews
		similarItems
		checkout
		orderStatus
		security
		notifications
		addresses
	)

	screen := func(id ScreenID, activity, title string, subspace, visitMethods int) *ScreenState {
		s := &ScreenState{
			ID:           id,
			Activity:     pkg + "." + activity,
			Subspace:     subspace,
			Title:        title,
			VisitMethods: method(activity, "onShow", visitMethods),
			Decorations:  2,
		}
		a.Screens = append(a.Screens, s)
		return s
	}
	widget := func(s *ScreenState, label string, target ScreenID, methods int) {
		s.Widgets = append(s.Widgets, Widget{
			Class:      "android.widget.Button",
			ResourceID: fmt.Sprintf("btn_%s_%d", s.Title, len(s.Widgets)),
			Label:      label,
			Target:     target,
			Methods:    method(s.Activity[len(pkg)+1:], "onClick", methods),
			CrashSite:  -1,
		})
	}

	main := screen(mainTabs, "MainTabsActivity", "MainTabs", 0, 120)
	search := screen(searchTabs, "SearchTabsActivity", "SearchTabs", 1, 60)
	selList := screen(selectList, "SelectListActivity", "SelectList", 1, 55)
	goods := screen(goodsDetail, "GoodsDetailActivity", "GoodsDetail", 1, 70)
	bag := screen(shopBag, "ShopBagActivity", "ShopBag", 1, 65)
	wish := screen(wishList, "MainTabsActivity", "WishList", 1, 40) // reuses hub activity (Figure 2)
	userSvc := screen(userServiceList, "UserServiceListActivity", "UserServiceList", 2, 50)
	set := screen(setting, "SettingActivity", "Setting", 2, 45)
	prof := screen(profile, "ProfileActivity", "Profile", 2, 55)
	acctSet := screen(accountSetting, "SettingActivity", "AccountSetting", 2, 40) // Setting activity shared

	// Hub: the starred button of Figure 2 leads to SearchTabs.
	widget(main, "Search", searchTabs, 12) // the ★ entrypoint TaOPT disables
	widget(main, "Account", userServiceList, 10)
	widget(main, "Promotions", TargetNone, 6)

	// Shopping functionality: dense internal transitions.
	widget(search, "Results", selectList, 10)
	widget(search, "Hot items", goodsDetail, 8)
	widget(search, "Home", mainTabs, 4)
	widget(selList, "Item", goodsDetail, 12)
	widget(selList, "Refine", searchTabs, 6)
	widget(selList, "Wishlist", wishList, 5)
	widget(goods, "Add to bag", shopBag, 14)
	widget(goods, "Wish", wishList, 6)
	widget(goods, "More like this", selectList, 8)
	widget(goods, "Back", TargetBack, 2)
	widget(bag, "Checkout", checkout, 16)
	widget(bag, "Keep shopping", searchTabs, 5)
	widget(bag, "Remove", TargetNone, 4)
	widget(wish, "Open item", goodsDetail, 7)
	widget(wish, "Clear", TargetNone, 3)

	// Account Settings functionality.
	widget(userSvc, "Settings", setting, 9)
	widget(userSvc, "Profile", profile, 8)
	widget(userSvc, "Home", mainTabs, 4)
	widget(set, "Account", accountSetting, 10)
	widget(set, "Notifications", TargetNone, 5)
	widget(set, "Back", TargetBack, 2)
	widget(prof, "Edit", accountSetting, 9)
	widget(prof, "Services", userServiceList, 6)
	widget(acctSet, "Save", profile, 8)
	widget(acctSet, "Security", setting, 7)

	// Deeper shopping flow: gallery, reviews, recommendations, checkout.
	gallery := screen(goodsGallery, "GoodsDetailActivity", "GoodsGallery", 1, 35)
	revs := screen(reviews, "GoodsDetailActivity", "Reviews", 1, 45)
	similar := screen(similarItems, "SelectListActivity", "SimilarItems", 1, 40)
	chk := screen(checkout, "CheckoutActivity", "Checkout", 1, 80)
	order := screen(orderStatus, "CheckoutActivity", "OrderStatus", 1, 50)
	// Deeper account flow.
	sec := screen(security, "SettingActivity", "Security", 2, 45)
	notif := screen(notifications, "SettingActivity", "Notifications", 2, 35)
	addr := screen(addresses, "ProfileActivity", "Addresses", 2, 40)

	widget(goods, "Gallery", goodsGallery, 6)
	widget(goods, "Reviews", reviews, 7)
	widget(gallery, "Back to item", goodsDetail, 4)
	widget(gallery, "Next photo", TargetNone, 3)
	widget(revs, "Item", goodsDetail, 5)
	widget(revs, "More like this", similarItems, 6)
	widget(similar, "Open", goodsDetail, 7)
	widget(similar, "Refine", selectList, 5)
	widget(chk, "Place order", orderStatus, 18)
	widget(chk, "Edit bag", shopBag, 6)
	widget(order, "Track", TargetNone, 8)
	widget(order, "Shop more", searchTabs, 5)

	widget(set, "Security", security, 8)
	widget(sec, "Change password", TargetNone, 9)
	widget(sec, "Back", setting, 3)
	widget(set, "Alerts", notifications, 6)
	widget(notif, "Toggle all", TargetNone, 4)
	widget(notif, "Back", setting, 3)
	widget(prof, "Addresses", addresses, 7)
	widget(addr, "Add", TargetNone, 8)
	widget(addr, "Profile", profile, 4)

	// One planted crash deep in checkout.
	bag.Widgets[0].CrashSite = 0
	bag.Widgets[0].CrashProb = 0.05
	a.CrashSites = []CrashSite{{
		ID: 0,
		Frames: []string{
			pkg + ".ShopBagActivity.onClick_checkout(ShopBagActivity.java:131)",
			pkg + ".cart.CartController.submit(CartController.java:77)",
			pkg + ".net.OrderClient.post(OrderClient.java:214)",
		},
	}}

	if err := a.Validate(); err != nil {
		panic(fmt.Sprintf("app: motivating example invalid: %v", err))
	}
	return a
}
