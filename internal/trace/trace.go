// Package trace defines UI transition traces: "a sequence of UI screens
// interspersed with corresponding UI actions" (Section 5.2). Traces are what
// the Toller driver reports and what TaOPT's analyzer consumes; they are also
// the input to the offline subspace partition of the preliminary study.
package trace

import (
	"taopt/internal/sim"
	"taopt/internal/ui"
)

// ActionKind classifies the UI action that produced a transition.
type ActionKind int

// Action kinds.
const (
	// ActionLaunch marks the app (re)starting: the first screen of a trace
	// or the screen after a crash restart.
	ActionLaunch ActionKind = iota
	// ActionTap is a widget interaction.
	ActionTap
	// ActionBack is the hardware Back key.
	ActionBack
)

func (k ActionKind) String() string {
	switch k {
	case ActionLaunch:
		return "launch"
	case ActionTap:
		return "tap"
	case ActionBack:
		return "back"
	default:
		return "unknown"
	}
}

// Action describes the UI action of a transition.
type Action struct {
	Kind ActionKind
	// Widget is the acted-on element's path within the source screen's
	// hierarchy; empty for launch/back.
	Widget ui.WidgetPath
}

// Event is one entry of a UI transition trace: the action taken and the
// abstract screen it led to.
type Event struct {
	Instance int
	At       sim.Duration
	Action   Action
	// From is the abstract screen the action was taken on (zero for launch).
	From ui.Signature
	// To is the abstract screen observed after the action.
	To ui.Signature
	// Activity is the destination screen's activity name.
	Activity string
	// Crashed marks transitions that ended in an app crash (To is the
	// relaunched screen).
	Crashed bool
	// Enforced marks transitions injected by TaOPT's entrypoint enforcement
	// (steering a tool out of a blocked subspace) rather than by the tool.
	Enforced bool
}

// Log is an append-only per-instance transition trace.
type Log struct {
	events []Event
}

// Append adds an event.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Events returns the recorded events in order. The returned slice is the
// log's backing store; callers must not mutate it.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// Replay invokes fn for every recorded event in order. It is how offline
// consumers (the differential analysis suite, the benchmark harness) feed a
// captured trace back through an analyzer without copying the log.
func (l *Log) Replay(fn func(Event)) {
	for _, e := range l.events {
		fn(e)
	}
}

// Screens returns the sequence of visited abstract screens with timestamps —
// the (S, T) input of Algorithm 1.
func (l *Log) Screens() ([]ui.Signature, []sim.Duration) {
	sigs := make([]ui.Signature, len(l.events))
	times := make([]sim.Duration, len(l.events))
	for i, e := range l.events {
		sigs[i] = e.To
		times[i] = e.At
	}
	return sigs, times
}

// Book is a registry of canonical concrete screens per abstract signature.
// Retaining one exemplar hierarchy per signature lets the analyzer compute
// tree similarities (CountIn) without storing every rendered screen.
type Book struct {
	screens map[ui.Signature]*ui.Screen
	order   []ui.Signature
}

// NewBook returns an empty registry.
func NewBook() *Book {
	return &Book{screens: make(map[ui.Signature]*ui.Screen)}
}

// Observe registers screen (cloning it on first sight) and returns its
// signature.
func (b *Book) Observe(screen *ui.Screen) ui.Signature {
	sig := screen.Abstract()
	if _, ok := b.screens[sig]; !ok {
		b.screens[sig] = screen.Clone()
		b.order = append(b.order, sig)
	}
	return sig
}

// Lookup returns the canonical exemplar for sig, or nil.
func (b *Book) Lookup(sig ui.Signature) *ui.Screen { return b.screens[sig] }

// Signatures returns all known signatures in first-seen order.
func (b *Book) Signatures() []ui.Signature {
	return append([]ui.Signature(nil), b.order...)
}

// Len returns the number of distinct screens observed.
func (b *Book) Len() int { return len(b.order) }
