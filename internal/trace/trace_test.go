package trace

import (
	"testing"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

func mkScreen(activity, res string) *ui.Screen {
	return &ui.Screen{Activity: activity, Root: &ui.Node{
		Class: "FrameLayout", ResourceID: res, Enabled: true,
		Children: []*ui.Node{{Class: "Button", ResourceID: res + "_b", Text: "hello", Enabled: true, Clickable: true}},
	}}
}

func TestActionKindString(t *testing.T) {
	for kind, want := range map[ActionKind]string{
		ActionLaunch: "launch", ActionTap: "tap", ActionBack: "back", ActionKind(99): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestLogScreens(t *testing.T) {
	var l Log
	l.Append(Event{At: 5, To: ui.Signature(1)})
	l.Append(Event{At: 9, To: ui.Signature(2)})
	sigs, times := l.Screens()
	if len(sigs) != 2 || sigs[1] != ui.Signature(2) || times[0] != 5 {
		t.Fatalf("Screens = %v %v", sigs, times)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestBookDedup(t *testing.T) {
	b := NewBook()
	s1 := mkScreen("A", "r1")
	s2 := mkScreen("A", "r1") // same structure, would-be different text
	s2.Root.Children[0].Text = "different"
	s3 := mkScreen("B", "r1")

	sig1 := b.Observe(s1)
	sig2 := b.Observe(s2)
	sig3 := b.Observe(s3)
	if sig1 != sig2 {
		t.Fatal("text variants must share a signature")
	}
	if sig1 == sig3 {
		t.Fatal("different activities must not collide")
	}
	if b.Len() != 2 {
		t.Fatalf("Book.Len = %d, want 2", b.Len())
	}
	if got := b.Signatures(); len(got) != 2 || got[0] != sig1 {
		t.Fatalf("Signatures = %v", got)
	}
	if b.Lookup(sig3).Activity != "B" {
		t.Fatal("Lookup returned wrong exemplar")
	}
	if b.Lookup(ui.Signature(12345)) != nil {
		t.Fatal("Lookup of unknown signature must be nil")
	}
}

func TestBookClonesExemplar(t *testing.T) {
	b := NewBook()
	s := mkScreen("A", "r1")
	sig := b.Observe(s)
	s.Root.Children[0].ResourceID = "mutated"
	if b.Lookup(sig).Root.Children[0].ResourceID == "mutated" {
		t.Fatal("Book must clone observed screens")
	}
}

func TestLogReplay(t *testing.T) {
	var l Log
	for i := 1; i <= 4; i++ {
		l.Append(Event{At: sim.Duration(i), To: ui.Signature(i)})
	}
	var got []ui.Signature
	l.Replay(func(e Event) { got = append(got, e.To) })
	if len(got) != 4 {
		t.Fatalf("Replay visited %d events", len(got))
	}
	for i, sig := range got {
		if sig != ui.Signature(i+1) {
			t.Fatalf("Replay out of order: %v", got)
		}
	}
	var empty Log
	empty.Replay(func(Event) { t.Fatal("empty log must not invoke fn") })
}
