package bin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// ErrCorrupt marks a stream that violates the format: a bad magic or
// version, a record running past its chunk, a reference outside the intern
// tables, or an implausible chunk length. Every decode failure wraps it, so
// callers can errors.Is-classify corruption apart from plain I/O errors.
var ErrCorrupt = errors.New("bin: corrupt stream")

// Reader streams records back out of a chunked binary trace. It loads one
// chunk at a time, so reader memory is bounded by the largest chunk plus the
// intern tables — never the whole stream. Interning records (KindStrDef,
// KindSigDef) are consumed internally; Next never surfaces them.
type Reader struct {
	r   io.Reader
	hdr Header
	err error

	chunk []byte
	off   int

	strs []string
	sigs []uint64

	lastEventAt map[int]int64
	lastWall    int64
	lastDecAt   int64
}

// NewReader opens a binary trace stream: it validates the magic and codec
// version and decodes the mandatory header record.
func NewReader(r io.Reader) (*Reader, error) {
	br := &Reader{r: r, lastEventAt: make(map[int]int64)}
	var pre [len(Magic) + 1]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(pre[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, pre[:len(Magic)])
	}
	if v := pre[len(Magic)]; v != Version {
		return nil, fmt.Errorf("%w: unknown codec version %d (reader knows %d)", ErrCorrupt, v, Version)
	}
	rec, err := br.Next()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: stream ends before header record", ErrCorrupt)
		}
		return nil, err
	}
	if rec.Kind != KindHeader {
		return nil, fmt.Errorf("%w: first record is %v, want header", ErrCorrupt, rec.Kind)
	}
	br.hdr = rec.Header
	return br, nil
}

// Header returns the run identity the stream opened with.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next record, or io.EOF at a clean end of stream (a chunk
// boundary). Errors latch: after a failure every later call returns it.
//
//lint:hotpath
func (r *Reader) Next() (Record, error) {
	for {
		if r.err != nil {
			return Record{}, r.err
		}
		if r.off == len(r.chunk) {
			if err := r.loadChunk(); err != nil {
				if err != io.EOF {
					r.err = err
				}
				return Record{}, err
			}
		}
		kind := Kind(r.u8())
		switch kind {
		case KindStrDef:
			r.strs = append(r.strs, r.rawstr())
		case KindSigDef:
			r.sigs = append(r.sigs, r.u64le())
		case KindHeader:
			return r.finish(Record{Kind: kind, Header: r.header()})
		case KindEvent:
			return r.finish(Record{Kind: kind, Event: r.event()})
		case KindSample:
			return r.finish(Record{Kind: kind, Sample: r.sample()})
		case KindDecision:
			return r.finish(Record{Kind: kind, Decision: r.decision()})
		case KindInstance:
			return r.finish(Record{Kind: kind, Summary: r.instance()})
		case KindSubspace:
			return r.finish(Record{Kind: kind, Subspace: r.subspace()})
		case KindScreen:
			return r.finish(Record{Kind: kind, Screen: r.screen()})
		case KindTransport:
			return r.finish(Record{Kind: kind, Transport: r.transport()})
		case KindMetric:
			return r.finish(Record{Kind: kind, Metric: r.metric()})
		case KindEnd:
			return r.finish(Record{Kind: kind, End: r.end()})
		default:
			r.corruptf("unknown record kind %d", byte(kind))
		}
		if r.err != nil {
			return Record{}, r.err
		}
	}
}

// finish gates a decoded record on the latched error.
func (r *Reader) finish(rec Record) (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	return rec, nil
}

// loadChunk reads the next chunk's length prefix and payload. io.EOF at the
// prefix is the one clean way a stream ends.
func (r *Reader) loadChunk() error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: reading chunk length: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxChunkSize {
		return fmt.Errorf("%w: chunk length %d out of range", ErrCorrupt, n)
	}
	if cap(r.chunk) < int(n) {
		r.chunk = make([]byte, n)
	}
	r.chunk = r.chunk[:n]
	r.off = 0
	if _, err := io.ReadFull(r.r, r.chunk); err != nil {
		return fmt.Errorf("%w: reading %d-byte chunk: %v", ErrCorrupt, n, err)
	}
	return nil
}

// corruptf latches a corruption error.
func (r *Reader) corruptf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// --- primitive decoders (error-latching, wire-codec style) ----------------

func (r *Reader) rem() int { return len(r.chunk) - r.off }

func (r *Reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.rem() < 1 {
		r.corruptf("record truncated at chunk boundary")
		return 0
	}
	b := r.chunk[r.off]
	r.off++
	return b
}

func (r *Reader) u64le() uint64 {
	if r.err != nil {
		return 0
	}
	if r.rem() < 8 {
		r.corruptf("record truncated at chunk boundary")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.chunk[r.off:])
	r.off += 8
	return v
}

func (r *Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.chunk[r.off:])
	if n <= 0 {
		r.corruptf("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *Reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.chunk[r.off:])
	if n <= 0 {
		r.corruptf("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *Reader) f64() float64 { return math.Float64frombits(r.u64le()) }

func (r *Reader) boolb() bool { return r.u8() != 0 }

func (r *Reader) rawstr() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.rem()) {
		r.corruptf("string length %d exceeds chunk remainder %d", n, r.rem())
		return ""
	}
	s := string(r.chunk[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count decodes a collection length and guards it against the bytes left in
// the chunk (every element costs at least one byte), bounding allocations.
func (r *Reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.rem()) {
		r.corruptf("count %d exceeds chunk remainder %d", n, r.rem())
		return 0
	}
	return int(n)
}

// str resolves a string-table reference.
func (r *Reader) str() string {
	id := r.uvarint()
	if r.err != nil {
		return ""
	}
	if id >= uint64(len(r.strs)) {
		r.corruptf("string ref %d outside table of %d", id, len(r.strs))
		return ""
	}
	return r.strs[id]
}

// sig resolves a signature-table reference.
func (r *Reader) sig() uint64 {
	id := r.uvarint()
	if r.err != nil {
		return 0
	}
	if id >= uint64(len(r.sigs)) {
		r.corruptf("signature ref %d outside table of %d", id, len(r.sigs))
		return 0
	}
	return r.sigs[id]
}

// --- record decoders ------------------------------------------------------

func (r *Reader) header() Header {
	h := Header{
		App:           r.rawstr(),
		Tool:          r.rawstr(),
		Setting:       r.rawstr(),
		Seed:          r.varint(),
		ScenarioHash:  r.rawstr(),
		ExportVersion: int(r.varint()),
	}
	flags := r.u8()
	h.Telemetry = flags&1 != 0
	h.Faults = flags&2 != 0
	return h
}

//lint:hotpath
func (r *Reader) event() trace.Event {
	inst := int(r.uvarint())
	at := r.lastEventAt[inst] + r.varint()
	if r.err == nil {
		r.lastEventAt[inst] = at
	}
	packed := r.u8()
	return trace.Event{
		Instance: inst,
		At:       sim.Duration(at),
		Action: trace.Action{
			Kind:   trace.ActionKind(packed & 0x3f),
			Widget: ui.WidgetPath(r.str()),
		},
		From:     ui.Signature(r.sig()),
		To:       ui.Signature(r.sig()),
		Activity: r.str(),
		Crashed:  packed&0x40 != 0,
		Enforced: packed&0x80 != 0,
	}
}

//lint:hotpath
func (r *Reader) sample() Sample {
	s := Sample{}
	s.WallNS = r.lastWall + r.varint()
	if r.err == nil {
		r.lastWall = s.WallNS
	}
	s.MachineNS = r.varint()
	s.Covered = int(r.varint())
	s.Crashes = int(r.varint())
	if r.boolb() {
		s.AJS = r.f64()
	}
	return s
}

//lint:hotpath
func (r *Reader) decision() obs.Decision {
	d := obs.Decision{}
	d.AtNS = r.lastDecAt + r.varint()
	if r.err == nil {
		r.lastDecAt = d.AtNS
	}
	d.Kind = r.str()
	d.Instance = int(r.varint())
	d.Sub = int(r.varint())
	flags := r.u8()
	if flags&decHasEntry != 0 {
		d.Entry = r.sig()
	}
	if flags&decHasMembers != 0 {
		d.Members = int(r.varint())
	}
	if flags&decHasScore != 0 {
		d.Score = r.f64()
	}
	if flags&decHasOverlap != 0 {
		d.Overlap = r.f64()
	}
	if flags&decHasPurity != 0 {
		d.Purity = r.f64()
	}
	if flags&decHasReason != 0 {
		d.Reason = r.str()
	}
	if flags&decHasBackoff != 0 {
		d.BackoffNS = r.varint()
	}
	if flags&decHasIdle != 0 {
		d.IdleNS = r.varint()
	}
	return d
}

func (r *Reader) instance() InstanceSummary {
	s := InstanceSummary{
		ID:          int(r.varint()),
		AllocatedNS: r.varint(),
		ReleasedNS:  r.varint(),
		Failed:      r.boolb(),
		Coverage:    int(r.varint()),
	}
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		cr := Crash{Signature: r.str(), AtNS: r.varint()}
		fn := r.count()
		for j := 0; j < fn && r.err == nil; j++ {
			cr.Frames = append(cr.Frames, r.str())
		}
		s.Crashes = append(s.Crashes, cr)
	}
	return s
}

func (r *Reader) subspace() Subspace {
	s := Subspace{
		ID:      int(r.varint()),
		Entry:   r.sig(),
		Owner:   int(r.varint()),
		FoundNS: r.varint(),
	}
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		s.Members = append(s.Members, r.sig())
	}
	return s
}

func (r *Reader) screen() Screen {
	return Screen{
		Sig:      r.sig(),
		Activity: r.str(),
		Nodes:    int(r.varint()),
	}
}

func (r *Reader) transport() Transport {
	t := Transport{}
	for _, p := range []*int{
		&t.Events, &t.Delivered, &t.Commands, &t.CommandFailures, &t.Dropped,
		&t.Delayed, &t.Deaths, &t.Hangs, &t.AllocFailures, &t.LostCommands,
		&t.FailedInstances, &t.OrphansPending,
	} {
		*p = int(r.varint())
	}
	t.HasMix = r.boolb()
	if t.HasMix {
		for i := range t.Mix {
			t.Mix[i] = int(r.varint())
		}
	}
	return t
}

func (r *Reader) metric() obs.Metric {
	m := obs.Metric{
		Name:  r.str(),
		Type:  r.str(),
		Value: r.f64(),
		Count: r.varint(),
		Min:   r.f64(),
		Max:   r.f64(),
	}
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Bounds = append(m.Bounds, r.f64())
	}
	n = r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Counts = append(m.Counts, r.varint())
	}
	n = r.count()
	last := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		at := last + r.varint()
		last = at
		m.Points = append(m.Points, obs.SeriesPoint{AtNS: at, Value: r.f64()})
	}
	return m
}

func (r *Reader) end() End {
	return End{
		WallNS:        r.varint(),
		MachineNS:     r.varint(),
		Coverage:      int(r.varint()),
		UniqueCrashes: int(r.varint()),
	}
}
