package bin

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"taopt/internal/obs"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

func testHeader() Header {
	return Header{
		App:          "Filters For Selfie",
		Tool:         "monkey",
		Setting:      "taopt-duration",
		Seed:         15,
		ScenarioHash: "deadbeef",
		Telemetry:    true,
		Faults:       true,
	}
}

func testEvent(i int) trace.Event {
	return trace.Event{
		Instance: i % 3,
		At:       sim.Duration(int64(i) * 1e6),
		Action: trace.Action{
			Kind:   trace.ActionKind(i % 3),
			Widget: ui.WidgetPath(fmt.Sprintf("path/%d", i%7)),
		},
		From:     ui.Signature(uint64(i % 11)),
		To:       ui.Signature(uint64(i % 13)),
		Activity: fmt.Sprintf("Activity%d", i%5),
		Crashed:  i%17 == 0,
		Enforced: i%19 == 0,
	}
}

// TestRoundTripAllKinds drives every record kind through a write/read cycle
// and compares field by field.
func TestRoundTripAllKinds(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testHeader())

	events := make([]trace.Event, 50)
	for i := range events {
		events[i] = testEvent(i)
		w.Event(events[i])
	}
	samples := []Sample{
		{WallNS: 1e9, MachineNS: 3e9, Covered: 4, Crashes: 0},
		{WallNS: 2e9, MachineNS: 6e9, Covered: 9, Crashes: 1, AJS: 0.75},
	}
	for _, s := range samples {
		w.Sample(s)
	}
	decisions := []obs.Decision{
		{AtNS: 5e8, Kind: "allocate", Instance: 1, Sub: -1, Reason: "cold start"},
		{AtNS: 7e8, Kind: "accept-subspace", Instance: 2, Sub: 3, Entry: 11,
			Members: 4, Score: 0.9, Overlap: 0.1, Purity: 0.8, BackoffNS: 2e6, IdleNS: 9e5},
	}
	for _, d := range decisions {
		w.Decision(d)
	}
	instances := []InstanceSummary{
		{ID: 0, AllocatedNS: 0, ReleasedNS: 9e9, Coverage: 12},
		{ID: 1, AllocatedNS: 1e9, ReleasedNS: 8e9, Failed: true, Coverage: 7,
			Crashes: []Crash{{Signature: "NPE@Foo", AtNS: 4e9, Frames: []string{"Foo.bar", "Foo.baz"}}}},
	}
	for _, s := range instances {
		w.Instance(s)
	}
	subspaces := []Subspace{
		{ID: 0, Entry: 11, Members: []uint64{3, 11, 12}, Owner: 2, FoundNS: 6e9},
	}
	for _, s := range subspaces {
		w.Subspace(s)
	}
	screens := []Screen{
		{Sig: 3, Activity: "Main", Nodes: 9},
		{Sig: 11, Activity: "Settings", Nodes: 4},
	}
	for _, s := range screens {
		w.Screen(s)
	}
	transport := Transport{
		Events: 50, Delivered: 48, Commands: 9, CommandFailures: 1, Dropped: 2,
		Delayed: 3, Deaths: 1, Hangs: 0, AllocFailures: 2, LostCommands: 1,
		FailedInstances: 1, OrphansPending: 0,
		HasMix: true, Mix: [6]int{4, 3, 1, 0, 1, 0},
	}
	w.Transport(transport)
	metrics := []obs.Metric{
		{Name: "alloc.count", Type: "counter", Value: 9, Count: 9},
		{Name: "observe.lat", Type: "histogram", Value: 42, Count: 7, Min: 1, Max: 12,
			Bounds: []float64{1, 5, 10}, Counts: []int64{2, 3, 1, 1},
			Points: []obs.SeriesPoint{{AtNS: 1e9, Value: 3}, {AtNS: 2e9, Value: 5}}},
	}
	for _, m := range metrics {
		w.Metric(m)
	}
	end := End{WallNS: 9e9, MachineNS: 27e9, Coverage: 14, UniqueCrashes: 1}
	w.End(end)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	wantHdr := testHeader()
	wantHdr.ExportVersion = ExportVersion
	if r.Header() != wantHdr {
		t.Fatalf("header = %+v, want %+v", r.Header(), wantHdr)
	}

	var gotEvents []trace.Event
	var gotSamples []Sample
	var gotDecisions []obs.Decision
	var gotInstances []InstanceSummary
	var gotSubspaces []Subspace
	var gotScreens []Screen
	var gotTransport *Transport
	var gotMetrics []obs.Metric
	var gotEnd *End
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		switch rec.Kind {
		case KindEvent:
			gotEvents = append(gotEvents, rec.Event)
		case KindSample:
			gotSamples = append(gotSamples, rec.Sample)
		case KindDecision:
			gotDecisions = append(gotDecisions, rec.Decision)
		case KindInstance:
			gotInstances = append(gotInstances, rec.Summary)
		case KindSubspace:
			gotSubspaces = append(gotSubspaces, rec.Subspace)
		case KindScreen:
			gotScreens = append(gotScreens, rec.Screen)
		case KindTransport:
			tr := rec.Transport
			gotTransport = &tr
		case KindMetric:
			gotMetrics = append(gotMetrics, rec.Metric)
		case KindEnd:
			e := rec.End
			gotEnd = &e
		default:
			t.Fatalf("unexpected record kind %v", rec.Kind)
		}
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Errorf("events differ: got %d, want %d", len(gotEvents), len(events))
	}
	if !reflect.DeepEqual(gotSamples, samples) {
		t.Errorf("samples differ: %+v vs %+v", gotSamples, samples)
	}
	if !reflect.DeepEqual(gotDecisions, decisions) {
		t.Errorf("decisions differ: %+v vs %+v", gotDecisions, decisions)
	}
	if !reflect.DeepEqual(gotInstances, instances) {
		t.Errorf("instances differ: %+v vs %+v", gotInstances, instances)
	}
	if !reflect.DeepEqual(gotSubspaces, subspaces) {
		t.Errorf("subspaces differ: %+v vs %+v", gotSubspaces, subspaces)
	}
	if !reflect.DeepEqual(gotScreens, screens) {
		t.Errorf("screens differ: %+v vs %+v", gotScreens, screens)
	}
	if gotTransport == nil || *gotTransport != transport {
		t.Errorf("transport differs: %+v vs %+v", gotTransport, transport)
	}
	if !reflect.DeepEqual(gotMetrics, metrics) {
		t.Errorf("metrics differ: %+v vs %+v", gotMetrics, metrics)
	}
	if gotEnd == nil || *gotEnd != end {
		t.Errorf("end differs: %+v vs %+v", gotEnd, end)
	}
}

// TestWriterMemoryBounded asserts the streaming promise: the writer's buffer
// never grows with run length. A 150k-event run must leave the same buffer
// capacity as a 10k-event run, and that capacity stays within a small
// constant of ChunkSize.
func TestWriterMemoryBounded(t *testing.T) {
	capAfter := func(n int) int {
		w := NewWriter(io.Discard, testHeader())
		for i := 0; i < n; i++ {
			w.Event(testEvent(i))
			if i%1000 == 0 {
				w.Sample(Sample{WallNS: int64(i) * 1e6, MachineNS: int64(i) * 3e6, Covered: i / 1000})
			}
		}
		w.End(End{WallNS: int64(n) * 1e6})
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return cap(w.buf)
	}
	small := capAfter(10_000)
	big := capAfter(150_000)
	if small != big {
		t.Errorf("buffer capacity grew with run length: %d after 10k events, %d after 150k", small, big)
	}
	if big > 2*ChunkSize {
		t.Errorf("buffer capacity %d exceeds 2x ChunkSize (%d)", big, 2*ChunkSize)
	}
}

// TestWriterSteadyStateAllocs asserts the hot path (event writes with
// already-interned strings) does not allocate per event.
func TestWriterSteadyStateAllocs(t *testing.T) {
	w := NewWriter(io.Discard, testHeader())
	for i := 0; i < 1000; i++ { // warm up intern tables and buffer
		w.Event(testEvent(i))
	}
	i := 1000
	avg := testing.AllocsPerRun(10_000, func() {
		w.Event(testEvent(i))
		i++
	})
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	// testEvent itself allocates its widget/activity strings via Sprintf; the
	// budget of 4 covers those, not writer work (the writer's own appends are
	// amortised zero once buf and the tables are warm).
	if avg > 4 {
		t.Errorf("steady-state Event allocates %.1f times per call, want <= 4", avg)
	}
}

// TestReaderMemoryBounded asserts the reader holds one chunk, not the
// stream: its chunk buffer stays at chunk scale for a 150k-event input.
func TestReaderMemoryBounded(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testHeader())
	const n = 150_000
	for i := 0; i < n; i++ {
		w.Event(testEvent(i))
	}
	w.End(End{})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	count := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		count++
	}
	if count != n+1 { // events + end
		t.Fatalf("decoded %d records, want %d", count, n+1)
	}
	if cap(r.chunk) > 2*ChunkSize {
		t.Errorf("reader chunk capacity %d exceeds 2x ChunkSize (%d); stream is %d bytes", cap(r.chunk), 2*ChunkSize, buf.Len())
	}
}

// TestReaderRejectsCorruption spot-checks the guard rails: truncation, bad
// magic, bad version, out-of-table refs all fail with ErrCorrupt and never
// panic.
func TestReaderRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testHeader())
	for i := 0; i < 100; i++ {
		w.Event(testEvent(i))
	}
	w.End(End{WallNS: 1})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[0] ^= 0xff
		if _, err := NewReader(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[len(Magic)] = 99
		if _, err := NewReader(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 1; cut < len(full); cut += 37 {
			r, err := NewReader(bytes.NewReader(full[:len(full)-cut]))
			if err != nil {
				continue // truncated inside magic/header: fine, already failed
			}
			for {
				if _, err = r.Next(); err != nil {
					break
				}
			}
			if err != io.EOF && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d: err = %v, want EOF or ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for pos := len(Magic) + 1; pos < len(full); pos += 53 {
			b := append([]byte(nil), full...)
			b[pos] ^= 0x55
			r, err := NewReader(bytes.NewReader(b))
			if err != nil {
				continue
			}
			for {
				if _, err = r.Next(); err != nil {
					break
				}
			}
			// A flip may survive decode (it lands in a value, not the
			// framing); the guarantee under test is no panic and no hang.
		}
	})
}
