// Package bin is the compact binary trace+telemetry format: the streaming,
// storage-efficient twin of the JSON run export. A campaign run writes its
// unbounded data — UI transition events, timeline samples, coordinator
// decisions — as varint-encoded records in fixed-size chunks *while the run
// progresses*, never whole-run buffered, and closes the stream with the
// bounded end-of-run summaries (instances, subspaces, screens, transport
// accounting, metrics, totals). The JSON export (export format v5) stays the
// human-readable debug view; this format is what corpus-scale analytics
// (cmd/tracetool corpus) stream over thousands of runs in one pass.
//
// # Layout
//
//	"TAOPTTB" magic (7 bytes) ++ version byte
//	chunk*   where chunk = u32-LE payload length ++ payload
//	payload  = record*  (records never straddle a chunk boundary)
//	record   = kind byte ++ varint/uvarint/f64 fields (per-kind)
//
// The writer flushes a chunk as soon as the pending payload reaches
// ChunkSize, so peak writer memory is O(ChunkSize + intern tables) —
// independent of run length (the intern tables grow with *distinct* strings
// and screen signatures, which are bounded by the app, not the run).
//
// # Compactness
//
// Three tricks keep the stream small relative to the JSON view:
//
//   - Interning: strings (activities, widget paths, decision kinds, crash
//     signatures, metric names) and 8-byte screen signatures are emitted
//     once as definition records and referenced by small varint IDs after.
//   - Delta timestamps: event times are deltas against the same instance's
//     previous event, sample times against the previous sample, decision
//     times against the previous decision — all small varints.
//   - Field packing: action kind and the crashed/enforced flags share one
//     byte; optional decision fields sit behind a presence bitmap.
//
// # Versioning rules
//
// The version byte after the magic is the binary codec revision. Readers
// reject versions they do not know; any change to record layouts, the
// interning scheme or the chunk framing bumps it. The header record carries
// the JSON export schema version the stream mirrors (ExportVersion), so a
// decoded stream rebuilds a Run of the era that wrote it. DESIGN.md §12
// documents the contract.
package bin

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"taopt/internal/obs"
	"taopt/internal/trace"
)

const (
	// Magic opens every binary trace file.
	Magic = "TAOPTTB"
	// Version is the binary codec revision.
	Version = 1
	// ExportVersion is the JSON export schema (export.FormatVersion) this
	// codec revision mirrors losslessly; writers stamp it into the header
	// and readers hand it back so a rebuilt Run names its schema era.
	ExportVersion = 5
	// ChunkSize is the flush threshold: a chunk is written out as soon as
	// the pending payload reaches this many bytes. One oversized record
	// (a long metric series, say) may exceed it; the chunk then holds that
	// record alone.
	ChunkSize = 32 << 10
	// maxChunkSize bounds a chunk claimed by the length prefix; anything
	// larger marks a corrupt or truncated stream, not a legitimate chunk.
	maxChunkSize = 1 << 26
)

// Kind tags one record of the stream.
type Kind byte

// Record kinds. KindStrDef and KindSigDef are interning records the Reader
// consumes internally; Next never surfaces them.
const (
	// KindHeader opens the stream: run identity, scenario hash, schema era.
	KindHeader Kind = iota + 1
	// KindStrDef defines the next string-table entry (IDs are sequential).
	KindStrDef
	// KindSigDef defines the next signature-table entry.
	KindSigDef
	// KindEvent is one UI transition event of one instance.
	KindEvent
	// KindSample is one timeline sample point.
	KindSample
	// KindDecision is one coordinator decision-log entry.
	KindDecision
	// KindInstance is the end-of-run summary of one instance lease (with
	// its crashes), in allocation order.
	KindInstance
	// KindSubspace is one accepted UI subspace (members sorted ascending).
	KindSubspace
	// KindScreen is one distinct abstract screen (first-seen order).
	KindScreen
	// KindTransport is the chaos run's transport accounting block.
	KindTransport
	// KindMetric is one metrics-registry snapshot entry (sorted order).
	KindMetric
	// KindEnd closes the stream with the run totals.
	KindEnd
)

func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindStrDef:
		return "strdef"
	case KindSigDef:
		return "sigdef"
	case KindEvent:
		return "event"
	case KindSample:
		return "sample"
	case KindDecision:
		return "decision"
	case KindInstance:
		return "instance"
	case KindSubspace:
		return "subspace"
	case KindScreen:
		return "screen"
	case KindTransport:
		return "transport"
	case KindMetric:
		return "metric"
	case KindEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Header is the run identity the stream opens with.
type Header struct {
	App     string
	Tool    string
	Setting string
	Seed    int64
	// ScenarioHash is the canonical content hash of the scenario document
	// that defined the run's app; empty for apps built in code.
	ScenarioHash string
	// ExportVersion is the JSON export schema era the stream mirrors.
	ExportVersion int
	// Telemetry marks a run that carried a telemetry block (decision log +
	// metrics); it disambiguates "telemetry on but empty" from "off".
	Telemetry bool
	// Faults marks a chaos run (a transport record follows at the end).
	Faults bool
}

// Sample is one timeline point (raw fields; the bin layer depends on no
// metrics types).
type Sample struct {
	WallNS    int64
	MachineNS int64
	Covered   int
	Crashes   int
	AJS       float64
}

// Crash is one recorded crash of an instance summary.
type Crash struct {
	Signature string
	AtNS      int64
	Frames    []string
}

// InstanceSummary is the end-of-run record of one instance lease.
type InstanceSummary struct {
	ID          int
	AllocatedNS int64
	ReleasedNS  int64
	Failed      bool
	Coverage    int
	Crashes     []Crash
}

// Subspace is one accepted UI subspace; Members must be sorted ascending
// (the canonical export order).
type Subspace struct {
	ID      int
	Entry   uint64
	Members []uint64
	Owner   int
	FoundNS int64
}

// Screen is one distinct abstract screen digest.
type Screen struct {
	Sig      uint64
	Activity string
	Nodes    int
}

// Transport is the chaos run's coordination-transport accounting.
type Transport struct {
	Events          int
	Delivered       int
	Commands        int
	CommandFailures int
	Dropped         int
	Delayed         int
	Deaths          int
	Hangs           int
	AllocFailures   int
	LostCommands    int
	FailedInstances int
	OrphansPending  int
	// HasMix marks a per-kind command breakdown; Mix is ordered like
	// bus.CommandKind (allocate, deallocate, block-widget, block-member,
	// kill, hang).
	HasMix bool
	Mix    [6]int
}

// End closes the stream with the run totals.
type End struct {
	WallNS        int64
	MachineNS     int64
	Coverage      int
	UniqueCrashes int
}

// Record is one decoded stream entry; Kind selects the meaningful payload
// field.
type Record struct {
	Kind Kind

	Header    Header          // KindHeader
	Event     trace.Event     // KindEvent (Instance set)
	Sample    Sample          // KindSample
	Decision  obs.Decision    // KindDecision
	Summary   InstanceSummary // KindInstance
	Subspace  Subspace        // KindSubspace
	Screen    Screen          // KindScreen
	Transport Transport       // KindTransport
	Metric    obs.Metric      // KindMetric
	End       End             // KindEnd
}

// Writer streams records into the chunked binary form. All methods are
// error-latching: the first write failure sticks and every later call is a
// no-op; check Err (or Close) once at the end, exactly like the wire
// recorder. Writer memory is bounded by ChunkSize plus the intern tables.
type Writer struct {
	w   io.Writer
	buf []byte
	err error

	strIDs map[string]uint64
	sigIDs map[uint64]uint64

	lastEventAt map[int]int64
	lastWall    int64
	lastDecAt   int64
}

// NewWriter opens a binary trace stream on w: it writes the magic, the
// codec version and the header record. A zero h.ExportVersion is stamped as
// the current ExportVersion.
func NewWriter(w io.Writer, h Header) *Writer {
	bw := &Writer{
		w:           w,
		buf:         make([]byte, 0, ChunkSize+1024),
		strIDs:      make(map[string]uint64),
		sigIDs:      make(map[uint64]uint64),
		lastEventAt: make(map[int]int64),
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		bw.err = fmt.Errorf("bin: writing magic: %w", err)
		return bw
	}
	if _, err := w.Write([]byte{Version}); err != nil {
		bw.err = fmt.Errorf("bin: writing version: %w", err)
		return bw
	}
	if h.ExportVersion == 0 {
		h.ExportVersion = ExportVersion
	}
	bw.header(h)
	return bw
}

// Err returns the first error the writer hit, or nil.
func (w *Writer) Err() error { return w.err }

// Close flushes the pending chunk and returns the first error. It does not
// close the underlying writer, which the caller owns.
func (w *Writer) Close() error {
	w.flush()
	return w.err
}

// flush writes the pending payload as one chunk.
func (w *Writer) flush() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(w.buf)))
	if _, err := w.w.Write(lenBuf[:]); err != nil {
		w.err = fmt.Errorf("bin: writing chunk length: %w", err)
		return
	}
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = fmt.Errorf("bin: writing chunk: %w", err)
		return
	}
	w.buf = w.buf[:0]
}

// maybeFlush flushes once the pending payload reaches the chunk threshold.
// It is called only at record boundaries, so records never straddle chunks.
func (w *Writer) maybeFlush() {
	if len(w.buf) >= ChunkSize {
		w.flush()
	}
}

// --- primitive appends ----------------------------------------------------

func (w *Writer) u8(v byte)        { w.buf = append(w.buf, v) }
func (w *Writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *Writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *Writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *Writer) rawstr(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *Writer) boolb(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// strRef interns s, emitting its definition record on first sight, and
// returns its table ID.
func (w *Writer) strRef(s string) uint64 {
	if id, ok := w.strIDs[s]; ok {
		return id
	}
	id := uint64(len(w.strIDs))
	w.strIDs[s] = id
	w.u8(byte(KindStrDef))
	w.rawstr(s)
	w.maybeFlush()
	return id
}

// sigRef interns the screen signature, emitting its definition record on
// first sight, and returns its table ID.
func (w *Writer) sigRef(sig uint64) uint64 {
	if id, ok := w.sigIDs[sig]; ok {
		return id
	}
	id := uint64(len(w.sigIDs))
	w.sigIDs[sig] = id
	w.u8(byte(KindSigDef))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, sig)
	w.maybeFlush()
	return id
}

// --- record writers -------------------------------------------------------

func (w *Writer) header(h Header) {
	if w.err != nil {
		return
	}
	w.u8(byte(KindHeader))
	w.rawstr(h.App)
	w.rawstr(h.Tool)
	w.rawstr(h.Setting)
	w.varint(h.Seed)
	w.rawstr(h.ScenarioHash)
	w.varint(int64(h.ExportVersion))
	var flags byte
	if h.Telemetry {
		flags |= 1
	}
	if h.Faults {
		flags |= 2
	}
	w.u8(flags)
	w.maybeFlush()
}

// Event appends one UI transition event (ev.Instance names its instance).
//
//lint:hotpath
func (w *Writer) Event(ev trace.Event) {
	if w.err != nil {
		return
	}
	widget := w.strRef(string(ev.Action.Widget))
	from := w.sigRef(uint64(ev.From))
	to := w.sigRef(uint64(ev.To))
	activity := w.strRef(ev.Activity)
	w.u8(byte(KindEvent))
	w.uvarint(uint64(ev.Instance))
	at := int64(ev.At)
	w.varint(at - w.lastEventAt[ev.Instance])
	w.lastEventAt[ev.Instance] = at
	packed := byte(ev.Action.Kind) & 0x3f
	if ev.Crashed {
		packed |= 0x40
	}
	if ev.Enforced {
		packed |= 0x80
	}
	w.u8(packed)
	w.uvarint(widget)
	w.uvarint(from)
	w.uvarint(to)
	w.uvarint(activity)
	w.maybeFlush()
}

// Sample appends one timeline sample point.
//
//lint:hotpath
func (w *Writer) Sample(s Sample) {
	if w.err != nil {
		return
	}
	w.u8(byte(KindSample))
	w.varint(s.WallNS - w.lastWall)
	w.lastWall = s.WallNS
	w.varint(s.MachineNS)
	w.varint(int64(s.Covered))
	w.varint(int64(s.Crashes))
	if s.AJS != 0 {
		w.u8(1)
		w.f64(s.AJS)
	} else {
		w.u8(0)
	}
	w.maybeFlush()
}

// Decision presence bits (optional fields behind a bitmap; absent fields
// decode as their zero value, exactly matching the JSON view's omitempty).
const (
	decHasEntry = 1 << iota
	decHasMembers
	decHasScore
	decHasOverlap
	decHasPurity
	decHasReason
	decHasBackoff
	decHasIdle
)

// Decision appends one coordinator decision-log entry.
//
//lint:hotpath
func (w *Writer) Decision(d obs.Decision) {
	if w.err != nil {
		return
	}
	kind := w.strRef(d.Kind)
	var entry, reason uint64
	if d.Entry != 0 {
		entry = w.sigRef(d.Entry)
	}
	if d.Reason != "" {
		reason = w.strRef(d.Reason)
	}
	w.u8(byte(KindDecision))
	w.varint(d.AtNS - w.lastDecAt)
	w.lastDecAt = d.AtNS
	w.uvarint(kind)
	w.varint(int64(d.Instance))
	w.varint(int64(d.Sub))
	var flags byte
	if d.Entry != 0 {
		flags |= decHasEntry
	}
	if d.Members != 0 {
		flags |= decHasMembers
	}
	if d.Score != 0 {
		flags |= decHasScore
	}
	if d.Overlap != 0 {
		flags |= decHasOverlap
	}
	if d.Purity != 0 {
		flags |= decHasPurity
	}
	if d.Reason != "" {
		flags |= decHasReason
	}
	if d.BackoffNS != 0 {
		flags |= decHasBackoff
	}
	if d.IdleNS != 0 {
		flags |= decHasIdle
	}
	w.u8(flags)
	if flags&decHasEntry != 0 {
		w.uvarint(entry)
	}
	if flags&decHasMembers != 0 {
		w.varint(int64(d.Members))
	}
	if flags&decHasScore != 0 {
		w.f64(d.Score)
	}
	if flags&decHasOverlap != 0 {
		w.f64(d.Overlap)
	}
	if flags&decHasPurity != 0 {
		w.f64(d.Purity)
	}
	if flags&decHasReason != 0 {
		w.uvarint(reason)
	}
	if flags&decHasBackoff != 0 {
		w.varint(d.BackoffNS)
	}
	if flags&decHasIdle != 0 {
		w.varint(d.IdleNS)
	}
	w.maybeFlush()
}

// Instance appends one end-of-run instance summary.
func (w *Writer) Instance(s InstanceSummary) {
	if w.err != nil {
		return
	}
	sigs := make([]uint64, len(s.Crashes))
	frameRefs := make([][]uint64, len(s.Crashes))
	for i, cr := range s.Crashes {
		sigs[i] = w.strRef(cr.Signature)
		frameRefs[i] = make([]uint64, len(cr.Frames))
		for j, fr := range cr.Frames {
			frameRefs[i][j] = w.strRef(fr)
		}
	}
	w.u8(byte(KindInstance))
	w.varint(int64(s.ID))
	w.varint(s.AllocatedNS)
	w.varint(s.ReleasedNS)
	w.boolb(s.Failed)
	w.varint(int64(s.Coverage))
	w.uvarint(uint64(len(s.Crashes)))
	for i, cr := range s.Crashes {
		w.uvarint(sigs[i])
		w.varint(cr.AtNS)
		w.uvarint(uint64(len(cr.Frames)))
		for _, ref := range frameRefs[i] {
			w.uvarint(ref)
		}
	}
	w.maybeFlush()
}

// Subspace appends one accepted subspace (members already sorted).
func (w *Writer) Subspace(s Subspace) {
	if w.err != nil {
		return
	}
	entry := w.sigRef(s.Entry)
	members := make([]uint64, len(s.Members))
	for i, m := range s.Members {
		members[i] = w.sigRef(m)
	}
	w.u8(byte(KindSubspace))
	w.varint(int64(s.ID))
	w.uvarint(entry)
	w.varint(int64(s.Owner))
	w.varint(s.FoundNS)
	w.uvarint(uint64(len(members)))
	for _, m := range members {
		w.uvarint(m)
	}
	w.maybeFlush()
}

// Screen appends one distinct-screen digest.
func (w *Writer) Screen(s Screen) {
	if w.err != nil {
		return
	}
	sig := w.sigRef(s.Sig)
	activity := w.strRef(s.Activity)
	w.u8(byte(KindScreen))
	w.uvarint(sig)
	w.uvarint(activity)
	w.varint(int64(s.Nodes))
	w.maybeFlush()
}

// Transport appends the chaos run's transport accounting block.
func (w *Writer) Transport(t Transport) {
	if w.err != nil {
		return
	}
	w.u8(byte(KindTransport))
	for _, v := range []int{
		t.Events, t.Delivered, t.Commands, t.CommandFailures, t.Dropped,
		t.Delayed, t.Deaths, t.Hangs, t.AllocFailures, t.LostCommands,
		t.FailedInstances, t.OrphansPending,
	} {
		w.varint(int64(v))
	}
	w.boolb(t.HasMix)
	if t.HasMix {
		for _, v := range t.Mix {
			w.varint(int64(v))
		}
	}
	w.maybeFlush()
}

// Metric appends one metrics-registry snapshot entry.
func (w *Writer) Metric(m obs.Metric) {
	if w.err != nil {
		return
	}
	name := w.strRef(m.Name)
	typ := w.strRef(m.Type)
	w.u8(byte(KindMetric))
	w.uvarint(name)
	w.uvarint(typ)
	w.f64(m.Value)
	w.varint(m.Count)
	w.f64(m.Min)
	w.f64(m.Max)
	w.uvarint(uint64(len(m.Bounds)))
	for _, b := range m.Bounds {
		w.f64(b)
	}
	w.uvarint(uint64(len(m.Counts)))
	for _, c := range m.Counts {
		w.varint(c)
	}
	w.uvarint(uint64(len(m.Points)))
	last := int64(0)
	for _, p := range m.Points {
		w.varint(p.AtNS - last)
		last = p.AtNS
		w.f64(p.Value)
	}
	w.maybeFlush()
}

// End appends the run totals and flushes the final chunk (the caller still
// calls Close, which is then a no-op flush, to collect the error).
func (w *Writer) End(e End) {
	if w.err != nil {
		return
	}
	w.u8(byte(KindEnd))
	w.varint(e.WallNS)
	w.varint(e.MachineNS)
	w.varint(int64(e.Coverage))
	w.varint(int64(e.UniqueCrashes))
	w.flush()
}
