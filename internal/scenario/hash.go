package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// CanonicalHash returns the canonical content hash of one JSON document:
// SHA-256 (hex) over a sorted-key, whitespace-free re-encoding. Member order
// and formatting never change a scenario's identity; any semantic change —
// a field added, removed or altered — does. Numbers hash as written in the
// source ("0.5" and "5e-1" are different spellings, and the emitters always
// write Go's shortest form), strings re-encode through encoding/json.
//
// The hash is the cache key of the compiled-scenario world: it is stamped
// into the v4 export header and the wire-log header, so every result file
// names the exact scenario document that produced it.
func CanonicalHash(data []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return "", fmt.Errorf("scenario: hashing document: %w", err)
	}
	if dec.More() {
		return "", fmt.Errorf("scenario: hashing document: trailing data")
	}
	var buf bytes.Buffer
	writeCanonical(&buf, v)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// CanonicalHashExcluding is CanonicalHash with one top-level member removed
// before hashing. The campaign service keys its run cache with the document's
// hash excluding "name": renaming a run scenario does not change what it
// computes, so two documents differing only in name share one cached cell.
func CanonicalHashExcluding(data []byte, member string) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return "", fmt.Errorf("scenario: hashing document: %w", err)
	}
	if dec.More() {
		return "", fmt.Errorf("scenario: hashing document: trailing data")
	}
	if m, ok := v.(map[string]any); ok {
		delete(m, member)
	}
	var buf bytes.Buffer
	writeCanonical(&buf, v)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// writeCanonical re-encodes a decoded JSON value with sorted object keys and
// no whitespace. The input comes from encoding/json with UseNumber, so the
// only possible types are the five cases below plus nil.
func writeCanonical(buf *bytes.Buffer, v any) {
	switch t := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if t {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(string(t))
	case string:
		b, _ := json.Marshal(t)
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeCanonical(buf, e)
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			buf.Write(kb)
			buf.WriteByte(':')
			writeCanonical(buf, t[k])
		}
		buf.WriteByte('}')
	}
}
