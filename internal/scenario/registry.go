package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// CompileFunc compiles a decoded document's payload into one of the compiled
// scenario types (*App, *FaultPlan, *Campaign). It returns either the value
// or a non-empty issue list; returning both is a programmer error.
type CompileFunc func(doc *Document) (any, []Issue)

type registryKey struct {
	kind    string
	version int
}

var registry = map[registryKey]CompileFunc{}

// Register installs the compiler for one (kind, schemaVersion) pair. New
// schema versions register new compilers beside the old ones, so old files
// keep compiling forever; re-registering a pair is a programmer error.
func Register(kind string, version int, fn CompileFunc) {
	if bodyKey(kind) == "" {
		panic(fmt.Sprintf("scenario: Register: unknown kind %q", kind))
	}
	if version < 1 {
		panic(fmt.Sprintf("scenario: Register: version %d < 1", version))
	}
	if fn == nil {
		panic("scenario: Register: nil compile func")
	}
	k := registryKey{kind: kind, version: version}
	if _, dup := registry[k]; dup {
		panic(fmt.Sprintf("scenario: Register: duplicate compiler for kind %q version %d", kind, version))
	}
	registry[k] = fn
}

// lookup returns the compiler for (kind, version), or nil.
func lookup(kind string, version int) CompileFunc {
	return registry[registryKey{kind: kind, version: version}]
}

// registeredList renders the registered (kind, version) pairs for error
// messages, sorted for determinism.
func registeredList() string {
	pairs := make([]string, 0, len(registry))
	for k := range registry {
		pairs = append(pairs, fmt.Sprintf("%s/v%d", k.kind, k.version))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ", ")
}
