package scenario

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
)

// decodeFields unmarshals raw's members into dst's matching fields (matched
// by json tag; dst is a pointer to a struct of pointer- or slice-typed
// fields, so an absent member is distinguishable from an explicit zero). It
// reports every type mismatch and every unknown key as an issue under path,
// never stopping at the first — the all-errors contract of the package.
func decodeFields(path string, raw map[string]json.RawMessage, dst any) []Issue {
	var issues []Issue
	v := reflect.ValueOf(dst).Elem()
	t := v.Type()
	known := make(map[string]bool, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag := jsonTag(t.Field(i))
		if tag == "" {
			continue
		}
		known[tag] = true
		rawVal, ok := raw[tag]
		if !ok {
			continue
		}
		if err := json.Unmarshal(rawVal, v.Field(i).Addr().Interface()); err != nil {
			issues = append(issues, Issue{path + "." + tag, "want " + wantType(t.Field(i).Type)})
		}
	}
	var unknown []string
	for k := range raw {
		if !known[k] {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	for _, k := range unknown {
		issues = append(issues, Issue{path + "." + k, "unknown field"})
	}
	return issues
}

// jsonTag returns the json member name of one struct field ("" to skip).
func jsonTag(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" || tag == "-" {
		return ""
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

// wantType names the JSON type a struct field expects, for issue messages.
func wantType(t reflect.Type) string {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Bool:
		return "a boolean"
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return "an integer"
	case reflect.Float32, reflect.Float64:
		return "a number"
	case reflect.String:
		return "a string"
	case reflect.Slice, reflect.Array:
		return "an array"
	case reflect.Map, reflect.Struct:
		return "an object"
	default:
		return "a " + t.Kind().String()
	}
}

// sortedKeys returns a raw object's member names in sorted order, so issue
// lists and other derived output never depend on map iteration order.
func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
