package scenario

import (
	"encoding/json"
	"fmt"

	"taopt/internal/faults"
	"taopt/internal/sim"
)

// RunSpec is a compiled run scenario: one fully described campaign run — the
// request envelope of the taoptd campaign service and the unit its run store
// caches. A run document names an app (a catalog reference or an inline app
// spec), a tool, a parallelization setting and the run's budgets and seed;
// the harness lowers it onto a RunConfig (harness.FromRunScenario).
type RunSpec struct {
	Name string
	// AppName is a catalog reference; App is an inline app spec. Exactly one
	// is set (the compiler enforces the XOR).
	AppName string
	App     *App
	Tool    string
	Setting string
	// Instances, Duration, MachineBudget, SampleEvery and Seed are zero when
	// the document omitted them (the harness defaults apply), exactly like a
	// campaign document's fields.
	Instances     int
	Duration      sim.Duration
	MachineBudget sim.Duration
	SampleEvery   sim.Duration
	Seed          int64
	// Telemetry asks the run to collect the observability layer's decision
	// log and metrics, which adds the export's telemetry block.
	Telemetry bool
	// Faults is the run's fault plan (nil when absent).
	Faults *faults.Config
	// Hash is the canonical hash of the run document.
	Hash string
	// ConfigHash is the canonical hash of the run document with the name
	// member removed — the cache key of the campaign service's run store.
	// Two documents that differ only in name (or formatting, or member
	// order) describe the same run and share one cached cell; any semantic
	// change produces a new key.
	ConfigHash string
}

// runJSON is the payload of a run document.
type runJSON struct {
	App            *string         `json:"app"`
	InlineApp      json.RawMessage `json:"inlineApp"`
	Tool           *string         `json:"tool"`
	Setting        *string         `json:"setting"`
	Instances      *int            `json:"instances"`
	DurationMin    *float64        `json:"durationMin"`
	BudgetMin      *float64        `json:"budgetMin"`
	SampleEverySec *float64        `json:"sampleEverySec"`
	Seed           *int64          `json:"seed"`
	Telemetry      *bool           `json:"telemetry"`
	Faults         json.RawMessage `json:"faults"`
}

func init() { Register(KindRun, 1, compileRunV1) }

func compileRunV1(doc *Document) (any, []Issue) {
	path := "$." + bodyKey(KindRun)
	var j runJSON
	issues := decodeFields(path, doc.Body, &j)
	rs := &RunSpec{Name: doc.Name}

	switch {
	case j.App != nil && j.InlineApp != nil:
		issues = append(issues, Issue{path + ".app", "cannot combine with inlineApp (pick one)"})
	case j.App != nil:
		if *j.App == "" {
			issues = append(issues, Issue{path + ".app", "must be non-empty"})
		} else {
			rs.AppName = *j.App
		}
	case j.InlineApp != nil:
		p := path + ".inlineApp"
		name, body, elemIssues := decodeNamedObject(p, j.InlineApp, "app")
		if len(elemIssues) > 0 {
			issues = append(issues, elemIssues...)
			break
		}
		a, appIssues := compileAppBody(name, body, p+".app")
		if len(appIssues) > 0 {
			issues = append(issues, appIssues...)
			break
		}
		// The inline app hashes as if it had been written as a standalone
		// app document, so a service run of an inline app stamps the same
		// scenario_hash into its export as `taopt -scenario app.json` given
		// the equivalent file — the cache-equivalence oracle relies on it.
		hash, err := inlineAppDocHash(doc.SchemaVersion, name, body)
		if err != nil {
			issues = append(issues, Issue{p, err.Error()})
			break
		}
		a.Hash = hash
		rs.App = a
	default:
		issues = append(issues, Issue{path + ".app", "required (name a catalog app, or define one under inlineApp)"})
	}

	if j.Tool == nil {
		issues = append(issues, Issue{path + ".tool", "required"})
	} else if *j.Tool == "" {
		issues = append(issues, Issue{path + ".tool", "must be non-empty"})
	} else {
		rs.Tool = *j.Tool
	}
	if j.Setting == nil {
		issues = append(issues, Issue{path + ".setting", "required"})
	} else {
		known := false
		for _, s := range SettingNames() {
			if s == *j.Setting {
				known = true
				break
			}
		}
		if !known {
			issues = append(issues, Issue{path + ".setting", fmt.Sprintf("unknown setting %q (want one of: %v)", *j.Setting, SettingNames())})
		} else {
			rs.Setting = *j.Setting
		}
	}

	if j.Instances != nil {
		if *j.Instances < 1 {
			issues = append(issues, Issue{path + ".instances", fmt.Sprintf("must be at least 1, got %d (omit the field for the harness default)", *j.Instances)})
		} else {
			rs.Instances = *j.Instances
		}
	}
	if j.DurationMin != nil {
		if *j.DurationMin <= 0 {
			issues = append(issues, Issue{path + ".durationMin", fmt.Sprintf("must be > 0 minutes, got %g (omit the field for the harness default)", *j.DurationMin)})
		} else {
			rs.Duration = sim.Duration(*j.DurationMin * 60e9)
		}
	}
	if j.BudgetMin != nil {
		if *j.BudgetMin <= 0 {
			issues = append(issues, Issue{path + ".budgetMin", fmt.Sprintf("must be > 0 minutes, got %g (omit the field for the harness default)", *j.BudgetMin)})
		} else {
			rs.MachineBudget = sim.Duration(*j.BudgetMin * 60e9)
		}
	}
	if j.SampleEverySec != nil {
		if *j.SampleEverySec <= 0 {
			issues = append(issues, Issue{path + ".sampleEverySec", fmt.Sprintf("must be > 0 seconds, got %g (omit the field for the harness default)", *j.SampleEverySec)})
		} else {
			rs.SampleEvery = seconds(*j.SampleEverySec)
		}
	}
	if j.Seed != nil {
		rs.Seed = *j.Seed
	}
	if j.Telemetry != nil {
		rs.Telemetry = *j.Telemetry
	}
	if j.Faults != nil {
		p := path + ".faults"
		var body map[string]json.RawMessage
		if err := json.Unmarshal(j.Faults, &body); err != nil {
			issues = append(issues, Issue{p, "want an object"})
		} else if fp, fpIssues := compileFaultBody(doc.Name, body, p); len(fpIssues) > 0 {
			issues = append(issues, fpIssues...)
		} else {
			cfg := fp.Config
			rs.Faults = &cfg
		}
	}

	if len(issues) > 0 {
		return nil, issues
	}
	rs.Hash = doc.Hash
	return rs, nil
}

// inlineAppDocHash reconstructs the standalone app document an inline app is
// shorthand for — the same payload wrapped in its own envelope — and returns
// its canonical hash. Raw payload members are carried verbatim, so number
// spellings survive and the hash matches the equivalent standalone file's.
func inlineAppDocHash(version int, name string, body map[string]json.RawMessage) (string, error) {
	doc, err := json.Marshal(map[string]any{
		"schemaVersion": version,
		"kind":          KindApp,
		"name":          name,
		"app":           body,
	})
	if err != nil {
		return "", fmt.Errorf("reconstructing the standalone app document: %v", err)
	}
	return CanonicalHash(doc)
}

// CompileRun compiles data, requiring a run-kind document. The returned spec
// carries both hashes: Hash names the exact document, ConfigHash (the hash
// with the name removed) is the campaign service's cache key.
func CompileRun(data []byte) (*RunSpec, error) {
	c, err := Compile(data)
	if err != nil {
		return nil, err
	}
	if c.Run == nil {
		return nil, fmt.Errorf("scenario: document %q is a %s scenario, want %s", c.Name, c.Kind, KindRun)
	}
	return c.Run, nil
}
