package scenario

import (
	"encoding/json"
	"fmt"

	"taopt/internal/faults"
	"taopt/internal/sim"
)

// FaultPlan is a compiled fault-plan scenario: a named faults.Config ready
// to hand to the harness.
type FaultPlan struct {
	Name   string
	Config faults.Config
	// Hash is the canonical hash of the defining document — for a grid
	// variant inside a campaign, the enclosing campaign document.
	Hash string
}

// faultSpecJSON is the payload of a fault-plan document. Rates and fractions
// are probabilities; durations are expressed in seconds of virtual time
// (the format speaks wall-like units, the compiler lowers to sim.Duration).
// Absent fields take the calibrated DefaultConfig(failureRate) values, so a
// one-line {"failureRate": 0.2} plan is the paper's 20% chaos mix.
type faultSpecJSON struct {
	FailureRate      *float64          `json:"failureRate"`
	HangFraction     *float64          `json:"hangFraction"`
	MinLifeSec       *float64          `json:"minLifeSec"`
	MaxLifeSec       *float64          `json:"maxLifeSec"`
	AllocFailRate    *float64          `json:"allocFailRate"`
	AllocOutageSec   *float64          `json:"allocOutageSec"`
	TraceDropRate    *float64          `json:"traceDropRate"`
	TraceDelayRate   *float64          `json:"traceDelayRate"`
	TraceDelayMaxSec *float64          `json:"traceDelayMaxSec"`
	CmdLossRate      *float64          `json:"cmdLossRate"`
	Context          []json.RawMessage `json:"context"`
}

// contextEventJSON is one element of a fault plan's context array.
type contextEventJSON struct {
	Kind        *string  `json:"kind"`
	StartSec    *float64 `json:"startSec"`
	DurationSec *float64 `json:"durationSec"`
	DelaySec    *float64 `json:"delaySec"`
}

func init() { Register(KindFaultPlan, 1, compileFaultPlanV1) }

func compileFaultPlanV1(doc *Document) (any, []Issue) {
	fp, issues := compileFaultBody(doc.Name, doc.Body, "$."+bodyKey(KindFaultPlan))
	if len(issues) > 0 {
		return nil, issues
	}
	fp.Hash = doc.Hash
	return fp, nil
}

// compileFaultBody compiles one fault-plan payload (shared with campaign
// fault grids).
func compileFaultBody(name string, body map[string]json.RawMessage, path string) (*FaultPlan, []Issue) {
	var j faultSpecJSON
	issues := decodeFields(path, body, &j)

	checkRate := func(field string, v *float64) {
		if v != nil && (*v < 0 || *v > 1) {
			issues = append(issues, Issue{path + "." + field, fmt.Sprintf("must be in [0, 1], got %g", *v)})
		}
	}
	checkSec := func(field string, v *float64) {
		if v != nil && *v < 0 {
			issues = append(issues, Issue{path + "." + field, fmt.Sprintf("must be >= 0 seconds, got %g", *v)})
		}
	}
	checkRate("failureRate", j.FailureRate)
	checkRate("hangFraction", j.HangFraction)
	checkSec("minLifeSec", j.MinLifeSec)
	checkSec("maxLifeSec", j.MaxLifeSec)
	checkRate("allocFailRate", j.AllocFailRate)
	checkSec("allocOutageSec", j.AllocOutageSec)
	checkRate("traceDropRate", j.TraceDropRate)
	checkRate("traceDelayRate", j.TraceDelayRate)
	checkSec("traceDelayMaxSec", j.TraceDelayMaxSec)
	checkRate("cmdLossRate", j.CmdLossRate)

	rate := 0.0
	if j.FailureRate != nil {
		rate = *j.FailureRate
	}
	cfg := faults.DefaultConfig(rate)
	if j.HangFraction != nil {
		cfg.HangFraction = *j.HangFraction
	}
	if j.MinLifeSec != nil {
		cfg.MinLife = seconds(*j.MinLifeSec)
	}
	if j.MaxLifeSec != nil {
		cfg.MaxLife = seconds(*j.MaxLifeSec)
	}
	if j.AllocFailRate != nil {
		cfg.AllocFailRate = *j.AllocFailRate
	}
	if j.AllocOutageSec != nil {
		cfg.AllocOutage = seconds(*j.AllocOutageSec)
	}
	if j.TraceDropRate != nil {
		cfg.TraceDropRate = *j.TraceDropRate
	}
	if j.TraceDelayRate != nil {
		cfg.TraceDelayRate = *j.TraceDelayRate
	}
	if j.TraceDelayMaxSec != nil {
		cfg.TraceDelayMax = seconds(*j.TraceDelayMaxSec)
	}
	if j.CmdLossRate != nil {
		cfg.CmdLossRate = *j.CmdLossRate
	}
	if cfg.MinLife > cfg.MaxLife {
		issues = append(issues, Issue{path + ".minLifeSec", fmt.Sprintf("minLifeSec (%v) exceeds maxLifeSec (%v)", cfg.MinLife, cfg.MaxLife)})
	}

	for i, raw := range j.Context {
		elemPath := fmt.Sprintf("%s.context[%d]", path, i)
		var members map[string]json.RawMessage
		if err := json.Unmarshal(raw, &members); err != nil {
			issues = append(issues, Issue{elemPath, "want an object"})
			continue
		}
		var ev contextEventJSON
		issues = append(issues, decodeFields(elemPath, members, &ev)...)
		var kind faults.ContextKind
		switch {
		case ev.Kind == nil:
			issues = append(issues, Issue{elemPath + ".kind", "required"})
			continue
		case *ev.Kind == faults.NetworkLoss.String():
			kind = faults.NetworkLoss
		case *ev.Kind == faults.BatteryLow.String():
			kind = faults.BatteryLow
		default:
			issues = append(issues, Issue{elemPath + ".kind", fmt.Sprintf("unknown context kind %q (want %q or %q)", *ev.Kind, faults.NetworkLoss, faults.BatteryLow)})
			continue
		}
		event := faults.ContextEvent{Kind: kind}
		if ev.StartSec == nil {
			issues = append(issues, Issue{elemPath + ".startSec", "required"})
		} else if *ev.StartSec < 0 {
			issues = append(issues, Issue{elemPath + ".startSec", fmt.Sprintf("must be >= 0 seconds, got %g", *ev.StartSec)})
		} else {
			event.Start = seconds(*ev.StartSec)
		}
		if ev.DurationSec == nil {
			issues = append(issues, Issue{elemPath + ".durationSec", "required"})
		} else if *ev.DurationSec <= 0 {
			issues = append(issues, Issue{elemPath + ".durationSec", fmt.Sprintf("must be > 0 seconds, got %g", *ev.DurationSec)})
		} else {
			event.Duration = seconds(*ev.DurationSec)
		}
		switch kind {
		case faults.BatteryLow:
			// Battery-low throttling defaults to a half-second trace delay.
			event.Delay = seconds(0.5)
			if ev.DelaySec != nil {
				if *ev.DelaySec <= 0 {
					issues = append(issues, Issue{elemPath + ".delaySec", fmt.Sprintf("must be > 0 seconds, got %g", *ev.DelaySec)})
				} else {
					event.Delay = seconds(*ev.DelaySec)
				}
			}
		case faults.NetworkLoss:
			if ev.DelaySec != nil {
				issues = append(issues, Issue{elemPath + ".delaySec", fmt.Sprintf("only valid for %q windows", faults.BatteryLow)})
			}
		}
		cfg.Context = append(cfg.Context, event)
	}

	if len(issues) > 0 {
		return nil, issues
	}
	return &FaultPlan{Name: name, Config: cfg}, nil
}

// seconds lowers a seconds count from the format into virtual-clock units.
func seconds(s float64) sim.Duration { return sim.Duration(s * 1e9) }
