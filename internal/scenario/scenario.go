// Package scenario is the data layer of the evaluation surface: a versioned
// JSON format describing synthetic apps, fault plans and whole campaigns,
// compiled into the repo's own config types through a generator registry.
//
// A scenario document is a small envelope around one kind-specific payload:
//
//	{
//	  "schemaVersion": 1,
//	  "kind": "app" | "fault-plan" | "campaign" | "run",
//	  "name": "...",
//	  "<kind's payload key>": { ... }
//	}
//
// Three properties define the format:
//
//   - Versioned, strictly. schemaVersion selects the registered compiler for
//     the document's kind; an unregistered (kind, version) pair is an error,
//     never a best-effort parse. A document that omits schemaVersion means
//     version 1 — the defaulting is strict in that nothing else is inferred.
//   - Closed. Unknown fields are rejected at every nesting level, so a typo
//     ("screenMax") fails loudly instead of silently meaning the default.
//   - Exhaustively validated. Validation reports every problem in one pass as
//     an InvalidError carrying JSON-path-located issues, not just the first.
//
// Every successfully parsed document also gets a canonical content hash
// (CanonicalHash): the cache key for compiled scenarios, stamped into run
// exports so a result file names the exact scenario that produced it.
//
// Layering: scenario compiles data into app, faults and sim types only. It
// must never import device, bus or harness — the harness lowers compiled
// campaigns onto its own config types, not the other way around (enforced by
// taoptvet's buslayer table).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CurrentVersion is the schema version this package writes and the one an
// envelope without schemaVersion means.
const CurrentVersion = 1

// Document kinds.
const (
	KindApp       = "app"
	KindFaultPlan = "fault-plan"
	KindCampaign  = "campaign"
	KindRun       = "run"
)

// bodyKey returns the envelope key holding a kind's payload ("" for an
// unknown kind).
func bodyKey(kind string) string {
	switch kind {
	case KindApp:
		return "app"
	case KindFaultPlan:
		return "faults"
	case KindCampaign:
		return "campaign"
	case KindRun:
		return "run"
	}
	return ""
}

// Issue is one validation finding, located by a JSON path rooted at "$".
type Issue struct {
	Path string
	Msg  string
}

func (i Issue) String() string { return i.Path + ": " + i.Msg }

// InvalidError reports every validation failure of one document in source
// order (envelope first, then payload fields, then unknown keys).
type InvalidError struct {
	Issues []Issue
}

func (e *InvalidError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: invalid document (%d issue", len(e.Issues))
	if len(e.Issues) != 1 {
		b.WriteByte('s')
	}
	b.WriteByte(')')
	for _, is := range e.Issues {
		b.WriteString("\n  ")
		b.WriteString(is.String())
	}
	return b.String()
}

// Document is a decoded scenario envelope whose payload has not been
// compiled yet.
type Document struct {
	SchemaVersion int
	Kind          string
	Name          string
	// Body is the kind-specific payload object, keyed by member name.
	Body map[string]json.RawMessage
	// Hash is the canonical content hash of the source document.
	Hash string
}

// Decode parses and validates a scenario envelope. Malformed JSON is a plain
// error; a well-formed document with envelope problems returns an
// *InvalidError listing all of them.
func Decode(data []byte) (*Document, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var top map[string]json.RawMessage
	if err := dec.Decode(&top); err != nil {
		return nil, fmt.Errorf("scenario: parsing document: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parsing document: trailing data after the envelope")
	}
	hash, err := CanonicalHash(data)
	if err != nil {
		return nil, err
	}

	doc := &Document{SchemaVersion: CurrentVersion, Hash: hash}
	var issues []Issue

	if raw, ok := top["schemaVersion"]; ok {
		var v int
		if err := json.Unmarshal(raw, &v); err != nil {
			issues = append(issues, Issue{"$.schemaVersion", "want an integer"})
		} else if v < 1 {
			issues = append(issues, Issue{"$.schemaVersion", fmt.Sprintf("must be >= 1, got %d", v)})
		} else {
			doc.SchemaVersion = v
		}
	}
	if raw, ok := top["kind"]; !ok {
		issues = append(issues, Issue{"$.kind", "required"})
	} else if err := json.Unmarshal(raw, &doc.Kind); err != nil {
		issues = append(issues, Issue{"$.kind", "want a string"})
	} else if bodyKey(doc.Kind) == "" {
		issues = append(issues, Issue{"$.kind", fmt.Sprintf("unknown kind %q (want %s, %s, %s, or %s)", doc.Kind, KindApp, KindFaultPlan, KindCampaign, KindRun)})
		doc.Kind = ""
	}
	if raw, ok := top["name"]; !ok {
		issues = append(issues, Issue{"$.name", "required"})
	} else if err := json.Unmarshal(raw, &doc.Name); err != nil {
		issues = append(issues, Issue{"$.name", "want a string"})
	} else if doc.Name == "" {
		issues = append(issues, Issue{"$.name", "must be non-empty"})
	}

	allowed := map[string]bool{"schemaVersion": true, "kind": true, "name": true}
	if key := bodyKey(doc.Kind); key != "" {
		allowed[key] = true
		if raw, ok := top[key]; !ok {
			issues = append(issues, Issue{"$." + key, "required"})
		} else if err := json.Unmarshal(raw, &doc.Body); err != nil {
			issues = append(issues, Issue{"$." + key, "want an object"})
		}
	}
	for _, key := range sortedKeys(top) {
		if !allowed[key] {
			issues = append(issues, Issue{"$." + key, "unknown field"})
		}
	}

	if len(issues) > 0 {
		return nil, &InvalidError{Issues: issues}
	}
	return doc, nil
}

// Compiled is the result of compiling one scenario document: exactly one of
// App, FaultPlan, Campaign and Run is non-nil, matching Kind.
type Compiled struct {
	Kind    string
	Version int
	Name    string
	// Hash is the canonical content hash of the source document.
	Hash string

	App       *App
	FaultPlan *FaultPlan
	Campaign  *Campaign
	Run       *RunSpec
}

// Compile decodes data and runs the registered compiler for its (kind,
// schemaVersion) pair. Validation failures return an *InvalidError listing
// every issue with its JSON path.
func Compile(data []byte) (*Compiled, error) {
	doc, err := Decode(data)
	if err != nil {
		return nil, err
	}
	fn := lookup(doc.Kind, doc.SchemaVersion)
	if fn == nil {
		return nil, fmt.Errorf("scenario: no compiler registered for kind %q version %d (registered: %s)",
			doc.Kind, doc.SchemaVersion, registeredList())
	}
	v, issues := fn(doc)
	if len(issues) > 0 {
		return nil, &InvalidError{Issues: issues}
	}
	out := &Compiled{Kind: doc.Kind, Version: doc.SchemaVersion, Name: doc.Name, Hash: doc.Hash}
	switch t := v.(type) {
	case *App:
		out.App = t
	case *FaultPlan:
		out.FaultPlan = t
	case *Campaign:
		out.Campaign = t
	case *RunSpec:
		out.Run = t
		// The cache key of the campaign service: the document's canonical
		// hash with the name removed, so renaming a run does not defeat the
		// run store. Stamped here because only Compile holds the raw bytes.
		hash, err := CanonicalHashExcluding(data, "name")
		if err != nil {
			return nil, err
		}
		t.ConfigHash = hash
	default:
		return nil, fmt.Errorf("scenario: compiler for kind %q returned unexpected %T", doc.Kind, v)
	}
	return out, nil
}

// CompileApp compiles data, requiring an app-kind document.
func CompileApp(data []byte) (*App, error) {
	c, err := Compile(data)
	if err != nil {
		return nil, err
	}
	if c.App == nil {
		return nil, fmt.Errorf("scenario: document %q is a %s scenario, want %s", c.Name, c.Kind, KindApp)
	}
	return c.App, nil
}

// CompileFaultPlan compiles data, requiring a fault-plan-kind document.
func CompileFaultPlan(data []byte) (*FaultPlan, error) {
	c, err := Compile(data)
	if err != nil {
		return nil, err
	}
	if c.FaultPlan == nil {
		return nil, fmt.Errorf("scenario: document %q is a %s scenario, want %s", c.Name, c.Kind, KindFaultPlan)
	}
	return c.FaultPlan, nil
}

// CompileCampaign compiles data, requiring a campaign-kind document.
func CompileCampaign(data []byte) (*Campaign, error) {
	c, err := Compile(data)
	if err != nil {
		return nil, err
	}
	if c.Campaign == nil {
		return nil, fmt.Errorf("scenario: document %q is a %s scenario, want %s", c.Name, c.Kind, KindCampaign)
	}
	return c.Campaign, nil
}

// CompileFile is Compile over a reader (convenience for the CLIs).
func CompileFile(r io.Reader) (*Compiled, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading document: %w", err)
	}
	return Compile(data)
}
