package scenario

import (
	"strings"
	"testing"

	"taopt/internal/app"
	"taopt/internal/faults"
	"taopt/internal/sim"
)

func mustCompileApp(t *testing.T, src string) *App {
	t.Helper()
	a, err := CompileApp([]byte(src))
	if err != nil {
		t.Fatalf("CompileApp: %v", err)
	}
	return a
}

func issuePaths(t *testing.T, err error) []string {
	t.Helper()
	inv, ok := err.(*InvalidError)
	if !ok {
		t.Fatalf("want *InvalidError, got %T: %v", err, err)
	}
	paths := make([]string, len(inv.Issues))
	for i, is := range inv.Issues {
		paths[i] = is.Path
	}
	return paths
}

func TestDecodeEnvelopeDefaultsVersion(t *testing.T) {
	doc, err := Decode([]byte(`{"kind": "app", "name": "X", "app": {}}`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if doc.SchemaVersion != CurrentVersion {
		t.Fatalf("SchemaVersion = %d, want %d", doc.SchemaVersion, CurrentVersion)
	}
	if doc.Hash == "" {
		t.Fatal("Decode left Hash empty")
	}
}

func TestDecodeReportsAllEnvelopeIssues(t *testing.T) {
	_, err := Decode([]byte(`{"schemaVersion": 0, "kind": "nope", "extra": 1}`))
	paths := issuePaths(t, err)
	want := []string{"$.schemaVersion", "$.kind", "$.name", "$.extra"}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing issue at %s in %v", w, paths)
		}
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	if _, err := Decode([]byte(`{"kind":"app","name":"X","app":{}} {"more": 1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestCompileUnknownVersion(t *testing.T) {
	_, err := Compile([]byte(`{"schemaVersion": 99, "kind": "app", "name": "X", "app": {}}`))
	if err == nil || !strings.Contains(err.Error(), "no compiler registered") {
		t.Fatalf("want unregistered-version error, got %v", err)
	}
	if !strings.Contains(err.Error(), "app/v1") {
		t.Fatalf("error should list registered pairs, got %v", err)
	}
}

func TestCompileAppDefaults(t *testing.T) {
	a := mustCompileApp(t, `{"kind": "app", "name": "Fresh", "app": {}}`)
	want := app.DefaultSpec("Fresh", app.SeedFor("Fresh"))
	if a.Spec != want {
		t.Fatalf("empty payload spec = %+v, want defaults %+v", a.Spec, want)
	}
	if a.Login {
		t.Fatal("default app requires login")
	}
}

func TestCompileAppOverrides(t *testing.T) {
	a := mustCompileApp(t, `{"kind": "app", "name": "Big", "app": {
		"version": "2.0", "subspaces": 12, "screensMin": 130, "screensMax": 197,
		"crashProbMin": 0.2, "crashProbMax": 0.4, "login": true, "seed": 77}}`)
	s := a.Spec
	if s.Version != "2.0" || s.Subspaces != 12 || s.ScreensMin != 130 || s.ScreensMax != 197 ||
		s.CrashProbMin != 0.2 || s.CrashProbMax != 0.4 || !s.LoginRequired || s.Seed != 77 {
		t.Fatalf("overrides not applied: %+v", s)
	}
	if !a.Login {
		t.Fatal("login gate not set")
	}
	// Untouched knobs keep generator defaults.
	def := app.DefaultSpec("Big", 77)
	if s.WidgetsMin != def.WidgetsMin || s.ExtraMethods != def.ExtraMethods {
		t.Fatalf("defaults perturbed: %+v", s)
	}
}

func TestCompileAppAllErrors(t *testing.T) {
	_, err := CompileApp([]byte(`{"kind": "app", "name": "Bad", "app": {
		"subspaces": 0, "crashProbMin": 1.5, "version": "", "screenMax": 9, "screensMin": "x"}}`))
	paths := issuePaths(t, err)
	want := []string{"$.app.subspaces", "$.app.crashProbMin", "$.app.version", "$.app.screenMax", "$.app.screensMin"}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing issue at %s in %v", w, paths)
		}
	}
}

func TestCompileAppMinMaxCross(t *testing.T) {
	_, err := CompileApp([]byte(`{"kind": "app", "name": "X", "app": {"screensMin": 50, "screensMax": 20}}`))
	if err == nil || !strings.Contains(err.Error(), "screensMin") {
		t.Fatalf("min>max accepted: %v", err)
	}
	// Explicit min above the defaulted max must also be caught.
	_, err = CompileApp([]byte(`{"kind": "app", "name": "X", "app": {"screensMin": 5000}}`))
	if err == nil {
		t.Fatal("min above defaulted max accepted")
	}
}

func TestCompileKindMismatch(t *testing.T) {
	_, err := CompileFaultPlan([]byte(`{"kind": "app", "name": "X", "app": {}}`))
	if err == nil || !strings.Contains(err.Error(), "want fault-plan") {
		t.Fatalf("kind mismatch not reported: %v", err)
	}
}

func TestEmitAppFixedPoint(t *testing.T) {
	a := mustCompileApp(t, `{"kind": "app", "name": "Round", "app": {"subspaces": 9, "login": true}}`)
	out, err := EmitApp(a)
	if err != nil {
		t.Fatalf("EmitApp: %v", err)
	}
	b, err := CompileApp(out)
	if err != nil {
		t.Fatalf("compile emitted: %v", err)
	}
	if b.Spec != a.Spec || b.Login != a.Login {
		t.Fatalf("emit round-trip changed the app:\n%+v\n%+v", a.Spec, b.Spec)
	}
	out2, err := EmitApp(b)
	if err != nil {
		t.Fatalf("EmitApp second: %v", err)
	}
	if string(out) != string(out2) {
		t.Fatal("emit is not a fixed point")
	}
}

func TestCanonicalHashStability(t *testing.T) {
	a := `{"kind": "app", "name": "X", "app": {"subspaces": 9, "login": true}}`
	b := "{\n  \"app\": {\"login\": true, \"subspaces\": 9},\n  \"name\": \"X\",\n  \"kind\": \"app\"\n}"
	ha, err := CanonicalHash([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHash([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("hash not stable under key order/whitespace: %s vs %s", ha, hb)
	}
	hc, err := CanonicalHash([]byte(`{"kind": "app", "name": "X", "app": {"subspaces": 10, "login": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("hash unchanged by a semantic edit")
	}
}

func TestCompiledCarriesHash(t *testing.T) {
	src := `{"kind": "app", "name": "X", "app": {}}`
	c, err := Compile([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want, err := CanonicalHash([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash != want || c.App.Hash != want {
		t.Fatalf("hash not stamped: compiled=%s app=%s want=%s", c.Hash, c.App.Hash, want)
	}
}

func TestCompileFaultPlanDefaults(t *testing.T) {
	fp, err := CompileFaultPlan([]byte(`{"kind": "fault-plan", "name": "20%", "faults": {"failureRate": 0.2}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := faults.DefaultConfig(0.2)
	got := fp.Config
	if got.FailureRate != want.FailureRate || got.AllocFailRate != want.AllocFailRate ||
		got.TraceDelayRate != want.TraceDelayRate || got.TraceDropRate != want.TraceDropRate ||
		got.HangFraction != want.HangFraction || got.MinLife != want.MinLife || got.MaxLife != want.MaxLife {
		t.Fatalf("plan = %+v, want DefaultConfig(0.2) = %+v", got, want)
	}
}

func TestCompileFaultPlanContext(t *testing.T) {
	fp, err := CompileFaultPlan([]byte(`{"kind": "fault-plan", "name": "outage", "faults": {
		"context": [
			{"kind": "network-loss", "startSec": 60, "durationSec": 30},
			{"kind": "battery-low", "startSec": 300, "durationSec": 120, "delaySec": 2}
		]}}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx := fp.Config.Context
	if len(ctx) != 2 {
		t.Fatalf("context = %+v, want 2 events", ctx)
	}
	if ctx[0].Kind != faults.NetworkLoss || ctx[0].Start != sim.Duration(60e9) || ctx[0].Duration != sim.Duration(30e9) {
		t.Fatalf("event 0 = %+v", ctx[0])
	}
	if ctx[1].Kind != faults.BatteryLow || ctx[1].Delay != sim.Duration(2e9) {
		t.Fatalf("event 1 = %+v", ctx[1])
	}
	if !fp.Config.Enabled() {
		t.Fatal("context-only plan reports disabled")
	}
}

func TestCompileFaultPlanContextErrors(t *testing.T) {
	_, err := CompileFaultPlan([]byte(`{"kind": "fault-plan", "name": "bad", "faults": {
		"context": [
			{"kind": "solar-flare", "startSec": 0, "durationSec": 1},
			{"kind": "network-loss", "durationSec": -1, "delaySec": 3},
			{"kind": "battery-low", "startSec": 5}
		]}}`))
	paths := issuePaths(t, err)
	want := []string{
		"$.faults.context[0].kind",
		"$.faults.context[1].startSec",
		"$.faults.context[1].durationSec",
		"$.faults.context[1].delaySec",
		"$.faults.context[2].durationSec",
	}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing issue at %s in %v", w, paths)
		}
	}
}

func TestCompileCampaign(t *testing.T) {
	c, err := CompileCampaign([]byte(`{"kind": "campaign", "name": "grid", "campaign": {
		"apps": ["Zedge"],
		"inlineApps": [{"name": "Tiny", "app": {"subspaces": 4}}],
		"tools": ["monkey", "stoat"],
		"settings": ["baseline", "taopt-duration"],
		"instances": 5, "durationMin": 60, "sampleEverySec": 10, "workers": 2, "seed": 7,
		"faults": {"failureRate": 0.05}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Apps) != 1 || c.Apps[0] != "Zedge" || len(c.InlineApps) != 1 || c.InlineApps[0].Spec.Name != "Tiny" {
		t.Fatalf("apps = %+v / %+v", c.Apps, c.InlineApps)
	}
	if c.Instances != 5 || c.Duration != sim.Duration(3600e9) || c.SampleEvery != sim.Duration(10e9) ||
		c.Workers != 2 || c.Seed != 7 {
		t.Fatalf("grid knobs wrong: %+v", c)
	}
	if c.Faults == nil || c.Faults.FailureRate != 0.05 {
		t.Fatalf("faults = %+v", c.Faults)
	}
	if c.InlineApps[0].Hash != c.Hash {
		t.Fatal("inline app does not carry the campaign hash")
	}
}

func TestCompileCampaignFaultGrid(t *testing.T) {
	c, err := CompileCampaign([]byte(`{"kind": "campaign", "name": "chaos", "campaign": {
		"settings": ["taopt-duration"],
		"faultGrid": [
			{"name": "0%", "faults": {"failureRate": 0}},
			{"name": "20%", "faults": {"failureRate": 0.2}}
		]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FaultGrid) != 2 || c.FaultGrid[0].Name != "0%" || c.FaultGrid[1].Config.FailureRate != 0.2 {
		t.Fatalf("grid = %+v", c.FaultGrid)
	}
}

func TestCompileCampaignErrors(t *testing.T) {
	_, err := CompileCampaign([]byte(`{"kind": "campaign", "name": "bad", "campaign": {
		"apps": ["Zedge", "Zedge", ""],
		"settings": ["warp-speed"],
		"instances": 0,
		"faults": {"failureRate": 0.1},
		"faultGrid": [{"name": "a", "faults": {}}, {"name": "a", "faults": {}}]}}`))
	paths := issuePaths(t, err)
	want := []string{
		"$.campaign.apps[1]",
		"$.campaign.apps[2]",
		"$.campaign.settings[0]",
		"$.campaign.instances",
		"$.campaign.faults",
		"$.campaign.faultGrid[1]",
	}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing issue at %s in %v", w, paths)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(KindApp, 1, func(doc *Document) (any, []Issue) { return nil, nil })
}
