package scenario

import (
	"encoding/json"
	"fmt"

	"taopt/internal/faults"
	"taopt/internal/sim"
)

// Campaign is a compiled campaign scenario: the grid of apps × tools ×
// settings with its budget, cadence and fault plan. Empty Apps, Tools or
// Settings mean "the runner decides" — a partial campaign (for example one
// that only carries a fault grid) composes with command-line flags.
type Campaign struct {
	Name string
	// Apps are catalog references; InlineApps are defined in the document
	// itself. A runner treats their union as the campaign's app axis.
	Apps       []string
	InlineApps []App
	Tools      []string
	Settings   []string
	// Instances, Duration, SampleEvery, Workers and Seed are zero when the
	// document omitted them (the runner's defaults apply).
	Instances   int
	Duration    sim.Duration
	SampleEvery sim.Duration
	Workers     int
	Seed        int64
	// Faults is the single fault plan applied to every cell (nil when
	// absent); FaultGrid is a set of named variants to sweep instead. A
	// document may set at most one of the two.
	Faults    *faults.Config
	FaultGrid []FaultPlan
	// Hash is the canonical hash of the campaign document.
	Hash string
}

// campaignJSON is the payload of a campaign document.
type campaignJSON struct {
	Apps           []string          `json:"apps"`
	InlineApps     []json.RawMessage `json:"inlineApps"`
	Tools          []string          `json:"tools"`
	Settings       []string          `json:"settings"`
	Instances      *int              `json:"instances"`
	DurationMin    *float64          `json:"durationMin"`
	SampleEverySec *float64          `json:"sampleEverySec"`
	Workers        *int              `json:"workers"`
	Seed           *int64            `json:"seed"`
	Faults         json.RawMessage   `json:"faults"`
	FaultGrid      []json.RawMessage `json:"faultGrid"`
}

// SettingNames lists the parallelization settings a campaign document may
// name, matching harness.Setting.String. The list lives here (not imported
// from the harness) because scenario sits below the harness in the layer
// order; the harness's FromScenario parses the names back and a test pins
// the two lists against each other.
func SettingNames() []string {
	return []string{"baseline", "taopt-duration", "taopt-resource", "activity-partition", "single-long", "pats"}
}

func init() { Register(KindCampaign, 1, compileCampaignV1) }

func compileCampaignV1(doc *Document) (any, []Issue) {
	path := "$." + bodyKey(KindCampaign)
	var j campaignJSON
	issues := decodeFields(path, doc.Body, &j)
	c := &Campaign{Name: doc.Name}

	seen := map[string]string{}
	checkDup := func(issuePath, name string) {
		if prev, dup := seen[name]; dup {
			issues = append(issues, Issue{issuePath, fmt.Sprintf("duplicate app %q (already at %s)", name, prev)})
		} else {
			seen[name] = issuePath
		}
	}
	for i, name := range j.Apps {
		p := fmt.Sprintf("%s.apps[%d]", path, i)
		if name == "" {
			issues = append(issues, Issue{p, "must be non-empty"})
			continue
		}
		checkDup(p, name)
		c.Apps = append(c.Apps, name)
	}
	for i, raw := range j.InlineApps {
		p := fmt.Sprintf("%s.inlineApps[%d]", path, i)
		name, body, elemIssues := decodeNamedObject(p, raw, "app")
		if len(elemIssues) > 0 {
			issues = append(issues, elemIssues...)
			continue
		}
		checkDup(p, name)
		a, appIssues := compileAppBody(name, body, p+".app")
		if len(appIssues) > 0 {
			issues = append(issues, appIssues...)
			continue
		}
		a.Hash = doc.Hash
		c.InlineApps = append(c.InlineApps, *a)
	}

	for i, tool := range j.Tools {
		if tool == "" {
			issues = append(issues, Issue{fmt.Sprintf("%s.tools[%d]", path, i), "must be non-empty"})
			continue
		}
		c.Tools = append(c.Tools, tool)
	}
	known := map[string]bool{}
	for _, s := range SettingNames() {
		known[s] = true
	}
	for i, s := range j.Settings {
		if !known[s] {
			issues = append(issues, Issue{fmt.Sprintf("%s.settings[%d]", path, i), fmt.Sprintf("unknown setting %q (want one of: %v)", s, SettingNames())})
			continue
		}
		c.Settings = append(c.Settings, s)
	}

	if j.Instances != nil {
		if *j.Instances < 1 {
			issues = append(issues, Issue{path + ".instances", fmt.Sprintf("must be at least 1, got %d (omit the field for the harness default)", *j.Instances)})
		} else {
			c.Instances = *j.Instances
		}
	}
	if j.DurationMin != nil {
		if *j.DurationMin <= 0 {
			issues = append(issues, Issue{path + ".durationMin", fmt.Sprintf("must be > 0 minutes, got %g (omit the field for the harness default)", *j.DurationMin)})
		} else {
			c.Duration = sim.Duration(*j.DurationMin * 60e9)
		}
	}
	if j.SampleEverySec != nil {
		if *j.SampleEverySec <= 0 {
			issues = append(issues, Issue{path + ".sampleEverySec", fmt.Sprintf("must be > 0 seconds, got %g (omit the field for the harness default)", *j.SampleEverySec)})
		} else {
			c.SampleEvery = seconds(*j.SampleEverySec)
		}
	}
	if j.Workers != nil {
		if *j.Workers < 1 {
			issues = append(issues, Issue{path + ".workers", fmt.Sprintf("must be at least 1, got %d (omit the field for the harness default)", *j.Workers)})
		} else {
			c.Workers = *j.Workers
		}
	}
	if j.Seed != nil {
		c.Seed = *j.Seed
	}

	if j.Faults != nil && j.FaultGrid != nil {
		issues = append(issues, Issue{path + ".faults", "cannot combine with faultGrid (pick one)"})
	}
	if j.Faults != nil {
		p := path + ".faults"
		var body map[string]json.RawMessage
		if err := json.Unmarshal(j.Faults, &body); err != nil {
			issues = append(issues, Issue{p, "want an object"})
		} else if fp, fpIssues := compileFaultBody(doc.Name, body, p); len(fpIssues) > 0 {
			issues = append(issues, fpIssues...)
		} else {
			cfg := fp.Config
			c.Faults = &cfg
		}
	}
	gridSeen := map[string]string{}
	for i, raw := range j.FaultGrid {
		p := fmt.Sprintf("%s.faultGrid[%d]", path, i)
		name, body, elemIssues := decodeNamedObject(p, raw, "faults")
		if len(elemIssues) > 0 {
			issues = append(issues, elemIssues...)
			continue
		}
		if prev, dup := gridSeen[name]; dup {
			issues = append(issues, Issue{p, fmt.Sprintf("duplicate fault-grid variant %q (already at %s)", name, prev)})
			continue
		}
		gridSeen[name] = p
		fp, fpIssues := compileFaultBody(name, body, p+".faults")
		if len(fpIssues) > 0 {
			issues = append(issues, fpIssues...)
			continue
		}
		fp.Hash = doc.Hash
		c.FaultGrid = append(c.FaultGrid, *fp)
	}

	if len(issues) > 0 {
		return nil, issues
	}
	c.Hash = doc.Hash
	return c, nil
}

// decodeNamedObject decodes one {"name": ..., "<key>": {...}} array element
// (the shape of inlineApps and faultGrid entries), rejecting unknown members.
func decodeNamedObject(path string, raw json.RawMessage, key string) (name string, body map[string]json.RawMessage, issues []Issue) {
	var members map[string]json.RawMessage
	if err := json.Unmarshal(raw, &members); err != nil {
		return "", nil, []Issue{{path, "want an object"}}
	}
	if rawName, ok := members["name"]; !ok {
		issues = append(issues, Issue{path + ".name", "required"})
	} else if err := json.Unmarshal(rawName, &name); err != nil {
		issues = append(issues, Issue{path + ".name", "want a string"})
	} else if name == "" {
		issues = append(issues, Issue{path + ".name", "must be non-empty"})
	}
	if rawBody, ok := members[key]; !ok {
		issues = append(issues, Issue{path + "." + key, "required"})
	} else if err := json.Unmarshal(rawBody, &body); err != nil {
		issues = append(issues, Issue{path + "." + key, "want an object"})
	}
	for _, k := range sortedKeys(members) {
		if k != "name" && k != key {
			issues = append(issues, Issue{path + "." + k, "unknown field"})
		}
	}
	return name, body, issues
}
