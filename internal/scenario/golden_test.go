package scenario_test

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"taopt/internal/scenario"
)

// goldenFile is the committed hash manifest for the example scenarios; its
// line format matches `appgen -hash` so the file regenerates with
//
//	for f in testdata/scenarios/*.json; do go run ./cmd/appgen -hash "$f"; done > testdata/scenarios/HASHES
const goldenFile = "HASHES"

// TestScenarioHashesGolden pins every checked-in scenario document to its
// committed canonical hash: an accidental edit to an example (or a change to
// the canonicalisation itself) shows up as a hash mismatch here and in the
// CI scenario-stability step.
func TestScenarioHashesGolden(t *testing.T) {
	root := filepath.Join("..", "..")
	dir := filepath.Join(root, "testdata", "scenarios")

	f, err := os.Open(filepath.Join(dir, goldenFile))
	if err != nil {
		t.Fatalf("open golden: %v", err)
	}
	defer f.Close()

	listed := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		hash, path, ok := strings.Cut(line, "  ")
		if !ok {
			t.Fatalf("golden line %q: want %q separator", line, "  ")
		}
		listed[path] = hash
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading golden: %v", err)
	}

	paths := make([]string, 0, len(listed))
	for p := range listed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		raw, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(p)))
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		c, err := scenario.Compile(raw)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if c.Hash != listed[p] {
			t.Errorf("%s: hash %s, golden says %s (regenerate HASHES if the change is deliberate)", p, c.Hash, listed[p])
		}
	}

	// Every example document must be pinned: a new file that is not in the
	// manifest would otherwise drift silently.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read scenarios dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		if _, ok := listed["testdata/scenarios/"+e.Name()]; !ok {
			t.Errorf("testdata/scenarios/%s is not listed in %s", e.Name(), goldenFile)
		}
	}
}
