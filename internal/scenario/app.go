package scenario

import (
	"encoding/json"
	"fmt"

	"taopt/internal/app"
)

// App is a compiled app scenario: the fully resolved generator spec plus the
// catalog's login gate.
type App struct {
	Spec app.Spec
	// Login mirrors Table 3's asterisk: the app requires a login to access
	// most features (the harness auto-logs in, as the paper does).
	Login bool
	// Hash is the canonical hash of the scenario document that defined the
	// app — for an inline app, the enclosing campaign document.
	Hash string
}

// Generate builds the app the spec describes (deterministic in the spec).
func (a *App) Generate() *app.App { return app.Generate(a.Spec) }

// appSpecJSON is the payload of an app-kind document: every app.Spec knob
// plus the login gate. Pointer fields distinguish "absent, use the generator
// default" from an explicit value; explicit zeros are rejected by validation
// because app.Spec treats zero as "default" and could not honor them.
type appSpecJSON struct {
	Version   *string `json:"version"`
	Category  *string `json:"category"`
	Downloads *string `json:"downloads"`
	Seed      *int64  `json:"seed"`
	Login     *bool   `json:"login"`

	Subspaces          *int     `json:"subspaces"`
	ScreensMin         *int     `json:"screensMin"`
	ScreensMax         *int     `json:"screensMax"`
	WidgetsMin         *int     `json:"widgetsMin"`
	WidgetsMax         *int     `json:"widgetsMax"`
	ActivitiesMin      *int     `json:"activitiesMin"`
	ActivitiesMax      *int     `json:"activitiesMax"`
	SharedActivityProb *float64 `json:"sharedActivityProb"`
	CrossProb          *float64 `json:"crossProb"`
	ExitProb           *float64 `json:"exitProb"`
	LayerWidth         *int     `json:"layerWidth"`

	VisitMethodsMin  *int `json:"visitMethodsMin"`
	VisitMethodsMax  *int `json:"visitMethodsMax"`
	WidgetMethodsMin *int `json:"widgetMethodsMin"`
	WidgetMethodsMax *int `json:"widgetMethodsMax"`
	ExtraMethods     *int `json:"extraMethods"`

	CrashSites   *int     `json:"crashSites"`
	CrashProbMin *float64 `json:"crashProbMin"`
	CrashProbMax *float64 `json:"crashProbMax"`

	VolatileTextProb *float64 `json:"volatileTextProb"`
	DecorationsMax   *int     `json:"decorationsMax"`
}

func init() { Register(KindApp, 1, compileAppV1) }

func compileAppV1(doc *Document) (any, []Issue) {
	a, issues := compileAppBody(doc.Name, doc.Body, "$."+bodyKey(KindApp))
	if len(issues) > 0 {
		return nil, issues
	}
	a.Hash = doc.Hash
	return a, nil
}

// compileAppBody compiles one app payload (shared with campaign inline
// apps): overrides applied onto app.DefaultSpec, exactly as the hard-coded
// catalog built its entries, so a round-tripped catalog app is byte-identical.
func compileAppBody(name string, body map[string]json.RawMessage, path string) (*App, []Issue) {
	var j appSpecJSON
	issues := decodeFields(path, body, &j)

	checkPos := func(field string, v *int) {
		if v != nil && *v < 1 {
			issues = append(issues, Issue{path + "." + field, fmt.Sprintf("must be at least 1, got %d (omit the field for the generator default)", *v)})
		}
	}
	checkProb := func(field string, v *float64) {
		if v != nil && (*v <= 0 || *v > 1) {
			issues = append(issues, Issue{path + "." + field, fmt.Sprintf("must be in (0, 1], got %g (omit the field for the generator default)", *v)})
		}
	}
	checkStr := func(field string, v *string) {
		if v != nil && *v == "" {
			issues = append(issues, Issue{path + "." + field, "must be non-empty (omit the field for the generator default)"})
		}
	}
	checkStr("version", j.Version)
	checkStr("category", j.Category)
	checkStr("downloads", j.Downloads)
	checkPos("subspaces", j.Subspaces)
	checkPos("screensMin", j.ScreensMin)
	checkPos("screensMax", j.ScreensMax)
	checkPos("widgetsMin", j.WidgetsMin)
	checkPos("widgetsMax", j.WidgetsMax)
	checkPos("activitiesMin", j.ActivitiesMin)
	checkPos("activitiesMax", j.ActivitiesMax)
	checkProb("sharedActivityProb", j.SharedActivityProb)
	checkProb("crossProb", j.CrossProb)
	checkProb("exitProb", j.ExitProb)
	checkPos("layerWidth", j.LayerWidth)
	checkPos("visitMethodsMin", j.VisitMethodsMin)
	checkPos("visitMethodsMax", j.VisitMethodsMax)
	checkPos("widgetMethodsMin", j.WidgetMethodsMin)
	checkPos("widgetMethodsMax", j.WidgetMethodsMax)
	checkPos("extraMethods", j.ExtraMethods)
	checkPos("crashSites", j.CrashSites)
	checkProb("crashProbMin", j.CrashProbMin)
	checkProb("crashProbMax", j.CrashProbMax)
	checkProb("volatileTextProb", j.VolatileTextProb)
	checkPos("decorationsMax", j.DecorationsMax)

	spec := buildSpec(name, j)
	// Cross-field checks run on the resolved spec so a conflict between an
	// explicit value and a defaulted partner is still caught.
	checkOrder := func(minField string, lo, hi int, maxField string) {
		if lo > hi {
			issues = append(issues, Issue{path + "." + minField, fmt.Sprintf("%s (%d) exceeds %s (%d)", minField, lo, maxField, hi)})
		}
	}
	checkOrder("screensMin", spec.ScreensMin, spec.ScreensMax, "screensMax")
	checkOrder("widgetsMin", spec.WidgetsMin, spec.WidgetsMax, "widgetsMax")
	checkOrder("activitiesMin", spec.ActivitiesMin, spec.ActivitiesMax, "activitiesMax")
	checkOrder("visitMethodsMin", spec.VisitMethodsMin, spec.VisitMethodsMax, "visitMethodsMax")
	checkOrder("widgetMethodsMin", spec.WidgetMethodsMin, spec.WidgetMethodsMax, "widgetMethodsMax")
	if spec.CrashProbMin > spec.CrashProbMax {
		issues = append(issues, Issue{path + ".crashProbMin", fmt.Sprintf("crashProbMin (%g) exceeds crashProbMax (%g)", spec.CrashProbMin, spec.CrashProbMax)})
	}
	if len(issues) > 0 {
		return nil, issues
	}
	return &App{Spec: spec, Login: spec.LoginRequired}, nil
}

// buildSpec resolves the payload onto app.DefaultSpec: absent fields keep
// the generator default, and an absent seed derives from the name exactly as
// the catalog always has (app.SeedFor).
func buildSpec(name string, j appSpecJSON) app.Spec {
	seed := app.SeedFor(name)
	if j.Seed != nil {
		seed = *j.Seed
	}
	s := app.DefaultSpec(name, seed)
	if j.Version != nil {
		s.Version = *j.Version
	}
	if j.Category != nil {
		s.Category = *j.Category
	}
	if j.Downloads != nil {
		s.Downloads = *j.Downloads
	}
	if j.Subspaces != nil {
		s.Subspaces = *j.Subspaces
	}
	if j.ScreensMin != nil {
		s.ScreensMin = *j.ScreensMin
	}
	if j.ScreensMax != nil {
		s.ScreensMax = *j.ScreensMax
	}
	if j.WidgetsMin != nil {
		s.WidgetsMin = *j.WidgetsMin
	}
	if j.WidgetsMax != nil {
		s.WidgetsMax = *j.WidgetsMax
	}
	if j.ActivitiesMin != nil {
		s.ActivitiesMin = *j.ActivitiesMin
	}
	if j.ActivitiesMax != nil {
		s.ActivitiesMax = *j.ActivitiesMax
	}
	if j.SharedActivityProb != nil {
		s.SharedActivityProb = *j.SharedActivityProb
	}
	if j.CrossProb != nil {
		s.CrossProb = *j.CrossProb
	}
	if j.ExitProb != nil {
		s.ExitProb = *j.ExitProb
	}
	if j.LayerWidth != nil {
		s.LayerWidth = *j.LayerWidth
	}
	if j.VisitMethodsMin != nil {
		s.VisitMethodsMin = *j.VisitMethodsMin
	}
	if j.VisitMethodsMax != nil {
		s.VisitMethodsMax = *j.VisitMethodsMax
	}
	if j.WidgetMethodsMin != nil {
		s.WidgetMethodsMin = *j.WidgetMethodsMin
	}
	if j.WidgetMethodsMax != nil {
		s.WidgetMethodsMax = *j.WidgetMethodsMax
	}
	if j.ExtraMethods != nil {
		s.ExtraMethods = *j.ExtraMethods
	}
	if j.CrashSites != nil {
		s.CrashSites = *j.CrashSites
	}
	if j.CrashProbMin != nil {
		s.CrashProbMin = *j.CrashProbMin
	}
	if j.CrashProbMax != nil {
		s.CrashProbMax = *j.CrashProbMax
	}
	if j.VolatileTextProb != nil {
		s.VolatileTextProb = *j.VolatileTextProb
	}
	if j.DecorationsMax != nil {
		s.DecorationsMax = *j.DecorationsMax
	}
	if j.Login != nil {
		s.LoginRequired = *j.Login
	}
	return s
}

// appDoc is the emitted form of an app scenario: every knob explicit, so an
// emitted file is self-contained and compile∘emit is a fixed point.
type appDoc struct {
	SchemaVersion int        `json:"schemaVersion"`
	Kind          string     `json:"kind"`
	Name          string     `json:"name"`
	App           appDocSpec `json:"app"`
}

type appDocSpec struct {
	Version   string `json:"version"`
	Category  string `json:"category"`
	Downloads string `json:"downloads"`
	Seed      int64  `json:"seed"`
	Login     bool   `json:"login"`

	Subspaces          int     `json:"subspaces"`
	ScreensMin         int     `json:"screensMin"`
	ScreensMax         int     `json:"screensMax"`
	WidgetsMin         int     `json:"widgetsMin"`
	WidgetsMax         int     `json:"widgetsMax"`
	ActivitiesMin      int     `json:"activitiesMin"`
	ActivitiesMax      int     `json:"activitiesMax"`
	SharedActivityProb float64 `json:"sharedActivityProb"`
	CrossProb          float64 `json:"crossProb"`
	ExitProb           float64 `json:"exitProb"`
	LayerWidth         int     `json:"layerWidth"`

	VisitMethodsMin  int `json:"visitMethodsMin"`
	VisitMethodsMax  int `json:"visitMethodsMax"`
	WidgetMethodsMin int `json:"widgetMethodsMin"`
	WidgetMethodsMax int `json:"widgetMethodsMax"`
	ExtraMethods     int `json:"extraMethods"`

	CrashSites   int     `json:"crashSites"`
	CrashProbMin float64 `json:"crashProbMin"`
	CrashProbMax float64 `json:"crashProbMax"`

	VolatileTextProb float64 `json:"volatileTextProb"`
	DecorationsMax   int     `json:"decorationsMax"`
}

// EmitApp round-trips a compiled app back out as a scenario file: a version-1
// app document with every generator knob written explicitly. Compiling the
// emitted bytes yields an identical App (the fuzz target pins this), which is
// how the 18 catalog files were generated from the pre-refactor hard-coded
// entries.
func EmitApp(a *App) ([]byte, error) {
	s := a.Spec
	doc := appDoc{
		SchemaVersion: CurrentVersion,
		Kind:          KindApp,
		Name:          s.Name,
		App: appDocSpec{
			Version:            s.Version,
			Category:           s.Category,
			Downloads:          s.Downloads,
			Seed:               s.Seed,
			Login:              a.Login,
			Subspaces:          s.Subspaces,
			ScreensMin:         s.ScreensMin,
			ScreensMax:         s.ScreensMax,
			WidgetsMin:         s.WidgetsMin,
			WidgetsMax:         s.WidgetsMax,
			ActivitiesMin:      s.ActivitiesMin,
			ActivitiesMax:      s.ActivitiesMax,
			SharedActivityProb: s.SharedActivityProb,
			CrossProb:          s.CrossProb,
			ExitProb:           s.ExitProb,
			LayerWidth:         s.LayerWidth,
			VisitMethodsMin:    s.VisitMethodsMin,
			VisitMethodsMax:    s.VisitMethodsMax,
			WidgetMethodsMin:   s.WidgetMethodsMin,
			WidgetMethodsMax:   s.WidgetMethodsMax,
			ExtraMethods:       s.ExtraMethods,
			CrashSites:         s.CrashSites,
			CrashProbMin:       s.CrashProbMin,
			CrashProbMax:       s.CrashProbMax,
			VolatileTextProb:   s.VolatileTextProb,
			DecorationsMax:     s.DecorationsMax,
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: emitting app %q: %w", s.Name, err)
	}
	return append(out, '\n'), nil
}
