package scenario_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"taopt/internal/scenario"
)

// FuzzScenarioDecode throws arbitrary bytes at the full
// decode-validate-compile path. Two properties must hold for every input:
// the compiler never panics, and any document that compiles as an app
// reaches a fixed point under emit — EmitApp's output recompiles to the
// same resolved spec and emits identically again.
func FuzzScenarioDecode(f *testing.F) {
	dir := filepath.Join("..", "..", "testdata", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)/2])                                         // truncated mid-document
		f.Add(bytes.Replace(raw, []byte(`"kind"`), []byte(`"knd"`), 1)) // mutated envelope
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1, 2`))
	f.Add([]byte(`{"schemaVersion": 2, "kind": "app", "name": "x", "app": {}}`))
	f.Add([]byte(`{"schemaVersion": 1, "kind": "app", "name": "x", "app": {"screensMin": 0}}`))
	f.Add([]byte(`{"schemaVersion": 1, "kind": "fault-plan", "name": "x", "faults": {"context": [{"kind": "network-loss"}]}}`))
	f.Add([]byte(`{"schemaVersion": 1, "kind": "campaign", "name": "x", "campaign": {"faultGrid": [0]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := scenario.Compile(data) // must never panic
		if err != nil || c.Kind != scenario.KindApp {
			return
		}
		out, err := scenario.EmitApp(c.App)
		if err != nil {
			t.Fatalf("emit after successful compile: %v", err)
		}
		back, err := scenario.CompileApp(out)
		if err != nil {
			t.Fatalf("recompile emitted document: %v\n%s", err, out)
		}
		if back.Spec != c.App.Spec || back.Login != c.App.Login {
			t.Fatalf("emit/compile fixed point broken:\ncompiled %+v\nround-tripped %+v", c.App, back)
		}
		out2, err := scenario.EmitApp(back)
		if err != nil {
			t.Fatalf("second emission: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("second emission differs:\n%s\n%s", out, out2)
		}
	})
}
