package scenario

import (
	"strings"
	"testing"

	"taopt/internal/faults"
	"taopt/internal/sim"
)

func mustCompileRun(t *testing.T, src string) *RunSpec {
	t.Helper()
	rs, err := CompileRun([]byte(src))
	if err != nil {
		t.Fatalf("CompileRun: %v", err)
	}
	return rs
}

func TestCompileRunCatalog(t *testing.T) {
	rs := mustCompileRun(t, `{"kind": "run", "name": "chaos cell", "run": {
		"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
		"instances": 5, "durationMin": 8, "budgetMin": 40, "sampleEverySec": 10,
		"seed": 15, "telemetry": true, "faults": {"failureRate": 0.2}}}`)
	if rs.Name != "chaos cell" || rs.AppName != "Filters For Selfie" || rs.App != nil {
		t.Fatalf("app resolution wrong: %+v", rs)
	}
	if rs.Tool != "monkey" || rs.Setting != "taopt-duration" {
		t.Fatalf("tool/setting wrong: %+v", rs)
	}
	if rs.Instances != 5 || rs.Duration != sim.Duration(480e9) || rs.MachineBudget != sim.Duration(2400e9) ||
		rs.SampleEvery != sim.Duration(10e9) || rs.Seed != 15 || !rs.Telemetry {
		t.Fatalf("run knobs wrong: %+v", rs)
	}
	want := faults.DefaultConfig(0.2)
	if rs.Faults == nil || rs.Faults.FailureRate != want.FailureRate || rs.Faults.HangFraction != want.HangFraction {
		t.Fatalf("faults = %+v, want DefaultConfig(0.2)", rs.Faults)
	}
	if rs.Hash == "" || rs.ConfigHash == "" {
		t.Fatalf("hashes not stamped: %+v", rs)
	}
	if rs.Hash == rs.ConfigHash {
		t.Fatal("ConfigHash should exclude the name and differ from the document hash")
	}
}

func TestCompileRunDefaults(t *testing.T) {
	rs := mustCompileRun(t, `{"kind": "run", "name": "min", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline"}}`)
	if rs.Instances != 0 || rs.Duration != 0 || rs.MachineBudget != 0 || rs.SampleEvery != 0 ||
		rs.Seed != 0 || rs.Telemetry || rs.Faults != nil {
		t.Fatalf("omitted fields must stay zero for harness defaulting: %+v", rs)
	}
}

func TestCompileRunConfigHashIgnoresName(t *testing.T) {
	a := mustCompileRun(t, `{"kind": "run", "name": "alpha", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline", "seed": 3}}`)
	b := mustCompileRun(t, "{\n  \"run\": {\"seed\": 3, \"setting\": \"baseline\", \"tool\": \"monkey\", \"app\": \"Zedge\"},\n  \"name\": \"beta\",\n  \"kind\": \"run\"\n}")
	if a.Hash == b.Hash {
		t.Fatal("document hash should include the name")
	}
	if a.ConfigHash != b.ConfigHash {
		t.Fatalf("renamed run changed the cache key: %s vs %s", a.ConfigHash, b.ConfigHash)
	}
	c := mustCompileRun(t, `{"kind": "run", "name": "alpha", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline", "seed": 4}}`)
	if c.ConfigHash == a.ConfigHash {
		t.Fatal("semantic edit left the cache key unchanged")
	}
}

func TestCompileRunInlineAppHashMatchesStandalone(t *testing.T) {
	rs := mustCompileRun(t, `{"kind": "run", "name": "inline", "run": {
		"inlineApp": {"name": "Tiny", "app": {"subspaces": 4, "login": true}},
		"tool": "monkey", "setting": "baseline"}}`)
	if rs.App == nil || rs.AppName != "" {
		t.Fatalf("inline app not compiled: %+v", rs)
	}
	standalone := mustCompileApp(t, `{"schemaVersion": 1, "kind": "app", "name": "Tiny", "app": {"subspaces": 4, "login": true}}`)
	if rs.App.Spec != standalone.Spec || rs.App.Login != standalone.Login {
		t.Fatalf("inline spec diverges from standalone:\n%+v\n%+v", rs.App.Spec, standalone.Spec)
	}
	if rs.App.Hash != standalone.Hash {
		t.Fatalf("inline app hash %s != standalone document hash %s — service exports would not match taopt -scenario",
			rs.App.Hash, standalone.Hash)
	}
}

func TestCompileRunAllErrors(t *testing.T) {
	_, err := CompileRun([]byte(`{"kind": "run", "name": "bad", "run": {
		"setting": "warp-speed", "instances": 0, "durationMin": -1,
		"budgetMin": 0, "sampleEverySec": 0, "faults": {"failureRate": 2},
		"bogus": 1}}`))
	paths := issuePaths(t, err)
	want := []string{
		"$.run.app",
		"$.run.tool",
		"$.run.setting",
		"$.run.instances",
		"$.run.durationMin",
		"$.run.budgetMin",
		"$.run.sampleEverySec",
		"$.run.faults.failureRate",
		"$.run.bogus",
	}
	for _, w := range want {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing issue at %s in %v", w, paths)
		}
	}
}

func TestCompileRunAppXorInline(t *testing.T) {
	_, err := CompileRun([]byte(`{"kind": "run", "name": "both", "run": {
		"app": "Zedge", "inlineApp": {"name": "T", "app": {}},
		"tool": "monkey", "setting": "baseline"}}`))
	if err == nil || !strings.Contains(err.Error(), "pick one") {
		t.Fatalf("app+inlineApp accepted: %v", err)
	}
}

func TestCompileRunKindMismatch(t *testing.T) {
	_, err := CompileRun([]byte(`{"kind": "app", "name": "X", "app": {}}`))
	if err == nil || !strings.Contains(err.Error(), "want run") {
		t.Fatalf("kind mismatch not reported: %v", err)
	}
}

func TestCanonicalHashExcluding(t *testing.T) {
	a := `{"kind": "run", "name": "alpha", "run": {"app": "Zedge"}}`
	b := `{"kind": "run", "name": "beta", "run": {"app": "Zedge"}}`
	ha, err := CanonicalHashExcluding([]byte(a), "name")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHashExcluding([]byte(b), "name")
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("name exclusion failed: %s vs %s", ha, hb)
	}
	hc, err := CanonicalHash([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	if ha == hc {
		t.Fatal("excluding a present member should change the hash")
	}
}
