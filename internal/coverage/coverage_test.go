package coverage

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if s.Count() != 0 || s.Universe() != 130 {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(0) || !s.Add(129) || !s.Add(64) {
		t.Fatal("Add of new ids must report true")
	}
	if s.Add(64) {
		t.Fatal("Add of existing id must report false")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if !s.Has(129) || s.Has(1) || s.Has(-1) || s.Has(999) {
		t.Fatal("Has wrong")
	}
	if got := s.Elements(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("Elements = %v", got)
	}
}

func TestSetAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet(10).Add(10)
}

func TestAddAll(t *testing.T) {
	s := NewSet(100)
	if got := s.AddAll([]int{1, 2, 3, 2, 1}); got != 3 {
		t.Fatalf("AddAll new = %d, want 3", got)
	}
}

func TestSetOpsAgainstMapModel(t *testing.T) {
	// Property test: every counting operation agrees with a map-based model.
	if err := quick.Check(func(as, bs []uint16) bool {
		const n = 2000
		a, b := NewSet(n), NewSet(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, v := range as {
			id := int(v) % n
			a.Add(id)
			ma[id] = true
		}
		for _, v := range bs {
			id := int(v) % n
			b.Add(id)
			mb[id] = true
		}
		inter, union, diff := 0, len(mb), 0
		for id := range ma {
			if mb[id] {
				inter++
			} else {
				union++ // only-a contributes beyond len(mb)
				diff++
			}
		}
		union += inter // a∩b counted once via mb already... recompute clean:
		union = 0
		seen := map[int]bool{}
		for id := range ma {
			seen[id] = true
		}
		for id := range mb {
			seen[id] = true
		}
		union = len(seen)
		return a.IntersectCount(b) == inter &&
			a.UnionCount(b) == union &&
			a.DifferenceCount(b) == diff &&
			a.Count() == len(ma)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionWith(t *testing.T) {
	a, b := NewSet(200), NewSet(200)
	a.AddAll([]int{1, 2, 3})
	b.AddAll([]int{3, 4, 5})
	a.UnionWith(b)
	if a.Count() != 5 {
		t.Fatalf("union count = %d, want 5", a.Count())
	}
	if b.Count() != 3 {
		t.Fatal("UnionWith must not modify the argument")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewSet(64)
	a.Add(7)
	c := a.Clone()
	c.Add(8)
	if a.Has(8) {
		t.Fatal("Clone shares storage")
	}
	if !c.Has(7) {
		t.Fatal("Clone lost contents")
	}
}

func TestUnionOf(t *testing.T) {
	sets := []*Set{NewSet(50), NewSet(50), NewSet(50)}
	sets[0].Add(1)
	sets[1].Add(2)
	sets[2].Add(1)
	u := UnionOf(sets)
	if u.Count() != 2 {
		t.Fatalf("UnionOf count = %d, want 2", u.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UnionOf(nil) must panic")
		}
	}()
	UnionOf(nil)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	NewSet(10).UnionCount(NewSet(20))
}

func TestUnionFunc(t *testing.T) {
	a, b := NewSet(10), NewSet(10)
	a.Add(1)
	b.Add(2)
	u := Union(a, b)
	if u.Count() != 2 || a.Count() != 1 || b.Count() != 1 {
		t.Fatal("Union must be non-destructive")
	}
}
