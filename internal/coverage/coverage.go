// Package coverage implements method-coverage collection, the analogue of the
// paper's MiniTrace setup (Section 6.1): it records which methods of the AUT
// executed, without instrumenting the app or the testing tool.
//
// Sets are dense bitsets over the app's method universe, because the harness
// unions, intersects and counts them constantly (Jaccard/AJS in Section 3.1,
// cumulative coverage in RQ3–RQ5).
package coverage

import "math/bits"

// Set is a mutable set of method IDs in [0, n).
type Set struct {
	bits  []uint64
	n     int
	count int
}

// NewSet returns an empty set over a universe of n methods.
func NewSet(n int) *Set {
	return &Set{bits: make([]uint64, (n+63)/64), n: n}
}

// Universe returns the size of the method universe.
func (s *Set) Universe() int { return s.n }

// Add inserts id and reports whether it was newly added.
// Out-of-range ids panic: they indicate a wiring bug, not bad input.
func (s *Set) Add(id int) bool {
	if id < 0 || id >= s.n {
		panic("coverage: method id out of range")
	}
	w, b := id/64, uint64(1)<<(id%64)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.count++
	return true
}

// AddAll inserts every id and returns how many were new.
func (s *Set) AddAll(ids []int) int {
	added := 0
	for _, id := range ids {
		if s.Add(id) {
			added++
		}
	}
	return added
}

// Has reports membership.
func (s *Set) Has(id int) bool {
	if id < 0 || id >= s.n {
		return false
	}
	return s.bits[id/64]&(1<<(id%64)) != 0
}

// Count returns the number of covered methods.
func (s *Set) Count() int { return s.count }

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{bits: make([]uint64, len(s.bits)), n: s.n, count: s.count}
	copy(c.bits, s.bits)
	return c
}

// UnionWith adds every element of o to s.
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	count := 0
	for i := range s.bits {
		s.bits[i] |= o.bits[i]
		count += popcount(s.bits[i])
	}
	s.count = count
}

// IntersectCount returns |s ∩ o| without materialising the intersection.
func (s *Set) IntersectCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i := range s.bits {
		c += popcount(s.bits[i] & o.bits[i])
	}
	return c
}

// UnionCount returns |s ∪ o| without materialising the union.
func (s *Set) UnionCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i := range s.bits {
		c += popcount(s.bits[i] | o.bits[i])
	}
	return c
}

// DifferenceCount returns |s \ o|.
func (s *Set) DifferenceCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i := range s.bits {
		c += popcount(s.bits[i] &^ o.bits[i])
	}
	return c
}

// Elements returns the covered ids in ascending order. Intended for tests and
// small sets; the hot paths use the counting operations above.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.count)
	for w, word := range s.bits {
		for word != 0 {
			b := word & (-word)
			out = append(out, w*64+trailingZeros(b))
			word ^= b
		}
	}
	return out
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic("coverage: sets over different universes")
	}
}

// Union returns a fresh set |a ∪ b|.
func Union(a, b *Set) *Set {
	u := a.Clone()
	u.UnionWith(b)
	return u
}

// UnionOf returns the union of all sets; it panics on an empty slice because
// the universe size would be unknown.
func UnionOf(sets []*Set) *Set {
	if len(sets) == 0 {
		panic("coverage: UnionOf with no sets")
	}
	u := sets[0].Clone()
	for _, s := range sets[1:] {
		u.UnionWith(s)
	}
	return u
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
