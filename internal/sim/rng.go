package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64-seeded xorshift*), used everywhere in the simulation instead of
// math/rand so that results are stable across Go releases and so that each
// (campaign, instance) pair owns an independent stream derived from a seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which guarantees
// a well-mixed non-zero internal state even for small or adjacent seeds.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed int64) {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	r.state = z
}

// Fork returns a new independent generator derived from this one's stream and
// the given label, without perturbing r. Use it to give each testing instance
// its own stream from a campaign seed.
func (r *RNG) Fork(label int64) *RNG {
	return NewRNG(int64(r.state ^ uint64(label+1)*0x9E3779B97F4A7C15))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// DurationBetween returns a uniform duration in [lo, hi].
func (r *RNG) DurationBetween(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63()%int64(hi-lo+1))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedIndex picks an index with probability proportional to weights[i].
// All-zero or negative totals fall back to uniform choice. It panics on an
// empty slice.
func (r *RNG) WeightedIndex(weights []float64) int {
	if len(weights) == 0 {
		panic("sim: WeightedIndex with no weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
