// Package sim provides a deterministic discrete-event simulation kernel.
//
// All testing campaigns in this repository run on virtual time: a one-hour,
// five-instance parallel run is a few tens of thousands of events and
// completes in milliseconds, while remaining exactly reproducible for a given
// seed. The kernel is intentionally tiny — a virtual clock, an event heap
// keyed by (time, sequence), and machine-time accounting — because the paper's
// coordination logic only needs event ordering and two notions of time:
//
//   - wall-clock time: how long the campaign has been running (RQ3), and
//   - machine time: the sum over instances of the time each was allocated (RQ4).
package sim

import (
	"fmt"
	"time"
)

// Duration is virtual time elapsed since the start of a run. It is a distinct
// type from time.Duration only by convention; we reuse time.Duration for its
// formatting and arithmetic.
type Duration = time.Duration

// Clock tracks the current virtual time of a scheduler run.
type Clock struct {
	now Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// advance moves the clock forward to t. It panics if t is in the past:
// the scheduler must never deliver events out of order.
func (c *Clock) advance(t Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Meter accumulates machine time: the total virtual time during which testing
// instances were allocated. The coordinator charges the meter when it
// allocates and releases instances.
type Meter struct {
	used   Duration
	budget Duration // 0 means unlimited
}

// NewMeter returns a meter with the given machine-time budget.
// A zero budget means the meter never exhausts.
func NewMeter(budget Duration) *Meter { return &Meter{budget: budget} }

// Charge adds d of machine time. It reports whether the budget (if any)
// has been exhausted after the charge.
func (m *Meter) Charge(d Duration) (exhausted bool) {
	if d < 0 {
		panic("sim: negative machine-time charge")
	}
	m.used += d
	return m.Exhausted()
}

// Used returns the machine time consumed so far.
func (m *Meter) Used() Duration { return m.used }

// Budget returns the configured budget (0 = unlimited).
func (m *Meter) Budget() Duration { return m.budget }

// Remaining returns the machine time left, or a negative value if
// overcommitted. For an unlimited meter it returns the maximum duration.
func (m *Meter) Remaining() Duration {
	if m.budget == 0 {
		return 1<<63 - 1
	}
	return m.budget - m.used
}

// Exhausted reports whether a finite budget has been fully consumed.
func (m *Meter) Exhausted() bool { return m.budget != 0 && m.used >= m.budget }
