package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	var c Clock
	c.advance(5)
	if c.Now() != 5 {
		t.Fatalf("Now = %v, want 5", c.Now())
	}
	c.advance(5) // same instant is fine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards clock")
		}
	}()
	c.advance(4)
}

func TestMeter(t *testing.T) {
	m := NewMeter(100)
	if m.Exhausted() {
		t.Fatal("fresh meter exhausted")
	}
	if m.Charge(60) {
		t.Fatal("60/100 should not exhaust")
	}
	if got := m.Remaining(); got != 40 {
		t.Fatalf("Remaining = %v, want 40", got)
	}
	if !m.Charge(50) {
		t.Fatal("110/100 should exhaust")
	}
	if m.Used() != 110 {
		t.Fatalf("Used = %v, want 110", m.Used())
	}

	unlimited := NewMeter(0)
	unlimited.Charge(1 << 40)
	if unlimited.Exhausted() {
		t.Fatal("unlimited meter exhausted")
	}
}

func TestMeterNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative charge")
		}
	}()
	NewMeter(10).Charge(-1)
}

func TestSchedulerFiresInOrder(t *testing.T) {
	s := NewScheduler()
	var fired []int
	s.At(30, EventFunc(func(*Scheduler) { fired = append(fired, 3) }))
	s.At(10, EventFunc(func(*Scheduler) { fired = append(fired, 1) }))
	s.At(20, EventFunc(func(*Scheduler) { fired = append(fired, 2) }))
	end := s.Run(0)
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, EventFunc(func(*Scheduler) { fired = append(fired, i) }))
	}
	s.Run(0)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", fired)
		}
	}
}

// TestSchedulerTieBreakIsInsertionOrder pins the seq tie-break: events due
// at one instant fire strictly in scheduling order, even when they were
// interleaved with events for other instants, and events an event schedules
// for the current instant fire after everything already queued there —
// including past-time schedules clamped to now. The whole fault-injection
// and coordination machinery leans on this order being stable.
func TestSchedulerTieBreakIsInsertionOrder(t *testing.T) {
	s := NewScheduler()
	var fired []string
	mark := func(l string) Event { return EventFunc(func(*Scheduler) { fired = append(fired, l) }) }

	// Interleave insertions across two instants; heap order must not leak.
	s.At(20, mark("b0"))
	s.At(10, mark("a0"))
	s.At(20, mark("b1"))
	s.At(10, mark("a1"))
	s.At(20, mark("b2"))
	s.At(10, EventFunc(func(sc *Scheduler) {
		fired = append(fired, "a2")
		// Scheduled mid-fire at the current instant (one directly, one via a
		// past time clamped to now): both queue behind a3, in this order.
		sc.At(10, mark("a4"))
		sc.At(3, mark("a5"))
	}))
	s.At(10, mark("a3"))

	s.Run(0)
	want := "a0,a1,a2,a3,a4,a5,b0,b1,b2"
	got := ""
	for i, l := range fired {
		if i > 0 {
			got += ","
		}
		got += l
	}
	if got != want {
		t.Fatalf("fire order %s, want %s", got, want)
	}
}

func TestSchedulerDeadline(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, EventFunc(func(*Scheduler) { fired++ }))
	s.At(50, EventFunc(func(*Scheduler) { fired++ }))
	end := s.Run(20)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event past deadline must not fire)", fired)
	}
	if end != 20 {
		t.Fatalf("end = %v, want clock parked at deadline 20", end)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1, EventFunc(func(sc *Scheduler) { fired++; sc.Halt() }))
	s.At(2, EventFunc(func(*Scheduler) { fired++ }))
	s.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Halt", fired)
	}
	if s.Pending() != 0 {
		t.Fatal("Halt must drain the queue")
	}
}

func TestSchedulerEventsCanSchedule(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var step func(*Scheduler)
	step = func(sc *Scheduler) {
		depth++
		if depth < 100 {
			sc.After(3, EventFunc(step))
		}
	}
	s.After(3, EventFunc(step))
	end := s.Run(0)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 300 {
		t.Fatalf("end = %v, want 300", end)
	}
}

func TestSchedulerPastEventFiresNow(t *testing.T) {
	s := NewScheduler()
	var at Duration = -1
	s.At(10, EventFunc(func(sc *Scheduler) {
		sc.At(5, EventFunc(func(sc2 *Scheduler) { at = sc2.Now() }))
	}))
	s.Run(0)
	if at != 10 {
		t.Fatalf("past-scheduled event fired at %v, want 10", at)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	root := NewRNG(7)
	f1 := root.Fork(1)
	f2 := root.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different labels should diverge")
	}
	// Forking must not perturb the parent stream.
	a := NewRNG(7)
	a.Fork(1)
	b := NewRNG(7)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork perturbed the parent stream")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(3)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		if c < trials/n*8/10 || c > trials/n*12/10 {
			t.Fatalf("bucket %d has %d of %d draws; far from uniform", i, c, trials)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGWeightedIndex(t *testing.T) {
	r := NewRNG(5)
	w := []float64{0, 1, 0, 3}
	counts := make([]int, len(w))
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight indexes drawn: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %.2f, want ≈3", ratio)
	}
	// All-zero weights fall back to uniform.
	z := r.WeightedIndex([]float64{0, 0})
	if z != 0 && z != 1 {
		t.Fatalf("fallback index out of range: %d", z)
	}
}

func TestRNGDurationBetween(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 1000; i++ {
		d := r.DurationBetween(100, 200)
		if d < 100 || d > 200 {
			t.Fatalf("duration %v out of [100, 200]", d)
		}
	}
	if d := r.DurationBetween(50, 50); d != 50 {
		t.Fatalf("degenerate range: %v", d)
	}
}

func TestSchedulerProcessedCounts(t *testing.T) {
	s := NewScheduler()
	if s.Processed() != 0 {
		t.Fatalf("fresh scheduler Processed = %d", s.Processed())
	}
	s.At(10, EventFunc(func(sc *Scheduler) { sc.After(5, EventFunc(func(*Scheduler) {})) }))
	s.At(20, EventFunc(func(*Scheduler) {}))
	s.At(90, EventFunc(func(*Scheduler) {})) // past deadline: never fires
	s.Run(50)
	if got := s.Processed(); got != 3 {
		t.Fatalf("Processed = %d, want 3 (incl. the rescheduled one, excl. past-deadline)", got)
	}
	// A second Run continues the count rather than resetting it.
	s.At(60, EventFunc(func(*Scheduler) {}))
	s.Run(0)
	if got := s.Processed(); got != 5 {
		t.Fatalf("Processed after second Run = %d, want 5", got)
	}
}
