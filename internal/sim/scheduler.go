package sim

import "container/heap"

// Event is a unit of simulated work. Fire is invoked when the scheduler's
// clock reaches the event's due time. Fire may schedule further events.
type Event interface {
	Fire(s *Scheduler)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(s *Scheduler)

// Fire calls f(s).
func (f EventFunc) Fire(s *Scheduler) { f(s) }

type scheduled struct {
	at  Duration
	seq uint64 // tie-breaker: FIFO among events due at the same instant
	ev  Event
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Scheduler is a deterministic discrete-event loop. Events scheduled for the
// same instant fire in the order they were scheduled. Scheduler is not safe
// for concurrent use; the whole simulation is single-threaded by design so
// that runs are exactly reproducible.
type Scheduler struct {
	clock     Clock
	heap      eventHeap
	seq       uint64
	halt      bool
	processed uint64
}

// NewScheduler returns an empty scheduler at virtual time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Duration { return s.clock.Now() }

// At schedules ev to fire at absolute virtual time t. Scheduling in the past
// fires the event at the current time (ordering after already-queued events
// for that instant).
func (s *Scheduler) At(t Duration, ev Event) {
	if t < s.clock.Now() {
		t = s.clock.Now()
	}
	s.seq++
	heap.Push(&s.heap, scheduled{at: t, seq: s.seq, ev: ev})
}

// After schedules ev to fire d after the current virtual time.
func (s *Scheduler) After(d Duration, ev Event) { s.At(s.clock.Now()+d, ev) }

// Halt stops the run loop after the currently firing event returns.
// Pending events are discarded by Run.
func (s *Scheduler) Halt() { s.halt = true }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Processed returns the number of events fired since the scheduler was
// created. It is the denominator of the benchmark harness's
// virtual-events-per-second figure: a deterministic measure of how much
// simulated work a run performed, independent of wall time.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Run fires events in order until the queue is empty, the clock passes
// deadline (events due strictly after deadline are not fired), or Halt is
// called. It returns the virtual time at which the loop stopped.
//
// A zero deadline means "no deadline".
func (s *Scheduler) Run(deadline Duration) Duration {
	s.halt = false
	for len(s.heap) > 0 && !s.halt {
		next := s.heap[0]
		if deadline != 0 && next.at > deadline {
			s.clock.advance(deadline)
			break
		}
		heap.Pop(&s.heap)
		s.clock.advance(next.at)
		s.processed++
		next.ev.Fire(s)
	}
	if s.halt {
		s.heap = s.heap[:0]
	}
	return s.clock.Now()
}
