package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"taopt/internal/scenario"
)

// maxBody bounds a submitted scenario document (1 MiB is orders of magnitude
// above any real document).
const maxBody = 1 << 20

// apiIssue is one located validation finding in an error envelope.
type apiIssue struct {
	Path string `json:"path"`
	Msg  string `json:"msg"`
}

// apiError is the stable JSON error envelope of every non-2xx response:
//
//	{"error": {"code": "...", "message": "...", "issues": [...]}}
type apiError struct {
	Code    string     `json:"code"`
	Message string     `json:"message"`
	Issues  []apiIssue `json:"issues,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// submitResponse is the body of POST /v1/runs.
type submitResponse struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	ConfigHash string `json:"configHash"`
	State      string `json:"state"`
	CacheHit   bool   `json:"cacheHit"`
}

// runsResponse is the body of GET /v1/runs.
type runsResponse struct {
	Runs []RunRecord `json:"runs"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	Stats Stats `json:"stats"`
	Cells int   `json:"cells"`
}

// NewHandler returns the service's HTTP API:
//
//	GET  /healthz                 liveness
//	POST /v1/runs                 submit a run scenario document (?wait=1 blocks)
//	GET  /v1/runs                 list run records
//	GET  /v1/runs/{id}            one run record (?wait=1 blocks until settled)
//	GET  /v1/runs/{id}/export     the run's v5 export, byte-identical to taopt -export
//	GET  /v1/runs/{id}/telemetry  the rendered telemetry digest
//	GET  /v1/runs/{id}/trace      the binary trace stream
//	GET  /v1/stats                cache and flight counters
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", "request body exceeds 1 MiB", nil)
			return
		}
		rec, err := s.Submit(data)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		if r.URL.Query().Get("wait") == "1" {
			if rec, err = s.WaitRun(rec.ID); err != nil {
				writeLookupError(w, err)
				return
			}
		}
		w.Header().Set("X-Taopt-Run-Id", rec.ID)
		w.Header().Set("X-Taopt-Cache", cacheHeader(rec))
		status := http.StatusOK
		if rec.State == StateQueued {
			status = http.StatusAccepted
		}
		writeJSON(w, status, submitResponse{
			ID: rec.ID, Name: rec.Name, ConfigHash: rec.ConfigHash,
			State: rec.State, CacheHit: rec.CacheHit,
		})
	})
	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		recs, err := s.Runs()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "store_error", err.Error(), nil)
			return
		}
		if recs == nil {
			recs = []RunRecord{}
		}
		writeJSON(w, http.StatusOK, runsResponse{Runs: recs})
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		var (
			rec RunRecord
			err error
		)
		if r.URL.Query().Get("wait") == "1" {
			rec, err = s.WaitRun(r.PathValue("id"))
		} else {
			rec, err = s.Run(r.PathValue("id"))
		}
		if err != nil {
			writeLookupError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/runs/{id}/export", func(w http.ResponseWriter, r *http.Request) {
		cell, ok := fetchCell(w, s, r.PathValue("id"))
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(cell.Export)
	})
	mux.HandleFunc("GET /v1/runs/{id}/telemetry", func(w http.ResponseWriter, r *http.Request) {
		cell, ok := fetchCell(w, s, r.PathValue("id"))
		if !ok {
			return
		}
		if len(cell.Telemetry) == 0 {
			writeError(w, http.StatusNotFound, "no_telemetry",
				"the run did not request telemetry (set \"telemetry\": true in the scenario)", nil)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(cell.Telemetry)
	})
	mux.HandleFunc("GET /v1/runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		cell, ok := fetchCell(w, s, r.PathValue("id"))
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(cell.Trace)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		hashes, err := s.repo.CellHashes()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "store_error", err.Error(), nil)
			return
		}
		writeJSON(w, http.StatusOK, statsResponse{Stats: s.Stats(), Cells: len(hashes)})
	})
	return mux
}

func cacheHeader(rec RunRecord) string {
	if rec.CacheHit {
		return "hit"
	}
	return "miss"
}

// fetchCell resolves a run ID to its completed cell, writing the error
// envelope itself when the run is missing, queued or failed.
func fetchCell(w http.ResponseWriter, s *Service, id string) (Cell, bool) {
	cell, err := s.Cell(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "not_found", err.Error(), nil)
		case errors.Is(err, ErrNotReady):
			writeError(w, http.StatusConflict, "not_ready", err.Error(), nil)
		case errors.Is(err, ErrRunFailed):
			writeError(w, http.StatusConflict, "run_failed", err.Error(), nil)
		case errors.Is(err, ErrCorrupt):
			writeError(w, http.StatusInternalServerError, "store_corrupt", err.Error(), nil)
		default:
			writeError(w, http.StatusInternalServerError, "store_error", err.Error(), nil)
		}
		return Cell{}, false
	}
	return cell, true
}

// writeSubmitError maps a Submit failure onto the envelope: scenario
// validation failures carry their located issues, everything else (malformed
// JSON, wrong kind, unknown app or tool) is a plain invalid_scenario.
func writeSubmitError(w http.ResponseWriter, err error) {
	var inv *scenario.InvalidError
	if errors.As(err, &inv) {
		issues := make([]apiIssue, 0, len(inv.Issues))
		for _, is := range inv.Issues {
			issues = append(issues, apiIssue{Path: is.Path, Msg: is.Msg})
		}
		writeError(w, http.StatusBadRequest, "invalid_scenario", "the document failed validation", issues)
		return
	}
	writeError(w, http.StatusBadRequest, "invalid_scenario", err.Error(), nil)
}

func writeLookupError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, "not_found", err.Error(), nil)
		return
	}
	writeError(w, http.StatusInternalServerError, "store_error", err.Error(), nil)
}

func writeError(w http.ResponseWriter, status int, code, message string, issues []apiIssue) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: message, Issues: issues}})
}

// writeJSON renders v indented with a trailing newline — the same stable
// shape the export writer uses, so API goldens pin bytes, not just fields.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
