package service_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"taopt/internal/service"
	"taopt/internal/service/servicetest"
)

// Both repository implementations pass the one exported contract; any future
// store earns correctness the same way.
func TestMemRepoContract(t *testing.T) {
	servicetest.RunRepositoryContract(t, func(t *testing.T) service.Repository {
		return service.NewMemRepo()
	})
}

func TestFileRepoContract(t *testing.T) {
	servicetest.RunRepositoryContract(t, func(t *testing.T) service.Repository {
		repo, err := service.NewFileRepo(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return repo
	})
}

// storedCell persists one well-formed cell and returns the repo and the
// on-disk cell directory, ready for sabotage.
func storedCell(t *testing.T) (*service.FileRepo, string) {
	t.Helper()
	repo, err := service.NewFileRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := service.Cell{
		ConfigHash: "deadbeef", App: "Zedge", Tool: "monkey", Setting: "baseline",
		Export:    []byte(`{"format_version": 5}` + "\n"),
		Telemetry: []byte("digest\n"),
		Trace:     []byte{1, 2, 3, 4},
	}
	if err := repo.PutCell(c); err != nil {
		t.Fatal(err)
	}
	return repo, filepath.Join(repo.Dir(), "cells", "deadbeef")
}

// wantCorrupt asserts a GetCell failure that is ErrCorrupt — and specifically
// not a clean miss, because the service recomputes over corruption but must
// never mistake it for "nothing stored".
func wantCorrupt(t *testing.T, repo *service.FileRepo, hash string) {
	t.Helper()
	_, err := repo.GetCell(hash)
	if !errors.Is(err, service.ErrCorrupt) {
		t.Fatalf("GetCell = %v, want errors.Is ErrCorrupt", err)
	}
	if errors.Is(err, service.ErrNotFound) {
		t.Fatalf("corruption must not look like a miss: %v", err)
	}
}

func TestFileRepoDetectsTruncatedPart(t *testing.T) {
	repo, dir := storedCell(t)
	full, err := os.ReadFile(filepath.Join(dir, "export.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "export.json"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "deadbeef")
}

func TestFileRepoDetectsTamperedPart(t *testing.T) {
	repo, dir := storedCell(t)
	if err := os.WriteFile(filepath.Join(dir, "telemetry.txt"), []byte("edited\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "deadbeef")
}

func TestFileRepoDetectsMissingPart(t *testing.T) {
	repo, dir := storedCell(t)
	if err := os.Remove(filepath.Join(dir, "trace.taoptb")); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "deadbeef")
}

func TestFileRepoDetectsMissingManifest(t *testing.T) {
	repo, dir := storedCell(t)
	if err := os.Remove(filepath.Join(dir, "cell.json")); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "deadbeef")
}

func TestFileRepoDetectsGarbageManifest(t *testing.T) {
	repo, dir := storedCell(t)
	if err := os.WriteFile(filepath.Join(dir, "cell.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "deadbeef")
}

func TestFileRepoDetectsRelocatedCell(t *testing.T) {
	repo, dir := storedCell(t)
	// A cell copied under the wrong hash must not serve: its manifest still
	// names the hash it was computed for.
	moved := filepath.Join(filepath.Dir(dir), "cafef00d")
	if err := os.Rename(dir, moved); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "cafef00d")
}

func TestFileRepoPutReplacesCorruptCell(t *testing.T) {
	repo, dir := storedCell(t)
	if err := os.WriteFile(filepath.Join(dir, "export.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantCorrupt(t, repo, "deadbeef")
	// The recovery path: PutCell over the corrupt directory heals it.
	fresh := service.Cell{
		ConfigHash: "deadbeef", App: "Zedge", Tool: "monkey", Setting: "baseline",
		Export: []byte(`{"format_version": 5}` + "\n"),
		Trace:  []byte{1, 2, 3, 4},
	}
	if err := repo.PutCell(fresh); err != nil {
		t.Fatalf("PutCell over corrupt cell: %v", err)
	}
	got, err := repo.GetCell("deadbeef")
	if err != nil {
		t.Fatalf("GetCell after heal: %v", err)
	}
	if string(got.Export) != string(fresh.Export) {
		t.Fatalf("healed export = %q", got.Export)
	}
}

func TestFileRepoDetectsGarbageRunFile(t *testing.T) {
	repo, err := service.NewFileRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := service.RunRecord{ID: "r-000001", State: service.StateDone}
	if err := repo.CreateRun(rec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(repo.Dir(), "runs", "r-000001.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.GetRun("r-000001"); !errors.Is(err, service.ErrCorrupt) {
		t.Fatalf("GetRun(garbage) = %v, want errors.Is ErrCorrupt", err)
	}
}

func TestFileRepoRejectsPathSyntaxKeys(t *testing.T) {
	repo, err := service.NewFileRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "../escape", "a/b", ".hidden"} {
		if _, err := repo.GetRun(id); !errors.Is(err, service.ErrNotFound) {
			t.Fatalf("GetRun(%q) = %v, want errors.Is ErrNotFound", id, err)
		}
		if _, err := repo.GetCell(id); !errors.Is(err, service.ErrNotFound) {
			t.Fatalf("GetCell(%q) = %v, want errors.Is ErrNotFound", id, err)
		}
		if err := repo.CreateRun(service.RunRecord{ID: id}); err == nil {
			t.Fatalf("CreateRun(%q) accepted a path-syntax ID", id)
		}
	}
}

// The file store survives reopening: records and cells written by one handle
// are read back by a fresh one over the same directory.
func TestFileRepoReopens(t *testing.T) {
	dir := t.TempDir()
	repo, err := service.NewFileRepo(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := service.RunRecord{ID: "r-000007", State: service.StateDone, ConfigHash: "deadbeef"}
	if err := repo.CreateRun(rec); err != nil {
		t.Fatal(err)
	}
	if err := repo.PutCell(service.Cell{ConfigHash: "deadbeef", Export: []byte("e"), Trace: []byte("t")}); err != nil {
		t.Fatal(err)
	}
	repo.Close()

	again, err := service.NewFileRepo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := again.GetRun("r-000007"); err != nil || got != rec {
		t.Fatalf("reopened GetRun = %+v, %v", got, err)
	}
	if _, err := again.GetCell("deadbeef"); err != nil {
		t.Fatalf("reopened GetCell: %v", err)
	}
}
