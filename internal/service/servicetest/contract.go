// Package servicetest exports the storage-agnostic contract suite every
// service.Repository implementation must pass. The suite pins the seam the
// campaign service stands on — create/get/list/update semantics for run
// records, idempotent cell puts, and sentinel-error discrimination via
// errors.Is only — so a new store (memory, file, or anything later) is
// correct by construction once RunRepositoryContract passes over it.
package servicetest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"taopt/internal/service"
)

// NewRepo builds a fresh, empty repository for one subtest.
type NewRepo func(t *testing.T) service.Repository

// RunRepositoryContract runs the full contract against repositories built by
// newRepo.
func RunRepositoryContract(t *testing.T, newRepo NewRepo) {
	t.Run("RunLifecycle", func(t *testing.T) { testRunLifecycle(t, newRepo(t)) })
	t.Run("RunSentinels", func(t *testing.T) { testRunSentinels(t, newRepo(t)) })
	t.Run("ListOrder", func(t *testing.T) { testListOrder(t, newRepo(t)) })
	t.Run("CellRoundTrip", func(t *testing.T) { testCellRoundTrip(t, newRepo(t)) })
	t.Run("CellIdempotentPut", func(t *testing.T) { testCellIdempotentPut(t, newRepo(t)) })
	t.Run("CellSentinels", func(t *testing.T) { testCellSentinels(t, newRepo(t)) })
	t.Run("CellHashes", func(t *testing.T) { testCellHashes(t, newRepo(t)) })
}

func rec(id string) service.RunRecord {
	return service.RunRecord{
		ID: id, Name: "contract run", ConfigHash: "a1b2c3", App: "Zedge",
		Tool: "monkey", Setting: "baseline", Seed: 7, State: service.StateQueued,
	}
}

func cell(hash string) service.Cell {
	return service.Cell{
		ConfigHash: hash, App: "Zedge", Tool: "monkey", Setting: "baseline", Seed: 7,
		ScenarioHash: "feedbeef",
		Export:       []byte(`{"format_version": 5}` + "\n"),
		Telemetry:    []byte("digest\n"),
		Trace:        []byte{'T', 'A', 'O', 'P', 'T', 'T', 'B', 0, 1, 2, 3},
	}
}

func testRunLifecycle(t *testing.T, repo service.Repository) {
	defer repo.Close()
	r := rec("r-000001")
	if err := repo.CreateRun(r); err != nil {
		t.Fatalf("CreateRun: %v", err)
	}
	got, err := repo.GetRun(r.ID)
	if err != nil {
		t.Fatalf("GetRun: %v", err)
	}
	if got != r {
		t.Fatalf("GetRun = %+v, want %+v", got, r)
	}
	r.State = service.StateDone
	r.CacheHit = true
	if err := repo.UpdateRun(r); err != nil {
		t.Fatalf("UpdateRun: %v", err)
	}
	if got, err = repo.GetRun(r.ID); err != nil || got != r {
		t.Fatalf("after update: %+v, %v; want %+v", got, err, r)
	}
}

func testRunSentinels(t *testing.T, repo service.Repository) {
	defer repo.Close()
	if _, err := repo.GetRun("r-999999"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("GetRun(missing) = %v, want errors.Is ErrNotFound", err)
	}
	if err := repo.UpdateRun(rec("r-999999")); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("UpdateRun(missing) = %v, want errors.Is ErrNotFound", err)
	}
	r := rec("r-000001")
	if err := repo.CreateRun(r); err != nil {
		t.Fatalf("CreateRun: %v", err)
	}
	if err := repo.CreateRun(r); !errors.Is(err, service.ErrExists) {
		t.Fatalf("CreateRun(duplicate) = %v, want errors.Is ErrExists", err)
	}
	// Sentinels must not cross-match: a duplicate is not a missing key.
	if err := repo.CreateRun(r); errors.Is(err, service.ErrNotFound) {
		t.Fatalf("CreateRun(duplicate) matches ErrNotFound: %v", err)
	}
}

func testListOrder(t *testing.T, repo service.Repository) {
	defer repo.Close()
	// Created out of order; listed in ID order.
	for _, id := range []string{"r-000002", "r-000010", "r-000001"} {
		if err := repo.CreateRun(rec(id)); err != nil {
			t.Fatalf("CreateRun(%s): %v", id, err)
		}
	}
	recs, err := repo.ListRuns()
	if err != nil {
		t.Fatalf("ListRuns: %v", err)
	}
	want := []string{"r-000001", "r-000002", "r-000010"}
	if len(recs) != len(want) {
		t.Fatalf("ListRuns returned %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i].ID != w {
			t.Fatalf("ListRuns[%d].ID = %s, want %s (IDs must sort)", i, recs[i].ID, w)
		}
	}
}

func testCellRoundTrip(t *testing.T, repo service.Repository) {
	defer repo.Close()
	c := cell("a1b2c3")
	if err := repo.PutCell(c); err != nil {
		t.Fatalf("PutCell: %v", err)
	}
	got, err := repo.GetCell(c.ConfigHash)
	if err != nil {
		t.Fatalf("GetCell: %v", err)
	}
	if got.ConfigHash != c.ConfigHash || got.App != c.App || got.Tool != c.Tool ||
		got.Setting != c.Setting || got.Seed != c.Seed || got.ScenarioHash != c.ScenarioHash {
		t.Fatalf("metadata mangled: %+v, want %+v", got, c)
	}
	if !bytes.Equal(got.Export, c.Export) || !bytes.Equal(got.Telemetry, c.Telemetry) || !bytes.Equal(got.Trace, c.Trace) {
		t.Fatal("cell payloads must round-trip byte-for-byte")
	}

	// A telemetry-less cell round-trips with empty telemetry, not an error.
	lean := cell("d4e5f6")
	lean.Telemetry = nil
	if err := repo.PutCell(lean); err != nil {
		t.Fatalf("PutCell(no telemetry): %v", err)
	}
	if got, err = repo.GetCell(lean.ConfigHash); err != nil || len(got.Telemetry) != 0 {
		t.Fatalf("telemetry-less cell: %v, telemetry=%q", err, got.Telemetry)
	}
}

func testCellIdempotentPut(t *testing.T, repo service.Repository) {
	defer repo.Close()
	c := cell("a1b2c3")
	if err := repo.PutCell(c); err != nil {
		t.Fatalf("PutCell: %v", err)
	}
	if err := repo.PutCell(c); err != nil {
		t.Fatalf("PutCell must be idempotent, second put: %v", err)
	}
	// A replacement put wins — the service overwrites corrupt cells.
	c.Export = []byte(`{"format_version": 5, "replaced": true}` + "\n")
	if err := repo.PutCell(c); err != nil {
		t.Fatalf("PutCell(replace): %v", err)
	}
	got, err := repo.GetCell(c.ConfigHash)
	if err != nil {
		t.Fatalf("GetCell: %v", err)
	}
	if !bytes.Equal(got.Export, c.Export) {
		t.Fatal("replacement put did not win")
	}
	hashes, err := repo.CellHashes()
	if err != nil {
		t.Fatalf("CellHashes: %v", err)
	}
	if len(hashes) != 1 {
		t.Fatalf("replacing a cell must not duplicate it: %v", hashes)
	}
}

func testCellSentinels(t *testing.T, repo service.Repository) {
	defer repo.Close()
	if _, err := repo.GetCell("0000missing"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("GetCell(missing) = %v, want errors.Is ErrNotFound", err)
	}
	if _, err := repo.GetCell("0000missing"); errors.Is(err, service.ErrCorrupt) {
		t.Fatal("a clean miss must not match ErrCorrupt")
	}
}

func testCellHashes(t *testing.T, repo service.Repository) {
	defer repo.Close()
	var want []string
	for i := 0; i < 3; i++ {
		h := fmt.Sprintf("hash-%02d", 3-i) // inserted in reverse
		if err := repo.PutCell(cell(h)); err != nil {
			t.Fatalf("PutCell: %v", err)
		}
	}
	for i := 1; i <= 3; i++ {
		want = append(want, fmt.Sprintf("hash-%02d", i))
	}
	got, err := repo.CellHashes()
	if err != nil {
		t.Fatalf("CellHashes: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("CellHashes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CellHashes = %v, want sorted %v", got, want)
		}
	}
}
