package service_test

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taopt/internal/scenario"
	"taopt/internal/service"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current run")

// goldenExec is a deterministic stub backend: the API layer is under test,
// not the simulator, so responses must be cheap and byte-stable.
func goldenExec(rs *scenario.RunSpec) (service.Cell, error) {
	if rs.Seed == 666 {
		return service.Cell{}, errors.New("simulated backend failure")
	}
	c := service.Cell{
		ScenarioHash: "0123abcd",
		Export:       []byte(fmt.Sprintf("{\n \"format_version\": 5,\n \"seed\": %d\n}\n", rs.Seed)),
		Trace:        []byte(fmt.Sprintf("taoptb-stub-trace seed=%d\n", rs.Seed)),
	}
	if rs.Telemetry {
		c.Telemetry = []byte(fmt.Sprintf("telemetry digest (seed %d)\n", rs.Seed))
	}
	return c, nil
}

const goldenDoc = `{"kind": "run", "name": "golden", "run": {
	"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
	"durationMin": 8, "seed": 15, "telemetry": true, "faults": {"failureRate": 0.2}}}`

const goldenDocRenamed = `{"kind": "run", "name": "golden, resubmitted", "run": {
	"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
	"durationMin": 8, "seed": 15, "telemetry": true, "faults": {"failureRate": 0.2}}}`

// TestAPIGolden scripts one session against the API and pins every response —
// status, content type, cache headers and body bytes — in a single golden
// file. Error envelopes are part of the contract: clients parse them.
func TestAPIGolden(t *testing.T) {
	svc, err := service.New(service.Config{Exec: goldenExec})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	handler := service.NewHandler(svc)

	var out strings.Builder
	do := func(title, method, target, body string) {
		req := httptest.NewRequest(method, target, strings.NewReader(body))
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)
		res := rw.Result()
		fmt.Fprintf(&out, "== %s\nstatus: %d\ncontent-type: %s\n",
			title, res.StatusCode, res.Header.Get("Content-Type"))
		if id := res.Header.Get("X-Taopt-Run-Id"); id != "" {
			fmt.Fprintf(&out, "x-taopt-run-id: %s\n", id)
		}
		if c := res.Header.Get("X-Taopt-Cache"); c != "" {
			fmt.Fprintf(&out, "x-taopt-cache: %s\n", c)
		}
		out.WriteString(rw.Body.String())
		out.WriteString("\n")
	}

	do("healthz", "GET", "/healthz", "")
	do("submit fresh (wait)", "POST", "/v1/runs?wait=1", goldenDoc)
	do("submit renamed: cache hit", "POST", "/v1/runs?wait=1", goldenDocRenamed)
	do("run status", "GET", "/v1/runs/r-000001", "")
	do("run listing", "GET", "/v1/runs", "")
	do("export", "GET", "/v1/runs/r-000001/export", "")
	do("telemetry", "GET", "/v1/runs/r-000001/telemetry", "")
	do("trace", "GET", "/v1/runs/r-000001/trace", "")
	do("malformed document", "POST", "/v1/runs", `{"kind": "run",`)
	do("invalid document: located issues", "POST", "/v1/runs", `{"kind": "run", "name": "broken", "run": {
		"setting": "warp", "durationMin": -3}}`)
	do("wrong kind", "POST", "/v1/runs", `{"kind": "app", "name": "Tiny", "app": {"subspaces": 4}}`)
	do("unknown run", "GET", "/v1/runs/r-999999", "")
	do("unknown run export", "GET", "/v1/runs/r-999999/export", "")
	do("failing compute (wait)", "POST", "/v1/runs?wait=1", `{"kind": "run", "name": "doomed", "run": {
		"app": "Filters For Selfie", "tool": "monkey", "setting": "baseline", "seed": 666}}`)
	do("failed run export", "GET", "/v1/runs/r-000003/export", "")
	do("submit without telemetry (wait)", "POST", "/v1/runs?wait=1", `{"kind": "run", "name": "lean", "run": {
		"app": "Filters For Selfie", "tool": "monkey", "setting": "baseline", "seed": 4}}`)
	do("telemetry not requested", "GET", "/v1/runs/r-000004/telemetry", "")
	do("oversized body", "POST", "/v1/runs", strings.Repeat("x", 1<<20+1))
	do("stats", "GET", "/v1/stats", "")

	got := out.String()
	golden := filepath.Join("testdata", "api_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("API responses diverge from golden (rerun with -update and inspect the diff):\ngot:\n%s", got)
	}
}

// A result fetch against a still-running compute is a pinned not_ready
// envelope, never a hang or a store error.
func TestAPINotReadyEnvelope(t *testing.T) {
	release := make(chan struct{})
	svc, err := service.New(service.Config{Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
		<-release
		return service.Cell{Export: []byte("e"), Trace: []byte("t")}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	handler := service.NewHandler(svc)

	req := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(goldenDoc))
	rw := httptest.NewRecorder()
	handler.ServeHTTP(rw, req)
	if rw.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 while queued", rw.Code)
	}

	req = httptest.NewRequest("GET", "/v1/runs/r-000001/export", nil)
	rw = httptest.NewRecorder()
	handler.ServeHTTP(rw, req)
	if rw.Code != http.StatusConflict {
		t.Fatalf("export status = %d, want 409", rw.Code)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
		t.Fatalf("envelope does not parse: %v\n%s", err, rw.Body.String())
	}
	if env.Error.Code != "not_ready" || !strings.Contains(env.Error.Message, "r-000001") {
		t.Fatalf("envelope = %+v", env.Error)
	}

	close(release)
	req = httptest.NewRequest("GET", "/v1/runs/r-000001?wait=1", nil)
	rw = httptest.NewRecorder()
	handler.ServeHTTP(rw, req)
	var rec service.RunRecord
	if err := json.Unmarshal(rw.Body.Bytes(), &rec); err != nil || rec.State != service.StateDone {
		t.Fatalf("waited status = %+v, %v", rec, err)
	}
}
