package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileRepo is the append-friendly on-disk Repository under a data dir:
//
//	<dir>/runs/<id>.json            one record per submitted run
//	<dir>/cells/<hash>/cell.json    cell metadata + part checksums
//	<dir>/cells/<hash>/export.json  the v5 export, byte-for-byte
//	<dir>/cells/<hash>/telemetry.txt
//	<dir>/cells/<hash>/trace.taoptb
//
// Every write goes through a temp name plus rename, so a crash mid-write
// leaves either the old content or none; GetCell verifies each part against
// the checksums in cell.json and reports tampering or truncation as
// ErrCorrupt, which the service treats as a miss and recomputes over.
type FileRepo struct {
	dir string
}

// NewFileRepo opens (creating if needed) a file store under dir.
func NewFileRepo(dir string) (*FileRepo, error) {
	for _, sub := range []string{"runs", "cells"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("service: opening store: %w", err)
		}
	}
	return &FileRepo{dir: dir}, nil
}

// Dir returns the store's data directory.
func (f *FileRepo) Dir() string { return f.dir }

// validKey guards every path component derived from caller input: run IDs
// and config hashes are ASCII words, never path syntax.
func validKey(k string) bool {
	if k == "" || strings.HasPrefix(k, ".") {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

func (f *FileRepo) runPath(id string) string { return filepath.Join(f.dir, "runs", id+".json") }

// writeFileAtomic writes data next to path and renames it into place.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// CreateRun implements Repository.
func (f *FileRepo) CreateRun(rec RunRecord) error {
	if !validKey(rec.ID) {
		return fmt.Errorf("service: invalid run ID %q", rec.ID)
	}
	if _, err := os.Stat(f.runPath(rec.ID)); err == nil {
		return fmt.Errorf("%w: run %s", ErrExists, rec.ID)
	}
	return f.writeRun(rec)
}

// UpdateRun implements Repository.
func (f *FileRepo) UpdateRun(rec RunRecord) error {
	if !validKey(rec.ID) {
		return fmt.Errorf("%w: run %q", ErrNotFound, rec.ID)
	}
	if _, err := os.Stat(f.runPath(rec.ID)); err != nil {
		return fmt.Errorf("%w: run %s", ErrNotFound, rec.ID)
	}
	return f.writeRun(rec)
}

func (f *FileRepo) writeRun(rec RunRecord) error {
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return fmt.Errorf("service: encoding run %s: %w", rec.ID, err)
	}
	if err := writeFileAtomic(f.runPath(rec.ID), append(data, '\n')); err != nil {
		return fmt.Errorf("service: writing run %s: %w", rec.ID, err)
	}
	return nil
}

// GetRun implements Repository.
func (f *FileRepo) GetRun(id string) (RunRecord, error) {
	if !validKey(id) {
		return RunRecord{}, fmt.Errorf("%w: run %q", ErrNotFound, id)
	}
	data, err := os.ReadFile(f.runPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return RunRecord{}, fmt.Errorf("%w: run %s", ErrNotFound, id)
		}
		return RunRecord{}, fmt.Errorf("service: reading run %s: %w", id, err)
	}
	var rec RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return RunRecord{}, fmt.Errorf("%w: run %s: %v", ErrCorrupt, id, err)
	}
	if rec.ID != id {
		return RunRecord{}, fmt.Errorf("%w: run file %s names ID %q", ErrCorrupt, id, rec.ID)
	}
	return rec, nil
}

// ListRuns implements Repository. os.ReadDir returns entries sorted by name
// and IDs are zero-padded, so the listing is in submission order.
func (f *FileRepo) ListRuns() ([]RunRecord, error) {
	entries, err := os.ReadDir(filepath.Join(f.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("service: listing runs: %w", err)
	}
	var out []RunRecord
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || e.IsDir() {
			continue
		}
		rec, err := f.GetRun(name)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// cellMeta is the integrity manifest of one stored cell.
type cellMeta struct {
	ConfigHash   string `json:"configHash"`
	App          string `json:"app"`
	Tool         string `json:"tool"`
	Setting      string `json:"setting"`
	Seed         int64  `json:"seed"`
	ScenarioHash string `json:"scenarioHash"`
	// Parts maps part filename to its SHA-256 (hex); a part absent here is
	// absent from the cell (telemetry-less runs store no telemetry.txt).
	Parts map[string]string `json:"parts"`
}

const (
	partExport    = "export.json"
	partTelemetry = "telemetry.txt"
	partTrace     = "trace.taoptb"
)

func sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

func (f *FileRepo) cellDir(hash string) string { return filepath.Join(f.dir, "cells", hash) }

// PutCell implements Repository. The cell is assembled in a temp directory
// and renamed into place, replacing any previous cell under the hash, so
// readers never observe a half-written cell.
func (f *FileRepo) PutCell(c Cell) error {
	if !validKey(c.ConfigHash) {
		return fmt.Errorf("service: invalid cell hash %q", c.ConfigHash)
	}
	tmp := filepath.Join(f.dir, "cells", ".tmp-"+c.ConfigHash)
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("service: storing cell: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("service: storing cell: %w", err)
	}
	meta := cellMeta{
		ConfigHash: c.ConfigHash, App: c.App, Tool: c.Tool, Setting: c.Setting,
		Seed: c.Seed, ScenarioHash: c.ScenarioHash,
		Parts: map[string]string{partExport: sum(c.Export), partTrace: sum(c.Trace)},
	}
	parts := map[string][]byte{partExport: c.Export, partTrace: c.Trace}
	if len(c.Telemetry) > 0 {
		meta.Parts[partTelemetry] = sum(c.Telemetry)
		parts[partTelemetry] = c.Telemetry
	}
	for _, name := range sortedPartNames(parts) {
		if err := os.WriteFile(filepath.Join(tmp, name), parts[name], 0o644); err != nil {
			return fmt.Errorf("service: storing cell part %s: %w", name, err)
		}
	}
	mdata, err := json.MarshalIndent(meta, "", " ")
	if err != nil {
		return fmt.Errorf("service: encoding cell meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "cell.json"), append(mdata, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: storing cell meta: %w", err)
	}
	dst := f.cellDir(c.ConfigHash)
	if err := os.RemoveAll(dst); err != nil {
		return fmt.Errorf("service: replacing cell: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("service: storing cell: %w", err)
	}
	return nil
}

func sortedPartNames(parts map[string][]byte) []string {
	names := make([]string, 0, len(parts))
	for n := range parts {
		names = append(names, n)
	}
	// Deterministic write order keeps crash states enumerable; the read side
	// never depends on it because the rename is the commit point.
	sort.Strings(names)
	return names
}

// GetCell implements Repository, verifying every part against cell.json.
func (f *FileRepo) GetCell(hash string) (Cell, error) {
	if !validKey(hash) {
		return Cell{}, fmt.Errorf("%w: cell %q", ErrNotFound, hash)
	}
	dir := f.cellDir(hash)
	mdata, err := os.ReadFile(filepath.Join(dir, "cell.json"))
	if err != nil {
		if os.IsNotExist(err) {
			if _, serr := os.Stat(dir); serr == nil {
				// The directory exists without its manifest: an interrupted
				// or tampered cell, not a clean miss.
				return Cell{}, fmt.Errorf("%w: cell %s has no manifest", ErrCorrupt, hash)
			}
			return Cell{}, fmt.Errorf("%w: cell %s", ErrNotFound, hash)
		}
		return Cell{}, fmt.Errorf("service: reading cell %s: %w", hash, err)
	}
	var meta cellMeta
	if err := json.Unmarshal(mdata, &meta); err != nil {
		return Cell{}, fmt.Errorf("%w: cell %s manifest: %v", ErrCorrupt, hash, err)
	}
	if meta.ConfigHash != hash {
		return Cell{}, fmt.Errorf("%w: cell %s manifest names hash %q", ErrCorrupt, hash, meta.ConfigHash)
	}
	c := Cell{
		ConfigHash: meta.ConfigHash, App: meta.App, Tool: meta.Tool, Setting: meta.Setting,
		Seed: meta.Seed, ScenarioHash: meta.ScenarioHash,
	}
	read := func(name string) ([]byte, error) {
		want, ok := meta.Parts[name]
		if !ok {
			return nil, nil
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("%w: cell %s part %s: %v", ErrCorrupt, hash, name, err)
		}
		if sum(data) != want {
			return nil, fmt.Errorf("%w: cell %s part %s fails its checksum", ErrCorrupt, hash, name)
		}
		return data, nil
	}
	if c.Export, err = read(partExport); err != nil {
		return Cell{}, err
	}
	if c.Telemetry, err = read(partTelemetry); err != nil {
		return Cell{}, err
	}
	if c.Trace, err = read(partTrace); err != nil {
		return Cell{}, err
	}
	return c, nil
}

// CellHashes implements Repository.
func (f *FileRepo) CellHashes() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(f.dir, "cells"))
	if err != nil {
		return nil, fmt.Errorf("service: listing cells: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// Close implements Repository.
func (f *FileRepo) Close() error { return nil }
