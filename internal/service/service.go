package service

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"taopt/internal/export"
	"taopt/internal/harness"
	"taopt/internal/report"
	"taopt/internal/scenario"
)

// Lifecycle sentinels (errors.Is only, like the repository's).
var (
	// ErrNotReady reports a result fetch against a still-queued run.
	ErrNotReady = errors.New("service: run not ready")
	// ErrRunFailed reports a result fetch against a failed run.
	ErrRunFailed = errors.New("service: run failed")
)

// Stats is the service's cache-and-flight accounting.
type Stats struct {
	// Submitted counts accepted submissions (invalid scenarios are rejected
	// before they count).
	Submitted int `json:"submitted"`
	// Computed counts cells actually simulated. The single-flight guarantee
	// is expressed here: N concurrent identical submits move Computed by 1.
	Computed int `json:"computed"`
	// CacheHits counts submits served directly from a stored cell.
	CacheHits int `json:"cacheHits"`
	// Coalesced counts submits that attached to an in-flight identical
	// compute instead of starting their own.
	Coalesced int `json:"coalesced"`
	// Failures counts runs that ended in StateFailed.
	Failures int `json:"failures"`
}

// Config parameterises a Service.
type Config struct {
	// Repo is the run store (default: a fresh MemRepo).
	Repo Repository
	// Workers bounds concurrently executing computes (default 1; results
	// never depend on it — each cell is a pure function of its document).
	Workers int
	// Exec computes one cell from a compiled run scenario. Nil means the
	// real backend: lower onto harness.RunConfig, simulate, capture the v5
	// export, telemetry digest and binary trace. Tests stub it to count
	// computes without paying for simulation.
	Exec func(rs *scenario.RunSpec) (Cell, error)
}

// flight is one in-progress compute; identical submits attach their run IDs
// and wait on done instead of computing again.
type flight struct {
	done chan struct{}
	ids  []string
}

// Service owns the run lifecycle: compile, de-duplicate, queue, execute,
// persist. All methods are safe for concurrent use.
type Service struct {
	repo     Repository
	exec     func(rs *scenario.RunSpec) (Cell, error)
	validate func(rs *scenario.RunSpec) error
	sem      chan struct{}

	mu      sync.Mutex
	nextID  int
	flights map[string]*flight
	stats   Stats
	idle    *sync.Cond
	active  int
}

// New builds a Service over cfg. With a file-backed repository the ID
// sequence resumes after the highest stored run, so restarts never collide.
func New(cfg Config) (*Service, error) {
	if cfg.Repo == nil {
		cfg.Repo = NewMemRepo()
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	s := &Service{
		repo:    cfg.Repo,
		exec:    cfg.Exec,
		sem:     make(chan struct{}, cfg.Workers),
		flights: make(map[string]*flight),
	}
	if s.exec == nil {
		s.exec = computeCell
		// With the real backend, reject what the harness cannot run (unknown
		// catalog app or tool) at submit time instead of queueing a run that
		// is doomed to fail.
		s.validate = func(rs *scenario.RunSpec) error {
			_, err := harness.FromRunScenario(rs)
			return err
		}
	}
	s.idle = sync.NewCond(&s.mu)
	recs, err := cfg.Repo.ListRuns()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		var n int
		if _, err := fmt.Sscanf(rec.ID, "r-%06d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		// A run left queued by a dying process will never finish; surface
		// that instead of blocking status waits forever.
		if rec.State == StateQueued {
			rec.State = StateFailed
			rec.Error = "interrupted before completion (service restarted)"
			if err := cfg.Repo.UpdateRun(rec); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// computeCell is the real execution backend: one deterministic harness run,
// reduced to the byte payloads the API serves. The binary trace is always
// captured; the telemetry digest only when the document asked for it.
func computeCell(rs *scenario.RunSpec) (Cell, error) {
	cfg, err := harness.FromRunScenario(rs)
	if err != nil {
		return Cell{}, err
	}
	var trace bytes.Buffer
	cfg.BinTrace = &trace
	res, err := harness.Run(cfg)
	if err != nil {
		return Cell{}, err
	}
	var exp bytes.Buffer
	if err := export.FromResult(res).Write(&exp); err != nil {
		return Cell{}, err
	}
	c := Cell{
		App: cfg.App.Name, Tool: rs.Tool, Setting: rs.Setting,
		Seed: rs.Seed, ScenarioHash: cfg.ScenarioHash,
		Export: exp.Bytes(), Trace: trace.Bytes(),
	}
	if rs.Telemetry {
		var tel bytes.Buffer
		if err := report.Telemetry(&tel, res); err != nil {
			return Cell{}, err
		}
		c.Telemetry = tel.Bytes()
	}
	return c, nil
}

// Submit compiles data as a run scenario and resolves it against the store:
// a stored cell is an immediate cache hit, an identical in-flight compute is
// joined, and only a genuinely new configuration starts a compute. The
// returned record is the submit-time snapshot; poll or wait for completion.
func (s *Service) Submit(data []byte) (RunRecord, error) {
	rs, err := scenario.CompileRun(data)
	if err != nil {
		return RunRecord{}, err
	}
	if s.validate != nil {
		if err := s.validate(rs); err != nil {
			return RunRecord{}, err
		}
	}
	appLabel := rs.AppName
	if rs.App != nil {
		appLabel = rs.App.Spec.Name
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Submitted++
	s.nextID++
	rec := RunRecord{
		ID:         fmt.Sprintf("r-%06d", s.nextID),
		Name:       rs.Name,
		ConfigHash: rs.ConfigHash,
		App:        appLabel,
		Tool:       rs.Tool,
		Setting:    rs.Setting,
		Seed:       rs.Seed,
		State:      StateQueued,
	}

	if fl, ok := s.flights[rs.ConfigHash]; ok {
		// Coalesce: attach to the in-flight compute of the same hash.
		s.stats.Coalesced++
		if err := s.repo.CreateRun(rec); err != nil {
			return RunRecord{}, err
		}
		fl.ids = append(fl.ids, rec.ID)
		return rec, nil
	}
	if _, err := s.repo.GetCell(rs.ConfigHash); err == nil {
		s.stats.CacheHits++
		rec.State = StateDone
		rec.CacheHit = true
		if err := s.repo.CreateRun(rec); err != nil {
			return RunRecord{}, err
		}
		return rec, nil
	}
	// ErrNotFound and ErrCorrupt both fall through to a fresh compute;
	// PutCell replaces a corrupt cell, which is the recovery path.

	if err := s.repo.CreateRun(rec); err != nil {
		return RunRecord{}, err
	}
	fl := &flight{done: make(chan struct{}), ids: []string{rec.ID}}
	s.flights[rs.ConfigHash] = fl
	s.active++
	go s.runFlight(rs, fl)
	return rec, nil
}

// runFlight executes one compute and settles every attached run record.
func (s *Service) runFlight(rs *scenario.RunSpec, fl *flight) {
	s.sem <- struct{}{}
	cell, err := s.exec(rs)
	<-s.sem

	s.mu.Lock()
	defer func() {
		delete(s.flights, rs.ConfigHash)
		s.active--
		s.idle.Broadcast()
		s.mu.Unlock()
		close(fl.done)
	}()
	if err == nil {
		cell.ConfigHash = rs.ConfigHash
		err = s.repo.PutCell(cell)
	}
	if err == nil {
		s.stats.Computed++
	} else {
		s.stats.Failures++
	}
	for i, id := range fl.ids {
		rec, gerr := s.repo.GetRun(id)
		if gerr != nil {
			continue
		}
		if err != nil {
			rec.State = StateFailed
			rec.Error = err.Error()
		} else {
			rec.State = StateDone
			// The submit that started the flight computed; everyone who
			// coalesced onto it was served from that one compute.
			rec.CacheHit = i > 0
		}
		if uerr := s.repo.UpdateRun(rec); uerr != nil && err == nil {
			// A record we cannot settle would wait forever; the cell itself
			// is stored, so surface the store failure on the record reader.
			continue
		}
	}
}

// Run returns the current record for id.
func (s *Service) Run(id string) (RunRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repo.GetRun(id)
}

// WaitRun blocks until id leaves StateQueued and returns the settled record.
func (s *Service) WaitRun(id string) (RunRecord, error) {
	for {
		s.mu.Lock()
		rec, err := s.repo.GetRun(id)
		if err != nil || rec.State != StateQueued {
			s.mu.Unlock()
			return rec, err
		}
		fl := s.flights[rec.ConfigHash]
		s.mu.Unlock()
		if fl == nil {
			// The flight settled between the read and the lookup; re-read.
			continue
		}
		<-fl.done
	}
}

// Runs lists every record, sorted by ID.
func (s *Service) Runs() ([]RunRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repo.ListRuns()
}

// Cell returns the completed cell a settled run resolves to. A queued run is
// ErrNotReady; a failed run reports its failure.
func (s *Service) Cell(id string) (Cell, error) {
	s.mu.Lock()
	rec, err := s.repo.GetRun(id)
	s.mu.Unlock()
	if err != nil {
		return Cell{}, err
	}
	switch rec.State {
	case StateQueued:
		return Cell{}, fmt.Errorf("%w: run %s is still queued", ErrNotReady, id)
	case StateFailed:
		return Cell{}, fmt.Errorf("%w: run %s: %s", ErrRunFailed, id, rec.Error)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repo.GetCell(rec.ConfigHash)
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Drain blocks until no flights are in progress (test and shutdown aid).
func (s *Service) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.active > 0 {
		s.idle.Wait()
	}
}

// Close drains in-flight computes and releases the store.
func (s *Service) Close() error {
	s.Drain()
	return s.repo.Close()
}
