package service_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/export"
	"taopt/internal/harness"
	"taopt/internal/scenario"
	"taopt/internal/service"
	"taopt/internal/sim"
)

const oracleDoc = `{"kind": "run", "name": "oracle", "run": {
	"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
	"durationMin": 6, "seed": 7}}`

// Same configuration, different name: must resolve to the same cache cell.
const oracleDocRenamed = `{"kind": "run", "name": "oracle, resubmitted", "run": {
	"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
	"durationMin": 6, "seed": 7}}`

func mustSubmitWait(t *testing.T, svc *service.Service, doc string) service.RunRecord {
	t.Helper()
	rec, err := svc.Submit([]byte(doc))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rec, err = svc.WaitRun(rec.ID)
	if err != nil {
		t.Fatalf("WaitRun(%s): %v", rec.ID, err)
	}
	return rec
}

// The cache-equivalence oracle: a cell served from the cache is byte-identical
// to the fresh compute, and the fresh compute itself is byte-identical to an
// offline harness run of the equivalent hand-built config — the property that
// makes cache-serving safe at all.
func TestServiceCacheEquivalenceOracle(t *testing.T) {
	dir := t.TempDir()
	repo, err := service.NewFileRepo(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Repo: repo})
	if err != nil {
		t.Fatal(err)
	}

	rec := mustSubmitWait(t, svc, oracleDoc)
	if rec.State != service.StateDone || rec.CacheHit {
		t.Fatalf("fresh run settled as %+v", rec)
	}
	cell, err := svc.Cell(rec.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The offline equivalent of the document, built the way cmd/taopt does.
	res, err := harness.Run(harness.RunConfig{
		App:          apps.MustLoad("Filters For Selfie"),
		Tool:         "monkey",
		Setting:      harness.TaOPTDuration,
		Duration:     6 * sim.Duration(60e9),
		Seed:         7,
		ScenarioHash: apps.Hash("Filters For Selfie"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var offline bytes.Buffer
	if err := export.FromResult(res).Write(&offline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cell.Export, offline.Bytes()) {
		t.Fatalf("service export diverges from the offline compute (%d vs %d bytes)",
			len(cell.Export), offline.Len())
	}
	if cell.ScenarioHash != apps.Hash("Filters For Selfie") {
		t.Fatalf("cell scenario hash = %q", cell.ScenarioHash)
	}

	// Resubmit under another name: an immediate hit, byte-identical.
	rec2 := mustSubmitWait(t, svc, oracleDocRenamed)
	if rec2.State != service.StateDone || !rec2.CacheHit {
		t.Fatalf("resubmit settled as %+v, want a done cache hit", rec2)
	}
	if rec2.ConfigHash != rec.ConfigHash {
		t.Fatalf("renamed document changed the cache key: %s vs %s", rec2.ConfigHash, rec.ConfigHash)
	}
	cell2, err := svc.Cell(rec2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cell2.Export, cell.Export) || !bytes.Equal(cell2.Trace, cell.Trace) {
		t.Fatal("cache hit is not byte-identical to the fresh compute")
	}
	if st := svc.Stats(); st.Computed != 1 || st.CacheHits != 1 || st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	svc.Close()

	// A restarted service over the same directory serves the cell without
	// recomputing — durability is part of the oracle.
	repo2, err := service.NewFileRepo(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := service.New(service.Config{Repo: repo2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	rec3 := mustSubmitWait(t, svc2, oracleDoc)
	if rec3.State != service.StateDone || !rec3.CacheHit {
		t.Fatalf("post-restart resubmit settled as %+v, want a done cache hit", rec3)
	}
	if rec3.ID != "r-000003" {
		t.Fatalf("restarted ID sequence = %s, want r-000003 (resume after the stored runs)", rec3.ID)
	}
	cell3, err := svc2.Cell(rec3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cell3.Export, cell.Export) {
		t.Fatal("post-restart cache hit is not byte-identical")
	}
	if st := svc2.Stats(); st.Computed != 0 || st.CacheHits != 1 {
		t.Fatalf("post-restart stats = %+v, want zero computes", st)
	}
}

// N concurrent identical submits compute exactly one cell. Run under -race
// this is also the service's data-race certificate.
func TestServiceSingleFlight(t *testing.T) {
	const n = 16
	var computes atomic.Int32
	release := make(chan struct{})
	svc, err := service.New(service.Config{
		Workers: 4,
		Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
			computes.Add(1)
			<-release // hold the flight open until every submit has landed
			return service.Cell{Export: []byte("export"), Trace: []byte("trace")}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	doc := []byte(`{"kind": "run", "name": "flock", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline", "seed": 3}}`)
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := svc.Submit(doc)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids[i] = rec.ID
		}(i)
	}
	wg.Wait()
	close(release)
	svc.Drain()

	if got := computes.Load(); got != 1 {
		t.Fatalf("exec ran %d times for %d identical submits, want exactly 1", got, n)
	}
	st := svc.Stats()
	if st.Computed != 1 || st.Coalesced != n-1 || st.Submitted != n || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	fresh := 0
	for _, id := range ids {
		rec, err := svc.WaitRun(id)
		if err != nil {
			t.Fatalf("WaitRun(%s): %v", id, err)
		}
		if rec.State != service.StateDone {
			t.Fatalf("run %s settled as %+v", id, rec)
		}
		if !rec.CacheHit {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d runs claim the fresh compute, want exactly 1", fresh)
	}
}

// A corrupt stored cell is a miss, not an error: the next submit of the same
// configuration recomputes and heals the store.
func TestServiceRecomputesOverCorruptCell(t *testing.T) {
	var computes atomic.Int32
	repo := &corruptibleRepo{Repository: service.NewMemRepo()}
	svc, err := service.New(service.Config{
		Repo: repo,
		Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
			computes.Add(1)
			return service.Cell{Export: []byte("export"), Trace: []byte("trace")}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	doc := `{"kind": "run", "name": "healme", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline"}}`
	rec := mustSubmitWait(t, svc, doc)
	if rec.State != service.StateDone || computes.Load() != 1 {
		t.Fatalf("first run: %+v, computes=%d", rec, computes.Load())
	}

	repo.corrupt = true // every GetCell now reports ErrCorrupt
	rec2 := mustSubmitWait(t, svc, doc)
	repo.corrupt = false
	if rec2.State != service.StateDone || rec2.CacheHit {
		t.Fatalf("recovery run settled as %+v, want a fresh compute", rec2)
	}
	if computes.Load() != 2 {
		t.Fatalf("computes = %d, want 2 (corruption must trigger a recompute)", computes.Load())
	}
	if _, err := svc.Cell(rec2.ID); err != nil {
		t.Fatalf("store not healed: %v", err)
	}
}

// corruptibleRepo wraps a Repository and, when armed, fails every GetCell
// with ErrCorrupt — the in-memory stand-in for a damaged file store.
type corruptibleRepo struct {
	service.Repository
	corrupt bool
}

func (r *corruptibleRepo) GetCell(hash string) (service.Cell, error) {
	if r.corrupt {
		return service.Cell{}, fmt.Errorf("%w: armed for the test", service.ErrCorrupt)
	}
	return r.Repository.GetCell(hash)
}

// A failing compute settles every attached run as failed, and the failure is
// not cached: the next submit tries again.
func TestServiceFailureSettlesRuns(t *testing.T) {
	fail := true
	svc, err := service.New(service.Config{
		Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
			if fail {
				return service.Cell{}, errors.New("device farm on fire")
			}
			return service.Cell{Export: []byte("ok"), Trace: []byte("t")}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	doc := `{"kind": "run", "name": "doomed", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline"}}`
	rec := mustSubmitWait(t, svc, doc)
	if rec.State != service.StateFailed || rec.Error != "device farm on fire" {
		t.Fatalf("failed run settled as %+v", rec)
	}
	if _, err := svc.Cell(rec.ID); !errors.Is(err, service.ErrRunFailed) {
		t.Fatalf("Cell(failed run) = %v, want errors.Is ErrRunFailed", err)
	}
	if st := svc.Stats(); st.Failures != 1 || st.Computed != 0 {
		t.Fatalf("stats = %+v", st)
	}

	fail = false
	rec2 := mustSubmitWait(t, svc, doc)
	if rec2.State != service.StateDone || rec2.CacheHit {
		t.Fatalf("retry settled as %+v, want a fresh successful compute", rec2)
	}
}

// Fetching a still-queued run's result is ErrNotReady, not a store error.
func TestServiceCellNotReady(t *testing.T) {
	release := make(chan struct{})
	svc, err := service.New(service.Config{
		Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
			<-release
			return service.Cell{Export: []byte("e"), Trace: []byte("t")}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rec, err := svc.Submit([]byte(`{"kind": "run", "name": "slow", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != service.StateQueued {
		t.Fatalf("submit-time state = %q", rec.State)
	}
	if _, err := svc.Cell(rec.ID); !errors.Is(err, service.ErrNotReady) {
		t.Fatalf("Cell(queued) = %v, want errors.Is ErrNotReady", err)
	}
	close(release)
	if rec, err = svc.WaitRun(rec.ID); err != nil || rec.State != service.StateDone {
		t.Fatalf("after release: %+v, %v", rec, err)
	}
}

// A restarted service fails runs its predecessor left queued — they can never
// finish — and resumes the ID sequence after the highest stored run.
func TestServiceRestartFailsInterruptedRuns(t *testing.T) {
	repo, err := service.NewFileRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	orphan := service.RunRecord{
		ID: "r-000005", Name: "interrupted", ConfigHash: "deadbeef",
		App: "Zedge", Tool: "monkey", Setting: "baseline", State: service.StateQueued,
	}
	if err := repo.CreateRun(orphan); err != nil {
		t.Fatal(err)
	}

	svc, err := service.New(service.Config{Repo: repo, Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
		return service.Cell{Export: []byte("e"), Trace: []byte("t")}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rec, err := svc.Run("r-000005")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != service.StateFailed || rec.Error == "" {
		t.Fatalf("orphaned run = %+v, want failed with a message", rec)
	}
	next, err := svc.Submit([]byte(`{"kind": "run", "name": "after restart", "run": {
		"app": "Zedge", "tool": "monkey", "setting": "baseline"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "r-000006" {
		t.Fatalf("post-restart ID = %s, want r-000006", next.ID)
	}
}

// With the real backend, documents the harness cannot run are rejected at
// submit time instead of queueing a doomed run.
func TestServiceRejectsUnrunnableAtSubmit(t *testing.T) {
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Submit([]byte(`{"kind": "run", "name": "x", "run": {
		"app": "No Such App", "tool": "monkey", "setting": "baseline"}}`)); err == nil {
		t.Fatal("unknown catalog app accepted")
	}
	if _, err := svc.Submit([]byte(`{"kind": "run", "name": "x", "run": {
		"app": "Zedge", "tool": "hypermonkey", "setting": "baseline"}}`)); err == nil {
		t.Fatal("unknown tool accepted")
	}
	if st := svc.Stats(); st.Submitted != 0 {
		t.Fatalf("rejected submits counted: %+v", st)
	}
}
