package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"taopt/internal/scenario"
	"taopt/internal/service"
)

// FuzzServiceSubmit hammers the submit endpoint with arbitrary bytes: the
// handler must never panic, and every non-2xx response must be a well-formed
// error envelope with a non-empty code — the contract API clients parse.
func FuzzServiceSubmit(f *testing.F) {
	seeds := []string{
		goldenDoc,
		`{"kind": "run", "name": "inline", "run": {
			"inlineApp": {"name": "Tiny", "app": {"subspaces": 4}},
			"tool": "monkey", "setting": "baseline"}}`,
		`{"kind": "run", "name": "bad", "run": {"setting": "warp", "durationMin": -3}}`,
		`{"kind": "app", "name": "Tiny", "app": {"subspaces": 4}}`,
		`{"kind": "run",`,
		`{"schemaVersion": 99, "kind": "run", "name": "v99", "run": {}}`,
		`null`,
		``,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		svc, err := service.New(service.Config{Exec: func(rs *scenario.RunSpec) (service.Cell, error) {
			return service.Cell{Export: []byte("e"), Trace: []byte("t")}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		handler := service.NewHandler(svc)

		req := httptest.NewRequest("POST", "/v1/runs?wait=1", bytes.NewReader(data))
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)

		switch rw.Code {
		case http.StatusOK, http.StatusAccepted:
			var resp struct {
				ID    string `json:"id"`
				State string `json:"state"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil || resp.ID == "" || resp.State == "" {
				t.Fatalf("2xx without a well-formed submit response: %v\n%s", err, rw.Body.String())
			}
		default:
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
				t.Fatalf("status %d without a parseable envelope: %v\n%s", rw.Code, err, rw.Body.String())
			}
			if env.Error.Code == "" {
				t.Fatalf("status %d envelope lacks a code:\n%s", rw.Code, rw.Body.String())
			}
		}
	})
}
