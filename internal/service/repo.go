// Package service is the taoptd campaign service: run submission over the
// scenario DSL, a content-hash-cached run store behind a storage-agnostic
// Repository seam, and single-flight de-duplication so N concurrent
// identical submits compute exactly one cell. The deterministic core stays
// untouched underneath — a run is a pure function of its scenario document,
// which is what makes serving a cached cell safe: a hit is byte-identical
// to a fresh compute by construction, and the test layer proves it.
//
// The package contains no wall-clock reads and no global randomness (the
// repo-wide determinism lint applies to it like any other internal package):
// run records carry states, not timestamps, and identity comes from the
// scenario document's canonical hash.
package service

import "errors"

// Sentinel errors of the repository seam. Callers discriminate with
// errors.Is only; implementations wrap them with context.
var (
	// ErrNotFound reports a missing run or cell key.
	ErrNotFound = errors.New("service: not found")
	// ErrExists reports a CreateRun with an already-used ID.
	ErrExists = errors.New("service: run already exists")
	// ErrCorrupt reports a stored cell that failed its integrity check
	// (truncated part, checksum mismatch, unreadable metadata). The service
	// treats it as a cache miss and recomputes over it.
	ErrCorrupt = errors.New("service: corrupt record")
)

// Run states. Plain strings, not a named enum: they cross the JSON API
// boundary verbatim.
const (
	StateQueued = "queued"
	StateDone   = "done"
	StateFailed = "failed"
)

// RunRecord is one submitted run: the queue-visible identity and lifecycle
// of a request, separate from the cached result it resolves to. Records
// deliberately carry no timestamps — the service is part of the
// deterministic tree, and ordering comes from the zero-padded ID sequence.
type RunRecord struct {
	// ID is the service-assigned identifier ("r-000001", zero-padded so
	// lexical and submission order coincide).
	ID string `json:"id"`
	// Name is the scenario document's name (display only; it is excluded
	// from the cache key).
	Name string `json:"name"`
	// ConfigHash is the canonical hash of the run document minus its name —
	// the key of the cell this run resolves to.
	ConfigHash string `json:"configHash"`
	App        string `json:"app"`
	Tool       string `json:"tool"`
	Setting    string `json:"setting"`
	Seed       int64  `json:"seed"`
	// State is StateQueued, StateDone or StateFailed.
	State string `json:"state"`
	// CacheHit reports that this run was served from a previously computed
	// cell (including coalesced submits that attached to another run's
	// in-flight compute).
	CacheHit bool `json:"cacheHit"`
	// Error carries the failure message when State is StateFailed.
	Error string `json:"error,omitempty"`
}

// Cell is one computed run result, keyed by ConfigHash: the v5 export bytes,
// the rendered telemetry digest (empty when the run did not request
// telemetry) and the binary trace stream.
type Cell struct {
	ConfigHash string
	App        string
	Tool       string
	Setting    string
	Seed       int64
	// ScenarioHash is the app document hash stamped into the export
	// (export v5's scenario_hash).
	ScenarioHash string
	Export       []byte
	Telemetry    []byte
	Trace        []byte
}

// Repository persists run records and completed cells. Implementations must
// be safe for concurrent use; the contract (including sentinel semantics) is
// pinned by servicetest.RunRepositoryContract over every implementation.
type Repository interface {
	// CreateRun stores a new record; an already-used ID is ErrExists.
	CreateRun(rec RunRecord) error
	// UpdateRun replaces an existing record; a missing ID is ErrNotFound.
	UpdateRun(rec RunRecord) error
	// GetRun returns the record for id, or ErrNotFound.
	GetRun(id string) (RunRecord, error)
	// ListRuns returns every record sorted by ID.
	ListRuns() ([]RunRecord, error)
	// PutCell stores a completed cell, replacing any previous cell under the
	// same ConfigHash (idempotent: re-putting an identical cell succeeds).
	PutCell(c Cell) error
	// GetCell returns the cell for hash: ErrNotFound when absent, ErrCorrupt
	// when present but failing its integrity check.
	GetCell(hash string) (Cell, error)
	// CellHashes returns every stored cell key, sorted.
	CellHashes() ([]string, error)
	// Close releases the store.
	Close() error
}
