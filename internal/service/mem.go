package service

import (
	"fmt"
	"sort"
	"sync"
)

// MemRepo is the in-memory Repository: the default store of a taoptd run
// without a data dir, and the reference implementation the contract suite
// measures the file store against.
type MemRepo struct {
	mu    sync.Mutex
	runs  map[string]RunRecord
	cells map[string]Cell
}

// NewMemRepo returns an empty in-memory store.
func NewMemRepo() *MemRepo {
	return &MemRepo{runs: make(map[string]RunRecord), cells: make(map[string]Cell)}
}

// CreateRun implements Repository.
func (m *MemRepo) CreateRun(rec RunRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.runs[rec.ID]; ok {
		return fmt.Errorf("%w: run %s", ErrExists, rec.ID)
	}
	m.runs[rec.ID] = rec
	return nil
}

// UpdateRun implements Repository.
func (m *MemRepo) UpdateRun(rec RunRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.runs[rec.ID]; !ok {
		return fmt.Errorf("%w: run %s", ErrNotFound, rec.ID)
	}
	m.runs[rec.ID] = rec
	return nil
}

// GetRun implements Repository.
func (m *MemRepo) GetRun(id string) (RunRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.runs[id]
	if !ok {
		return RunRecord{}, fmt.Errorf("%w: run %s", ErrNotFound, id)
	}
	return rec, nil
}

// ListRuns implements Repository.
func (m *MemRepo) ListRuns() ([]RunRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.runs))
	for id := range m.runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]RunRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, m.runs[id])
	}
	return out, nil
}

// PutCell implements Repository.
func (m *MemRepo) PutCell(c Cell) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.ConfigHash == "" {
		return fmt.Errorf("service: PutCell with empty ConfigHash")
	}
	// Copy the byte payloads so a caller mutating its buffers afterwards
	// cannot corrupt the cache — the file store has the same isolation by
	// virtue of writing to disk.
	c.Export = append([]byte(nil), c.Export...)
	c.Telemetry = append([]byte(nil), c.Telemetry...)
	c.Trace = append([]byte(nil), c.Trace...)
	m.cells[c.ConfigHash] = c
	return nil
}

// GetCell implements Repository.
func (m *MemRepo) GetCell(hash string) (Cell, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[hash]
	if !ok {
		return Cell{}, fmt.Errorf("%w: cell %s", ErrNotFound, hash)
	}
	return c, nil
}

// CellHashes implements Repository.
func (m *MemRepo) CellHashes() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.cells))
	for h := range m.cells {
		out = append(out, h)
	}
	sort.Strings(out)
	return out, nil
}

// Close implements Repository.
func (m *MemRepo) Close() error { return nil }
