package crash

import (
	"testing"
)

var framesA = []string{
	"com.app.Cart.submit(Cart.java:77)",
	"com.app.net.Client.post(Client.java:210)",
}

var framesB = []string{
	"com.app.Feed.load(Feed.java:12)",
}

func TestSignatureOfStability(t *testing.T) {
	if SignatureOf(framesA) != SignatureOf(framesA) {
		t.Fatal("signature must be deterministic")
	}
	if SignatureOf(framesA) == SignatureOf(framesB) {
		t.Fatal("different traces must have different signatures")
	}
	// "at " prefixes and whitespace are Logcat noise, not code locations.
	noisy := []string{"  at com.app.Cart.submit(Cart.java:77)", "at com.app.net.Client.post(Client.java:210)"}
	if SignatureOf(framesA) != SignatureOf(noisy) {
		t.Fatal("signature must normalise frame noise")
	}
}

func TestSignatureOrderMatters(t *testing.T) {
	rev := []string{framesA[1], framesA[0]}
	if SignatureOf(framesA) == SignatureOf(rev) {
		t.Fatal("frame order is part of the code-location identity")
	}
}

func TestLogDedup(t *testing.T) {
	l := NewLog("app")
	l.Record(framesA, 10, 0)
	l.Record(framesA, 20, 1)
	l.Record(framesB, 30, 0)
	if l.Total() != 3 {
		t.Fatalf("Total = %d, want 3", l.Total())
	}
	if l.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2", l.Unique())
	}
	first, ok := l.FirstSeen(SignatureOf(framesA))
	if !ok || first.At != 10 || first.Instance != 0 {
		t.Fatalf("FirstSeen = %+v, ok=%v", first, ok)
	}
	if _, ok := l.FirstSeen("crash:nope"); ok {
		t.Fatal("FirstSeen of unknown signature")
	}
	sigs := l.Signatures()
	if len(sigs) != 2 || sigs[0] > sigs[1] {
		t.Fatalf("Signatures = %v, want 2 sorted", sigs)
	}
}

func TestRecordCopiesFrames(t *testing.T) {
	l := NewLog("app")
	frames := []string{"com.app.A.b(A.java:1)"}
	r := l.Record(frames, 0, 0)
	frames[0] = "mutated"
	if r.Frames[0] == "mutated" || l.Reports()[0].Frames[0] == "mutated" {
		t.Fatal("Record must copy the frames slice")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewLog("app"), NewLog("app")
	a.Record(framesA, 1, 0)
	b.Record(framesA, 2, 1)
	b.Record(framesB, 3, 1)
	a.Merge(b)
	if a.Total() != 3 || a.Unique() != 2 {
		t.Fatalf("after merge: total=%d unique=%d", a.Total(), a.Unique())
	}
}

func TestUniqueUnion(t *testing.T) {
	a, b := NewLog("app"), NewLog("app")
	a.Record(framesA, 1, 0)
	b.Record(framesA, 2, 1)
	b.Record(framesB, 3, 1)
	if got := UniqueUnion([]*Log{a, b}); got != 2 {
		t.Fatalf("UniqueUnion = %d, want 2", got)
	}
	if got := UniqueUnion(nil); got != 0 {
		t.Fatalf("UniqueUnion(nil) = %d", got)
	}
}
