// Package crash collects app crashes and deduplicates them by stack-trace
// code locations, the analogue of the paper's Logcat-based crash collection
// (Section 6.1): "Code locations in stack traces are used to identify unique
// crashes."
package crash

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"taopt/internal/sim"
)

// Report is one observed crash.
type Report struct {
	App       string
	Frames    []string // innermost first
	Signature Signature
	At        sim.Duration
	Instance  int
}

// Signature identifies a unique crash: a hash of the stack trace's code
// locations.
type Signature string

// SignatureOf computes the deduplication key for a stack trace.
func SignatureOf(frames []string) Signature {
	h := fnv.New64a()
	for _, f := range frames {
		h.Write([]byte(codeLocation(f)))
		h.Write([]byte{'\n'})
	}
	return Signature(fmt.Sprintf("crash:%016x", h.Sum64()))
}

// codeLocation extracts the "Class.method(File.java:line)" code location from
// a frame, tolerating surrounding log noise such as "at " prefixes.
func codeLocation(frame string) string {
	f := strings.TrimSpace(frame)
	f = strings.TrimPrefix(f, "at ")
	return f
}

// Log accumulates crash reports and answers uniqueness queries.
// The zero value is not usable; use NewLog.
type Log struct {
	app     string
	reports []Report
	bySig   map[Signature][]int // signature -> report indexes
}

// NewLog returns an empty log for the named app.
func NewLog(appName string) *Log {
	return &Log{app: appName, bySig: make(map[Signature][]int)}
}

// Record adds a crash observed on instance at virtual time t and returns the
// report. The report's signature is computed from frames.
func (l *Log) Record(frames []string, t sim.Duration, instance int) Report {
	r := Report{
		App:       l.app,
		Frames:    append([]string(nil), frames...),
		Signature: SignatureOf(frames),
		At:        t,
		Instance:  instance,
	}
	l.bySig[r.Signature] = append(l.bySig[r.Signature], len(l.reports))
	l.reports = append(l.reports, r)
	return r
}

// Total returns the number of crash occurrences (with duplicates).
func (l *Log) Total() int { return len(l.reports) }

// Unique returns the number of distinct crashes.
func (l *Log) Unique() int { return len(l.bySig) }

// Signatures returns the distinct crash signatures in deterministic order.
func (l *Log) Signatures() []Signature {
	out := make([]Signature, 0, len(l.bySig))
	for sig := range l.bySig {
		out = append(out, sig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reports returns all reports in arrival order.
func (l *Log) Reports() []Report { return l.reports }

// FirstSeen returns the earliest report for sig, and whether sig was seen.
func (l *Log) FirstSeen(sig Signature) (Report, bool) {
	idxs, ok := l.bySig[sig]
	if !ok {
		return Report{}, false
	}
	return l.reports[idxs[0]], true
}

// Merge folds other's reports into l. Both logs must be for the same app.
func (l *Log) Merge(other *Log) {
	for _, r := range other.reports {
		l.bySig[r.Signature] = append(l.bySig[r.Signature], len(l.reports))
		l.reports = append(l.reports, r)
	}
}

// UniqueUnion returns the number of distinct signatures across the logs.
func UniqueUnion(logs []*Log) int {
	seen := make(map[Signature]bool)
	for _, l := range logs {
		for sig := range l.bySig {
			seen[sig] = true
		}
	}
	return len(seen)
}
