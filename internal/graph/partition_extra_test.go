package graph

import (
	"testing"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

// ringOfRegions builds r regions of k vertices each; each region is a dense
// random digraph and consecutive regions share `cross` observed transitions.
func ringOfRegions(r, k, internal, cross int, seed int64) (*Graph, [][]int) {
	rng := sim.NewRNG(seed)
	b := NewBuilder()
	for reg := 0; reg < r; reg++ {
		base := reg * k
		for n := 0; n < internal*k; n++ {
			i := base + rng.Intn(k)
			j := base + rng.Intn(k)
			if i != j {
				b.Add(sig(i), sig(j))
			}
		}
		next := ((reg + 1) % r) * k
		for n := 0; n < cross; n++ {
			b.Add(sig(base), sig(next))
		}
	}
	g := b.Graph()
	regions := make([][]int, r)
	for reg := 0; reg < r; reg++ {
		for i := 0; i < k; i++ {
			if v, ok := g.VertexOf(sig(reg*k + i)); ok {
				regions[reg] = append(regions[reg], v)
			}
		}
	}
	return g, regions
}

func TestOfflinePartitionRecoversRing(t *testing.T) {
	g, regions := ringOfRegions(6, 12, 30, 1, 3)
	p := OfflinePartition(g, DefaultPartitionOptions())
	if p.GroupCount() != 6 {
		t.Fatalf("groups = %d, want 6", p.GroupCount())
	}
	for ri, reg := range regions {
		want := p.Assign[reg[0]]
		for _, v := range reg {
			if p.Assign[v] != want {
				t.Fatalf("region %d split across groups", ri)
			}
		}
	}
}

func TestOfflinePartitionMinGroupFold(t *testing.T) {
	// A singleton vertex hanging off a clique must be folded into it.
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				for n := 0; n < 10; n++ {
					b.Add(sig(i), sig(j))
				}
			}
		}
	}
	b.Add(sig(0), sig(99))
	b.Add(sig(99), sig(0))
	g := b.Graph()
	p := OfflinePartition(g, PartitionOptions{MaxCoupling: 0.3, MinGroupSize: 2})
	v99, _ := g.VertexOf(sig(99))
	v0, _ := g.VertexOf(sig(0))
	if p.Assign[v99] != p.Assign[v0] {
		t.Fatalf("singleton not folded: %v", p.Groups)
	}
}

func TestOfflinePartitionSingleVertex(t *testing.T) {
	b := NewBuilder()
	b.Add(sig(1), sig(1))
	p := OfflinePartition(b.Graph(), DefaultPartitionOptions())
	if p.GroupCount() != 1 {
		t.Fatalf("groups = %d", p.GroupCount())
	}
}

func TestGraphVertexOfUnknown(t *testing.T) {
	b := NewBuilder()
	b.Add(sig(1), sig(2))
	g := b.Graph()
	if _, ok := g.VertexOf(ui.Signature(0xdead)); ok {
		t.Fatal("unknown signature resolved")
	}
}

func TestConductanceAsymmetry(t *testing.T) {
	// One-way coupling: G1 flows into G2 but not back — the paper's second
	// loosely-coupled scenario (φ(G1,G2) ≫ 0, φ(G2,G1) ≈ 0).
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				b.Add(sig(i), sig(j))
				b.Add(sig(10+i), sig(10+j))
			}
		}
	}
	for n := 0; n < 12; n++ {
		b.Add(sig(0), sig(10)) // heavy one-way edge
	}
	g := b.Graph()
	var g1, g2 []int
	for i := 0; i < 4; i++ {
		v1, _ := g.VertexOf(sig(i))
		v2, _ := g.VertexOf(sig(10 + i))
		g1 = append(g1, v1)
		g2 = append(g2, v2)
	}
	forward := g.ConductanceSets(g1, g2)
	backward := g.ConductanceSets(g2, g1)
	if !(forward > 10*backward) {
		t.Fatalf("expected strong asymmetry: forward=%v backward=%v", forward, backward)
	}
	if backward != 0 {
		t.Fatalf("no reverse edges exist, backward=%v", backward)
	}
}
