package graph

import (
	"math"
	"testing"

	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

func sig(i int) ui.Signature { return ui.Signature(i + 1) }

func TestBuilderProbabilities(t *testing.T) {
	b := NewBuilder()
	// From vertex 0: three transitions to 1, one to 2.
	for i := 0; i < 3; i++ {
		b.Add(sig(0), sig(1))
	}
	b.Add(sig(0), sig(2))
	g := b.Graph()
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	v0, _ := g.VertexOf(sig(0))
	v1, _ := g.VertexOf(sig(1))
	v2, _ := g.VertexOf(sig(2))
	if p := g.P(v0, v1); math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("P(0,1) = %v, want 0.75", p)
	}
	if p := g.P(v0, v2); math.Abs(p-0.25) > 1e-9 {
		t.Fatalf("P(0,2) = %v, want 0.25", p)
	}
	if p := g.P(v1, v0); p != 0 {
		t.Fatalf("P(1,0) = %v, want 0", p)
	}
}

func TestAddTraceSkipsEnforcedAndLaunch(t *testing.T) {
	var l trace.Log
	l.Append(trace.Event{Action: trace.Action{Kind: trace.ActionLaunch}, To: sig(0)})
	l.Append(trace.Event{Action: trace.Action{Kind: trace.ActionTap}, From: sig(0), To: sig(1)})
	l.Append(trace.Event{Action: trace.Action{Kind: trace.ActionBack}, From: sig(1), To: sig(0), Enforced: true})
	b := NewBuilder()
	b.AddTrace(&l)
	g := b.Graph()
	if g.N() != 2 {
		t.Fatalf("N = %d, want 2", g.N())
	}
	v0, _ := g.VertexOf(sig(0))
	v1, _ := g.VertexOf(sig(1))
	if g.P(v1, v0) != 0 {
		t.Fatal("enforced transitions must not enter the graph")
	}
	if g.P(v0, v1) != 1 {
		t.Fatal("tool transition missing")
	}
}

// twoCliques builds two k-cliques joined by a single directed edge pair with
// the given cross count per direction, each internal edge observed `internal`
// times.
func twoCliques(k, internal, cross int) (*Graph, []int, []int) {
	b := NewBuilder()
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				for n := 0; n < internal; n++ {
					b.Add(sig(base+i), sig(base+j))
				}
			}
		}
	}
	for n := 0; n < cross; n++ {
		b.Add(sig(0), sig(k))
		b.Add(sig(k), sig(0))
	}
	g := b.Graph()
	var g1, g2 []int
	for i := 0; i < k; i++ {
		v, _ := g.VertexOf(sig(i))
		g1 = append(g1, v)
		w, _ := g.VertexOf(sig(k + i))
		g2 = append(g2, w)
	}
	return g, g1, g2
}

func TestConductanceLooseCoupling(t *testing.T) {
	g, g1, g2 := twoCliques(6, 10, 1)
	cross := g.ConductanceSets(g1, g2)
	if cross > 0.02 {
		t.Fatalf("cross conductance = %v, want ≈0 for loosely coupled cliques", cross)
	}
	// Internal split of one clique must have far higher conductance.
	internal := g.ConductanceSets(g1[:3], g1[3:])
	if internal < 10*cross {
		t.Fatalf("internal %v should dwarf cross %v", internal, cross)
	}
}

func TestVolumeDefinition(t *testing.T) {
	// Two vertices: a -> b with probability 1 (only edge).
	b := NewBuilder()
	b.Add(sig(0), sig(1))
	g := b.Graph()
	va, _ := g.VertexOf(sig(0))
	in := make([]bool, g.N())
	in[va] = true
	// vol({a}) = Σ_{i∈Gx,j∉Gx} (p(j,i) − p(i,j)) + 2·0 = −1.
	if v := g.Volume(in); math.Abs(v-(-1)) > 1e-9 {
		t.Fatalf("Volume = %v, want -1", v)
	}
}

func TestConductanceDisjointEmpty(t *testing.T) {
	g, g1, g2 := twoCliques(4, 5, 1)
	// Empty against non-empty: zero cut and zero volume -> 0.
	if c := g.Conductance(make([]bool, g.N()), g.members(g2)); c != 0 {
		t.Fatalf("empty-set conductance = %v", c)
	}
	_ = g1
}

func TestOfflinePartitionTwoCliques(t *testing.T) {
	g, g1, g2 := twoCliques(6, 10, 1)
	p := OfflinePartition(g, DefaultPartitionOptions())
	if p.GroupCount() != 2 {
		t.Fatalf("groups = %d, want 2", p.GroupCount())
	}
	// All of g1 together, all of g2 together.
	first := p.Assign[g1[0]]
	for _, v := range g1 {
		if p.Assign[v] != first {
			t.Fatalf("clique 1 split: %v", p.Assign)
		}
	}
	second := p.Assign[g2[0]]
	if second == first {
		t.Fatal("cliques merged despite loose coupling")
	}
	for _, v := range g2 {
		if p.Assign[v] != second {
			t.Fatalf("clique 2 split: %v", p.Assign)
		}
	}
}

func TestOfflinePartitionTightCouplingMerges(t *testing.T) {
	// Heavy cross traffic: should collapse into one group.
	g, _, _ := twoCliques(4, 2, 40)
	p := OfflinePartition(g, DefaultPartitionOptions())
	if p.GroupCount() != 1 {
		t.Fatalf("groups = %d, want 1 for tightly coupled cliques", p.GroupCount())
	}
}

func TestOfflinePartitionEmpty(t *testing.T) {
	p := OfflinePartition(NewBuilder().Graph(), DefaultPartitionOptions())
	if p.GroupCount() != 0 {
		t.Fatalf("groups = %d, want 0", p.GroupCount())
	}
}

func TestOfflinePartitionDeterminism(t *testing.T) {
	mk := func() Partition {
		g, _, _ := twoCliques(5, 3, 1)
		return OfflinePartition(g, DefaultPartitionOptions())
	}
	a, b := mk(), mk()
	if len(a.Assign) != len(b.Assign) {
		t.Fatal("nondeterministic partition size")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("nondeterministic partition")
		}
	}
}

func TestMaxPairwiseConductance(t *testing.T) {
	g, g1, g2 := twoCliques(6, 10, 1)
	p := Partition{Groups: [][]int{g1, g2}, Assign: make([]int, g.N())}
	got := MaxPairwiseConductance(g, p)
	want := g.ConductanceSets(g1, g2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxPairwiseConductance = %v, want %v", got, want)
	}
}

// TestTheorem1FrequencySeparation validates the paper's Theorem 1 on a
// sampled random walk: after O(n² log n) samples on two n-cliques joined by
// a low-probability edge, every internal edge's observed frequency exceeds
// the cross edge's.
func TestTheorem1FrequencySeparation(t *testing.T) {
	const n = 8
	const alpha = 20.0
	rng := sim.NewRNG(11)
	steps := int(float64(n*n) * math.Log(float64(n)) * 40)

	counts := make(map[[2]int]int)
	fromCounts := make(map[int]int)
	cur := 0
	vertexClique := func(v int) int { return v / n }
	for i := 0; i < steps; i++ {
		// Uniform over the n-1 internal neighbours, except the bridge
		// vertices (0 and n) also carry the cross edge at probability
		// 1/(alpha·n).
		var next int
		isBridge := cur == 0 || cur == n
		if isBridge && rng.Float64() < 1/(alpha*float64(n)) {
			if cur == 0 {
				next = n
			} else {
				next = 0
			}
		} else {
			c := vertexClique(cur)
			for {
				next = c*n + rng.Intn(n)
				if next != cur {
					break
				}
			}
		}
		counts[[2]int{cur, next}]++
		fromCounts[cur]++
		cur = next
	}

	crossFreq := float64(counts[[2]int{0, n}]) / math.Max(float64(fromCounts[0]), 1)
	minInternal := math.Inf(1)
	for e, c := range counts {
		if vertexClique(e[0]) != vertexClique(e[1]) {
			continue
		}
		f := float64(c) / float64(fromCounts[e[0]])
		if f < minInternal {
			minInternal = f
		}
	}
	if !(minInternal > crossFreq) {
		t.Fatalf("Theorem 1 separation failed: min internal freq %v <= cross freq %v", minInternal, crossFreq)
	}

	// And the offline partitioner recovers the two cliques from the
	// sampled walk.
	b := NewBuilder()
	for e, c := range counts {
		for i := 0; i < c; i++ {
			b.Add(sig(e[0]), sig(e[1]))
		}
	}
	g := b.Graph()
	p := OfflinePartition(g, DefaultPartitionOptions())
	if p.GroupCount() != 2 {
		t.Fatalf("partition found %d groups, want the 2 cliques", p.GroupCount())
	}
}
