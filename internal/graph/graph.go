// Package graph implements the paper's graph-theoretic machinery: the
// stochastic directed UI transition graph G = (V, E, P) built from observed
// traces, subgraph volume and conductance as defined in Section 4.1 (Eq. 2),
// and the conservative offline min-conductance partitioner used by the
// preliminary study (Section 3.1) to measure UI-subspace overlap.
package graph

import (
	"fmt"
	"sort"

	"taopt/internal/trace"
	"taopt/internal/ui"
)

// Edge is one observed transition with its empirical probability.
type Edge struct {
	To    int
	Count int
	// P is the empirical probability of taking this edge when leaving the
	// source vertex: Count / out-degree-count of the source.
	P float64
}

// Graph is an immutable stochastic directed graph over abstract UI screens.
type Graph struct {
	// Sigs maps vertex index to abstract screen signature.
	Sigs []ui.Signature
	// Out is the adjacency list; Out[i] is sorted by destination.
	Out [][]Edge
	// outTotal[i] is the number of observed departures from i.
	outTotal []int
	index    map[ui.Signature]int
}

// Builder accumulates transitions into a Graph.
type Builder struct {
	index  map[ui.Signature]int
	sigs   []ui.Signature
	counts []map[int]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[ui.Signature]int)}
}

func (b *Builder) vertex(sig ui.Signature) int {
	if i, ok := b.index[sig]; ok {
		return i
	}
	i := len(b.sigs)
	b.index[sig] = i
	b.sigs = append(b.sigs, sig)
	b.counts = append(b.counts, make(map[int]int))
	return i
}

// Add records one observed transition from -> to.
func (b *Builder) Add(from, to ui.Signature) {
	f := b.vertex(from)
	t := b.vertex(to)
	b.counts[f][t]++
}

// AddTrace folds a transition log into the builder. Launch events introduce
// their destination vertex but no edge; enforced (TaOPT-injected) transitions
// are skipped so the graph reflects the tool's own behaviour.
func (b *Builder) AddTrace(l *trace.Log) {
	for _, ev := range l.Events() {
		if ev.Enforced {
			continue
		}
		if ev.Action.Kind == trace.ActionLaunch {
			b.vertex(ev.To)
			continue
		}
		b.Add(ev.From, ev.To)
	}
}

// Graph freezes the builder into an immutable graph with empirical edge
// probabilities.
func (b *Builder) Graph() *Graph {
	g := &Graph{
		Sigs:     append([]ui.Signature(nil), b.sigs...),
		Out:      make([][]Edge, len(b.sigs)),
		outTotal: make([]int, len(b.sigs)),
		index:    make(map[ui.Signature]int, len(b.sigs)),
	}
	for sig, i := range b.index {
		g.index[sig] = i
	}
	for i, row := range b.counts {
		total := 0
		for _, c := range row {
			total += c
		}
		g.outTotal[i] = total
		edges := make([]Edge, 0, len(row))
		for to, c := range row {
			edges = append(edges, Edge{To: to, Count: c, P: float64(c) / float64(total)})
		}
		sort.Slice(edges, func(a, b int) bool { return edges[a].To < edges[b].To })
		g.Out[i] = edges
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Sigs) }

// VertexOf returns the index for sig and whether it exists.
func (g *Graph) VertexOf(sig ui.Signature) (int, bool) {
	i, ok := g.index[sig]
	return i, ok
}

// P returns the empirical probability of the edge i -> j (0 if absent).
func (g *Graph) P(i, j int) float64 {
	row := g.Out[i]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case row[mid].To < j:
			lo = mid + 1
		case row[mid].To > j:
			hi = mid
		default:
			return row[mid].P
		}
	}
	return 0
}

// Volume computes vol(Gx) per Section 4.1:
//
//	vol(Gx) = Σ_{i∈Gx, j∉Gx} (p(j,i) − p(i,j)) + 2·Σ_{i∈Gx, j∈Gx} p(i,j)
//
// in is the membership indicator over vertices.
func (g *Graph) Volume(in []bool) float64 {
	if len(in) != g.N() {
		panic(fmt.Sprintf("graph: membership length %d != %d vertices", len(in), g.N()))
	}
	var boundary, internal float64
	for i := range g.Out {
		for _, e := range g.Out[i] {
			switch {
			case in[i] && in[e.To]:
				internal += e.P
			case in[i] && !in[e.To]:
				boundary -= e.P // p(i,j), i inside, j outside
			case !in[i] && in[e.To]:
				boundary += e.P // p(j,i), j outside, i inside
			}
		}
	}
	return boundary + 2*internal
}

// Conductance computes φ(G1, G2) per Eq. 2: the probability mass of edges
// from G1 to G2 normalised by the smaller volume. G1 and G2 are membership
// indicators and must be disjoint.
func (g *Graph) Conductance(g1, g2 []bool) float64 {
	if len(g1) != g.N() || len(g2) != g.N() {
		panic("graph: membership length mismatch")
	}
	var cut float64
	for i := range g.Out {
		if !g1[i] {
			continue
		}
		for _, e := range g.Out[i] {
			if g2[e.To] {
				cut += e.P
			}
		}
	}
	v1, v2 := abs(g.Volume(g1)), abs(g.Volume(g2))
	den := v1
	if v2 < den {
		den = v2
	}
	if den == 0 {
		if cut == 0 {
			return 0
		}
		return 1
	}
	return cut / den
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// members converts a vertex list to a membership indicator.
func (g *Graph) members(set []int) []bool {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	return in
}

// ConductanceSets is Conductance over vertex-index sets.
func (g *Graph) ConductanceSets(a, b []int) float64 {
	return g.Conductance(g.members(a), g.members(b))
}
