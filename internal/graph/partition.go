package graph

import "sort"

// Partition is a disjoint grouping of a graph's vertices into subspaces.
type Partition struct {
	// Groups holds vertex indexes per subspace, each sorted ascending;
	// groups are ordered by their smallest vertex.
	Groups [][]int
	// Assign maps vertex -> group index.
	Assign []int
}

// GroupCount returns the number of subspaces.
func (p Partition) GroupCount() int { return len(p.Groups) }

// PartitionOptions tunes the offline partitioner.
type PartitionOptions struct {
	// MaxCoupling is the flow threshold below which two regions count as
	// loosely coupled and are NOT merged. Higher values merge more.
	MaxCoupling float64
	// MinGroupSize: groups smaller than this are folded into their most
	// coupled neighbour at the end (singleton UI states are rarely a
	// functionality of their own).
	MinGroupSize int
}

// DefaultPartitionOptions matches the conservative setting described in
// Section 3.1: "requiring both low inter-region transition probabilities and
// high internal cohesion before partitioning".
func DefaultPartitionOptions() PartitionOptions {
	return PartitionOptions{MaxCoupling: 0.08, MinGroupSize: 2}
}

// OfflinePartition computes a conservative min-conductance partition of g by
// agglomerative merging: every vertex starts alone, and in each round the two
// regions with the strongest normalised mutual transition probability merge;
// merging stops once every remaining inter-region coupling is below
// MaxCoupling. The exact MC-GPP optimum is NP-hard (Section 4.1); this greedy
// heuristic is the study instrument, not the contribution.
func OfflinePartition(g *Graph, opts PartitionOptions) Partition {
	n := g.N()
	if n == 0 {
		return Partition{Assign: []int{}}
	}

	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	// regionTables recomputes per-root aggregate flow and weight from the
	// immutable edge list. O(E) per call; the graphs under study are small
	// (hundreds of screens), so recomputation beats incremental bookkeeping
	// for clarity and correctness.
	type pair struct{ a, b int }
	regionTables := func() (flow map[pair]float64, weight map[int]float64) {
		flow = make(map[pair]float64)
		weight = make(map[int]float64)
		for i := range g.Out {
			ri := find(i)
			for _, e := range g.Out[i] {
				rj := find(e.To)
				weight[ri] += e.P
				if ri != rj {
					k := pair{ri, rj}
					if rj < ri {
						k = pair{rj, ri}
					}
					flow[k] += e.P
				}
			}
		}
		return flow, weight
	}

	coupling := func(f float64, wa, wb float64) float64 {
		den := wa
		if wb < den {
			den = wb
		}
		if den <= 0 {
			return 0
		}
		return f / den
	}

	for {
		flow, weight := regionTables()
		bestA, bestB, bestC := -1, -1, 0.0
		keys := make([]pair, 0, len(flow))
		for k := range flow {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].a != keys[j].a {
				return keys[i].a < keys[j].a
			}
			return keys[i].b < keys[j].b
		})
		for _, k := range keys {
			if c := coupling(flow[k], weight[k.a], weight[k.b]); c > bestC {
				bestA, bestB, bestC = k.a, k.b, c
			}
		}
		if bestA < 0 || bestC < opts.MaxCoupling {
			break
		}
		union(bestA, bestB)
	}

	// Fold tiny groups into their strongest neighbour.
	if opts.MinGroupSize > 1 {
		for {
			flow, _ := regionTables()
			merged := false
			for i := 0; i < n && !merged; i++ {
				r := find(i)
				if r != i || size[r] >= opts.MinGroupSize {
					continue
				}
				bestB, bestF := -1, 0.0
				keys := make([]pair, 0, len(flow))
				for k := range flow {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(x, y int) bool {
					if keys[x].a != keys[y].a {
						return keys[x].a < keys[y].a
					}
					return keys[x].b < keys[y].b
				})
				for _, k := range keys {
					other := -1
					if k.a == r {
						other = k.b
					} else if k.b == r {
						other = k.a
					}
					if other >= 0 && flow[k] > bestF {
						bestB, bestF = other, flow[k]
					}
				}
				if bestB >= 0 {
					union(r, bestB)
					merged = true
				}
			}
			if !merged {
				break
			}
		}
	}

	// Materialise groups.
	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return byRoot[roots[i]][0] < byRoot[roots[j]][0] })
	p := Partition{Assign: make([]int, n)}
	for gi, r := range roots {
		vs := byRoot[r]
		sort.Ints(vs)
		p.Groups = append(p.Groups, vs)
		for _, v := range vs {
			p.Assign[v] = gi
		}
	}
	return p
}

// MaxPairwiseConductance returns the maximum φ(Gi, Gj) over all ordered pairs
// of the partition's groups — the MC-GPP objective of Eq. 3.
func MaxPairwiseConductance(g *Graph, p Partition) float64 {
	best := 0.0
	for i := range p.Groups {
		for j := range p.Groups {
			if i == j {
				continue
			}
			if c := g.ConductanceSets(p.Groups[i], p.Groups[j]); c > best {
				best = c
			}
		}
	}
	return best
}
