package ui

import (
	"hash/fnv"
	"sort"
)

// Similarity computes the tree similarity of two abstracted UI hierarchies in
// [0, 1]. It follows the spirit of the comparator used by CountIn in
// Algorithm 1 (tree similarity of abstract hierarchies, after [66]): each
// hierarchy is decomposed into the multiset of its abstract root-to-node
// paths, and the similarity is the Dice coefficient of the two multisets.
//
// Dice over path multisets is cheap (linear in tree size), symmetric, equals
// 1 exactly for structurally identical trees regardless of text, and degrades
// smoothly when list rows are added/removed — the dominant source of benign
// structural variation in mobile UIs.
func Similarity(a, b *Node) float64 {
	if a == nil || b == nil {
		if a == b {
			return 1
		}
		return 0
	}
	pa := pathMultiset(a)
	pb := pathMultiset(b)
	if len(pa) == 0 && len(pb) == 0 {
		return 1
	}
	var inter, total int
	for k, ca := range pa {
		total += ca
		if cb, ok := pb[k]; ok {
			if cb < ca {
				inter += cb
			} else {
				inter += ca
			}
		}
	}
	for _, cb := range pb {
		total += cb
	}
	if total == 0 {
		return 1
	}
	return float64(2*inter) / float64(total)
}

// pathMultiset maps the hash of each abstract root-to-node path to its
// number of occurrences.
func pathMultiset(root *Node) map[uint64]int {
	out := make(map[uint64]int)
	var rec func(n *Node, prefix uint64)
	rec = func(n *Node, prefix uint64) {
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(prefix >> (8 * i))
		}
		h.Write(buf[:])
		h.Write([]byte(n.Class))
		h.Write([]byte{'#'})
		h.Write([]byte(n.ResourceID))
		key := h.Sum64()
		out[key]++
		for _, ch := range n.Children {
			rec(ch, key)
		}
	}
	rec(root, 0)
	return out
}

// ScreenSimilarity compares two screens, treating a differing activity name
// as an immediate mismatch — the abstraction keys on activity first.
func ScreenSimilarity(a, b *Screen) float64 {
	if a == nil || b == nil {
		if a == b {
			return 1
		}
		return 0
	}
	if a.Activity != b.Activity {
		return 0
	}
	return Similarity(a.Root, b.Root)
}

// TopKSimilar returns the indexes of the k screens in candidates most similar
// to target, most similar first. Ties break toward lower index for
// determinism.
func TopKSimilar(target *Screen, candidates []*Screen, k int) []int {
	type scored struct {
		idx int
		sim float64
	}
	scoredAll := make([]scored, len(candidates))
	for i, c := range candidates {
		scoredAll[i] = scored{i, ScreenSimilarity(target, c)}
	}
	sort.SliceStable(scoredAll, func(i, j int) bool { return scoredAll[i].sim > scoredAll[j].sim })
	if k > len(scoredAll) {
		k = len(scoredAll)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = scoredAll[i].idx
	}
	return out
}
