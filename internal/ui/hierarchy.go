// Package ui models Android-style UI hierarchies and the screen abstraction
// used throughout the paper.
//
// A Screen is what a testing tool observes: an activity name plus a tree of
// widgets (Node). TaOPT never keys on concrete screens — dynamic text such as
// product names or timestamps would explode the state space — so it abstracts
// each hierarchy by removing the text associated with UI elements (Section
// 5.2, following [5, 60]) and compares abstract hierarchies with a tree
// similarity (following [66]).
package ui

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Node is one element of a UI hierarchy.
type Node struct {
	// Class is the widget class, e.g. "android.widget.Button".
	Class string
	// ResourceID is the developer-assigned identifier, possibly empty.
	ResourceID string
	// Text is the displayed text. Text is *not* part of the abstraction.
	Text string
	// Enabled reports whether the element accepts interaction. The Toller
	// driver clears it on elements matching blocked entrypoints.
	Enabled bool
	// Clickable marks elements that produce UI actions when tapped.
	Clickable bool
	// Children in drawing order.
	Children []*Node
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return &c
}

// Walk visits n and every descendant in depth-first pre-order. If f returns
// false the walk stops early.
func (n *Node) Walk(f func(*Node) bool) bool {
	if n == nil {
		return true
	}
	if !f(n) {
		return false
	}
	for _, ch := range n.Children {
		if !ch.Walk(f) {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Screen is an observed UI state: an activity plus its widget hierarchy.
type Screen struct {
	Activity string
	Root     *Node
}

// Clone returns a deep copy of the screen.
func (s *Screen) Clone() *Screen {
	if s == nil {
		return nil
	}
	return &Screen{Activity: s.Activity, Root: s.Root.Clone()}
}

// Signature identifies an abstract UI screen: the hierarchy with all element
// text removed, hashed together with the activity name. Two concrete screens
// that differ only in displayed text share a Signature.
type Signature uint64

// String renders the signature as a short stable hex token for logs/tables.
func (sig Signature) String() string { return fmt.Sprintf("ui:%012x", uint64(sig)&0xffffffffffff) }

// Abstract computes the screen's abstract signature. The abstraction removes
// text associated with UI elements and keeps structure, classes, resource IDs
// and enabled/clickable flags out of the hash as well — disabled elements must
// not change a screen's identity, otherwise TaOPT's own blocking would
// manufacture "new" screens.
func (s *Screen) Abstract() Signature {
	h := fnv.New64a()
	h.Write([]byte(s.Activity))
	h.Write([]byte{0})
	writeAbstract(h, s.Root)
	return Signature(h.Sum64())
}

func writeAbstract(h interface{ Write([]byte) (int, error) }, n *Node) {
	if n == nil {
		return
	}
	h.Write([]byte{'('})
	h.Write([]byte(n.Class))
	h.Write([]byte{'#'})
	h.Write([]byte(n.ResourceID))
	for _, ch := range n.Children {
		writeAbstract(h, ch)
	}
	h.Write([]byte{')'})
}

// WidgetPath identifies an element within an abstract hierarchy: the class
// and resource ID of the element plus its child-index path from the root.
// It is stable across text changes, which is what the coordinator needs to
// re-identify a blocked entrypoint element on a fresh render of the screen.
type WidgetPath string

// PathOf returns the WidgetPath for the node reached from root by the given
// child-index path.
func PathOf(root *Node, indexes []int) (WidgetPath, error) {
	n := root
	for _, i := range indexes {
		if n == nil || i < 0 || i >= len(n.Children) {
			return "", fmt.Errorf("ui: invalid widget path %v", indexes)
		}
		n = n.Children[i]
	}
	var b strings.Builder
	b.WriteString(n.Class)
	b.WriteByte('#')
	b.WriteString(n.ResourceID)
	b.WriteByte('@')
	for i, idx := range indexes {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", idx)
	}
	return WidgetPath(b.String()), nil
}

// FindPath locates the node with the given WidgetPath in root, returning nil
// if the path does not resolve (e.g. the screen structure changed).
func FindPath(root *Node, p WidgetPath) *Node {
	s := string(p)
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return nil
	}
	n := root
	rest := s[at+1:]
	if rest != "" {
		for _, part := range strings.Split(rest, ".") {
			idx := 0
			for _, c := range part {
				if c < '0' || c > '9' {
					return nil
				}
				idx = idx*10 + int(c-'0')
			}
			if n == nil || idx >= len(n.Children) {
				return nil
			}
			n = n.Children[idx]
		}
	}
	// Validate class#resource prefix to guard against structural drift.
	want := s[:at]
	if want != n.Class+"#"+n.ResourceID {
		return nil
	}
	return n
}

// Clickables returns, in pre-order, the index paths of all clickable and
// enabled elements of the hierarchy. These are the actions a tool can take.
func Clickables(root *Node) [][]int {
	var out [][]int
	var rec func(n *Node, path []int)
	rec = func(n *Node, path []int) {
		if n == nil {
			return
		}
		if n.Clickable && n.Enabled {
			out = append(out, append([]int(nil), path...))
		}
		for i, ch := range n.Children {
			rec(ch, append(path, i))
		}
	}
	rec(root, nil)
	return out
}

// SortedClasses returns the multiset of element classes in the subtree,
// sorted; useful for debugging and for coarse structural comparisons.
func SortedClasses(root *Node) []string {
	var classes []string
	root.Walk(func(n *Node) bool { classes = append(classes, n.Class); return true })
	sort.Strings(classes)
	return classes
}
