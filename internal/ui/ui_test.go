package ui

import (
	"fmt"
	"testing"
	"testing/quick"
)

// button builds a clickable leaf.
func button(res, text string) *Node {
	return &Node{Class: "android.widget.Button", ResourceID: res, Text: text, Enabled: true, Clickable: true}
}

func screen(activity string, widgets ...*Node) *Screen {
	container := &Node{Class: "android.widget.LinearLayout", ResourceID: "container", Enabled: true, Children: widgets}
	root := &Node{Class: "android.widget.FrameLayout", ResourceID: "content", Enabled: true,
		Children: []*Node{{Class: "Toolbar", ResourceID: "toolbar", Enabled: true}, container}}
	return &Screen{Activity: activity, Root: root}
}

func TestAbstractIgnoresText(t *testing.T) {
	a := screen("MainActivity", button("b1", "Hello"), button("b2", "World"))
	b := screen("MainActivity", button("b1", "Bonjour"), button("b2", "Monde 42"))
	if a.Abstract() != b.Abstract() {
		t.Fatal("signatures must ignore element text")
	}
}

func TestAbstractIgnoresEnabled(t *testing.T) {
	a := screen("MainActivity", button("b1", "x"), button("b2", "y"))
	b := screen("MainActivity", button("b1", "x"), button("b2", "y"))
	b.Root.Children[1].Children[0].Enabled = false
	if a.Abstract() != b.Abstract() {
		t.Fatal("disabling an element (TaOPT's own blocking) must not change identity")
	}
}

func TestAbstractSensitivity(t *testing.T) {
	base := screen("MainActivity", button("b1", "x"))
	cases := map[string]*Screen{
		"activity":   screen("OtherActivity", button("b1", "x")),
		"resourceID": screen("MainActivity", button("b9", "x")),
		"structure":  screen("MainActivity", button("b1", "x"), button("b2", "y")),
	}
	for name, other := range cases {
		if base.Abstract() == other.Abstract() {
			t.Errorf("signature must change with %s", name)
		}
	}
	// Class sensitivity.
	c := screen("MainActivity", button("b1", "x"))
	c.Root.Children[1].Children[0].Class = "android.widget.ImageView"
	if base.Abstract() == c.Abstract() {
		t.Error("signature must change with element class")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := screen("A", button("b1", "x"))
	c := a.Clone()
	c.Root.Children[1].Children[0].Text = "changed"
	c.Root.Children[1].Children[0].Enabled = false
	if a.Root.Children[1].Children[0].Text != "x" || !a.Root.Children[1].Children[0].Enabled {
		t.Fatal("Clone shares nodes with the original")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	s := screen("A", button("b1", "x"), button("b2", "y"), button("b3", "z"))
	count := 0
	s.Root.Walk(func(*Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk visited %d nodes, want early stop at 3", count)
	}
	if got := s.Root.Size(); got != 6 {
		t.Fatalf("Size = %d, want 6", got)
	}
}

func TestPathRoundTrip(t *testing.T) {
	s := screen("A", button("b1", "x"), button("b2", "y"))
	path, err := PathOf(s.Root, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	n := FindPath(s.Root, path)
	if n == nil || n.ResourceID != "b2" {
		t.Fatalf("FindPath(%q) = %v, want b2", path, n)
	}
	// Root path.
	rp, err := PathOf(s.Root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if FindPath(s.Root, rp) != s.Root {
		t.Fatal("root path must resolve to root")
	}
}

func TestPathOfInvalid(t *testing.T) {
	s := screen("A", button("b1", "x"))
	if _, err := PathOf(s.Root, []int{9}); err == nil {
		t.Fatal("expected error for out-of-range path")
	}
}

func TestFindPathStructuralDrift(t *testing.T) {
	a := screen("A", button("b1", "x"), button("b2", "y"))
	path, _ := PathOf(a.Root, []int{1, 1})
	// A different screen where index [1,1] is a different element.
	b := screen("A", button("b9", "x"), button("b8", "y"))
	if FindPath(b.Root, path) != nil {
		t.Fatal("FindPath must reject paths whose class#resource no longer matches")
	}
	if FindPath(b.Root, "garbage") != nil {
		t.Fatal("FindPath must reject malformed paths")
	}
	if FindPath(b.Root, WidgetPath("Button#b9@1.9")) != nil {
		t.Fatal("FindPath must reject out-of-range indexes")
	}
}

func TestClickablesOrderAndFiltering(t *testing.T) {
	s := screen("A", button("b1", "x"), button("b2", "y"), button("b3", "z"))
	s.Root.Children[1].Children[1].Enabled = false // disable b2
	paths := Clickables(s.Root)
	if len(paths) != 2 {
		t.Fatalf("clickables = %d, want 2 (b2 disabled)", len(paths))
	}
	first, _ := PathOf(s.Root, paths[0])
	second, _ := PathOf(s.Root, paths[1])
	if FindPath(s.Root, first).ResourceID != "b1" || FindPath(s.Root, second).ResourceID != "b3" {
		t.Fatalf("clickables out of pre-order: %v %v", first, second)
	}
}

func TestSimilarityIdentical(t *testing.T) {
	a := screen("A", button("b1", "x"), button("b2", "y"))
	b := screen("A", button("b1", "other"), button("b2", "text"))
	if got := Similarity(a.Root, b.Root); got != 1 {
		t.Fatalf("Similarity of text-variant screens = %v, want 1", got)
	}
}

func TestSimilarityDisjoint(t *testing.T) {
	a := screen("A", button("b1", "x"))
	b := &Screen{Activity: "A", Root: &Node{Class: "X", ResourceID: "y"}}
	if got := Similarity(a.Root, b.Root); got > 0.1 {
		t.Fatalf("Similarity of unrelated trees = %v, want ≈0", got)
	}
}

func TestSimilarityDegradesSmoothly(t *testing.T) {
	mk := func(n int) *Screen {
		var ws []*Node
		for i := 0; i < n; i++ {
			ws = append(ws, button(fmt.Sprintf("b%d", i), "t"))
		}
		return screen("A", ws...)
	}
	s10, s11, s15 := mk(10), mk(11), mk(15)
	near := Similarity(s10.Root, s11.Root)
	far := Similarity(s10.Root, s15.Root)
	if !(near > far) {
		t.Fatalf("adding more rows must lower similarity: near=%v far=%v", near, far)
	}
	if near < 0.85 {
		t.Fatalf("one extra row should stay above the match threshold: %v", near)
	}
}

func TestScreenSimilarityActivityGate(t *testing.T) {
	a := screen("A", button("b1", "x"))
	b := screen("B", button("b1", "x"))
	if ScreenSimilarity(a, b) != 0 {
		t.Fatal("different activities must not match")
	}
	if ScreenSimilarity(nil, nil) != 1 || ScreenSimilarity(a, nil) != 0 {
		t.Fatal("nil handling")
	}
}

// TestSimilarityProperties checks the metric axioms that CountIn relies on.
func TestSimilarityProperties(t *testing.T) {
	gen := func(seed int64) *Screen {
		n := int(seed%5) + 1
		var ws []*Node
		for i := 0; i < n; i++ {
			ws = append(ws, button(fmt.Sprintf("w%d_%d", seed, i), "t"))
		}
		return screen(fmt.Sprintf("Act%d", seed%3), ws...)
	}
	if err := quick.Check(func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		ab := Similarity(a.Root, b.Root)
		ba := Similarity(b.Root, a.Root)
		if ab != ba {
			return false // symmetry
		}
		if ab < 0 || ab > 1 {
			return false // range
		}
		return Similarity(a.Root, a.Root) == 1 // identity
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSimilar(t *testing.T) {
	target := screen("A", button("b1", "x"), button("b2", "y"))
	candidates := []*Screen{
		screen("B", button("b1", "x")),                    // wrong activity: sim 0
		screen("A", button("b1", "x"), button("b2", "z")), // identical structure
		screen("A", button("b9", "x")),
	}
	got := TopKSimilar(target, candidates, 2)
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("TopKSimilar = %v, want [1 ...]", got)
	}
	if got := TopKSimilar(target, candidates, 10); len(got) != 3 {
		t.Fatalf("k clamp failed: %v", got)
	}
}

func TestSortedClasses(t *testing.T) {
	s := screen("A", button("b1", "x"))
	classes := SortedClasses(s.Root)
	if len(classes) != 4 {
		t.Fatalf("classes = %v", classes)
	}
	for i := 1; i < len(classes); i++ {
		if classes[i-1] > classes[i] {
			t.Fatalf("not sorted: %v", classes)
		}
	}
}

func TestSignatureString(t *testing.T) {
	s := screen("A", button("b1", "x"))
	str := s.Abstract().String()
	if len(str) == 0 || str[:3] != "ui:" {
		t.Fatalf("Signature.String = %q", str)
	}
}
