package obs

import (
	"fmt"
	"sort"

	"taopt/internal/sim"
)

// Registry is a small, dependency-free metrics registry: named counters,
// gauges, histograms and virtual-time series. It is single-threaded like
// everything on the sim clock — one run owns one registry — and its
// Snapshot is sorted by name, so serialised metrics are deterministic.
//
// All methods are safe on a nil *Registry and do nothing, so producers need
// no telemetry branches.
type Registry struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// Inc adds n to the named counter, creating it at zero on first use.
func (r *Registry) Inc(name string, n int64) {
	if r == nil {
		return
	}
	r.counters[name] += n
}

// Counter returns the named counter's value (0 if absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// SetGauge records the named gauge's current value.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.gauges[name] = v
}

// Gauge returns the named gauge's value (0 if absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	return r.gauges[name]
}

// Observe folds v into the named histogram, creating it with bounds on
// first use (bounds are ignored afterwards; pass the same ones). With no
// bounds the histogram only tracks count/sum/min/max.
func (r *Registry) Observe(name string, v float64, bounds ...float64) {
	if r == nil {
		return
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	h.Observe(v)
}

// Append records one (virtual time, value) sample on the named series.
// Samples must be appended in non-decreasing time order — the run loop's
// natural order.
func (r *Registry) Append(name string, at sim.Duration, v float64) {
	if r == nil {
		return
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	s.Points = append(s.Points, SeriesPoint{AtNS: int64(at), Value: v})
}

// Histogram is a fixed-bound histogram with count/sum/min/max tracking.
// Bucket i counts observations ≤ Bounds[i]; observations above the last
// bound land in the overflow bucket (Counts has len(Bounds)+1 entries).
type Histogram struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// NewHistogram returns a histogram with the given (ascending) bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Observe folds one value in.
func (h *Histogram) Observe(v float64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
}

// Mean returns the running mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// SeriesPoint is one sample of a virtual-time series.
type SeriesPoint struct {
	AtNS  int64   `json:"at_ns"`
	Value float64 `json:"v"`
}

// Series is an append-only virtual-time series.
type Series struct {
	Points []SeriesPoint
}

// Metric is the serialised form of one registry entry (export format v3's
// telemetry block and the report renderer both consume it).
type Metric struct {
	Name string `json:"name"`
	Type string `json:"type"` // counter | gauge | histogram | series
	// Counter/gauge value, or histogram sum.
	Value float64 `json:"value,omitempty"`
	// Histogram fields.
	Count  int64     `json:"count,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	// Series samples.
	Points []SeriesPoint `json:"points,omitempty"`
}

// Snapshot returns every metric, sorted by (type, name) — counters, then
// gauges, histograms and series — so serialisations are deterministic.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	var out []Metric
	for _, name := range sortedKeys(r.counters) {
		out = append(out, Metric{Name: name, Type: "counter", Value: float64(r.counters[name])})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, Metric{Name: name, Type: "gauge", Value: r.gauges[name]})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		out = append(out, Metric{
			Name: name, Type: "histogram",
			Value: h.Sum, Count: h.Count, Min: h.Min, Max: h.Max,
			Bounds: h.Bounds, Counts: h.Counts,
		})
	}
	for _, name := range sortedKeys(r.series) {
		out = append(out, Metric{Name: name, Type: "series", Points: r.series[name].Points})
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// InstanceCounter returns a per-instance counter name, e.g.
// InstanceCounter("bus.delivered", 3) → "bus.delivered.inst.3".
func InstanceCounter(prefix string, id int) string {
	return fmt.Sprintf("%s.inst.%d", prefix, id)
}
