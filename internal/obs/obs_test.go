package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"taopt/internal/sim"
)

// TestNilSafety: every emit path must be a no-op on nil receivers — the
// harness threads nil telemetry through uninstrumented runs.
func TestNilSafety(t *testing.T) {
	var l *Log
	l.Emit(Decision{Kind: KindAccept})
	if l.Len() != 0 || l.Decisions() != nil {
		t.Fatal("nil log recorded something")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var r *Registry
	r.Inc("c", 1)
	r.SetGauge("g", 1)
	r.Observe("h", 1)
	r.Append("s", 0, 1)
	if r.Counter("c") != 0 || r.Gauge("g") != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry recorded something")
	}

	var tel *Telemetry
	if tel.DecisionLog() != nil || tel.Registry() != nil {
		t.Fatal("nil telemetry returned non-nil components")
	}
}

// TestLogJSONLDeterministic: the same decisions serialise to the same
// bytes, one compact JSON object per line, in emission order.
func TestLogJSONLDeterministic(t *testing.T) {
	build := func() *Log {
		l := &Log{}
		l.Emit(Decision{AtNS: 1e9, Kind: KindCandidate, Instance: 1, Sub: -1, Members: 4, Score: 0.25})
		l.Emit(Decision{AtNS: 2e9, Kind: KindReject, Instance: 1, Sub: -1, Reason: "warm-up"})
		l.Emit(Decision{AtNS: 3e9, Kind: KindAccept, Instance: 1, Sub: 0, Entry: 42, Members: 4})
		return l
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical logs serialised differently")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var d Decision
	if err := json.Unmarshal([]byte(lines[2]), &d); err != nil {
		t.Fatal(err)
	}
	if d.Kind != KindAccept || d.Entry != 42 || d.Sub != 0 {
		t.Fatalf("round-trip mangled decision: %+v", d)
	}
	if got := build().CountByKind()[KindReject]; got != 1 {
		t.Fatalf("CountByKind[reject] = %d, want 1", got)
	}
	if got := build().CountByReason(KindReject)["warm-up"]; got != 1 {
		t.Fatalf("CountByReason = %d, want 1", got)
	}
}

// TestRegistrySnapshotSorted: snapshots list counters, gauges, histograms
// and series in sorted name order with correct values.
func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Inc("z.count", 2)
	r.Inc("a.count", 3)
	r.SetGauge("g", 1.5)
	r.Observe("h", 2, 1, 5, 10)
	r.Observe("h", 7, 1, 5, 10)
	r.Observe("h", 100, 1, 5, 10)
	r.Append("s", sim.Duration(10e9), 4)
	r.Append("s", sim.Duration(20e9), 5)

	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Type + ":" + m.Name
	}
	want := []string{"counter:a.count", "counter:z.count", "gauge:g", "histogram:h", "series:s"}
	if len(names) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, names[i], want[i])
		}
	}

	h := snap[3]
	if h.Count != 3 || h.Min != 2 || h.Max != 100 {
		t.Fatalf("histogram summary wrong: %+v", h)
	}
	// 2 ≤ 5 → bucket 1; 7 ≤ 10 → bucket 2; 100 overflows → bucket 3.
	wantCounts := []int64{0, 1, 1, 1}
	for i, c := range h.Counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket counts = %v, want %v", h.Counts, wantCounts)
		}
	}
	s := snap[4]
	if len(s.Points) != 2 || s.Points[1].Value != 5 {
		t.Fatalf("series points wrong: %+v", s.Points)
	}
	if got := InstanceCounter("bus.delivered", 3); got != "bus.delivered.inst.3" {
		t.Fatalf("InstanceCounter = %q", got)
	}
}

// TestChromeTraceFormat: the writer must produce a trace-event-format
// document a JSON decoder (standing in for Perfetto's loader) accepts, with
// the required fields on every event and microsecond timestamps.
func TestChromeTraceFormat(t *testing.T) {
	tr := &ChromeTrace{}
	tr.ThreadName(1, 2, "instance 2")
	tr.Complete("lease", "instance", 1, 2, sim.Duration(1e9), sim.Duration(3e9))
	tr.Instant(KindAccept, "decision", 1, 2, sim.Duration(2e9), map[string]any{"sub": 0})
	tr.Complete("neg", "instance", 1, 2, sim.Duration(5e9), -sim.Duration(1e9)) // clamped

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   *int64 `json:"ts"`
			Dur  int64  `json:"dur"`
			PID  *int   `json:"pid"`
			TID  *int   `json:"tid"`
			S    string `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.TS == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
	}
	span := doc.TraceEvents[1]
	if span.Ph != "X" || *span.TS != 1e6 || span.Dur != 3e6 {
		t.Fatalf("span not in microseconds: %+v", span)
	}
	inst := doc.TraceEvents[2]
	if inst.Ph != "i" || inst.S != "t" {
		t.Fatalf("instant event malformed: %+v", inst)
	}
	if doc.TraceEvents[3].Dur != 0 {
		t.Fatal("negative duration not clamped to 0")
	}
}
