// Package obs is the virtual-time telemetry layer: a structured decision
// log, a dependency-free metrics registry, and exporters (JSONL, Chrome
// trace-event JSON) for offline analysis of a campaign run.
//
// The paper's deployment practice is "log everything for offline analysis"
// (Section 8); every calibration decision of DESIGN.md §5 was originally
// tuned blind because the coordinator left no record of *why* it accepted a
// candidate, rejected a roaming window, declared an instance hung, or backed
// an allocation off. This package gives those branches a durable, typed
// trail.
//
// Determinism: every event is timestamped on the simulation clock and
// emitted from the single-threaded run loop, so the decision log of a seeded
// run is byte-reproducible — the golden test pins it. Telemetry is
// off-by-default; all emit methods are safe (and free) on a nil receiver, so
// an uninstrumented run pays one nil check per *decision branch*, never per
// trace event, preserving the fault-free bit-identical guarantee.
package obs

import (
	"encoding/json"
	"io"

	"taopt/internal/sim"
	"taopt/internal/ui"
)

// Decision kinds: the event taxonomy of the coordinator's and analyzer's
// consequential branches (DESIGN.md §9 documents each).
const (
	// KindAnalyzed: the analyzer ran FindSpace over an instance's window and
	// it produced a scored split (reason "pass" when it clears ScoreMax,
	// "score-above-max" otherwise).
	KindAnalyzed = "analyzed"
	// KindCandidate: the coordinator received a candidate subspace.
	KindCandidate = "candidate"
	// KindReject: a candidate failed one of the acceptance guards; Reason
	// names the guard (warm-up, too-broad, trimmed-away, entry-taken,
	// foreign-extension, foreign-enclosed).
	KindReject = "reject"
	// KindPending: a short-l_min candidate was stored (or refreshed) to wait
	// for a confirming report.
	KindPending = "pending"
	// KindConfirmed: two reports matched; Reason says how ("second-instance"
	// or "sustained"); an accept event follows.
	KindConfirmed = "confirmed"
	// KindAccept: a subspace was accepted and dedicated to its owner.
	KindAccept = "accept"
	// KindExtend: the owner's re-observation extended an accepted subspace.
	KindExtend = "extend"
	// KindMerge: a deeper region reachable only through one subspace was
	// folded into it.
	KindMerge = "merge"
	// KindOrphan: a subspace lost its owner (Reason "dropped" under
	// DropOrphans, "queued" otherwise).
	KindOrphan = "orphan"
	// KindRededicate: an orphaned subspace was re-assigned to a new instance.
	KindRededicate = "rededicate"
	// KindAllocate: an instance was allocated.
	KindAllocate = "allocate"
	// KindAllocDefer: the farm was busy; the want was deferred with the
	// recorded backoff.
	KindAllocDefer = "alloc-defer"
	// KindAllocDisable: a permanent allocation error latched; no further
	// allocations will be attempted.
	KindAllocDisable = "alloc-disable"
	// KindStagnant: an instance was de-allocated for discovering no new
	// screen within the stagnation window.
	KindStagnant = "stagnant"
	// KindDead: a tracked instance vanished from the farm without a release.
	KindDead = "dead"
	// KindHung: an instance missed the heartbeat window and was released.
	KindHung = "hung"
	// KindReleaseError: the farm rejected a de-allocation (unknown/double).
	KindReleaseError = "release-error"
	// KindCmdRetry: a block command failed retryably (lost on the wire) and
	// was retransmitted; Reason names the command kind.
	KindCmdRetry = "cmd-retry"
	// KindCmdDrop: a block command exhausted its retransmit budget and was
	// abandoned; the entrypoint stays unblocked until re-learned.
	KindCmdDrop = "cmd-drop"
)

// Decision is one structured decision-log entry. The zero value of optional
// fields is omitted from the serialised form; Instance and Sub are always
// present (IDs start at 0/1, so -1 marks "not applicable").
type Decision struct {
	// AtNS is the virtual-clock timestamp.
	AtNS int64 `json:"at_ns"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Instance is the testing instance the decision concerns (-1 if none).
	Instance int `json:"inst"`
	// Sub is the subspace ID the decision concerns (-1 if none).
	Sub int `json:"sub"`
	// Entry is the candidate/subspace entrypoint signature.
	Entry uint64 `json:"entry,omitempty"`
	// Members is the candidate/subspace member-screen count.
	Members int `json:"members,omitempty"`
	// Score, Overlap and Purity are Algorithm 1's partition score and its
	// components at the chosen split.
	Score   float64 `json:"score,omitempty"`
	Overlap float64 `json:"overlap,omitempty"`
	Purity  float64 `json:"purity,omitempty"`
	// Reason qualifies the kind (guard name, confirmation mode, ...).
	Reason string `json:"reason,omitempty"`
	// BackoffNS is the allocation retry backoff in force (alloc-defer).
	BackoffNS int64 `json:"backoff_ns,omitempty"`
	// IdleNS is how long the instance had been idle/stagnant (stagnant,
	// hung).
	IdleNS int64 `json:"idle_ns,omitempty"`
}

// Log is an append-only decision log. All methods are safe on a nil *Log
// and do nothing, so call sites need no telemetry branches.
type Log struct {
	decisions []Decision
	tee       func(Decision)
}

// Emit appends one decision. No-op on a nil log.
func (l *Log) Emit(d Decision) {
	if l == nil {
		return
	}
	l.decisions = append(l.decisions, d)
	if l.tee != nil {
		l.tee(d)
	}
}

// Tee registers fn to observe every subsequently emitted decision, in
// emission order — the streaming hook the binary trace writer hangs off so
// decisions leave the process as they happen instead of at run end. One tee
// at a time; no-op on a nil log.
func (l *Log) Tee(fn func(Decision)) {
	if l == nil {
		return
	}
	l.tee = fn
}

// Decisions returns the recorded decisions in emission order. The returned
// slice is the log's backing store; callers must not mutate it. A nil log
// returns nil.
func (l *Log) Decisions() []Decision {
	if l == nil {
		return nil
	}
	return l.decisions
}

// Len returns the number of recorded decisions (0 for a nil log).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.decisions)
}

// WriteJSONL serialises the log as one compact JSON object per line — the
// format the CI stability step diffs and cmd/taopt -decisions writes. The
// output is byte-deterministic: field order is fixed by the struct and
// emission order by the virtual clock.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range l.Decisions() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// CountByKind tallies decisions per kind.
func (l *Log) CountByKind() map[string]int {
	out := make(map[string]int)
	for _, d := range l.Decisions() {
		out[d.Kind]++
	}
	return out
}

// CountByReason tallies decisions of one kind per reason.
func (l *Log) CountByReason(kind string) map[string]int {
	out := make(map[string]int)
	for _, d := range l.Decisions() {
		if d.Kind == kind {
			out[d.Reason]++
		}
	}
	return out
}

// At is a convenience for building decisions from sim durations.
func At(t sim.Duration) int64 { return int64(t) }

// Sig converts a screen signature for the log's wire form.
func Sig(s ui.Signature) uint64 { return uint64(s) }

// Telemetry bundles one run's decision log and metrics registry. A nil
// *Telemetry (telemetry disabled) yields nil components, and every component
// method is nil-safe, so the harness threads one pointer and never branches.
type Telemetry struct {
	Decisions *Log
	Metrics   *Registry
}

// NewTelemetry returns an empty telemetry sink.
func NewTelemetry() *Telemetry {
	return &Telemetry{Decisions: &Log{}, Metrics: NewRegistry()}
}

// DecisionLog returns the decision log (nil when telemetry is disabled).
func (t *Telemetry) DecisionLog() *Log {
	if t == nil {
		return nil
	}
	return t.Decisions
}

// Registry returns the metrics registry (nil when telemetry is disabled).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}
