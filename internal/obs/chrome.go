package obs

import (
	"encoding/json"
	"io"

	"taopt/internal/sim"
)

// ChromeTrace accumulates Chrome trace-event-format events (the JSON format
// chrome://tracing and Perfetto load). Testing instances map to tracks
// (tid), subspace ownership to duration spans, and decision-log entries to
// instant events; virtual-clock nanoseconds are converted to the format's
// microseconds.
//
// Events serialise in insertion order, so a deterministically assembled
// trace is byte-deterministic too.
type ChromeTrace struct {
	events []chromeEvent
}

// chromeEvent is one trace-event object. Only the fields the format
// requires (and the viewers read) are emitted.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	// S is the instant-event scope ("t" = thread).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d sim.Duration) int64 { return int64(d) / 1000 }

// ThreadName emits a metadata event naming a track (Perfetto shows it as
// the lane label).
func (t *ChromeTrace) ThreadName(pid, tid int, name string) {
	t.events = append(t.events, chromeEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Complete emits one complete-duration span (ph "X").
func (t *ChromeTrace) Complete(name, cat string, pid, tid int, start, dur sim.Duration) {
	if dur < 0 {
		dur = 0
	}
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: cat, Ph: "X", TS: micros(start), Dur: micros(dur), PID: pid, TID: tid,
	})
}

// Instant emits one thread-scoped instant event (ph "i").
func (t *ChromeTrace) Instant(name, cat string, pid, tid int, at sim.Duration, args map[string]any) {
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: cat, Ph: "i", TS: micros(at), PID: pid, TID: tid, S: "t", Args: args,
	})
}

// Len returns the number of accumulated events.
func (t *ChromeTrace) Len() int { return len(t.events) }

// Write serialises the trace as a JSON object with a traceEvents array —
// the container format both about:tracing and Perfetto accept.
func (t *ChromeTrace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: t.events, DisplayTimeUnit: "ms"})
}
