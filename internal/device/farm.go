package device

import (
	"fmt"
	"sort"

	"taopt/internal/app"
	"taopt/internal/sim"
)

// Farm manages a pool of emulator slots for one app, mirroring a testing
// cloud: the coordinator allocates and de-allocates testing instances, and
// the farm accounts the machine time each allocation consumed.
type Farm struct {
	app        *app.App
	rng        *sim.RNG
	maxDevices int
	autoLogin  bool

	nextID    int
	active    map[int]*Allocation
	retired   []*Allocation
	meterUsed sim.Duration
}

// Allocation is one testing-instance lease.
type Allocation struct {
	Emu   *Emulator
	Since sim.Duration
	Until sim.Duration // valid once released
	done  bool
}

// MachineTime returns the machine time this allocation has consumed by now.
func (al *Allocation) MachineTime(now sim.Duration) sim.Duration {
	if al.done {
		return al.Until - al.Since
	}
	return now - al.Since
}

// NewFarm returns a farm for a with at most maxDevices concurrent instances.
// If autoLogin is set, each freshly allocated instance runs the app's
// auto-login script before testing starts (as in the paper's setup).
func NewFarm(a *app.App, rng *sim.RNG, maxDevices int, autoLogin bool) *Farm {
	if maxDevices <= 0 {
		panic("device: farm needs at least one device")
	}
	return &Farm{
		app:        a,
		rng:        rng,
		maxDevices: maxDevices,
		autoLogin:  autoLogin,
		active:     make(map[int]*Allocation),
	}
}

// ActiveCount returns the number of currently allocated instances.
func (f *Farm) ActiveCount() int { return len(f.active) }

// MaxDevices returns the concurrency cap.
func (f *Farm) MaxDevices() int { return f.maxDevices }

// Allocate boots a new testing instance at virtual time now. It returns an
// error when all devices are busy.
func (f *Farm) Allocate(now sim.Duration) (*Allocation, error) {
	if len(f.active) >= f.maxDevices {
		return nil, fmt.Errorf("device: all %d devices busy", f.maxDevices)
	}
	id := f.nextID
	f.nextID++
	emu := NewEmulator(id, f.app, f.rng.Fork(int64(id)))
	if f.autoLogin {
		emu.AutoLogin()
	}
	al := &Allocation{Emu: emu, Since: now}
	f.active[id] = al
	return al, nil
}

// Release de-allocates the instance with the given ID at virtual time now,
// charging its machine time. Releasing an unknown ID panics: leases are
// managed by one coordinator.
func (f *Farm) Release(id int, now sim.Duration) *Allocation {
	al, ok := f.active[id]
	if !ok {
		panic(fmt.Sprintf("device: release of unknown instance %d", id))
	}
	delete(f.active, id)
	al.Until = now
	al.done = true
	f.retired = append(f.retired, al)
	f.meterUsed += al.Until - al.Since
	return al
}

// ReleaseAll de-allocates every active instance.
func (f *Farm) ReleaseAll(now sim.Duration) {
	ids := make([]int, 0, len(f.active))
	for id := range f.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		f.Release(id, now)
	}
}

// Active returns the active allocations sorted by instance ID.
func (f *Farm) Active() []*Allocation {
	out := make([]*Allocation, 0, len(f.active))
	for _, al := range f.active {
		out = append(out, al)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Emu.ID < out[j].Emu.ID })
	return out
}

// All returns every allocation ever made, retired first, sorted by ID.
func (f *Farm) All() []*Allocation {
	out := append([]*Allocation(nil), f.retired...)
	out = append(out, f.Active()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Emu.ID < out[j].Emu.ID })
	return out
}

// MachineTime returns total machine time consumed by all allocations by now.
func (f *Farm) MachineTime(now sim.Duration) sim.Duration {
	total := f.meterUsed
	for _, al := range f.active {
		total += now - al.Since
	}
	return total
}
