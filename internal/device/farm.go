package device

import (
	"errors"
	"fmt"
	"sort"

	"taopt/internal/app"
	"taopt/internal/sim"
)

// Sentinel errors for lease management. ErrFarmBusy is retryable — the
// coordinator's backoff tests for it with errors.Is; the other two indicate
// a lease-accounting bug or a stale ID and are surfaced, not retried.
var (
	// ErrFarmBusy means every device slot is currently allocated.
	ErrFarmBusy = errors.New("device: all devices busy")
	// ErrUnknownInstance means the ID was never allocated by this farm.
	ErrUnknownInstance = errors.New("device: unknown instance")
	// ErrDoubleRelease means the instance was already released or failed.
	ErrDoubleRelease = errors.New("device: instance already released")
)

// Farm manages a pool of emulator slots for one app, mirroring a testing
// cloud: the coordinator allocates and de-allocates testing instances, and
// the farm accounts the machine time each allocation consumed.
type Farm struct {
	app        *app.App
	rng        *sim.RNG
	maxDevices int
	autoLogin  bool

	nextID    int
	active    map[int]*Allocation
	retired   []*Allocation
	meterUsed sim.Duration
	failed    int
}

// Allocation is one testing-instance lease.
type Allocation struct {
	Emu   *Emulator
	Since sim.Duration
	Until sim.Duration // valid once released
	// Failed marks a lease terminated by an instance fault rather than a
	// deliberate release; the lease is still charged up to the failure.
	Failed bool
	done   bool
}

// Done reports whether this lease has ended (released or failed).
func (al *Allocation) Done() bool { return al.done }

// MachineTime returns the machine time this allocation has consumed by now.
func (al *Allocation) MachineTime(now sim.Duration) sim.Duration {
	if al.done {
		return al.Until - al.Since
	}
	return now - al.Since
}

// NewFarm returns a farm for a with at most maxDevices concurrent instances.
// If autoLogin is set, each freshly allocated instance runs the app's
// auto-login script before testing starts (as in the paper's setup).
func NewFarm(a *app.App, rng *sim.RNG, maxDevices int, autoLogin bool) *Farm {
	if maxDevices <= 0 {
		panic("device: farm needs at least one device")
	}
	return &Farm{
		app:        a,
		rng:        rng,
		maxDevices: maxDevices,
		autoLogin:  autoLogin,
		active:     make(map[int]*Allocation),
	}
}

// ActiveCount returns the number of currently allocated instances.
func (f *Farm) ActiveCount() int { return len(f.active) }

// MaxDevices returns the concurrency cap.
func (f *Farm) MaxDevices() int { return f.maxDevices }

// FailedCount returns how many leases ended in an instance fault.
func (f *Farm) FailedCount() int { return f.failed }

// Allocate boots a new testing instance at virtual time now. When all
// devices are busy it returns an error wrapping ErrFarmBusy, which callers
// should treat as retryable.
func (f *Farm) Allocate(now sim.Duration) (*Allocation, error) {
	if len(f.active) >= f.maxDevices {
		return nil, fmt.Errorf("%w (%d devices)", ErrFarmBusy, f.maxDevices)
	}
	id := f.nextID
	f.nextID++
	emu := NewEmulator(id, f.app, f.rng.Fork(int64(id)))
	if f.autoLogin {
		emu.AutoLogin()
	}
	al := &Allocation{Emu: emu, Since: now}
	f.active[id] = al
	return al, nil
}

// Release de-allocates the instance with the given ID at virtual time now,
// charging its machine time. Releasing an already-released instance returns
// an error wrapping ErrDoubleRelease; an ID this farm never allocated
// returns one wrapping ErrUnknownInstance. Both are surfaced to the
// coordinator instead of panicking so a single bad lease cannot take down a
// whole campaign.
func (f *Farm) Release(id int, now sim.Duration) (*Allocation, error) {
	return f.retire(id, now, false)
}

// Fail terminates the lease of a dead or hung instance at virtual time now.
// The lease is charged machine time up to the failure, exactly as a release,
// but is marked failed for reporting.
func (f *Farm) Fail(id int, now sim.Duration) (*Allocation, error) {
	return f.retire(id, now, true)
}

func (f *Farm) retire(id int, now sim.Duration, failed bool) (*Allocation, error) {
	al, ok := f.active[id]
	if !ok {
		if id >= 0 && id < f.nextID {
			return nil, fmt.Errorf("%w: instance %d", ErrDoubleRelease, id)
		}
		return nil, fmt.Errorf("%w: instance %d", ErrUnknownInstance, id)
	}
	delete(f.active, id)
	al.Until = now
	al.done = true
	al.Failed = failed
	if failed {
		f.failed++
	}
	f.retired = append(f.retired, al)
	f.meterUsed += al.Until - al.Since
	return al, nil
}

// ReleaseAll de-allocates every active instance.
func (f *Farm) ReleaseAll(now sim.Duration) {
	ids := make([]int, 0, len(f.active))
	for id := range f.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		f.Release(id, now)
	}
}

// Active returns the active allocations sorted by instance ID.
func (f *Farm) Active() []*Allocation {
	out := make([]*Allocation, 0, len(f.active))
	for _, al := range f.active {
		out = append(out, al)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Emu.ID < out[j].Emu.ID })
	return out
}

// All returns every allocation ever made, retired first, sorted by ID.
func (f *Farm) All() []*Allocation {
	out := append([]*Allocation(nil), f.retired...)
	out = append(out, f.Active()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Emu.ID < out[j].Emu.ID })
	return out
}

// MachineTime returns total machine time consumed by all allocations by now.
func (f *Farm) MachineTime(now sim.Duration) sim.Duration {
	total := f.meterUsed
	for _, al := range f.active {
		total += now - al.Since
	}
	return total
}
