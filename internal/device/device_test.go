package device

import (
	"errors"
	"testing"

	"taopt/internal/app"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

func testApp() *app.App { return app.MotivatingExample() }

func newEmu(t *testing.T) *Emulator {
	t.Helper()
	return NewEmulator(0, testApp(), sim.NewRNG(1))
}

// tapTo finds the action navigating to a target title and performs it.
func tapAction(t *testing.T, e *Emulator, widget int) Result {
	t.Helper()
	rendered := e.Render()
	for _, a := range e.Actions(rendered) {
		if a.Widget == widget {
			return e.Perform(a, 0)
		}
	}
	t.Fatalf("widget %d not actionable", widget)
	return Result{}
}

func back(e *Emulator) Result {
	return e.Perform(Action{Kind: trace.ActionBack, Widget: -1}, 0)
}

func TestEmulatorStartsAtMain(t *testing.T) {
	e := newEmu(t)
	if e.Current() != testApp().Main {
		t.Fatalf("current = %d, want main", e.Current())
	}
	if e.Coverage.Count() == 0 {
		t.Fatal("showing the main screen must cover its visit methods")
	}
}

func TestNavigationAndBackStack(t *testing.T) {
	e := newEmu(t)
	// Main widget 0 is "Search" -> SearchTabs (screen 1).
	res := tapAction(t, e, 0)
	if res.From != 0 || res.To != 1 {
		t.Fatalf("transition = %d->%d, want 0->1", res.From, res.To)
	}
	if res.Latency < MinActionLatency || res.Latency > MaxActionLatency {
		t.Fatalf("latency %v out of bounds", res.Latency)
	}
	res = back(e)
	if res.To != 0 {
		t.Fatalf("back landed on %d, want 0", res.To)
	}
}

func TestBackOnRootStays(t *testing.T) {
	e := newEmu(t)
	res := back(e)
	if res.To != 0 {
		t.Fatalf("back on root moved to %d", res.To)
	}
}

func TestBackStackCap(t *testing.T) {
	e := newEmu(t)
	// Bounce between screens far more than maxBackStack times.
	for i := 0; i < maxBackStack*3; i++ {
		tapAction(t, e, 0) // into SearchTabs
		tapAction(t, e, 0) // Results -> SelectList
		// jump home via SearchTabs' "Home"? Just keep going; stack caps.
		e.Relaunch()
	}
	if len(e.backStack) > maxBackStack {
		t.Fatalf("back stack grew to %d", len(e.backStack))
	}
}

func TestCrashRestarts(t *testing.T) {
	a := testApp()
	e := NewEmulator(0, a, sim.NewRNG(7))
	// ShopBag's "Checkout" widget (index 0 of screen 4) is the crash site at
	// 5% — drive to it repeatedly until the crash fires.
	fired := false
	for i := 0; i < 2000 && !fired; i++ {
		tapAction(t, e, 0)        // main -> SearchTabs (widget0 = Search)
		tapAction(t, e, 1)        // SearchTabs "Hot items" -> GoodsDetail
		tapAction(t, e, 0)        // GoodsDetail "Add to bag" -> ShopBag
		res := tapAction(t, e, 0) // ShopBag "Checkout" (crash site)
		if res.Crashed {
			fired = true
			if res.To != a.Main {
				t.Fatalf("crash restart landed on %d, want main", res.To)
			}
			if res.Latency < MinRestartLatency {
				t.Fatal("crash must charge a restart latency")
			}
			if e.Crashes.Unique() != 1 {
				t.Fatalf("unique crashes = %d", e.Crashes.Unique())
			}
			if e.Restarts() != 1 {
				t.Fatalf("restarts = %d", e.Restarts())
			}
		} else {
			e.Relaunch()
		}
	}
	if !fired {
		t.Fatal("planted crash never fired")
	}
}

func TestAutoLogin(t *testing.T) {
	spec := app.DefaultSpec("LoginApp", 3)
	spec.LoginRequired = true
	a := app.Generate(spec)
	e := NewEmulator(0, a, sim.NewRNG(1))
	if e.Current() != a.Login {
		t.Fatalf("pre-login screen = %d, want login", e.Current())
	}
	if e.LoggedIn() {
		t.Fatal("logged in before script ran")
	}
	e.AutoLogin()
	if e.Current() != a.Main || !e.LoggedIn() {
		t.Fatal("auto-login must land on main")
	}
}

// resumeApp is a minimal app for resume semantics: hub(0) -> entry(1) ->
// deep(2), with a direct "Home" widget on the deep screen so returning to the
// hub does not re-show shallower functionality screens.
func resumeApp() *app.App {
	a := &app.App{
		Name:        "ResumeApp",
		Login:       -1,
		Subspaces:   2,
		ResumeProb:  1.0,
		MethodNames: []string{"m0", "m1", "m2"},
	}
	w := func(target app.ScreenID) app.Widget {
		return app.Widget{Class: "android.widget.Button", ResourceID: "w" + string(rune('a'+int(target)+2)), Label: "w", Target: target, CrashSite: -1}
	}
	a.Screens = []*app.ScreenState{
		{ID: 0, Activity: "Hub", Subspace: 0, Title: "Hub", Widgets: []app.Widget{w(1)}},
		{ID: 1, Activity: "F", Subspace: 1, Title: "Entry", Widgets: []app.Widget{w(2), w(0)}},
		{ID: 2, Activity: "F", Subspace: 1, Title: "Deep", Widgets: []app.Widget{w(0)}},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

func TestResumeSemantics(t *testing.T) {
	a := resumeApp()
	e := NewEmulator(0, a, sim.NewRNG(1))
	tapAction(t, e, 0) // hub -> entry
	tapAction(t, e, 0) // entry -> deep
	tapAction(t, e, 0) // deep -> hub directly (resume state stays at deep)
	if e.Current() != 0 {
		t.Fatalf("expected hub, at %d", e.Current())
	}
	res := tapAction(t, e, 0) // hub tab targets entry, must resume at deep
	if res.To != 2 {
		t.Fatalf("resume landed on %d, want deep (2)", res.To)
	}

	// Without resume, the same navigation lands on the entry screen.
	b := resumeApp()
	b.ResumeProb = 0
	e2 := NewEmulator(0, b, sim.NewRNG(1))
	tapAction(t, e2, 0)
	tapAction(t, e2, 0)
	tapAction(t, e2, 0)
	if res := tapAction(t, e2, 0); res.To != 1 {
		t.Fatalf("without resume landed on %d, want entry (1)", res.To)
	}

	// Relaunch clears saved task state.
	e.Relaunch()
	if res := tapAction(t, e, 0); res.To != 1 {
		t.Fatalf("after relaunch landed on %d, want entry (1)", res.To)
	}
}

func TestActionsRespectDisabled(t *testing.T) {
	e := newEmu(t)
	rendered := e.Render()
	container := rendered.Root.Children[1]
	container.Children[0].Enabled = false
	acts := e.Actions(rendered)
	for _, a := range acts {
		if a.Widget == 0 {
			t.Fatal("disabled widget still actionable")
		}
	}
	// Back remains.
	if acts[len(acts)-1].Kind != trace.ActionBack {
		t.Fatal("Back action missing")
	}
}

func TestFarmLifecycle(t *testing.T) {
	f := NewFarm(testApp(), sim.NewRNG(1), 2, false)
	a1, err := f.Allocate(0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := f.Allocate(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(20); !errors.Is(err, ErrFarmBusy) {
		t.Fatalf("third allocation with 2 devices: err = %v, want ErrFarmBusy", err)
	}
	if f.ActiveCount() != 2 {
		t.Fatalf("active = %d", f.ActiveCount())
	}
	if a1.Emu.ID == a2.Emu.ID {
		t.Fatal("instance IDs must be unique")
	}

	if _, err := f.Release(a1.Emu.ID, 100); err != nil {
		t.Fatalf("release: %v", err)
	}
	if f.ActiveCount() != 1 {
		t.Fatal("release did not free a slot")
	}
	if got := a1.MachineTime(999); got != 100 {
		t.Fatalf("released machine time = %v, want 100", got)
	}
	if got := a2.MachineTime(100); got != 90 {
		t.Fatalf("active machine time = %v, want 90", got)
	}
	if got := f.MachineTime(100); got != 190 {
		t.Fatalf("farm machine time = %v, want 190", got)
	}

	// Freed slot can be reused with a fresh ID.
	a3, err := f.Allocate(100)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Emu.ID == a1.Emu.ID {
		t.Fatal("IDs must not be recycled")
	}
	if got := len(f.All()); got != 3 {
		t.Fatalf("All = %d allocations", got)
	}
	f.ReleaseAll(200)
	if f.ActiveCount() != 0 {
		t.Fatal("ReleaseAll left actives")
	}
}

func TestFarmAutoLogin(t *testing.T) {
	spec := app.DefaultSpec("L2", 4)
	spec.LoginRequired = true
	a := app.Generate(spec)
	f := NewFarm(a, sim.NewRNG(1), 1, true)
	al, err := f.Allocate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !al.Emu.LoggedIn() {
		t.Fatal("farm must run the auto-login script")
	}
}

func TestFarmReleaseErrors(t *testing.T) {
	f := NewFarm(testApp(), sim.NewRNG(1), 1, false)
	if _, err := f.Release(42, 0); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("release of unknown ID: err = %v, want ErrUnknownInstance", err)
	}
	al, err := f.Allocate(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Release(al.Emu.ID, 10); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := f.Release(al.Emu.ID, 20); !errors.Is(err, ErrDoubleRelease) {
		t.Fatalf("second release: err = %v, want ErrDoubleRelease", err)
	}
	if _, err := f.Fail(al.Emu.ID, 20); !errors.Is(err, ErrDoubleRelease) {
		t.Fatalf("fail after release: err = %v, want ErrDoubleRelease", err)
	}
}

// Fail charges the lease up to the moment of death, like a release, and
// marks it failed for reporting.
func TestFarmFailChargesPartialTime(t *testing.T) {
	f := NewFarm(testApp(), sim.NewRNG(1), 2, false)
	al, err := f.Allocate(0)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := f.Fail(al.Emu.ID, 50)
	if err != nil {
		t.Fatalf("fail: %v", err)
	}
	if !dead.Failed {
		t.Fatal("failed lease not marked Failed")
	}
	if got := dead.MachineTime(999); got != 50 {
		t.Fatalf("failed lease machine time = %v, want 50", got)
	}
	if got := f.MachineTime(50); got != 50 {
		t.Fatalf("farm machine time = %v, want 50", got)
	}
	if f.FailedCount() != 1 {
		t.Fatalf("failed count = %d, want 1", f.FailedCount())
	}
	if f.ActiveCount() != 0 {
		t.Fatal("failed instance still active")
	}
	// The freed slot is reusable.
	if _, err := f.Allocate(60); err != nil {
		t.Fatalf("allocate after fail: %v", err)
	}
}
