// Package device simulates Android testing instances: emulator processes that
// run an AUT, execute UI actions with realistic latencies, crash and restart,
// and report method coverage and crashes. A Farm manages allocation and
// de-allocation of instances and accounts machine time (the RQ4 metric).
package device

import (
	"fmt"

	"taopt/internal/app"
	"taopt/internal/coverage"
	"taopt/internal/crash"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// Latency bounds for simulated interactions. One UI action — injecting the
// event, the app reacting, the next hierarchy settling — costs on the order
// of a second on an emulator; a crash restart costs several.
const (
	MinActionLatency  = 400 * sim.Duration(1e6) // 400ms
	MaxActionLatency  = 1200 * sim.Duration(1e6)
	MinRestartLatency = 4 * sim.Duration(1e9) // 4s
	MaxRestartLatency = 8 * sim.Duration(1e9)
)

// Action is one executable UI action on the current screen.
type Action struct {
	Kind trace.ActionKind
	// Widget indexes the source screen's widget list for ActionTap.
	Widget int
	// Path locates the acted-on element in the rendered hierarchy.
	Path ui.WidgetPath
	// Node is the rendered element (nil for Back).
	Node *ui.Node
}

// Result describes the effect of performing an action.
type Result struct {
	From    app.ScreenID
	To      app.ScreenID
	Crashed bool
	Report  crash.Report // valid when Crashed
	// Latency is the virtual time the action consumed, including any
	// restart penalty.
	Latency sim.Duration
}

// Emulator is one testing instance: an app process plus input injection.
type Emulator struct {
	ID  int
	App *app.App

	rng       *sim.RNG
	cur       app.ScreenID
	backStack []app.ScreenID
	visits    map[app.ScreenID]int
	resume    map[int]app.ScreenID // functionality -> last screen (task state)
	loggedIn  bool
	restarts  int

	// Coverage and Crashes are this instance's MiniTrace/Logcat analogues.
	Coverage *coverage.Set
	Crashes  *crash.Log
}

// maxBackStack caps Android-style task depth.
const maxBackStack = 32

// NewEmulator boots an instance of a on a fresh emulator. rng must be an
// independent stream for this instance.
func NewEmulator(id int, a *app.App, rng *sim.RNG) *Emulator {
	e := &Emulator{
		ID:       id,
		App:      a,
		rng:      rng,
		visits:   make(map[app.ScreenID]int),
		resume:   make(map[int]app.ScreenID),
		Coverage: coverage.NewSet(a.MethodCount()),
		Crashes:  crash.NewLog(a.Name),
	}
	e.launch()
	return e
}

// launch (re)starts the app process, dropping saved task state.
func (e *Emulator) launch() {
	e.backStack = e.backStack[:0]
	for k := range e.resume {
		delete(e.resume, k)
	}
	if e.App.LoginRequired && !e.loggedIn {
		e.showScreen(e.App.Login)
		return
	}
	e.showScreen(e.App.Main)
}

// Relaunch force-stops and restarts the app process. The Toller driver uses
// it as a last resort when Back cannot leave a blocked subspace.
func (e *Emulator) Relaunch() { e.launch() }

// AutoLogin runs the app's auto-login script (the paper writes these by hand
// for apps that gate functionality behind accounts and runs them once per
// instance). It relaunches the app on the main screen.
func (e *Emulator) AutoLogin() {
	if !e.App.LoginRequired {
		return
	}
	e.loggedIn = true
	e.launch()
}

// LoggedIn reports whether the auto-login script has run.
func (e *Emulator) LoggedIn() bool { return e.loggedIn }

// Restarts returns how many times the app crashed and restarted.
func (e *Emulator) Restarts() int { return e.restarts }

// Current returns the current screen ID. Evaluation code may use it; the
// TaOPT core never sees it (it only sees rendered hierarchies via Toller).
func (e *Emulator) Current() app.ScreenID { return e.cur }

func (e *Emulator) showScreen(id app.ScreenID) {
	e.cur = id
	e.visits[id]++
	s := e.App.Screen(id)
	if s.Subspace != 0 {
		e.resume[s.Subspace] = id
	}
	for _, m := range s.VisitMethods {
		e.Coverage.Add(int(m))
	}
}

// Render returns the concrete UI hierarchy currently displayed. Repeated
// calls without an intervening action return structurally identical screens.
func (e *Emulator) Render() *ui.Screen {
	return e.App.Render(e.cur, e.visits[e.cur])
}

// Actions enumerates the executable actions on the rendered screen. Elements
// disabled in rendered (e.g. by the Toller driver's entrypoint blocking) are
// excluded. Back is always available.
//
// rendered must originate from this emulator's Render: the i'th clickable of
// the container corresponds to widget i of the current screen.
func (e *Emulator) Actions(rendered *ui.Screen) []Action {
	s := e.App.Screen(e.cur)
	container := rendered.Root.Children[1]
	var out []Action
	for i := range s.Widgets {
		node := container.Children[i]
		if !node.Clickable || !node.Enabled {
			continue
		}
		path, err := ui.PathOf(rendered.Root, []int{1, i})
		if err != nil {
			panic(fmt.Sprintf("device: rendered screen lost widget %d: %v", i, err))
		}
		out = append(out, Action{Kind: trace.ActionTap, Widget: i, Path: path, Node: node})
	}
	out = append(out, Action{Kind: trace.ActionBack, Widget: -1})
	return out
}

// Perform executes the action at virtual time now and returns the result,
// recording coverage and crashes as side effects.
func (e *Emulator) Perform(a Action, now sim.Duration) Result {
	res := Result{From: e.cur, Latency: e.rng.DurationBetween(MinActionLatency, MaxActionLatency)}
	switch a.Kind {
	case trace.ActionBack:
		e.performBack()
	case trace.ActionTap:
		out := e.App.Perform(e.cur, a.Widget, e.rng)
		for _, m := range out.Covered {
			e.Coverage.Add(int(m))
		}
		switch {
		case out.Crash >= 0:
			site := e.App.CrashSites[out.Crash]
			res.Crashed = true
			res.Report = e.Crashes.Record(site.Frames, now, e.ID)
			res.Latency += e.rng.DurationBetween(MinRestartLatency, MaxRestartLatency)
			e.restarts++
			e.launch()
		case out.Next == app.TargetBack:
			e.performBack()
		case out.Next == app.TargetNone:
			// Stay put; no re-show.
		default:
			next := out.Next
			// Crossing into another functionality may resume its saved task
			// state (Android keeps back-stack fragments alive), letting
			// sustained exploration accumulate depth across excursions.
			// Off unless the app opts in via ResumeProb.
			if e.App.ResumeProb > 0 {
				from := e.App.Screen(e.cur).Subspace
				to := e.App.Screen(next).Subspace
				if to != 0 && to != from {
					if saved, ok := e.resume[to]; ok && saved != next && e.rng.Bool(e.App.ResumeProb) {
						next = saved
					}
				}
			}
			if next != e.cur {
				e.pushBack(e.cur)
			}
			e.showScreen(next)
		}
	case trace.ActionLaunch:
		// Launches are synthesized by the crash-restart path and the
		// initial show; a tool never performs one as an input action.
		panic("device: ActionLaunch is emulator-synthesized, not performable")
	default:
		panic(fmt.Sprintf("device: cannot perform action kind %v", a.Kind))
	}
	res.To = e.cur
	return res
}

func (e *Emulator) pushBack(id app.ScreenID) {
	if len(e.backStack) == maxBackStack {
		copy(e.backStack, e.backStack[1:])
		e.backStack = e.backStack[:maxBackStack-1]
	}
	e.backStack = append(e.backStack, id)
}

func (e *Emulator) performBack() {
	if len(e.backStack) == 0 {
		// Back on the task root: Android would background the app; the
		// testing setup immediately foregrounds it again, so this is a no-op
		// re-show of the root screen.
		e.showScreen(e.cur)
		return
	}
	top := e.backStack[len(e.backStack)-1]
	e.backStack = e.backStack[:len(e.backStack)-1]
	e.showScreen(top)
}
