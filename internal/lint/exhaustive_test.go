package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestExhaustiveFlagsMissingMembers(t *testing.T) {
	// Includes the acceptance case: a dispatcher over wire.FrameKind that
	// deliberately omits FrameRunEnd.
	linttest.Run(t, lint.Exhaustive(lint.DefaultConfig()), "taopt/internal/core", "testdata/exhaustive/flagged")
}

func TestExhaustiveAcceptsFullCoverage(t *testing.T) {
	linttest.Run(t, lint.Exhaustive(lint.DefaultConfig()), "taopt/internal/core", "testdata/exhaustive/clean")
}
