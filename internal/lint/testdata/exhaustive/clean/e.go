// Package clean is exhaustive testdata; every switch here satisfies the
// contract, so the analyzer must stay silent.
package clean

import (
	"go/token"

	"taopt/internal/bus"
)

type Kind int

const (
	KindA Kind = iota
	KindB
	KindC

	// KindLast aliases KindC; naming either one covers the value.
	KindLast = KindC
)

// Solo is a one-constant type: not an enum family, never checked.
type Solo int

// OnlySolo is the single Solo value.
const OnlySolo Solo = 0

func fullCoverage(k Kind) int {
	switch k {
	case KindA:
		return 1
	case KindB, KindC:
		return 2
	}
	return 0
}

// Full coverage plus a default for corrupt input is the String()-method
// pattern and stays clean: the default only fires for out-of-range values.
func fullCoverageWithDefault(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindLast:
		return "c"
	default:
		return "corrupt"
	}
}

func justifiedCatchAll(k Kind) bool {
	//lint:allow exhaustive "only KindA reaches this path; the rest are filtered upstream"
	switch k {
	case KindA:
		return true
	}
	return false
}

// A non-constant case guard makes coverage unprovable; the analyzer stays
// silent rather than guess.
func nonConstantCase(k, boundary Kind) bool {
	switch k {
	case boundary:
		return true
	case KindA:
		return false
	}
	return false
}

func soloType(s Solo) bool {
	switch s {
	case OnlySolo:
		return true
	}
	return false
}

// Stdlib enums are not ours to police.
func stdlibEnum(t token.Token) bool {
	switch t {
	case token.ADD:
		return true
	}
	return false
}

// A cross-package switch covering every command kind: NumCommandKinds is
// declared as an int, not a CommandKind, so membership must not demand it.
func commandDispatch(k bus.CommandKind) string {
	switch k {
	case bus.Allocate, bus.Deallocate:
		return "lease"
	case bus.BlockWidget, bus.BlockMember:
		return "steer"
	case bus.Kill, bus.Hang:
		return "fault"
	}
	return ""
}
