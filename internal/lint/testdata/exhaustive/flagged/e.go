// Package flagged is exhaustive testdata; the harness checks it under the
// synthetic import path taopt/internal/core so its local enums count as
// module-defined. Each switch below is out of sync with its const block.
package flagged

import "taopt/internal/bus/wire"

// Kind is a local int enum in the shape of the module's kind families.
type Kind int

const (
	KindA Kind = iota
	KindB
	KindC
)

// Mode is a string enum; exhaustive covers those too.
type Mode string

const (
	ModeFast Mode = "fast"
	ModeSafe Mode = "safe"
)

func missingMember(k Kind) int {
	switch k { // want "switch over Kind misses KindC"
	case KindA:
		return 1
	case KindB:
		return 2
	}
	return 0
}

// A default clause is runtime handling for impossible values, not coverage:
// the switch below still drifts silently when KindC gains real semantics.
func defaultDoesNotCover(k Kind) int {
	switch k { // want "misses KindC .1 of 3 members.. name every member .a default does not count as coverage."
	case KindA, KindB:
		return 1
	default:
		return 0
	}
}

func missingTwo(k Kind) bool {
	switch k { // want "misses KindB, KindC .2 of 3 members."
	case KindA:
		return true
	}
	return false
}

func stringEnum(m Mode) bool {
	switch m { // want "switch over Mode misses ModeSafe"
	case ModeFast:
		return true
	}
	return false
}

// The acceptance case from the issue: a dispatcher over the wire frame
// kinds that silently omits one frame — exactly the drift that desyncs a
// codec from its enum.
func frameDispatch(k wire.FrameKind) bool {
	switch k { // want "switch over wire.FrameKind misses FrameRunEnd .1 of 12 members."
	case wire.FrameHeader, wire.FrameScreen, wire.FrameEvent, wire.FrameDelivered,
		wire.FrameCommand, wire.FrameReply, wire.FrameFate, wire.FrameLease,
		wire.FrameTick, wire.FrameSample, wire.FrameInstance:
		return true
	}
	return false
}

func unjustifiedAllowStillCounts(k Kind) int {
	//lint:allow exhaustive // want "malformed or unjustified"
	switch k { // want "misses KindC"
	case KindA, KindB:
		return 1
	}
	return 0
}
