// Package cmd is globalrand testdata; the harness checks it under the
// import path taopt/cmd/gen, outside the deterministic trees, where
// math/rand is legal.
package cmd

import "math/rand"

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
