// Package det is globalrand testdata; the harness checks it under the
// synthetic import path taopt/internal/core, a deterministic package.
package det

import (
	"math/rand"
	v2 "math/rand/v2"
)

func roll() int {
	return rand.Intn(6) // want "math/rand.Intn in deterministic package"
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "math/rand.New in" "math/rand.NewSource in"
}

func rollV2() int {
	return v2.IntN(6) // want "math/rand/v2.IntN in deterministic package"
}

// Consuming a generator someone handed you is fine; the violation is
// minting randomness outside the sim seed tree.
func consume(r *rand.Rand) int {
	return r.Intn(6)
}

func justified() int {
	//lint:allow globalrand "jitter for an operator-facing spinner; never feeds run results"
	return rand.Intn(6)
}
