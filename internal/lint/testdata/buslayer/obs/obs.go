// Package obs is buslayer testdata; the harness checks it under the
// import path taopt/internal/obs. obs is a leaf every layer reports into:
// base types are fine, anything above them is a violation.
package obs

import (
	_ "taopt/internal/metrics" // want "taopt/internal/obs must not import taopt/internal/metrics"
	_ "taopt/internal/sim"
	_ "taopt/internal/ui"
)
