// Package core is buslayer testdata; the harness checks it under the
// import path taopt/internal/core. Importing the bus seam is the intended
// coupling; importing the instance-side device package shortcuts it.
package core

import (
	_ "taopt/internal/bus"
	_ "taopt/internal/device" // want "taopt/internal/core must not import taopt/internal/device"
	_ "taopt/internal/sim"
)
