// Package wire is buslayer testdata; the harness checks it under the
// import path taopt/internal/bus/wire. The wire framing may use its parent
// seam and the base types it serialises. Reaching into core inverts the
// layering, device shortcuts the seam, and faults belongs to the
// bus.WithFaults decorator — the codec must stay fault-agnostic.
package wire

import (
	_ "taopt/internal/bus"
	_ "taopt/internal/core"   // want "taopt/internal/bus/wire must not import taopt/internal/core"
	_ "taopt/internal/device" // want "taopt/internal/bus/wire must not import taopt/internal/device"
	_ "taopt/internal/faults" // want "taopt/internal/bus/wire must not import taopt/internal/faults"
	_ "taopt/internal/sim"
	_ "taopt/internal/trace"
	_ "taopt/internal/ui"
)
