// Package free is buslayer testdata; the harness checks it under the
// import path taopt/cmd/freebird, which has no layer rule — the binaries
// may import anything, so none of these imports are flagged.
package free

import (
	_ "taopt/internal/bus"
	_ "taopt/internal/device"
	_ "taopt/internal/metrics"
	_ "taopt/internal/obs"
)
