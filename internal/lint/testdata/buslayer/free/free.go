// Package free is buslayer testdata; the harness checks it under the
// import path taopt/internal/harness, which has no layer rule — the top
// of the stack may import anything, so none of these imports are flagged.
package free

import (
	_ "taopt/internal/bus"
	_ "taopt/internal/device"
	_ "taopt/internal/metrics"
	_ "taopt/internal/obs"
)
