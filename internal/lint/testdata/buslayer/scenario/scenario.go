// Package scenario is buslayer testdata; the harness checks it under the
// import path taopt/internal/scenario. The scenario compiler lowers
// documents into app/faults/sim config values; the harness consumes compiled
// campaigns, so importing harness (or any transport package) inverts the
// layering.
package scenario

import (
	_ "taopt/internal/app"
	_ "taopt/internal/bus" // want "taopt/internal/scenario must not import taopt/internal/bus"
	_ "taopt/internal/faults"
	_ "taopt/internal/harness" // want "taopt/internal/scenario must not import taopt/internal/harness"
	_ "taopt/internal/sim"
)
