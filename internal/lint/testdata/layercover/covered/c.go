// Package covered is layercover testdata; the harness checks it under
// taopt/internal/core, a tree DefaultConfig governs, so the guard stays
// silent — and again under taopt/internal/bus/wire to show subtree
// inheritance from an enclosing rule counts as coverage.
package covered

// Value keeps the package non-empty.
const Value = 1
