// Package throwaway is layercover testdata; the harness checks it under the
// synthetic import path taopt/internal/throwaway, a tree DefaultConfig has
// no layer rule for — exactly the "new package ships unconstrained" drift
// the guard exists to stop.
package throwaway // want "package taopt/internal/throwaway has no buslayer layering rule"

// Value keeps the package non-empty.
const Value = 1
