// Package m is maporder testdata. The analyzer is not path-scoped: output
// must never depend on map iteration order anywhere in the module.
package m

import (
	"fmt"
	"io"
	"sort"
)

func flaggedAppendNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys while ranging over a map"
	}
	return keys
}

func flaggedFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf while ranging over a map"
	}
}

func flaggedWriterMethod(w io.Writer, m map[string]int) {
	for k := range m {
		w.Write([]byte(k)) // want "Write call while ranging over a map"
	}
}

func flaggedConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string built up while ranging over a map"
	}
	return s
}

func flaggedChannelSend(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k // want "channel send while ranging over a map"
	}
}

// The blessed pattern: collect the keys, sort, then range over the slice.
func allowedCollectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func allowedSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// A local helper whose name says it sorts gets credit too (the pattern
// internal/export/export.go uses with sortUint64).
func allowedLocalSortHelper(m map[uint64]bool) []uint64 {
	var members []uint64
	for k := range m {
		members = append(members, k)
	}
	sortUint64(members)
	return members
}

func sortUint64(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Commutative aggregation does not depend on visit order.
func allowedCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Slices iterate in index order; only map ranges are suspect.
func allowedSliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

func justified(w io.Writer, m map[string]int) {
	for k := range m {
		//lint:allow maporder "debug dump behind a flag; order is irrelevant"
		fmt.Fprintln(w, k)
	}
}
