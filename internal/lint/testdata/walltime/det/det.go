// Package det is walltime testdata; the harness checks it under the
// synthetic import path taopt/internal/core, a deterministic package.
package det

import "time"

func run() {
	start := time.Now()          // want "wall-clock time.Now"
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
	_ = time.Since(start)        // want "wall-clock time.Since"
	<-time.After(time.Second)    // want "wall-clock time.After"
	_ = time.Until(start)        // want "wall-clock time.Until"
}

// Duration arithmetic, constants and formatting never touch the wall
// clock, so virtual-time code keeps using them freely.
func durationMathIsFine(d time.Duration) time.Duration {
	return 3*time.Second + d.Round(time.Millisecond)
}

func justified() time.Time {
	//lint:allow walltime "operator-facing banner timestamp; never feeds run results"
	return time.Now()
}

func justifiedSameLine() time.Time {
	return time.Now() //lint:allow walltime "operator-facing banner timestamp; never feeds run results"
}

func unjustified() time.Time {
	//lint:allow walltime // want "malformed or unjustified"
	return time.Now() // want "wall-clock time.Now"
}
