// Package cli is walltime testdata; the harness checks it under the
// import path taopt/internal/cli, which the default config exempts, so
// the same calls that are violations in det.go must stay silent here.
package cli

import "time"

func profileBanner() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
