// Package flagged is sentinelerr testdata; the harness checks it under the
// synthetic import path taopt/internal/core so its local Err* sentinels are
// module-internal. Every identity comparison below breaks on the framed
// transport, where the codec rebuilds errors by wrapping the sentinel.
package flagged

import (
	"errors"

	"taopt/internal/bus"
)

// ErrBoom is a module-internal sentinel in the repo's Err* convention.
var ErrBoom = errors.New("flagged: boom")

// ErrStall is a second sentinel for the switch case below.
var ErrStall = errors.New("flagged: stall")

func eq(err error) bool {
	return err == ErrBoom // want "ErrBoom compared with ==.*use errors.Is.err, ErrBoom."
}

func neq(err error) bool {
	return err != ErrBoom // want "ErrBoom compared with !="
}

func reversed(err error) bool {
	return ErrBoom == err // want "ErrBoom compared with =="
}

func parenthesised(err error) bool {
	return err == (ErrBoom) // want "ErrBoom compared with =="
}

func switchCase(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrBoom: // want "switch case compares against ErrBoom by identity"
		return "boom"
	case ErrStall: // want "switch case compares against ErrStall by identity"
		return "stall"
	}
	return "other"
}

func crossPackage(err error) bool {
	return err == bus.ErrTimeout // want "bus.ErrTimeout compared with ==.*errors.Is.err, bus.ErrTimeout."
}

func unjustified(err error) bool {
	//lint:allow sentinelerr // want "malformed or unjustified"
	return err == ErrBoom // want "ErrBoom compared with =="
}
