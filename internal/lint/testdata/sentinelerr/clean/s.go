// Package clean is sentinelerr testdata; nothing here compares a module
// sentinel by identity, so the analyzer must stay silent.
package clean

import (
	"errors"
	"io"

	"taopt/internal/bus"
)

// ErrBoom is a module-internal sentinel.
var ErrBoom = errors.New("clean: boom")

func errorsIs(err error) bool {
	return errors.Is(err, ErrBoom) || errors.Is(err, bus.ErrTimeout)
}

// err == io.EOF is the blessed idiom of every decode loop here: stdlib
// sentinels never cross the wire codec, so identity is safe.
func stdlibSentinel(err error) bool {
	return err == io.EOF || err != io.ErrUnexpectedEOF
}

func nilComparison(err error) bool {
	return err == nil
}

// A local variable that happens to follow the Err* naming convention is not
// a package-level sentinel.
func localErrVar(err error) bool {
	ErrLocal := errors.New("local")
	return err == ErrLocal
}

// A package-level Err*-named non-error value is out of scope too.
var ErrCount = 3

func notAnError(n int) bool {
	return n == ErrCount
}

func justified(err error) bool {
	//lint:allow sentinelerr "inline-transport unit helper; this comparison never sees the wire codec"
	return err == ErrBoom
}
