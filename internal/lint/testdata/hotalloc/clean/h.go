// Package clean is hotalloc testdata: the unannotated twin of every flagged
// pattern, plus the hot-path spellings the analyzer must accept.
package clean

import "fmt"

// unannotated functions may allocate freely — the directive opts in.
func unannotated(names []string) string {
	out := ""
	for _, n := range names {
		out += fmt.Sprintf(",%s", n)
	}
	return out
}

// preallocated appends into a capacity-hinted slice: the pattern the lint
// pushes authors toward.
//
//lint:hotpath
func preallocated(n int) []int {
	acc := make([]int, 0, n)
	for i := 0; i < n; i++ {
		acc = append(acc, i)
	}
	return acc
}

// reusedBuffer appends bytes instead of concatenating strings.
//
//lint:hotpath
func reusedBuffer(buf []byte, names []string) []byte {
	for _, n := range names {
		buf = append(buf, n...)
	}
	return buf
}

// errorfOnColdBranch: fmt.Errorf stays legal — hot functions latch errors on
// cold failure paths, and banning it would just push authors to concat.
//
//lint:hotpath
func errorfOnColdBranch(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n)
	}
	return nil
}

// hoistedClosure takes the loop variable as an argument instead of
// capturing it.
//
//lint:hotpath
func hoistedClosure(xs []int) {
	f := func(x int) { _ = x * 2 }
	for _, x := range xs {
		f(x)
	}
}

// justified keeps a deliberate allocation with a reason.
//
//lint:hotpath
func justified(id int) string {
	//lint:allow hotalloc "debug-only label; compiled out of release profiles"
	return fmt.Sprintf("instance-%d", id)
}

// constConcat folds at compile time; no per-iteration allocation.
//
//lint:hotpath
func constConcat(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		const tag = "x" + "y"
		s = tag
	}
	return s
}
