// Package flagged is hotalloc testdata: every function below is annotated
// //lint:hotpath and trips one of the allocation patterns the analyzer
// rejects on the zero-alloc event path.
package flagged

import "fmt"

// sprintInHotBody builds a string with fmt on the hot path.
//
//lint:hotpath
func sprintInHotBody(id int) string {
	return fmt.Sprintf("instance-%d", id) // want "fmt.Sprintf in hot path sprintInHotBody allocates a string per call"
}

// sprintVariants: every fmt string-builder counts, not just Sprintf.
//
//lint:hotpath
func sprintVariants(v any) string {
	s := fmt.Sprint(v)   // want "fmt.Sprint in hot path"
	s += fmt.Sprintln(v) // want "fmt.Sprintln in hot path"
	return s
}

// concatInLoop allocates a fresh string per iteration.
//
//lint:hotpath
func concatInLoop(names []string) string {
	out := ""
	for _, n := range names {
		out = out + "," + n // want "string concatenation inside a loop in hot path concatInLoop"
	}
	return out
}

// plusAssignInLoop is the same allocation spelled as +=.
//
//lint:hotpath
func plusAssignInLoop(names []string) string {
	var out string
	for _, n := range names {
		out += n // want "string .= inside a loop in hot path plusAssignInLoop"
	}
	return out
}

// appendColdSlice grows a never-preallocated local a doubling at a time.
//
//lint:hotpath
func appendColdSlice(n int) []int {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i) // want "append to acc inside a loop in hot path appendColdSlice"
	}
	return acc
}

// appendEmptyLiteral: `x := []T{}` and `make([]T, 0)` are cold too.
//
//lint:hotpath
func appendEmptyLiteral(n int) []int {
	acc := []int{}
	more := make([]int, 0)
	for i := 0; i < n; i++ {
		acc = append(acc, i)     // want "append to acc inside a loop"
		more = append(more, i*2) // want "append to more inside a loop"
	}
	return append(acc, more...)
}

// captureLoopVar forces a per-iteration heap allocation for the closure.
//
//lint:hotpath
func captureLoopVar(fns []func(int), xs []int) {
	for _, x := range xs {
		f := func(scale int) { _ = x * scale } // want "closure in hot path captureLoopVar captures loop variable x"
		f(2)
	}
	for i := 0; i < len(xs); i++ {
		fns = append(fns, func(int) { _ = xs[i] }) // want "captures loop variable i"
	}
}
