package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestBuslayerCoreMustUseBusSeam(t *testing.T) {
	linttest.Run(t, lint.Buslayer(lint.DefaultConfig()), "taopt/internal/core", "testdata/buslayer/core")
}

func TestBuslayerObsIsALeaf(t *testing.T) {
	linttest.Run(t, lint.Buslayer(lint.DefaultConfig()), "taopt/internal/obs", "testdata/buslayer/obs")
}

func TestBuslayerUngovernedPackageIsFree(t *testing.T) {
	// Cross-layer imports under a tree with no layer rule: no findings.
	// Only cmd/ trees stay ungoverned now — layercover demands a rule for
	// everything under internal/.
	linttest.Run(t, lint.Buslayer(lint.DefaultConfig()), "taopt/cmd/freebird", "testdata/buslayer/free")
}

func TestBuslayerScenarioCompilesConfigsOnly(t *testing.T) {
	// The scenario compiler may reach app, faults and sim — the config types
	// it lowers documents into — but never the transport or the harness that
	// consumes its output.
	linttest.Run(t, lint.Buslayer(lint.DefaultConfig()), "taopt/internal/scenario", "testdata/buslayer/scenario")
}

func TestBuslayerWireIsNarrowerThanBus(t *testing.T) {
	// bus/wire carries its own longest-match rule: the parent seam and the
	// base types are fine, but faults — allowed to bus itself — is not.
	linttest.Run(t, lint.Buslayer(lint.DefaultConfig()), "taopt/internal/bus/wire", "testdata/buslayer/wire")
}
