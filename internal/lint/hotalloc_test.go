package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestHotallocFlagsAnnotatedFunctions(t *testing.T) {
	linttest.Run(t, lint.Hotalloc(), "taopt/internal/core", "testdata/hotalloc/flagged")
}

func TestHotallocIgnoresUnannotatedAndPreallocated(t *testing.T) {
	linttest.Run(t, lint.Hotalloc(), "taopt/internal/core", "testdata/hotalloc/clean")
}
