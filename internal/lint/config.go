package lint

import "strings"

// Config scopes the analyzers to package trees. All matching is by import
// path: an entry matches the package itself and any subpackage.
type Config struct {
	// ModulePrefix is the module path plus a trailing slash; imports
	// outside it (stdlib) are never layering violations.
	ModulePrefix string
	// Deterministic lists the package trees under the determinism
	// contract: virtual clock only, seeded RNG only.
	Deterministic []string
	// WalltimeAllowed lists packages exempt from the walltime analyzer
	// even though they sit inside a Deterministic tree (internal/cli
	// measures real profiling durations for the operator).
	WalltimeAllowed []string
	// RandAllowed is the equivalent exemption list for globalrand.
	RandAllowed []string
	// Layers is the depguard table the buslayer analyzer enforces.
	Layers []LayerRule
}

// LayerRule pins the module-internal imports one package tree may use.
// Imports into the package's own subtree are always allowed; everything
// else inside the module must appear in Allow.
type LayerRule struct {
	// Pkg is the governed package tree.
	Pkg string
	// Allow lists the permitted module-internal import trees.
	Allow []string
	// Hint explains the intended seam when the rule fires.
	Hint string
}

// DefaultConfig returns the contract this repository ships with. The
// layering table mirrors DESIGN.md §10: sim/ui are the base, obs and the
// instance-side packages (device, tools, toller) sit in the middle, bus is
// the only seam between the coordinator and the instances, and core knows
// nothing about how commands are executed.
func DefaultConfig() *Config {
	return &Config{
		ModulePrefix: "taopt/",
		Deterministic: []string{
			"taopt/internal",
		},
		WalltimeAllowed: []string{
			// Operator-facing profiling (-cpuprofile wall timing) is
			// wall-clock by nature and never feeds run results.
			"taopt/internal/cli",
		},
		RandAllowed: nil,
		Layers: []LayerRule{
			{
				Pkg:   "taopt/internal/sim",
				Allow: nil,
				Hint:  "sim is the deterministic kernel every layer builds on; it imports nothing from the module",
			},
			{
				Pkg:   "taopt/internal/ui",
				Allow: nil,
				Hint:  "ui is a pure model shared by every layer; it imports nothing from the module",
			},
			{
				Pkg:   "taopt/internal/coverage",
				Allow: nil,
				Hint:  "coverage is a pure accumulator; it imports nothing from the module",
			},
			{
				Pkg:   "taopt/internal/cli",
				Allow: nil,
				Hint:  "cli holds leaf process helpers shared by the binaries; it imports nothing from the module",
			},
			{
				Pkg:   "taopt/internal/trace",
				Allow: []string{"taopt/internal/sim", "taopt/internal/ui"},
				Hint:  "trace events are plain data moved over the bus; they may reference only the base types",
			},
			{
				Pkg: "taopt/internal/trace/bin",
				Allow: []string{
					"taopt/internal/obs", "taopt/internal/sim",
					"taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "the binary trace codec serialises trace events and telemetry records; the Run adapter lives in export, so bin must never import export or harness",
			},
			{
				Pkg: "taopt/internal/corpus",
				Allow: []string{
					"taopt/internal/obs", "taopt/internal/sim",
					"taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "corpus analytics stream binary traces (trace/bin) only; aggregating over exports or re-running the harness defeats the one-pass design",
			},
			{
				Pkg:   "taopt/internal/crash",
				Allow: []string{"taopt/internal/sim"},
				Hint:  "crash modeling depends only on the sim kernel",
			},
			{
				Pkg:   "taopt/internal/faults",
				Allow: []string{"taopt/internal/sim"},
				Hint:  "fault plans are applied by the bus decorator; faults itself depends only on the sim kernel",
			},
			{
				Pkg:   "taopt/internal/app",
				Allow: []string{"taopt/internal/sim", "taopt/internal/ui"},
				Hint:  "app models depend only on the base types",
			},
			{
				Pkg:   "taopt/internal/scenario",
				Allow: []string{"taopt/internal/app", "taopt/internal/faults", "taopt/internal/sim"},
				Hint:  "scenario compiles data into app/faults/sim config types; it must never import device, bus or harness — the harness lowers compiled campaigns, not the other way around",
			},
			{
				Pkg:   "taopt/internal/apps",
				Allow: []string{"taopt/internal/app", "taopt/internal/scenario"},
				Hint:  "the catalog compiles embedded scenario files into app models",
			},
			{
				Pkg:   "taopt/internal/graph",
				Allow: []string{"taopt/internal/sim", "taopt/internal/trace", "taopt/internal/ui"},
				Hint:  "graph analysis consumes traces and base types only",
			},
			{
				Pkg:   "taopt/internal/obs",
				Allow: []string{"taopt/internal/sim", "taopt/internal/trace", "taopt/internal/ui"},
				Hint:  "obs is a leaf the whole system reports into; it must not import anything above the base types",
			},
			{
				Pkg:   "taopt/internal/metrics",
				Allow: []string{"taopt/internal/coverage", "taopt/internal/sim", "taopt/internal/ui"},
				Hint:  "paper metrics are pure functions of run data",
			},
			{
				Pkg: "taopt/internal/device",
				Allow: []string{
					"taopt/internal/app", "taopt/internal/coverage", "taopt/internal/crash",
					"taopt/internal/sim", "taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "the device farm is instance-side; it must not reach up into coordination (bus, core, harness)",
			},
			{
				Pkg: "taopt/internal/toller",
				Allow: []string{
					"taopt/internal/app", "taopt/internal/device",
					"taopt/internal/sim", "taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "the tool driver is instance-side; it must not reach up into coordination (bus, core, harness)",
			},
			{
				Pkg: "taopt/internal/tools",
				Allow: []string{
					"taopt/internal/app", "taopt/internal/device", "taopt/internal/sim",
					"taopt/internal/toller", "taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "testing tools are instance-side; they must not reach up into coordination (bus, core, harness)",
			},
			{
				Pkg: "taopt/internal/bus",
				Allow: []string{
					"taopt/internal/device", "taopt/internal/faults",
					"taopt/internal/sim", "taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "bus is the coordination seam; it bridges down to instances and must not import the layers that ride on it",
			},
			{
				Pkg: "taopt/internal/bus/wire",
				Allow: []string{
					"taopt/internal/bus",
					"taopt/internal/sim", "taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "the wire framing serialises bus traffic and nothing else; fault injection composes over it via bus.WithFaults, never inside it",
			},
			{
				Pkg: "taopt/internal/core",
				Allow: []string{
					"taopt/internal/bus", "taopt/internal/graph", "taopt/internal/obs",
					"taopt/internal/sim", "taopt/internal/toller", "taopt/internal/trace",
					"taopt/internal/ui",
				},
				Hint: "the coordinator talks to instances only through bus.Sender/bus.Executor; importing device or harness shortcuts the PR-2 seam",
			},
			{
				Pkg: "taopt/internal/harness",
				Allow: []string{
					"taopt/internal/app", "taopt/internal/apps", "taopt/internal/bus",
					"taopt/internal/core", "taopt/internal/coverage", "taopt/internal/crash",
					"taopt/internal/device", "taopt/internal/faults", "taopt/internal/graph",
					"taopt/internal/metrics", "taopt/internal/obs", "taopt/internal/scenario",
					"taopt/internal/sim", "taopt/internal/toller", "taopt/internal/tools",
					"taopt/internal/trace", "taopt/internal/ui",
				},
				Hint: "the harness is the top-of-stack run executor wiring every layer together; only export/report and the binaries sit above it — it must never import those, or the lint/corpus toolchain",
			},
			{
				Pkg: "taopt/internal/export",
				Allow: []string{
					"taopt/internal/bus", "taopt/internal/core", "taopt/internal/harness",
					"taopt/internal/obs", "taopt/internal/sim", "taopt/internal/trace",
					"taopt/internal/ui",
				},
				Hint: "export renders and replays finished runs; it reads the run-side layers but only the binaries sit above it",
			},
			{
				Pkg: "taopt/internal/report",
				Allow: []string{
					"taopt/internal/faults", "taopt/internal/harness", "taopt/internal/metrics",
					"taopt/internal/obs", "taopt/internal/sim",
				},
				Hint: "report renders experiment tables from harness results; it never reaches below the harness",
			},
			{
				Pkg: "taopt/internal/service",
				Allow: []string{
					"taopt/internal/export", "taopt/internal/harness",
					"taopt/internal/report", "taopt/internal/scenario",
				},
				Hint: "the campaign service queues scenario runs onto the harness and serves export/report renderings; it must never reach below the harness seam — the deterministic core stays untouched behind the API",
			},
			{
				Pkg:   "taopt/internal/lint",
				Allow: nil,
				Hint:  "the lint suite analyzes the module from outside; it must not import the code it checks",
			},
		},
	}
}

// matches reports whether pkg is tree or sits inside it.
func matches(pkg, tree string) bool {
	return pkg == tree || strings.HasPrefix(pkg, tree+"/")
}

func matchesAny(pkg string, trees []string) bool {
	for _, t := range trees {
		if matches(pkg, t) {
			return true
		}
	}
	return false
}

// deterministic reports whether pkg is under the determinism contract.
func (c *Config) deterministic(pkg string) bool {
	return matchesAny(pkg, c.Deterministic)
}

// layerRule returns the layering rule governing pkg, or nil. The most
// specific (longest) matching tree wins, so a subtree may carry a stricter
// rule than its parent — bus/wire is narrower than bus.
func (c *Config) layerRule(pkg string) *LayerRule {
	var best *LayerRule
	for i := range c.Layers {
		r := &c.Layers[i]
		if matches(pkg, r.Pkg) && (best == nil || len(r.Pkg) > len(best.Pkg)) {
			best = r
		}
	}
	return best
}
