// Package linttest is an analysistest-style harness for the taoptvet
// analyzers: it type-checks a testdata directory as a package with a
// chosen (synthetic) import path and compares the analyzer's findings
// against `// want "regexp"` comments in the sources.
//
// The import path matters because several analyzers are path-scoped — a
// testdata tree checked as taopt/internal/core exercises the deterministic
// rules, while the same code checked as taopt/internal/cli must stay
// silent. Expectations are per line: every finding must match a want
// pattern on its line, and every want pattern must be matched by at least
// one finding.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"taopt/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run checks dir as a package imported as pkgpath, runs the analyzer, and
// reports mismatches against the // want comments through t.
func Run(t *testing.T, a *lint.Analyzer, pkgpath, dir string) {
	t.Helper()
	findings, err := Analyze(pkgpath, dir, a)
	if err != nil {
		t.Fatalf("analyzing %s as %s: %v", dir, pkgpath, err)
	}
	wants := collectWants(t, dir)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// Analyze type-checks dir as a package imported as pkgpath and runs the
// given analyzers over it, returning the surviving findings. Unlike Run it
// returns failures (unparseable sources, type-check errors, analyzer
// errors) instead of reporting through a testing.T, so harness self-tests
// can assert that bad input produces a clear error rather than a panic.
func Analyze(pkgpath, dir string, as ...*lint.Analyzer) ([]lint.Finding, error) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		return nil, fmt.Errorf("locating module root: %w", err)
	}
	loader := lint.NewLoader(root)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(loader.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := loader.CheckFiles(pkgpath, files)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s as %s: %w", dir, pkgpath, err)
	}
	findings, err := lint.Analyze([]*lint.Package{pkg}, as)
	if err != nil {
		return nil, fmt.Errorf("analyzing %s: %w", dir, err)
	}
	return findings, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts // want "..." expectations. Multiple quoted
// patterns on one line each become an expectation for that line.
func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range splitQuoted(m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// splitQuoted returns the contents of each double-quoted segment of s.
// Want patterns in this repo avoid escaped quotes, so a simple scan does.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		s = s[start+1:]
		end := strings.IndexByte(s, '"')
		if end < 0 {
			return out
		}
		out = append(out, s[:end])
		s = s[end+1:]
	}
}
