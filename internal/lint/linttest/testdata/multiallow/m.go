// Package multiallow is harness self-test data: one line violates two
// analyzers at once (walltime via time.Now, globalrand via the package-level
// rand constructors) and carries one suppression per analyzer — a trailing
// directive and an above-line directive must stack, not mask each other.
package multiallow

import (
	"math/rand"
	"time"
)

func seedFromClock() *rand.Rand {
	//lint:allow globalrand "harness self-test: stacked with the walltime directive on the line below"
	return rand.New(rand.NewSource(time.Now().UnixNano())) //lint:allow walltime "harness self-test: same line as the globalrand violation"
}
