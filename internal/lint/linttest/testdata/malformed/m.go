// Package malformed is harness self-test data: every directive below is a
// broken //lint:allow form and must surface as a "lint" finding — the
// escape hatch requires saying why.
package malformed

func bareDirective() int {
	//lint:allow walltime
	return 1
}

func missingQuotes() int {
	//lint:allow walltime because reasons
	return 2
}

func emptyJustification() int {
	//lint:allow walltime ""
	return 3
}

func unknownShape() int {
	//lint:allow
	return 4
}
