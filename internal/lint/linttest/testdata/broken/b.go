// Package broken is harness self-test data: it parses but does not
// type-check. The harness must surface a clear type-checking error, not
// panic inside an analyzer that assumes resolved types.
package broken

func f() int {
	return undefinedIdentifier
}
