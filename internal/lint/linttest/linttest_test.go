package linttest_test

import (
	"strings"
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

// TestMultiAnalyzerSuppressionOnOneLine runs two analyzers over a line that
// violates both and carries one //lint:allow per analyzer (one trailing, one
// on the line above): every finding must be suppressed, and neither
// directive may shadow the other.
func TestMultiAnalyzerSuppressionOnOneLine(t *testing.T) {
	cfg := lint.DefaultConfig()
	findings, err := linttest.Analyze("taopt/internal/core", "testdata/multiallow",
		lint.Walltime(cfg), lint.Globalrand(cfg))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding survived stacked suppressions: %s", f)
	}
}

// TestMalformedAllowDirectives feeds every broken //lint:allow shape through
// the harness: each must surface as a "lint" finding, and a bare directive
// must not silently suppress anything.
func TestMalformedAllowDirectives(t *testing.T) {
	cfg := lint.DefaultConfig()
	findings, err := linttest.Analyze("taopt/internal/core", "testdata/malformed", lint.Walltime(cfg))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	const wantMalformed = 4
	var malformed int
	for _, f := range findings {
		if f.Analyzer != "lint" {
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
			continue
		}
		if !strings.Contains(f.Message, "malformed or unjustified") {
			t.Errorf("malformed directive produced unexpected message: %s", f)
		}
		malformed++
	}
	if malformed != wantMalformed {
		t.Errorf("got %d malformed-directive findings, want %d", malformed, wantMalformed)
	}
}

// TestTypeCheckFailureIsAnError hands the harness a package that parses but
// does not type-check: Analyze must return a descriptive error — naming the
// failure — rather than panicking inside an analyzer.
func TestTypeCheckFailureIsAnError(t *testing.T) {
	cfg := lint.DefaultConfig()
	_, err := linttest.Analyze("taopt/internal/core", "testdata/broken", lint.Walltime(cfg))
	if err == nil {
		t.Fatal("Analyze accepted a package that does not type-check")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q does not say the package failed to type-check", err)
	}
	if !strings.Contains(err.Error(), "undefinedIdentifier") && !strings.Contains(err.Error(), "undefined") {
		t.Errorf("error %q does not name the type-check failure", err)
	}
}

// TestMissingDirIsAnError pins the harness's behavior on a path typo: a
// clear error, not an empty finding list that would let a broken test pass.
func TestMissingDirIsAnError(t *testing.T) {
	cfg := lint.DefaultConfig()
	_, err := linttest.Analyze("taopt/internal/core", "testdata/no-such-dir", lint.Walltime(cfg))
	if err == nil {
		t.Fatal("Analyze accepted a nonexistent testdata directory")
	}
}
