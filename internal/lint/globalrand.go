package lint

import (
	"go/ast"
	"go/types"
)

// randPkgs are the stdlib generators deterministic packages must not touch.
// math/rand's global functions share one process-wide source, and both its
// and math/rand/v2's algorithms may change across Go releases; the
// reproduction instead derives every stream from internal/sim/rng.go, which
// is seeded per (campaign, instance) and stable by construction.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Globalrand forbids package-level math/rand functions (the shared global
// source) and its source constructors in deterministic packages, pointing
// the author at the per-instance RNG instead. Methods on an existing
// *rand.Rand value are not flagged: the violation is minting randomness
// outside the sim seed tree, not consuming a value someone handed you.
func Globalrand(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "globalrand",
		Doc: "forbid math/rand and math/rand/v2 package-level functions in deterministic packages; " +
			"randomness comes from the per-instance sim.RNG so every stream derives from the campaign seed",
	}
	a.Run = func(pass *Pass) error {
		path := pass.Pkg.Path()
		if !cfg.deterministic(path) || matchesAny(path, cfg.RandAllowed) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // method on a rand value, not the global source
				}
				pass.Reportf(id.Pos(),
					"%s.%s in deterministic package %s; derive randomness from the per-instance RNG "+
						"(internal/sim/rng.go) so streams are seeded and stable across Go releases",
					fn.Pkg().Path(), fn.Name(), path)
				return true
			})
		}
		return nil
	}
	return a
}
