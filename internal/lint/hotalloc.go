package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function as allocation-governed. It is a plain
// doc-comment line, not a //lint:allow form, because it opts a function
// *into* a check rather than out of one.
const hotpathDirective = "lint:hotpath"

// sprintFuncs are the fmt string-builders that allocate on every call. The
// error-constructing fmt.Errorf stays legal: hot functions here latch errors
// on cold failure paths, and banning Errorf would just push authors to
// errors.New+concat.
var sprintFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

// Hotalloc is the event-path allocation lint: inside functions annotated
// //lint:hotpath (the SpaceTracker Observe path, the binary trace
// Writer/Reader record codecs, the bus Publish/Send path) it flags the
// allocation patterns that dominated the PR-5 profiles — fmt string
// building, string concatenation in loops, closures capturing per-iteration
// loop variables, and appends into never-preallocated local slices inside
// loops. It is AST-level and intraprocedural: the annotation governs the
// function body, not its callees.
func Hotalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc: "flag allocation patterns (fmt.Sprint*, loop string concat, loop-variable captures, " +
			"append without prealloc) inside functions annotated //lint:hotpath — the zero-alloc event path",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !isHotpath(fn) {
					continue
				}
				checkHotFunc(pass, fn)
			}
		}
		return nil
	}
	return a
}

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	// Local slice variables never allocated with a capacity: `var s []T`,
	// `s := []T{}`, or `s := make([]T, 0)`. Appending to one inside a loop
	// grows it a doubling at a time — the prealloc the lint demands.
	coldSlices := collectColdSlices(pass, fn.Body)

	// fmt string builders anywhere in the hot body.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
			return true
		}
		if sprintFuncs[callee.Name()] {
			pass.Reportf(call.Pos(),
				"fmt.%s in hot path %s allocates a string per call; build into a reused buffer "+
					"(or annotate //lint:allow hotalloc \"why\" for a cold branch)",
				callee.Name(), name)
		}
		return true
	})

	// Loop-scoped checks.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		loopVars := make(map[types.Object]bool)
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			body = n.Body
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
		default:
			return true
		}
		checkHotLoop(pass, name, body, loopVars, coldSlices)
		return true
	})
}

// checkHotLoop applies the per-iteration checks to one loop body.
func checkHotLoop(pass *Pass, fname string, body *ast.BlockStmt, loopVars map[types.Object]bool, coldSlices map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n.X) && !isConstExpr(pass, n) {
				pass.Reportf(n.Pos(),
					"string concatenation inside a loop in hot path %s allocates per iteration; "+
						"append into a reused []byte instead", fname)
				return false // one report per concat chain
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(),
					"string += inside a loop in hot path %s allocates per iteration; "+
						"append into a reused []byte instead", fname)
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.TypesInfo.Uses[id]; obj != nil && coldSlices[obj] {
					pass.Reportf(n.Pos(),
						"append to %s inside a loop in hot path %s, but %s was declared without capacity; "+
							"preallocate with make(..., 0, n)", id.Name, fname, id.Name)
				}
			}
		case *ast.FuncLit:
			for obj := range loopVars {
				if usesObject(pass, n.Body, obj) {
					pass.Reportf(n.Pos(),
						"closure in hot path %s captures loop variable %s; per-iteration captures force a "+
							"heap allocation each pass — hoist the closure or pass the value as an argument",
						fname, obj.Name())
					break
				}
			}
		}
		return true
	})
}

// collectColdSlices finds function-local slice variables declared without a
// capacity hint.
func collectColdSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	cold := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gen, ok := n.Decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					obj := pass.TypesInfo.Defs[id]
					if obj != nil && isSliceType(obj.Type()) {
						cold[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if isZeroCapSliceExpr(pass, rhs) {
					cold[obj] = true
				}
			}
		}
		return true
	})
	return cold
}

// isZeroCapSliceExpr reports whether e builds an empty slice with no
// capacity: `[]T{}` or `make([]T, 0)` (two-argument make).
func isZeroCapSliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0 && isSliceType(pass.TypesInfo.Types[e].Type)
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
		if !ok || b.Name() != "make" || len(e.Args) != 2 {
			return false
		}
		tv, ok := pass.TypesInfo.Types[e.Args[1]]
		return ok && tv.Value != nil && tv.Value.ExactString() == "0"
	}
	return false
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func usesObject(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
