package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestWalltimeFlagsDeterministicPackage(t *testing.T) {
	linttest.Run(t, lint.Walltime(lint.DefaultConfig()), "taopt/internal/core", "testdata/walltime/det")
}

func TestWalltimeAllowsExemptPackage(t *testing.T) {
	// Same kind of code, checked under the exempted cli path: no findings.
	linttest.Run(t, lint.Walltime(lint.DefaultConfig()), "taopt/internal/cli", "testdata/walltime/cli")
}

func TestWalltimeIgnoresNonDeterministicTree(t *testing.T) {
	linttest.Run(t, lint.Walltime(lint.DefaultConfig()), "taopt/cmd/taopt", "testdata/walltime/cli")
}
