// Package lint is taoptvet's analysis framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis surface plus the
// analyzers that enforce this repository's determinism, layering and
// hot-path contracts (see DESIGN.md §10):
//
//   - walltime: deterministic packages must drive runs from sim.Clock
//     virtual time, never the process wall clock.
//   - globalrand: deterministic packages must draw randomness from the
//     per-instance RNG in internal/sim/rng.go, never math/rand.
//   - maporder: output paths must never depend on Go map iteration order.
//   - buslayer: the coordinator talks to instances only through the bus
//     seam; imports that shortcut the layering are rejected.
//   - exhaustive: switches over module kind enums (wire frames, commands,
//     binary trace records, faults) must name every const-block member.
//   - sentinelerr: sentinel errors are classified with errors.Is, never
//     ==/!=, because the wire codec re-frames them by wrapping.
//   - hotalloc: functions annotated //lint:hotpath reject the allocation
//     patterns that dominate the event-path profiles.
//   - layercover: every internal/ package must be covered by a buslayer
//     rule, so new packages cannot ship unconstrained.
//
// The framework is intentionally API-compatible in spirit with go/analysis
// (Analyzer, Pass, Diagnostic) so the suite can migrate to the real
// x/tools multichecker if the dependency ever becomes available; it is
// hand-rolled here because the build must work fully offline with zero
// module dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `taoptvet -help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic. Suppression via //lint:allow
	// directives happens behind this callback, so analyzers report
	// every violation unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one violation found by an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position mapped through the file
// set and tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// An Allow is one parsed, well-formed //lint:allow directive — the audit
// record `taoptvet -allows` lists and TestRepoAllowBudget pins.
type Allow struct {
	// Analyzer is the suppressed analyzer's name.
	Analyzer string
	// Justification is the mandatory quoted why-string.
	Justification string
	// Pos locates the directive comment.
	Pos token.Position
}

var allowRE = regexp.MustCompile(`^lint:allow\s+([a-z][a-z0-9-]*)(?:\s+"((?:[^"\\]|\\.)*)")?\s*$`)

// scanAllows walks one package's comments for //lint:allow directives,
// calling report for each malformed one (the escape hatch requires saying
// why) and found for each well-formed one.
func scanAllows(p *Package, report func(Finding), found func(Allow)) {
	for _, file := range p.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(text)
				if m == nil || m[2] == "" {
					report(Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  `malformed or unjustified //lint:allow directive; the form is //lint:allow <analyzer> "why this exception is safe"`,
					})
					continue
				}
				found(Allow{Analyzer: m[1], Justification: m[2], Pos: pos})
			}
		}
	}
}

// collectAllows indexes a package's well-formed allow directives by file and
// line for suppression lookup.
func collectAllows(p *Package, report func(Finding)) map[string][]Allow {
	allows := make(map[string][]Allow)
	scanAllows(p, report, func(a Allow) {
		key := allowKey(a.Pos.Filename, a.Pos.Line)
		allows[key] = append(allows[key], a)
	})
	return allows
}

// ModuleAllows collects every well-formed //lint:allow directive across pkgs
// in file/line order — the suppression audit. Malformed directives are
// returned separately as findings.
func ModuleAllows(pkgs []*Package) ([]Allow, []Finding) {
	var allows []Allow
	var malformed []Finding
	for _, p := range pkgs {
		scanAllows(p, func(f Finding) { malformed = append(malformed, f) }, func(a Allow) {
			allows = append(allows, a)
		})
	}
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return allows, malformed
}

func allowKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// suppressed reports whether a diagnostic at pos from the named analyzer is
// covered by an allow directive on the same line or the line directly above.
func suppressed(allows map[string][]Allow, analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range allows[allowKey(pos.Filename, line)] {
			if a.Analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// Analyze runs every analyzer over every package and returns the surviving
// findings sorted by position then analyzer name, so output is byte-stable
// across runs — the suite holds itself to the contract it enforces.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, p := range pkgs {
		allows := collectAllows(p, func(f Finding) { findings = append(findings, f) })
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				if suppressed(allows, a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, p.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Analyzers returns the full taoptvet suite configured by cfg.
func Analyzers(cfg *Config) []*Analyzer {
	return []*Analyzer{
		Walltime(cfg),
		Globalrand(cfg),
		Maporder(),
		Buslayer(cfg),
		Exhaustive(cfg),
		Sentinelerr(cfg),
		Hotalloc(),
		Layercover(cfg),
	}
}
