package lint

import (
	"fmt"
	"strings"
)

// Layercover is the layering drift guard: every package under the module's
// internal/ tree must be governed by a buslayer rule (its own, or an
// enclosing tree's). Without this check a new package sails through buslayer
// unconstrained — buslayer only restricts packages the table names, so
// "forgot to add a rule" silently means "may import anything", which is how
// layering tables rot as the package count climbs.
func Layercover(cfg *Config) *Analyzer {
	governed := strings.TrimSuffix(cfg.ModulePrefix, "/") + "/internal"
	a := &Analyzer{
		Name: "layercover",
		Doc: "require every internal/ package to be covered by a buslayer rule so new packages " +
			"declare their allowed imports instead of defaulting to unconstrained",
	}
	a.Run = func(pass *Pass) error {
		path := pass.Pkg.Path()
		if !matches(path, governed) {
			return nil
		}
		if cfg.layerRule(path) != nil {
			return nil
		}
		if len(pass.Files) == 0 {
			return nil
		}
		pass.Reportf(pass.Files[0].Package,
			"package %s has no buslayer layering rule; add a LayerRule for it (or an enclosing tree) "+
				"to DefaultConfig in internal/lint/config.go so its module-internal imports are constrained",
			path)
		return nil
	}
	return a
}

// StaleLayerRules is the reverse direction of the drift guard, run over the
// full `go list ./...` package set rather than per package: it returns one
// message per layer rule whose governed tree no longer matches any loaded
// package — a rule left behind by a rename or deletion. cmd/taoptvet applies
// it on whole-module runs and TestRepoLayerTableFresh pins it in CI.
func StaleLayerRules(cfg *Config, pkgPaths []string) []string {
	var stale []string
	for _, r := range cfg.Layers {
		live := false
		for _, p := range pkgPaths {
			if matches(p, r.Pkg) {
				live = true
				break
			}
		}
		if !live {
			stale = append(stale, fmt.Sprintf(
				"layer rule for %s matches no package in the module; delete the rule or fix its tree path", r.Pkg))
		}
	}
	return stale
}
