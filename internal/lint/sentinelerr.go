package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Sentinelerr forbids identity comparison (`==`/`!=`, or a `switch err`
// case) against the module's sentinel error values (bus.ErrFarmBusy,
// bus.ErrTimeout, bus.ErrNotBound, bin.ErrCorrupt, ...). A sentinel that
// crosses the wire codec comes back as a *different* value wrapping the
// sentinel — the reply codec re-frames errors as (class, message) and
// rebuilds them with errors.Is-compatible wrapping — so identity holds only
// on the Inline transport and silently stops matching on the framed one.
// errors.Is is the only comparison that behaves identically across Inline,
// wire, and replayed-log transports.
func Sentinelerr(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "sentinelerr",
		Doc: "forbid ==/!= (and switch-case) comparison against module sentinel errors; wire re-framing " +
			"rebuilds errors by wrapping, so only errors.Is classifies replies identically on every transport",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, side := range []ast.Expr{n.X, n.Y} {
						if name, ok := sentinelVar(pass, cfg, side); ok {
							pass.Reportf(n.Pos(),
								"%s compared with %s; the wire codec re-frames errors by wrapping the sentinel, "+
									"so identity fails across transports — use errors.Is(err, %s)",
								name, n.Op, name)
							break
						}
					}
				case *ast.SwitchStmt:
					if n.Tag == nil {
						return true
					}
					for _, stmt := range n.Body.List {
						clause, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, expr := range clause.List {
							if name, ok := sentinelVar(pass, cfg, expr); ok {
								pass.Reportf(expr.Pos(),
									"switch case compares against %s by identity; the wire codec re-frames errors "+
										"by wrapping the sentinel — use errors.Is(err, %s)",
									name, name)
							}
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// sentinelVar reports whether e is a use of a module-internal package-level
// `Err*` variable of error type — the sentinel convention this repository
// follows (bus.ErrTimeout, device.ErrFarmBusy, bin.ErrCorrupt). Stdlib
// sentinels stay out of scope: `err == io.EOF` is the blessed idiom of every
// decode loop here, and stdlib errors never cross the wire codec.
func sentinelVar(pass *Pass, cfg *Config, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	if !strings.HasPrefix(v.Pkg().Path()+"/", cfg.ModulePrefix) {
		return "", false
	}
	if v.Parent() != v.Pkg().Scope() {
		return "", false // a local variable that happens to be named ErrFoo
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !types.Implements(v.Type(), errType) && !types.Identical(v.Type(), errType) {
		return "", false
	}
	name := v.Name()
	if v.Pkg().Path() != pass.Pkg.Path() {
		name = v.Pkg().Name() + "." + name
	}
	return name, true
}
