package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, lint.Maporder(), "taopt/internal/example", "testdata/maporder")
}
