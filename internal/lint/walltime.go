package lint

import (
	"go/ast"
	"go/types"
)

// walltimeForbidden lists the package-level functions of time that read or
// wait on the process wall clock. Types (time.Duration), constants
// (time.Second) and formatting helpers stay legal: deterministic packages
// use them for virtual-time arithmetic.
var walltimeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime forbids wall-clock time in deterministic packages. Every result
// in this reproduction is a pure function of (seed, config); a single
// time.Now() in the run path silently breaks run-to-run comparability, so
// deterministic packages must take time from the sim.Clock virtual clock.
func Walltime(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "walltime",
		Doc: "forbid wall-clock time (time.Now, time.Sleep, ...) in deterministic packages; " +
			"runs are driven by the sim.Clock virtual clock so that results are a pure function of the seed",
	}
	a.Run = func(pass *Pass) error {
		path := pass.Pkg.Path()
		if !cfg.deterministic(path) || matchesAny(path, cfg.WalltimeAllowed) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if walltimeForbidden[fn.Name()] {
					pass.Reportf(id.Pos(),
						"wall-clock time.%s in deterministic package %s; use the sim.Clock virtual clock "+
							"(or annotate //lint:allow walltime \"why\" if wall time is genuinely required)",
						fn.Name(), path)
				}
				return true
			})
		}
		return nil
	}
	return a
}
