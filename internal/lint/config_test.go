package lint

import "testing"

func TestConfigMatching(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		pkg  string
		det  bool
		rule string // governing layer rule's Pkg, "" for none
	}{
		{"taopt/internal/core", true, "taopt/internal/core"},
		// Longest-match: the wire subtree carries its own, stricter rule.
		{"taopt/internal/bus", true, "taopt/internal/bus"},
		{"taopt/internal/bus/wire", true, "taopt/internal/bus/wire"},
		{"taopt/internal/sim", true, "taopt/internal/sim"},
		// Subtree inheritance: fleet is governed by the harness rule.
		{"taopt/internal/harness", true, "taopt/internal/harness"},
		{"taopt/internal/harness/fleet", true, "taopt/internal/harness"},
		{"taopt/internal/cli", true, "taopt/internal/cli"},
		{"taopt/cmd/taopt", false, ""},
		{"taopt", false, ""},
		// Prefix matching is per path segment: a hypothetical simext
		// package is not inside the sim tree.
		{"taopt/internal/simext", true, ""},
	}
	for _, c := range cases {
		if got := cfg.deterministic(c.pkg); got != c.det {
			t.Errorf("deterministic(%q) = %v, want %v", c.pkg, got, c.det)
		}
		rule := cfg.layerRule(c.pkg)
		switch {
		case rule == nil && c.rule != "":
			t.Errorf("layerRule(%q) = nil, want %q", c.pkg, c.rule)
		case rule != nil && rule.Pkg != c.rule:
			t.Errorf("layerRule(%q) = %q, want %q", c.pkg, rule.Pkg, c.rule)
		}
	}
}

func TestWalltimeExemptionIsScoped(t *testing.T) {
	cfg := DefaultConfig()
	if !matchesAny("taopt/internal/cli", cfg.WalltimeAllowed) {
		t.Fatal("internal/cli must be exempt from walltime")
	}
	if matchesAny("taopt/internal/climate", cfg.WalltimeAllowed) {
		t.Fatal("exemption must not leak to sibling packages by raw prefix")
	}
}
