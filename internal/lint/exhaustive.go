package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces the enum-exhaustiveness contract on the module's
// hand-maintained kind families (wire frame kinds, bus command kinds, binary
// trace record kinds, fault kinds, ...): every `switch` over a module-defined
// `type X int`/`type X string` enum must name every member of its const
// block. A `default` clause does not excuse missing members — a default is
// runtime handling for values that should not occur, while a missing case is
// a codec or dispatcher silently out of sync with the enum, exactly the
// drift class that breaks byte-identical replay. Deliberate catch-alls carry
// a //lint:allow exhaustive "why" on the switch line instead.
func Exhaustive(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "exhaustive",
		Doc: "require switches over module-defined int/string enums (frame kinds, command kinds, record kinds) " +
			"to name every member of the const block; a default does not excuse a missing case",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, cfg, sw)
				return true
			})
		}
		return nil
	}
	return a
}

// enumType resolves t to a module-defined named type with a basic integer
// or string underlying — the shape of this repository's kind enums.
func enumType(cfg *Config, t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(obj.Pkg().Path()+"/", cfg.ModulePrefix) {
		return nil // stdlib enums (reflect.Kind, token.Token) are not ours to police
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	return named
}

// enumMembers returns the constants of the enum declared in its defining
// package, keyed by exact constant value (aliases sharing a value collapse
// into one member). Names joins the aliases for diagnostics.
func enumMembers(named *types.Named) map[string]string {
	scope := named.Obj().Pkg().Scope()
	members := make(map[string]string)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if prev, ok := members[key]; ok {
			members[key] = prev + "/" + name
		} else {
			members[key] = name
		}
	}
	return members
}

func checkSwitch(pass *Pass, cfg *Config, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named := enumType(cfg, tv.Type)
	if named == nil {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return // a one-constant type is not an enum family
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range clause.List {
			cv, ok := pass.TypesInfo.Types[expr]
			if !ok || cv.Value == nil {
				// A non-constant case guard (a variable, a call): coverage
				// cannot be proven statically, so the switch is out of the
				// contract's reach — stay silent rather than guess.
				return
			}
			covered[cv.Value.ExactString()] = true
		}
	}
	var missing []string
	for key, name := range members {
		if !covered[key] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() != pass.Pkg.Path() {
		typeName = pkg.Name() + "." + typeName
	}
	pass.Reportf(sw.Pos(),
		"switch over %s misses %s (%d of %d members); name every member (a default does not "+
			"count as coverage) or annotate //lint:allow exhaustive \"why the catch-all is safe\"",
		typeName, strings.Join(missing, ", "), len(missing), len(members))
}
