package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestSentinelerrFlagsIdentityComparison(t *testing.T) {
	linttest.Run(t, lint.Sentinelerr(lint.DefaultConfig()), "taopt/internal/core", "testdata/sentinelerr/flagged")
}

func TestSentinelerrAcceptsErrorsIsAndStdlib(t *testing.T) {
	linttest.Run(t, lint.Sentinelerr(lint.DefaultConfig()), "taopt/internal/core", "testdata/sentinelerr/clean")
}
