package lint_test

import (
	"strings"
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestLayercoverFlagsUnruledPackage(t *testing.T) {
	linttest.Run(t, lint.Layercover(lint.DefaultConfig()), "taopt/internal/throwaway", "testdata/layercover/throwaway")
}

func TestLayercoverAcceptsRuledPackage(t *testing.T) {
	linttest.Run(t, lint.Layercover(lint.DefaultConfig()), "taopt/internal/core", "testdata/layercover/covered")
}

func TestLayercoverAcceptsSubtreeInheritance(t *testing.T) {
	// bus/wire has its own rule, but any subtree of a ruled tree counts:
	// check a path that only an enclosing rule covers.
	linttest.Run(t, lint.Layercover(lint.DefaultConfig()), "taopt/internal/core/deep/leaf", "testdata/layercover/covered")
}

func TestLayercoverIgnoresPackagesOutsideInternal(t *testing.T) {
	// The binaries under cmd/ are not governed; no rule, no finding.
	linttest.Run(t, lint.Layercover(lint.DefaultConfig()), "taopt/cmd/sometool", "testdata/layercover/covered")
}

func TestStaleLayerRules(t *testing.T) {
	cfg := &lint.Config{
		ModulePrefix: "taopt/",
		Layers: []lint.LayerRule{
			{Pkg: "taopt/internal/core"},
			{Pkg: "taopt/internal/renamed"},
		},
	}
	live := []string{"taopt/internal/core", "taopt/internal/core/sub", "taopt/internal/bus"}
	stale := lint.StaleLayerRules(cfg, live)
	if len(stale) != 1 {
		t.Fatalf("StaleLayerRules = %v, want exactly one message", stale)
	}
	if !strings.Contains(stale[0], "taopt/internal/renamed") {
		t.Fatalf("stale message %q does not name the dead rule", stale[0])
	}
	if got := lint.StaleLayerRules(cfg, append(live, "taopt/internal/renamed/child")); len(got) != 0 {
		t.Fatalf("a rule matching a subpackage must count as live, got %v", got)
	}
}
