package lint

import (
	"sort"
	"strconv"
	"strings"
)

// Buslayer is a depguard-style architecture check: each package tree named
// in the config's layer table may import, from inside the module, only its
// own subtree and the trees its rule allows. The table encodes the PR-2
// seam — core drives instances exclusively through bus.Sender/bus.Executor,
// instance-side packages never reach up into coordination, and obs stays a
// leaf — so a single stray import cannot quietly re-couple the layers.
func Buslayer(cfg *Config) *Analyzer {
	a := &Analyzer{
		Name: "buslayer",
		Doc: "reject imports that violate the transport layering: the coordinator talks to instances " +
			"only through the bus seam, and lower layers never import the layers riding on them",
	}
	a.Run = func(pass *Pass) error {
		path := pass.Pkg.Path()
		rule := cfg.layerRule(path)
		if rule == nil {
			return nil
		}
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				target, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if !strings.HasPrefix(target, cfg.ModulePrefix) {
					continue // stdlib and external imports are not layering
				}
				if matches(target, rule.Pkg) || matchesAny(target, rule.Allow) {
					continue
				}
				allowed := append([]string(nil), rule.Allow...)
				sort.Strings(allowed)
				allowedDesc := strings.Join(allowed, ", ")
				if allowedDesc == "" {
					allowedDesc = "none"
				}
				pass.Reportf(imp.Pos(),
					"%s must not import %s (%s); allowed module imports: %s",
					rule.Pkg, target, rule.Hint, allowedDesc)
			}
		}
		return nil
	}
	return a
}
