package lint_test

import (
	"testing"

	"taopt/internal/lint"
)

// TestRepoIsLintClean runs the full taoptvet suite over the real module —
// the same invocation as the CI step — and demands zero findings, so a
// change that breaks the determinism or layering contract fails `go test`
// even before the lint step runs.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader := lint.NewLoader(root)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the ./... pattern no longer covers the module", len(pkgs))
	}
	findings, err := lint.Analyze(pkgs, lint.Analyzers(lint.DefaultConfig()))
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}

	// The suppression audit rides the same load. Every //lint:allow is a
	// standing exception to the contract, so the count is pinned: adding one
	// means consciously bumping the budget here, with the new justification
	// on record in `taoptvet -allows`.
	const allowBudget = 2 // transport.go pumpUp, replay.go consumeExchange
	allows, malformed := lint.ModuleAllows(pkgs)
	for _, f := range malformed {
		t.Errorf("%s", f)
	}
	if len(allows) != allowBudget {
		for _, a := range allows {
			t.Logf("allow %s:%d: %s %q", a.Pos.Filename, a.Pos.Line, a.Analyzer, a.Justification)
		}
		t.Errorf("module carries %d //lint:allow suppressions, budget is %d; "+
			"audit with `go run ./cmd/taoptvet -allows ./...` and adjust the budget deliberately",
			len(allows), allowBudget)
	}

	// And the layering table must stay fresh: a rule for a renamed or
	// deleted tree is a hole layercover cannot see per-package.
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	for _, msg := range lint.StaleLayerRules(lint.DefaultConfig(), paths) {
		t.Errorf("%s", msg)
	}
}
