package lint_test

import (
	"testing"

	"taopt/internal/lint"
)

// TestRepoIsLintClean runs the full taoptvet suite over the real module —
// the same invocation as the CI step — and demands zero findings, so a
// change that breaks the determinism or layering contract fails `go test`
// even before the lint step runs.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader := lint.NewLoader(root)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the ./... pattern no longer covers the module", len(pkgs))
	}
	findings, err := lint.Analyze(pkgs, lint.Analyzers(lint.DefaultConfig()))
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
