package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sinkMethods are method names that move bytes or events toward an output:
// writers, encoders, the bus, and the decision log. Calling one while
// ranging over a map makes the emitted order follow Go's randomized map
// iteration, which breaks the byte-identical-output guarantee the goldens
// and the CI stability diff rely on.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Encode":      true,
	"EncodeToken": true,
	"Publish":     true,
	"Send":        true,
	"Emit":        true,
	"Append":      true,
}

// Maporder flags `range` over a map whose body feeds an order-sensitive
// sink: appending to a slice that is never subsequently sorted, writing to
// a writer/encoder, fmt printing, string concatenation, channel sends, or
// publishing bus/decision-log events. The blessed pattern is the one
// internal/obs/registry.go uses: collect the keys, sort them, then range
// over the sorted slice.
func Maporder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc: "flag map iteration whose body emits order-sensitive output (appends never sorted, writers, " +
			"encoders, bus events); collect and sort the keys first so output never depends on map order",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var list []ast.Stmt
				switch n := n.(type) {
				case *ast.BlockStmt:
					list = n.List
				case *ast.CaseClause:
					list = n.Body
				case *ast.CommClause:
					list = n.Body
				default:
					return true
				}
				for i, s := range list {
					rng, ok := s.(*ast.RangeStmt)
					if !ok || !isMapRange(pass, rng) {
						continue
					}
					checkMapRange(pass, rng, list[i+1:])
				}
				return true
			})
		}
		return nil
	}
	return a
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body. rest is the remainder of the
// enclosing statement list, where a collect-and-sort pattern would place
// its sort call.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	type appendSink struct {
		pos    token.Pos
		target string
	}
	var appends []appendSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(),
					"string built up while ranging over a map; concatenation order follows random map "+
						"iteration — collect and sort the keys first (see internal/obs/registry.go sortedKeys)")
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				appends = append(appends, appendSink{pos: n.Pos(), target: types.ExprString(n.Lhs[i])})
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send while ranging over a map; delivery order follows random map iteration — "+
					"collect and sort the keys first")
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
				pass.Reportf(n.Pos(),
					"fmt.%s while ranging over a map; output order follows random map iteration — "+
						"collect and sort the keys first (see internal/obs/registry.go sortedKeys)", fn.Name())
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sinkMethods[fn.Name()] {
				pass.Reportf(n.Pos(),
					"%s call while ranging over a map; emission order follows random map iteration — "+
						"collect and sort the keys first (see internal/obs/registry.go sortedKeys)", fn.Name())
			}
		}
		return true
	})
	if len(appends) == 0 {
		return
	}
	sorted := sortedTargets(pass, rng.Body, rest)
	for _, ap := range appends {
		if sorted[ap.target] {
			continue
		}
		pass.Reportf(ap.pos,
			"append to %s while ranging over a map, and %s is never sorted afterwards; element order "+
				"follows random map iteration — sort it before use (see internal/obs/registry.go sortedKeys)",
			ap.target, ap.target)
	}
}

// sortedTargets collects the expressions handed to a sort call either
// inside the range body or later in the enclosing statement list. An
// append whose destination shows up here is the collect-and-sort idiom.
func sortedTargets(pass *Pass, body *ast.BlockStmt, rest []ast.Stmt) map[string]bool {
	sorted := make(map[string]bool)
	record := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		// Anything in sort or slices counts, and so does a local helper
		// whose name says it sorts (sortUint64, sortedKeys, ...).
		isSort := strings.Contains(strings.ToLower(fn.Name()), "sort")
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "sort" {
			isSort = true
		}
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			sorted[types.ExprString(arg)] = true
			// sort.Slice(byName(out), ...)-style wrappers: credit the
			// wrapped expression too.
			if inner, ok := arg.(*ast.CallExpr); ok {
				for _, ia := range inner.Args {
					sorted[types.ExprString(ia)] = true
				}
			}
		}
		return true
	}
	ast.Inspect(body, record)
	for _, s := range rest {
		ast.Inspect(s, record)
	}
	return sorted
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// calleeFunc resolves a call's target to a *types.Func, or nil for
// builtins, conversions and indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
