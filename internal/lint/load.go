package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// meta is the subset of `go list -json` output the loader consumes.
type meta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Loader parses and type-checks packages of the module rooted at Root
// without any dependency beyond the go tool itself: package metadata comes
// from `go list -json -deps` and type information from go/types with an
// importer backed by the same metadata, so everything — including the
// stdlib — is checked from source and works fully offline.
type Loader struct {
	Root string
	Fset *token.FileSet

	metas    map[string]*meta
	pkgs     map[string]*types.Package
	checking map[string]bool
}

// NewLoader returns a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) *Loader {
	return &Loader{
		Root:     root,
		Fset:     token.NewFileSet(),
		metas:    make(map[string]*meta),
		pkgs:     make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goList runs `go list -e -json -deps args...` at the module root and
// merges the resulting package metadata into the loader.
func (l *Loader) goList(args ...string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json", "-deps"}, args...)...)
	cmd.Dir = l.Root
	// Pure-Go file lists: the type checker has no preprocessor, and every
	// package this module touches has a CGO_ENABLED=0 variant.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.String())
	}
	var listed []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(meta)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if _, ok := l.metas[m.ImportPath]; !ok {
			l.metas[m.ImportPath] = m
		}
		listed = append(listed, m.ImportPath)
	}
	return listed, nil
}

// Load lists the packages matching patterns, type-checks them (and,
// transitively, everything they import) and returns them in a stable
// sorted order ready for Analyze.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	// -deps emits dependencies before dependents; checking the module's
	// own packages in that order lets each root reuse the checked types
	// of the roots it imports. The result is re-sorted by import path so
	// analysis order (and therefore output order) is stable.
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, path := range listed {
		m := l.metas[path]
		if m.Standard || seen[path] {
			continue
		}
		seen[path] = true
		if m.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", path, m.Error.Err)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		files, err := l.parse(m, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg, err := l.CheckFiles(path, files)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) parse(m *meta, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(m.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks the given parsed files as package pkgpath,
// resolving imports through the loader. It backs both Load and the
// analysistest harness (which checks testdata trees under synthetic
// import paths so path-scoped analyzers see realistic packages).
func (l *Loader) CheckFiles(pkgpath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgpath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgpath, err)
	}
	return &Package{Path: pkgpath, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importPkg satisfies an import by type-checking the target from source,
// memoized per loader. Metadata missing from the initial -deps sweep (a
// testdata-only import, say) is fetched lazily with another go list call.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	// Stdlib dependencies vendored under GOROOT (net/http's golang.org/x/...
	// imports, say) are listed under a vendor/ prefix while the importing
	// source names them unvendored; accept either key.
	m, ok := l.metas[path]
	if !ok {
		m, ok = l.metas["vendor/"+path]
	}
	if !ok {
		if _, err := l.goList(path); err != nil {
			return nil, err
		}
		if m, ok = l.metas[path]; !ok {
			if m, ok = l.metas["vendor/"+path]; !ok {
				return nil, fmt.Errorf("no metadata for %s", path)
			}
		}
	}
	if m.Error != nil {
		return nil, fmt.Errorf("%s: %s", path, m.Error.Err)
	}
	files, err := l.parse(m, 0)
	if err != nil {
		return nil, err
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking dependency %s: %v", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
