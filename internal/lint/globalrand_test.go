package lint_test

import (
	"testing"

	"taopt/internal/lint"
	"taopt/internal/lint/linttest"
)

func TestGlobalrandFlagsDeterministicPackage(t *testing.T) {
	linttest.Run(t, lint.Globalrand(lint.DefaultConfig()), "taopt/internal/core", "testdata/globalrand/det")
}

func TestGlobalrandAllowsCommands(t *testing.T) {
	linttest.Run(t, lint.Globalrand(lint.DefaultConfig()), "taopt/cmd/gen", "testdata/globalrand/cmd")
}
