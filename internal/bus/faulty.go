package bus

import (
	"fmt"

	"taopt/internal/device"
	"taopt/internal/faults"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

// WithFaults wraps inner in the chaos transport: a simulated lossy, delaying
// farm network whose trace events may be dropped or arrive late, and whose
// allocation commands suffer injected outages and draw instance fates. Every
// decision comes from plan's deterministic streams and fires on the virtual
// clock, so a decorated run is exactly reproducible from its seed.
//
// A nil plan returns inner unchanged — fault-free runs pay nothing and the
// executor needs no fault-enabled branches.
func WithFaults(inner Transport, plan *faults.Plan, sched *sim.Scheduler) Transport {
	if plan == nil {
		return inner
	}
	return &faulty{inner: inner, plan: plan, sched: sched}
}

// faulty is the fault-decorator transport. It owns the *application* of the
// plan's decisions (dropping, rescheduling, failing commands, firing fates);
// the *drawing* of those decisions stays in faults.Plan so the RNG stream
// identities match the plan's documented fork layout.
type faulty struct {
	inner Transport
	plan  *faults.Plan
	sched *sim.Scheduler
	// overlay accounts for commands this decorator resolves without ever
	// reaching inner (injected outages and losses): attempts and failures
	// must be counted exactly once, whichever layer answers them.
	overlay Stats
}

// Publish implements Transport: each event is dropped, delayed, or forwarded
// per the plan's trace-delivery stream. A delayed event re-enters the inner
// transport when its delay elapses on the virtual clock.
//
//lint:hotpath
func (t *faulty) Publish(ev trace.Event) {
	drop, delay := t.plan.TraceDelivery(t.sched.Now())
	if drop {
		return
	}
	if delay > 0 {
		t.sched.After(delay, sim.EventFunc(func(*sim.Scheduler) {
			t.inner.Publish(ev)
		}))
		return
	}
	t.inner.Publish(ev)
}

// Subscribe implements Transport.
func (t *faulty) Subscribe(fn func(ev trace.Event)) { t.inner.Subscribe(fn) }

// Bind implements Transport.
func (t *faulty) Bind(ex Executor) { t.inner.Bind(ex) }

// Send implements Transport. Allocation commands pass through the plan's
// outage model first; a successful allocation draws the new instance's fate
// and, if it is doomed, schedules the matching Kill/Hang command back through
// the inner transport at the fated time. Block commands may be swallowed by
// the plan's command-loss stream, reporting a timeout to the sender — loss,
// not silence, so the coordinator can classify and retry.
func (t *faulty) Send(cmd Command) Reply {
	switch cmd.Kind {
	case Allocate:
		if t.plan.AllocationFails(t.sched.Now()) {
			t.swallow(cmd)
			return Reply{Err: fmt.Errorf("bus: injected allocation outage: %w", device.ErrFarmBusy)}
		}
		rep := t.inner.Send(cmd)
		if rep.Err == nil {
			if fate, fated := t.plan.InstanceFate(rep.Instance); fated {
				kind := Kill
				if fate.Kind == faults.Hang {
					kind = Hang
				}
				id := rep.Instance
				t.sched.After(fate.After, sim.EventFunc(func(*sim.Scheduler) {
					t.inner.Send(Command{Kind: kind, Instance: id})
				}))
			}
		}
		return rep
	case BlockWidget, BlockMember:
		if t.plan.CommandLost(t.sched.Now()) {
			t.swallow(cmd)
			return Reply{Instance: cmd.Instance, Err: fmt.Errorf("bus: injected command loss: %w", ErrTimeout)}
		}
		return t.inner.Send(cmd)
	case Deallocate, Kill, Hang:
		// Releases and injected fates pass through untouched: the plan's
		// outage and loss models apply only to allocations and blocks.
		return t.inner.Send(cmd)
	default:
		return t.inner.Send(cmd)
	}
}

// swallow charges the overlay for a command this decorator failed without
// forwarding: still an attempt (Commands/ByKind) and a failure, mirroring
// Inline's attempt-first accounting.
func (t *faulty) swallow(cmd Command) {
	t.overlay.Commands++
	if cmd.Kind >= 0 && int(cmd.Kind) < NumCommandKinds {
		t.overlay.ByKind[cmd.Kind]++
	}
	t.overlay.CommandFailures++
}

// Stats implements Transport: the inner counts plus the plan's injections
// and the overlay of commands answered at this layer. Dropped events were
// published at this transport but never reached inner, so they are added
// back into Published.
func (t *faulty) Stats() Stats {
	s := t.inner.Stats()
	fs := t.plan.Stats()
	s.Published += fs.TraceDrops
	s.Commands += t.overlay.Commands
	for k, n := range t.overlay.ByKind {
		s.ByKind[k] += n
	}
	s.CommandFailures += t.overlay.CommandFailures
	s.Dropped = fs.TraceDrops
	s.Delayed = fs.TraceDelays
	s.Deaths = fs.Deaths
	s.Hangs = fs.Hangs
	s.AllocFailures = fs.AllocFailures
	s.LostCommands = fs.CmdLosses
	return s
}
