package wire

import (
	"encoding/binary"
	"fmt"

	"taopt/internal/bus"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

// CommandTimeout is the per-command reply deadline on the virtual clock.
// Over today's synchronous pipe a reply arrives within the same virtual
// instant or never, so the timeout never partially elapses — but the sender
// contract ("a command without a reply fails with bus.ErrTimeout after
// CommandTimeout") is what a future TCP-backed farm must honour, and the
// error text quotes it so operators see the budget that was exceeded.
const CommandTimeout = 30 * sim.Duration(1e9)

// Stats counts the wire layer's frame traffic: protocol-level accounting
// that is deliberately kept out of the run export (exports must stay
// byte-identical across transports; frame counts are transport-specific).
type Stats struct {
	// FramesUp / BytesUp count instance→coordinator traffic (events,
	// replies); FramesDown / BytesDown count coordinator→instance traffic
	// (commands).
	FramesUp   int
	FramesDown int
	BytesUp    int
	BytesDown  int
	// Timeouts counts commands whose reply never arrived (severed pipe or
	// swallowed frame) and were failed with bus.ErrTimeout.
	Timeouts int
}

// Transport is the message-framed bus.Transport: every trace event and every
// Command/Reply pair crosses an in-process duplex pipe as length-prefixed
// binary frames. The coordination protocol is thereby forced through a real
// serialisation boundary — anything that cannot be framed cannot be
// coordinated on, which is the production-farm constraint the Inline
// transport lets callers forget.
//
// Like every transport, it is single-threaded on the virtual clock: Publish
// and Send pump the pipe synchronously, so delivery order is deterministic
// and identical to Inline's.
type Transport struct {
	now func() sim.Duration

	// coord is the coordinator-side pipe end (reads events+replies, writes
	// commands); inst is the instance-side end (the mirror image).
	coord *Conn
	inst  *Conn

	subs    []func(trace.Event)
	ex      bus.Executor
	stats   bus.Stats
	wire    Stats
	pending []bus.Reply

	upBuf   []byte
	downBuf []byte
	err     error
}

// New returns a wire transport over a fresh in-process pipe. now supplies
// virtual timestamps for the frames (sim.Scheduler.Now fits).
func New(now func() sim.Duration) *Transport {
	coord, inst := Pipe()
	return &Transport{now: now, coord: coord, inst: inst}
}

// Publish implements bus.Transport: the event is framed, written up the
// pipe, and delivered to subscribers when the coordinator side drains it.
//
//lint:hotpath
func (t *Transport) Publish(ev trace.Event) {
	t.stats.Published++
	t.write(t.inst, Frame{Kind: FrameEvent, At: t.now(), Event: ev}, &t.wire.FramesUp, &t.wire.BytesUp)
	t.pumpUp()
}

// Subscribe implements bus.Transport.
func (t *Transport) Subscribe(fn func(ev trace.Event)) { t.subs = append(t.subs, fn) }

// Bind implements bus.Transport.
func (t *Transport) Bind(ex bus.Executor) { t.ex = ex }

// Send implements bus.Transport: the command is framed down the pipe, the
// instance side executes it and frames the reply back up. A command whose
// reply does not arrive — the pipe was severed or a frame was swallowed —
// fails with bus.ErrTimeout rather than silence, so the coordinator can
// classify and retry.
func (t *Transport) Send(cmd bus.Command) bus.Reply {
	t.stats.Commands++
	if cmd.Kind >= 0 && int(cmd.Kind) < bus.NumCommandKinds {
		t.stats.ByKind[cmd.Kind]++
	}
	t.write(t.coord, Frame{Kind: FrameCommand, At: t.now(), Cmd: cmd}, &t.wire.FramesDown, &t.wire.BytesDown)
	t.pumpDown()
	t.pumpUp()
	rep, ok := t.takeReply()
	if !ok {
		t.stats.CommandFailures++
		t.wire.Timeouts++
		return bus.Reply{Instance: cmd.Instance,
			Err: fmt.Errorf("bus/wire: no reply to %s within %v: %w", cmd.Kind, CommandTimeout, bus.ErrTimeout)}
	}
	if rep.Err != nil {
		t.stats.CommandFailures++
	}
	return rep
}

// Stats implements bus.Transport.
func (t *Transport) Stats() bus.Stats { return t.stats }

// Wire returns the frame-level traffic counters.
func (t *Transport) Wire() Stats { return t.wire }

// Err returns the first protocol error (corrupt frame, unexpected kind)
// observed on either pipe end, or nil. A healthy run never sets it.
func (t *Transport) Err() error { return t.err }

// Sever closes both pipe ends, simulating loss of the farm connection:
// subsequent publishes are swallowed and subsequent commands time out.
func (t *Transport) Sever() {
	t.coord.Close()
	t.inst.Close()
}

// write frames f onto c, charging the given traffic counters. A write on a
// severed pipe is dropped silently — the loss surfaces as a missing reply
// (timeout) or an undelivered event, exactly like a dead network peer.
func (t *Transport) write(c *Conn, f Frame, frames, bytes *int) {
	buf, err := appendFrame(nil, f)
	if err != nil {
		t.fail(err)
		return
	}
	if _, err := c.Write(buf); err != nil {
		return
	}
	*frames++
	*bytes += len(buf)
}

// pumpUp drains the coordinator-side end: events go to subscribers in
// arrival order, replies queue for the Send in progress.
func (t *Transport) pumpUp() {
	for _, f := range t.drain(t.coord, &t.upBuf) {
		//lint:allow exhaustive "only event and reply frames are legal on the up pipe; every other kind is protocol corruption the default fails loudly on"
		switch f.Kind {
		case FrameEvent:
			t.stats.Delivered++
			for _, fn := range t.subs {
				fn(f.Event)
			}
		case FrameReply:
			t.pending = append(t.pending, f.Reply)
		default:
			t.fail(fmt.Errorf("wire: unexpected %v frame on the up pipe", f.Kind))
		}
	}
}

// pumpDown drains the instance-side end: each command is executed (or
// refused when no executor is bound) and its reply framed back up.
func (t *Transport) pumpDown() {
	for _, f := range t.drain(t.inst, &t.downBuf) {
		if f.Kind != FrameCommand {
			t.fail(fmt.Errorf("wire: unexpected %v frame on the down pipe", f.Kind))
			continue
		}
		rep := bus.Reply{Err: bus.ErrNotBound}
		if t.ex != nil {
			rep = t.ex.Exec(f.Cmd)
		}
		t.write(t.inst, Frame{Kind: FrameReply, At: t.now(), Reply: rep}, &t.wire.FramesUp, &t.wire.BytesUp)
	}
}

func (t *Transport) takeReply() (bus.Reply, bool) {
	if len(t.pending) == 0 {
		return bus.Reply{}, false
	}
	rep := t.pending[0]
	t.pending = t.pending[1:]
	return rep, true
}

func (t *Transport) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// drain reads every buffered byte from c into buf and decodes the complete
// frames, leaving any partial tail for the next pump.
func (t *Transport) drain(c *Conn, buf *[]byte) []Frame {
	var scratch [4096]byte
	for {
		n, err := c.Read(scratch[:])
		if n > 0 {
			*buf = append(*buf, scratch[:n]...)
		}
		if err != nil || n == 0 {
			break
		}
	}
	var frames []Frame
	for len(*buf) >= 4 {
		n := binary.LittleEndian.Uint32(*buf)
		if n > maxFrameSize {
			t.fail(fmt.Errorf("wire: frame claims %d bytes (corrupt stream)", n))
			*buf = nil
			break
		}
		if len(*buf) < 4+int(n) {
			break
		}
		f, err := decodeFrame((*buf)[4 : 4+int(n)])
		*buf = (*buf)[4+int(n):]
		if err != nil {
			t.fail(err)
			break
		}
		frames = append(frames, f)
	}
	return frames
}
