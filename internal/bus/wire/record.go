package wire

import (
	"fmt"
	"io"

	"taopt/internal/bus"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// Recorder captures a run's full bidirectional message log — every ground
// event, every post-fault delivery, every Command/Reply exchange, plus the
// boundary effects replay needs (instance leases, screen definitions, ticks,
// samples) — to one deterministic wire-log file.
//
// It decorates the transport stack at two seams:
//
//	port := rec.Outer( WithFaults( rec.Inner(base), plan, sched ) )
//
// Outer sees the protocol as the endpoints speak it (ground events before
// fault decoration, commands with their replies); Inner sees what survived
// the fault plan (delivered events, injected fates). Recording both sides
// makes the log self-contained: export.ReplayWireLog re-drives the
// coordinator from the Delivered frames and rebuilds the export from the
// ground frames, byte-for-byte, with no farm, tools or fault plan present.
type Recorder struct {
	w    io.Writer
	now  func() sim.Duration
	book *trace.Book
	seen map[ui.Signature]bool
	// depth distinguishes coordinator-originated sends traversing the stack
	// (recorded once, by Outer) from fate injections entering below the
	// coordinator (recorded by Inner as FrameFate).
	depth int
	err   error
}

// NewRecorder starts a wire log on w: magic, version, then the header frame.
// book resolves screen signatures to exemplar hierarchies for lazy
// FrameScreen definitions; now supplies frame timestamps.
func NewRecorder(w io.Writer, now func() sim.Duration, book *trace.Book, hdr Header) *Recorder {
	r := &Recorder{w: w, now: now, book: book, seen: make(map[ui.Signature]bool)}
	if _, err := w.Write(append([]byte(logMagic), logVersion)); err != nil {
		r.fail(err)
	}
	r.frame(Frame{Kind: FrameHeader, At: 0, Header: hdr})
	return r
}

// Err returns the first write or encode error, or nil. The harness surfaces
// it at the end of the run — a truncated wire log must fail loudly, not
// replay wrongly.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: recording: %w", err)
	}
}

func (r *Recorder) frame(f Frame) {
	if r.err != nil {
		return
	}
	buf, err := appendFrame(nil, f)
	if err != nil {
		r.fail(err)
		return
	}
	if _, err := r.w.Write(buf); err != nil {
		r.fail(err)
	}
}

// define writes a FrameScreen for each not-yet-defined signature, so every
// frame that references a signature is preceded by its definition. Screens
// are defined in first-reference order, which (because the driver publishes
// immediately after every first-sight Observe) equals the trace book's
// insertion order — replay rebuilds an identical book.
func (r *Recorder) define(sigs ...ui.Signature) {
	for _, sig := range sigs {
		if sig == 0 || r.seen[sig] {
			continue
		}
		screen := r.book.Lookup(sig)
		if screen == nil {
			// Not in the book yet (e.g. a zero-valued From); the frame's
			// consumer treats undefined signatures as opaque.
			continue
		}
		r.seen[sig] = true
		r.frame(Frame{Kind: FrameScreen, At: r.now(), Sig: sig, Screen: screen})
	}
}

// Lease records one instance boot: the ID plus the initial launch event,
// which the driver emits before any listener subscribes (so it never crosses
// the transport and must be captured here).
func (r *Recorder) Lease(id int, launch trace.Event) {
	r.define(launch.To)
	r.frame(Frame{Kind: FrameLease, At: r.now(), Instance: id, Event: launch})
}

// Local records a Command/Reply exchange the runner resolved without
// touching the transport (end-of-run allocation guards). Replay matches
// these frames exactly like transported exchanges.
func (r *Recorder) Local(cmd bus.Command, rep bus.Reply) {
	r.frame(Frame{Kind: FrameCommand, At: r.now(), Cmd: cmd})
	r.frame(Frame{Kind: FrameReply, At: r.now(), Reply: rep})
}

// TickMark records one strategy tick.
func (r *Recorder) TickMark() { r.frame(Frame{Kind: FrameTick, At: r.now()}) }

// Sample records one timeline sample point.
func (r *Recorder) Sample(s Sample) { r.frame(Frame{Kind: FrameSample, At: r.now(), Sample: s}) }

// Instance records one lease's end-of-run summary.
func (r *Recorder) Instance(s Summary) { r.frame(Frame{Kind: FrameInstance, At: r.now(), Summary: s}) }

// End closes the log with the run's totals.
func (r *Recorder) End(e RunEnd) { r.frame(Frame{Kind: FrameRunEnd, At: r.now(), End: e}) }

// Outer decorates the coordinator-facing transport: it records ground
// events on their way in and every Command/Reply exchange.
func (r *Recorder) Outer(t bus.Transport) bus.Transport { return &outerRec{rec: r, inner: t} }

// Inner decorates the transport below the fault plan: it records what was
// actually delivered (post-drop/delay) and the plan's fate injections.
func (r *Recorder) Inner(t bus.Transport) bus.Transport { return &innerRec{rec: r, inner: t} }

type outerRec struct {
	rec   *Recorder
	inner bus.Transport
}

func (t *outerRec) Publish(ev trace.Event) {
	t.rec.define(ev.From, ev.To)
	t.rec.frame(Frame{Kind: FrameEvent, At: t.rec.now(), Event: ev})
	t.inner.Publish(ev)
}

func (t *outerRec) Subscribe(fn func(ev trace.Event)) { t.inner.Subscribe(fn) }
func (t *outerRec) Bind(ex bus.Executor)              { t.inner.Bind(ex) }
func (t *outerRec) Stats() bus.Stats                  { return t.inner.Stats() }

func (t *outerRec) Send(cmd bus.Command) bus.Reply {
	t.rec.define(cmd.Screen)
	t.rec.frame(Frame{Kind: FrameCommand, At: t.rec.now(), Cmd: cmd})
	t.rec.depth++
	rep := t.inner.Send(cmd)
	t.rec.depth--
	// Effect frames written during the exchange (screen definitions, leases)
	// sit between the command and its reply; replay consumes them in place.
	t.rec.frame(Frame{Kind: FrameReply, At: t.rec.now(), Reply: rep})
	return rep
}

type innerRec struct {
	rec   *Recorder
	inner bus.Transport
}

func (t *innerRec) Publish(ev trace.Event) {
	t.rec.define(ev.From, ev.To)
	t.rec.frame(Frame{Kind: FrameDelivered, At: t.rec.now(), Event: ev})
	t.inner.Publish(ev)
}

func (t *innerRec) Subscribe(fn func(ev trace.Event)) { t.inner.Subscribe(fn) }
func (t *innerRec) Bind(ex bus.Executor)              { t.inner.Bind(ex) }
func (t *innerRec) Stats() bus.Stats                  { return t.inner.Stats() }

func (t *innerRec) Send(cmd bus.Command) bus.Reply {
	if t.rec.depth > 0 {
		// A coordinator-originated command traversing the stack; Outer
		// already recorded the exchange.
		return t.inner.Send(cmd)
	}
	// A fate injection from the fault plan, entering below the coordinator.
	t.rec.frame(Frame{Kind: FrameFate, At: t.rec.now(), Cmd: cmd})
	return t.inner.Send(cmd)
}
