package wire

import (
	"errors"
	"io"
)

// errNoData is returned by Conn.Read when the peer has written nothing yet.
// The simulation is single-threaded on the virtual clock, so "no data now"
// is a definite answer, not a blocking condition: the transport treats it as
// "the reply did not arrive within the command timeout".
var errNoData = errors.New("wire: no data buffered")

// Conn is one end of an in-process duplex byte pipe. It is shaped like
// net.Conn's data path (Read/Write/Close over a byte stream) so a TCP
// connection can replace it without changing the framing layer, but it
// deliberately omits deadlines and addresses: inside the deterministic
// simulation, time belongs to the sim clock, not the socket.
type Conn struct {
	in     *buffer
	out    *buffer
	closed bool
}

// Pipe returns the two ends of a connected duplex pipe: bytes written to one
// end are readable from the other, synchronously and in order.
func Pipe() (*Conn, *Conn) {
	up := &buffer{}
	down := &buffer{}
	a := &Conn{in: up, out: down}
	b := &Conn{in: down, out: up}
	return a, b
}

// Read drains buffered bytes from the peer. With nothing buffered it returns
// errNoData rather than blocking (see errNoData). After Close it returns
// io.ErrClosedPipe.
func (c *Conn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, io.ErrClosedPipe
	}
	if len(c.in.b) == 0 {
		return 0, errNoData
	}
	n := copy(p, c.in.b)
	c.in.b = c.in.b[n:]
	return n, nil
}

// Write buffers p for the peer. After Close (of either end) it returns
// io.ErrClosedPipe — the transport surfaces that as command loss.
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed || c.out.closed {
		return 0, io.ErrClosedPipe
	}
	c.out.b = append(c.out.b, p...)
	return len(p), nil
}

// Close marks this end closed. Buffered data is discarded; subsequent reads
// and writes on either end fail with io.ErrClosedPipe.
func (c *Conn) Close() error {
	c.closed = true
	c.in.closed = true
	c.out.closed = true
	c.in.b = nil
	return nil
}

// buffer is one direction of the pipe.
type buffer struct {
	b      []byte
	closed bool
}
