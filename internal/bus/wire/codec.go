// Package wire carries the coordination protocol of internal/bus as framed
// bytes: every trace.Event travelling up and every Command/Reply pair
// travelling down is encoded with a length-prefixed binary codec and moved
// over an in-process duplex pipe. Today the pipe is a pair of synchronous
// byte queues; the framing is byte-stream-shaped so a TCP connection drops in
// later without touching the protocol.
//
// The same codec serialises a run's full bidirectional message log — the
// wire log — which a Recorder captures and export.ReplayWireLog re-drives
// byte-for-byte: the message log, not the process that produced it, is the
// reproducibility contract (extending the trace.Log.Replay / tracetool
// decisions idiom to the whole coordination protocol).
//
// Determinism: the codec has no maps, no wall clock and no randomness; the
// bytes of a frame are a pure function of its fields, so two identical runs
// produce byte-identical wire logs and the CI can diff them.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"taopt/internal/bus"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// FrameKind tags one frame of the protocol or of the recorded wire log.
// Event, Command and Reply frames are the protocol proper — they are what
// travels over the pipe. The remaining kinds appear only in wire logs: they
// record the nondeterministic inputs and boundary effects a replay needs to
// re-drive a run without the farm, the tools or the fault plan.
type FrameKind byte

// Frame kinds.
const (
	// FrameHeader opens a wire log: the run's identity and resolved config.
	FrameHeader FrameKind = iota + 1
	// FrameScreen defines one abstract screen (signature + exemplar
	// hierarchy) on first sight, before any frame references it.
	FrameScreen
	// FrameEvent is one trace event as published at the instance boundary,
	// before any fault decoration ("ground truth").
	FrameEvent
	// FrameDelivered is one trace event as delivered to the coordinator
	// side, after drops and delays.
	FrameDelivered
	// FrameCommand is one coordinator→executor command.
	FrameCommand
	// FrameReply is the executor's answer to the preceding FrameCommand.
	FrameReply
	// FrameFate is an injected Kill/Hang command fired by the fault plan
	// (it enters the transport below the coordinator, so it is not part of
	// a Command/Reply exchange).
	FrameFate
	// FrameLease records one instance boot: its ID and the initial launch
	// event, which the driver emits before any listener subscribes.
	FrameLease
	// FrameTick records one strategy tick (the coordinator's health
	// monitor and allocation-retry cadence).
	FrameTick
	// FrameSample records one timeline sample point.
	FrameSample
	// FrameInstance is the end-of-run summary of one instance lease.
	FrameInstance
	// FrameRunEnd closes a wire log with the run's totals.
	FrameRunEnd
)

func (k FrameKind) String() string {
	switch k {
	case FrameHeader:
		return "header"
	case FrameScreen:
		return "screen"
	case FrameEvent:
		return "event"
	case FrameDelivered:
		return "delivered"
	case FrameCommand:
		return "command"
	case FrameReply:
		return "reply"
	case FrameFate:
		return "fate"
	case FrameLease:
		return "lease"
	case FrameTick:
		return "tick"
	case FrameSample:
		return "sample"
	case FrameInstance:
		return "instance"
	case FrameRunEnd:
		return "run-end"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// logMagic opens every wire-log file; logVersion is the codec revision.
// Version 2 added the scenario hash to the header frame.
const (
	logMagic   = "TAOPTWL"
	logVersion = 2
)

// maxFrameSize bounds one frame's payload; anything larger marks a corrupt
// or truncated stream rather than a legitimate frame.
const maxFrameSize = 1 << 26

// Header is the run identity a wire log opens with: enough to rebuild the
// coordinator (and only the coordinator — tool decisions are replayed from
// the recorded events, never re-run).
type Header struct {
	App     string
	Tool    string
	Setting string
	Seed    int64
	// Instances is the configured d_max; MaxDevices is the farm's actual
	// concurrency cap (they differ for single-long runs).
	Instances  int
	MaxDevices int

	DurationNS      int64
	MachineBudgetNS int64
	SampleEveryNS   int64

	// CoreOverride marks a run whose coordinator used a caller-supplied
	// core.Config; such logs can be dumped and diffed but not replayed (the
	// override is not serialised).
	CoreOverride bool
	// Telemetry marks a run that collected a telemetry bundle. Replay
	// reproduces the decision log but not the metrics registry, so the
	// replayed export of such a run omits the telemetry block.
	Telemetry bool
	// FaultsEnabled marks a chaos run (the export carries a transport block).
	FaultsEnabled bool
	// ScenarioHash is the canonical hash of the scenario document that
	// defined the run's app (log version 2); empty for apps built in code.
	ScenarioHash string
}

// Sample is one recorded timeline point (raw fields, so the wire layer does
// not depend on the metrics package).
type Sample struct {
	WallNS    int64
	MachineNS int64
	Covered   int
	Crashes   int
	AJS       float64
}

// CrashInfo is one recorded crash of an instance summary.
type CrashInfo struct {
	Signature string
	AtNS      int64
	Frames    []string
}

// Summary is the end-of-run record of one instance lease.
type Summary struct {
	ID          int
	AllocatedNS int64
	ReleasedNS  int64
	Failed      bool
	Coverage    int
	Crashes     []CrashInfo
}

// RunEnd closes a wire log with the run's totals and the transport's final
// delivery accounting.
type RunEnd struct {
	WallNS          int64
	MachineNS       int64
	Coverage        int
	UniqueCrashes   int
	FailedInstances int
	OrphansPending  int
	Stats           bus.Stats
}

// Frame is one decoded wire-log entry. Kind selects which of the payload
// fields are meaningful; At is the virtual-clock instant the frame was
// recorded.
type Frame struct {
	Kind FrameKind
	At   sim.Duration

	Header   Header       // FrameHeader
	Sig      ui.Signature // FrameScreen
	Screen   *ui.Screen   // FrameScreen
	Event    trace.Event  // FrameEvent, FrameDelivered, FrameLease (launch)
	Cmd      bus.Command  // FrameCommand, FrameFate
	Reply    bus.Reply    // FrameReply
	Instance int          // FrameLease, FrameInstance
	Sample   Sample       // FrameSample
	Summary  Summary      // FrameInstance
	End      RunEnd       // FrameRunEnd
}

// String renders the frame as one stable human-readable line (the format
// tracetool wirelog dumps).
func (f Frame) String() string {
	at := float64(f.At) / 1e9
	switch f.Kind {
	case FrameHeader:
		h := f.Header
		return fmt.Sprintf("%12.3f header   app=%q tool=%s setting=%s seed=%d instances=%d devices=%d faults=%v telemetry=%v override=%v",
			at, h.App, h.Tool, h.Setting, h.Seed, h.Instances, h.MaxDevices, h.FaultsEnabled, h.Telemetry, h.CoreOverride)
	case FrameScreen:
		return fmt.Sprintf("%12.3f screen   %v activity=%s nodes=%d", at, f.Sig, f.Screen.Activity, f.Screen.Root.Size())
	case FrameEvent, FrameDelivered:
		ev := f.Event
		return fmt.Sprintf("%12.3f %-8s inst=%d %s %v->%v crashed=%v enforced=%v",
			at, f.Kind, ev.Instance, ev.Action.Kind, ev.From, ev.To, ev.Crashed, ev.Enforced)
	case FrameCommand, FrameFate:
		c := f.Cmd
		return fmt.Sprintf("%12.3f %-8s %s inst=%d screen=%v widget=%q", at, f.Kind, c.Kind, c.Instance, c.Screen, c.Widget)
	case FrameReply:
		errText := ""
		if f.Reply.Err != nil {
			errText = " err=" + f.Reply.Err.Error()
		}
		return fmt.Sprintf("%12.3f reply    inst=%d%s", at, f.Reply.Instance, errText)
	case FrameLease:
		return fmt.Sprintf("%12.3f lease    inst=%d launch->%v activity=%s", at, f.Instance, f.Event.To, f.Event.Activity)
	case FrameTick:
		return fmt.Sprintf("%12.3f tick", at)
	case FrameSample:
		return fmt.Sprintf("%12.3f sample   covered=%d crashes=%d machine=%.3f", at, f.Sample.Covered, f.Sample.Crashes, float64(f.Sample.MachineNS)/1e9)
	case FrameInstance:
		s := f.Summary
		return fmt.Sprintf("%12.3f instance inst=%d alloc=%.3f release=%.3f failed=%v coverage=%d crashes=%d",
			at, s.ID, float64(s.AllocatedNS)/1e9, float64(s.ReleasedNS)/1e9, s.Failed, s.Coverage, len(s.Crashes))
	case FrameRunEnd:
		e := f.End
		return fmt.Sprintf("%12.3f run-end  coverage=%d crashes=%d failed=%d orphans=%d published=%d delivered=%d commands=%d",
			at, e.Coverage, e.UniqueCrashes, e.FailedInstances, e.OrphansPending, e.Stats.Published, e.Stats.Delivered, e.Stats.Commands)
	default:
		return fmt.Sprintf("%12.3f %s", at, f.Kind)
	}
}

// --- reply error classes --------------------------------------------------

// Reply errors cross the wire as a sentinel class plus the full message, so
// the coordinator's two error probes — errors.Is against the retry sentinels
// and err.Error() for the decision log — behave identically whether a reply
// came through Inline, the wire, or a replayed log.
const (
	errClassNone byte = iota
	errClassBusy
	errClassTimeout
	errClassNotBound
	errClassOther
)

func errClassOf(err error) byte {
	switch {
	case err == nil:
		return errClassNone
	case errors.Is(err, bus.ErrFarmBusy):
		return errClassBusy
	case errors.Is(err, bus.ErrTimeout):
		return errClassTimeout
	case errors.Is(err, bus.ErrNotBound):
		return errClassNotBound
	default:
		return errClassOther
	}
}

// wireError is a decoded reply error: the original message with the
// sentinel chain restored.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

func decodeErr(class byte, msg string) error {
	switch class {
	case errClassNone:
		return nil
	case errClassBusy:
		return &wireError{msg: msg, sentinel: bus.ErrFarmBusy}
	case errClassTimeout:
		return &wireError{msg: msg, sentinel: bus.ErrTimeout}
	case errClassNotBound:
		return &wireError{msg: msg, sentinel: bus.ErrNotBound}
	default:
		return errors.New(msg)
	}
}

// --- primitive encoder/decoder -------------------------------------------

type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) boolb(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}
func (e *enc) varint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) sig(s ui.Signature) {
	e.b = binary.LittleEndian.AppendUint64(e.b, uint64(s))
}
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or corrupt %s at offset %d", what, d.off)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) boolb() bool { return d.u8() != 0 }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) sig() ui.Signature {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("signature")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return ui.Signature(v)
}

func (d *dec) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// --- payload codecs -------------------------------------------------------

func (e *enc) event(ev trace.Event) {
	e.varint(int64(ev.Instance))
	e.varint(int64(ev.At))
	e.u8(byte(ev.Action.Kind))
	e.str(string(ev.Action.Widget))
	e.sig(ev.From)
	e.sig(ev.To)
	e.str(ev.Activity)
	var flags byte
	if ev.Crashed {
		flags |= 1
	}
	if ev.Enforced {
		flags |= 2
	}
	e.u8(flags)
}

func (d *dec) event() trace.Event {
	ev := trace.Event{
		Instance: int(d.varint()),
		At:       sim.Duration(d.varint()),
		Action:   trace.Action{Kind: trace.ActionKind(d.u8())},
	}
	ev.Action.Widget = ui.WidgetPath(d.str())
	ev.From = d.sig()
	ev.To = d.sig()
	ev.Activity = d.str()
	flags := d.u8()
	ev.Crashed = flags&1 != 0
	ev.Enforced = flags&2 != 0
	return ev
}

func (e *enc) command(c bus.Command) {
	e.u8(byte(c.Kind))
	e.varint(int64(c.Instance))
	e.sig(c.Screen)
	e.str(string(c.Widget))
}

func (d *dec) command() bus.Command {
	return bus.Command{
		Kind:     bus.CommandKind(d.u8()),
		Instance: int(d.varint()),
		Screen:   d.sig(),
		Widget:   ui.WidgetPath(d.str()),
	}
}

func (e *enc) reply(r bus.Reply) {
	e.varint(int64(r.Instance))
	class := errClassOf(r.Err)
	e.u8(class)
	if class != errClassNone {
		e.str(r.Err.Error())
	}
}

func (d *dec) reply() bus.Reply {
	r := bus.Reply{Instance: int(d.varint())}
	class := d.u8()
	if class != errClassNone {
		r.Err = decodeErr(class, d.str())
	}
	return r
}

func (e *enc) node(n *ui.Node) {
	if n == nil {
		e.boolb(false)
		return
	}
	e.boolb(true)
	e.str(n.Class)
	e.str(n.ResourceID)
	e.str(n.Text)
	var flags byte
	if n.Enabled {
		flags |= 1
	}
	if n.Clickable {
		flags |= 2
	}
	e.u8(flags)
	e.uvarint(uint64(len(n.Children)))
	for _, ch := range n.Children {
		e.node(ch)
	}
}

func (d *dec) node() *ui.Node {
	if !d.boolb() || d.err != nil {
		return nil
	}
	n := &ui.Node{Class: d.str(), ResourceID: d.str(), Text: d.str()}
	flags := d.u8()
	n.Enabled = flags&1 != 0
	n.Clickable = flags&2 != 0
	count := d.uvarint()
	if d.err != nil || count > uint64(len(d.b)-d.off) {
		d.fail("node children")
		return n
	}
	for i := uint64(0); i < count; i++ {
		n.Children = append(n.Children, d.node())
		if d.err != nil {
			break
		}
	}
	return n
}

func (e *enc) busStats(s bus.Stats) {
	e.varint(int64(s.Published))
	e.varint(int64(s.Delivered))
	e.varint(int64(s.Commands))
	e.uvarint(uint64(len(s.ByKind)))
	for _, n := range s.ByKind {
		e.varint(int64(n))
	}
	e.varint(int64(s.CommandFailures))
	e.varint(int64(s.Dropped))
	e.varint(int64(s.Delayed))
	e.varint(int64(s.Deaths))
	e.varint(int64(s.Hangs))
	e.varint(int64(s.AllocFailures))
	e.varint(int64(s.LostCommands))
}

func (d *dec) busStats() bus.Stats {
	var s bus.Stats
	s.Published = int(d.varint())
	s.Delivered = int(d.varint())
	s.Commands = int(d.varint())
	kinds := d.uvarint()
	for i := uint64(0); i < kinds && d.err == nil; i++ {
		n := int(d.varint())
		if i < uint64(len(s.ByKind)) {
			s.ByKind[i] = n
		}
	}
	s.CommandFailures = int(d.varint())
	s.Dropped = int(d.varint())
	s.Delayed = int(d.varint())
	s.Deaths = int(d.varint())
	s.Hangs = int(d.varint())
	s.AllocFailures = int(d.varint())
	s.LostCommands = int(d.varint())
	return s
}

// --- frame codec ----------------------------------------------------------

// marshalFrame encodes one frame payload (kind byte, timestamp, body) —
// without the length prefix, which the stream writer owns.
func marshalFrame(f Frame) ([]byte, error) {
	e := &enc{}
	e.u8(byte(f.Kind))
	e.varint(int64(f.At))
	switch f.Kind {
	case FrameHeader:
		h := f.Header
		e.str(h.App)
		e.str(h.Tool)
		e.str(h.Setting)
		e.varint(h.Seed)
		e.varint(int64(h.Instances))
		e.varint(int64(h.MaxDevices))
		e.varint(h.DurationNS)
		e.varint(h.MachineBudgetNS)
		e.varint(h.SampleEveryNS)
		e.str(h.ScenarioHash)
		var flags byte
		if h.CoreOverride {
			flags |= 1
		}
		if h.Telemetry {
			flags |= 2
		}
		if h.FaultsEnabled {
			flags |= 4
		}
		e.u8(flags)
	case FrameScreen:
		e.sig(f.Sig)
		e.str(f.Screen.Activity)
		e.node(f.Screen.Root)
	case FrameEvent, FrameDelivered:
		e.event(f.Event)
	case FrameCommand, FrameFate:
		e.command(f.Cmd)
	case FrameReply:
		e.reply(f.Reply)
	case FrameLease:
		e.varint(int64(f.Instance))
		e.event(f.Event)
	case FrameTick:
		// timestamp only
	case FrameSample:
		e.varint(f.Sample.WallNS)
		e.varint(f.Sample.MachineNS)
		e.varint(int64(f.Sample.Covered))
		e.varint(int64(f.Sample.Crashes))
		e.f64(f.Sample.AJS)
	case FrameInstance:
		s := f.Summary
		e.varint(int64(s.ID))
		e.varint(s.AllocatedNS)
		e.varint(s.ReleasedNS)
		e.boolb(s.Failed)
		e.varint(int64(s.Coverage))
		e.uvarint(uint64(len(s.Crashes)))
		for _, cr := range s.Crashes {
			e.str(cr.Signature)
			e.varint(cr.AtNS)
			e.uvarint(uint64(len(cr.Frames)))
			for _, fr := range cr.Frames {
				e.str(fr)
			}
		}
	case FrameRunEnd:
		end := f.End
		e.varint(end.WallNS)
		e.varint(end.MachineNS)
		e.varint(int64(end.Coverage))
		e.varint(int64(end.UniqueCrashes))
		e.varint(int64(end.FailedInstances))
		e.varint(int64(end.OrphansPending))
		e.busStats(end.Stats)
	default:
		return nil, fmt.Errorf("wire: cannot marshal frame kind %v", f.Kind)
	}
	return e.b, nil
}

// decodeFrame decodes one frame payload produced by marshalFrame.
func decodeFrame(payload []byte) (Frame, error) {
	d := &dec{b: payload}
	f := Frame{Kind: FrameKind(d.u8()), At: sim.Duration(d.varint())}
	switch f.Kind {
	case FrameHeader:
		h := Header{
			App:             d.str(),
			Tool:            d.str(),
			Setting:         d.str(),
			Seed:            d.varint(),
			Instances:       int(d.varint()),
			MaxDevices:      int(d.varint()),
			DurationNS:      d.varint(),
			MachineBudgetNS: d.varint(),
			SampleEveryNS:   d.varint(),
			ScenarioHash:    d.str(),
		}
		flags := d.u8()
		h.CoreOverride = flags&1 != 0
		h.Telemetry = flags&2 != 0
		h.FaultsEnabled = flags&4 != 0
		f.Header = h
	case FrameScreen:
		f.Sig = d.sig()
		f.Screen = &ui.Screen{Activity: d.str(), Root: d.node()}
	case FrameEvent, FrameDelivered:
		f.Event = d.event()
	case FrameCommand, FrameFate:
		f.Cmd = d.command()
	case FrameReply:
		f.Reply = d.reply()
	case FrameLease:
		f.Instance = int(d.varint())
		f.Event = d.event()
	case FrameTick:
	case FrameSample:
		f.Sample = Sample{
			WallNS:    d.varint(),
			MachineNS: d.varint(),
			Covered:   int(d.varint()),
			Crashes:   int(d.varint()),
			AJS:       d.f64(),
		}
	case FrameInstance:
		s := Summary{
			ID:          int(d.varint()),
			AllocatedNS: d.varint(),
			ReleasedNS:  d.varint(),
			Failed:      d.boolb(),
			Coverage:    int(d.varint()),
		}
		crashes := d.uvarint()
		for i := uint64(0); i < crashes && d.err == nil; i++ {
			cr := CrashInfo{Signature: d.str(), AtNS: d.varint()}
			frames := d.uvarint()
			for j := uint64(0); j < frames && d.err == nil; j++ {
				cr.Frames = append(cr.Frames, d.str())
			}
			s.Crashes = append(s.Crashes, cr)
		}
		f.Summary = s
	case FrameRunEnd:
		f.End = RunEnd{
			WallNS:          d.varint(),
			MachineNS:       d.varint(),
			Coverage:        int(d.varint()),
			UniqueCrashes:   int(d.varint()),
			FailedInstances: int(d.varint()),
			OrphansPending:  int(d.varint()),
			Stats:           d.busStats(),
		}
	default:
		return Frame{}, fmt.Errorf("wire: unknown frame kind %d", byte(f.Kind))
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if d.off != len(payload) {
		return Frame{}, fmt.Errorf("wire: %d trailing bytes after %v frame", len(payload)-d.off, f.Kind)
	}
	return f, nil
}

// appendFrame appends the length-prefixed encoding of f to dst.
func appendFrame(dst []byte, f Frame) ([]byte, error) {
	payload, err := marshalFrame(f)
	if err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// --- wire log reading -----------------------------------------------------

// Log is a decoded wire log: the opening header and every subsequent frame
// in record order.
type Log struct {
	Header Header
	Frames []Frame
}

// ReadLog decodes a wire log produced by a Recorder. It validates the magic,
// the codec version, and that the stream opens with a header frame.
func ReadLog(r io.Reader) (*Log, error) {
	br := &byteStream{r: r}
	magic := make([]byte, len(logMagic)+1)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wire: reading log magic: %w", err)
	}
	if string(magic[:len(logMagic)]) != logMagic {
		return nil, fmt.Errorf("wire: not a wire log (bad magic %q)", magic[:len(logMagic)])
	}
	if magic[len(logMagic)] != logVersion {
		return nil, fmt.Errorf("wire: unsupported wire-log version %d (want %d)", magic[len(logMagic)], logVersion)
	}

	log := &Log{}
	lenBuf := make([]byte, 4)
	for i := 0; ; i++ {
		if _, err := io.ReadFull(br, lenBuf); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("wire: reading frame %d length: %w", i, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf)
		if n > maxFrameSize {
			return nil, fmt.Errorf("wire: frame %d claims %d bytes (corrupt log)", i, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("wire: reading frame %d payload: %w", i, err)
		}
		f, err := decodeFrame(payload)
		if err != nil {
			return nil, fmt.Errorf("wire: frame %d: %w", i, err)
		}
		if i == 0 {
			if f.Kind != FrameHeader {
				return nil, fmt.Errorf("wire: log opens with %v, want header", f.Kind)
			}
			log.Header = f.Header
			continue
		}
		log.Frames = append(log.Frames, f)
	}
	return log, nil
}

// byteStream adapts any reader for io.ReadFull without double-buffering.
type byteStream struct{ r io.Reader }

func (b *byteStream) Read(p []byte) (int, error) { return b.r.Read(p) }
