package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"taopt/internal/bus"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

func testScreen() *ui.Screen {
	root := &ui.Node{
		Class: "FrameLayout", ResourceID: "root", Enabled: true,
		Children: []*ui.Node{
			{Class: "Button", ResourceID: "buy", Text: "Buy", Enabled: true, Clickable: true},
			{Class: "TextView", Text: "hello"},
			{Class: "LinearLayout", Enabled: true, Children: []*ui.Node{
				{Class: "ImageView", ResourceID: "logo", Clickable: true},
			}},
		},
	}
	return &ui.Screen{Activity: "MainActivity", Root: root}
}

// allFrames is one frame of every kind, with every payload field exercised.
func allFrames(t *testing.T) []Frame {
	t.Helper()
	screen := testScreen()
	sig := ui.Signature(0x1122334455667788)
	ev := trace.Event{
		Instance: 3,
		At:       sim.Duration(42e9),
		Action:   trace.Action{Kind: trace.ActionTap, Widget: ui.WidgetPath("root/buy")},
		From:     sig,
		To:       ui.Signature(7),
		Activity: "CartActivity",
		Crashed:  true,
		Enforced: true,
	}
	return []Frame{
		{Kind: FrameHeader, Header: Header{
			App: "Filters For Selfie", Tool: "monkey", Setting: "taopt-duration",
			Seed: -9, Instances: 5, MaxDevices: 8, DurationNS: 3600e9,
			MachineBudgetNS: 5 * 3600e9, SampleEveryNS: 30e9,
			CoreOverride: false, Telemetry: true, FaultsEnabled: true,
		}},
		{Kind: FrameScreen, At: 1e9, Sig: sig, Screen: screen},
		{Kind: FrameEvent, At: 2e9, Event: ev},
		{Kind: FrameDelivered, At: 3e9, Event: ev},
		{Kind: FrameCommand, At: 4e9, Cmd: bus.Command{Kind: bus.BlockWidget, Instance: 2, Screen: sig, Widget: ui.WidgetPath("root/buy")}},
		{Kind: FrameReply, At: 4e9, Reply: bus.Reply{Instance: 2}},
		{Kind: FrameReply, At: 5e9, Reply: bus.Reply{Err: bus.ErrNotBound}},
		{Kind: FrameFate, At: 6e9, Cmd: bus.Command{Kind: bus.Kill, Instance: 1}},
		{Kind: FrameLease, At: 7e9, Instance: 4, Event: ev},
		{Kind: FrameTick, At: 8e9},
		{Kind: FrameSample, At: 9e9, Sample: Sample{WallNS: 9e9, MachineNS: 45e9, Covered: 120, Crashes: 2, AJS: 0.25}},
		{Kind: FrameInstance, At: 10e9, Summary: Summary{
			ID: 4, AllocatedNS: 7e9, ReleasedNS: 10e9, Failed: true, Coverage: 33,
			Crashes: []CrashInfo{{Signature: "NullPointerException@CartActivity", AtNS: 8e9, Frames: []string{"a", "b"}}},
		}},
		{Kind: FrameRunEnd, At: 11e9, End: RunEnd{
			WallNS: 11e9, MachineNS: 55e9, Coverage: 140, UniqueCrashes: 2,
			FailedInstances: 1, OrphansPending: 1,
			Stats: bus.Stats{
				Published: 10, Delivered: 8, Commands: 5, CommandFailures: 2,
				ByKind:  [bus.NumCommandKinds]int{bus.Allocate: 3, bus.Kill: 2},
				Dropped: 2, Delayed: 1, Deaths: 2, Hangs: 1, AllocFailures: 1, LostCommands: 1,
			},
		}},
	}
}

// TestCodecRoundTrip marshals every frame kind and decodes it back, field
// for field, including the recursive screen tree and the stats map.
func TestCodecRoundTrip(t *testing.T) {
	for _, f := range allFrames(t) {
		payload, err := marshalFrame(f)
		if err != nil {
			t.Fatalf("%v: marshal: %v", f.Kind, err)
		}
		got, err := decodeFrame(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		// Replies carry errors, which decode to transport-invariant values
		// rather than the original instances; compare their views separately.
		if f.Kind == FrameReply {
			if (got.Reply.Err == nil) != (f.Reply.Err == nil) {
				t.Fatalf("reply error presence changed: %v -> %v", f.Reply.Err, got.Reply.Err)
			}
			if f.Reply.Err != nil {
				if got.Reply.Err.Error() != f.Reply.Err.Error() {
					t.Fatalf("reply error message changed: %q -> %q", f.Reply.Err, got.Reply.Err)
				}
				if !errors.Is(got.Reply.Err, bus.ErrNotBound) {
					t.Fatalf("reply error lost its sentinel: %v", got.Reply.Err)
				}
			}
			continue
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("%v: round-trip changed the frame:\n got %+v\nwant %+v", f.Kind, got, f)
		}
	}
}

// TestCodecErrorClasses pins the sentinel classification across the wire:
// errors.Is must keep working on decoded replies for every retryable class.
func TestCodecErrorClasses(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{bus.ErrFarmBusy, bus.ErrFarmBusy},
		{bus.ErrTimeout, bus.ErrTimeout},
		{bus.ErrNotBound, bus.ErrNotBound},
		{errors.New("bus: unknown instance 9"), nil},
	}
	for _, c := range cases {
		payload, err := marshalFrame(Frame{Kind: FrameReply, Reply: bus.Reply{Err: c.err}})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := decodeFrame(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Reply.Err.Error() != c.err.Error() {
			t.Fatalf("message changed: %q -> %q", c.err, got.Reply.Err)
		}
		if c.sentinel != nil && !errors.Is(got.Reply.Err, c.sentinel) {
			t.Fatalf("decoded %q lost sentinel %v", c.err, c.sentinel)
		}
		if bus.Retryable(c.err) != bus.Retryable(got.Reply.Err) {
			t.Fatalf("retryability of %q changed across the wire", c.err)
		}
	}
}

// TestCodecRejectsTrailingBytes guards frame framing: junk after a valid
// payload is corruption, not slack.
func TestCodecRejectsTrailingBytes(t *testing.T) {
	payload, err := marshalFrame(Frame{Kind: FrameTick, At: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeFrame(append(payload, 0xFF)); err == nil {
		t.Fatal("decodeFrame accepted trailing bytes")
	}
	if _, err := decodeFrame(payload[:len(payload)-1]); err == nil {
		t.Fatal("decodeFrame accepted a truncated payload")
	}
}

func TestPipe(t *testing.T) {
	a, b := Pipe()
	if _, err := b.Write([]byte("up!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := a.Read(buf)
	if err != nil || string(buf[:n]) != "up!" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	// Empty pipe reports no data, not EOF: the simulation is single-threaded,
	// so "nothing buffered" is a state, not a stream end.
	if _, err := a.Read(buf); !errors.Is(err, errNoData) {
		t.Fatalf("empty read: %v", err)
	}
	// The duplex pair is symmetric.
	if _, err := a.Write([]byte("down")); err != nil {
		t.Fatal(err)
	}
	if n, err := b.Read(buf); err != nil || string(buf[:n]) != "down" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	// Close poisons both directions and discards buffered data.
	if _, err := b.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := a.Read(buf); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := b.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write after peer close: %v", err)
	}
}

type echoExec struct{ next int }

func (e *echoExec) Exec(cmd bus.Command) bus.Reply {
	switch cmd.Kind {
	case bus.Allocate:
		e.next++
		return bus.Reply{Instance: e.next}
	default:
		return bus.Reply{Instance: cmd.Instance}
	}
}

// TestTransportCarriesProtocol drives the full request/reply and publish
// paths through the framing and checks both accounting views.
func TestTransportCarriesProtocol(t *testing.T) {
	var now sim.Duration
	tr := New(func() sim.Duration { return now })
	tr.Bind(&echoExec{})

	var seen []trace.Event
	tr.Subscribe(func(ev trace.Event) { seen = append(seen, ev) })

	rep := tr.Send(bus.Command{Kind: bus.Allocate})
	if rep.Err != nil || rep.Instance != 1 {
		t.Fatalf("allocate over wire: %+v", rep)
	}
	ev := trace.Event{Instance: 1, To: ui.Signature(5), Activity: "A"}
	tr.Publish(ev)
	if len(seen) != 1 || seen[0] != ev {
		t.Fatalf("published event not delivered: %+v", seen)
	}

	st := tr.Stats()
	if st.Commands != 1 || st.CommandFailures != 0 || st.Published != 1 || st.Delivered != 1 {
		t.Fatalf("bus stats: %+v", st)
	}
	w := tr.Wire()
	if w.FramesDown != 1 || w.FramesUp != 2 || w.BytesUp == 0 || w.BytesDown == 0 {
		t.Fatalf("wire stats: %+v", w)
	}
	if tr.Err() != nil {
		t.Fatalf("transport error: %v", tr.Err())
	}
}

// TestTransportUnboundCommands: a command with no executor behind the wire
// still gets a framed reply carrying bus.ErrNotBound.
func TestTransportUnboundCommands(t *testing.T) {
	tr := New(func() sim.Duration { return 0 })
	rep := tr.Send(bus.Command{Kind: bus.Allocate})
	if !errors.Is(rep.Err, bus.ErrNotBound) {
		t.Fatalf("unbound send: %v", rep.Err)
	}
	st := tr.Stats()
	if st.Commands != 1 || st.CommandFailures != 1 {
		t.Fatalf("unbound stats: %+v", st)
	}
}

// TestTransportSever: once the link is lost, publishes degrade to silence
// and commands time out with the retryable bus.ErrTimeout sentinel —
// graceful degradation, never a hang or a panic.
func TestTransportSever(t *testing.T) {
	var now sim.Duration
	tr := New(func() sim.Duration { return now })
	tr.Bind(&echoExec{})
	tr.Sever()

	tr.Publish(trace.Event{Instance: 1})
	now += CommandTimeout
	rep := tr.Send(bus.Command{Kind: bus.Deallocate, Instance: 1})
	if rep.Err == nil || !errors.Is(rep.Err, bus.ErrTimeout) {
		t.Fatalf("severed send: %v", rep.Err)
	}
	if !bus.Retryable(rep.Err) {
		t.Fatal("severed-link timeout must be retryable")
	}
	st, w := tr.Stats(), tr.Wire()
	if st.Delivered != 0 || st.CommandFailures != 1 || w.Timeouts != 1 {
		t.Fatalf("severed stats: %+v wire %+v", st, w)
	}
}

// TestRecorderFrameOrdering replays the canonical exchange shapes through
// the two recording decorators and pins the resulting frame sequence.
func TestRecorderFrameOrdering(t *testing.T) {
	var now sim.Duration
	var buf bytes.Buffer
	book := trace.NewBook()
	sig := book.Observe(testScreen())

	rec := NewRecorder(&buf, func() sim.Duration { return now }, book, Header{App: "x", Tool: "monkey", Setting: "baseline"})
	base := bus.NewInline()
	base.Bind(&echoExec{})
	port := rec.Outer(rec.Inner(base))

	// A coordinator-originated command referencing a screen: definition,
	// command, reply.
	now = 1e9
	port.Send(bus.Command{Kind: bus.BlockWidget, Instance: 1, Screen: sig})
	// A ground event, then its post-fault delivery.
	ev := trace.Event{Instance: 1, From: sig, To: sig, Activity: "MainActivity"}
	port.Publish(ev)
	// A fate injection entering below the coordinator's view.
	rec.Inner(base).Send(bus.Command{Kind: bus.Kill, Instance: 1})
	// Run-end bookkeeping.
	now = 2e9
	rec.TickMark()
	rec.End(RunEnd{WallNS: int64(now)})
	if rec.Err() != nil {
		t.Fatalf("recorder error: %v", rec.Err())
	}

	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("reading log back: %v", err)
	}
	if log.Header.App != "x" || log.Header.Tool != "monkey" {
		t.Fatalf("header not lifted from the stream: %+v", log.Header)
	}
	want := []FrameKind{FrameScreen, FrameCommand, FrameReply, FrameEvent, FrameDelivered, FrameFate, FrameTick, FrameRunEnd}
	var got []FrameKind
	for _, f := range log.Frames {
		got = append(got, f.Kind)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frame sequence:\n got %v\nwant %v", got, want)
	}
	if log.Frames[0].Sig != sig {
		t.Fatalf("screen defined as %v, want %v", log.Frames[0].Sig, sig)
	}
	// The decoded screen hashes back to its recorded signature.
	if re := trace.NewBook().Observe(log.Frames[0].Screen); re != sig {
		t.Fatalf("decoded screen re-hashes to %v, want %v", re, sig)
	}
}

// TestReadLogRejectsGarbage: wrong magic, wrong version and a missing
// header are loud errors.
func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("NOTAWLOG"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf, func() sim.Duration { return 0 }, trace.NewBook(), Header{})
	rec.End(RunEnd{})
	raw := buf.Bytes()
	raw[len(logMagic)] = 99 // corrupt the version byte
	if _, err := ReadLog(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted unknown version")
	}
}
