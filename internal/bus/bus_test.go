package bus

import (
	"errors"
	"testing"

	"taopt/internal/device"
	"taopt/internal/faults"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

type execRecorder struct {
	cmds []Command
	next int
}

func (e *execRecorder) Exec(cmd Command) Reply {
	e.cmds = append(e.cmds, cmd)
	if cmd.Kind == Allocate {
		e.next++
		return Reply{Instance: e.next}
	}
	return Reply{Instance: cmd.Instance}
}

func TestInlineDeliversInOrder(t *testing.T) {
	tr := NewInline()
	var first, second []int
	tr.Subscribe(func(ev trace.Event) { first = append(first, ev.Instance) })
	tr.Subscribe(func(ev trace.Event) {
		// Registration order: the first subscriber must already have seen it.
		if len(first) != len(second)+1 {
			t.Fatal("subscribers invoked out of registration order")
		}
		second = append(second, ev.Instance)
	})
	for i := 0; i < 3; i++ {
		tr.Publish(trace.Event{Instance: i})
	}
	for i, got := range first {
		if got != i {
			t.Fatalf("events out of order: %v", first)
		}
	}
	st := tr.Stats()
	if st.Published != 3 || st.Delivered != 3 || st.Injected() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInlineSendRequiresBind(t *testing.T) {
	tr := NewInline()
	if rep := tr.Send(Command{Kind: Allocate}); !errors.Is(rep.Err, ErrNotBound) {
		t.Fatalf("unbound Send err = %v, want ErrNotBound", rep.Err)
	}
	ex := &execRecorder{}
	tr.Bind(ex)
	rep := tr.Send(Command{Kind: Allocate})
	if rep.Err != nil || rep.Instance != 1 {
		t.Fatalf("bound Send reply = %+v", rep)
	}
	tr.Send(Command{Kind: BlockMember, Instance: 1})
	if len(ex.cmds) != 2 || ex.cmds[1].Kind != BlockMember {
		t.Fatalf("executor saw %+v", ex.cmds)
	}
	if st := tr.Stats(); st.Commands != 2 {
		t.Fatalf("Commands = %d, want 2", st.Commands)
	}
}

func TestInlineCountsCommandsByKind(t *testing.T) {
	tr := NewInline()
	tr.Bind(&execRecorder{})
	sends := []CommandKind{Allocate, Allocate, BlockWidget, BlockMember, BlockMember, BlockMember, Deallocate, Kill, Hang}
	for _, k := range sends {
		tr.Send(Command{Kind: k, Instance: 1})
	}
	st := tr.Stats()
	want := [NumCommandKinds]int{Allocate: 2, Deallocate: 1, BlockWidget: 1, BlockMember: 3, Kill: 1, Hang: 1}
	if st.ByKind != want {
		t.Fatalf("ByKind = %v, want %v", st.ByKind, want)
	}
	if st.Commands != len(sends) {
		t.Fatalf("Commands = %d, want %d", st.Commands, len(sends))
	}
	for k, n := range want {
		if got := st.KindCount(CommandKind(k)); got != n {
			t.Fatalf("KindCount(%v) = %d, want %d", CommandKind(k), got, n)
		}
	}
	if st.KindCount(CommandKind(99)) != 0 {
		t.Fatal("out-of-range KindCount must be 0")
	}
}

func TestWithFaultsNilPlanIsPassthrough(t *testing.T) {
	inner := NewInline()
	if got := WithFaults(inner, nil, sim.NewScheduler()); got != Transport(inner) {
		t.Fatal("nil plan must return the inner transport unchanged")
	}
}

func TestWithFaultsDropsAndDelaysTraceEvents(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := faults.Config{TraceDropRate: 1}
	tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sched)
	seen := 0
	tr.Subscribe(func(trace.Event) { seen++ })
	for i := 0; i < 5; i++ {
		tr.Publish(trace.Event{Instance: i})
	}
	if seen != 0 {
		t.Fatalf("%d events leaked through a 100%% drop plan", seen)
	}
	if st := tr.Stats(); st.Published != 5 || st.Delivered != 0 || st.Dropped != 5 {
		t.Fatalf("stats = %+v", st)
	}

	cfg = faults.Config{TraceDelayRate: 1, TraceDelayMax: 2 * sim.Duration(1e9)}
	tr = WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sched)
	seen = 0
	tr.Subscribe(func(trace.Event) { seen++ })
	tr.Publish(trace.Event{})
	if seen != 0 {
		t.Fatal("delayed event delivered before its delay elapsed")
	}
	sched.Run(0)
	if seen != 1 {
		t.Fatalf("delayed event delivered %d times after the clock ran", seen)
	}
	if st := tr.Stats(); st.Delivered != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWithFaultsAllocationOutage(t *testing.T) {
	cfg := faults.Config{AllocFailRate: 1, AllocOutage: 90 * sim.Duration(1e9)}
	tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sim.NewScheduler())
	ex := &execRecorder{}
	tr.Bind(ex)
	rep := tr.Send(Command{Kind: Allocate})
	if !errors.Is(rep.Err, device.ErrFarmBusy) {
		t.Fatalf("outage err = %v, want ErrFarmBusy (retryable)", rep.Err)
	}
	if len(ex.cmds) != 0 {
		t.Fatal("failed allocation must not reach the executor")
	}
	// Non-allocation commands bypass the outage model entirely.
	if rep := tr.Send(Command{Kind: BlockMember, Instance: 3}); rep.Err != nil {
		t.Fatalf("block command failed during outage: %v", rep.Err)
	}
	if st := tr.Stats(); st.AllocFailures == 0 {
		t.Fatalf("stats = %+v, want AllocFailures > 0", st)
	}
}

func TestWithFaultsSchedulesInstanceFate(t *testing.T) {
	life := 10 * sim.Duration(1e9)
	cfg := faults.Config{FailureRate: 1, MinLife: life, MaxLife: life}
	sched := sim.NewScheduler()
	tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sched)
	ex := &execRecorder{}
	tr.Bind(ex)
	rep := tr.Send(Command{Kind: Allocate})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if end := sched.Run(0); end != life {
		t.Fatalf("fate fired at %v, want %v", end, life)
	}
	last := ex.cmds[len(ex.cmds)-1]
	if last.Kind != Kill || last.Instance != rep.Instance {
		t.Fatalf("fate command = %+v, want Kill for instance %d", last, rep.Instance)
	}
	if st := tr.Stats(); st.Deaths != 1 {
		t.Fatalf("stats = %+v, want 1 death", st)
	}
}
