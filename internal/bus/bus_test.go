package bus

import (
	"errors"
	"testing"

	"taopt/internal/device"
	"taopt/internal/faults"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

type execRecorder struct {
	cmds []Command
	next int
}

func (e *execRecorder) Exec(cmd Command) Reply {
	e.cmds = append(e.cmds, cmd)
	if cmd.Kind == Allocate {
		e.next++
		return Reply{Instance: e.next}
	}
	return Reply{Instance: cmd.Instance}
}

func TestInlineDeliversInOrder(t *testing.T) {
	tr := NewInline()
	var first, second []int
	tr.Subscribe(func(ev trace.Event) { first = append(first, ev.Instance) })
	tr.Subscribe(func(ev trace.Event) {
		// Registration order: the first subscriber must already have seen it.
		if len(first) != len(second)+1 {
			t.Fatal("subscribers invoked out of registration order")
		}
		second = append(second, ev.Instance)
	})
	for i := 0; i < 3; i++ {
		tr.Publish(trace.Event{Instance: i})
	}
	for i, got := range first {
		if got != i {
			t.Fatalf("events out of order: %v", first)
		}
	}
	st := tr.Stats()
	if st.Published != 3 || st.Delivered != 3 || st.Injected() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInlineSendRequiresBind(t *testing.T) {
	tr := NewInline()
	if rep := tr.Send(Command{Kind: Allocate}); !errors.Is(rep.Err, ErrNotBound) {
		t.Fatalf("unbound Send err = %v, want ErrNotBound", rep.Err)
	}
	ex := &execRecorder{}
	tr.Bind(ex)
	rep := tr.Send(Command{Kind: Allocate})
	if rep.Err != nil || rep.Instance != 1 {
		t.Fatalf("bound Send reply = %+v", rep)
	}
	tr.Send(Command{Kind: BlockMember, Instance: 1})
	if len(ex.cmds) != 2 || ex.cmds[1].Kind != BlockMember {
		t.Fatalf("executor saw %+v", ex.cmds)
	}
	// All three sends were attempts; only the unbound one failed.
	st := tr.Stats()
	if st.Commands != 3 {
		t.Fatalf("Commands = %d, want 3 (attempts, not deliveries)", st.Commands)
	}
	if st.CommandFailures != 1 {
		t.Fatalf("CommandFailures = %d, want 1", st.CommandFailures)
	}
}

func TestInlineCountsCommandsByKind(t *testing.T) {
	tr := NewInline()
	tr.Bind(&execRecorder{})
	sends := []CommandKind{Allocate, Allocate, BlockWidget, BlockMember, BlockMember, BlockMember, Deallocate, Kill, Hang}
	for _, k := range sends {
		tr.Send(Command{Kind: k, Instance: 1})
	}
	st := tr.Stats()
	want := [NumCommandKinds]int{Allocate: 2, Deallocate: 1, BlockWidget: 1, BlockMember: 3, Kill: 1, Hang: 1}
	if st.ByKind != want {
		t.Fatalf("ByKind = %v, want %v", st.ByKind, want)
	}
	if st.Commands != len(sends) {
		t.Fatalf("Commands = %d, want %d", st.Commands, len(sends))
	}
	for k, n := range want {
		if got := st.KindCount(CommandKind(k)); got != n {
			t.Fatalf("KindCount(%v) = %d, want %d", CommandKind(k), got, n)
		}
	}
	if st.KindCount(CommandKind(99)) != 0 {
		t.Fatal("out-of-range KindCount must be 0")
	}
}

func TestWithFaultsNilPlanIsPassthrough(t *testing.T) {
	inner := NewInline()
	if got := WithFaults(inner, nil, sim.NewScheduler()); got != Transport(inner) {
		t.Fatal("nil plan must return the inner transport unchanged")
	}
}

func TestWithFaultsDropsAndDelaysTraceEvents(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := faults.Config{TraceDropRate: 1}
	tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sched)
	seen := 0
	tr.Subscribe(func(trace.Event) { seen++ })
	for i := 0; i < 5; i++ {
		tr.Publish(trace.Event{Instance: i})
	}
	if seen != 0 {
		t.Fatalf("%d events leaked through a 100%% drop plan", seen)
	}
	if st := tr.Stats(); st.Published != 5 || st.Delivered != 0 || st.Dropped != 5 {
		t.Fatalf("stats = %+v", st)
	}

	cfg = faults.Config{TraceDelayRate: 1, TraceDelayMax: 2 * sim.Duration(1e9)}
	tr = WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sched)
	seen = 0
	tr.Subscribe(func(trace.Event) { seen++ })
	tr.Publish(trace.Event{})
	if seen != 0 {
		t.Fatal("delayed event delivered before its delay elapsed")
	}
	sched.Run(0)
	if seen != 1 {
		t.Fatalf("delayed event delivered %d times after the clock ran", seen)
	}
	if st := tr.Stats(); st.Delivered != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWithFaultsAllocationOutage(t *testing.T) {
	cfg := faults.Config{AllocFailRate: 1, AllocOutage: 90 * sim.Duration(1e9)}
	tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sim.NewScheduler())
	ex := &execRecorder{}
	tr.Bind(ex)
	rep := tr.Send(Command{Kind: Allocate})
	if !errors.Is(rep.Err, device.ErrFarmBusy) {
		t.Fatalf("outage err = %v, want ErrFarmBusy (retryable)", rep.Err)
	}
	if len(ex.cmds) != 0 {
		t.Fatal("failed allocation must not reach the executor")
	}
	// Non-allocation commands bypass the outage model entirely.
	if rep := tr.Send(Command{Kind: BlockMember, Instance: 3}); rep.Err != nil {
		t.Fatalf("block command failed during outage: %v", rep.Err)
	}
	if st := tr.Stats(); st.AllocFailures == 0 {
		t.Fatalf("stats = %+v, want AllocFailures > 0", st)
	}
}

func TestWithFaultsSchedulesInstanceFate(t *testing.T) {
	life := 10 * sim.Duration(1e9)
	cfg := faults.Config{FailureRate: 1, MinLife: life, MaxLife: life}
	sched := sim.NewScheduler()
	tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(1)), sched)
	ex := &execRecorder{}
	tr.Bind(ex)
	rep := tr.Send(Command{Kind: Allocate})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if end := sched.Run(0); end != life {
		t.Fatalf("fate fired at %v, want %v", end, life)
	}
	last := ex.cmds[len(ex.cmds)-1]
	if last.Kind != Kill || last.Instance != rep.Instance {
		t.Fatalf("fate command = %+v, want Kill for instance %d", last, rep.Instance)
	}
	if st := tr.Stats(); st.Deaths != 1 {
		t.Fatalf("stats = %+v, want 1 death", st)
	}
}

// TestStatsInjectedAccounting drives combined fault plans through the
// decorated transport and pins the Injected() identity and the per-kind
// command mix under each mix. Every injected fault must land in exactly one
// counter, and every command attempt — delivered, refused or lost — in
// exactly one ByKind bucket.
func TestStatsInjectedAccounting(t *testing.T) {
	second := sim.Duration(1e9)
	type outcome struct {
		st   Stats
		seen int
	}
	run := func(cfg faults.Config, seed int64) outcome {
		sched := sim.NewScheduler()
		tr := WithFaults(NewInline(), faults.PlanFor(&cfg, sim.NewRNG(seed)), sched)
		ex := &execRecorder{}
		tr.Bind(ex)
		seen := 0
		tr.Subscribe(func(trace.Event) { seen++ })
		// A fixed workload: allocations (some doomed to fates), block
		// commands (some doomed to loss), deallocations (exempt from loss)
		// and a stream of trace events (some dropped, some delayed).
		var allocated []int
		for i := 0; i < 12; i++ {
			if rep := tr.Send(Command{Kind: Allocate}); rep.Err == nil {
				allocated = append(allocated, rep.Instance)
			}
		}
		for i := 0; i < 20; i++ {
			tr.Send(Command{Kind: BlockWidget, Instance: 1})
			tr.Send(Command{Kind: BlockMember, Instance: 2})
		}
		for i := 0; i < 40; i++ {
			tr.Publish(trace.Event{Instance: i})
		}
		for _, id := range allocated {
			tr.Send(Command{Kind: Deallocate, Instance: id})
		}
		sched.Run(0) // flush delayed deliveries and scheduled fates
		return outcome{st: tr.Stats(), seen: seen}
	}

	cases := []struct {
		name string
		cfg  faults.Config
		want func(t *testing.T, o outcome)
	}{
		{
			name: "fault-free",
			cfg:  faults.Config{},
			want: func(t *testing.T, o outcome) {
				if o.st.Injected() != 0 || o.st.CommandFailures != 0 {
					t.Fatalf("clean plan injected faults: %+v", o.st)
				}
				if o.seen != 40 || o.st.Delivered != 40 {
					t.Fatalf("delivered %d/%d events", o.seen, o.st.Delivered)
				}
			},
		},
		{
			name: "trace drop and delay",
			cfg:  faults.Config{TraceDropRate: 0.4, TraceDelayRate: 0.5, TraceDelayMax: 3 * second},
			want: func(t *testing.T, o outcome) {
				if o.st.Dropped == 0 || o.st.Delayed == 0 {
					t.Fatalf("mix drew no drops or no delays: %+v", o.st)
				}
				if o.st.Delivered != 40-o.st.Dropped || o.seen != o.st.Delivered {
					t.Fatalf("delivery accounting: %+v, saw %d", o.st, o.seen)
				}
			},
		},
		{
			name: "allocation outage",
			cfg:  faults.Config{AllocFailRate: 0.5, AllocOutage: 30 * second},
			want: func(t *testing.T, o outcome) {
				if o.st.AllocFailures == 0 {
					t.Fatalf("no outage drawn: %+v", o.st)
				}
				if o.st.CommandFailures != o.st.AllocFailures {
					t.Fatalf("every refused allocation is a failed attempt: %+v", o.st)
				}
				if o.st.KindCount(Allocate) != 12 {
					t.Fatalf("refused allocations must still count as attempts: %+v", o.st.ByKind)
				}
			},
		},
		{
			name: "instance fates",
			cfg:  faults.Config{FailureRate: 1, HangFraction: 0.5, MinLife: 2 * second, MaxLife: 8 * second},
			want: func(t *testing.T, o outcome) {
				if o.st.Deaths == 0 || o.st.Hangs == 0 {
					t.Fatalf("fate mix drew no deaths or no hangs: %+v", o.st)
				}
				if o.st.Deaths+o.st.Hangs != 12 {
					t.Fatalf("every allocation was doomed: %+v", o.st)
				}
				if o.st.KindCount(Kill) != o.st.Deaths || o.st.KindCount(Hang) != o.st.Hangs {
					t.Fatalf("fates travel as commands: %+v vs ByKind %v", o.st, o.st.ByKind)
				}
			},
		},
		{
			name: "command loss",
			cfg:  faults.Config{CmdLossRate: 0.5},
			want: func(t *testing.T, o outcome) {
				if o.st.LostCommands == 0 {
					t.Fatalf("no command loss drawn: %+v", o.st)
				}
				if o.st.CommandFailures != o.st.LostCommands {
					t.Fatalf("every lost command is a failed attempt: %+v", o.st)
				}
				if o.st.KindCount(BlockWidget)+o.st.KindCount(BlockMember) != 40 {
					t.Fatalf("lost commands must still count as attempts: %v", o.st.ByKind)
				}
				if o.st.KindCount(Deallocate) != 12 || o.st.LostCommands > 40 {
					t.Fatalf("lifecycle commands are exempt from loss: %+v", o.st)
				}
			},
		},
		{
			name: "everything at once",
			cfg: faults.Config{
				FailureRate: 0.6, HangFraction: 0.3, MinLife: 2 * second, MaxLife: 20 * second,
				// A zero outage window keeps allocation noise per-attempt, so
				// some leases survive to draw fates even at virtual time 0.
				AllocFailRate: 0.3,
				TraceDropRate: 0.2, TraceDelayRate: 0.3, TraceDelayMax: 2 * second,
				CmdLossRate: 0.4,
			},
			want: func(t *testing.T, o outcome) {
				st := o.st
				if st.Dropped == 0 || st.Delayed == 0 || st.Deaths == 0 || st.AllocFailures == 0 || st.LostCommands == 0 {
					t.Fatalf("combined plan left an injection channel cold: %+v", st)
				}
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			o := run(c.cfg, 7)
			st := o.st
			// The Injected identity holds under every mix.
			if got := st.Dropped + st.Delayed + st.Deaths + st.Hangs + st.AllocFailures + st.LostCommands; st.Injected() != got {
				t.Fatalf("Injected() = %d, field sum = %d (%+v)", st.Injected(), got, st)
			}
			// So does the command-mix identity.
			sum := 0
			for _, n := range st.ByKind {
				sum += n
			}
			if sum != st.Commands {
				t.Fatalf("ByKind sums to %d, Commands = %d", sum, st.Commands)
			}
			// Determinism: the same plan and workload always count the same.
			if again := run(c.cfg, 7); again.st != st {
				t.Fatalf("stats not reproducible:\n first %+v\nsecond %+v", st, again.st)
			}
			c.want(t, o)
		})
	}
}
