// Package bus is the coordination transport layer: the message fabric
// between testing instances and the test coordinator. Trace events flow up
// (instance → coordinator) through Publish/Subscribe; entrypoint blocks and
// lifecycle commands flow down (coordinator → executor) through Send.
//
// TaOPT's contribution is making parallel-testing coordination
// tool-agnostic; this package makes it transport-agnostic the same way. The
// coordinator consumes trace events and emits commands without knowing
// whether they travel in-process (Inline) or through a lossy, delaying farm
// network (WithFaults) — and fault injection composes as a transport
// decorator instead of special cases inside the run executor.
package bus

import (
	"errors"

	"taopt/internal/device"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// CommandKind enumerates the coordinator → executor commands.
type CommandKind int

// Command kinds.
const (
	// Allocate boots a new testing instance; the Reply carries its ID.
	Allocate CommandKind = iota
	// Deallocate releases a running instance.
	Deallocate
	// BlockWidget disables one widget on one screen of one instance, so the
	// tool can no longer take that edge into a dedicated subspace.
	BlockWidget
	// BlockMember marks a screen as subspace-owned on one instance, so the
	// driver steers the tool out if it slips in through an unobserved edge.
	BlockMember
	// Kill terminates an instance's emulator process mid-run (injected
	// death); the instance silently stops stepping.
	Kill
	// Hang wedges an instance (injected hang): it stops producing trace
	// events but stays allocated and billed until released.
	Hang

	// NumCommandKinds bounds the kind space (for per-kind accounting arrays).
	NumCommandKinds = int(Hang) + 1
)

func (k CommandKind) String() string {
	switch k {
	case Allocate:
		return "allocate"
	case Deallocate:
		return "deallocate"
	case BlockWidget:
		return "block-widget"
	case BlockMember:
		return "block-member"
	case Kill:
		return "kill"
	case Hang:
		return "hang"
	default:
		return "unknown-command"
	}
}

// Command is one coordinator → executor message. Instance addresses every
// kind except Allocate; Screen and Widget parameterise the block commands.
type Command struct {
	Kind     CommandKind
	Instance int
	Screen   ui.Signature
	Widget   ui.WidgetPath
}

// Reply is the executor's synchronous answer to a Command. For Allocate,
// Instance is the booted instance's ID.
type Reply struct {
	Instance int
	Err      error
}

// Sender is the coordinator-facing half of a transport: fire a command at
// the executor and get its reply. core.Coordinator holds only this.
type Sender interface {
	Send(cmd Command) Reply
}

// Executor is the executor-facing half: the run harness implements it to
// perform commands against the farm and the Toller drivers.
type Executor interface {
	Exec(cmd Command) Reply
}

// Stats is a transport's delivery accounting. Published counts trace events
// handed to the transport; Delivered counts those that reached subscribers
// (the difference is injected drops); Commands counts executor commands
// *attempted* — every Send, whether or not it succeeded. The fault counters
// mirror the decorating plan's injections and stay zero on an undecorated
// transport.
type Stats struct {
	Published int
	Delivered int
	Commands  int
	// ByKind breaks Commands down per CommandKind (indexed by the kind's
	// ordinal). An array, not a map, so Stats stays comparable — determinism
	// tests compare whole Stats values with ==.
	ByKind [NumCommandKinds]int
	// CommandFailures counts attempted commands whose reply carried an
	// error: unbound transport, farm saturation, injected outage or loss.
	// Commands - CommandFailures is the delivered-command count.
	CommandFailures int

	Dropped       int
	Delayed       int
	Deaths        int
	Hangs         int
	AllocFailures int
	// LostCommands counts downstream commands the fault plan swallowed
	// (reported to the sender as a timeout, never reaching the executor).
	LostCommands int
}

// KindCount returns the number of carried commands of one kind.
func (s Stats) KindCount(k CommandKind) int {
	if k < 0 || int(k) >= NumCommandKinds {
		return 0
	}
	return s.ByKind[k]
}

// Injected totals the injected faults the transport carried (the decorated
// equivalent of faults.Stats.Total).
func (s Stats) Injected() int {
	return s.Dropped + s.Delayed + s.Deaths + s.Hangs + s.AllocFailures + s.LostCommands
}

// Transport carries both directions of the coordination protocol plus its
// accounting. Implementations are single-threaded, like everything on the
// virtual clock: one run owns one transport.
type Transport interface {
	Sender
	// Publish forwards one trace event toward the subscribers.
	Publish(ev trace.Event)
	// Subscribe registers a trace-event consumer. Subscribers are invoked in
	// registration order.
	Subscribe(fn func(ev trace.Event))
	// Bind attaches the executor endpoint that performs commands.
	Bind(ex Executor)
	// Stats returns the delivery accounting so far.
	Stats() Stats
}

// ErrNotBound is returned for commands sent before Bind.
var ErrNotBound = errors.New("bus: no executor bound")

// ErrFarmBusy is the retryable allocation sentinel, re-exported so the
// coordinator can classify Allocate replies without importing the
// instance-side device package (the bus is the only seam between them —
// see DESIGN.md §10). It aliases the farm's sentinel, so errors.Is matches
// wrapped errors from either side.
var ErrFarmBusy = device.ErrFarmBusy

// ErrTimeout is the retryable command-timeout sentinel: the transport gave
// up waiting for a reply within its command timeout (or the fault plan
// swallowed the command, which the sender cannot distinguish from a slow
// reply — loss reports as timeout, not as silence).
var ErrTimeout = errors.New("bus: command timed out")

// Retryable reports whether a command failure is transient and worth
// re-issuing: the farm was momentarily saturated, or the transport timed
// out waiting for a reply. Everything else (unbound transport, unknown
// instance, config errors) is permanent.
func Retryable(err error) bool {
	return errors.Is(err, ErrFarmBusy) || errors.Is(err, ErrTimeout)
}

// Inline is the synchronous in-process transport: events and commands are
// delivered immediately, in order, with no loss — the fabric of a fault-free
// simulated run.
type Inline struct {
	subs  []func(trace.Event)
	ex    Executor
	stats Stats
}

// NewInline returns an empty in-process transport.
func NewInline() *Inline { return &Inline{} }

// Publish implements Transport.
//
//lint:hotpath
func (t *Inline) Publish(ev trace.Event) {
	t.stats.Published++
	t.stats.Delivered++
	for _, fn := range t.subs {
		fn(ev)
	}
}

// Subscribe implements Transport.
func (t *Inline) Subscribe(fn func(ev trace.Event)) { t.subs = append(t.subs, fn) }

// Bind implements Transport.
func (t *Inline) Bind(ex Executor) { t.ex = ex }

// Send implements Transport. Every attempt is counted — Commands/ByKind
// record what the coordinator asked for; CommandFailures records which of
// those attempts came back with an error (unbound transport included), so
// attempted and delivered commands are never conflated.
//
//lint:hotpath
func (t *Inline) Send(cmd Command) Reply {
	t.stats.Commands++
	if cmd.Kind >= 0 && int(cmd.Kind) < NumCommandKinds {
		t.stats.ByKind[cmd.Kind]++
	}
	if t.ex == nil {
		t.stats.CommandFailures++
		return Reply{Err: ErrNotBound}
	}
	rep := t.ex.Exec(cmd)
	if rep.Err != nil {
		t.stats.CommandFailures++
	}
	return rep
}

// Stats implements Transport.
func (t *Inline) Stats() Stats { return t.stats }
