package tools

import (
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/toller"
	"taopt/internal/ui"
)

// WCTester models the state-of-the-practice WeChat tester [72, 78]. The
// property the paper leans on (Section 3.3) is that WCTester "prioritizes the
// UI actions that trigger Activity transitions": it keeps per-element
// statistics and prefers, in order,
//
//  1. elements it has never tried anywhere (novelty),
//  2. elements previously observed to change the Activity,
//  3. a random enabled element.
//
// It also restarts exploration from the app root periodically, mimicking the
// tool's scripted "go home" recovery.
type WCTester struct {
	rng *sim.RNG
	// triedGlobal marks element identities (class#resource) ever fired.
	triedGlobal map[string]bool
	// activityChanger marks element identities observed to change Activity.
	activityChanger map[string]bool
	// lastActivity/lastKey track the previous step for statistics updates.
	lastActivity string
	lastKey      string
	hasLast      bool
	steps        int
}

const (
	wctGoHomeEvery   = 60 // scripted Back-to-root cadence (in actions)
	wctExploreNewP   = 0.70
	wctActivityBiasP = 0.75
)

// NewWCTester returns a fresh WCTester with the given seed.
func NewWCTester(seed int64) *WCTester {
	return &WCTester{
		rng:             sim.NewRNG(seed),
		triedGlobal:     make(map[string]bool),
		activityChanger: make(map[string]bool),
	}
}

// Name implements Tool.
func (w *WCTester) Name() string { return "wctester" }

// elementKey identifies a UI element across screens by class and resource ID
// — WCTester's statistics are element-identity based, not state based.
func elementKey(path ui.WidgetPath) string {
	// WidgetPath is "class#resource@indexes"; strip the position suffix so
	// the same logical element matches across screens.
	s := string(path)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '@' {
			return s[:i]
		}
	}
	return s
}

// Choose implements Tool.
func (w *WCTester) Choose(v toller.View) device.Action {
	w.observe(v)
	w.steps++
	if w.steps%wctGoHomeEvery == 0 {
		return w.record(v, backAction(v))
	}
	ts := taps(v)
	if len(ts) == 0 {
		return w.record(v, backAction(v))
	}

	// 1. Novel elements.
	if w.rng.Bool(wctExploreNewP) {
		var novel []device.Action
		for _, a := range ts {
			if !w.triedGlobal[elementKey(a.Path)] {
				novel = append(novel, a)
			}
		}
		if len(novel) > 0 {
			return w.record(v, novel[w.rng.Intn(len(novel))])
		}
	}

	// 2. Known activity-transition triggers.
	if w.rng.Bool(wctActivityBiasP) {
		var changers []device.Action
		for _, a := range ts {
			if w.activityChanger[elementKey(a.Path)] {
				changers = append(changers, a)
			}
		}
		if len(changers) > 0 {
			return w.record(v, changers[w.rng.Intn(len(changers))])
		}
	}

	// 3. Fallback: uniform random.
	return w.record(v, ts[w.rng.Intn(len(ts))])
}

func (w *WCTester) observe(v toller.View) {
	if w.hasLast && v.Screen.Activity != w.lastActivity && w.lastKey != "" {
		w.activityChanger[w.lastKey] = true
	}
}

func (w *WCTester) record(v toller.View, act device.Action) device.Action {
	key := ""
	if act.Widget >= 0 {
		key = elementKey(act.Path)
		w.triedGlobal[key] = true
	}
	w.lastActivity = v.Screen.Activity
	w.lastKey = key
	w.hasLast = true
	return act
}
