package tools

import (
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/toller"
)

// Monkey models the Android UI/Application Exerciser Monkey: a stream of
// pseudo-random events with no awareness of UI semantics. Monkey taps random
// screen coordinates, so a sizeable fraction of its events hit nothing
// interactive (modelled as re-tapping the same element or an inert area) and
// it injects Back events at a fixed ratio.
type Monkey struct {
	rng  *sim.RNG
	last device.Action
	has  bool
}

// Monkey event mix, loosely matching the real tool's default event table.
const (
	monkeyBackProb   = 0.10
	monkeyRepeatProb = 0.18 // coordinate taps often hit the same element twice
)

// NewMonkey returns a Monkey stream with the given seed.
func NewMonkey(seed int64) *Monkey { return &Monkey{rng: sim.NewRNG(seed)} }

// Name implements Tool.
func (m *Monkey) Name() string { return "monkey" }

// Choose implements Tool: a uniformly random enabled element, occasionally
// Back, occasionally a repeat of the previous tap.
func (m *Monkey) Choose(v toller.View) device.Action {
	if m.rng.Bool(monkeyBackProb) {
		m.has = false
		return backAction(v)
	}
	ts := taps(v)
	if len(ts) == 0 {
		m.has = false
		return backAction(v)
	}
	if m.has && m.rng.Bool(monkeyRepeatProb) {
		// Repeat the previous tap if that element is still present/enabled.
		for _, a := range ts {
			if a.Path == m.last.Path {
				return a
			}
		}
	}
	a := ts[m.rng.Intn(len(ts))]
	m.last, m.has = a, true
	return a
}
