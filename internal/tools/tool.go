// Package tools reimplements the exploration strategies of the paper's three
// automated UI testing tools (Section 6.1): Monkey (random input generation),
// Ape (model-based exploration with abstract-state refinement), and WCTester
// (the state-of-the-practice tool whose strategy prioritises UI actions that
// trigger Activity transitions).
//
// A Tool observes only a toller.View — never app internals — and returns one
// of the view's actions. Everything TaOPT-related is tool-agnostic: the
// coordinator never imports this package's concrete types.
package tools

import (
	"fmt"
	"sort"

	"taopt/internal/device"
	"taopt/internal/toller"
)

// Tool is one testing-tool process attached to one testing instance.
type Tool interface {
	// Name returns the tool's registry name.
	Name() string
	// Choose picks the next action from the view. The view always contains
	// at least the Back action.
	Choose(v toller.View) device.Action
}

// Factory creates a fresh tool process with its own random seed.
type Factory func(seed int64) Tool

var registry = map[string]Factory{
	"monkey":   func(seed int64) Tool { return NewMonkey(seed) },
	"ape":      func(seed int64) Tool { return NewApe(seed) },
	"wctester": func(seed int64) Tool { return NewWCTester(seed) },
}

// Names returns the registered tool names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates the named tool with the given seed.
func New(name string, seed int64) (Tool, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tools: unknown tool %q (have %v)", name, Names())
	}
	return f(seed), nil
}

// MustNew is New for static names; it panics on unknown tools.
func MustNew(name string, seed int64) Tool {
	t, err := New(name, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// taps returns the tap actions of a view (excluding Back). The slice aliases
// v.Actions' backing array ordering and is safe to index.
func taps(v toller.View) []device.Action {
	out := make([]device.Action, 0, len(v.Actions))
	for _, a := range v.Actions {
		if a.Widget >= 0 {
			out = append(out, a)
		}
	}
	return out
}

// backAction returns the view's Back action.
func backAction(v toller.View) device.Action {
	for _, a := range v.Actions {
		if a.Widget < 0 {
			return a
		}
	}
	// Views always include Back; reaching here is a driver bug.
	panic("tools: view without Back action")
}
