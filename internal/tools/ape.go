package tools

import (
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/toller"
	"taopt/internal/ui"
)

// Ape models the model-based tool of Gu et al. [26]: it maintains an abstract
// state-transition model of the app and systematically drives exploration
// toward the least-exercised actions. Two properties matter for the paper's
// results and are faithfully reproduced:
//
//   - systematic exploration: within one abstract state Ape fires the action
//     with the fewest trials, so two Ape instances with different seeds
//     converge onto very similar frontiers — the highest overlap of the
//     three tools (Figure 3, Table 6);
//   - model guidance: when the current state is saturated (every action well
//     exercised), Ape prefers actions that previously led to states with
//     untried actions.
type Ape struct {
	rng *sim.RNG
	// trials counts how often each (state, action) was fired.
	trials map[ui.Signature]map[ui.WidgetPath]int
	// actions records every action ever offered by a state, so the model
	// knows exactly which remain untried (Ape's state refinement keeps
	// per-state action sets).
	actions map[ui.Signature]map[ui.WidgetPath]bool
	// leadsTo records the observed destination of (state, action).
	leadsTo map[ui.Signature]map[ui.WidgetPath]ui.Signature
	// untried tracks exactly which known states still offer untried actions
	// (kept incrementally so decisions never depend on map iteration order).
	untried map[ui.Signature]bool
	// lastState/lastAction remember the previous step to update the model.
	lastState  ui.Signature
	lastAction ui.WidgetPath
	hasLast    bool
}

// apeEpsilon is the residual randomness in action selection. Real Ape is
// systematic but far from perfect on industrial apps (abstract-state
// explosion, flaky UI timing); the extra noise models that gap.
const apeEpsilon = 0.12

// NewApe returns a fresh Ape model with the given seed.
func NewApe(seed int64) *Ape {
	return &Ape{
		rng:     sim.NewRNG(seed),
		trials:  make(map[ui.Signature]map[ui.WidgetPath]int),
		actions: make(map[ui.Signature]map[ui.WidgetPath]bool),
		leadsTo: make(map[ui.Signature]map[ui.WidgetPath]ui.Signature),
		untried: make(map[ui.Signature]bool),
	}
}

// Name implements Tool.
func (a *Ape) Name() string { return "ape" }

// Choose implements Tool.
func (a *Ape) Choose(v toller.View) device.Action {
	a.observe(v)

	if a.rng.Bool(apeEpsilon) {
		return a.random(v)
	}

	ts := taps(v)
	if len(ts) == 0 {
		return a.record(v, backAction(v))
	}
	st := a.trials[v.Sig]

	// Least-tried action first (systematic exploration). Back participates
	// with a handicap so Ape prefers forward actions on fresh screens.
	best := ts[0]
	bestTrials := 1 << 30
	order := a.rng.Perm(len(ts)) // random tie-breaking, seed-dependent
	for _, i := range order {
		act := ts[i]
		n := st[act.Path]
		if n < bestTrials {
			best, bestTrials = act, n
		}
	}
	if bestTrials == 0 {
		return a.record(v, best)
	}

	// Saturated state: follow the model toward a state that still has
	// untried actions, if any outgoing action is known to reach one.
	var candidates []device.Action
	for _, act := range ts {
		dst, ok := a.leadsTo[v.Sig][act.Path]
		if ok && a.hasUntried(dst) {
			candidates = append(candidates, act)
		}
	}
	if back := backAction(v); a.hasUntriedBehindBack(v) {
		candidates = append(candidates, back)
	}
	if len(candidates) > 0 {
		return a.record(v, candidates[a.rng.Intn(len(candidates))])
	}
	return a.record(v, best)
}

// observe folds the transition that produced the current view into the
// model and registers the view's available actions for the state.
func (a *Ape) observe(v toller.View) {
	if a.hasLast {
		m, ok := a.leadsTo[a.lastState]
		if !ok {
			m = make(map[ui.WidgetPath]ui.Signature)
			a.leadsTo[a.lastState] = m
		}
		m[a.lastAction] = v.Sig
	}
	acts, ok := a.actions[v.Sig]
	if !ok {
		acts = make(map[ui.WidgetPath]bool)
		a.actions[v.Sig] = acts
	}
	for _, act := range v.Actions {
		if act.Widget >= 0 {
			acts[act.Path] = true
		}
	}
	a.refreshUntried(v.Sig)
}

// refreshUntried keeps the untried-state index exact for sig.
func (a *Ape) refreshUntried(sig ui.Signature) {
	if a.hasUntried(sig) {
		a.untried[sig] = true
	} else {
		delete(a.untried, sig)
	}
}

// record bumps the trial counter and remembers the step.
func (a *Ape) record(v toller.View, act device.Action) device.Action {
	st, ok := a.trials[v.Sig]
	if !ok {
		st = make(map[ui.WidgetPath]int)
		a.trials[v.Sig] = st
	}
	st[act.Path]++
	a.refreshUntried(v.Sig)
	a.lastState, a.lastAction, a.hasLast = v.Sig, act.Path, true
	return act
}

// hasUntried reports whether state sig has actions that were offered but
// never fired. Unknown states count as untried (optimism under uncertainty).
func (a *Ape) hasUntried(sig ui.Signature) bool {
	acts, ok := a.actions[sig]
	if !ok {
		return true
	}
	st := a.trials[sig]
	for path := range acts {
		if st[path] == 0 {
			return true
		}
	}
	return false
}

// hasUntriedBehindBack reports whether some state other than the current one
// still has untried actions — if so, backtracking toward it is worthwhile.
func (a *Ape) hasUntriedBehindBack(v toller.View) bool {
	if len(a.untried) > 1 {
		return true
	}
	if len(a.untried) == 1 {
		return !a.untried[v.Sig]
	}
	return false
}

func (a *Ape) random(v toller.View) device.Action {
	ts := taps(v)
	if len(ts) == 0 || a.rng.Bool(0.15) {
		return a.record(v, backAction(v))
	}
	return a.record(v, ts[a.rng.Intn(len(ts))])
}
