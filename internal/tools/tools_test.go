package tools

import (
	"testing"

	"taopt/internal/app"
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/toller"
	"taopt/internal/trace"
)

func viewFor(t *testing.T, seed int64) (*toller.Driver, toller.View) {
	t.Helper()
	a := app.MotivatingExample()
	d := toller.NewDriver(device.NewEmulator(0, a, sim.NewRNG(seed)), trace.NewBook(), 0)
	return d, d.View()
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		tool, err := New(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tool.Name() != n {
			t.Fatalf("tool %q reports name %q", n, tool.Name())
		}
	}
	if _, err := New("nope", 1); err == nil {
		t.Fatal("unknown tool must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on unknown tools")
		}
	}()
	MustNew("nope", 1)
}

// TestToolsReturnValidActions drives each tool for many steps and checks
// every chosen action is one of the view's actions.
func TestToolsReturnValidActions(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, _ := viewFor(t, 42)
			tool := MustNew(name, 7)
			for i := 0; i < 500; i++ {
				v := d.View()
				act := tool.Choose(v)
				found := false
				for _, cand := range v.Actions {
					if cand.Widget == act.Widget && cand.Path == act.Path {
						found = true
					}
				}
				if !found {
					t.Fatalf("step %d: tool chose action not in view: %+v", i, act)
				}
				d.Perform(act, sim.Duration(i)*sim.Duration(1e9))
			}
		})
	}
}

func TestToolsDeterministic(t *testing.T) {
	for _, name := range Names() {
		runOnce := func() []int {
			d, _ := viewFor(t, 1)
			tool := MustNew(name, 99)
			var widgets []int
			for i := 0; i < 200; i++ {
				v := d.View()
				act := tool.Choose(v)
				widgets = append(widgets, act.Widget)
				d.Perform(act, sim.Duration(i)*sim.Duration(1e9))
			}
			return widgets
		}
		a, b := runOnce(), runOnce()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: choice %d differs across identical runs", name, i)
			}
		}
	}
}

func TestToolsDivergeAcrossSeeds(t *testing.T) {
	for _, name := range []string{"monkey", "wctester"} {
		choices := func(seed int64) []int {
			d, _ := viewFor(t, 1)
			tool := MustNew(name, seed)
			var widgets []int
			for i := 0; i < 100; i++ {
				v := d.View()
				act := tool.Choose(v)
				widgets = append(widgets, act.Widget)
				d.Perform(act, 0)
			}
			return widgets
		}
		a, b := choices(1), choices(2)
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds produced identical runs", name)
		}
	}
}

func TestMonkeyUsesBack(t *testing.T) {
	d, _ := viewFor(t, 3)
	m := NewMonkey(5)
	backs := 0
	for i := 0; i < 1000; i++ {
		v := d.View()
		act := m.Choose(v)
		if act.Widget < 0 {
			backs++
		}
		d.Perform(act, 0)
	}
	if backs < 50 || backs > 300 {
		t.Fatalf("monkey pressed Back %d/1000 times, want ≈10%%", backs)
	}
}

// TestApeTriesAllActionsBeforeRepeating checks Ape's systematic property on
// a static screen: with navigation stripped, it must exercise every action
// before re-trying one.
func TestApeSystematicOnState(t *testing.T) {
	// One-screen app: all widgets are no-ops so the state never changes.
	a := &app.App{Name: "OneScreen", Login: -1, Subspaces: 1, MethodNames: []string{"m"}}
	var ws []app.Widget
	for i := 0; i < 6; i++ {
		ws = append(ws, app.Widget{
			Class: "android.widget.Button", ResourceID: string(rune('a' + i)),
			Label: "w", Target: app.TargetNone, CrashSite: -1,
		})
	}
	a.Screens = []*app.ScreenState{{ID: 0, Activity: "Act", Subspace: 0, Title: "S", Widgets: ws}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := toller.NewDriver(device.NewEmulator(0, a, sim.NewRNG(1)), trace.NewBook(), 0)
	ape := NewApe(3)
	seen := make(map[int]int)
	for i := 0; i < 6; i++ {
		v := d.View()
		act := ape.Choose(v)
		if act.Widget >= 0 {
			seen[act.Widget]++
		}
		d.Perform(act, 0)
	}
	// With epsilon noise Ape may occasionally randomise; require it to have
	// spread over at least 4 distinct widgets in 6 steps.
	if len(seen) < 4 {
		t.Fatalf("ape repeated actions while untried ones remained: %v", seen)
	}
}

func TestWCTesterPrefersNovelElements(t *testing.T) {
	d, _ := viewFor(t, 4)
	w := NewWCTester(6)
	// First pass over the hub: choices should be mostly distinct elements.
	seen := make(map[string]bool)
	repeats := 0
	for i := 0; i < 3; i++ {
		v := d.View()
		act := w.Choose(v)
		if act.Widget >= 0 {
			key := elementKey(act.Path)
			if seen[key] {
				repeats++
			}
			seen[key] = true
		}
		// Don't perform: stay on the same screen to observe selection only.
	}
	if repeats > 1 {
		t.Fatalf("wctester repeated elements %d times during novelty phase", repeats)
	}
}

func TestElementKeyStripsPosition(t *testing.T) {
	if elementKey("Button#res@1.2") != "Button#res" {
		t.Fatalf("elementKey = %q", elementKey("Button#res@1.2"))
	}
	if elementKey("noposition") != "noposition" {
		t.Fatal("elementKey must pass through malformed paths")
	}
}
