package apps

import (
	"testing"
)

func TestCatalogHas18Apps(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("catalog has %d apps, want 18 (Table 3)", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique at %d: %v", i, names)
		}
	}
}

func TestCatalogMatchesTable3(t *testing.T) {
	// Spot-check the paper's rows: name, version, login gate.
	want := map[string]struct {
		version string
		login   bool
	}{
		"Zedge":       {"7.34.4", false},
		"Quizlet":     {"6.6.2", true},
		"TripAdvisor": {"25.6.1", true},
		"WEBTOON":     {"2.4.3", true},
		"AbsWorkout":  {"4.2.0", false},
	}
	byName := make(map[string]Entry)
	for _, e := range Entries() {
		byName[e.Spec.Name] = e
	}
	logins := 0
	for _, e := range Entries() {
		if e.Login {
			logins++
		}
	}
	if logins != 3 {
		t.Fatalf("login-gated apps = %d, want 3 (Table 3 asterisks)", logins)
	}
	for name, w := range want {
		e, ok := byName[name]
		if !ok {
			t.Fatalf("missing app %q", name)
		}
		if e.Spec.Version != w.version || e.Login != w.login {
			t.Fatalf("%s: got (%s, %v), want (%s, %v)", name, e.Spec.Version, e.Login, w.version, w.login)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, err := Load("Sketch")
	if err != nil {
		t.Fatal(err)
	}
	b := MustLoad("Sketch")
	if a.MethodCount() != b.MethodCount() || len(a.Screens) != len(b.Screens) {
		t.Fatal("Load is not deterministic")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("NopeApp"); err == nil {
		t.Fatal("unknown app must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad must panic")
		}
	}()
	MustLoad("NopeApp")
}

func TestCatalogSizesOrdered(t *testing.T) {
	// Relative sizes track Table 4: Zedge is the largest universe and
	// Filters For Selfie the smallest.
	sizes := make(map[string]int)
	for _, name := range Names() {
		sizes[name] = MustLoad(name).MethodCount()
	}
	for name, n := range sizes {
		if name != "Zedge" && n >= sizes["Zedge"] {
			t.Fatalf("%s (%d) >= Zedge (%d)", name, n, sizes["Zedge"])
		}
		if name != "Filters For Selfie" && n <= sizes["Filters For Selfie"] {
			t.Fatalf("%s (%d) <= Filters For Selfie (%d)", name, n, sizes["Filters For Selfie"])
		}
	}
}

func TestCatalogAppsValidate(t *testing.T) {
	for _, name := range Names() {
		a := MustLoad(name)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Subspaces < 4 {
			t.Fatalf("%s: only %d functionalities", name, a.Subspaces)
		}
	}
}
