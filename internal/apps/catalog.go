// Package apps is the evaluation-subject catalog: 18 synthetic apps standing
// in for the 18 highly popular industrial apps of Table 3. Each entry keeps
// the paper's app name, version, category, download band and login
// requirement, and calibrates the generator so the apps' relative method
// universes track the magnitudes of Table 4 (small apps around a few
// thousand methods, Zedge the largest at ~90k).
package apps

import (
	"fmt"
	"hash/fnv"
	"sort"

	"taopt/internal/app"
)

// Entry describes one evaluation app.
type Entry struct {
	Spec app.Spec
	// Login mirrors Table 3's asterisk: the app requires a login to access
	// most features (the harness auto-logs in, as the paper does).
	Login bool
}

// seedFor derives a stable per-app generation seed from the app name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() >> 1)
}

// spec builds a calibrated Spec. Size knobs:
//
//	k        functionalities
//	scrMin/scrMax   screens per functionality
//	vmMin/vmMax     methods covered per screen visit
//	wmMin/wmMax     methods covered per interaction
func spec(name, version, category, downloads string, login bool,
	k, scrMin, scrMax, vmMin, vmMax, wmMin, wmMax, extra, crashes int) Entry {
	s := app.DefaultSpec(name, seedFor(name))
	s.Version = version
	s.Category = category
	s.Downloads = downloads
	s.Subspaces = k
	s.ScreensMin, s.ScreensMax = scrMin, scrMax
	s.VisitMethodsMin, s.VisitMethodsMax = vmMin, vmMax
	s.WidgetMethodsMin, s.WidgetMethodsMax = wmMin, wmMax
	s.ExtraMethods = extra
	s.CrashSites = crashes
	s.LoginRequired = login
	return Entry{Spec: s, Login: login}
}

// catalog mirrors Table 3 (names, versions, categories, download bands,
// login gates) with generator sizes calibrated to Table 4's coverage bands.
var catalog = []Entry{
	spec("AbsWorkout", "4.2.0", "Health & Fitness", "10m+", false, 6, 75, 110, 4, 10, 2, 5, 1200, 16),
	spec("AccuWeather", "7.4.1-5", "Weather", "100m+", false, 8, 87, 130, 6, 13, 4, 7, 2500, 12),
	spec("AutoScout24", "9.8.6", "Auto & Vehicles", "10m+", false, 10, 97, 152, 8, 16, 5, 9, 4000, 10),
	spec("Duolingo", "3.75.1", "Education", "100m+", false, 7, 87, 120, 6, 12, 3, 7, 2200, 12),
	spec("Filters For Selfie", "1.0.0", "Beauty", "10m+", false, 4, 42, 65, 3, 6, 2, 3, 400, 10),
	spec("GoodRx", "5.3.6", "Medical", "10m+", false, 7, 82, 120, 6, 12, 4, 7, 2200, 14),
	spec("Google Chrome", "65.0.3325", "Communication", "10b+", false, 6, 75, 110, 5, 10, 2, 5, 1500, 10),
	spec("Google Translate", "6.5.0", "Books & Reference", "1b+", false, 6, 75, 110, 5, 11, 2, 5, 1500, 16),
	spec("Marvel Comics", "3.10.3", "Comics", "10m+", false, 5, 65, 87, 4, 8, 2, 4, 800, 14),
	spec("Merriam-Webster", "4.1.2", "Books & Reference", "10m+", false, 5, 65, 97, 4, 9, 2, 5, 1000, 14),
	spec("Ms Word", "16.0.15", "Personal", "1b+", false, 7, 75, 120, 5, 11, 3, 6, 1800, 10),
	spec("Quizlet", "6.6.2", "Education", "10m+", true, 11, 97, 165, 9, 17, 5, 10, 5000, 12),
	spec("Sketch", "8.0.A.0.2", "Art & Design", "50m+", false, 5, 65, 97, 4, 9, 2, 4, 1000, 10),
	spec("TripAdvisor", "25.6.1", "Food & Drink", "100m+", true, 9, 97, 142, 7, 14, 4, 8, 3500, 16),
	spec("Trivago", "4.9.4", "Travel & Local", "50m+", false, 9, 97, 142, 7, 14, 4, 8, 3500, 12),
	spec("UC Browser", "13.0.0.1288", "Communication", "1b+", false, 8, 87, 130, 6, 13, 4, 7, 2500, 12),
	spec("WEBTOON", "2.4.3", "Comics", "100m+", true, 8, 87, 142, 6, 14, 4, 8, 2800, 14),
	spec("Zedge", "7.34.4", "Personalization", "100m+", false, 12, 130, 197, 10, 20, 5, 11, 6000, 16),
}

// Names returns the catalog's app names in Table 3 (alphabetical) order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, e := range catalog {
		out[i] = e.Spec.Name
	}
	sort.Strings(out)
	return out
}

// Entries returns the catalog in alphabetical order.
func Entries() []Entry {
	out := append([]Entry(nil), catalog...)
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Load generates the named evaluation app. Generation is deterministic, so
// repeated loads return structurally identical apps.
func Load(name string) (*app.App, error) {
	for _, e := range catalog {
		if e.Spec.Name == name {
			return app.Generate(e.Spec), nil
		}
	}
	return nil, fmt.Errorf("apps: unknown app %q", name)
}

// MustLoad is Load for static names.
func MustLoad(name string) *app.App {
	a, err := Load(name)
	if err != nil {
		panic(err)
	}
	return a
}
