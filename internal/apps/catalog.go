// Package apps is the evaluation-subject catalog: 18 synthetic apps standing
// in for the 18 highly popular industrial apps of Table 3. Each entry keeps
// the paper's app name, version, category, download band and login
// requirement, and calibrates the generator so the apps' relative method
// universes track the magnitudes of Table 4 (small apps around a few
// thousand methods, Zedge the largest at ~90k).
//
// The entries live as embedded scenario documents under scenarios/ — one
// versioned JSON file per app, compiled at init through internal/scenario.
// A differential test pins the compiled catalog byte-identical to the
// hard-coded table the files were generated from, and each entry carries its
// document's canonical hash, which the harness stamps into run exports.
package apps

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"taopt/internal/app"
	"taopt/internal/scenario"
)

//go:embed scenarios/*.json
var scenarioFS embed.FS

// Entry describes one evaluation app.
type Entry struct {
	Spec app.Spec
	// Login mirrors Table 3's asterisk: the app requires a login to access
	// most features (the harness auto-logs in, as the paper does).
	Login bool
	// Hash is the canonical content hash of the entry's scenario document.
	Hash string
}

// catalog holds the compiled entries in embedded-file (alphabetical) order.
var catalog []Entry

func init() {
	files, err := scenarioFS.ReadDir("scenarios")
	if err != nil {
		panic(fmt.Sprintf("apps: reading embedded scenarios: %v", err))
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Name() < files[j].Name() })
	for _, f := range files {
		data, err := scenarioFS.ReadFile("scenarios/" + f.Name())
		if err != nil {
			panic(fmt.Sprintf("apps: reading %s: %v", f.Name(), err))
		}
		a, err := scenario.CompileApp(data)
		if err != nil {
			panic(fmt.Sprintf("apps: compiling %s: %v", f.Name(), err))
		}
		catalog = append(catalog, Entry{Spec: a.Spec, Login: a.Login, Hash: a.Hash})
	}
}

// Names returns the catalog's app names in Table 3 (alphabetical) order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, e := range catalog {
		out[i] = e.Spec.Name
	}
	sort.Strings(out)
	return out
}

// Entries returns the catalog in alphabetical order.
func Entries() []Entry {
	out := append([]Entry(nil), catalog...)
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Lookup returns the named catalog entry without generating the app.
func Lookup(name string) (Entry, error) {
	for _, e := range catalog {
		if e.Spec.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("apps: unknown app %q (available: %s)", name, strings.Join(Names(), ", "))
}

// Hash returns the canonical scenario hash of the named catalog app ("" for
// an unknown name).
func Hash(name string) string {
	for _, e := range catalog {
		if e.Spec.Name == name {
			return e.Hash
		}
	}
	return ""
}

// Load generates the named evaluation app. Generation is deterministic, so
// repeated loads return structurally identical apps.
func Load(name string) (*app.App, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return app.Generate(e.Spec), nil
}

// MustLoad is Load for static names.
func MustLoad(name string) *app.App {
	a, err := Load(name)
	if err != nil {
		panic(err)
	}
	return a
}
