package apps

import (
	"strings"
	"testing"

	"taopt/internal/app"
)

// legacySpec reconstructs one row of the hard-coded table the embedded
// scenario files were generated from. It is retained verbatim so the
// differential test below can prove the scenario-compiled catalog is
// byte-identical to the pre-refactor one: same specs, same seeds, same
// generated apps, same golden exports.
func legacySpec(name, version, category, downloads string, login bool,
	k, scrMin, scrMax, vmMin, vmMax, wmMin, wmMax, extra, crashes int) Entry {
	s := app.DefaultSpec(name, app.SeedFor(name))
	s.Version = version
	s.Category = category
	s.Downloads = downloads
	s.Subspaces = k
	s.ScreensMin, s.ScreensMax = scrMin, scrMax
	s.VisitMethodsMin, s.VisitMethodsMax = vmMin, vmMax
	s.WidgetMethodsMin, s.WidgetMethodsMax = wmMin, wmMax
	s.ExtraMethods = extra
	s.CrashSites = crashes
	s.LoginRequired = login
	return Entry{Spec: s, Login: login}
}

// legacyCatalog is the pre-refactor table, in its original (alphabetical)
// order.
func legacyCatalog() []Entry {
	return []Entry{
		legacySpec("AbsWorkout", "4.2.0", "Health & Fitness", "10m+", false, 6, 75, 110, 4, 10, 2, 5, 1200, 16),
		legacySpec("AccuWeather", "7.4.1-5", "Weather", "100m+", false, 8, 87, 130, 6, 13, 4, 7, 2500, 12),
		legacySpec("AutoScout24", "9.8.6", "Auto & Vehicles", "10m+", false, 10, 97, 152, 8, 16, 5, 9, 4000, 10),
		legacySpec("Duolingo", "3.75.1", "Education", "100m+", false, 7, 87, 120, 6, 12, 3, 7, 2200, 12),
		legacySpec("Filters For Selfie", "1.0.0", "Beauty", "10m+", false, 4, 42, 65, 3, 6, 2, 3, 400, 10),
		legacySpec("GoodRx", "5.3.6", "Medical", "10m+", false, 7, 82, 120, 6, 12, 4, 7, 2200, 14),
		legacySpec("Google Chrome", "65.0.3325", "Communication", "10b+", false, 6, 75, 110, 5, 10, 2, 5, 1500, 10),
		legacySpec("Google Translate", "6.5.0", "Books & Reference", "1b+", false, 6, 75, 110, 5, 11, 2, 5, 1500, 16),
		legacySpec("Marvel Comics", "3.10.3", "Comics", "10m+", false, 5, 65, 87, 4, 8, 2, 4, 800, 14),
		legacySpec("Merriam-Webster", "4.1.2", "Books & Reference", "10m+", false, 5, 65, 97, 4, 9, 2, 5, 1000, 14),
		legacySpec("Ms Word", "16.0.15", "Personal", "1b+", false, 7, 75, 120, 5, 11, 3, 6, 1800, 10),
		legacySpec("Quizlet", "6.6.2", "Education", "10m+", true, 11, 97, 165, 9, 17, 5, 10, 5000, 12),
		legacySpec("Sketch", "8.0.A.0.2", "Art & Design", "50m+", false, 5, 65, 97, 4, 9, 2, 4, 1000, 10),
		legacySpec("TripAdvisor", "25.6.1", "Food & Drink", "100m+", true, 9, 97, 142, 7, 14, 4, 8, 3500, 16),
		legacySpec("Trivago", "4.9.4", "Travel & Local", "50m+", false, 9, 97, 142, 7, 14, 4, 8, 3500, 12),
		legacySpec("UC Browser", "13.0.0.1288", "Communication", "1b+", false, 8, 87, 130, 6, 13, 4, 7, 2500, 12),
		legacySpec("WEBTOON", "2.4.3", "Comics", "100m+", true, 8, 87, 142, 6, 14, 4, 8, 2800, 14),
		legacySpec("Zedge", "7.34.4", "Personalization", "100m+", false, 12, 130, 197, 10, 20, 5, 11, 6000, 16),
	}
}

// TestCatalogMatchesLegacyTable is the catalog-wide differential: every
// embedded scenario file must compile to exactly the Entry the hard-coded
// table produced — field for field, including the derived seed — so every
// downstream golden (exports, fleet reports, decision logs) is unchanged by
// the data-file refactor.
func TestCatalogMatchesLegacyTable(t *testing.T) {
	want := legacyCatalog()
	got := Entries()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Spec != w.Spec {
			t.Errorf("%s: compiled spec differs from legacy table:\n got %+v\nwant %+v", w.Spec.Name, g.Spec, w.Spec)
		}
		if g.Login != w.Login {
			t.Errorf("%s: login = %v, want %v", w.Spec.Name, g.Login, w.Login)
		}
		if g.Hash == "" {
			t.Errorf("%s: entry carries no scenario hash", w.Spec.Name)
		}
	}
}

// TestCatalogHashesDistinct pins that each entry's scenario hash identifies
// its document: 18 files, 18 distinct hashes, stable across loads.
func TestCatalogHashesDistinct(t *testing.T) {
	seen := make(map[string]string)
	for _, e := range Entries() {
		if prev, dup := seen[e.Hash]; dup {
			t.Fatalf("hash collision between %s and %s", prev, e.Spec.Name)
		}
		seen[e.Hash] = e.Spec.Name
		if Hash(e.Spec.Name) != e.Hash {
			t.Fatalf("Hash(%q) disagrees with the entry", e.Spec.Name)
		}
	}
	if Hash("NopeApp") != "" {
		t.Fatal("Hash of unknown app must be empty")
	}
}

func TestLoadUnknownListsAvailable(t *testing.T) {
	_, err := Load("NopeApp")
	if err == nil {
		t.Fatal("unknown app must error")
	}
	for _, name := range []string{"AbsWorkout", "Zedge"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list available app %q", err, name)
		}
	}
}
