package report

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"taopt/internal/harness"
	"taopt/internal/obs"
)

// Telemetry renders one run's observability digest: the coordinator's
// decision log aggregated by kind (with per-reason breakdowns where a kind
// carries one) followed by the metrics registry's snapshot. Everything is
// printed in sorted order from deterministic inputs, so the rendering of a
// seeded run is byte-stable.
func Telemetry(w io.Writer, res *harness.RunResult) error {
	tel := res.Telemetry
	if tel == nil {
		return fmt.Errorf("report: run carries no telemetry (enable RunConfig.Telemetry)")
	}
	log := tel.DecisionLog()

	header(w, "Telemetry: coordinator decision log")
	fmt.Fprintf(w, "decisions: %d\n", log.Len())
	byKind := log.CountByKind()
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	for _, k := range kinds {
		fmt.Fprintf(tw, "  %s\t%d\n", k, byKind[k])
		reasons := log.CountByReason(k)
		rs := make([]string, 0, len(reasons))
		for r := range reasons {
			if r != "" {
				rs = append(rs, r)
			}
		}
		sort.Strings(rs)
		for _, r := range rs {
			fmt.Fprintf(tw, "    %s\t%d\n", r, reasons[r])
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Frame-level traffic counters exist only when the run went over the
	// wire transport; they are process-level observability, deliberately
	// kept out of exports (see RunResult.Wire), so the digest is their only
	// rendered surface.
	if ws := res.Wire; ws != nil {
		header(w, "Telemetry: wire transport")
		tw = tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  frames up\t%d\t(%d bytes)\n", ws.FramesUp, ws.BytesUp)
		fmt.Fprintf(tw, "  frames down\t%d\t(%d bytes)\n", ws.FramesDown, ws.BytesDown)
		fmt.Fprintf(tw, "  command timeouts\t%d\n", ws.Timeouts)
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	header(w, "Telemetry: metrics")
	tw = tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	for _, m := range tel.Registry().Snapshot() {
		switch m.Type {
		case "counter":
			fmt.Fprintf(tw, "  %s\t%.0f\n", m.Name, m.Value)
		case "gauge":
			fmt.Fprintf(tw, "  %s\t%g\n", m.Name, m.Value)
		case "histogram":
			mean := 0.0
			if m.Count > 0 {
				mean = m.Value / float64(m.Count)
			}
			fmt.Fprintf(tw, "  %s\tn=%d min=%.2f mean=%.2f max=%.2f\n",
				m.Name, m.Count, m.Min, mean, m.Max)
		case "series":
			last := obs.SeriesPoint{}
			if n := len(m.Points); n > 0 {
				last = m.Points[n-1]
			}
			fmt.Fprintf(tw, "  %s\tsamples=%d last=%g\n", m.Name, len(m.Points), last.Value)
		}
	}
	return tw.Flush()
}
