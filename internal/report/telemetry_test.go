package report

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/export"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current run")

// telemetryRes runs the renderer's pinned configuration: one seeded chaos run
// with telemetry on, faults compressed into the 8-minute lease so the digest
// covers the full decision taxonomy.
func telemetryRes(t *testing.T) *harness.RunResult {
	t.Helper()
	minute := sim.Duration(60e9)
	fc := faults.DefaultConfig(0.20)
	fc.MinLife = 1 * minute
	fc.MaxLife = 5 * minute
	res, err := harness.Run(harness.RunConfig{
		App:       apps.MustLoad("Filters For Selfie"),
		Tool:      "monkey",
		Setting:   harness.TaOPTDuration,
		Duration:  8 * minute,
		Seed:      15,
		Faults:    &fc,
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTelemetryRendererGolden pins the full rendered digest of a seeded chaos
// run. The renderer sorts everything it prints, so the output is byte-stable;
// regenerate with: go test ./internal/report -run TelemetryRendererGolden -update
func TestTelemetryRendererGolden(t *testing.T) {
	var sb strings.Builder
	if err := Telemetry(&sb, telemetryRes(t)); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "telemetry_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("rendered telemetry digest diverges from golden (regenerate with -update if intended):\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestTelemetryRendererWireStats: a wire-transport run's digest carries the
// frame-level traffic section, an inline run's digest must not — and the
// counters stay out of the export either way.
func TestTelemetryRendererWireStats(t *testing.T) {
	run := func(tr harness.Transport) *harness.RunResult {
		res, err := harness.Run(harness.RunConfig{
			App:       apps.MustLoad("Filters For Selfie"),
			Tool:      "monkey",
			Setting:   harness.TaOPTDuration,
			Duration:  4 * sim.Duration(60e9),
			Seed:      3,
			Transport: tr,
			Telemetry: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run(harness.TransportWire)
	if res.Wire == nil {
		t.Fatal("wire run carries no Stats")
	}
	var sb strings.Builder
	if err := Telemetry(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Telemetry: wire transport") {
		t.Errorf("wire run digest lacks the wire-transport section:\n%s", out)
	}
	for _, want := range []string{
		fmt.Sprintf("(%d bytes)", res.Wire.BytesUp),
		fmt.Sprintf("(%d bytes)", res.Wire.BytesDown),
		"frames up", "frames down", "command timeouts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("digest does not render %q:\n%s", want, out)
		}
	}
	if b, err := json.Marshal(export.FromResult(res)); err != nil {
		t.Fatal(err)
	} else {
		for _, key := range []string{"frames_up", "frames_down", "FramesUp", "BytesUp"} {
			if strings.Contains(string(b), key) {
				t.Errorf("wire stats leaked into the export (%s)", key)
			}
		}
	}

	sb.Reset()
	if err := Telemetry(&sb, run(harness.TransportInline)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "wire transport") {
		t.Error("inline run digest renders a wire-transport section")
	}
}

// TestTelemetryRendererWithoutTelemetry: the renderer must refuse a run that
// collected nothing instead of printing an empty digest.
func TestTelemetryRendererWithoutTelemetry(t *testing.T) {
	res, err := harness.Run(harness.RunConfig{
		App:      apps.MustLoad("Filters For Selfie"),
		Tool:     "monkey",
		Setting:  harness.BaselineParallel,
		Duration: 2 * sim.Duration(60e9),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Telemetry(&sb, res); err == nil {
		t.Fatal("renderer accepted a run without telemetry")
	}
}
