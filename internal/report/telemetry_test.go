package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current run")

// telemetryRes runs the renderer's pinned configuration: one seeded chaos run
// with telemetry on, faults compressed into the 8-minute lease so the digest
// covers the full decision taxonomy.
func telemetryRes(t *testing.T) *harness.RunResult {
	t.Helper()
	minute := sim.Duration(60e9)
	fc := faults.DefaultConfig(0.20)
	fc.MinLife = 1 * minute
	fc.MaxLife = 5 * minute
	res, err := harness.Run(harness.RunConfig{
		App:       apps.MustLoad("Filters For Selfie"),
		Tool:      "monkey",
		Setting:   harness.TaOPTDuration,
		Duration:  8 * minute,
		Seed:      15,
		Faults:    &fc,
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTelemetryRendererGolden pins the full rendered digest of a seeded chaos
// run. The renderer sorts everything it prints, so the output is byte-stable;
// regenerate with: go test ./internal/report -run TelemetryRendererGolden -update
func TestTelemetryRendererGolden(t *testing.T) {
	var sb strings.Builder
	if err := Telemetry(&sb, telemetryRes(t)); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "telemetry_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("rendered telemetry digest diverges from golden (regenerate with -update if intended):\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestTelemetryRendererWithoutTelemetry: the renderer must refuse a run that
// collected nothing instead of printing an empty digest.
func TestTelemetryRendererWithoutTelemetry(t *testing.T) {
	res, err := harness.Run(harness.RunConfig{
		App:      apps.MustLoad("Filters For Selfie"),
		Tool:     "monkey",
		Setting:  harness.BaselineParallel,
		Duration: 2 * sim.Duration(60e9),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Telemetry(&sb, res); err == nil {
		t.Fatal("renderer accepted a run without telemetry")
	}
}
