// Package report regenerates every table and figure of the paper's
// preliminary study (Section 3) and evaluation (Section 6) from a harness
// campaign, printing the same rows and series the paper reports.
//
// Index (see DESIGN.md for the full mapping):
//
//	Figure3 — Jaccard similarity of covered methods over time, per tool
//	Table1  — UI-subspace exploration overlap histogram
//	Table2  — activity-based parallelization vs baseline (WCTester)
//	Figure5 — testing duration saved by TaOPT
//	Figure6 — machine time saved by TaOPT
//	Table4  — cumulative method coverage per app × tool × setting
//	Table5  — distinct crashes per app × tool × setting
//	Table6  — UI overlap per app × tool × setting
//	SingleLong — 5-hour non-parallel coverage comparison (RQ4 aside)
//	Preservation — behaviour preservation of TaOPT vs baseline (RQ5 aside)
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"taopt/internal/harness"
	"taopt/internal/metrics"
	"taopt/internal/sim"
)

// toolLabel maps registry names to the paper's column labels.
func toolLabel(tool string) string {
	switch tool {
	case "monkey":
		return "Mon."
	case "ape":
		return "Ape"
	case "wctester":
		return "WCT."
	default:
		return tool
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// Figure3 prints the AJS-over-time series for baseline parallelization, one
// series per tool, averaged across the campaign's apps (the paper's Figure 3:
// overlap rises over the hour; Ape highest).
func Figure3(w io.Writer, c *harness.Campaign) error {
	if err := c.Prefetch(nil, harness.BaselineParallel); err != nil {
		return err
	}
	header(w, "Figure 3: Overlaps of methods covered by different testing instances (baseline)")
	fmt.Fprintf(w, "%-12s", "time(s)")
	for _, tool := range c.Tools() {
		fmt.Fprintf(w, "%10s", toolLabel(tool))
	}
	fmt.Fprintln(w)

	// Sample the series at 10 evenly spaced times.
	dur := c.Config().Duration
	steps := 10
	for i := 1; i <= steps; i++ {
		at := dur * sim.Duration(i) / sim.Duration(steps)
		fmt.Fprintf(w, "%-12.0f", at.Seconds())
		for _, tool := range c.Tools() {
			var sum float64
			var n int
			for _, app := range c.Apps() {
				cell, err := c.Cell(app, tool, harness.BaselineParallel)
				if err != nil {
					return err
				}
				if v, ok := ajsAt(cell.Timeline, at); ok {
					sum += v
					n++
				}
			}
			if n == 0 {
				fmt.Fprintf(w, "%10s", "-")
				continue
			}
			fmt.Fprintf(w, "%10.3f", sum/float64(n))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ajsAt returns the AJS of the latest sample at or before t.
func ajsAt(tl metrics.Timeline, t sim.Duration) (float64, bool) {
	var v float64
	found := false
	for _, p := range tl {
		if p.Wall > t {
			break
		}
		v = p.AJS
		found = true
	}
	return v, found
}

// Table1 prints the UI-subspace exploration overlap histogram aggregated
// over all (app, tool) baseline runs.
func Table1(w io.Writer, c *harness.Campaign) error {
	if err := c.Prefetch(nil, harness.BaselineParallel); err != nil {
		return err
	}
	header(w, "Table 1: Overlaps of UI subspace exploration (baseline)")
	n := c.Config().Instances
	hist := make([]int, n)
	total := 0
	for _, tool := range c.Tools() {
		for _, app := range c.Apps() {
			cell, err := c.Cell(app, tool, harness.BaselineParallel)
			if err != nil {
				return err
			}
			for i, v := range cell.OverlapHist {
				if i < n {
					hist[i] += v
					total += v
				}
			}
		}
	}
	fmt.Fprintf(w, "%-16s", "Overlap freq.")
	for k := 1; k <= n; k++ {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d/%d", k, n))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s", "# of subspaces")
	for _, v := range hist {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d (%.0f%%)", v, pct))
	}
	fmt.Fprintln(w)
	shared := 0
	for k := 1; k < n; k++ {
		shared += hist[k]
	}
	fmt.Fprintf(w, "Total subspaces: %d; explored by >1 instance: %d (%.0f%%)\n",
		total, shared, pct(shared, total))
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Table2 prints WCTester's method coverage under activity-based
// parallelization vs baseline, per app (the paper's Table 2: −28.5% average).
func Table2(w io.Writer, c *harness.Campaign) error {
	if err := c.Prefetch([]string{"wctester"}, harness.BaselineParallel, harness.ActivityPartition); err != nil {
		return err
	}
	header(w, "Table 2: Method coverage of WCTester under activity-based parallelization")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "App Name\tBaseline\tParallel\tRel. Improve.")
	var sumBase, sumPar int
	for _, app := range c.Apps() {
		base, err := c.Cell(app, "wctester", harness.BaselineParallel)
		if err != nil {
			return err
		}
		par, err := c.Cell(app, "wctester", harness.ActivityPartition)
		if err != nil {
			return err
		}
		sumBase += base.Union
		sumPar += par.Union
		fmt.Fprintf(tw, "%s\t%d\t%d\t%+.1f%%\n", app, base.Union, par.Union, relDelta(base.Union, par.Union))
	}
	nApps := len(c.Apps())
	fmt.Fprintf(tw, "Average\t%d\t%d\t%+.1f%%\n", sumBase/nApps, sumPar/nApps, relDelta(sumBase, sumPar))
	return tw.Flush()
}

func relDelta(base, got int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(got-base) / float64(base)
}

// Figure5 prints the testing-duration savings statistics per tool and TaOPT
// mode (the paper's Figure 5 box plot, as summary rows).
func Figure5(w io.Writer, c *harness.Campaign) error {
	header(w, "Figure 5: Testing duration saved by TaOPT (percent of l_p)")
	return savingsFigure(w, c, true)
}

// Figure6 prints the machine-time savings statistics per tool and TaOPT mode
// (the paper's Figure 6).
func Figure6(w io.Writer, c *harness.Campaign) error {
	header(w, "Figure 6: Testing resources (machine time) saved by TaOPT (percent of budget)")
	return savingsFigure(w, c, false)
}

func savingsFigure(w io.Writer, c *harness.Campaign, duration bool) error {
	if err := c.Prefetch(nil, harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tool\tMode\tMean\tMedian\tP25\tP75\tMin\tMax")
	lp := c.Config().Duration
	budget := sim.Duration(c.Config().Instances) * lp
	for _, tool := range c.Tools() {
		for _, setting := range []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource} {
			var vals []float64
			for _, app := range c.Apps() {
				base, err := c.Cell(app, tool, harness.BaselineParallel)
				if err != nil {
					return err
				}
				cell, err := c.Cell(app, tool, setting)
				if err != nil {
					return err
				}
				var saved float64
				if duration {
					saved = metrics.DurationSaved(cell.Timeline, base.Union, lp)
				} else {
					saved = metrics.ResourceSaved(cell.Timeline, base.Union, budget)
				}
				vals = append(vals, 100*saved)
			}
			st := metrics.Summarize(vals)
			fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
				toolLabel(tool), setting, st.Mean, st.Median, st.P25, st.P75, st.Min, st.Max)
		}
	}
	return tw.Flush()
}

// Table4 prints cumulative code coverage per app × tool × setting with the
// paper's Δ annotations.
func Table4(w io.Writer, c *harness.Campaign) error {
	header(w, "Table 4: Statistics of cumulative code coverage")
	return perAppTable(w, c, func(cell *harness.CellSummary) float64 { return float64(cell.Union) }, "%d")
}

// Table5 prints distinct crashes per app × tool × setting.
func Table5(w io.Writer, c *harness.Campaign) error {
	header(w, "Table 5: Statistics of distinct crashes")
	return perAppTable(w, c, func(cell *harness.CellSummary) float64 { return float64(cell.UniqueCrashes) }, "%d")
}

// Table6 prints the UI overlap (average occurrences of distinct abstract
// UIs) per app × tool × setting, with the paper's Δ reduction row.
func Table6(w io.Writer, c *harness.Campaign) error {
	header(w, "Table 6: UI overlap measured by the average # of occurrences of distinct UIs")
	if err := c.Prefetch(nil, harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	settings := []harness.Setting{harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource}
	fmt.Fprint(tw, "App Name")
	for _, s := range settings {
		for _, tool := range c.Tools() {
			fmt.Fprintf(tw, "\t%s %s", shortSetting(s), toolLabel(tool))
		}
	}
	fmt.Fprintln(tw)
	sums := make([]float64, len(settings)*len(c.Tools()))
	for _, app := range c.Apps() {
		fmt.Fprint(tw, app)
		i := 0
		for _, s := range settings {
			for _, tool := range c.Tools() {
				cell, err := c.Cell(app, tool, s)
				if err != nil {
					return err
				}
				sums[i] += cell.UIOccAverage
				fmt.Fprintf(tw, "\t%.1f", cell.UIOccAverage)
				i++
			}
		}
		fmt.Fprintln(tw)
	}
	nApps := float64(len(c.Apps()))
	fmt.Fprint(tw, "Average")
	for _, s := range sums {
		fmt.Fprintf(tw, "\t%.1f", s/nApps)
	}
	fmt.Fprintln(tw)
	// Δ rows: relative overlap reduction vs baseline per tool and mode.
	nt := len(c.Tools())
	fmt.Fprint(tw, "Δ vs baseline")
	for i := range sums {
		if i < nt {
			fmt.Fprint(tw, "\t-")
			continue
		}
		base := sums[i%nt]
		if base == 0 {
			fmt.Fprint(tw, "\t-")
			continue
		}
		fmt.Fprintf(tw, "\t%.1f%%", 100*(base-sums[i])/base)
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

func shortSetting(s harness.Setting) string {
	switch s {
	case harness.BaselineParallel:
		return "Base"
	case harness.TaOPTDuration:
		return "TaOPT(D)"
	case harness.TaOPTResource:
		return "TaOPT(R)"
	case harness.SingleLong, harness.ActivityPartition, harness.PATSMasterSlave:
		// The comparison baselines have no abbreviated form.
		return s.String()
	default:
		return s.String()
	}
}

// perAppTable renders the Table 4/5 layout: baseline and both TaOPT modes
// per tool, with per-cell Δ percentages and the average Δ footer.
func perAppTable(w io.Writer, c *harness.Campaign, value func(*harness.CellSummary) float64, format string) error {
	if err := c.Prefetch(nil, harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	settings := []harness.Setting{harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource}
	fmt.Fprint(tw, "App Name")
	for _, s := range settings {
		for _, tool := range c.Tools() {
			fmt.Fprintf(tw, "\t%s %s", shortSetting(s), toolLabel(tool))
		}
	}
	fmt.Fprintln(tw)

	nt := len(c.Tools())
	sums := make([]float64, len(settings)*nt)
	for _, app := range c.Apps() {
		fmt.Fprint(tw, app)
		var baseVals []float64
		i := 0
		for _, s := range settings {
			for _, tool := range c.Tools() {
				cell, err := c.Cell(app, tool, s)
				if err != nil {
					return err
				}
				v := value(cell)
				sums[i] += v
				if s == harness.BaselineParallel {
					baseVals = append(baseVals, v)
					fmt.Fprintf(tw, "\t"+format, int(v))
				} else {
					base := baseVals[i%nt]
					if base > 0 {
						fmt.Fprintf(tw, "\t"+format+" (%+.0f%%)", int(v), 100*(v-base)/base)
					} else {
						fmt.Fprintf(tw, "\t"+format, int(v))
					}
				}
				i++
			}
		}
		fmt.Fprintln(tw)
	}
	nApps := float64(len(c.Apps()))
	fmt.Fprint(tw, "Average")
	for i, s := range sums {
		avg := s / nApps
		if i < nt {
			fmt.Fprintf(tw, "\t%.0f", avg)
		} else {
			base := sums[i%nt]
			if base > 0 {
				fmt.Fprintf(tw, "\t%.0f (%+.1f%%)", avg, 100*(s-base)/base)
			} else {
				fmt.Fprintf(tw, "\t%.0f", avg)
			}
		}
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// SingleLong prints the RQ4 aside: one 5-hour instance vs the parallel
// settings, averaged over apps.
func SingleLong(w io.Writer, c *harness.Campaign) error {
	if err := c.Prefetch(nil, harness.SingleLong, harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
		return err
	}
	header(w, "RQ4 aside: 5-hour non-parallel runs vs parallel runs (average coverage)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tool\tSingle 5h\tBaseline 5×1h\tTaOPT(D)\tTaOPT(R)")
	for _, tool := range c.Tools() {
		var single, base, dur, res float64
		for _, app := range c.Apps() {
			s, err := c.Cell(app, tool, harness.SingleLong)
			if err != nil {
				return err
			}
			b, err := c.Cell(app, tool, harness.BaselineParallel)
			if err != nil {
				return err
			}
			d, err := c.Cell(app, tool, harness.TaOPTDuration)
			if err != nil {
				return err
			}
			r, err := c.Cell(app, tool, harness.TaOPTResource)
			if err != nil {
				return err
			}
			single += float64(s.Union)
			base += float64(b.Union)
			dur += float64(d.Union)
			res += float64(r.Union)
		}
		n := float64(len(c.Apps()))
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n", toolLabel(tool), single/n, base/n, dur/n, res/n)
	}
	return tw.Flush()
}

// Preservation prints the RQ5 behaviour-preservation analysis: Jaccard
// similarity between baseline and TaOPT covered-method sets, and the
// fraction of baseline methods TaOPT misses.
func Preservation(w io.Writer, c *harness.Campaign) error {
	if err := c.Prefetch(nil, harness.BaselineParallel, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
		return err
	}
	header(w, "RQ5 aside: behaviour preservation (TaOPT vs baseline covered methods)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tool\tMode\tJaccard\tBaseline methods missed")
	for _, tool := range c.Tools() {
		for _, setting := range []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource} {
			var sumJ, sumM float64
			for _, app := range c.Apps() {
				base, err := c.Cell(app, tool, harness.BaselineParallel)
				if err != nil {
					return err
				}
				cell, err := c.Cell(app, tool, setting)
				if err != nil {
					return err
				}
				j, m := metrics.BehaviorPreservation(base.UnionSet, cell.UnionSet)
				sumJ += j
				sumM += m
			}
			n := float64(len(c.Apps()))
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f%%\n", toolLabel(tool), setting, sumJ/n, 100*sumM/n)
		}
	}
	return tw.Flush()
}

// All regenerates every table and figure in paper order.
func All(w io.Writer, c *harness.Campaign) error {
	steps := []func(io.Writer, *harness.Campaign) error{
		Figure3, Table1, Table2, Figure5, Figure6, Table4, Table5, Table6, SingleLong, Preservation,
	}
	for _, step := range steps {
		if err := step(w, c); err != nil {
			return err
		}
	}
	return nil
}
