package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/metrics"
)

// chaosRates are the instance-failure rates of the robustness experiment.
// 0% is the paper's (implicitly fault-free) setup; 5% models a healthy
// commercial device farm; 20% models the flaky in-house labs that Section 8's
// deployment notes warn about.
var chaosRates = []float64{0, 0.05, 0.20}

// Chaos prints the fault-injection experiment: the campaign grid re-run under
// increasing instance-failure rates, with coverage, crash and
// behaviour-preservation deltas against the fault-free run. The fault mix per
// rate is faults.DefaultConfig; every chaos campaign derives its plans from
// the same campaign seed, so the table is byte-for-byte reproducible.
func Chaos(w io.Writer, c *harness.Campaign) error {
	header(w, "Chaos: TaOPT under injected device-farm failures")

	// One derived campaign per rate; rate 0 reuses the caller's campaign (and
	// its cache).
	campaigns := make([]*harness.Campaign, len(chaosRates))
	for i, rate := range chaosRates {
		if rate == 0 {
			campaigns[i] = c
			continue
		}
		cfg := c.Config()
		fc := faults.DefaultConfig(rate)
		cfg.Faults = &fc
		campaigns[i] = harness.NewCampaign(cfg)
	}
	for _, cc := range campaigns {
		if err := cc.Prefetch(nil, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
			return err
		}
	}

	for _, setting := range []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource} {
		fmt.Fprintf(w, "\n%s\n", setting)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Tool\tFailure rate\tCoverage\tΔ cov.\tCrashes\tFailed inst.\tFaults\tOrphans\tJaccard vs fault-free")
		for _, tool := range c.Tools() {
			baseCov := 0.0
			for i, rate := range chaosRates {
				var cov, crashes, failed, injected, orphans float64
				var jacc float64
				for _, appName := range c.Apps() {
					cell, err := campaigns[i].Cell(appName, tool, setting)
					if err != nil {
						return err
					}
					cov += float64(cell.Union)
					crashes += float64(cell.UniqueCrashes)
					failed += float64(cell.FailedInstances)
					injected += float64(cell.FaultsInjected)
					orphans += float64(cell.OrphansPending)
					clean, err := campaigns[0].Cell(appName, tool, setting)
					if err != nil {
						return err
					}
					jacc += metrics.Jaccard(clean.UnionSet, cell.UnionSet)
				}
				n := float64(len(c.Apps()))
				if rate == 0 {
					baseCov = cov
				}
				delta := "-"
				if rate > 0 && baseCov > 0 {
					delta = fmt.Sprintf("%+.1f%%", 100*(cov-baseCov)/baseCov)
				}
				fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
					toolLabel(tool), 100*rate, cov/n, delta, crashes/n, failed/n, injected/n, orphans/n, jacc/n)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
