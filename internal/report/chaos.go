package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/metrics"
)

// ChaosVariant is one column group of the chaos experiment: a labelled fault
// configuration the campaign grid is re-run under.
type ChaosVariant struct {
	Label  string
	Config faults.Config
}

// DefaultChaosGrid returns the paper-calibrated fault sweep: 0% is the
// (implicitly fault-free) setup; 5% models a healthy commercial device farm;
// 20% models the flaky in-house labs that Section 8's deployment notes warn
// about. The fault mix per rate is faults.DefaultConfig. Scenario files can
// express the same grid (testdata/scenarios/chaos-grid.json pins this by
// test) or sweep a custom one.
func DefaultChaosGrid() []ChaosVariant {
	out := make([]ChaosVariant, 0, 3)
	for _, rate := range []float64{0, 0.05, 0.20} {
		out = append(out, ChaosVariant{
			Label:  fmt.Sprintf("%.0f%%", 100*rate),
			Config: faults.DefaultConfig(rate),
		})
	}
	return out
}

// Chaos prints the fault-injection experiment under the default grid. Every
// chaos campaign derives its plans from the same campaign seed, so the table
// is byte-for-byte reproducible.
func Chaos(w io.Writer, c *harness.Campaign) error {
	return ChaosGrid(w, c, DefaultChaosGrid())
}

// ChaosGrid prints the fault-injection experiment over an explicit variant
// grid: the campaign re-run under each variant, with coverage, crash and
// behaviour-preservation deltas against the first variant (the baseline row
// — by convention fault-free). A disabled variant config reuses the caller's
// campaign and its cache.
func ChaosGrid(w io.Writer, c *harness.Campaign, grid []ChaosVariant) error {
	if len(grid) == 0 {
		return fmt.Errorf("report: chaos grid is empty")
	}
	header(w, "Chaos: TaOPT under injected device-farm failures")

	campaigns := make([]*harness.Campaign, len(grid))
	for i, v := range grid {
		if !v.Config.Enabled() {
			campaigns[i] = c
			continue
		}
		cfg := c.Config()
		fc := v.Config
		cfg.Faults = &fc
		campaigns[i] = harness.NewCampaign(cfg)
	}
	for _, cc := range campaigns {
		if err := cc.Prefetch(nil, harness.TaOPTDuration, harness.TaOPTResource); err != nil {
			return err
		}
	}

	for _, setting := range []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource} {
		fmt.Fprintf(w, "\n%s\n", setting)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Tool\tFailure rate\tCoverage\tΔ cov.\tCrashes\tFailed inst.\tFaults\tOrphans\tJaccard vs fault-free")
		for _, tool := range c.Tools() {
			baseCov := 0.0
			for i, v := range grid {
				var cov, crashes, failed, injected, orphans float64
				var jacc float64
				for _, appName := range c.Apps() {
					cell, err := campaigns[i].Cell(appName, tool, setting)
					if err != nil {
						return err
					}
					cov += float64(cell.Union)
					crashes += float64(cell.UniqueCrashes)
					failed += float64(cell.FailedInstances)
					injected += float64(cell.FaultsInjected)
					orphans += float64(cell.OrphansPending)
					clean, err := campaigns[0].Cell(appName, tool, setting)
					if err != nil {
						return err
					}
					jacc += metrics.Jaccard(clean.UnionSet, cell.UnionSet)
				}
				n := float64(len(c.Apps()))
				if i == 0 {
					baseCov = cov
				}
				delta := "-"
				if i > 0 && baseCov > 0 {
					delta = fmt.Sprintf("%+.1f%%", 100*(cov-baseCov)/baseCov)
				}
				fmt.Fprintf(tw, "%s\t%s\t%.0f\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
					toolLabel(tool), v.Label, cov/n, delta, crashes/n, failed/n, injected/n, orphans/n, jacc/n)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
