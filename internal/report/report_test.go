package report

import (
	"strings"
	"testing"

	"taopt/internal/harness"
	"taopt/internal/sim"
)

// tinyCampaign runs a fast two-app campaign (short budgets) shared by all
// renderer tests via sync caching inside the campaign.
func tinyCampaign() *harness.Campaign {
	return harness.NewCampaign(harness.CampaignConfig{
		Apps:     []string{"Filters For Selfie", "Marvel Comics"},
		Tools:    []string{"monkey", "wctester"},
		Duration: 8 * sim.Duration(60e9),
		Seed:     3,
	})
}

func TestRenderersProduceTables(t *testing.T) {
	c := tinyCampaign()
	cases := map[string]struct {
		fn   func(w *strings.Builder, c *harness.Campaign) error
		want []string
	}{
		"fig3":   {func(w *strings.Builder, c *harness.Campaign) error { return Figure3(w, c) }, []string{"Figure 3", "Mon.", "WCT."}},
		"table1": {func(w *strings.Builder, c *harness.Campaign) error { return Table1(w, c) }, []string{"Table 1", "Overlap freq.", "5/5"}},
		"table2": {func(w *strings.Builder, c *harness.Campaign) error { return Table2(w, c) }, []string{"Table 2", "Marvel Comics", "Average"}},
		"fig5":   {func(w *strings.Builder, c *harness.Campaign) error { return Figure5(w, c) }, []string{"Figure 5", "taopt-duration", "taopt-resource"}},
		"fig6":   {func(w *strings.Builder, c *harness.Campaign) error { return Figure6(w, c) }, []string{"Figure 6", "Mean"}},
		"table4": {func(w *strings.Builder, c *harness.Campaign) error { return Table4(w, c) }, []string{"Table 4", "TaOPT(D) Mon.", "Average"}},
		"table5": {func(w *strings.Builder, c *harness.Campaign) error { return Table5(w, c) }, []string{"Table 5", "crashes"}},
		"table6": {func(w *strings.Builder, c *harness.Campaign) error { return Table6(w, c) }, []string{"Table 6", "Δ vs baseline"}},
		"single": {func(w *strings.Builder, c *harness.Campaign) error { return SingleLong(w, c) }, []string{"5-hour", "Single 5h"}},
		"preserve": {func(w *strings.Builder, c *harness.Campaign) error { return Preservation(w, c) },
			[]string{"behaviour preservation", "Jaccard"}},
	}
	for name, tc := range cases {
		name, tc := name, tc
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := tc.fn(&sb, c); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
			// Every renderer emits one row per app or per tool — at least
			// several lines.
			if strings.Count(out, "\n") < 3 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestTable4DeltasConsistent(t *testing.T) {
	c := tinyCampaign()
	var sb strings.Builder
	if err := Table4(&sb, c); err != nil {
		t.Fatal(err)
	}
	// Re-rendering from the cache must be identical (cells cached).
	var sb2 strings.Builder
	if err := Table4(&sb2, c); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("re-rendered table differs: cells not cached deterministically")
	}
}

// TestChaosRenderer exercises the fault-injection table on a one-app
// campaign: it must print all three failure rates and reproduce exactly
// across invocations (the chaos campaigns derive their plans from the same
// campaign seed).
func TestChaosRenderer(t *testing.T) {
	render := func() string {
		c := harness.NewCampaign(harness.CampaignConfig{
			Apps:     []string{"Filters For Selfie"},
			Tools:    []string{"monkey"},
			Duration: 8 * sim.Duration(60e9),
			Seed:     3,
		})
		var sb strings.Builder
		if err := Chaos(&sb, c); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	out := render()
	for _, want := range []string{"Chaos", "0%", "5%", "20%", "Jaccard vs fault-free", "taopt-duration", "taopt-resource"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
	if again := render(); again != out {
		t.Fatalf("chaos table not reproducible:\n--- first\n%s\n--- second\n%s", out, again)
	}
}
