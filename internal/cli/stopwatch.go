package cli

import "time"

// Stopwatch measures wall-clock elapsed time for the benchmark harness.
// Wall time is banned everywhere under the determinism contract
// (DESIGN.md §10) except this package: benchmarks are the one consumer that
// genuinely needs it, so cmd/bench reads its clock through here rather than
// importing time itself.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch returns a running stopwatch.
func NewStopwatch() *Stopwatch { return &Stopwatch{start: time.Now()} }

// Restart rewinds the stopwatch to zero.
func (s *Stopwatch) Restart() { s.start = time.Now() }

// ElapsedNS returns nanoseconds since the last (re)start.
func (s *Stopwatch) ElapsedNS() int64 { return time.Since(s.start).Nanoseconds() }
