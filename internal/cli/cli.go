// Package cli holds the small helpers shared by this repository's command
// binaries.
package cli

import (
	"fmt"
	"os"
)

// Fatalf returns the program's fatal-error reporter: a printf that prefixes
// the program name, writes to stderr, and exits with status 1.
func Fatalf(prog string) func(format string, args ...any) {
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
		os.Exit(1)
	}
}
