package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the pprof profiles the command binaries expose via
// -cpuprofile/-memprofile. Either path may be empty to skip that profile.
// The returned stop function finishes the CPU profile and writes the heap
// profile; call it exactly once on the way out (it is safe when both paths
// were empty).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cli: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("cli: creating mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("cli: writing mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
