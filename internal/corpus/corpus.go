// Package corpus is the cross-run analytics layer over binary trace files
// (internal/trace/bin): it streams a whole directory of recorded runs in one
// pass — never holding more than one run's bounded summary in memory — and
// aggregates the signals that only exist at corpus scale: crash-signature
// clusters across runs, coverage-curve percentiles across seeds, and
// flakiness (the same scenario diverging in outcome across runs). This is
// the "thousands of concurrent hour-long runs" consumer the ROADMAP calls
// for; cmd/tracetool's corpus subcommand is its CLI.
//
// Every aggregation and its rendering are deterministic: runs are scanned in
// sorted filename order and every map is reduced through collect-and-sort,
// so the same corpus always renders byte-identically (the CI golden step
// diffs two generations of it).
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"taopt/internal/trace/bin"
)

// Ext is the binary trace filename extension ScanDir selects on.
const Ext = ".taoptb"

// CurvePoint is one point of a run's coverage-over-virtual-time curve.
type CurvePoint struct {
	WallNS  int64
	Covered int
}

// RunStat is the bounded digest of one binary trace: identity, record
// counts, headline outcome, crash signatures and the coverage curve. It is
// what a one-pass scan keeps per run — never the events themselves.
type RunStat struct {
	// Path is the trace's base filename.
	Path   string
	Header bin.Header
	// Bytes is the stream length on disk.
	Bytes int64

	Events    int
	Samples   int
	Decisions int
	Instances int
	Screens   int
	Subspaces int
	Metrics   int

	WallNS        int64
	MachineNS     int64
	Coverage      int
	UniqueCrashes int

	// CrashSigs maps each crash signature to its occurrence count across
	// the run's instances.
	CrashSigs map[string]int

	// Curve is the covered-methods-over-wall-time curve from the timeline
	// samples, in sample order.
	Curve []CurvePoint
}

// Scan streams one binary trace and reduces it to its RunStat. name and
// size fill the Path and Bytes fields (callers reading from disk pass the
// base filename and file length).
func Scan(r io.Reader, name string, size int64) (*RunStat, error) {
	br, err := bin.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", name, err)
	}
	st := &RunStat{
		Path:      name,
		Header:    br.Header(),
		Bytes:     size,
		CrashSigs: make(map[string]int),
	}
	sawEnd := false
	for {
		rec, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		switch rec.Kind {
		case bin.KindEvent:
			st.Events++
		case bin.KindSample:
			st.Samples++
			st.Curve = append(st.Curve, CurvePoint{WallNS: rec.Sample.WallNS, Covered: rec.Sample.Covered})
		case bin.KindDecision:
			st.Decisions++
		case bin.KindInstance:
			st.Instances++
			for _, cr := range rec.Summary.Crashes {
				st.CrashSigs[cr.Signature]++
			}
		case bin.KindScreen:
			st.Screens++
		case bin.KindSubspace:
			st.Subspaces++
		case bin.KindMetric:
			st.Metrics++
		case bin.KindEnd:
			st.WallNS = rec.End.WallNS
			st.MachineNS = rec.End.MachineNS
			st.Coverage = rec.End.Coverage
			st.UniqueCrashes = rec.End.UniqueCrashes
			sawEnd = true
		case bin.KindTransport:
			// Chaos transport accounting is export-level detail; corpus
			// stats aggregate run outcomes only.
		case bin.KindHeader, bin.KindStrDef, bin.KindSigDef:
			// The Reader consumes header and interning records internally;
			// one surfacing from Next means the stream (or Reader) is broken.
			return nil, fmt.Errorf("corpus: %s: %w: %v record surfaced mid-stream", name, bin.ErrCorrupt, rec.Kind)
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("corpus: %s: %w: stream ends without end record", name, bin.ErrCorrupt)
	}
	return st, nil
}

// ScanFile streams one binary trace file from disk.
func ScanFile(path string) (*RunStat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return Scan(bufio.NewReaderSize(f, 64<<10), filepath.Base(path), info.Size())
}

// ScanDir streams every *.taoptb file of dir in sorted filename order —
// one pass, one run's digest in memory at a time.
func ScanDir(dir string) ([]*RunStat, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), Ext) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("corpus: no %s files in %s", Ext, dir)
	}
	out := make([]*RunStat, 0, len(names))
	for _, name := range names {
		st, err := ScanFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// cellKey groups runs that differ only in seed: the scenario identity (the
// canonical content hash when the run carried one, the app name otherwise)
// plus tool and setting.
func cellKey(st *RunStat) string {
	id := st.Header.App
	if h := st.Header.ScenarioHash; h != "" {
		if len(h) > 12 {
			h = h[:12]
		}
		id = st.Header.App + "#" + h
	}
	return id + "/" + st.Header.Tool + "/" + st.Header.Setting
}

// coverageAt reads the run's coverage at wall time t: the last sample at or
// before t (coverage is monotone within a run).
func coverageAt(st *RunStat, t int64) int {
	cov := 0
	for _, p := range st.Curve {
		if p.WallNS > t {
			break
		}
		cov = p.Covered
	}
	return cov
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// outcome is a run's comparable result: clean, or the sorted set of crash
// signatures it hit.
func outcome(st *RunStat) string {
	if len(st.CrashSigs) == 0 {
		return "clean"
	}
	sigs := make([]string, 0, len(st.CrashSigs))
	for sig := range st.CrashSigs {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return "crash{" + strings.Join(sigs, ",") + "}"
}

// Render writes the corpus analytics: the corpus summary, cross-run
// crash-signature clusters, per-cell coverage-curve percentiles, and
// flakiness (cells whose runs diverge in outcome). Output is deterministic
// for a given corpus.
func Render(w io.Writer, stats []*RunStat) error {
	if len(stats) == 0 {
		return fmt.Errorf("corpus: nothing to render")
	}
	var events, bytes int64
	for _, st := range stats {
		events += int64(st.Events)
		bytes += st.Bytes
	}
	fmt.Fprintf(w, "corpus: %d runs, %d events, %d bytes binary (%.1f bytes/event)\n",
		len(stats), events, bytes, float64(bytes)/float64(max64(events, 1)))

	renderCrashClusters(w, stats)
	renderCoveragePercentiles(w, stats)
	renderFlakiness(w, stats)
	return nil
}

// renderCrashClusters aggregates crash signatures across every run: the
// cross-run view that separates a crash every seed hits from a one-off.
func renderCrashClusters(w io.Writer, stats []*RunStat) {
	type cluster struct {
		runs  int
		hits  int
		cells map[string]bool
	}
	clusters := make(map[string]*cluster)
	for _, st := range stats {
		sigs := make([]string, 0, len(st.CrashSigs))
		for sig := range st.CrashSigs {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			c := clusters[sig]
			if c == nil {
				c = &cluster{cells: make(map[string]bool)}
				clusters[sig] = c
			}
			c.runs++
			c.hits += st.CrashSigs[sig]
			c.cells[cellKey(st)] = true
		}
	}
	fmt.Fprintf(w, "\ncrash clusters (%d distinct signatures across %d runs):\n", len(clusters), len(stats))
	if len(clusters) == 0 {
		fmt.Fprintln(w, "  none")
		return
	}
	sigs := make([]string, 0, len(clusters))
	for sig := range clusters {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := clusters[sigs[i]], clusters[sigs[j]]
		if a.runs != b.runs {
			return a.runs > b.runs
		}
		return sigs[i] < sigs[j]
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SIGNATURE\tRUNS\tOCCURRENCES\tCELLS")
	for _, sig := range sigs {
		c := clusters[sig]
		fmt.Fprintf(tw, "  %s\t%d/%d\t%d\t%d\n", sig, c.runs, len(stats), c.hits, len(c.cells))
	}
	tw.Flush()
}

// renderCoveragePercentiles reduces each cell's seeds to p50/p90/p99
// coverage at quarter checkpoints of the cell's longest run.
func renderCoveragePercentiles(w io.Writer, stats []*RunStat) {
	groups := make(map[string][]*RunStat)
	for _, st := range stats {
		groups[cellKey(st)] = append(groups[cellKey(st)], st)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "\ncoverage percentiles across seeds (screens over virtual time, nearest rank):\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  CELL\tSEEDS\tT\tP50\tP90\tP99")
	for _, k := range keys {
		runs := groups[k]
		var maxWall int64
		for _, st := range runs {
			maxWall = max64(maxWall, st.WallNS)
		}
		for _, frac := range []int64{25, 50, 75, 100} {
			t := maxWall * frac / 100
			covs := make([]int, len(runs))
			for i, st := range runs {
				covs[i] = coverageAt(st, t)
			}
			sort.Ints(covs)
			label := k
			if frac != 25 {
				label = ""
			}
			fmt.Fprintf(tw, "  %s\t%d\t%3d%%\t%d\t%d\t%d\n",
				label, len(runs), frac,
				percentile(covs, 0.50), percentile(covs, 0.90), percentile(covs, 0.99))
		}
	}
	tw.Flush()
}

// renderFlakiness flags cells — same scenario hash (or app), tool and
// setting — whose runs disagree on outcome: some crash, some don't, or they
// crash differently.
func renderFlakiness(w io.Writer, stats []*RunStat) {
	groups := make(map[string][]*RunStat)
	for _, st := range stats {
		groups[cellKey(st)] = append(groups[cellKey(st)], st)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	flaky := 0
	var buf strings.Builder
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	for _, k := range keys {
		runs := groups[k]
		if len(runs) < 2 {
			continue
		}
		byOutcome := make(map[string]int)
		for _, st := range runs {
			byOutcome[outcome(st)]++
		}
		if len(byOutcome) < 2 {
			continue
		}
		flaky++
		outs := make([]string, 0, len(byOutcome))
		for o := range byOutcome {
			outs = append(outs, o)
		}
		sort.Slice(outs, func(i, j int) bool {
			if byOutcome[outs[i]] != byOutcome[outs[j]] {
				return byOutcome[outs[i]] > byOutcome[outs[j]]
			}
			return outs[i] < outs[j]
		})
		parts := make([]string, len(outs))
		for i, o := range outs {
			parts[i] = fmt.Sprintf("%d× %s", byOutcome[o], o)
		}
		fmt.Fprintf(tw, "  %s\t%d seeds\t%s\n", k, len(runs), strings.Join(parts, "; "))
	}
	tw.Flush()
	fmt.Fprintf(w, "\nflaky cells (same scenario, divergent outcome): %d\n", flaky)
	if flaky > 0 {
		io.WriteString(w, buf.String())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
