package corpus_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"taopt/internal/apps"
	"taopt/internal/corpus"
	"taopt/internal/faults"
	"taopt/internal/harness"
	"taopt/internal/sim"
)

var updateCorpusGolden = flag.Bool("update", false, "rewrite the corpus analytics golden")

// buildCorpus generates the pinned seed grid into dir: 4 apps × 2 settings ×
// 3 seeds = 24 runs at a short budget, with faults on half the cells so the
// crash-cluster and flakiness sections have material, and a synthetic
// scenario hash on one app to exercise hash-keyed grouping.
func buildCorpus(tb testing.TB, dir string) {
	tb.Helper()
	names := apps.Names()
	sort.Strings(names)
	if len(names) < 4 {
		tb.Fatalf("catalog has %d apps, want >= 4", len(names))
	}
	minute := sim.Duration(60e9)
	for ai, app := range names[:4] {
		for _, setting := range []harness.Setting{harness.TaOPTDuration, harness.TaOPTResource} {
			for s := 0; s < 3; s++ {
				cfg := harness.RunConfig{
					App:       apps.MustLoad(app),
					Tool:      "monkey",
					Setting:   setting,
					Duration:  6 * minute,
					Instances: 3,
					Seed:      int64(10*ai + s),
					Telemetry: s == 0,
				}
				if ai%2 == 1 {
					fc := faults.DefaultConfig(0.3)
					fc.MinLife = 1 * minute
					fc.MaxLife = 4 * minute
					cfg.Faults = &fc
				}
				if ai == 0 {
					cfg.ScenarioHash = fmt.Sprintf("sha256:%064d", ai)
				}
				key := harness.CellKey{App: app, Tool: cfg.Tool, Setting: setting}
				f, err := os.Create(filepath.Join(dir, harness.CellTraceName(key, cfg.Seed)))
				if err != nil {
					tb.Fatal(err)
				}
				cfg.BinTrace = f
				_, err = harness.Run(cfg)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
}

func renderCorpus(tb testing.TB, dir string) string {
	tb.Helper()
	stats, err := corpus.ScanDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	if len(stats) < 24 {
		tb.Fatalf("corpus has %d runs, want >= 24", len(stats))
	}
	var buf bytes.Buffer
	if err := corpus.Render(&buf, stats); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// TestCorpusGolden pins the full corpus analytics output over the 24-run
// seed grid: scanning is one streaming pass in sorted filename order, so the
// rendering must be byte-identical on every regeneration.
func TestCorpusGolden(t *testing.T) {
	dir := t.TempDir()
	buildCorpus(t, dir)
	got := renderCorpus(t, dir)

	path := filepath.Join("testdata", "corpus_golden.txt")
	if *updateCorpusGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("corpus analytics drifted from golden:\n--- got ---\n%s--- want ---\n%s(run with -update after a deliberate change)", got, want)
	}
}

// TestCorpusSections sanity-checks the analytics content beyond byte
// equality: every section present, all 24 runs counted, crash clusters from
// the fault cells, and at least one flaky cell (fault injection is seeded
// per run, so sibling seeds diverge).
func TestCorpusSections(t *testing.T) {
	dir := t.TempDir()
	buildCorpus(t, dir)
	out := renderCorpus(t, dir)

	if !strings.Contains(out, "corpus: 24 runs") {
		t.Errorf("summary line missing or wrong run count:\n%s", out)
	}
	for _, section := range []string{"crash clusters", "coverage percentiles", "flaky cells"} {
		if !strings.Contains(out, section) {
			t.Errorf("output lacks %q section", section)
		}
	}
	if strings.Contains(out, "crash clusters (0 distinct") {
		t.Error("fault cells produced no crash clusters")
	}
	if strings.Contains(out, "flaky cells (same scenario, divergent outcome): 0") {
		t.Error("expected at least one flaky cell from the fault grid")
	}
	// The hash-keyed app groups under app#hash, not the bare app name.
	if !strings.Contains(out, "#sha256:") {
		t.Error("scenario-hash grouping key missing from output")
	}
}

// TestScanFileMatchesHeader checks the per-run digest against the run it
// came from.
func TestScanFileMatchesHeader(t *testing.T) {
	dir := t.TempDir()
	app := apps.MustLoad(apps.Names()[0])
	cfg := harness.RunConfig{
		App: app, Tool: "monkey", Setting: harness.TaOPTDuration,
		Duration: 4 * sim.Duration(60e9), Instances: 2, Seed: 9,
	}
	path := filepath.Join(dir, "one.taoptb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BinTrace = f
	res, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := corpus.ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Path != "one.taoptb" {
		t.Errorf("Path = %q", st.Path)
	}
	if st.Header.App != app.Name || st.Header.Tool != "monkey" || st.Header.Seed != 9 {
		t.Errorf("header mismatch: %+v", st.Header)
	}
	if st.Coverage != res.Union.Count() {
		t.Errorf("coverage = %d, run says %d", st.Coverage, res.Union.Count())
	}
	if st.Instances != 2 {
		t.Errorf("instances = %d, want 2", st.Instances)
	}
	if st.Events == 0 || st.Samples == 0 || len(st.Curve) != st.Samples {
		t.Errorf("counts: events=%d samples=%d curve=%d", st.Events, st.Samples, len(st.Curve))
	}
	if st.Curve[len(st.Curve)-1].Covered > st.Coverage {
		t.Errorf("curve ends above final coverage: %d > %d", st.Curve[len(st.Curve)-1].Covered, st.Coverage)
	}
}
