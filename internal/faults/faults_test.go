package faults

import (
	"testing"

	"taopt/internal/sim"
)

func newTestPlan(cfg Config, seed int64) *Plan {
	rng := sim.NewRNG(seed)
	return NewPlan(cfg, rng.Fork(7))
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if _, fated := p.InstanceFate(3); fated {
		t.Fatal("nil plan fated an instance")
	}
	if p.AllocationFails(0) {
		t.Fatal("nil plan failed an allocation")
	}
	if drop, delay := p.TraceDelivery(0); drop || delay != 0 {
		t.Fatal("nil plan touched trace delivery")
	}
	if p.Stats() != (Stats{}) {
		t.Fatal("nil plan has stats")
	}
	if p.Config().Enabled() {
		t.Fatal("nil plan config enabled")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	p := newTestPlan(Config{}, 1)
	for id := 0; id < 100; id++ {
		if _, fated := p.InstanceFate(id); fated {
			t.Fatalf("instance %d fated under zero config", id)
		}
	}
	for i := 0; i < 100; i++ {
		if p.AllocationFails(sim.Duration(i) * sim.Duration(1e9)) {
			t.Fatal("allocation failed under zero config")
		}
		if drop, delay := p.TraceDelivery(0); drop || delay != 0 {
			t.Fatal("trace delivery perturbed under zero config")
		}
	}
	if got := p.Stats().Total(); got != 0 {
		t.Fatalf("stats total = %d, want 0", got)
	}
}

// Two plans built from the same seed must make identical decisions, and the
// per-instance fate must not depend on query order.
func TestPlanDeterminism(t *testing.T) {
	cfg := DefaultConfig(0.2)
	a := newTestPlan(cfg, 42)
	b := newTestPlan(cfg, 42)

	var fatesA []Fate
	for id := 0; id < 50; id++ {
		fate, ok := a.InstanceFate(id)
		if !ok {
			fate = Fate{Kind: -1}
		}
		fatesA = append(fatesA, fate)
	}
	// Query b in reverse order: fates are per-instance forks, so order must
	// not matter.
	for id := 49; id >= 0; id-- {
		fate, ok := b.InstanceFate(id)
		if !ok {
			fate = Fate{Kind: -1}
		}
		if fate != fatesA[id] {
			t.Fatalf("instance %d fate differs: %+v vs %+v", id, fate, fatesA[id])
		}
	}

	for i := 0; i < 200; i++ {
		now := sim.Duration(i) * sim.Duration(5e9)
		if a.AllocationFails(now) != b.AllocationFails(now) {
			t.Fatalf("allocation decision %d diverged", i)
		}
		dropA, delayA := a.TraceDelivery(0)
		dropB, delayB := b.TraceDelivery(0)
		if dropA != dropB || delayA != delayB {
			t.Fatalf("trace decision %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// Empirical rates must land near the configured probabilities.
func TestFailureRateCalibration(t *testing.T) {
	cfg := DefaultConfig(0.2)
	p := newTestPlan(cfg, 99)
	const n = 5000
	failed, hung := 0, 0
	for id := 0; id < n; id++ {
		fate, ok := p.InstanceFate(id)
		if !ok {
			continue
		}
		failed++
		if fate.Kind == Hang {
			hung++
		}
		if fate.After < cfg.MinLife || fate.After > cfg.MaxLife {
			t.Fatalf("fate.After %v outside [%v, %v]", fate.After, cfg.MinLife, cfg.MaxLife)
		}
	}
	rate := float64(failed) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("empirical failure rate %.3f, want ~0.2", rate)
	}
	hangFrac := float64(hung) / float64(failed)
	if hangFrac < 0.28 || hangFrac > 0.42 {
		t.Fatalf("empirical hang fraction %.3f, want ~0.35", hangFrac)
	}
	st := p.Stats()
	if st.Deaths+st.Hangs != failed || st.Hangs != hung {
		t.Fatalf("stats %+v inconsistent with observed %d/%d", st, failed, hung)
	}
}

// A failed allocation opens an outage window during which every attempt
// fails, after which attempts can succeed again.
func TestAllocationOutageWindow(t *testing.T) {
	cfg := Config{AllocFailRate: 0.3, AllocOutage: 100 * sim.Duration(1e9)}
	p := newTestPlan(cfg, 7)

	// Find the first failing attempt.
	var start sim.Duration
	step := sim.Duration(1e9)
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("no allocation failure in 1000 attempts at rate 0.3")
		}
		now := sim.Duration(i) * step
		if p.AllocationFails(now) {
			start = now
			break
		}
	}
	// Everything inside the outage window fails without consuming RNG.
	for _, dt := range []sim.Duration{step, 50 * step, 99 * step} {
		if !p.AllocationFails(start + dt) {
			t.Fatalf("attempt at +%v inside outage window succeeded", dt)
		}
	}
	// Past the window the stream recovers eventually.
	ok := false
	for i := 0; i < 1000; i++ {
		if !p.AllocationFails(start + cfg.AllocOutage + sim.Duration(i)*step) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("allocation never recovered after outage window")
	}
	if p.Stats().AllocFailures == 0 {
		t.Fatal("alloc failures not counted")
	}
}

func TestTraceDeliveryRates(t *testing.T) {
	cfg := Config{TraceDropRate: 0.05, TraceDelayRate: 0.2, TraceDelayMax: 5 * sim.Duration(1e9)}
	p := newTestPlan(cfg, 13)
	const n = 10000
	drops, delays := 0, 0
	for i := 0; i < n; i++ {
		drop, delay := p.TraceDelivery(0)
		if drop {
			drops++
			if delay != 0 {
				t.Fatal("dropped event carries a delay")
			}
			continue
		}
		if delay > 0 {
			delays++
			if delay > cfg.TraceDelayMax {
				t.Fatalf("delay %v exceeds max %v", delay, cfg.TraceDelayMax)
			}
		}
	}
	if rate := float64(drops) / n; rate < 0.035 || rate > 0.065 {
		t.Fatalf("drop rate %.3f, want ~0.05", rate)
	}
	if rate := float64(delays) / n; rate < 0.15 || rate > 0.25 {
		t.Fatalf("delay rate %.3f, want ~0.19", rate)
	}
	st := p.Stats()
	if st.TraceDrops != drops || st.TraceDelays != delays {
		t.Fatalf("stats %+v vs observed drops=%d delays=%d", st, drops, delays)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Death:        "death",
		Hang:         "hang",
		AllocFailure: "alloc-failure",
		TraceDrop:    "trace-drop",
		TraceDelay:   "trace-delay",
		Kind(42):     "kind(42)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestDefaultConfigScaling(t *testing.T) {
	if DefaultConfig(0).Enabled() {
		t.Fatal("rate 0 config should be disabled")
	}
	c := DefaultConfig(0.2)
	if !c.Enabled() {
		t.Fatal("rate 0.2 config should be enabled")
	}
	if c.AllocFailRate != 0.1 {
		t.Fatalf("AllocFailRate = %v, want 0.1", c.AllocFailRate)
	}
	if c.MaxLife <= c.MinLife {
		t.Fatal("MaxLife must exceed MinLife")
	}
}
