package faults

import (
	"fmt"

	"taopt/internal/sim"
)

// ContextKind enumerates the declarative device-context fault families: farm
// conditions scheduled as windows on the virtual clock rather than drawn from
// a random stream.
type ContextKind int

// Context fault kinds.
const (
	// NetworkLoss cuts the instance's uplink for the window: trace events are
	// dropped, downstream block commands are swallowed, and allocation
	// attempts fail.
	NetworkLoss ContextKind = iota
	// BatteryLow throttles the device for the window: trace events are
	// delivered late by the event's fixed Delay. It never drops anything.
	BatteryLow
)

func (k ContextKind) String() string {
	switch k {
	case NetworkLoss:
		return "network-loss"
	case BatteryLow:
		return "battery-low"
	default:
		return fmt.Sprintf("context-kind(%d)", int(k))
	}
}

// ContextEvent is one scheduled context window: Kind holds during
// [Start, Start+Duration) on the virtual clock. Delay is the fixed trace
// delay applied by a BatteryLow window (ignored for NetworkLoss).
//
// Context decisions are checked before any random draw, so adding a window
// to a config never perturbs the RNG streams of the probabilistic fault
// classes — a chaos run with and without context windows sees identical
// death/hang/drop draws outside the windows.
type ContextEvent struct {
	Kind     ContextKind
	Start    sim.Duration
	Duration sim.Duration
	Delay    sim.Duration
}

// active reports whether the window covers virtual time now.
func (e ContextEvent) active(now sim.Duration) bool {
	return now >= e.Start && now < e.Start+e.Duration
}

// contextActive returns the first configured window of the given kind that
// covers now.
func (p *Plan) contextActive(now sim.Duration, kind ContextKind) (ContextEvent, bool) {
	for _, e := range p.cfg.Context {
		if e.Kind == kind && e.active(now) {
			return e, true
		}
	}
	return ContextEvent{}, false
}
