package faults

import (
	"testing"

	"taopt/internal/sim"
)

func TestContextWindows(t *testing.T) {
	sec := sim.Duration(1e9)
	cfg := Config{Context: []ContextEvent{
		{Kind: NetworkLoss, Start: 60 * sec, Duration: 30 * sec},
		{Kind: BatteryLow, Start: 300 * sec, Duration: 120 * sec, Delay: 2 * sec},
	}}
	if !cfg.Enabled() {
		t.Fatal("context-only config reports disabled")
	}
	p := newTestPlan(cfg, 1)

	// Outside every window: nothing happens.
	if drop, delay := p.TraceDelivery(0); drop || delay != 0 {
		t.Fatal("trace perturbed outside windows")
	}
	if p.CommandLost(0) || p.AllocationFails(0) {
		t.Fatal("command/alloc perturbed outside windows")
	}

	// Inside the network-loss window: traces drop, commands are swallowed,
	// allocations fail — deterministically, every time.
	for _, now := range []sim.Duration{60 * sec, 75 * sec, 89 * sec} {
		if drop, _ := p.TraceDelivery(now); !drop {
			t.Fatalf("trace at %v not dropped in network-loss window", now)
		}
		if !p.CommandLost(now) {
			t.Fatalf("command at %v not lost in network-loss window", now)
		}
		if !p.AllocationFails(now) {
			t.Fatalf("allocation at %v succeeded in network-loss window", now)
		}
	}
	// The window is half-open: its end is outside.
	if drop, _ := p.TraceDelivery(90 * sec); drop {
		t.Fatal("window end should be exclusive")
	}

	// Inside the battery-low window: traces delayed by the fixed amount.
	if drop, delay := p.TraceDelivery(360 * sec); drop || delay != 2*sec {
		t.Fatalf("battery-low delivery = (%v, %v), want (false, 2s)", drop, delay)
	}

	st := p.Stats()
	if st.TraceDrops != 3 || st.CmdLosses != 3 || st.AllocFailures != 3 || st.TraceDelays != 1 {
		t.Fatalf("stats = %+v, want 3 drops, 3 losses, 3 alloc failures, 1 delay", st)
	}
}

// Adding context windows to a probabilistic config must not perturb the
// random streams: outside the windows, every decision matches the
// windowless plan's.
func TestContextDoesNotPerturbStreams(t *testing.T) {
	sec := sim.Duration(1e9)
	base := DefaultConfig(0.2)
	base.CmdLossRate = 0.1
	withCtx := base
	withCtx.Context = []ContextEvent{{Kind: NetworkLoss, Start: 1000000 * sec, Duration: sec}}

	a := newTestPlan(base, 42)
	b := newTestPlan(withCtx, 42)
	for i := 0; i < 500; i++ {
		now := sim.Duration(i) * 5 * sec
		dropA, delayA := a.TraceDelivery(now)
		dropB, delayB := b.TraceDelivery(now)
		if dropA != dropB || delayA != delayB {
			t.Fatalf("trace decision %d diverged", i)
		}
		if a.CommandLost(now) != b.CommandLost(now) {
			t.Fatalf("command decision %d diverged", i)
		}
		if a.AllocationFails(now) != b.AllocationFails(now) {
			t.Fatalf("alloc decision %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestContextKindString(t *testing.T) {
	if NetworkLoss.String() != "network-loss" || BatteryLow.String() != "battery-low" {
		t.Fatalf("kind names: %q, %q", NetworkLoss, BatteryLow)
	}
	if ContextKind(9).String() != "context-kind(9)" {
		t.Fatalf("unknown kind: %q", ContextKind(9))
	}
}
