// Package faults provides deterministic, seed-driven injection of
// device-farm failures for chaos campaigns.
//
// The paper's deployment target is an industrial testing cloud where
// emulators hang, ADB connections drop and instances die mid-run; related
// work reports that flaky infrastructure dominates CI failures and skews
// every tool comparison. A fault Plan reproduces those conditions inside the
// simulation: instance death (the emulator process dies mid-action),
// instance hang (the instance stops producing trace events but stays
// allocated and billed), transient allocation failure (the farm temporarily
// cannot boot a device) and delayed or lossy trace delivery to the analyzer.
//
// Determinism: every decision is drawn from streams forked off one sim.RNG,
// and per-instance fates are forked by instance ID, so a chaos run is
// exactly reproducible from its seed and one instance's fate never depends
// on how many random draws other faults consumed. Fault timing is expressed
// in the virtual clock of internal/sim; no wall-clock reads occur.
package faults

import (
	"fmt"

	"taopt/internal/sim"
)

// Kind enumerates the injected fault classes.
type Kind int

// Fault kinds.
const (
	// Death kills the emulator process mid-run: the instance stops stepping
	// and its lease is charged machine time up to the moment of death.
	Death Kind = iota
	// Hang wedges the instance: it stops producing trace events but stays
	// allocated (and billed) until a health monitor releases it.
	Hang
	// AllocFailure makes one farm allocation attempt fail transiently.
	AllocFailure
	// TraceDrop loses a trace event on its way to the analyzer.
	TraceDrop
	// TraceDelay delivers a trace event late.
	TraceDelay
)

func (k Kind) String() string {
	switch k {
	case Death:
		return "death"
	case Hang:
		return "hang"
	case AllocFailure:
		return "alloc-failure"
	case TraceDrop:
		return "trace-drop"
	case TraceDelay:
		return "trace-delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parameterises a fault Plan. The zero value injects nothing.
type Config struct {
	// FailureRate is the probability that an allocated instance suffers an
	// instance-level fault (death or hang) during its lease. This is the
	// headline knob of the chaos experiment (0%, 5%, 20%).
	FailureRate float64
	// HangFraction is the share of instance failures that hang instead of
	// die.
	HangFraction float64
	// MinLife and MaxLife bound the uniform draw of time-to-failure after
	// allocation for instances fated to fail.
	MinLife, MaxLife sim.Duration
	// AllocFailRate is the probability that one allocation attempt fails
	// transiently (the farm cannot boot a device right now).
	AllocFailRate float64
	// AllocOutage is the window opened by a failed allocation attempt during
	// which every further attempt also fails — modelling a farm-wide
	// capacity outage rather than independent per-attempt noise.
	AllocOutage sim.Duration
	// TraceDropRate is the probability that a trace event is lost before
	// reaching the analyzer.
	TraceDropRate float64
	// TraceDelayRate is the probability that a delivered trace event is
	// delayed; TraceDelayMax bounds the uniform delay.
	TraceDelayRate float64
	TraceDelayMax  sim.Duration
	// CmdLossRate is the probability that one downstream block command
	// (BlockWidget/BlockMember) is swallowed by the farm network: the
	// executor never sees it and the sender gets a timeout instead of a
	// reply. Lifecycle commands are exempt — allocation noise has its own
	// outage model, and losing a Deallocate would fabricate undead leases.
	CmdLossRate float64
	// Context schedules declarative device-context windows (network loss,
	// low battery) on the virtual clock. Context decisions are checked before
	// any random draw, so configuring windows never perturbs the streams of
	// the probabilistic fault classes above.
	Context []ContextEvent
}

// DefaultConfig returns a calibrated fault mix scaled by the headline
// instance-failure rate: allocation outages at half the rate, occasional
// trace delays, and rare trace loss. MinLife/MaxLife place failures inside a
// typical lease (instances live minutes to tens of minutes before
// stagnation reaping), so deaths interrupt genuine work rather than firing
// after the instance would have been released anyway.
//
// CmdLossRate stays zero here: command loss is a separate robustness
// experiment (it exercises the coordinator's retransmit path), not part of
// the calibrated chaos mix the golden campaigns pin.
func DefaultConfig(failureRate float64) Config {
	return Config{
		FailureRate:    failureRate,
		HangFraction:   0.35,
		MinLife:        3 * sim.Duration(60e9),
		MaxLife:        40 * sim.Duration(60e9),
		AllocFailRate:  failureRate / 2,
		AllocOutage:    90 * sim.Duration(1e9),
		TraceDropRate:  failureRate / 20,
		TraceDelayRate: failureRate / 4,
		TraceDelayMax:  5 * sim.Duration(1e9),
	}
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.FailureRate > 0 || c.AllocFailRate > 0 || c.TraceDropRate > 0 ||
		c.TraceDelayRate > 0 || c.CmdLossRate > 0 || len(c.Context) > 0
}

// Fate is an instance-level fault scheduled at allocation time.
type Fate struct {
	Kind Kind
	// After is how long after allocation the fault fires.
	After sim.Duration
}

// Stats counts the faults a plan has injected (for instance fates: planned —
// a death scheduled after the run's end never fires).
type Stats struct {
	Deaths        int
	Hangs         int
	AllocFailures int
	TraceDrops    int
	TraceDelays   int
	CmdLosses     int
}

// Total returns the total number of injected faults.
func (s Stats) Total() int {
	return s.Deaths + s.Hangs + s.AllocFailures + s.TraceDrops + s.TraceDelays + s.CmdLosses
}

// Plan is one run's deterministic fault schedule. All methods are safe on a
// nil Plan (injecting nothing), so callers need no fault-enabled branches.
type Plan struct {
	cfg Config

	// base seeds the per-instance fate forks; alloc, tracer and cmds are
	// the allocation-attempt, trace-delivery and command-loss streams.
	// Keeping the streams separate means one fault class's draws never
	// perturb another's.
	base   *sim.RNG
	alloc  *sim.RNG
	tracer *sim.RNG
	cmds   *sim.RNG

	outageUntil sim.Duration
	stats       Stats
}

// NewPlan derives a plan from cfg and an RNG (typically a fork of the run's
// campaign RNG). The source RNG is not perturbed.
func NewPlan(cfg Config, rng *sim.RNG) *Plan {
	if cfg.MaxLife < cfg.MinLife {
		cfg.MaxLife = cfg.MinLife
	}
	return &Plan{
		cfg:    cfg,
		base:   rng.Fork(1),
		alloc:  rng.Fork(2),
		tracer: rng.Fork(3),
		cmds:   rng.Fork(4),
	}
}

// PlanFor derives a plan from an optional config: a nil or disabled config
// yields a nil plan (every Plan method is nil-safe), so callers need no
// fault-enabled branches of their own.
func PlanFor(cfg *Config, rng *sim.RNG) *Plan {
	if cfg == nil || !cfg.Enabled() {
		return nil
	}
	return NewPlan(*cfg, rng)
}

// Config returns the plan's configuration (zero for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// InstanceFate decides, at allocation time, whether and how the instance
// with the given ID will fail. The decision is drawn from a stream forked
// per instance ID off the plan's base stream.
func (p *Plan) InstanceFate(id int) (Fate, bool) {
	if p == nil || p.cfg.FailureRate <= 0 {
		return Fate{}, false
	}
	rng := p.base.Fork(int64(id))
	if !rng.Bool(p.cfg.FailureRate) {
		return Fate{}, false
	}
	fate := Fate{Kind: Death, After: rng.DurationBetween(p.cfg.MinLife, p.cfg.MaxLife)}
	if rng.Bool(p.cfg.HangFraction) {
		fate.Kind = Hang
		p.stats.Hangs++
	} else {
		p.stats.Deaths++
	}
	return fate, true
}

// AllocationFails reports whether one allocation attempt at virtual time now
// fails transiently. A failed attempt opens an AllocOutage window during
// which every further attempt fails too.
func (p *Plan) AllocationFails(now sim.Duration) bool {
	if p == nil {
		return false
	}
	if _, ok := p.contextActive(now, NetworkLoss); ok {
		p.stats.AllocFailures++
		return true
	}
	if p.cfg.AllocFailRate <= 0 {
		return false
	}
	if now < p.outageUntil {
		p.stats.AllocFailures++
		return true
	}
	if !p.alloc.Bool(p.cfg.AllocFailRate) {
		return false
	}
	p.stats.AllocFailures++
	if p.cfg.AllocOutage > 0 {
		p.outageUntil = now + p.cfg.AllocOutage
	}
	return true
}

// TraceDelivery decides the fate of one trace event sent at virtual time now
// en route to the analyzer: dropped, delayed by the returned amount, or
// delivered intact. Context windows are consulted first and decide without a
// draw: an active network-loss window drops the event, an active battery-low
// window delays it by the window's fixed Delay.
func (p *Plan) TraceDelivery(now sim.Duration) (drop bool, delay sim.Duration) {
	if p == nil {
		return false, 0
	}
	if _, ok := p.contextActive(now, NetworkLoss); ok {
		p.stats.TraceDrops++
		return true, 0
	}
	if ev, ok := p.contextActive(now, BatteryLow); ok && ev.Delay > 0 {
		p.stats.TraceDelays++
		return false, ev.Delay
	}
	if p.cfg.TraceDropRate <= 0 && p.cfg.TraceDelayRate <= 0 {
		return false, 0
	}
	if p.cfg.TraceDropRate > 0 && p.tracer.Bool(p.cfg.TraceDropRate) {
		p.stats.TraceDrops++
		return true, 0
	}
	if p.cfg.TraceDelayRate > 0 && p.tracer.Bool(p.cfg.TraceDelayRate) {
		p.stats.TraceDelays++
		return false, p.tracer.DurationBetween(200*sim.Duration(1e6), p.cfg.TraceDelayMax)
	}
	return false, 0
}

// CommandLost decides whether one downstream block command sent at virtual
// time now is swallowed by the simulated farm network. An active
// network-loss window swallows it without a draw; otherwise the decision is
// drawn from the dedicated cmds stream, so enabling command loss never
// perturbs the other fault classes' draws.
func (p *Plan) CommandLost(now sim.Duration) bool {
	if p == nil {
		return false
	}
	if _, ok := p.contextActive(now, NetworkLoss); ok {
		p.stats.CmdLosses++
		return true
	}
	if p.cfg.CmdLossRate <= 0 {
		return false
	}
	if !p.cmds.Bool(p.cfg.CmdLossRate) {
		return false
	}
	p.stats.CmdLosses++
	return true
}

// Stats returns the faults injected so far (zero for a nil plan).
func (p *Plan) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return p.stats
}
