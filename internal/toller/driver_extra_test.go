package toller

import (
	"testing"

	"taopt/internal/app"
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

func TestListenersReceiveInOrder(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	var order []string
	d.Subscribe(ListenerFunc(func(ev trace.Event) { order = append(order, "first") }))
	d.Subscribe(ListenerFunc(func(ev trace.Event) { order = append(order, "second") }))
	tap(t, d, "toA")
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("listener order = %v", order)
	}
}

func TestTraceMatchesEmulatorPath(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	tap(t, d, "toA")
	tap(t, d, "deeper")
	tap(t, d, "back")
	tap(t, d, "home")
	evs := d.Trace().Events()
	// launch + 4 taps.
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5", len(evs))
	}
	wantTo := []app.ScreenID{0, 1, 2, 1, 0}
	for i, ev := range evs {
		if ev.To != sigOf(a, wantTo[i]) {
			t.Fatalf("event %d lands on wrong screen", i)
		}
	}
	// From chains correctly.
	for i := 1; i < len(evs); i++ {
		if evs[i].From != evs[i-1].To {
			t.Fatalf("event %d From does not chain", i)
		}
	}
}

func TestCrashFlagPropagates(t *testing.T) {
	// An app whose only forward widget always crashes.
	a := &app.App{Name: "Crashy", Login: -1, Subspaces: 1, MethodNames: []string{"m"}}
	a.Screens = []*app.ScreenState{{
		ID: 0, Activity: "A", Subspace: 0, Title: "S",
		Widgets: []app.Widget{{
			Class: "android.widget.Button", ResourceID: "boom", Label: "boom",
			Target: app.TargetNone, CrashSite: 0, CrashProb: 1.0,
		}},
	}}
	a.CrashSites = []app.CrashSite{{ID: 0, Frames: []string{"com.crashy.A.boom(A.java:1)"}}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(device.NewEmulator(0, a, sim.NewRNG(1)), trace.NewBook(), 0)
	res := tap(t, d, "boom")
	if !res.Crashed {
		t.Fatal("crash did not fire at probability 1")
	}
	evs := d.Trace().Events()
	if !evs[len(evs)-1].Crashed {
		t.Fatal("trace event lost the crash flag")
	}
	if d.Emulator().Crashes.Unique() != 1 {
		t.Fatal("crash not recorded")
	}
}

func TestViewActionsExcludeBlockedButKeepBack(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	v := d.View()
	for _, act := range v.Actions {
		if act.Node != nil {
			d.Blocks().BlockWidget(v.Sig, act.Path)
		}
	}
	v2 := d.View()
	if len(v2.Actions) != 1 || v2.Actions[0].Kind != trace.ActionBack {
		t.Fatalf("fully blocked screen should offer only Back, got %d actions", len(v2.Actions))
	}
}
