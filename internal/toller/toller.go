// Package toller is this repository's analogue of the Toller framework [64]:
// an infrastructure layer that sits between any UI testing tool and the app.
// It (1) reports every UI transition — hierarchy changes along with the
// triggering UI action — without modifying the tool or the AUT, and (2)
// enforces entrypoint blocks: on each screen update it identifies UI elements
// matching a blocked entrypoint and disables them before the tool can
// interact with them (Section 5.3).
//
// Tool-agnosticism is structural: tools receive only a View (a rendered
// hierarchy plus executable actions) and never see app internals; TaOPT's
// core receives only trace.Events and never sees the tool.
package toller

import (
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// View is what a testing tool observes: the current (possibly
// block-modified) hierarchy and the actions it may take.
type View struct {
	Screen  *ui.Screen
	Sig     ui.Signature
	Actions []device.Action
}

// Listener receives UI transition notifications.
type Listener interface {
	OnTransition(ev trace.Event)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(ev trace.Event)

// OnTransition calls f(ev).
func (f ListenerFunc) OnTransition(ev trace.Event) { f(ev) }

// BlockSet is the per-instance set of entrypoint blocks the coordinator
// maintains for one testing instance.
type BlockSet struct {
	widgets map[ui.Signature]map[ui.WidgetPath]bool
	members map[ui.Signature]bool
	// allowedActivities, when non-nil, restricts the instance to a fixed
	// Activity subset — the ParaAim-style activity-granularity baseline of
	// the preliminary study (Section 3.3). TaOPT itself never sets it.
	allowedActivities map[string]bool
}

// NewBlockSet returns an empty block set.
func NewBlockSet() *BlockSet {
	return &BlockSet{
		widgets: make(map[ui.Signature]map[ui.WidgetPath]bool),
		members: make(map[ui.Signature]bool),
	}
}

// RestrictActivities confines the instance to the given Activity names.
// Passing an empty list clears the restriction.
func (b *BlockSet) RestrictActivities(allowed []string) {
	if len(allowed) == 0 {
		b.allowedActivities = nil
		return
	}
	b.allowedActivities = make(map[string]bool, len(allowed))
	for _, a := range allowed {
		b.allowedActivities[a] = true
	}
}

// ActivityAllowed reports whether screens of the given Activity may be
// explored by this instance.
func (b *BlockSet) ActivityAllowed(activity string) bool {
	return b.allowedActivities == nil || b.allowedActivities[activity]
}

// BlockWidget marks the element at path on screens with signature from as a
// blocked entrypoint: the driver disables it on every render.
func (b *BlockSet) BlockWidget(from ui.Signature, path ui.WidgetPath) {
	m, ok := b.widgets[from]
	if !ok {
		m = make(map[ui.WidgetPath]bool)
		b.widgets[from] = m
	}
	m[path] = true
}

// BlockMember marks an abstract screen as belonging to a blocked subspace:
// if the tool lands there anyway (through an edge TaOPT has not observed
// yet), the driver steers it back out.
func (b *BlockSet) BlockMember(sig ui.Signature) { b.members[sig] = true }

// BlockedWidgets returns the blocked element paths for screens with
// signature from (nil if none).
func (b *BlockSet) BlockedWidgets(from ui.Signature) map[ui.WidgetPath]bool {
	return b.widgets[from]
}

// IsMember reports whether sig lies inside a blocked subspace.
func (b *BlockSet) IsMember(sig ui.Signature) bool { return b.members[sig] }

// WidgetBlockCount returns the total number of blocked (screen, element)
// pairs; used by tests and reports.
func (b *BlockSet) WidgetBlockCount() int {
	n := 0
	for _, m := range b.widgets {
		n += len(m)
	}
	return n
}

// MemberCount returns the number of blocked member screens.
func (b *BlockSet) MemberCount() int { return len(b.members) }

// maxSteerSteps bounds the Back presses used to leave a blocked subspace
// before the driver falls back to relaunching the app.
const maxSteerSteps = 8

// Driver attaches Toller to one testing instance.
type Driver struct {
	emu       *device.Emulator
	book      *trace.Book
	log       *trace.Log
	blocks    *BlockSet
	listeners []Listener
	lastSig   ui.Signature
}

// NewDriver attaches to emu, sharing the campaign-wide screen book, and
// emits the initial launch transition at virtual time now.
func NewDriver(emu *device.Emulator, book *trace.Book, now sim.Duration) *Driver {
	d := &Driver{
		emu:    emu,
		book:   book,
		log:    &trace.Log{},
		blocks: NewBlockSet(),
	}
	d.lastSig = book.Observe(emu.Render())
	d.emit(trace.Event{
		Instance: emu.ID,
		At:       now,
		Action:   trace.Action{Kind: trace.ActionLaunch},
		To:       d.lastSig,
		Activity: emu.Render().Activity,
	})
	return d
}

// Instance returns the underlying instance ID.
func (d *Driver) Instance() int { return d.emu.ID }

// Emulator exposes the wrapped instance for coverage/crash collection.
func (d *Driver) Emulator() *device.Emulator { return d.emu }

// Trace returns the instance's transition log.
func (d *Driver) Trace() *trace.Log { return d.log }

// Blocks returns the driver's mutable block set.
func (d *Driver) Blocks() *BlockSet { return d.blocks }

// Subscribe registers a transition listener.
func (d *Driver) Subscribe(l Listener) { d.listeners = append(d.listeners, l) }

func (d *Driver) emit(ev trace.Event) {
	d.log.Append(ev)
	for _, l := range d.listeners {
		l.OnTransition(ev)
	}
}

// View renders the current screen, applies entrypoint blocks, and enumerates
// the actions available to the tool.
func (d *Driver) View() View {
	screen := d.emu.Render()
	sig := d.book.Observe(screen)
	d.lastSig = sig
	if blocked := d.blocks.BlockedWidgets(sig); len(blocked) > 0 {
		for path := range blocked {
			if n := ui.FindPath(screen.Root, path); n != nil {
				n.Enabled = false
			}
		}
	}
	return View{Screen: screen, Sig: sig, Actions: d.emu.Actions(screen)}
}

// Perform executes a tool-chosen action at virtual time now, records the
// transition, enforces subspace blocks, and returns the device result plus
// the total latency consumed (action + any enforcement steering).
func (d *Driver) Perform(a device.Action, now sim.Duration) device.Result {
	from := d.lastSig
	res := d.emu.Perform(a, now)
	sig := d.book.Observe(d.emu.Render())
	d.lastSig = sig
	d.emit(trace.Event{
		Instance: d.emu.ID,
		At:       now + res.Latency,
		Action:   trace.Action{Kind: a.Kind, Widget: a.Path},
		From:     from,
		To:       sig,
		Activity: d.emu.Render().Activity,
		Crashed:  res.Crashed,
	})
	res.Latency += d.steerIfBlocked(now + res.Latency)
	return res
}

// blockedHere reports whether the instance currently sits somewhere it must
// not be: inside a blocked subspace or on a disallowed Activity.
func (d *Driver) blockedHere() bool {
	return d.blocks.IsMember(d.lastSig) || !d.blocks.ActivityAllowed(d.emu.Render().Activity)
}

// steerIfBlocked forces the instance out of a blocked subspace. It returns
// the extra latency consumed.
func (d *Driver) steerIfBlocked(now sim.Duration) sim.Duration {
	var extra sim.Duration
	for step := 0; d.blockedHere(); step++ {
		from := d.lastSig
		var res device.Result
		if step < maxSteerSteps {
			res = d.emu.Perform(device.Action{Kind: trace.ActionBack, Widget: -1}, now+extra)
		} else {
			d.emu.Relaunch()
			res = device.Result{Latency: device.MaxRestartLatency}
		}
		extra += res.Latency
		sig := d.book.Observe(d.emu.Render())
		d.lastSig = sig
		d.emit(trace.Event{
			Instance: d.emu.ID,
			At:       now + extra,
			Action:   trace.Action{Kind: trace.ActionBack},
			From:     from,
			To:       sig,
			Activity: d.emu.Render().Activity,
			Enforced: true,
		})
		if step >= maxSteerSteps {
			break
		}
	}
	return extra
}
