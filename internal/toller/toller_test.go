package toller

import (
	"testing"

	"taopt/internal/app"
	"taopt/internal/device"
	"taopt/internal/sim"
	"taopt/internal/trace"
	"taopt/internal/ui"
)

// threeZone builds hub(0) -> a(1) -> a2(2) and hub -> b(3), two one-screen...
// two-zone app used across the driver tests.
func threeZone() *app.App {
	a := &app.App{
		Name:        "Zones",
		Login:       -1,
		Subspaces:   3,
		MethodNames: []string{"m"},
	}
	w := func(res string, target app.ScreenID) app.Widget {
		return app.Widget{Class: "android.widget.Button", ResourceID: res, Label: res, Target: target, CrashSite: -1}
	}
	a.Screens = []*app.ScreenState{
		{ID: 0, Activity: "Hub", Subspace: 0, Title: "Hub", Widgets: []app.Widget{w("toA", 1), w("toB", 3)}},
		{ID: 1, Activity: "A", Subspace: 1, Title: "A", Widgets: []app.Widget{w("deeper", 2), w("home", 0)}},
		{ID: 2, Activity: "A", Subspace: 1, Title: "A2", Widgets: []app.Widget{w("back", 1)}},
		{ID: 3, Activity: "B", Subspace: 2, Title: "B", Widgets: []app.Widget{w("home2", 0)}},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

func driverFor(a *app.App) (*Driver, *trace.Book) {
	book := trace.NewBook()
	emu := device.NewEmulator(0, a, sim.NewRNG(1))
	return NewDriver(emu, book, 0), book
}

// tap performs the view action acting on the widget with the given resource.
func tap(t *testing.T, d *Driver, res string) device.Result {
	t.Helper()
	v := d.View()
	for _, act := range v.Actions {
		if act.Node != nil && act.Node.ResourceID == res {
			return d.Perform(act, 0)
		}
	}
	t.Fatalf("no enabled action %q on current screen", res)
	return device.Result{}
}

func sigOf(a *app.App, id app.ScreenID) ui.Signature {
	return a.Render(id, 0).Abstract()
}

func TestDriverEmitsLaunchEvent(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	evs := d.Trace().Events()
	if len(evs) != 1 || evs[0].Action.Kind != trace.ActionLaunch {
		t.Fatalf("events = %+v, want one launch", evs)
	}
	if evs[0].To != sigOf(a, 0) {
		t.Fatal("launch event has wrong destination")
	}
}

func TestDriverRecordsTransitions(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	var got []trace.Event
	d.Subscribe(ListenerFunc(func(ev trace.Event) { got = append(got, ev) }))
	tap(t, d, "toA")
	if len(got) != 1 {
		t.Fatalf("listener got %d events, want 1", len(got))
	}
	ev := got[0]
	if ev.From != sigOf(a, 0) || ev.To != sigOf(a, 1) || ev.Action.Kind != trace.ActionTap {
		t.Fatalf("bad event %+v", ev)
	}
	if ev.Activity != "A" {
		t.Fatalf("activity = %q", ev.Activity)
	}
	if ev.Action.Widget == "" {
		t.Fatal("tap event missing widget path")
	}
}

func TestBlockWidgetDisablesElement(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	// Find toA's path from a view, then block it.
	v := d.View()
	var path ui.WidgetPath
	for _, act := range v.Actions {
		if act.Node != nil && act.Node.ResourceID == "toA" {
			path = act.Path
		}
	}
	d.Blocks().BlockWidget(v.Sig, path)

	v2 := d.View()
	for _, act := range v2.Actions {
		if act.Node != nil && act.Node.ResourceID == "toA" {
			t.Fatal("blocked element still actionable")
		}
	}
	// Other actions unaffected.
	found := false
	for _, act := range v2.Actions {
		if act.Node != nil && act.Node.ResourceID == "toB" {
			found = true
		}
	}
	if !found {
		t.Fatal("unblocked element disappeared")
	}
	// Blocking must not change the screen's identity.
	if v2.Sig != v.Sig {
		t.Fatal("blocking changed the abstract signature")
	}
}

func TestMemberSteering(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	// Block zone A's screens as members, but leave the entry widget enabled
	// (simulating an edge TaOPT has not yet observed).
	d.Blocks().BlockMember(sigOf(a, 1))
	d.Blocks().BlockMember(sigOf(a, 2))

	res := tap(t, d, "toA")
	// The driver must have steered the instance back out.
	if cur := d.Emulator().Current(); cur == 1 || cur == 2 {
		t.Fatalf("instance still inside blocked subspace (screen %d)", cur)
	}
	if res.Latency <= device.MaxActionLatency {
		t.Fatal("steering must consume extra latency")
	}
	// The enforcement transitions are marked.
	var enforced int
	for _, ev := range d.Trace().Events() {
		if ev.Enforced {
			enforced++
		}
	}
	if enforced == 0 {
		t.Fatal("no enforced events recorded")
	}
}

func TestActivityRestriction(t *testing.T) {
	a := threeZone()
	d, _ := driverFor(a)
	d.Blocks().RestrictActivities([]string{"Hub", "B"})
	tap(t, d, "toA") // lands on activity A -> must be steered out
	if cur := d.Emulator().Current(); a.Screens[cur].Activity == "A" {
		t.Fatalf("instance stayed on disallowed activity (screen %d)", cur)
	}
	// Allowed navigation works.
	res := tap(t, d, "toB")
	if res.To != 3 {
		t.Fatalf("allowed transition landed on %d", res.To)
	}
}

func TestRestrictActivitiesClear(t *testing.T) {
	b := NewBlockSet()
	b.RestrictActivities([]string{"X"})
	if b.ActivityAllowed("Y") {
		t.Fatal("restriction not applied")
	}
	b.RestrictActivities(nil)
	if !b.ActivityAllowed("Y") {
		t.Fatal("restriction not cleared")
	}
}

func TestBlockSetCounts(t *testing.T) {
	b := NewBlockSet()
	b.BlockWidget(ui.Signature(1), "p1")
	b.BlockWidget(ui.Signature(1), "p2")
	b.BlockWidget(ui.Signature(2), "p1")
	b.BlockMember(ui.Signature(3))
	if b.WidgetBlockCount() != 3 {
		t.Fatalf("WidgetBlockCount = %d", b.WidgetBlockCount())
	}
	if b.MemberCount() != 1 {
		t.Fatalf("MemberCount = %d", b.MemberCount())
	}
	if !b.IsMember(ui.Signature(3)) || b.IsMember(ui.Signature(4)) {
		t.Fatal("IsMember wrong")
	}
	if len(b.BlockedWidgets(ui.Signature(1))) != 2 {
		t.Fatal("BlockedWidgets wrong")
	}
}

func TestSteeringRelaunchFallback(t *testing.T) {
	// An app whose zone cannot be left by Back: entering pushes no usable
	// stack (the zone screen self-loops). The driver must eventually
	// relaunch.
	a := &app.App{Name: "Trap", Login: -1, Subspaces: 2, MethodNames: []string{"m"}}
	w := func(res string, target app.ScreenID) app.Widget {
		return app.Widget{Class: "android.widget.Button", ResourceID: res, Label: res, Target: target, CrashSite: -1}
	}
	a.Screens = []*app.ScreenState{
		{ID: 0, Activity: "Hub", Subspace: 0, Title: "Hub", Widgets: []app.Widget{w("go", 1)}},
		{ID: 1, Activity: "T", Subspace: 1, Title: "Trap", Widgets: []app.Widget{w("loop", 1)}},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _ := driverFor(a)
	// Block the trap as member; Back from it pops to hub normally, so to
	// force the relaunch path, block the hub too... that would wedge — so
	// instead verify the steer terminates and lands outside the member set.
	d.Blocks().BlockMember(sigOf(a, 1))
	tap(t, d, "go")
	if d.Emulator().Current() == 1 {
		t.Fatal("steering failed to leave the blocked screen")
	}
}
