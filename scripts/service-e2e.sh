#!/usr/bin/env bash
# Service end-to-end check (`make service-e2e`, CI "Service e2e" step).
#
# Boots taoptd on a temp data directory, submits the pinned chaos run
# document over HTTP, and proves the cache contract from the outside:
#
#   1. the served export is byte-identical to an offline `taopt` run of the
#      equivalent flags (the cache-equivalence oracle, end to end);
#   2. re-submitting the document under a different name is a cache hit
#      (X-Taopt-Cache: hit) serving byte-identical bytes;
#   3. after a service restart over the same data directory the hit still
#      serves — durably, with zero recomputes.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${TAOPTD_PORT:-18347}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/taoptd" ./cmd/taoptd
go build -o "$WORK/taopt" ./cmd/taopt

start_server() {
    "$WORK/taoptd" -addr "127.0.0.1:$PORT" -data "$WORK/store" -workers 2 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "service-e2e: taoptd did not become healthy on $BASE" >&2
    exit 1
}

# The pinned chaos configuration — the same cell the CI chaos smoke and the
# telemetry golden exercise.
cat > "$WORK/run.json" <<'EOF'
{"kind": "run", "name": "service e2e: chaos cell", "run": {
  "app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
  "durationMin": 8, "seed": 15, "telemetry": true,
  "faults": {"failureRate": 0.2}}}
EOF
sed 's/chaos cell/chaos cell, resubmitted/' "$WORK/run.json" > "$WORK/rerun.json"

# submit POSTs a document with ?wait=1 and leaves the response headers in
# $WORK/headers; prints the body.
submit() {
    curl -fsS -D "$WORK/headers" -X POST --data-binary "@$1" "$BASE/v1/runs?wait=1"
}
header() {
    tr -d '\r' < "$WORK/headers" | awk -v k="$1" 'tolower($1) == tolower(k)":" {print $2}'
}

start_server

echo "service-e2e: submitting the chaos run document"
submit "$WORK/run.json" > "$WORK/submit1.json"
[ "$(header x-taopt-cache)" = "miss" ] || { echo "first submit was not a miss" >&2; exit 1; }
RUN_ID="$(header x-taopt-run-id)"
curl -fsS "$BASE/v1/runs/$RUN_ID/export" > "$WORK/served-export.json"
curl -fsS "$BASE/v1/runs/$RUN_ID/telemetry" > "$WORK/served-telemetry.txt"
[ -s "$WORK/served-telemetry.txt" ] || { echo "telemetry digest is empty" >&2; exit 1; }

echo "service-e2e: computing the offline equivalent with taopt"
"$WORK/taopt" -app "Filters For Selfie" -tool monkey -setting taopt-duration \
    -duration 8 -seed 15 -faults 0.2 -telemetry \
    -export "$WORK/offline-export.json" > /dev/null
diff "$WORK/served-export.json" "$WORK/offline-export.json" \
    || { echo "served export diverges from the offline compute" >&2; exit 1; }

echo "service-e2e: resubmitting under a new name"
submit "$WORK/rerun.json" > "$WORK/submit2.json"
[ "$(header x-taopt-cache)" = "hit" ] || { echo "resubmit was not a cache hit" >&2; exit 1; }
RERUN_ID="$(header x-taopt-run-id)"
curl -fsS "$BASE/v1/runs/$RERUN_ID/export" > "$WORK/hit-export.json"
diff "$WORK/served-export.json" "$WORK/hit-export.json" \
    || { echo "cache hit is not byte-identical" >&2; exit 1; }

echo "service-e2e: restarting the service over the same data directory"
kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
start_server
submit "$WORK/run.json" > "$WORK/submit3.json"
[ "$(header x-taopt-cache)" = "hit" ] || { echo "post-restart resubmit was not a cache hit" >&2; exit 1; }
curl -fsS "$BASE/v1/stats" > "$WORK/stats.json"
grep -q '"computed": 0' "$WORK/stats.json" \
    || { echo "restarted service recomputed instead of serving the stored cell" >&2; cat "$WORK/stats.json" >&2; exit 1; }
RESTART_ID="$(header x-taopt-run-id)"
curl -fsS "$BASE/v1/runs/$RESTART_ID/export" > "$WORK/restart-export.json"
diff "$WORK/served-export.json" "$WORK/restart-export.json" \
    || { echo "post-restart export is not byte-identical" >&2; exit 1; }

echo "service-e2e: ok (export $(wc -c < "$WORK/served-export.json") bytes, run $RUN_ID cached and served across a restart)"
