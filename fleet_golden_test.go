package taopt

import (
	"bytes"
	"testing"

	"taopt/internal/export"
	"taopt/internal/harness/fleet"
)

// goldenExport runs one fixed-seed campaign run end to end and serialises it,
// loading the app inside the call so concurrent invocations share nothing.
func goldenExport(seed int64, faultRate float64) ([]byte, error) {
	cfg := RunConfig{
		App:      LoadApp("AccuWeather"),
		Tool:     "monkey",
		Setting:  TaOPTDuration,
		Duration: 8 * Minute,
		Seed:     seed,
	}
	if faultRate > 0 {
		fc := DefaultFaultConfig(faultRate)
		cfg.Faults = &fc
	}
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := export.FromResult(res).Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestFleetSeedStabilityGolden is the end-to-end determinism pin: the same
// configuration must export byte-identical JSON whether run twice serially or
// fanned out across fleet workers. Any hidden shared state, map-order leak or
// RNG-stream change in the transport refactor shows up here as a diff.
func TestFleetSeedStabilityGolden(t *testing.T) {
	for _, tc := range []struct {
		name      string
		faultRate float64
	}{
		{"fault-free", 0},
		{"chaos", 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := goldenExport(11, tc.faultRate)
			if err != nil {
				t.Fatal(err)
			}
			again, err := goldenExport(11, tc.faultRate)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, again) {
				t.Fatal("two serial runs of the same config exported different JSON")
			}
			results := fleet.Map(4, 4, func(int) ([]byte, error) {
				return goldenExport(11, tc.faultRate)
			})
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("fleet job %d: %v", i, r.Err)
				}
				if !bytes.Equal(want, r.Value) {
					t.Fatalf("fleet job %d exported different JSON than the serial run", i)
				}
			}
		})
	}
}
