// Command taoptd is the long-running campaign service: an HTTP/JSON API to
// submit scenario-DSL run documents, poll their status, and fetch the
// resulting v5 exports, telemetry digests and binary traces. Results are
// cached by the canonical scenario hash of the run configuration (minus the
// document name), so identical requests — the overwhelming majority at
// fleet scale — are cache hits served byte-identically to a fresh compute,
// and N concurrent identical submits compute exactly once.
//
// Usage:
//
//	taoptd                          # in-memory store on :8347
//	taoptd -data /var/lib/taopt     # durable file store
//	taoptd -addr :9000 -workers 4
//
// Walkthrough (see also README.md):
//
//	curl -s -X POST --data-binary @run.json 'localhost:8347/v1/runs?wait=1'
//	curl -s localhost:8347/v1/runs/r-000001/export
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"

	"taopt/internal/cli"
	"taopt/internal/service"
)

var fatalf = cli.Fatalf("taoptd")

func main() {
	var (
		addr    = flag.String("addr", ":8347", "listen address")
		dataDir = flag.String("data", "", "data directory for the durable file store (empty = in-memory)")
		workers = flag.Int("workers", 0, "max concurrently computed runs (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	cfg := service.Config{Workers: *workers}
	store := "memory"
	if *dataDir != "" {
		repo, err := service.NewFileRepo(*dataDir)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Repo = repo
		store = *dataDir
	}
	svc, err := service.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer svc.Close()

	// Bind before announcing readiness so scripts can poll the printed line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "taoptd: listening on %s (store: %s, workers: %d)\n",
		ln.Addr(), store, *workers)
	if err := http.Serve(ln, service.NewHandler(svc)); err != nil {
		fatalf("%v", err)
	}
}
