package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"taopt/internal/lint"
)

// vetConfig is the package description cmd/go hands a -vettool, one JSON
// file per package (the same shape x/tools' unitchecker consumes).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one package in `go vet -vettool` mode: files and the
// import universe come pre-resolved from cmd/go, and types of dependencies
// are read from compiler export data instead of being re-checked from
// source. Diagnostics go to stderr with exit status 2, vet's convention.
func runVetTool(cfgFile string, fatalf func(string, ...any)) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgFile, err)
	}
	// cmd/go expects the facts file to exist afterwards; the suite keeps
	// no cross-package facts, so an empty one is complete.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The contract governs production code; test fixtures may wire
		// layers together directly (core tests construct real farms).
		// The standalone driver never sees test files either, so both
		// modes agree.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	findings, err := lint.Analyze([]*lint.Package{pkg}, lint.Analyzers(lint.DefaultConfig()))
	if err != nil {
		fatalf("%v", err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}
