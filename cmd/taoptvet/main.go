// Command taoptvet runs the repository's determinism, layering, enum and
// allocation analyzers (internal/lint) over Go packages: walltime,
// globalrand, maporder, buslayer, exhaustive, sentinelerr, hotalloc and
// layercover. It is the enforcement half of the determinism contract in
// DESIGN.md §10 — the goldens tell you *that* a run stopped being
// reproducible, taoptvet tells you *which statement* broke it.
//
// Standalone (the usual way, also what CI runs):
//
//	go run ./cmd/taoptvet ./...
//
// As a vet tool, so the suite runs alongside the standard vet passes with
// cmd/go's caching and package metadata:
//
//	go build -o /tmp/taoptvet ./cmd/taoptvet
//	go vet -vettool=/tmp/taoptvet ./...
//
// Findings print as file:line:col: analyzer: message; -json switches to a
// machine-readable findings array for CI artifacts, -list prints the
// analyzer roster, and -allows audits every //lint:allow suppression in the
// tree. A justified //lint:allow <analyzer> "why" comment on the offending
// line (or the line above) suppresses a finding; the justification string
// is mandatory. On whole-module runs (the default ./... pattern) taoptvet
// also fails on layer rules whose package tree no longer exists. taoptvet
// exits 0 when the tree is clean and nonzero otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"taopt/internal/cli"
	"taopt/internal/lint"
)

// jsonFinding is the -json wire shape of one finding, position split out so
// CI tooling can annotate files without re-parsing the text form.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	fatalf := cli.Fatalf("taoptvet")

	// cmd/go's -vettool handshake: it probes the tool's version for its
	// build cache key, asks for the tool's flags, then invokes it once
	// per package with a *.cfg file. Handle those shapes before normal
	// flag parsing so the same binary serves both modes.
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("taoptvet version v2 buildID=taoptvet-v2\n")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetTool(args[0], fatalf)
		return
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	allows := flag.Bool("allows", false, "audit //lint:allow suppressions instead of reporting findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: taoptvet [-json] [-list] [-allows] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers(lint.DefaultConfig()) {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	cfg := lint.DefaultConfig()
	if *listOnly {
		for _, a := range lint.Analyzers(cfg) {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	wholeModule := len(patterns) == 0
	if wholeModule {
		patterns = []string{"./..."}
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	loader := lint.NewLoader(root)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	if *allows {
		auditAllows(pkgs, *jsonOut, fatalf)
		return
	}

	findings, err := lint.Analyze(pkgs, lint.Analyzers(cfg))
	if err != nil {
		fatalf("%v", err)
	}
	if wholeModule {
		// The per-package layercover pass cannot see rules whose whole tree
		// vanished; the module-wide view can.
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		stale := lint.StaleLayerRules(cfg, paths)
		for _, msg := range stale {
			fmt.Fprintf(os.Stderr, "taoptvet: %s\n", msg)
		}
		if len(stale) > 0 {
			os.Exit(1)
		}
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer, File: f.Pos.Filename,
				Line: f.Pos.Line, Col: f.Pos.Column, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "taoptvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// auditAllows lists every //lint:allow directive in the loaded packages —
// the standing exceptions to the contract — and fails on malformed ones.
func auditAllows(pkgs []*lint.Package, jsonOut bool, fatalf func(string, ...any)) {
	allows, malformed := lint.ModuleAllows(pkgs)
	if jsonOut {
		type jsonAllow struct {
			Analyzer      string `json:"analyzer"`
			File          string `json:"file"`
			Line          int    `json:"line"`
			Justification string `json:"justification"`
		}
		out := make([]jsonAllow, 0, len(allows))
		for _, a := range allows {
			out = append(out, jsonAllow{
				Analyzer: a.Analyzer, File: a.Pos.Filename,
				Line: a.Pos.Line, Justification: a.Justification,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, a := range allows {
			fmt.Printf("%s:%d: %s %q\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, a.Justification)
		}
	}
	for _, f := range malformed {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(malformed) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "taoptvet: %d suppression(s) in %d package(s)\n", len(allows), len(pkgs))
}
