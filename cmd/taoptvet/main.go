// Command taoptvet runs the repository's determinism and layering
// analyzers (internal/lint) over Go packages: walltime, globalrand,
// maporder and buslayer. It is the enforcement half of the determinism
// contract in DESIGN.md §10 — the goldens tell you *that* a run stopped
// being reproducible, taoptvet tells you *which statement* broke it.
//
// Standalone (the usual way, also what CI runs):
//
//	go run ./cmd/taoptvet ./...
//
// As a vet tool, so the suite runs alongside the standard vet passes with
// cmd/go's caching and package metadata:
//
//	go build -o /tmp/taoptvet ./cmd/taoptvet
//	go vet -vettool=/tmp/taoptvet ./...
//
// Findings print as file:line:col: analyzer: message. A justified
// //lint:allow <analyzer> "why" comment on the offending line (or the line
// above) suppresses a finding; the justification string is mandatory.
// taoptvet exits 0 when the tree is clean and nonzero otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"taopt/internal/cli"
	"taopt/internal/lint"
)

func main() {
	fatalf := cli.Fatalf("taoptvet")

	// cmd/go's -vettool handshake: it probes the tool's version for its
	// build cache key, asks for the tool's flags, then invokes it once
	// per package with a *.cfg file. Handle those shapes before normal
	// flag parsing so the same binary serves both modes.
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("taoptvet version v1 buildID=taoptvet-v1\n")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetTool(args[0], fatalf)
		return
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: taoptvet [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers(lint.DefaultConfig()) {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	loader := lint.NewLoader(root)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	findings, err := lint.Analyze(pkgs, lint.Analyzers(lint.DefaultConfig()))
	if err != nil {
		fatalf("%v", err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "taoptvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
