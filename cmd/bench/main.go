// Command bench is the repository's performance harness. It measures the
// fleet campaign grid (wall time and virtual-events-per-second at several
// worker-pool widths) and the long-trace Observe microbenchmark (incremental
// SpaceTracker vs the legacy FindSpace rescan), and writes the results as a
// JSON artifact — the BENCH_fleet.json trajectory tracked across PRs.
//
// The artifact is a trajectory, not a snapshot: each run appends (or, for
// the same revision, replaces) one entry keyed by the git SHA, so the
// per-PR performance history accumulates in a single committed file.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_fleet.json          # full measurement
//	go run ./cmd/bench -smoke -out /tmp/bench.json    # CI smoke mode
//	go run ./cmd/bench -sha pr-6 -out BENCH_fleet.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"taopt/internal/apps"
	"taopt/internal/cli"
	"taopt/internal/export"
	"taopt/internal/harness"
	"taopt/internal/service"
	"taopt/internal/sim"
	"taopt/internal/trace"
)

type observeStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Candidates  int     `json:"candidates"`
}

type fleetStats struct {
	Workers             int     `json:"workers"`
	Cells               int     `json:"cells"`
	WallNS              int64   `json:"wall_ns"`
	VirtualEvents       uint64  `json:"virtual_events"`
	VirtualEventsPerSec float64 `json:"virtual_events_per_sec"`
}

// codecStats measures the binary trace codec against the JSON v5 export on
// one recorded run: throughput in trace events per second and density in
// bytes per event, plus the ratios over JSON.
type codecStats struct {
	Events        int     `json:"events"`
	BinBytes      int     `json:"bin_bytes"`
	JSONBytes     int     `json:"json_bytes"`
	BinBytesPerEvent  float64 `json:"bin_bytes_per_event"`
	JSONBytesPerEvent float64 `json:"json_bytes_per_event"`
	BinEncodeEventsPerSec  float64 `json:"bin_encode_events_per_sec"`
	BinDecodeEventsPerSec  float64 `json:"bin_decode_events_per_sec"`
	JSONEncodeEventsPerSec float64 `json:"json_encode_events_per_sec"`
	JSONDecodeEventsPerSec float64 `json:"json_decode_events_per_sec"`
	// EncodeSpeedup / DecodeSpeedup are binary throughput over JSON's.
	EncodeSpeedup float64 `json:"encode_speedup_vs_json"`
	DecodeSpeedup float64 `json:"decode_speedup_vs_json"`
}

// serviceStats measures the campaign service's cache path end to end through
// the HTTP handler: the wall cost of the first (computing) submit of a run
// document versus the steady-state throughput of re-submitting it and
// fetching its export from the store.
type serviceStats struct {
	ComputeWallNS int64   `json:"compute_wall_ns"`
	Hits          int     `json:"hits"`
	HitsPerSec    float64 `json:"hits_per_sec"`
	ExportBytes   int     `json:"export_bytes"`
	// HitSpeedup is the compute wall time over the mean served-hit time.
	HitSpeedup float64 `json:"hit_speedup_vs_compute"`
}

type report struct {
	Smoke          bool         `json:"smoke"`
	App            string       `json:"app"`
	Visits         int          `json:"visits"`
	ObserveLegacy  observeStats `json:"observe_legacy"`
	ObserveTracked observeStats `json:"observe_tracked"`
	// ObserveSpeedup is legacy ns/op over tracked ns/op at Visits.
	ObserveSpeedup float64      `json:"observe_speedup"`
	Fleet          []fleetStats `json:"fleet"`
	TraceCodec     codecStats   `json:"trace_codec"`
	Service        serviceStats `json:"service"`
}

// entry is one revision's measurement in the trajectory.
type entry struct {
	SHA    string `json:"sha"`
	Report report `json:"report"`
}

// trajectory is the artifact's on-disk shape: the accumulated per-revision
// history, newest last.
type trajectory struct {
	Entries []entry `json:"entries"`
}

var fatalf = cli.Fatalf("bench")

func main() {
	out := flag.String("out", "BENCH_fleet.json", "output artifact path")
	smoke := flag.Bool("smoke", false, "CI smoke mode: fewer visits, shorter campaigns, one iteration")
	visits := flag.Int("visits", 10000, "long-trace Observe benchmark length")
	appName := flag.String("app", "Marvel Comics", "app whose screens back the Observe benchmark")
	sha := flag.String("sha", "", "trajectory key for this measurement (default: git rev-parse --short HEAD)")
	flag.Parse()
	if *sha == "" {
		*sha = headSHA()
	}

	iters, minutes := 3, sim.Duration(12*60e9)
	if *smoke {
		iters, minutes = 1, sim.Duration(6*60e9)
		if *visits > 2000 {
			*visits = 2000
		}
	}

	rep := report{Smoke: *smoke, App: *appName, Visits: *visits}
	events, book, err := harness.ObserveStream(*appName, *visits)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "observe microbenchmark: %d visits × %d iterations, app %q\n",
		*visits, iters, *appName)
	rep.ObserveLegacy = measureObserve(events, book, *visits, true, iters)
	rep.ObserveTracked = measureObserve(events, book, *visits, false, iters)
	rep.ObserveSpeedup = rep.ObserveLegacy.NsPerOp / rep.ObserveTracked.NsPerOp
	fmt.Fprintf(os.Stderr, "  legacy  %12.1f ns/op  %8.2f allocs/op\n",
		rep.ObserveLegacy.NsPerOp, rep.ObserveLegacy.AllocsPerOp)
	fmt.Fprintf(os.Stderr, "  tracked %12.1f ns/op  %8.2f allocs/op\n",
		rep.ObserveTracked.NsPerOp, rep.ObserveTracked.AllocsPerOp)
	fmt.Fprintf(os.Stderr, "  speedup %.2fx\n", rep.ObserveSpeedup)

	for _, workers := range []int{1, 4} {
		fs := measureFleet(workers, minutes)
		rep.Fleet = append(rep.Fleet, fs)
		fmt.Fprintf(os.Stderr, "fleet grid workers=%d: %d cells, %.2fs wall, %.0f virtual events/sec\n",
			fs.Workers, fs.Cells, float64(fs.WallNS)/1e9, fs.VirtualEventsPerSec)
	}

	rep.TraceCodec = measureCodec(minutes, iters)
	fmt.Fprintf(os.Stderr, "trace codec: %d events, binary %.1f bytes/event vs JSON %.1f\n",
		rep.TraceCodec.Events, rep.TraceCodec.BinBytesPerEvent, rep.TraceCodec.JSONBytesPerEvent)
	fmt.Fprintf(os.Stderr, "  encode %.2e events/sec (%.1fx JSON), decode %.2e events/sec (%.1fx JSON)\n",
		rep.TraceCodec.BinEncodeEventsPerSec, rep.TraceCodec.EncodeSpeedup,
		rep.TraceCodec.BinDecodeEventsPerSec, rep.TraceCodec.DecodeSpeedup)

	hits := 500
	if *smoke {
		hits = 100
	}
	rep.Service = measureService(minutes, hits)
	fmt.Fprintf(os.Stderr, "service cache: compute %.2fs, then %d hits at %.0f hits/sec (%.0fx compute)\n",
		float64(rep.Service.ComputeWallNS)/1e9, rep.Service.Hits,
		rep.Service.HitsPerSec, rep.Service.HitSpeedup)

	traj := loadTrajectory(*out)
	traj.upsert(entry{SHA: *sha, Report: rep})
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d entries, this one keyed %q)\n", *out, len(traj.Entries), *sha)
}

// headSHA asks git for the current revision; outside a repository the
// measurement is still keyed, just not usefully.
func headSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// loadTrajectory reads the existing artifact. A pre-trajectory file (one
// bare report object, the PR-5 format) is wrapped as its oldest entry so
// history is preserved rather than clobbered.
func loadTrajectory(path string) *trajectory {
	data, err := os.ReadFile(path)
	if err != nil {
		return &trajectory{}
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Entries != nil {
		return &traj
	}
	var legacy report
	if err := json.Unmarshal(data, &legacy); err == nil && legacy.App != "" {
		fmt.Fprintf(os.Stderr, "wrapping legacy single-report artifact as the oldest trajectory entry\n")
		return &trajectory{Entries: []entry{{SHA: "pre-trajectory", Report: legacy}}}
	}
	fatalf("%s exists but is neither a trajectory nor a legacy report; refusing to overwrite", path)
	return nil
}

// upsert appends the entry, or replaces the previous measurement of the
// same revision (re-running on a dirty tree refines, not duplicates).
func (t *trajectory) upsert(e entry) {
	for i := range t.Entries {
		if t.Entries[i].SHA == e.SHA {
			t.Entries[i] = e
			return
		}
	}
	t.Entries = append(t.Entries, e)
}

// measureObserve streams the event sequence through a fresh analyzer iters
// times and reports the best run (per-event time, with alloc figures from
// that same run). A fresh analyzer per iteration keeps iterations
// independent: interning and match memoisation are part of the measured
// cost, exactly as on a campaign's first long trace.
func measureObserve(events []trace.Event, book *trace.Book, visits int, legacy bool, iters int) observeStats {
	best := observeStats{NsPerOp: -1}
	for i := 0; i < iters; i++ {
		a := harness.NewObserveAnalyzer(book, visits, legacy)
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		sw := cli.NewStopwatch()
		candidates := 0
		for _, ev := range events {
			if _, ok := a.Observe(ev); ok {
				candidates++
			}
		}
		elapsed := sw.ElapsedNS()
		runtime.ReadMemStats(&after)
		st := observeStats{
			NsPerOp:     float64(elapsed) / float64(len(events)),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(len(events)),
			BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(len(events)),
			Candidates:  candidates,
		}
		if best.NsPerOp < 0 || st.NsPerOp < best.NsPerOp {
			best = st
		}
	}
	return best
}

// measureCodec pits the binary trace codec against the JSON v5 export on a
// seeded telemetry run: best-of-iters encode and decode throughput in trace
// events per second, plus the byte density of both forms.
func measureCodec(minutes sim.Duration, iters int) codecStats {
	res, err := harness.Run(harness.RunConfig{
		App:       apps.MustLoad("Filters For Selfie"),
		Tool:      "monkey",
		Setting:   harness.TaOPTDuration,
		Duration:  minutes,
		Instances: 4,
		Seed:      2,
		Telemetry: true,
	})
	if err != nil {
		fatalf("%v", err)
	}
	run := export.FromResult(res)

	var binBuf, jsonBuf bytes.Buffer
	if err := run.WriteBin(&binBuf); err != nil {
		fatalf("%v", err)
	}
	if err := run.Write(&jsonBuf); err != nil {
		fatalf("%v", err)
	}
	events := 0
	for _, inst := range run.Instances {
		events += len(inst.Events)
	}

	// best returns the fastest of iters timed passes of fn, in events/sec.
	best := func(fn func() error) float64 {
		var fastest int64 = -1
		for i := 0; i < iters; i++ {
			sw := cli.NewStopwatch()
			if err := fn(); err != nil {
				fatalf("%v", err)
			}
			if ns := sw.ElapsedNS(); fastest < 0 || ns < fastest {
				fastest = ns
			}
		}
		return float64(events) / (float64(fastest) / 1e9)
	}

	cs := codecStats{
		Events:            events,
		BinBytes:          binBuf.Len(),
		JSONBytes:         jsonBuf.Len(),
		BinBytesPerEvent:  float64(binBuf.Len()) / float64(events),
		JSONBytesPerEvent: float64(jsonBuf.Len()) / float64(events),
	}
	cs.BinEncodeEventsPerSec = best(func() error { return run.WriteBin(io.Discard) })
	cs.JSONEncodeEventsPerSec = best(func() error { return run.Write(io.Discard) })
	cs.BinDecodeEventsPerSec = best(func() error {
		_, err := export.ReadBin(bytes.NewReader(binBuf.Bytes()))
		return err
	})
	cs.JSONDecodeEventsPerSec = best(func() error {
		_, err := export.Read(bytes.NewReader(jsonBuf.Bytes()))
		return err
	})
	cs.EncodeSpeedup = cs.BinEncodeEventsPerSec / cs.JSONEncodeEventsPerSec
	cs.DecodeSpeedup = cs.BinDecodeEventsPerSec / cs.JSONDecodeEventsPerSec
	return cs
}

// measureService stands up the campaign service over an in-memory store,
// pays for one real compute of a run document, then hammers the cache path:
// each hit is a full HTTP round trip — re-submit the (renamed) document with
// ?wait=1, then fetch its export — so the figure is end-to-end serving
// throughput, not a map lookup.
func measureService(minutes sim.Duration, hits int) serviceStats {
	svc, err := service.New(service.Config{})
	if err != nil {
		fatalf("%v", err)
	}
	defer svc.Close()
	handler := service.NewHandler(svc)
	doc := func(name string) string {
		return fmt.Sprintf(`{"kind": "run", "name": %q, "run": {
	"app": "Filters For Selfie", "tool": "monkey", "setting": "taopt-duration",
	"durationMin": %g, "seed": 2}}`, name, float64(minutes)/60e9)
	}
	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/runs?wait=1", strings.NewReader(body))
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)
		if rw.Code != 200 {
			fatalf("service submit: status %d: %s", rw.Code, rw.Body.String())
		}
		return rw
	}
	get := func(target string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)
		if rw.Code != 200 {
			fatalf("service GET %s: status %d: %s", target, rw.Code, rw.Body.String())
		}
		return rw
	}

	sw := cli.NewStopwatch()
	first := post(doc("bench: compute"))
	st := serviceStats{ComputeWallNS: sw.ElapsedNS(), Hits: hits}
	st.ExportBytes = get("/v1/runs/" + first.Result().Header.Get("X-Taopt-Run-Id") + "/export").Body.Len()

	sw = cli.NewStopwatch()
	for i := 0; i < hits; i++ {
		res := post(doc(fmt.Sprintf("bench: hit %d", i)))
		if res.Result().Header.Get("X-Taopt-Cache") != "hit" {
			fatalf("service resubmit missed the cache")
		}
		get("/v1/runs/" + res.Result().Header.Get("X-Taopt-Run-Id") + "/export")
	}
	elapsed := sw.ElapsedNS()
	st.HitsPerSec = float64(hits) / (float64(elapsed) / 1e9)
	st.HitSpeedup = float64(st.ComputeWallNS) / (float64(elapsed) / float64(hits))
	return st
}

// measureFleet prefetches a small campaign grid on a pool of the given width
// and reports wall time against the deterministic virtual-work measure (the
// summed scheduler-event counts of all cells).
func measureFleet(workers int, minutes sim.Duration) fleetStats {
	c := harness.NewCampaign(harness.CampaignConfig{
		Apps:     []string{"Filters For Selfie", "Marvel Comics"},
		Tools:    []string{"monkey", "ape"},
		Duration: minutes,
		Seed:     1,
		Workers:  workers,
	})
	settings := []harness.Setting{harness.BaselineParallel, harness.TaOPTDuration}
	sw := cli.NewStopwatch()
	if err := c.Prefetch(nil, settings...); err != nil {
		fatalf("%v", err)
	}
	elapsed := sw.ElapsedNS()
	fs := fleetStats{Workers: workers, WallNS: elapsed}
	for _, appName := range c.Apps() {
		for _, tool := range c.Tools() {
			for _, setting := range settings {
				cell, err := c.Cell(appName, tool, setting)
				if err != nil {
					fatalf("%v", err)
				}
				fs.Cells++
				fs.VirtualEvents += cell.Events
			}
		}
	}
	fs.VirtualEventsPerSec = float64(fs.VirtualEvents) / (float64(elapsed) / 1e9)
	return fs
}
